#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI `docs` job).

Checks every inline link in ROADMAP.md, DESIGN.md, README-style root docs
and docs/*.md:

  * relative file links must resolve on disk (case-sensitive, as on CI);
  * `#anchor` fragments — in-page or into another checked .md file — must
    match a heading in the target, using GitHub's slugging rules;
  * external (http/https/mailto) links are skipped: the job stays hermetic.

Stdlib only; exits nonzero listing every broken link.
"""
import os
import re
import sys
import unicodedata

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ISSUE.md is the transient per-PR task card; SNIPPETS.md embeds third-party
# example code whose bracketed text is not ours to police.
SKIP = {"ISSUE.md", "SNIPPETS.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+(?:\([^()\s]*\)[^()\s]*)*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def md_files():
    files = []
    for name in sorted(os.listdir(REPO)):
        if name.endswith(".md") and name not in SKIP:
            files.append(os.path.join(REPO, name))
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        for root, _, names in os.walk(docs):
            for name in sorted(names):
                if name.endswith(".md"):
                    files.append(os.path.join(root, name))
    return files


def github_slug(heading):
    """GitHub's heading-to-anchor algorithm (close enough for our docs):
    strip markdown emphasis/code markers, lowercase, drop everything that is
    not a word character, space or hyphen, then spaces -> hyphens."""
    text = re.sub(r"[`*_]", "", heading).strip()
    text = unicodedata.normalize("NFKC", text).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def parse(path):
    """Return (links, anchors): [(lineno, target)], {slug, ...}."""
    links, anchors, counts = [], set(), {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = github_slug(m.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
            for lm in LINK_RE.finditer(line):
                links.append((lineno, lm.group(1)))
    return links, anchors


def main():
    files = md_files()
    parsed = {path: parse(path) for path in files}
    errors = []

    for path, (links, _) in parsed.items():
        rel = os.path.relpath(path, REPO)
        for lineno, target in links:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            target, _, fragment = target.partition("#")
            if target:
                dest = os.path.normpath(os.path.join(os.path.dirname(path), target))
                if not os.path.exists(dest):
                    errors.append(f"{rel}:{lineno}: broken link: {target}")
                    continue
            else:
                dest = path  # in-page anchor
            if fragment and dest in parsed:
                _, anchors = parsed[dest]
                if fragment.lower() not in anchors:
                    errors.append(
                        f"{rel}:{lineno}: broken anchor: "
                        f"{os.path.relpath(dest, REPO)}#{fragment}")

    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {len(files)} file(s)")
        return 1
    total = sum(len(links) for links, _ in parsed.values())
    print(f"OK: {total} links across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
