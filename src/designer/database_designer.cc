#include "designer/database_designer.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "storage/encoding.h"
#include "storage/sort_util.h"

namespace stratica {

namespace {

/// Column-usage profile of one table across the workload.
struct Usage {
  // Weighted by appearance count; equality predicates weigh more than
  // ranges (they benefit most from leading sort position).
  std::map<std::string, int> predicate_cols;
  std::map<std::string, int> group_cols;
  std::map<std::string, int> order_cols;
  std::map<std::string, int> join_cols;
};

void CollectPredicateColumns(const Expr& e, const TableDef& table, Usage* usage) {
  if (e.kind == ExprKind::kCompare && e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[1]->kind == ExprKind::kLiteral) {
    std::string bare = e.children[0]->column_name;
    auto dot = bare.rfind('.');
    if (dot != std::string::npos) bare = bare.substr(dot + 1);
    if (table.FindColumn(bare) >= 0) {
      usage->predicate_cols[bare] += e.cmp == CompareOp::kEq ? 3 : 1;
    }
  }
  if (e.kind == ExprKind::kCompare && e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[1]->kind == ExprKind::kColumnRef) {
    for (const auto& child : e.children) {
      std::string bare = child->column_name;
      auto dot = bare.rfind('.');
      if (dot != std::string::npos) bare = bare.substr(dot + 1);
      if (table.FindColumn(bare) >= 0) usage->join_cols[bare] += 1;
    }
  }
  for (const auto& c : e.children) CollectPredicateColumns(*c, table, usage);
}

void CollectExprColumn(const ExprPtr& e, const TableDef& table,
                       std::map<std::string, int>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef) {
    std::string bare = e->column_name;
    auto dot = bare.rfind('.');
    if (dot != std::string::npos) bare = bare.substr(dot + 1);
    if (table.FindColumn(bare) >= 0) (*out)[bare] += 1;
  }
  for (const auto& c : e->children) CollectExprColumn(c, table, out);
}

std::vector<std::string> TopColumns(const std::map<std::string, int>& weighted,
                                    size_t max_cols) {
  std::vector<std::pair<std::string, int>> items(weighted.begin(), weighted.end());
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  for (const auto& [name, w] : items) {
    if (out.size() >= max_cols) break;
    out.push_back(name);
  }
  return out;
}

}  // namespace

Result<std::pair<EncodingId, double>> DatabaseDesigner::BestEncoding(
    const RowBlock& sample, const std::vector<uint32_t>& sort_columns,
    uint32_t column) const {
  RowBlock sorted = sample;
  sorted.DecodeAll();
  if (!sort_columns.empty()) {
    auto perm = ComputeSortPermutation(sorted, sort_columns);
    sorted = ApplyPermutation(sorted, perm);
  }
  const ColumnVector& col = sorted.columns[column];
  size_t n = col.PhysicalSize();
  if (n == 0) return std::make_pair(EncodingId::kAuto, 0.0);
  EncodingId best = EncodingId::kPlain;
  size_t best_bytes = SIZE_MAX;
  for (EncodingId enc : {EncodingId::kRle, EncodingId::kDeltaValue,
                         EncodingId::kBlockDict, EncodingId::kCompressedDeltaRange,
                         EncodingId::kCompressedCommonDelta, EncodingId::kPlain}) {
    if (!EncodingSupports(enc, StorageClassOf(col.type))) continue;
    std::string buf;
    STRATICA_RETURN_NOT_OK(EncodeBlock(enc, col, 0, n, &buf));
    // EncodeBlock may have fallen back (cardinality guard); attribute the
    // experiment to what was actually written.
    STRATICA_ASSIGN_OR_RETURN(EncodingId actual, PeekBlockEncoding(buf, 0));
    if (buf.size() < best_bytes) {
      best_bytes = buf.size();
      best = actual;
    }
  }
  return std::make_pair(best, static_cast<double>(best_bytes) / n);
}

Result<DesignProposal> DatabaseDesigner::Design(
    const std::vector<std::string>& workload, const RowBlock& sample,
    DesignPolicy policy) const {
  // ---- phase 1: query optimization -----------------------------------------
  Usage usage;
  for (const auto& sql : workload) {
    STRATICA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
    const SelectStmt* select = nullptr;
    if (stmt.type == Statement::Type::kSelect ||
        stmt.type == Statement::Type::kExplain) {
      select = &stmt.select;
    } else {
      continue;  // DML contributes nothing to projection design
    }
    if (select->where) CollectPredicateColumns(*select->where, table_, &usage);
    for (const auto& ref : select->from) {
      if (ref.on) CollectPredicateColumns(*ref.on, table_, &usage);
    }
    for (const auto& g : select->group_by) CollectExprColumn(g, table_, &usage.group_cols);
    for (const auto& [o, desc] : select->order_by)
      CollectExprColumn(o, table_, &usage.order_cols);
  }

  size_t narrow_budget = 0;
  switch (policy) {
    case DesignPolicy::kLoadOptimized: narrow_budget = 0; break;
    case DesignPolicy::kBalanced: narrow_budget = 2; break;
    case DesignPolicy::kQueryOptimized: narrow_budget = 4; break;
  }

  // Candidate sort orders, most valuable first: predicates (selective
  // leading column), then group-by, then order-by.
  std::vector<std::vector<std::string>> candidates;
  auto add_candidate = [&](std::vector<std::string> cols) {
    if (cols.empty()) return;
    for (const auto& existing : candidates) {
      if (existing == cols) return;
    }
    candidates.push_back(std::move(cols));
  };
  {
    auto preds = TopColumns(usage.predicate_cols, 2);
    auto groups = TopColumns(usage.group_cols, 2);
    if (!preds.empty()) {
      std::vector<std::string> combo = preds;
      for (const auto& g : groups) {
        if (std::find(combo.begin(), combo.end(), g) == combo.end())
          combo.push_back(g);
      }
      add_candidate(combo);
    }
    add_candidate(groups);
    add_candidate(TopColumns(usage.order_cols, 3));
    add_candidate(TopColumns(usage.join_cols, 1));
  }
  if (candidates.size() > narrow_budget) candidates.resize(narrow_budget);

  DesignProposal proposal;
  std::ostringstream rationale;

  // Segmentation: a high-cardinality join/predicate column for co-located
  // work, else the first column (ersatz primary key).
  std::string seg_col = table_.columns[0].name;
  auto joins = TopColumns(usage.join_cols, 1);
  if (!joins.empty()) seg_col = joins[0];

  auto finish_projection = [&](ProjectionDef def) -> Status {
    // ---- phase 2: storage optimization — empirical encoding choice -----
    std::vector<uint32_t> sort_in_table;
    for (uint32_t s : def.sort_columns) {
      int tc = table_.FindColumn(def.columns[s].name);
      sort_in_table.push_back(static_cast<uint32_t>(tc));
    }
    for (auto& pc : def.columns) {
      int tc = table_.FindColumn(pc.name);
      if (tc < 0) continue;
      STRATICA_ASSIGN_OR_RETURN(
          auto best, BestEncoding(sample, sort_in_table, static_cast<uint32_t>(tc)));
      pc.encoding = best.first;
      std::ostringstream line;
      line << def.name << "." << pc.name << ": " << EncodingName(best.first) << " ("
           << best.second << " bytes/value)";
      proposal.encoding_report.push_back(line.str());
    }
    proposal.projections.push_back(std::move(def));
    return Status::OK();
  };

  // The super projection: all columns, sorted by the strongest predicate +
  // group columns (falling back to leading columns), segmented by seg_col.
  {
    ProjectionDef super;
    super.name = table_.name + "_dbd_super";
    super.anchor_table = table_.name;
    for (const auto& c : table_.columns) {
      super.columns.push_back({c.name, table_.FindColumn(c.name), EncodingId::kAuto});
    }
    std::vector<std::string> sort_cols = TopColumns(usage.predicate_cols, 2);
    for (const auto& g : TopColumns(usage.group_cols, 2)) {
      if (std::find(sort_cols.begin(), sort_cols.end(), g) == sort_cols.end())
        sort_cols.push_back(g);
    }
    if (sort_cols.empty()) sort_cols.push_back(table_.columns[0].name);
    for (const auto& sc : sort_cols) {
      super.sort_columns.push_back(static_cast<uint32_t>(super.FindColumn(sc)));
    }
    super.segmentation.expr = Func(FuncKind::kHash, {Col(seg_col)});
    rationale << "super projection sorted by {";
    for (size_t i = 0; i < sort_cols.size(); ++i)
      rationale << (i ? ", " : "") << sort_cols[i];
    rationale << "}, segmented by HASH(" << seg_col << "); ";
    STRATICA_RETURN_NOT_OK(finish_projection(std::move(super)));
  }

  // Narrow candidates: sort columns + every other column the workload
  // touches (predicates/groups/orders), so the projection can answer its
  // queries alone.
  for (const auto& cand : candidates) {
    ProjectionDef narrow;
    narrow.name = table_.name + "_dbd_n" +
                  std::to_string(proposal.projections.size());
    narrow.anchor_table = table_.name;
    std::set<std::string> cols(cand.begin(), cand.end());
    for (const auto& [name, w] : usage.predicate_cols) cols.insert(name);
    for (const auto& [name, w] : usage.group_cols) cols.insert(name);
    for (const auto& [name, w] : usage.order_cols) cols.insert(name);
    for (const auto& [name, w] : usage.join_cols) cols.insert(name);
    // Sort columns lead (in candidate order), remaining columns follow.
    for (const auto& c : cand) {
      narrow.columns.push_back({c, table_.FindColumn(c), EncodingId::kAuto});
    }
    for (const auto& c : cols) {
      if (narrow.FindColumn(c) < 0) {
        narrow.columns.push_back({c, table_.FindColumn(c), EncodingId::kAuto});
      }
    }
    if (narrow.columns.size() >= table_.columns.size()) continue;  // just the super
    for (size_t i = 0; i < cand.size(); ++i)
      narrow.sort_columns.push_back(static_cast<uint32_t>(i));
    narrow.segmentation.expr = Func(FuncKind::kHash, {Col(cand[0])});
    rationale << "narrow projection on {";
    for (size_t i = 0; i < narrow.columns.size(); ++i)
      rationale << (i ? ", " : "") << narrow.columns[i].name;
    rationale << "} sorted by " << cand[0] << "; ";
    STRATICA_RETURN_NOT_OK(finish_projection(std::move(narrow)));
  }

  proposal.rationale = rationale.str();
  return proposal;
}

}  // namespace stratica
