// The Database Designer (Section 6.3): automatic physical design.
//
// Given a representative query workload and sample data, proposes
// projections in two sequential phases exactly as the paper describes:
//
//   1. Query optimization — enumerate candidate sort orders / segmentations
//      from the workload's predicates, group-by, order-by and join columns;
//      keep the candidates the policy's projection budget allows.
//   2. Storage optimization — choose each column's encoding by *empirical
//      encoding experiments* on the sample data, given the sort order
//      chosen in phase 1 (the paper credits this empiricism for users
//      virtually never overriding the DBD's encoding choices).
//
// Policies trade query speed against load overhead and footprint:
// load-optimized proposes only the super projection, query-optimized up to
// four narrow projections, balanced in between.
#ifndef STRATICA_DESIGNER_DATABASE_DESIGNER_H_
#define STRATICA_DESIGNER_DATABASE_DESIGNER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/row_block.h"
#include "sql/parser.h"

namespace stratica {

enum class DesignPolicy {
  kLoadOptimized,   ///< super projection only (fastest loads, least space)
  kBalanced,        ///< super + up to 2 narrow projections
  kQueryOptimized,  ///< super + up to 4 narrow projections
};

struct DesignProposal {
  std::vector<ProjectionDef> projections;  ///< ready for CreateProjection
  /// Per-projection, per-column record of the winning encoding experiment:
  /// "projection.column: ENCODING (x.xx bytes/value)".
  std::vector<std::string> encoding_report;
  std::string rationale;
};

/// \brief Stateless designer: feed it the table, a SQL workload, and sample
/// rows; get projection definitions back.
class DatabaseDesigner {
 public:
  explicit DatabaseDesigner(const TableDef& table) : table_(table) {}

  /// `workload` is a list of SELECT statements against `table`; `sample`
  /// holds sample rows in table column order (a few thousand suffice).
  Result<DesignProposal> Design(const std::vector<std::string>& workload,
                                const RowBlock& sample, DesignPolicy policy) const;

  /// Phase-2 primitive, exposed for tests: best encoding for `column` of
  /// the sample when sorted by `sort_columns` (table column indexes).
  Result<std::pair<EncodingId, double>> BestEncoding(
      const RowBlock& sample, const std::vector<uint32_t>& sort_columns,
      uint32_t column) const;

 private:
  TableDef table_;
};

}  // namespace stratica

#endif  // STRATICA_DESIGNER_DATABASE_DESIGNER_H_
