// Query admission control (Section 6.1: "a production database must ensure
// users queries are always answered").
//
// Vertica pairs lock-free epoch snapshot reads with a resource manager that
// admits queries against a shared memory pool. Stratica's ResourceManager
// does the same for concurrent Database::Execute callers: every query
// arrives with a memory reservation estimated from its physical plan, and
// is admitted only when (a) the reservation fits in the pool and (b) a
// concurrency slot is free. Queries that do not fit wait in FIFO order —
// strict arrival order, so a large query cannot starve behind a stream of
// small ones — and fail with ResourceExhausted when the admission timeout
// elapses. Reservations are released by an RAII ticket when the query
// finishes, successfully or not.
#ifndef STRATICA_EXEC_RESOURCE_MANAGER_H_
#define STRATICA_EXEC_RESOURCE_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"

namespace stratica {

struct ResourceManagerConfig {
  /// Total bytes the pool may hand out at once (DatabaseOptions::
  /// query_memory_budget). The sum of live reservations never exceeds it.
  size_t memory_pool_bytes = 256ull << 20;
  /// Maximum queries running simultaneously; 0 = bounded by memory only.
  size_t max_concurrent_queries = 0;
  /// Floor for tiny plan estimates, so every query pays a nonzero share.
  size_t min_query_reserve_bytes = 1ull << 20;
  /// How long Admit waits in the queue before failing the query.
  std::chrono::milliseconds admission_timeout{10000};
};

/// Point-in-time counters (all monotone except the gauges).
struct ResourceManagerStats {
  uint64_t admitted = 0;        ///< queries granted a reservation
  uint64_t queued = 0;          ///< admissions that had to wait at least once
  uint64_t timeouts = 0;        ///< admissions that failed on timeout
  uint64_t reserved_bytes = 0;  ///< gauge: bytes currently reserved
  uint64_t active_queries = 0;  ///< gauge: tickets currently live
  uint64_t peak_reserved_bytes = 0;
  uint64_t peak_active_queries = 0;
};

class ResourceManager;

/// \brief RAII grant of (memory reservation, concurrency slot). Movable;
/// releases on destruction.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  /// Bytes actually reserved (the clamped request).
  size_t bytes() const { return bytes_; }
  bool valid() const { return manager_ != nullptr; }
  void Release();

 private:
  friend class ResourceManager;
  AdmissionTicket(ResourceManager* manager, size_t bytes)
      : manager_(manager), bytes_(bytes) {}

  ResourceManager* manager_ = nullptr;
  size_t bytes_ = 0;
};

/// \brief FIFO admission controller over a byte pool + concurrency slots.
/// Thread-safe; one instance per Database.
class ResourceManager {
 public:
  explicit ResourceManager(ResourceManagerConfig cfg) : cfg_(cfg) {}

  /// Block until `requested_bytes` (clamped to [min_query_reserve_bytes,
  /// memory_pool_bytes]) fits and a slot is free, in strict arrival order.
  /// Fails with ResourceExhausted after cfg.admission_timeout.
  Result<AdmissionTicket> Admit(size_t requested_bytes);

  /// Map an admission grant to intra-query worker fan-out (DESIGN.md §12):
  /// the reservation is the single budget that covers a query's parallelism,
  /// so when the pool clamped the request below what the plan assumed, the
  /// fan-out scales down proportionally (keeping per-fragment memory as
  /// planned) instead of running `requested_fanout` fragments on a smaller
  /// budget. Never returns less than 1.
  static size_t AllowedFanout(size_t granted_bytes, size_t requested_bytes,
                              size_t requested_fanout);

  ResourceManagerStats stats() const;
  const ResourceManagerConfig& config() const { return cfg_; }

 private:
  friend class AdmissionTicket;
  void Release(size_t bytes);

  ResourceManagerConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint64_t> queue_;  ///< waiting ticket ids, arrival order
  uint64_t next_ticket_ = 0;
  size_t reserved_ = 0;
  size_t active_ = 0;
  ResourceManagerStats stats_;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_RESOURCE_MANAGER_H_
