#include "exec/exchange.h"

#include "common/hash.h"

namespace stratica {

ExchangeState::ExchangeState(std::vector<OperatorPtr> producers, size_t num_consumers,
                             std::vector<uint32_t> partition_columns,
                             bool count_network)
    : producers_(std::move(producers)),
      partition_columns_(std::move(partition_columns)),
      count_network_(count_network),
      queues_(num_consumers) {}

ExchangeState::~ExchangeState() {
  {
    // A failed query can destroy the tree without draining or closing every
    // consumer; producers may be blocked in Push waiting for queue room.
    // Cancel first or the joins below deadlock.
    std::unique_lock lock(mu_);
    cancelled_ = true;
    cv_.notify_all();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ExchangeState::Start(ExecContext* ctx) {
  std::unique_lock lock(mu_);
  if (started_) return;
  started_ = true;
  producers_running_ = producers_.size();
  if (producers_.empty()) {
    CloseAll();
    return;
  }
  for (size_t p = 0; p < producers_.size(); ++p) {
    threads_.emplace_back([this, p, ctx] { ProducerLoop(p, ctx); });
  }
}

bool ExchangeState::Push(size_t c, RowBlock block) {
  std::unique_lock lock(mu_);
  cv_.wait(lock,
           [&] { return cancelled_ || queues_[c].blocks.size() < kQueueCapacity; });
  if (cancelled_) return false;
  queues_[c].blocks.push_back(std::move(block));
  cv_.notify_all();
  return true;
}

void ExchangeState::ConsumerClosed() {
  std::unique_lock lock(mu_);
  if (++consumers_closed_ >= queues_.size()) {
    cancelled_ = true;
    cv_.notify_all();
  }
}

void ExchangeState::CloseAll() {
  for (auto& q : queues_) q.closed = true;
  cv_.notify_all();
}

void ExchangeState::ProducerLoop(size_t p, ExecContext* ctx) {
  Operator* op = producers_[p].get();
  Status st = op->Open(ctx);
  std::vector<uint64_t> hashes;  // partition-hash scratch, reused per block
  while (st.ok()) {
    RowBlock block;
    st = op->GetNext(&block);
    if (!st.ok() || block.NumRows() == 0) break;
    if (count_network_ && ctx->stats) {
      ctx->stats->exchange_bytes.fetch_add(block.MemoryBytes());
    }
    bool alive = true;
    if (partition_columns_.empty() || queues_.size() == 1) {
      alive = Push(p % queues_.size(), std::move(block));
    } else {
      block.DecodeAll();
      std::vector<RowBlock> parts;
      parts.reserve(queues_.size());
      std::vector<TypeId> types;
      for (const auto& c : block.columns) types.push_back(c.type);
      for (size_t q = 0; q < queues_.size(); ++q) parts.emplace_back(types);
      // Batched partition hashing: one type-specialized pass per key column
      // instead of a per-row HashEntry dispatch.
      HashRows(block, partition_columns_, kGroupKeySeed, &hashes);
      for (size_t r = 0; r < block.NumRows(); ++r) {
        parts[hashes[r] % queues_.size()].AppendRowFrom(block, r);
      }
      for (size_t q = 0; q < queues_.size() && alive; ++q) {
        if (parts[q].NumRows() > 0) alive = Push(q, std::move(parts[q]));
      }
    }
    if (!alive) break;  // exchange cancelled by consumers
  }
  if (st.ok()) st = op->Close();
  std::unique_lock lock(mu_);
  if (!st.ok() && error_.ok()) error_ = st;
  if (--producers_running_ == 0) CloseAll();
}

Status ExchangeState::Pop(size_t c, RowBlock* out) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return !queues_[c].blocks.empty() || queues_[c].closed; });
  if (!error_.ok()) return error_;
  if (queues_[c].blocks.empty()) {
    out->Clear();
    out->columns.clear();
    return Status::OK();  // EOF: empty block with no columns
  }
  *out = std::move(queues_[c].blocks.front());
  queues_[c].blocks.pop_front();
  cv_.notify_all();
  return Status::OK();
}

std::string ExchangeConsumerOperator::DebugString() const {
  return label_ + "(" + std::to_string(state_->producers().size()) + " pipelines -> " +
         std::to_string(state_->num_consumers()) + ")";
}

std::vector<Operator*> ExchangeConsumerOperator::Children() const {
  // Only the first consumer lists the producers, so EXPLAIN prints each
  // producer pipeline once.
  std::vector<Operator*> kids;
  if (index_ == 0) {
    for (const auto& p : state_->producers()) kids.push_back(p.get());
  }
  return kids;
}

OperatorPtr MakeUnionExchange(std::vector<OperatorPtr> producers, std::string label,
                              bool count_network) {
  std::vector<TypeId> types = producers.front()->OutputTypes();
  std::vector<std::string> names = producers.front()->OutputNames();
  auto state = std::make_shared<ExchangeState>(std::move(producers), 1,
                                               std::vector<uint32_t>{}, count_network);
  return std::make_unique<ExchangeConsumerOperator>(state, 0, types, names,
                                                    std::move(label));
}

std::vector<OperatorPtr> MakeRepartitionExchange(std::vector<OperatorPtr> producers,
                                                 size_t num_consumers,
                                                 std::vector<uint32_t> partition_columns,
                                                 std::string label,
                                                 bool count_network) {
  std::vector<TypeId> types = producers.front()->OutputTypes();
  std::vector<std::string> names = producers.front()->OutputNames();
  auto state = std::make_shared<ExchangeState>(
      std::move(producers), num_consumers, std::move(partition_columns), count_network);
  std::vector<OperatorPtr> consumers;
  for (size_t c = 0; c < num_consumers; ++c) {
    consumers.push_back(std::make_unique<ExchangeConsumerOperator>(
        state, c, types, names, label));
  }
  return consumers;
}

}  // namespace stratica
