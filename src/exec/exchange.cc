#include "exec/exchange.h"

#include <algorithm>

#include "common/hash.h"

namespace stratica {

ExchangeState::ExchangeState(std::vector<ExchangeProducerSpec> producers,
                             size_t num_consumers,
                             std::vector<uint32_t> partition_columns,
                             bool count_network)
    : partition_columns_(std::move(partition_columns)),
      count_network_(count_network),
      queues_(num_consumers) {
  producers_.reserve(producers.size());
  slots_.reserve(producers.size());
  for (auto& spec : producers) {
    producers_.push_back(std::move(spec.op));
    Slot s;
    s.origin = std::move(spec.origin);
    s.rebuild = std::move(spec.rebuild);
    slots_.push_back(std::move(s));
  }
}

ExchangeState::ExchangeState(std::vector<OperatorPtr> producers, size_t num_consumers,
                             std::vector<uint32_t> partition_columns,
                             bool count_network)
    : partition_columns_(std::move(partition_columns)),
      count_network_(count_network),
      queues_(num_consumers) {
  producers_ = std::move(producers);
  slots_.resize(producers_.size());
}

ExchangeState::~ExchangeState() {
  {
    // A failed query can destroy the tree without draining or closing every
    // consumer; producers may be blocked in Push waiting for queue room.
    // Cancel first or the joins below deadlock. cancelled_ also stops any
    // further hedge/reroute spawns, so joining below is safe.
    // Abandoning every source keeps the joins short: a producer mid-scan on
    // a straggler bails after its current storage op instead of finishing.
    std::unique_lock lock(mu_);
    cancelled_ = true;
    for (auto& s : slots_) AbandonLosers(s, -1);
    cv_.notify_all();
  }
  JoinProducers();
}

void ExchangeState::JoinProducers() {
  std::vector<Scheduler::Pinned> tasks;
  {
    std::lock_guard lock(mu_);
    tasks.swap(tasks_);
  }
  for (auto& t : tasks) t.Join();
}

void ExchangeState::Start(ExecContext* ctx) {
  std::unique_lock lock(mu_);
  if (started_) return;
  started_ = true;
  ctx_ = ctx;
  hedge_deadline_ms_ = ctx ? ctx->hedge_deadline_ms : 0;
  max_sources_ = 1 + (ctx ? ctx->hedge_max_attempts : 0);
  scheduler_ = (ctx && ctx->scheduler) ? ctx->scheduler : Scheduler::Default();
  consumer_abandon_ = ctx ? ctx->abandon : nullptr;
  if (producers_.empty()) {
    CloseAll();
    return;
  }
  auto first_deadline = Clock::now() + std::chrono::milliseconds(hedge_deadline_ms_);
  for (auto& s : slots_) {
    s.running = 1;
    s.deadline = first_deadline;
    s.abandons.assign(1, std::make_shared<std::atomic<bool>>(false));
  }
  for (size_t p = 0; p < producers_.size(); ++p) {
    Operator* op = producers_[p].get();
    tasks_.push_back(scheduler_->StartPinned(
        [this, p, op, ctx] { ProducerLoop(p, /*source=*/0, op, ctx); }));
  }
}

bool ExchangeState::Push(size_t slot, int source, size_t c, RowBlock block) {
  std::unique_lock lock(mu_);
  Slot& s = slots_[slot];
  // First block out of any source claims the slot; later sources for the
  // same slot are orphans and their output is dropped (no duplicates). The
  // losers are told to stop scanning.
  if (s.claimed_by == -1 && !s.done) {
    s.claimed_by = source;
    AbandonLosers(s, source);
  }
  if (s.claimed_by != source) return false;
  // Count traffic under mu_ so the stat is visible before any consumer can
  // pop the block. Orphaned hedges never reach here, so they can't inflate
  // the stat; cancellation-dropped blocks count, as they always have.
  if (count_network_ && ctx_ && ctx_->stats) {
    ctx_->stats->exchange_bytes.fetch_add(block.MemoryBytes(),
                                          std::memory_order_relaxed);
  }
  cv_.wait(lock,
           [&] { return cancelled_ || queues_[c].blocks.size() < kQueueCapacity; });
  if (cancelled_) return false;
  queues_[c].blocks.push_back(std::move(block));
  cv_.notify_all();
  return true;
}

void ExchangeState::ConsumerClosed() {
  bool last = false;
  {
    std::unique_lock lock(mu_);
    if (++consumers_closed_ >= queues_.size()) {
      cancelled_ = true;
      for (auto& s : slots_) AbandonLosers(s, -1);
      cv_.notify_all();
      last = true;
    }
  }
  // DESIGN.md §12 invariant: once the last consumer closes, every producer
  // task is joined before Close returns — cancellation + abandonment above
  // keeps the joins short, and nothing downstream can observe a worker
  // touching plan state after teardown.
  if (last) JoinProducers();
}

void ExchangeState::CloseAll() {
  // Output is complete (or doomed): whatever any source still produces is
  // unwanted, so tell them all to stop.
  for (auto& s : slots_) AbandonLosers(s, -1);
  for (auto& q : queues_) q.closed = true;
  cv_.notify_all();
}

void ExchangeState::AbandonLosers(Slot& s, int winner) {
  for (size_t i = 0; i < s.abandons.size(); ++i) {
    if (static_cast<int>(i) == winner || s.abandons[i] == nullptr) continue;
    s.abandons[i]->store(true, std::memory_order_relaxed);
  }
}

Status ExchangeState::ContextualError(size_t slot, const Status& st) const {
  const std::string& origin = slots_[slot].origin;
  return Status(st.code(), "exchange partition " + std::to_string(slot) + " (" +
                               (origin.empty() ? "local" : origin) +
                               "): " + st.message());
}

void ExchangeState::SpawnBackup(size_t slot, ExecContext* ctx) {
  int source = static_cast<int>(slots_[slot].attempts) - 1;
  slots_[slot].abandons.resize(static_cast<size_t>(source) + 1);
  slots_[slot].abandons[source] = std::make_shared<std::atomic<bool>>(false);
  tasks_.push_back(scheduler_->StartPinned([this, slot, source, ctx] {
    // Plan the replacement pipeline outside mu_: rebuild consults the
    // cluster for a healthy buddy and may do real work.
    Result<OperatorPtr> rebuilt = slots_[slot].rebuild();
    if (!rebuilt.ok()) {
      FinishSource(slot, source, rebuilt.status(), ctx);
      return;
    }
    Operator* op = nullptr;
    {
      std::lock_guard lock(mu_);
      backup_ops_.push_back(std::move(rebuilt).value());
      op = backup_ops_.back().get();
    }
    ProducerLoop(slot, source, op, ctx);
  }));
}

ExchangeState::Clock::time_point ExchangeState::MaybeHedge(ExecContext* ctx) {
  auto now = Clock::now();
  auto next = Clock::time_point::max();
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    // Only zero-progress slots with a live primary and a rebuild recipe are
    // hedge-eligible; dead sources go through the FinishSource reroute path.
    if (s.done || s.claimed_by != -1 || !s.rebuild) continue;
    if (s.attempts >= max_sources_ || s.running == 0) continue;
    if (s.deadline > now) {
      next = std::min(next, s.deadline);
      continue;
    }
    ++s.attempts;
    ++s.running;
    // Exponential backoff: each attempt doubles the wait for the next one.
    s.deadline = now + std::chrono::milliseconds(hedge_deadline_ms_
                                                 << (s.attempts - 1));
    if (ctx && ctx->stats) {
      ctx->stats->exchange_hedges.fetch_add(1, std::memory_order_relaxed);
    }
    SpawnBackup(i, ctx);
    if (s.attempts < max_sources_) next = std::min(next, s.deadline);
  }
  return next;
}

void ExchangeState::FinishSource(size_t slot, int source, Status st,
                                 ExecContext* ctx) {
  std::unique_lock lock(mu_);
  Slot& s = slots_[slot];
  if (s.running > 0) --s.running;
  if (s.done) return;  // slot already resolved by another source
  if (s.claimed_by == source) {
    if (st.ok()) {
      s.done = true;
      AbandonLosers(s, -1);
      if (++slots_done_ == slots_.size()) CloseAll();
    } else {
      // The claimed source already emitted blocks; consumers may have seen
      // them, so the exchange cannot replay this partition. Surface the
      // error with its origin; statement-level replan handles recovery.
      if (error_.ok()) error_ = ContextualError(slot, st);
      CloseAll();
    }
    return;
  }
  if (s.claimed_by != -1) {
    // Another source owns the slot. Usually an orphan exiting quietly — but
    // if the planned PRIMARY is the one failing here, the partition has
    // effectively failed over to the buddy that claimed it (a hedge that beat
    // the primary to its error). Count the failover.
    if (source == 0 && !st.ok() && ctx && ctx->stats) {
      ctx->stats->exchange_reroutes.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (st.ok()) {
    // Finished cleanly with an empty result: claim so late hedges drop out.
    s.claimed_by = source;
    s.done = true;
    AbandonLosers(s, -1);
    if (++slots_done_ == slots_.size()) CloseAll();
    return;
  }
  // Zero-progress failure. A hedge may still be in flight for this slot —
  // when the failing source is the planned primary, that in-flight backup is
  // now the slot's only hope, so the failure IS a failover even though the
  // re-issue predates it. Otherwise re-issue against the buddy copy here.
  if (s.running > 0) {
    if (source == 0 && ctx && ctx->stats) {
      ctx->stats->exchange_reroutes.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (!cancelled_ && s.rebuild && s.attempts < max_sources_) {
    ++s.attempts;
    ++s.running;
    if (ctx && ctx->stats) {
      ctx->stats->exchange_reroutes.fetch_add(1, std::memory_order_relaxed);
    }
    SpawnBackup(slot, ctx);
    return;
  }
  if (error_.ok()) error_ = ContextualError(slot, st);
  CloseAll();
}

void ExchangeState::ProducerLoop(size_t slot, int source, Operator* op,
                                 ExecContext* ctx) {
  // Run the pipeline under a private copy of the query context carrying this
  // source's abandon flag and a thread-local ExecStats — hot-path counters
  // touch no shared cache line; they merge into the query's stats at the
  // pipeline barrier below (DESIGN.md §12). Only the operator calls see the
  // copy — the original `ctx` goes to FinishSource, which may capture it
  // into a backup task outliving this stack frame.
  std::shared_ptr<std::atomic<bool>> abandon;
  std::shared_ptr<ExecStats> local_stats = std::make_shared<ExecStats>();
  {
    std::lock_guard lock(mu_);
    auto& flags = slots_[slot].abandons;
    if (static_cast<size_t>(source) < flags.size()) abandon = flags[source];
    source_stats_.push_back(local_stats);
  }
  ExecContext pctx;
  ExecContext* op_ctx = ctx;
  if (ctx != nullptr) {
    pctx = *ctx;
    pctx.abandon = abandon.get();
    if (ctx->stats != nullptr) pctx.stats = local_stats.get();
    op_ctx = &pctx;
  }
  Status st = op->Open(op_ctx);
  std::vector<uint64_t> hashes;  // partition-hash scratch, reused per block
  while (st.ok()) {
    RowBlock block;
    st = op->GetNext(&block);
    if (!st.ok() || block.NumRows() == 0) break;
    bool alive = true;
    if (partition_columns_.empty() || queues_.size() == 1) {
      alive = Push(slot, source, slot % queues_.size(), std::move(block));
    } else {
      block.DecodeAll();
      std::vector<RowBlock> parts;
      parts.reserve(queues_.size());
      std::vector<TypeId> types;
      for (const auto& c : block.columns) types.push_back(c.type);
      for (size_t q = 0; q < queues_.size(); ++q) parts.emplace_back(types);
      // Batched partition hashing: one type-specialized pass per key column
      // instead of a per-row HashEntry dispatch.
      HashRows(block, partition_columns_, kGroupKeySeed, &hashes);
      for (size_t r = 0; r < block.NumRows(); ++r) {
        parts[hashes[r] % queues_.size()].AppendRowFrom(block, r);
      }
      for (size_t q = 0; q < queues_.size() && alive; ++q) {
        if (parts[q].NumRows() == 0) continue;
        alive = Push(slot, source, q, std::move(parts[q]));
      }
    }
    if (!alive) break;  // exchange cancelled, or this source lost its claim
  }
  if (st.ok()) st = op->Close();
  // Pipeline barrier: fold this source's thread-local counters into the
  // query's stats exactly once, before the slot resolves. Orphaned hedges
  // merge too — their scanned rows were really scanned, as before. (On
  // error paths nested workers may still bump *local_stats afterwards; the
  // state owns the object, so that is safe, merely uncounted.)
  if (ctx != nullptr && ctx->stats != nullptr) ctx->stats->MergeFrom(*local_stats);
  FinishSource(slot, source, std::move(st), ctx);
}

Status ExchangeState::Pop(size_t c, RowBlock* out) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (!error_.ok()) return error_;
    if (!queues_[c].blocks.empty()) {
      *out = std::move(queues_[c].blocks.front());
      queues_[c].blocks.pop_front();
      cv_.notify_all();
      return Status::OK();
    }
    if (queues_[c].closed) {
      out->Clear();
      out->columns.clear();
      return Status::OK();  // EOF: empty block with no columns
    }
    if (consumer_abandon_ != nullptr &&
        consumer_abandon_->load(std::memory_order_relaxed)) {
      // The pipeline this exchange feeds was itself abandoned (we are a
      // nested exchange under a hedged-past or cancelled producer). Cancel
      // so our own producers' abandon flags rise — this is how abandonment
      // reaches every morsel worker through nested exchanges — and return
      // EOF; the dropped output was unwanted anyway.
      cancelled_ = true;
      for (auto& s : slots_) AbandonLosers(s, -1);
      cv_.notify_all();
      out->Clear();
      out->columns.clear();
      return Status::OK();
    }
    // Bounded waits: a starving consumer doubles as the hedging clock when
    // hedging is on, and either way it must wake to notice consumer-side
    // abandonment (there is no cv signal for a flag set by another
    // exchange).
    auto poll = Clock::now() + std::chrono::milliseconds(10);
    if (hedge_deadline_ms_ > 0) {
      auto due = MaybeHedge(ctx_);
      cv_.wait_until(lock, std::min(due, poll));
    } else if (consumer_abandon_ != nullptr) {
      cv_.wait_until(lock, poll);
    } else {
      cv_.wait(lock);
    }
  }
}

std::string ExchangeConsumerOperator::DebugString() const {
  return label_ + "(" + std::to_string(state_->producers().size()) + " pipelines -> " +
         std::to_string(state_->num_consumers()) + ")";
}

std::vector<Operator*> ExchangeConsumerOperator::Children() const {
  // Only the first consumer lists the producers, so EXPLAIN prints each
  // producer pipeline once.
  std::vector<Operator*> kids;
  if (index_ == 0) {
    for (const auto& p : state_->producers()) kids.push_back(p.get());
  }
  return kids;
}

OperatorPtr MakeUnionExchange(std::vector<OperatorPtr> producers, std::string label,
                              bool count_network) {
  std::vector<TypeId> types = producers.front()->OutputTypes();
  std::vector<std::string> names = producers.front()->OutputNames();
  auto state = std::make_shared<ExchangeState>(std::move(producers), 1,
                                               std::vector<uint32_t>{}, count_network);
  return std::make_unique<ExchangeConsumerOperator>(state, 0, types, names,
                                                    std::move(label));
}

OperatorPtr MakeUnionExchange(std::vector<ExchangeProducerSpec> producers,
                              std::string label, bool count_network) {
  std::vector<TypeId> types = producers.front().op->OutputTypes();
  std::vector<std::string> names = producers.front().op->OutputNames();
  auto state = std::make_shared<ExchangeState>(std::move(producers), 1,
                                               std::vector<uint32_t>{}, count_network);
  return std::make_unique<ExchangeConsumerOperator>(state, 0, types, names,
                                                    std::move(label));
}

std::vector<OperatorPtr> MakeRepartitionExchange(std::vector<OperatorPtr> producers,
                                                 size_t num_consumers,
                                                 std::vector<uint32_t> partition_columns,
                                                 std::string label,
                                                 bool count_network) {
  std::vector<TypeId> types = producers.front()->OutputTypes();
  std::vector<std::string> names = producers.front()->OutputNames();
  auto state = std::make_shared<ExchangeState>(
      std::move(producers), num_consumers, std::move(partition_columns), count_network);
  std::vector<OperatorPtr> consumers;
  for (size_t c = 0; c < num_consumers; ++c) {
    consumers.push_back(std::make_unique<ExchangeConsumerOperator>(
        state, c, types, names, label));
  }
  return consumers;
}

}  // namespace stratica
