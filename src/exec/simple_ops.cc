#include "exec/simple_ops.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace stratica {

std::string ExplainTree(const Operator& root) {
  std::ostringstream out;
  struct Frame {
    const Operator* op;
    int depth;
  };
  std::vector<Frame> stack = {{&root, 0}};
  while (!stack.empty()) {
    auto [op, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out << "  ";
    out << op->DebugString() << "\n";
    auto children = op->Children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out.str();
}

size_t EstimatePlanMemory(const Operator& root) {
  size_t total = root.MemoryEstimateBytes();
  for (const Operator* child : root.Children()) total += EstimatePlanMemory(*child);
  return total;
}

Result<RowBlock> DrainOperator(Operator* op, ExecContext* ctx) {
  STRATICA_RETURN_NOT_OK(op->Open(ctx));
  RowBlock all(op->OutputTypes());
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(op->GetNext(&block));
    if (block.NumRows() == 0) break;
    block.DecodeAll();
    for (size_t r = 0; r < block.NumRows(); ++r) all.AppendRowFrom(block, r);
  }
  STRATICA_RETURN_NOT_OK(op->Close());
  return all;
}

Status MaterializedOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  const RowBlock& rows = Rows();
  size_t n = rows.NumRows();
  if (cursor_ >= n) return Status::OK();
  size_t take = std::min(ctx_->vector_size, n - cursor_);
  for (size_t r = 0; r < take; ++r) out->AppendRowFrom(rows, cursor_ + r);
  cursor_ += take;
  return Status::OK();
}

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)), names_(std::move(names)) {}

Status ProjectOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

std::vector<TypeId> ProjectOperator::OutputTypes() const {
  std::vector<TypeId> t;
  for (const auto& e : exprs_) t.push_back(e->type);
  return t;
}

Status ProjectOperator::GetNext(RowBlock* out) {
  RowBlock in;
  STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
  *out = RowBlock(OutputTypes());
  if (in.NumRows() == 0) return Status::OK();
  // Compressed execution (DESIGN.md §13): a bare column reference passes the
  // child's column through with runs/dict codes intact — the downstream
  // consumer decides whether to decode. Only non-trivial expressions force
  // the block flat.
  bool any_compute = false;
  for (const auto& e : exprs_) any_compute |= e->kind != ExprKind::kColumnRef;
  if (any_compute) in.DecodeAll();
  for (size_t c = 0; c < exprs_.size(); ++c) {
    const Expr& e = *exprs_[c];
    if (e.kind == ExprKind::kColumnRef && e.column_index >= 0 &&
        e.column_index < static_cast<int>(in.columns.size())) {
      const ColumnVector& src = in.columns[e.column_index];
      if (!src.IsFlat() && ctx_ != nullptr && ctx_->stats) {
        ctx_->stats->rows_processed_encoded.fetch_add(in.NumRows());
      }
      out->columns[c] = src;
      continue;
    }
    STRATICA_RETURN_NOT_OK(EvalExpr(e, in, &out->columns[c]));
  }
  return Status::OK();
}

std::string ProjectOperator::DebugString() const {
  std::string s = "ExprEval(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i) s += ", ";
    s += exprs_[i]->ToString();
  }
  return s + ")";
}

Status FilterOperator::GetNext(RowBlock* out) {
  for (;;) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    *out = std::move(in);
    if (out->NumRows() == 0) return Status::OK();
    // Encoded blocks filter without expansion: the predicate's fast paths
    // evaluate by run / dictionary entry and the selection re-cuts runs
    // (FilterRuns) or compacts codes (FilterPhysical on a dict column).
    std::vector<uint8_t> sel;
    uint64_t enc_rows = 0;
    STRATICA_RETURN_NOT_OK(EvalPredicate(*predicate_, *out, &sel, &enc_rows));
    if (enc_rows > 0 && ctx_ != nullptr && ctx_->stats) {
      ctx_->stats->rows_processed_encoded.fetch_add(enc_rows);
    }
    for (auto& col : out->columns) {
      if (col.IsRle()) {
        col.FilterRuns(sel);
      } else {
        col.FilterPhysical(sel);
      }
    }
    if (out->NumRows() > 0) return Status::OK();
  }
}

RowBlock SortOperator::SortBuffer() {
  std::vector<uint32_t> perm = ComputeSortPermutationDirected(buffer_, keys_);
  return ApplyPermutation(buffer_, perm);
}

Status SortOperator::SpillRun() {
  RowBlock sorted = SortBuffer();
  buffer_ = RowBlock(child_->OutputTypes());
  buffer_bytes_ = 0;
  if (sorted.NumRows() == 0) return Status::OK();
  SpillWriter writer(ctx_->fs, ctx_->NextSpillPath());
  STRATICA_RETURN_NOT_OK(writer.Append(sorted));
  STRATICA_RETURN_NOT_OK(writer.Finish());
  if (ctx_->stats) {
    ctx_->stats->rows_spilled.fetch_add(sorted.NumRows());
    ctx_->stats->spill_files.fetch_add(1);
    ctx_->stats->sort_runs.fetch_add(1);
    auto size = ctx_->fs->FileSize(writer.path());
    if (size.ok()) ctx_->stats->sort_spilled_bytes.fetch_add(size.value());
  }
  run_paths_.push_back(writer.path());
  return Status::OK();
}

Status SortOperator::ConsumeRuns() {
  for (;;) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    if (in.NumRows() == 0) break;
    in.DecodeAll();
    size_t bytes = in.MemoryBytes();
    for (size_t c = 0; c < buffer_.columns.size(); ++c) {
      buffer_.columns[c].AppendRange(in.columns[c], 0, in.NumRows());
    }
    buffer_bytes_ += bytes;
    // Externalize when either limit runs out (Section 6.1: all operators can
    // handle arbitrary inputs regardless of allocated memory): the shared
    // ResourceBudget when one is installed, and the per-sort spill ceiling
    // always — an unbudgeted context must not buffer the whole input.
    bool over_budget = ctx_->budget != nullptr && !ctx_->budget->TryReserve(bytes);
    if (!over_budget && ctx_->budget != nullptr) reserved_ += bytes;
    bool over_limit =
        ctx_->sort_memory_bytes > 0 && buffer_bytes_ > ctx_->sort_memory_bytes;
    if (over_budget || over_limit) {
      STRATICA_RETURN_NOT_OK(SpillRun());
      if (ctx_->budget != nullptr) {
        ctx_->budget->Release(reserved_);
        reserved_ = 0;
      }
    }
  }

  if (run_paths_.empty()) {
    sorted_ = SortBuffer();
    buffer_ = RowBlock(child_->OutputTypes());
    merge_mode_ = false;
    return Status::OK();
  }
  // The final run stays in memory; spilled runs stream back block-wise.
  // Input order = run order (earlier input rows in earlier runs), so the
  // merger's low-index tie-break keeps the overall sort stable.
  std::vector<std::unique_ptr<MergeInput>> inputs;
  for (const auto& path : run_paths_) {
    inputs.push_back(
        std::make_unique<SpillMergeInput>(ctx_->fs, path, child_->OutputTypes()));
  }
  RowBlock last = SortBuffer();
  buffer_ = RowBlock(child_->OutputTypes());
  if (last.NumRows() > 0) {
    inputs.push_back(std::make_unique<BlockMergeInput>(std::move(last)));
  }
  merger_ = std::make_unique<LoserTreeMerger>(std::move(inputs), keys_);
  STRATICA_RETURN_NOT_OK(merger_->Init());
  merge_mode_ = true;
  return Status::OK();
}

void SortOperator::CompactTopKStore() {
  std::vector<uint32_t> live;
  live.reserve(heap_.size());
  for (const auto& e : heap_) live.push_back(e.row);
  RowBlock compact(child_->OutputTypes());
  for (size_t c = 0; c < compact.columns.size(); ++c) {
    compact.columns[c].AppendGather(topk_store_.columns[c], live);
  }
  topk_store_ = std::move(compact);
  for (size_t i = 0; i < heap_.size(); ++i) {
    heap_[i].row = static_cast<uint32_t>(i);
  }
}

Status SortOperator::ConsumeTopK() {
  // Max-heap ordered by (key, seq): the root is the current k-th (worst)
  // kept row. A new row displaces it only when strictly smaller — an equal
  // key loses to the incumbent's earlier sequence number, which is exactly
  // the tie a stable full sort would resolve the same way.
  auto worse = [](const TopKEntry& a, const TopKEntry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  };
  const size_t k = static_cast<size_t>(limit_hint_);
  NormalizedKeys nk;
  uint64_t pruned = 0;
  for (;;) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    if (in.NumRows() == 0) break;
    in.DecodeAll();
    BuildNormalizedKeys(in, keys_, &nk);
    for (size_t r = 0; r < in.NumRows(); ++r) {
      const char* kd = reinterpret_cast<const char*>(nk.Data(r));
      size_t kl = nk.Length(r);
      if (heap_.size() < k) {
        topk_store_.AppendRowFrom(in, r);
        heap_.push_back({std::string(kd, kl), topk_seq_++,
                         static_cast<uint32_t>(topk_store_.NumRows() - 1)});
        std::push_heap(heap_.begin(), heap_.end(), worse);
        continue;
      }
      const TopKEntry& top = heap_.front();
      if (top.key.compare(0, top.key.size(), kd, kl) <= 0) {
        ++topk_seq_;
        ++pruned;
        continue;  // cannot beat the current k-th row
      }
      std::pop_heap(heap_.begin(), heap_.end(), worse);
      topk_store_.AppendRowFrom(in, r);
      heap_.back() = {std::string(kd, kl), topk_seq_++,
                      static_cast<uint32_t>(topk_store_.NumRows() - 1)};
      std::push_heap(heap_.begin(), heap_.end(), worse);
      // Compact on row growth, or on byte growth for wide rows — the store
      // must not outgrow the sort budget just because replaced rows linger
      // (live rows are O(result) and must fit to be returned at all). The
      // byte check walks the store, so it runs every 1024 insertions.
      if (topk_store_.NumRows() > 4 * k + 1024 ||
          ((topk_store_.NumRows() & 1023) == 0 && ctx_->sort_memory_bytes > 0 &&
           topk_store_.NumRows() > 2 * k &&
           topk_store_.MemoryBytes() > ctx_->sort_memory_bytes)) {
        CompactTopKStore();
      }
    }
  }
  if (ctx_->stats && pruned > 0) ctx_->stats->topk_rows_pruned.fetch_add(pruned);

  std::vector<TopKEntry> final_order = std::move(heap_);
  heap_.clear();
  std::sort(final_order.begin(), final_order.end(), worse);
  std::vector<uint32_t> rows;
  rows.reserve(final_order.size());
  for (const auto& e : final_order) rows.push_back(e.row);
  sorted_ = RowBlock(child_->OutputTypes());
  for (size_t c = 0; c < sorted_.columns.size(); ++c) {
    sorted_.columns[c].AppendGather(topk_store_.columns[c], rows);
  }
  topk_store_ = RowBlock(child_->OutputTypes());
  merge_mode_ = false;
  return Status::OK();
}

Status SortOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  STRATICA_RETURN_NOT_OK(child_->Open(ctx));
  buffer_ = RowBlock(child_->OutputTypes());
  topk_store_ = RowBlock(child_->OutputTypes());
  heap_.clear();
  run_paths_.clear();
  merger_.reset();
  sorted_ = RowBlock(child_->OutputTypes());
  cursor_ = 0;
  reserved_ = 0;
  buffer_bytes_ = 0;
  topk_seq_ = 0;
  merge_mode_ = false;

  Status consumed =
      limit_hint_ > 0 ? ConsumeTopK() : ConsumeRuns();
  if (ctx->budget != nullptr) {
    ctx->budget->Release(reserved_);
    reserved_ = 0;
  }
  return consumed;
}

Status SortOperator::GetNext(RowBlock* out) {
  *out = RowBlock(child_->OutputTypes());
  if (!merge_mode_) {
    size_t n = sorted_.NumRows();
    if (cursor_ >= n) return Status::OK();
    size_t take = std::min(ctx_->vector_size, n - cursor_);
    for (size_t c = 0; c < out->columns.size(); ++c) {
      out->columns[c].AppendRange(sorted_.columns[c], cursor_, take);
    }
    cursor_ += take;
    return Status::OK();
  }
  return merger_->Next(out, ctx_->vector_size);
}

std::string SortOperator::DebugString() const {
  std::string s = "Sort(keys: ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(keys_[i].column);
    if (keys_[i].descending) s += " DESC";
  }
  if (limit_hint_ > 0) s += ", top-k: " + std::to_string(limit_hint_);
  if (!run_paths_.empty())
    s += ", external runs: " + std::to_string(run_paths_.size());
  return s + ")";
}

Status LimitOperator::GetNext(RowBlock* out) {
  *out = RowBlock(child_->OutputTypes());
  while (emitted_ < limit_) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    if (in.NumRows() == 0) return Status::OK();
    in.DecodeAll();
    for (size_t r = 0; r < in.NumRows() && emitted_ < limit_; ++r) {
      if (seen_++ < offset_) continue;
      out->AppendRowFrom(in, r);
      ++emitted_;
    }
    if (out->NumRows() > 0) return Status::OK();
  }
  return Status::OK();
}

}  // namespace stratica
