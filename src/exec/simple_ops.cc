#include "exec/simple_ops.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace stratica {

std::string ExplainTree(const Operator& root) {
  std::ostringstream out;
  struct Frame {
    const Operator* op;
    int depth;
  };
  std::vector<Frame> stack = {{&root, 0}};
  while (!stack.empty()) {
    auto [op, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out << "  ";
    out << op->DebugString() << "\n";
    auto children = op->Children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out.str();
}

Result<RowBlock> DrainOperator(Operator* op, ExecContext* ctx) {
  STRATICA_RETURN_NOT_OK(op->Open(ctx));
  RowBlock all(op->OutputTypes());
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(op->GetNext(&block));
    if (block.NumRows() == 0) break;
    block.DecodeAll();
    for (size_t r = 0; r < block.NumRows(); ++r) all.AppendRowFrom(block, r);
  }
  STRATICA_RETURN_NOT_OK(op->Close());
  return all;
}

Status MaterializedOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  const RowBlock& rows = Rows();
  size_t n = rows.NumRows();
  if (cursor_ >= n) return Status::OK();
  size_t take = std::min(ctx_->vector_size, n - cursor_);
  for (size_t r = 0; r < take; ++r) out->AppendRowFrom(rows, cursor_ + r);
  cursor_ += take;
  return Status::OK();
}

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)), names_(std::move(names)) {}

Status ProjectOperator::Open(ExecContext* ctx) { return child_->Open(ctx); }

std::vector<TypeId> ProjectOperator::OutputTypes() const {
  std::vector<TypeId> t;
  for (const auto& e : exprs_) t.push_back(e->type);
  return t;
}

Status ProjectOperator::GetNext(RowBlock* out) {
  RowBlock in;
  STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
  *out = RowBlock(OutputTypes());
  if (in.NumRows() == 0) return Status::OK();
  in.DecodeAll();
  for (size_t c = 0; c < exprs_.size(); ++c) {
    STRATICA_RETURN_NOT_OK(EvalExpr(*exprs_[c], in, &out->columns[c]));
  }
  return Status::OK();
}

std::string ProjectOperator::DebugString() const {
  std::string s = "ExprEval(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i) s += ", ";
    s += exprs_[i]->ToString();
  }
  return s + ")";
}

Status FilterOperator::GetNext(RowBlock* out) {
  for (;;) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    *out = std::move(in);
    if (out->NumRows() == 0) return Status::OK();
    out->DecodeAll();
    std::vector<uint8_t> sel;
    STRATICA_RETURN_NOT_OK(EvalPredicate(*predicate_, *out, &sel));
    for (auto& col : out->columns) col.FilterPhysical(sel);
    if (out->NumRows() > 0) return Status::OK();
  }
}

int CompareRowsDirected(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                        const std::vector<SortKey>& keys) {
  for (const auto& key : keys) {
    int c = ColumnVector::CompareEntries(a.columns[key.column], ia,
                                         b.columns[key.column], ib);
    if (c != 0) return key.descending ? -c : c;
  }
  return 0;
}

RowBlock SortOperator::SortBuffer() {
  std::vector<uint32_t> perm(buffer_.NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    return CompareRowsDirected(buffer_, x, buffer_, y, keys_) < 0;
  });
  RowBlock sorted(child_->OutputTypes());
  for (uint32_t r : perm) sorted.AppendRowFrom(buffer_, r);
  return sorted;
}

Status SortOperator::SpillRun(RowBlock sorted) {
  if (sorted.NumRows() == 0) return Status::OK();
  SpillWriter writer(ctx_->fs, ctx_->NextSpillPath());
  STRATICA_RETURN_NOT_OK(writer.Append(sorted));
  STRATICA_RETURN_NOT_OK(writer.Finish());
  if (ctx_->stats) {
    ctx_->stats->rows_spilled.fetch_add(sorted.NumRows());
    ctx_->stats->spill_files.fetch_add(1);
  }
  Run run;
  run.reader = std::make_unique<SpillReader>(ctx_->fs, writer.path(),
                                             child_->OutputTypes());
  runs_.push_back(std::move(run));
  return Status::OK();
}

Status SortOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  STRATICA_RETURN_NOT_OK(child_->Open(ctx));
  buffer_ = RowBlock(child_->OutputTypes());
  runs_.clear();
  cursor_ = 0;
  reserved_ = 0;

  for (;;) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    if (in.NumRows() == 0) break;
    in.DecodeAll();
    size_t bytes = in.MemoryBytes();
    for (size_t r = 0; r < in.NumRows(); ++r) buffer_.AppendRowFrom(in, r);
    // Externalize when the budget runs out (Section 6.1: all operators can
    // handle arbitrary inputs regardless of allocated memory).
    if (ctx->budget && !ctx->budget->TryReserve(bytes)) {
      STRATICA_RETURN_NOT_OK(SpillRun(SortBuffer()));
      buffer_ = RowBlock(child_->OutputTypes());
      ctx->budget->Release(reserved_);
      reserved_ = 0;
    } else if (ctx->budget) {
      reserved_ += bytes;
    }
  }

  if (runs_.empty()) {
    sorted_ = SortBuffer();
    merge_mode_ = false;
  } else {
    if (buffer_.NumRows() > 0) STRATICA_RETURN_NOT_OK(SpillRun(SortBuffer()));
    buffer_ = RowBlock(child_->OutputTypes());
    for (auto& run : runs_) {
      STRATICA_RETURN_NOT_OK(run.reader->Open());
      STRATICA_RETURN_NOT_OK(run.reader->Next(&run.current));
      run.exhausted = run.current.NumRows() == 0;
    }
    merge_mode_ = true;
  }
  if (ctx->budget) {
    ctx->budget->Release(reserved_);
    reserved_ = 0;
  }
  return Status::OK();
}

Status SortOperator::GetNext(RowBlock* out) {
  *out = RowBlock(child_->OutputTypes());
  if (!merge_mode_) {
    size_t n = sorted_.NumRows();
    if (cursor_ >= n) return Status::OK();
    size_t take = std::min(ctx_->vector_size, n - cursor_);
    for (size_t r = 0; r < take; ++r) out->AppendRowFrom(sorted_, cursor_ + r);
    cursor_ += take;
    return Status::OK();
  }
  while (out->NumRows() < ctx_->vector_size) {
    Run* best = nullptr;
    for (auto& run : runs_) {
      if (run.exhausted) continue;
      if (run.cursor >= run.current.NumRows()) {
        STRATICA_RETURN_NOT_OK(run.reader->Next(&run.current));
        run.cursor = 0;
        if (run.current.NumRows() == 0) {
          run.exhausted = true;
          continue;
        }
      }
      if (!best || CompareRowsDirected(run.current, run.cursor, best->current,
                                       best->cursor, keys_) < 0) {
        best = &run;
      }
    }
    if (!best) break;
    out->AppendRowFrom(best->current, best->cursor);
    ++best->cursor;
  }
  return Status::OK();
}

std::string SortOperator::DebugString() const {
  std::string s = "Sort(keys: ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(keys_[i].column);
    if (keys_[i].descending) s += " DESC";
  }
  if (!runs_.empty()) s += ", external runs: " + std::to_string(runs_.size());
  return s + ")";
}

Status LimitOperator::GetNext(RowBlock* out) {
  *out = RowBlock(child_->OutputTypes());
  while (emitted_ < limit_) {
    RowBlock in;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&in));
    if (in.NumRows() == 0) return Status::OK();
    in.DecodeAll();
    for (size_t r = 0; r < in.NumRows() && emitted_ < limit_; ++r) {
      if (seen_++ < offset_) continue;
      out->AppendRowFrom(in, r);
      ++emitted_;
    }
    if (out->NumRows() > 0) return Status::OK();
  }
  return Status::OK();
}

}  // namespace stratica
