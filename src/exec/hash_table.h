// Flat open-addressing hash structures for the vectorized execution engine.
//
// The hash-heavy operators (hash group-by, hash join, SIP filtering) used to
// go through std::unordered_multimap / std::unordered_set, paying a
// per-lookup allocation-heavy bucket walk. These tables store (hash, payload)
// in flat arrays with linear probing over a power-of-two slot directory, so a
// probe is one cache line in the common case and the batched entry points
// keep the inner loops free of per-row type dispatch (see DESIGN.md §5).
//
// FlatHashTable keys entries by their full 64-bit hash and chains payloads
// that share one hash (multimap semantics, needed by the join build side and
// by group-by hash collisions). Key *equality* stays with the caller: the
// chain yields candidate payload ids and the operator verifies them against
// its own key storage.
#ifndef STRATICA_EXEC_HASH_TABLE_H_
#define STRATICA_EXEC_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stratica {

/// \brief Linear-probing multimap from 64-bit hash to dense payload ids.
///
/// Payload ids are assigned densely in insertion order (entry N of the table
/// has id N), which matches how consumers store their row-wise payloads:
/// group-by keys row g, join build row r. Entries sharing an exact 64-bit
/// hash form an intrusive chain walked via Next(). Growth rebuilds the slot
/// directory only; ids are stable and there are no tombstones (the engine
/// never deletes individual keys — tables are built, probed, and dropped).
class FlatHashTable {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  FlatHashTable() { Rehash(kMinSlots); }

  /// Drop all entries but keep the allocated directory.
  void Clear();

  size_t NumEntries() const { return next_.size(); }
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Slot) + entry_hash_.capacity() * sizeof(uint64_t) +
           next_.capacity() * sizeof(uint32_t);
  }

  /// Pre-size the directory for about `n` distinct hashes.
  void Reserve(size_t n);

  /// First payload id whose hash equals `hash` exactly, or kNone.
  uint32_t Probe(uint64_t hash) const {
    size_t idx = static_cast<size_t>(hash) & mask_;
    for (;;) {
      const Slot& s = slots_[idx];
      if (s.head == kNone) return kNone;
      if (s.hash == hash) return s.head;
      idx = (idx + 1) & mask_;
    }
  }

  /// Batched probe: out_heads[i] = Probe(hashes[i]). The loop prefetches the
  /// home slot of upcoming hashes so independent probes overlap cache misses.
  void ProbeBatch(const uint64_t* hashes, size_t n, uint32_t* out_heads) const;

  /// Next payload in the equal-hash chain (kNone terminates).
  uint32_t Next(uint32_t payload) const { return next_[payload]; }

  /// Append a payload (id == NumEntries()) linked under `hash`.
  uint32_t Insert(uint64_t hash);

  /// Append a payload that participates in the dense id space but is never
  /// returned by probes (e.g. a build row with a NULL join key).
  uint32_t InsertUnlinked();

  /// Batch append payloads [NumEntries(), NumEntries()+n) for hashes[0..n).
  /// skip[i] != 0 inserts entry i unlinked. skip may be null (insert all).
  void InsertBatch(const uint64_t* hashes, size_t n, const uint8_t* skip = nullptr);

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t head = kNone;
  };
  static constexpr size_t kMinSlots = 16;
  /// Marks an entry that is not linked into any slot chain.
  static constexpr uint32_t kUnlinked = UINT32_MAX - 1;

  void Rehash(size_t new_slots);
  void GrowIfNeeded() {
    // Max load factor 7/8 over *distinct hashes*; chained duplicates don't
    // consume slots.
    if ((used_slots_ + 1) * 8 > slots_.size() * 7) Rehash(slots_.size() * 2);
  }
  /// Link entry `id` (hash `h`) into the directory. Requires a free slot.
  void Link(uint32_t id, uint64_t h);

  std::vector<Slot> slots_;
  std::vector<uint64_t> entry_hash_;  ///< per payload, for rehash + chains
  std::vector<uint32_t> next_;        ///< equal-hash chain / kUnlinked
  size_t mask_ = 0;
  size_t used_slots_ = 0;
};

/// \brief Linear-probing set of 64-bit hash values (SIP key membership).
///
/// Values are assumed pre-mixed (they come out of HashRows/HashCombine), so
/// the low bits index directly. Value 0 is tracked out of band because 0
/// marks an empty slot.
class FlatHashSet {
 public:
  FlatHashSet() { slots_.assign(kMinSlots, 0); mask_ = kMinSlots - 1; }

  void Clear();
  size_t Size() const { return size_ + (has_zero_ ? 1 : 0); }
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(uint64_t); }

  /// Pre-size for about `n` values.
  void Reserve(size_t n);

  void Insert(uint64_t value);

  bool Contains(uint64_t value) const {
    if (value == 0) return has_zero_;
    size_t idx = static_cast<size_t>(value) & mask_;
    for (;;) {
      uint64_t s = slots_[idx];
      if (s == value) return true;
      if (s == 0) return false;
      idx = (idx + 1) & mask_;
    }
  }

  /// out[i] = Contains(values[i]) ? 1 : 0, with home-slot prefetching.
  void ContainsBatch(const uint64_t* values, size_t n, uint8_t* out) const;

 private:
  static constexpr size_t kMinSlots = 16;

  void Rehash(size_t new_slots);

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;  ///< non-zero values stored
  bool has_zero_ = false;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_HASH_TABLE_H_
