#include "exec/spill.h"

#include "common/bitutil.h"
#include "storage/encoding.h"

namespace stratica {

std::string SerializeBlock(const RowBlock& block) {
  std::string out;
  PutVarint64(&out, block.NumColumns());
  for (const auto& col : block.columns) {
    ColumnVector flat = col.IsRle() ? col.Decoded() : col;
    out.push_back(static_cast<char>(flat.type));
    std::string payload;
    (void)EncodeBlock(EncodingId::kPlain, flat, 0, flat.PhysicalSize(), &payload);
    PutVarint64(&out, payload.size());
    out.append(payload);
  }
  return out;
}

Result<RowBlock> ParseBlock(const std::string& data, const std::vector<TypeId>& types) {
  size_t offset = 0;
  uint64_t ncols;
  if (!GetVarint64(data, &offset, &ncols)) return Status::Corruption("spill: ncols");
  if (ncols != types.size()) return Status::Corruption("spill: column count mismatch");
  RowBlock block(types);
  for (uint64_t c = 0; c < ncols; ++c) {
    if (offset >= data.size()) return Status::Corruption("spill: truncated");
    ++offset;  // type byte (redundant with `types`)
    uint64_t len;
    if (!GetVarint64(data, &offset, &len)) return Status::Corruption("spill: len");
    std::string payload = data.substr(offset, len);
    offset += len;
    size_t poff = 0;
    STRATICA_RETURN_NOT_OK(DecodeBlock(payload, &poff, types[c], &block.columns[c]));
  }
  return block;
}

Status SpillWriter::Append(const RowBlock& block) {
  // Empty blocks are EOF markers downstream; never write one mid-file.
  if (block.NumRows() == 0) return Status::OK();
  std::string bytes = SerializeBlock(block);
  PutVarint64(&buffer_, bytes.size());
  buffer_.append(bytes);
  rows_ += block.NumRows();
  return Status::OK();
}

Status SpillWriter::Finish() { return fs_->WriteFile(path_, buffer_); }

Status SpillReader::Open() {
  STRATICA_ASSIGN_OR_RETURN(data_, fs_->ReadFile(path_));
  offset_ = 0;
  return Status::OK();
}

Status SpillReader::Next(RowBlock* out) {
  *out = RowBlock(types_);
  while (out->NumRows() == 0) {
    if (offset_ >= data_.size()) return Status::OK();
    uint64_t len;
    if (!GetVarint64(data_, &offset_, &len))
      return Status::Corruption("spill: chunk len");
    std::string chunk = data_.substr(offset_, len);
    offset_ += len;
    STRATICA_ASSIGN_OR_RETURN(*out, ParseBlock(chunk, types_));
  }
  return Status::OK();
}

}  // namespace stratica
