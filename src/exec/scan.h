// Scan operator (Section 6.1 #1): reads a projection's ROS containers and
// WOS, "applying predicates in the most advantageous manner possible":
//   - container-level pruning via column min/max (and therefore partition
//     pruning, Section 3.5 / [22]),
//   - block-level pruning via the position index,
//   - epoch (snapshot) filtering via the implicit epoch column,
//   - delete-vector filtering,
//   - vectorized predicate evaluation,
//   - Sideways Information Passing filters installed by hash joins,
//   - optional RLE passthrough so downstream operators work on encoded data,
//   - optional sorted output (k-way merge of sorted sources) for merge
//     joins and pipelined aggregation.
#ifndef STRATICA_EXEC_SCAN_H_
#define STRATICA_EXEC_SCAN_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "exec/hash_table.h"
#include "exec/merge.h"
#include "exec/operator.h"
#include "expr/expr.h"
#include "storage/projection_storage.h"

namespace stratica {

/// \brief Filter handed from a HashJoin build side to a probe-side scan
/// (Section 6.1, Sideways Information Passing). Populated when the join's
/// hash table is complete; the pull model guarantees the scan only runs
/// afterwards.
struct SipFilter {
  std::vector<int> probe_columns;  ///< Key columns, as scan-output indexes.
  std::atomic<bool> ready{false};
  FlatHashSet key_hashes;  ///< Build-side key hashes (seed kSipSeed).
  bool has_range = false;  ///< Min/max fast path for single int-class keys.
  int64_t min = 0, max = 0;
};

/// Pruning bound `column <op> literal`, applied to container and block
/// min/max statistics before any data is read.
struct PruneBound {
  int output_column;
  CompareOp op;
  Value value;
};

/// A slice of one container's blocks, for intra-node parallel scans
/// (Section 3.5: runtime division into logical regions, no physical
/// sub-partitioning required).
struct ScanRegion {
  RosContainerPtr container;
  size_t block_lo = 0;
  size_t block_hi = SIZE_MAX;  // exclusive
};

/// \brief Shared morsel dispenser for one parallel scan (DESIGN.md §12).
///
/// Every sibling fragment scan of a unit holds the same dispenser. The
/// first fragment to Open snapshots the storage and carves the snapshot
/// into morsels (block-range ScanRegions via PlanScanRegions) under the
/// lock; later fragments reuse that snapshot, so all fragments see one
/// consistent epoch/container set. Fragments then claim morsels one at a
/// time — dynamic self-scheduling, so a fragment stuck on an expensive
/// morsel simply claims fewer of them. The WOS is a single implicit morsel
/// claimed by exactly one fragment.
class MorselDispenser {
 public:
  /// `fanout` is the number of sibling fragments that will share this
  /// dispenser; the snapshot is carved into ~kMorselsPerWorker morsels per
  /// fragment so claim-order imbalance can even out.
  explicit MorselDispenser(size_t fanout) : fanout_(fanout == 0 ? 1 : fanout) {}

  /// Snapshot + carve on first call (thread-safe); returns the shared
  /// snapshot all fragments must scan against.
  const StorageSnapshot& EnsureSnapshot(ProjectionStorage* storage, Epoch epoch,
                                        uint64_t txn_id);
  /// Claim the next morsel; false = dispenser drained.
  bool Next(ScanRegion* out);
  /// True exactly once: the claiming fragment scans the WOS.
  bool ClaimWos() { return !wos_claimed_.exchange(true, std::memory_order_relaxed); }

  size_t num_morsels() const { return morsels_.size(); }

  /// Morsel granularity: enough claims per fragment that work-stealing by
  /// claim order absorbs skewed per-morsel costs without making each claim
  /// (a reader re-open per column) dominate.
  static constexpr size_t kMorselsPerWorker = 4;

 private:
  const size_t fanout_;
  std::mutex mu_;
  bool snapped_ = false;  ///< guarded by mu_
  StorageSnapshot snap_;
  std::vector<ScanRegion> morsels_;
  std::atomic<size_t> next_{0};
  std::atomic<bool> wos_claimed_{false};
};

/// \brief Everything a ScanOperator needs: the storage to read, which
/// projection columns to emit (and as what), and the filter/shape knobs —
/// predicate + prune bounds + SIP filters, sorted or RLE-run output,
/// fixed regions or a shared morsel dispenser.
struct ScanSpec {
  ProjectionStorage* storage = nullptr;
  std::vector<int> projection_columns;  ///< projection col idx, in output order
  std::vector<std::string> output_names;
  std::vector<TypeId> output_types;
  ExprPtr predicate;  ///< bound against the scan output schema; may be null
  std::vector<PruneBound> prune_bounds;
  std::vector<std::shared_ptr<SipFilter>> sips;

  bool sorted_output = false;
  std::vector<uint32_t> sort_key_outputs;  ///< output indexes of sort prefix

  bool rle_passthrough = false;  ///< emit runs on RLE blocks (single source)

  /// Compressed execution (DESIGN.md §13): emit encoded-or-decoded views —
  /// RLE blocks keep runs, BlockDict blocks keep codes + a shared sorted
  /// dictionary — so encoded-aware consumers (group-by, aggregation,
  /// projection passthrough) work without expansion. Unlike
  /// rle_passthrough it survives row filters (runs are re-cut by the
  /// selection) and multi-source scans (no ordering requirement), but it is
  /// incompatible with sorted merge output (cross-block keys need values).
  /// The planner sets it only when the consuming chain is encoded-aware.
  bool encoded_output = false;

  bool use_regions = false;  ///< restrict to `regions` (+ WOS if include_wos)
  std::vector<ScanRegion> regions;
  bool include_wos = true;

  /// Morsel-driven mode (DESIGN.md §12): claim block ranges from a shared
  /// dispenser instead of scanning fixed regions. Takes precedence over
  /// use_regions; include_wos still gates the WOS, but only the fragment
  /// that wins MorselDispenser::ClaimWos scans it. Incompatible with
  /// sorted_output (a morsel stream has no global order).
  std::shared_ptr<MorselDispenser> morsels;

  /// Disable late materialization: read + decode every projection column of
  /// every block before filtering (the legacy eager behavior). Kept as an
  /// A/B knob for benchmarks and differential tests; production plans leave
  /// it off. See DESIGN.md §7.
  bool eager_decode = false;
};

/// \brief Late-materializing columnar scan (DESIGN.md §7): decodes filter
/// columns first, computes the selection (epoch visibility, delete
/// vectors, predicate, SIP), and decodes payload columns only for
/// surviving rows. Reads ROS containers and, when included, the WOS; in
/// morsel mode (ScanSpec::morsels) it claims block ranges from the shared
/// dispenser until drained, polling ExecContext::abandon between storage
/// operations.
class ScanOperator : public Operator {
 public:
  // Constructor/destructor out-of-line: Source is an incomplete type here.
  explicit ScanOperator(ScanSpec spec);
  ~ScanOperator() override;

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override;

  std::vector<TypeId> OutputTypes() const override { return spec_.output_types; }
  std::vector<std::string> OutputNames() const override { return spec_.output_names; }
  std::string DebugString() const override;
  size_t MemoryEstimateBytes() const override {
    // Per-column decode scratch + one in-flight vector per pipeline stage.
    return spec_.output_types.size() * (64 << 10) + (1 << 20);
  }

 private:
  struct Source;
  struct SourceMergeInput;  ///< adapts a Source to the k-way merge kernel

  /// Cooperative abandonment (DESIGN.md §11): true once the exchange decided
  /// this pipeline's output is unwanted. Polled between storage operations so
  /// an orphaned scan on a straggler stops paying slow file ops promptly.
  bool Abandoned() const {
    return ctx_ != nullptr && ctx_->abandon != nullptr &&
           ctx_->abandon->load(std::memory_order_relaxed);
  }

  Status OpenContainerSource(const ScanRegion& region);
  Status OpenWosSource();
  /// Persistent I/O failure / corruption on a container read: quarantine
  /// this projection copy (the planner then reroutes its segment to a buddy,
  /// DESIGN.md §10) and pass the error through to the caller.
  Status NoteRosFailure(const Source* src, Status st);
  /// Load + filter the next block of `src`; repeats until a non-empty block
  /// or source exhaustion.
  Status Advance(Source* src);
  Status AdvanceRos(Source* src);
  Status AdvanceWos(Source* src);
  /// Compute the full selection vector (epoch, deletes, predicate, SIP) for
  /// one block of `n` rows using only the columns present in `fblock`.
  /// `predicate` and `sip_cols` must be expressed in fblock's column space.
  /// `src` may be null (WOS slices: deletes/epochs already applied).
  /// `*selected` receives the surviving row count. `fblock` may hold encoded
  /// (RLE/dict) columns — predicates evaluate on them directly; SIP probing
  /// flattens RLE probe columns in place and translates range filters to
  /// code ranges on sorted-dict columns.
  Status ComputeSelection(Source* src, size_t block_idx, uint64_t row_start,
                          RowBlock* fblock, size_t n, const Expr* predicate,
                          const std::vector<std::vector<uint32_t>>& sip_cols,
                          std::vector<uint8_t>* sel, size_t* selected);

  ScanSpec spec_;
  ExecContext* ctx_ = nullptr;
  StorageSnapshot snap_;
  std::vector<std::unique_ptr<Source>> sources_;
  size_t current_source_ = 0;
  bool merge_mode_ = false;
  /// Morsel mode: sources are opened lazily, one per claimed morsel, so a
  /// fragment pays reader opens only for the block ranges it actually runs.
  bool morsel_mode_ = false;
  /// Sorted-output k-way merge over the sources (DESIGN.md §8).
  std::unique_ptr<LoserTreeMerger> merger_;

  // Late materialization (DESIGN.md §7), precomputed at Open: the "filter
  // view" is the subset of output columns the selection vector depends on
  // (predicate + SIP probe columns). Payload columns — everything else —
  // are decoded only for surviving rows, and not at all for dead blocks.
  std::vector<int> filter_cols_;        ///< output indexes, ascending
  std::vector<int> filter_pos_;         ///< output index -> filter-view slot (-1)
  std::vector<TypeId> filter_types_;
  ExprPtr filter_predicate_;            ///< predicate rebound to the filter view
  std::vector<std::vector<uint32_t>> sip_filter_cols_;  ///< per SIP, view slots
  std::vector<std::vector<uint32_t>> sip_output_cols_;  ///< per SIP, output idxs

  // Scratch reused across blocks: selection vectors and batched SIP buffers
  // (the hot loop must not allocate per block).
  std::vector<uint8_t> sel_scratch_;
  std::vector<uint8_t> pred_scratch_;
  std::vector<uint64_t> hash_buf_;
  std::vector<uint8_t> hit_buf_;
  std::vector<uint8_t> null_buf_;
};

/// Carve a snapshot's containers into `k` balanced lists of block-range
/// morsels. Each container is split into up to `k` contiguous block ranges
/// (never fewer than one block per range — a single-block container is one
/// indivisible morsel), and the ranges are dealt round-robin so every list
/// holds a similar share of every container. Callers pick `k` to set morsel
/// grain: static fragment assignment passes k = fan-out (one list per
/// worker); the MorselDispenser passes k = fan-out × kMorselsPerWorker and
/// flattens the lists into one claim queue, trading slightly smaller
/// morsels for dynamic load balancing under skew (DESIGN.md §12).
std::vector<std::vector<ScanRegion>> PlanScanRegions(const StorageSnapshot& snap,
                                                     size_t k);

/// Process-wide compressed-execution switch (default on). Off = scans decode
/// every block flat and the planner never requests encoded output — the
/// decode-first baseline for benchmarks and differential tests. Reads are
/// relaxed-atomic; flip only between queries.
void SetEncodedExecutionEnabled(bool on);
bool EncodedExecutionEnabled();

}  // namespace stratica

#endif  // STRATICA_EXEC_SCAN_H_
