#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace stratica {

Scheduler::Scheduler(size_t num_workers) {
  if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 1;
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  worker_threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& t : worker_threads_) t.join();
  // Any task still queued at shutdown is a caller bug (TaskSet::Wait always
  // drains first); run nothing, just drop.
  {
    std::lock_guard lock(pin_mu_);
    stop_ = true;
  }
  pin_cv_.notify_all();
  // Joins block until in-flight pinned functions return — callers are
  // required to Join their handles first, so this is normally instant.
  for (auto& t : pin_threads_) t.join();
}

Scheduler* Scheduler::Default() {
  // Leaked intentionally: the default pool must outlive static-destruction
  // order of anything that might still hold a handle.
  static Scheduler* s = [] {
    size_t n = 0;
    if (const char* env = std::getenv("STRATICA_WORKERS")) {
      n = static_cast<size_t>(std::atoll(env));
    }
    return new Scheduler(n);
  }();
  return s;
}

void Scheduler::TaskSet::Submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    ++pending_;
  }
  Scheduler* s = scheduler_;
  size_t target = s->next_worker_.fetch_add(1, std::memory_order_relaxed) %
                  s->workers_.size();
  {
    std::lock_guard lock(s->workers_[target]->mu);
    s->workers_[target]->deque.push_back(Task{std::move(fn), this});
  }
  s->queued_.fetch_add(1, std::memory_order_release);
  s->idle_cv_.notify_one();
}

void Scheduler::TaskSet::Wait() {
  Scheduler* s = scheduler_;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      if (pending_ == 0) return;
    }
    // Help: run any queued task (ours or not — all morsel tasks are
    // short-lived by contract), so Wait makes global progress even on a
    // one-worker pool or when every worker is stuck behind a long morsel.
    Task t;
    if (s->TrySteal(SIZE_MAX, &t)) {
      s->stats_.tasks_inline.fetch_add(1, std::memory_order_relaxed);
      s->RunTask(std::move(t));
      continue;
    }
    std::unique_lock lock(mu_);
    if (pending_ == 0) return;
    // Re-check for stealable work periodically: our remaining tasks may be
    // queued behind long tasks on every deque.
    cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

void Scheduler::ParallelFor(size_t begin, size_t end,
                            const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  size_t n = end - begin;
  size_t width = workers_.size();
  if (width <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  size_t chunks = std::min(n, width * 4);
  size_t grain = (n + chunks - 1) / chunks;
  TaskSet ts(this);
  for (size_t lo = begin; lo < end; lo += grain) {
    size_t hi = std::min(end, lo + grain);
    ts.Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  ts.Wait();
}

bool Scheduler::TryPopOwn(size_t self, Task* out) {
  Worker& w = *workers_[self];
  std::lock_guard lock(w.mu);
  if (w.deque.empty()) return false;
  *out = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool Scheduler::TrySteal(size_t self, Task* out) {
  size_t n = workers_.size();
  size_t start = (self == SIZE_MAX) ? 0 : (self + 1) % n;
  for (size_t k = 0; k < n; ++k) {
    size_t v = (start + k) % n;
    if (v == self) continue;
    Worker& w = *workers_[v];
    std::lock_guard lock(w.mu);
    if (w.deque.empty()) continue;
    *out = std::move(w.deque.front());
    w.deque.pop_front();
    return true;
  }
  return false;
}

void Scheduler::RunTask(Task t) {
  queued_.fetch_sub(1, std::memory_order_relaxed);
  t.fn();
  if (t.set != nullptr) {
    std::lock_guard lock(t.set->mu_);
    if (--t.set->pending_ == 0) t.set->cv_.notify_all();
  }
}

void Scheduler::WorkerLoop(size_t self) {
  for (;;) {
    Task t;
    if (TryPopOwn(self, &t)) {
      stats_.tasks_run.fetch_add(1, std::memory_order_relaxed);
      RunTask(std::move(t));
      continue;
    }
    if (TrySteal(self, &t)) {
      stats_.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      RunTask(std::move(t));
      continue;
    }
    std::unique_lock lock(idle_mu_);
    if (stop_) return;
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void Scheduler::Pinned::Join() {
  std::shared_ptr<State> st = std::move(state_);
  if (st == nullptr) return;
  std::unique_lock lock(st->mu);
  st->cv.wait(lock, [&] { return st->done; });
}

Scheduler::Pinned Scheduler::StartPinned(std::function<void()> fn) {
  Pinned handle;
  handle.state_ = std::make_shared<Pinned::State>();
  PinnedJob job{std::move(fn), handle.state_};
  stats_.pinned_started.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(pin_mu_);
  if (pin_idle_ > 0) {
    // Reserve a parked thread: the decrement here pairs with the pop in
    // PinnedLoop, so two concurrent Starts can never claim the same thread.
    --pin_idle_;
    pin_queue_.push_back(std::move(job));
    stats_.pinned_reused.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    pin_cv_.notify_one();
    return handle;
  }
  pin_threads_.emplace_back(
      [this, j = std::move(job)]() mutable { PinnedLoop(std::move(j)); });
  return handle;
}

void Scheduler::RunPinnedJob(PinnedJob& job) {
  pinned_active_.fetch_add(1, std::memory_order_relaxed);
  job.fn();
  pinned_active_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(job.state->mu);
    job.state->done = true;
  }
  job.state->cv.notify_all();
}

void Scheduler::PinnedLoop(PinnedJob first) {
  RunPinnedJob(first);
  first = PinnedJob{};  // release the closure before parking
  for (;;) {
    PinnedJob job;
    {
      std::unique_lock lock(pin_mu_);
      ++pin_idle_;
      pin_cv_.wait(lock, [&] { return stop_ || !pin_queue_.empty(); });
      if (!pin_queue_.empty()) {
        // pin_idle_ was already decremented by the submitter that queued
        // this job on our behalf.
        job = std::move(pin_queue_.front());
        pin_queue_.pop_front();
      } else {
        return;  // stop: idle count no longer matters
      }
    }
    RunPinnedJob(job);
  }
}

}  // namespace stratica
