// Exchange infrastructure (Section 6.1): one queue-based core implements
//   StorageUnion  — dispatches worker threads over ROS regions of one node,
//                   optionally resegmenting rows so parallel GroupBys above
//                   compute complete results (Figure 3);
//   ParallelUnion — merges parallel pipelines' outputs;
//   Send/Recv     — ships tuples between (simulated) nodes, either
//                   broadcast or segmented by an expression, with traffic
//                   accounted in ExecStats::exchange_bytes.
#ifndef STRATICA_EXEC_EXCHANGE_H_
#define STRATICA_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "exec/operator.h"

namespace stratica {

/// \brief Shared state of one exchange: P producer pipelines hash-partition
/// their rows into C consumer queues.
class ExchangeState {
 public:
  /// `partition_columns` empty means blocks pass through whole to queue
  /// (producer_index % consumers) — the union case.
  ExchangeState(std::vector<OperatorPtr> producers, size_t num_consumers,
                std::vector<uint32_t> partition_columns, bool count_network);

  ~ExchangeState();

  /// Launch producer threads (idempotent; first consumer Open calls this).
  void Start(ExecContext* ctx);

  /// Pop the next block for consumer `c`; empty block = EOF.
  Status Pop(size_t c, RowBlock* out);

  /// Called by consumer Close; when every consumer has closed, producers
  /// are cancelled so abandoned pipelines (e.g. under a LIMIT) terminate.
  void ConsumerClosed();

  size_t num_consumers() const { return queues_.size(); }
  const std::vector<OperatorPtr>& producers() const { return producers_; }

 private:
  struct Queue {
    std::deque<RowBlock> blocks;
    bool closed = false;
  };

  void ProducerLoop(size_t p, ExecContext* ctx);
  /// Returns false when the exchange was cancelled.
  bool Push(size_t c, RowBlock block);
  void CloseAll();

  std::vector<OperatorPtr> producers_;
  std::vector<uint32_t> partition_columns_;
  bool count_network_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Queue> queues_;
  size_t producers_running_ = 0;
  size_t consumers_closed_ = 0;
  bool started_ = false;
  bool cancelled_ = false;
  Status error_;
  std::vector<std::thread> threads_;
  static constexpr size_t kQueueCapacity = 16;
};

/// \brief Consumer endpoint: reads one partition of an exchange.
class ExchangeConsumerOperator : public Operator {
 public:
  ExchangeConsumerOperator(std::shared_ptr<ExchangeState> state, size_t index,
                           std::vector<TypeId> types, std::vector<std::string> names,
                           std::string label)
      : state_(std::move(state)),
        index_(index),
        types_(std::move(types)),
        names_(std::move(names)),
        label_(std::move(label)) {}

  Status Open(ExecContext* ctx) override {
    state_->Start(ctx);
    return Status::OK();
  }
  Status GetNext(RowBlock* out) override { return state_->Pop(index_, out); }
  Status Close() override {
    state_->ConsumerClosed();
    return Status::OK();
  }
  std::vector<TypeId> OutputTypes() const override { return types_; }
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override;

 private:
  std::shared_ptr<ExchangeState> state_;
  size_t index_;
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  std::string label_;
};

/// Build a union-all exchange (ParallelUnion / Recv): many producers, one
/// consumer, no resegmentation.
OperatorPtr MakeUnionExchange(std::vector<OperatorPtr> producers, std::string label,
                              bool count_network);

/// Build a resegmenting exchange: `producers` feed `num_consumers` queues
/// partitioned by hash of `partition_columns`. Returns the consumers.
std::vector<OperatorPtr> MakeRepartitionExchange(std::vector<OperatorPtr> producers,
                                                 size_t num_consumers,
                                                 std::vector<uint32_t> partition_columns,
                                                 std::string label, bool count_network);

}  // namespace stratica

#endif  // STRATICA_EXEC_EXCHANGE_H_
