// Exchange infrastructure (Section 6.1): one queue-based core implements
//   StorageUnion  — dispatches worker threads over ROS regions of one node,
//                   optionally resegmenting rows so parallel GroupBys above
//                   compute complete results (Figure 3);
//   ParallelUnion — merges parallel pipelines' outputs;
//   Send/Recv     — ships tuples between (simulated) nodes, either
//                   broadcast or segmented by an expression, with traffic
//                   accounted in ExecStats::exchange_bytes.
//
// Straggler hedging (DESIGN.md §11): a producer pipeline that has made zero
// progress by a deadline can be speculatively re-issued against a buddy copy
// of the same data ("hedge"); a producer that fails outright before pushing
// anything is re-issued the same way ("reroute"), so mid-query node death
// degrades to a buddy read instead of failing the statement. Only
// zero-progress pipelines are ever duplicated, so the first source to emit a
// block claims the partition and exactly-once output needs no cross-source
// dedup.
//
// Producers run as pinned tasks on the query's Scheduler (DESIGN.md §12) —
// the unified worker pool — each under a private ExecContext whose
// thread-local ExecStats merge into the query's stats when the source
// finishes (the pipeline barrier). When the last consumer closes, the
// exchange cancels and JOINS every producer task before Close returns, so
// no worker touches plan state after teardown.
#ifndef STRATICA_EXEC_EXCHANGE_H_
#define STRATICA_EXEC_EXCHANGE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "exec/operator.h"
#include "exec/scheduler.h"

namespace stratica {

/// \brief One producer pipeline of an exchange plus the metadata that makes
/// it hedgeable: where it reads from (for error context) and how to rebuild
/// an equivalent pipeline against a buddy copy (null = not hedgeable).
struct ExchangeProducerSpec {
  OperatorPtr op;
  std::string origin;  ///< e.g. "node3" — carried in failure Status messages
  /// Build a replacement pipeline reading the same data from a currently
  /// healthy buddy copy. Called from a hedge thread (never under the
  /// exchange lock); may fail when k-safety is exhausted.
  std::function<Result<OperatorPtr>()> rebuild;
};

/// \brief Shared state of one exchange: P producer pipelines hash-partition
/// their rows into C consumer queues.
class ExchangeState {
 public:
  /// `partition_columns` empty means blocks pass through whole to queue
  /// (producer_index % consumers) — the union case.
  ExchangeState(std::vector<ExchangeProducerSpec> producers, size_t num_consumers,
                std::vector<uint32_t> partition_columns, bool count_network);
  ExchangeState(std::vector<OperatorPtr> producers, size_t num_consumers,
                std::vector<uint32_t> partition_columns, bool count_network);

  ~ExchangeState();

  /// Launch producers as pinned scheduler tasks (idempotent; first consumer
  /// Open calls this). Uses ctx->scheduler, falling back to the process-wide
  /// default pool for hand-built trees.
  void Start(ExecContext* ctx);

  /// Pop the next block for consumer `c`; empty block = EOF. Doubles as the
  /// hedging clock: a starving consumer checks producer deadlines.
  Status Pop(size_t c, RowBlock* out);

  /// Called by consumer Close; when every consumer has closed, producers
  /// are cancelled AND joined before this returns (DESIGN.md §12: teardown
  /// joins all morsel workers before operator Close), so abandoned
  /// pipelines (e.g. under a LIMIT) terminate and release their threads.
  void ConsumerClosed();

  size_t num_consumers() const { return queues_.size(); }
  const std::vector<OperatorPtr>& producers() const { return producers_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Queue {
    std::deque<RowBlock> blocks;
    bool closed = false;
  };

  /// Hedging state of one producer slot. A slot may be served by several
  /// sources (primary = source 0, hedges/reroutes = 1..); the first source
  /// to push a block — or to finish cleanly with an empty result — claims
  /// the slot and the others become orphans whose output is dropped.
  struct Slot {
    std::string origin;
    std::function<Result<OperatorPtr>()> rebuild;
    int claimed_by = -1;
    uint32_t attempts = 1;       ///< sources issued so far (primary counts)
    uint32_t running = 0;        ///< sources currently executing
    bool done = false;           ///< output complete
    Clock::time_point deadline;  ///< next hedge-eligibility time
    /// Per-source abandonment flags (ExecContext::abandon), indexed by
    /// source id. Raised for the losers when a source claims the slot, and
    /// for everyone on completion/cancellation, so a straggling orphan stops
    /// scanning instead of being awaited to the end at teardown.
    std::vector<std::shared_ptr<std::atomic<bool>>> abandons;
  };

  void ProducerLoop(size_t slot, int source, Operator* op, ExecContext* ctx);
  /// Source finished; resolves the slot (done / reroute / error) under mu_.
  void FinishSource(size_t slot, int source, Status st, ExecContext* ctx);
  /// Returns false when the exchange was cancelled or `source` lost its
  /// claim on the slot (another source produced output first).
  bool Push(size_t slot, int source, size_t c, RowBlock block);
  /// Spawn a replacement source for `slot` (caller holds mu_ and has already
  /// bumped attempts/running and the hedge/reroute counter).
  void SpawnBackup(size_t slot, ExecContext* ctx);
  /// Hedge every overdue zero-progress slot; returns the earliest pending
  /// deadline (time_point::max() when nothing is hedge-eligible).
  Clock::time_point MaybeHedge(ExecContext* ctx);
  Status ContextualError(size_t slot, const Status& st) const;
  void CloseAll();
  /// Join every producer task spawned so far (idempotent; never called
  /// under mu_). No new task can be spawned once cancelled_ is set.
  void JoinProducers();
  /// Raise the abandon flag of every source of `s` except `winner` (-1 =
  /// all). Caller holds mu_.
  static void AbandonLosers(Slot& s, int winner);

  /// Thread-local per-source ExecStats, owned by the state — not the
  /// producer's stack — because nested producer tasks can outlive their
  /// parent source's frame on error paths (which skip Close). Merged into
  /// the query stats at the source's pipeline barrier. Declared first so it
  /// is destroyed after producers_/backup_ops_, whose destructors join
  /// nested workers that may still be writing counters here.
  std::vector<std::shared_ptr<ExecStats>> source_stats_;  ///< guarded by mu_
  std::vector<OperatorPtr> producers_;
  std::vector<uint32_t> partition_columns_;
  bool count_network_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Queue> queues_;
  std::vector<Slot> slots_;
  std::vector<OperatorPtr> backup_ops_;  ///< keeps hedge pipelines alive
  size_t slots_done_ = 0;
  size_t consumers_closed_ = 0;
  bool started_ = false;
  bool cancelled_ = false;
  Status error_;
  ExecContext* ctx_ = nullptr;        // set at Start; outlives the tasks
  uint64_t hedge_deadline_ms_ = 0;    // 0 = time-based hedging off
  uint32_t max_sources_ = 1;          // primary + hedges/reroutes per slot
  Scheduler* scheduler_ = nullptr;    // resolved at Start
  /// Consumer-side abandonment: when this exchange itself feeds an
  /// abandoned pipeline (a nested exchange under a hedged-past producer),
  /// Pop notices and cancels, so abandon propagates through arbitrarily
  /// nested exchanges down to every leaf worker.
  const std::atomic<bool>* consumer_abandon_ = nullptr;
  std::vector<Scheduler::Pinned> tasks_;
  static constexpr size_t kQueueCapacity = 16;
};

/// \brief Consumer endpoint: reads one partition of an exchange.
class ExchangeConsumerOperator : public Operator {
 public:
  ExchangeConsumerOperator(std::shared_ptr<ExchangeState> state, size_t index,
                           std::vector<TypeId> types, std::vector<std::string> names,
                           std::string label)
      : state_(std::move(state)),
        index_(index),
        types_(std::move(types)),
        names_(std::move(names)),
        label_(std::move(label)) {}

  Status Open(ExecContext* ctx) override {
    state_->Start(ctx);
    return Status::OK();
  }
  Status GetNext(RowBlock* out) override { return state_->Pop(index_, out); }
  Status Close() override {
    state_->ConsumerClosed();
    return Status::OK();
  }
  std::vector<TypeId> OutputTypes() const override { return types_; }
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override;

 private:
  std::shared_ptr<ExchangeState> state_;
  size_t index_;
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  std::string label_;
};

/// Build a union-all exchange (ParallelUnion / Recv): many producers, one
/// consumer, no resegmentation.
OperatorPtr MakeUnionExchange(std::vector<OperatorPtr> producers, std::string label,
                              bool count_network);
/// Hedging-aware variant: producers carry origin + buddy-rebuild factories.
OperatorPtr MakeUnionExchange(std::vector<ExchangeProducerSpec> producers,
                              std::string label, bool count_network);

/// Build a resegmenting exchange: `producers` feed `num_consumers` queues
/// partitioned by hash of `partition_columns`. Returns the consumers.
std::vector<OperatorPtr> MakeRepartitionExchange(std::vector<OperatorPtr> producers,
                                                 size_t num_consumers,
                                                 std::vector<uint32_t> partition_columns,
                                                 std::string label, bool count_network);

}  // namespace stratica

#endif  // STRATICA_EXEC_EXCHANGE_H_
