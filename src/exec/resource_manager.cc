#include "exec/resource_manager.h"

#include <algorithm>

namespace stratica {

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    bytes_ = other.bytes_;
    other.manager_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void AdmissionTicket::Release() {
  if (manager_ != nullptr) {
    manager_->Release(bytes_);
    manager_ = nullptr;
    bytes_ = 0;
  }
}

Result<AdmissionTicket> ResourceManager::Admit(size_t requested_bytes) {
  // Floor first, then cap at the pool, so any single query can eventually
  // run: a plan estimated above the whole pool waits for exclusive use of
  // it rather than never fitting. (Not std::clamp — a pool configured
  // below the floor must win, and clamp(lo > hi) is UB.)
  size_t bytes = std::min(std::max(requested_bytes, cfg_.min_query_reserve_bytes),
                          cfg_.memory_pool_bytes);

  std::unique_lock lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + cfg_.admission_timeout;
  uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);

  auto admissible = [&] {
    // Strict FIFO: only the head of the queue may be admitted, so a large
    // reservation is never starved by smaller queries arriving behind it.
    if (queue_.front() != ticket) return false;
    if (cfg_.max_concurrent_queries != 0 && active_ >= cfg_.max_concurrent_queries)
      return false;
    return reserved_ + bytes <= cfg_.memory_pool_bytes;
  };

  bool waited = false;
  while (!admissible()) {
    waited = true;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout && !admissible()) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
      ++stats_.timeouts;
      // The head may have been blocked purely on our queue position.
      cv_.notify_all();
      return Status::ResourceExhausted(
          "admission timeout: ", bytes, " bytes requested, ", reserved_,
          " of ", cfg_.memory_pool_bytes, " reserved by ", active_, " queries");
    }
  }
  queue_.pop_front();
  reserved_ += bytes;
  ++active_;
  ++stats_.admitted;
  if (waited) ++stats_.queued;
  stats_.peak_reserved_bytes = std::max<uint64_t>(stats_.peak_reserved_bytes, reserved_);
  stats_.peak_active_queries = std::max<uint64_t>(stats_.peak_active_queries, active_);
  // The next waiter may also fit (e.g. a slot-capped pool with room left).
  cv_.notify_all();
  return AdmissionTicket(this, bytes);
}

size_t ResourceManager::AllowedFanout(size_t granted_bytes, size_t requested_bytes,
                                      size_t requested_fanout) {
  if (requested_fanout <= 1) return 1;
  if (granted_bytes >= requested_bytes || requested_bytes == 0)
    return requested_fanout;
  // Proportional scale-down: the grant buys granted/requested of the plan's
  // per-fragment memory, so run that fraction of the fragments.
  size_t allowed = (granted_bytes * requested_fanout) / requested_bytes;
  return std::max<size_t>(allowed, 1);
}

void ResourceManager::Release(size_t bytes) {
  {
    std::lock_guard lock(mu_);
    reserved_ -= bytes;
    --active_;
  }
  cv_.notify_all();
}

ResourceManagerStats ResourceManager::stats() const {
  std::lock_guard lock(mu_);
  ResourceManagerStats s = stats_;
  s.reserved_bytes = reserved_;
  s.active_queries = active_;
  return s;
}

}  // namespace stratica
