#include "exec/merge.h"

namespace stratica {

LoserTreeMerger::LoserTreeMerger(std::vector<std::unique_ptr<MergeInput>> inputs,
                                 std::vector<SortKey> keys)
    : keys_(std::move(keys)), k_(inputs.size()) {
  cursors_.resize(k_);
  for (size_t i = 0; i < k_; ++i) cursors_[i].input = std::move(inputs[i]);
}

Status LoserTreeMerger::Refill(size_t c) {
  Cursor& cur = cursors_[c];
  cur.base += cur.block.NumRows();
  cur.block.Clear();
  STRATICA_RETURN_NOT_OK(cur.input->NextBlock(&cur.block));
  cur.block.DecodeAll();
  cur.pos = 0;
  if (cur.block.NumRows() == 0) {
    cur.exhausted = true;
    cur.keys = NormalizedKeys();
    return Status::OK();
  }
  if (use_normalized_keys_) BuildNormalizedKeys(cur.block, keys_, &cur.keys);
  return Status::OK();
}

bool LoserTreeMerger::RowBeats(size_t a, size_t row, size_t b) const {
  const Cursor& ca = cursors_[a];
  const Cursor& cb = cursors_[b];
  if (ca.exhausted) return false;
  if (cb.exhausted) return true;
  int c;
  if (use_normalized_keys_) {
    c = ca.keys.CompareWith(row, cb.keys, cb.pos);
  } else if (total_order_compare_) {
    // Inputs were sorted by normalized keys; direct compares must use the
    // same total order on doubles (NaN after +inf, -0 == +0) or a
    // NaN-bearing merge would interleave out of order.
    c = CompareRowsDirectedTotal(ca.block, row, cb.block, cb.pos, keys_);
  } else {
    c = CompareRowsDirected(ca.block, row, cb.block, cb.pos, keys_);
  }
  if (c != 0) return c < 0;
  return a < b;  // lower input index wins ties (stable merge)
}

bool LoserTreeMerger::LeafBeats(size_t a, size_t b) const {
  return RowBeats(a, cursors_[a].pos, b);
}

size_t LoserTreeMerger::InitNode(size_t node) {
  if (node >= k_) return node - k_;  // leaf: node ids [k, 2k) map to cursors
  size_t a = InitNode(2 * node);
  size_t b = InitNode(2 * node + 1);
  if (LeafBeats(a, b)) {
    tree_[node] = b;
    return a;
  }
  tree_[node] = a;
  return b;
}

Status LoserTreeMerger::Init() {
  // Two-way merges compare each row once; a direct typed compare beats
  // paying the per-block key build there. From k=3 up, memcmp'd keys win.
  // When the knob is on but k<=2, compares still follow the normalized-key
  // total order (inputs were sorted under it).
  bool knob = NormalizedKeySortEnabled();
  use_normalized_keys_ = knob && k_ > 2;
  total_order_compare_ = knob && !use_normalized_keys_;
  for (size_t i = 0; i < k_; ++i) {
    // First fill: base must stay 0.
    Cursor& cur = cursors_[i];
    STRATICA_RETURN_NOT_OK(cur.input->NextBlock(&cur.block));
    cur.block.DecodeAll();
    if (cur.block.NumRows() == 0) {
      cur.exhausted = true;
    } else if (use_normalized_keys_) {
      BuildNormalizedKeys(cur.block, keys_, &cur.keys);
    }
  }
  tree_.assign(k_ == 0 ? 1 : k_, 0);
  if (k_ > 1) tree_[0] = InitNode(1);
  return Status::OK();
}

void LoserTreeMerger::Replay(size_t leaf) {
  size_t winner = leaf;
  for (size_t node = (leaf + k_) >> 1; node >= 1; node >>= 1) {
    if (LeafBeats(tree_[node], winner)) std::swap(winner, tree_[node]);
    if (node == 1) break;
  }
  tree_[0] = winner;
}

bool LoserTreeMerger::Done() const {
  if (k_ == 0) return true;
  return cursors_[tree_[0]].exhausted;
}

size_t LoserTreeMerger::EmitRows(size_t leaf, size_t take_end, RowBlock* out,
                                 std::vector<MergeSourceRef>* provenance) {
  Cursor& cur = cursors_[leaf];
  size_t count = take_end - cur.pos;
  for (size_t c = 0; c < out->columns.size(); ++c) {
    out->columns[c].AppendRange(cur.block.columns[c], cur.pos, count);
  }
  if (provenance != nullptr) {
    for (size_t r = cur.pos; r < take_end; ++r) {
      provenance->push_back({static_cast<uint32_t>(leaf), cur.base + r});
    }
  }
  cur.pos = take_end;
  return count;
}

Status LoserTreeMerger::Next(RowBlock* out, size_t max_rows,
                             std::vector<MergeSourceRef>* provenance) {
  size_t appended = 0;
  if (k_ == 2) {
    // Two-way merges (mergeout's minimum fan-in, ROS+WOS scans) skip the
    // tree: the run-extension comparison already decides the next winner,
    // so each advance costs one key comparison instead of two.
    while (appended < max_rows) {
      size_t w = tree_[0];
      Cursor& cw = cursors_[w];
      if (cw.exhausted) break;
      size_t o = 1 - w;
      size_t limit = cw.pos + (max_rows - appended);
      if (limit > cw.block.NumRows()) limit = cw.block.NumRows();
      size_t take_end;
      if (cursors_[o].exhausted) {
        take_end = limit;
      } else {
        // The winner invariant covers the current row (Init/previous
        // iteration compared it), so each extension step is the one
        // comparison its row needed anyway.
        take_end = cw.pos + 1;
        while (take_end < limit && RowBeats(w, take_end, o)) ++take_end;
      }
      appended += EmitRows(w, take_end, out, provenance);
      if (cw.pos >= cw.block.NumRows()) {
        STRATICA_RETURN_NOT_OK(Refill(w));
        tree_[0] = LeafBeats(0, 1) ? 0 : 1;
        tree_[1] = 1 - tree_[0];
      } else if (take_end < limit) {
        // Stopped because `o` beats the winner's next row: roles swap with
        // no extra comparison.
        tree_[0] = o;
        tree_[1] = w;
      } else {
        // Stopped at the batch boundary (max_rows), not on a lost
        // comparison: the winner's next row is unverified, so re-establish
        // the invariant before the next Next() call trusts it.
        tree_[0] = LeafBeats(0, 1) ? 0 : 1;
        tree_[1] = 1 - tree_[0];
      }
    }
    return Status::OK();
  }
  while (appended < max_rows) {
    if (k_ == 0) break;
    size_t w = tree_[0];
    Cursor& cw = cursors_[w];
    if (cw.exhausted) break;

    size_t limit = cw.pos + (max_rows - appended);
    if (limit > cw.block.NumRows()) limit = cw.block.NumRows();
    size_t take_end = cw.pos + 1;
    if (k_ == 1) {
      take_end = limit;
    } else if (streak_ >= kStreakForExtension && streak_leaf_ == w) {
      // Run extension, engaged once the same leaf keeps winning (sorted
      // stretches: disjoint-range mergeout inputs, clustered runs): every
      // consecutive winner row that still beats the runner-up — the best
      // loser on this leaf's root path — is emitted in one ranged copy.
      // Short interleaved runs never pay for the challenger scan.
      size_t challenger = SIZE_MAX;
      for (size_t node = (w + k_) >> 1; node >= 1; node >>= 1) {
        size_t l = tree_[node];
        if (challenger == SIZE_MAX || LeafBeats(l, challenger)) challenger = l;
        if (node == 1) break;
      }
      if (cursors_[challenger].exhausted) {
        take_end = limit;
      } else {
        while (take_end < limit && RowBeats(w, take_end, challenger)) ++take_end;
      }
    }

    appended += EmitRows(w, take_end, out, provenance);
    if (cw.pos >= cw.block.NumRows()) STRATICA_RETURN_NOT_OK(Refill(w));
    if (k_ > 1) {
      Replay(w);
      if (tree_[0] == streak_leaf_) {
        ++streak_;
      } else {
        streak_leaf_ = tree_[0];
        streak_ = 1;
      }
    }
  }
  return Status::OK();
}

}  // namespace stratica
