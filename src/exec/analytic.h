// Analytic operator (Section 6.1 #6): SQL-99 windowed aggregates.
//
// Input must arrive sorted by (partition columns, order keys); the planner
// inserts a Sort below when the projection sort order doesn't already
// satisfy it. With an ORDER BY, aggregate functions use the running frame
// UNBOUNDED PRECEDING .. CURRENT ROW (peers included); without one they
// cover the whole partition.
#ifndef STRATICA_EXEC_ANALYTIC_H_
#define STRATICA_EXEC_ANALYTIC_H_

#include "exec/agg.h"
#include "exec/operator.h"
#include "exec/simple_ops.h"

namespace stratica {

enum class WindowFunc : uint8_t {
  kRowNumber,
  kRank,
  kDenseRank,
  kSum,
  kCount,
  kAvg,
  kMin,
  kMax,
};

const char* WindowFuncName(WindowFunc f);

struct WindowSpec {
  WindowFunc func = WindowFunc::kRowNumber;
  int input_column = -1;  ///< unused for ranking functions
  std::string output_name;

  TypeId OutputType(const std::vector<TypeId>& child_types) const;
};

/// All windows of one AnalyticOperator share partition/order clauses.
struct AnalyticSpec {
  std::vector<uint32_t> partition_columns;
  std::vector<SortKey> order_keys;
  std::vector<WindowSpec> windows;
};

class AnalyticOperator : public Operator {
 public:
  AnalyticOperator(OperatorPtr child, AnalyticSpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override;
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override { return {child_.get()}; }

 private:
  /// Compute all window columns for one fully materialized partition.
  void ComputePartition(const RowBlock& partition, RowBlock* out);

  OperatorPtr child_;
  AnalyticSpec spec_;
  ExecContext* ctx_ = nullptr;
  RowBlock results_;  // fully computed output rows
  size_t cursor_ = 0;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_ANALYTIC_H_
