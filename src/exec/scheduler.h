// Unified worker pool for everything parallel in the engine (DESIGN.md §12).
//
// One Scheduler instance per Database is the single place parallel work
// runs. It serves two kinds of work:
//
//   - Morsel tasks: short, CPU-bound, non-blocking units (a partitioned
//     hash build, a spill-partition merge, a parallel-for chunk). They go
//     through per-worker work-stealing deques: a worker pops its own deque
//     LIFO (cache-warm) and steals FIFO from siblings when empty. Waiters
//     (TaskSet::Wait) help execute queued tasks instead of sleeping, so a
//     saturated — or single-worker — pool can never deadlock a fork/join.
//
//   - Pinned tasks: long-running pipeline drivers that may block on queue
//     backpressure (exchange producers, the background tuple-mover
//     service). Each gets a dedicated thread from the scheduler's cached
//     reservoir; finished threads park and are reused by later queries
//     instead of being re-created per statement.
//
// The scheduler owns threads, not budgets: memory stays with the
// ResourceManager admission reservation (a query's reservation covers its
// worker fan-out — see ResourceManager::AllowedFanout), and cancellation
// stays with ExecContext::abandon, which callers propagate into every task
// they submit.
#ifndef STRATICA_EXEC_SCHEDULER_H_
#define STRATICA_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stratica {

/// \brief Work-stealing worker pool + pinned-thread reservoir; one per
/// Database (see the file comment for the full contract).
class Scheduler {
 public:
  /// `num_workers` = 0 sizes the pool to the hardware concurrency.
  explicit Scheduler(size_t num_workers = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Process-wide fallback instance (hand-built operator trees, benches).
  /// Database-owned schedulers are preferred: they are plumbed through
  /// ExecContext::scheduler.
  static Scheduler* Default();

  size_t num_workers() const { return workers_.size(); }

  /// Counters for tests and EXPLAIN-style introspection. tasks_run /
  /// tasks_stolen / tasks_inline partition completed morsel tasks by who ran
  /// them: the worker that owned the deque, a sibling that stole it, or a
  /// waiter helping during TaskSet::Wait.
  struct Stats {
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> tasks_stolen{0};
    std::atomic<uint64_t> tasks_inline{0};
    std::atomic<uint64_t> pinned_started{0};
    std::atomic<uint64_t> pinned_reused{0};  ///< served by a parked thread
  };
  const Stats& stats() const { return stats_; }

  /// Pinned tasks currently executing (parked reservoir threads excluded).
  size_t pinned_active() const {
    return pinned_active_.load(std::memory_order_relaxed);
  }

  /// \brief Fork/join handle for a batch of morsel tasks.
  ///
  /// Submit enqueues onto the work-stealing deques; Wait blocks until every
  /// submitted task has finished, helping run queued tasks in the meantime.
  /// The destructor waits, so a TaskSet can never outlive its tasks.
  /// Tasks must not block indefinitely (use StartPinned for those) and must
  /// not throw.
  class TaskSet {
   public:
    explicit TaskSet(Scheduler* scheduler) : scheduler_(scheduler) {}
    ~TaskSet() { Wait(); }

    TaskSet(const TaskSet&) = delete;
    TaskSet& operator=(const TaskSet&) = delete;

    void Submit(std::function<void()> fn);
    void Wait();

   private:
    friend class Scheduler;
    Scheduler* scheduler_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t pending_ = 0;  ///< guarded by mu_
  };

  /// Run fn(i) for i in [begin, end) across the pool, chunked so task
  /// overhead amortizes; the calling thread participates. Serial when the
  /// range is small or the pool has one worker.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

  /// \brief Handle to one pinned task; movable, join-once.
  class Pinned {
   public:
    Pinned() = default;
    /// Block until the task's function has returned. Idempotent; a
    /// default-constructed or moved-from handle joins trivially.
    void Join();
    bool joinable() const { return state_ != nullptr; }

   private:
    friend class Scheduler;
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
    };
    std::shared_ptr<State> state_;
  };

  /// Run `fn` on a dedicated thread (cached reservoir; a parked thread is
  /// reused when one is available). For long-running pipeline work that may
  /// block — exchange producers, background services. The caller must Join
  /// every handle before the Scheduler is destroyed.
  Pinned StartPinned(std::function<void()> fn);

 private:
  struct Task {
    std::function<void()> fn;
    TaskSet* set = nullptr;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;  ///< owner pops back, thieves pop front
  };
  struct PinnedJob {
    std::function<void()> fn;
    std::shared_ptr<Pinned::State> state;
  };

  void WorkerLoop(size_t self);
  bool TryPopOwn(size_t self, Task* out);
  bool TrySteal(size_t self, Task* out);  ///< self = SIZE_MAX for waiters
  void RunTask(Task t);
  void PinnedLoop(PinnedJob first);
  void RunPinnedJob(PinnedJob& job);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> worker_threads_;
  std::atomic<size_t> next_worker_{0};  ///< round-robin submit target
  std::atomic<size_t> queued_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  ///< guarded by idle_mu_ (workers) and pin_mu_ (pinned)

  std::mutex pin_mu_;
  std::condition_variable pin_cv_;
  std::deque<PinnedJob> pin_queue_;  ///< jobs claimed by a parked thread
  size_t pin_idle_ = 0;              ///< parked threads not yet claimed
  std::vector<std::thread> pin_threads_;
  std::atomic<size_t> pinned_active_{0};

  Stats stats_;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_SCHEDULER_H_
