#include "exec/join.h"

#include "common/hash.h"
#include "exec/group_by.h"
#include "exec/scheduler.h"
#include "storage/sort_util.h"

namespace stratica {

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "INNER";
    case JoinType::kLeft: return "LEFT OUTER";
    case JoinType::kRight: return "RIGHT OUTER";
    case JoinType::kFull: return "FULL OUTER";
    case JoinType::kSemi: return "SEMI";
    case JoinType::kAnti: return "ANTI";
  }
  return "?";
}

namespace {

bool ProbeOnlyOutput(JoinType t) { return t == JoinType::kSemi || t == JoinType::kAnti; }

bool AnyNullKey(const RowBlock& block, const std::vector<uint32_t>& keys, size_t row) {
  for (uint32_t k : keys) {
    if (block.columns[k].IsNull(row)) return true;
  }
  return false;
}

void AppendNullRow(RowBlock* out, size_t first_col, const std::vector<TypeId>& types) {
  for (size_t c = 0; c < types.size(); ++c) {
    out->columns[first_col + c].Append(Value::Null(types[c]));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SharedJoinBuild

SharedJoinBuild::SharedJoinBuild(OperatorPtr build, JoinSpec spec, size_t fanout)
    : build_(std::move(build)),
      spec_(std::move(spec)),
      fanout_(fanout == 0 ? 1 : fanout),
      open_fragments_(fanout == 0 ? 1 : fanout) {
  size_t shards = 1;
  while (shards < fanout_ && shards < 64) shards <<= 1;
  shards_.resize(shards);
  shard_mask_ = shards - 1;
}

Status SharedJoinBuild::Ensure(ExecContext* ctx) {
  std::lock_guard lock(mu_);
  if (done_) return status_;
  done_ = true;
  status_ = Build(ctx);
  return status_;
}

Status SharedJoinBuild::Build(ExecContext* ctx) {
  rows_ = RowBlock(build_->OutputTypes());
  STRATICA_RETURN_NOT_OK(build_->Open(ctx));
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(build_->GetNext(&block));
    if (block.NumRows() == 0) break;
    block.DecodeAll();
    size_t block_bytes = block.MemoryBytes();
    if (ctx->budget && !ctx->budget->TryReserve(block_bytes)) {
      // Same runtime switch as the serial join: spool the build rows to one
      // spill file; every fragment then sort-merges its own probe subset
      // against the full spilled build (their union is the unit's result).
      if (ctx->stats) ctx->stats->hash_to_merge_switches.fetch_add(1);
      SpillWriter writer(ctx->fs, ctx->NextSpillPath());
      STRATICA_RETURN_NOT_OK(writer.Append(rows_));
      STRATICA_RETURN_NOT_OK(writer.Append(block));
      for (;;) {
        RowBlock more;
        STRATICA_RETURN_NOT_OK(build_->GetNext(&more));
        if (more.NumRows() == 0) break;
        more.DecodeAll();
        STRATICA_RETURN_NOT_OK(writer.Append(more));
      }
      STRATICA_RETURN_NOT_OK(writer.Finish());
      if (ctx->stats) {
        ctx->stats->rows_spilled.fetch_add(writer.rows());
        ctx->stats->spill_files.fetch_add(1);
      }
      STRATICA_RETURN_NOT_OK(build_->Close());
      ctx->budget->Release(bytes_);
      bytes_ = 0;
      rows_ = RowBlock(build_->OutputTypes());
      spilled_ = true;
      spill_path_ = writer.path();
      return Status::OK();
    }
    bytes_ += block_bytes;
    for (size_t r = 0; r < block.NumRows(); ++r) rows_.AppendRowFrom(block, r);
  }
  STRATICA_RETURN_NOT_OK(build_->Close());

  // Partitioned parallel build: hash every row once, then one task per
  // shard inserts the rows whose high hash bits select it. Each task owns
  // its shard exclusively, so no insert synchronizes with another.
  size_t n = rows_.NumRows();
  std::vector<uint64_t> hashes;
  std::vector<uint8_t> null_keys;
  HashRows(rows_, spec_.build_keys, kGroupKeySeed, &hashes);
  NullKeyMask(rows_, spec_.build_keys, &null_keys);
  size_t num_shards = shards_.size();
  auto insert_shard = [&](size_t s) {
    Shard& sh = shards_[s];
    sh.table.Reserve(n / num_shards + 16);
    for (size_t r = 0; r < n; ++r) {
      // NULL keys never match a probe; with RIGHT/FULL excluded from shared
      // builds, the rows need not enter the table at all.
      if (null_keys[r]) continue;
      uint64_t h = hashes[r];
      if (((h >> 32) & shard_mask_) != s) continue;
      sh.table.Insert(h);
      sh.rows.push_back(static_cast<uint32_t>(r));
    }
  };
  constexpr size_t kParallelBuildMinRows = 8192;
  if (ctx->scheduler != nullptr && num_shards > 1 && n >= kParallelBuildMinRows) {
    Scheduler::TaskSet tasks(ctx->scheduler);
    for (size_t s = 0; s < num_shards; ++s) tasks.Submit([&insert_shard, s] { insert_shard(s); });
    tasks.Wait();
  } else {
    for (size_t s = 0; s < num_shards; ++s) insert_shard(s);
  }

  // Publish the SIP filter exactly once, before any fragment's probe scan
  // opens (they are all blocked in Ensure until this returns).
  if (spec_.sip) {
    bool single_int_key =
        spec_.build_keys.size() == 1 &&
        StorageClassOf(rows_.columns[spec_.build_keys[0]].type) ==
            StorageClass::kInt64;
    HashRows(rows_, spec_.build_keys, kSipSeed, &hashes);
    bool first = true;
    for (size_t r = 0; r < n; ++r) {
      if (null_keys[r]) continue;
      spec_.sip->key_hashes.Insert(hashes[r]);
      if (single_int_key) {
        int64_t v = rows_.columns[spec_.build_keys[0]].ints[r];
        if (first) {
          spec_.sip->min = spec_.sip->max = v;
          first = false;
        } else {
          spec_.sip->min = std::min(spec_.sip->min, v);
          spec_.sip->max = std::max(spec_.sip->max, v);
        }
      }
    }
    spec_.sip->has_range = single_int_key && !first;
    spec_.sip->ready.store(true, std::memory_order_release);
  }
  return Status::OK();
}

void SharedJoinBuild::FragmentClosed(ExecContext* ctx) {
  std::lock_guard lock(mu_);
  if (open_fragments_ == 0) return;
  if (--open_fragments_ == 0 && ctx != nullptr && ctx->budget != nullptr) {
    ctx->budget->Release(bytes_);
    bytes_ = 0;
  }
}

// ---------------------------------------------------------------------------
// HashJoinOperator

std::vector<TypeId> HashJoinOperator::OutputTypes() const {
  // After the runtime switch the probe child lives inside the fallback
  // merge join, which exposes the identical schema.
  if (fallback_) return fallback_->OutputTypes();
  std::vector<TypeId> t = probe_->OutputTypes();
  if (!ProbeOnlyOutput(spec_.type)) {
    for (TypeId bt : shared_ ? shared_->OutputTypes() : build_->OutputTypes())
      t.push_back(bt);
  }
  return t;
}

std::vector<std::string> HashJoinOperator::OutputNames() const {
  if (fallback_) return fallback_->OutputNames();
  std::vector<std::string> n = probe_->OutputNames();
  if (!ProbeOnlyOutput(spec_.type)) {
    for (const auto& bn : shared_ ? shared_->OutputNames() : build_->OutputNames())
      n.push_back(bn);
  }
  return n;
}

std::vector<Operator*> HashJoinOperator::Children() const {
  if (fallback_) return {fallback_.get()};
  // Shared build: the designated fragment exposes the build subtree so
  // EXPLAIN and plan-memory estimation see it exactly once.
  if (shared_) {
    if (show_build_) return {probe_.get(), shared_->child()};
    return {probe_.get()};
  }
  return {probe_.get(), build_.get()};
}

Status HashJoinOperator::BuildTable() {
  build_rows_ = RowBlock(build_->OutputTypes());
  index_.Clear();
  build_bytes_ = 0;
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(build_->GetNext(&block));
    if (block.NumRows() == 0) break;
    block.DecodeAll();
    size_t bytes = block.MemoryBytes();
    if (ctx_->budget && !ctx_->budget->TryReserve(bytes)) {
      // Runtime algorithm switch: spool what we have plus the rest of the
      // build input to disk and run a sort-merge join instead.
      if (ctx_->stats) ctx_->stats->hash_to_merge_switches.fetch_add(1);
      SpillWriter writer(ctx_->fs, ctx_->NextSpillPath());
      STRATICA_RETURN_NOT_OK(writer.Append(build_rows_));
      STRATICA_RETURN_NOT_OK(writer.Append(block));
      for (;;) {
        RowBlock more;
        STRATICA_RETURN_NOT_OK(build_->GetNext(&more));
        if (more.NumRows() == 0) break;
        more.DecodeAll();
        STRATICA_RETURN_NOT_OK(writer.Append(more));
      }
      STRATICA_RETURN_NOT_OK(writer.Finish());
      if (ctx_->stats) {
        ctx_->stats->rows_spilled.fetch_add(writer.rows());
        ctx_->stats->spill_files.fetch_add(1);
      }
      STRATICA_RETURN_NOT_OK(build_->Close());
      ctx_->budget->Release(build_bytes_);
      build_bytes_ = 0;
      build_rows_ = RowBlock(build_->OutputTypes());
      index_.Clear();

      std::vector<SortKey> lkeys, rkeys;
      for (uint32_t k : spec_.probe_keys) lkeys.push_back({k, false});
      for (uint32_t k : spec_.build_keys) rkeys.push_back({k, false});
      auto spill_src = std::make_unique<SpillSourceOperator>(
          writer.path(), build_->OutputTypes(), build_->OutputNames());
      auto sorted_build =
          std::make_unique<SortOperator>(std::move(spill_src), rkeys);
      auto sorted_probe = std::make_unique<SortOperator>(std::move(probe_), lkeys);
      JoinSpec mj_spec = spec_;
      mj_spec.sip = nullptr;  // no hash table to filter with
      fallback_ = std::make_unique<MergeJoinOperator>(
          std::move(sorted_probe), std::move(sorted_build), mj_spec);
      return fallback_->Open(ctx_);
    }
    build_bytes_ += bytes;
    for (size_t r = 0; r < block.NumRows(); ++r) build_rows_.AppendRowFrom(block, r);
    // Batch insert: hash all key columns once, then append entries whose ids
    // are exactly the build_rows_ row indexes. NULL-key rows never join, so
    // they enter the table unlinked (kept only for RIGHT/FULL emission).
    size_t n = block.NumRows();
    HashRows(block, spec_.build_keys, kGroupKeySeed, &hash_buf_);
    NullKeyMask(block, spec_.build_keys, &null_key_buf_);
    index_.InsertBatch(hash_buf_.data(), n, null_key_buf_.data());
  }
  build_matched_.assign(build_rows_.NumRows(), 0);

  // Publish the SIP filter (scan-side hash seed, Section 6.1).
  if (spec_.sip) {
    bool single_int_key =
        spec_.build_keys.size() == 1 &&
        StorageClassOf(build_rows_.columns[spec_.build_keys[0]].type) ==
            StorageClass::kInt64;
    size_t n = build_rows_.NumRows();
    HashRows(build_rows_, spec_.build_keys, kSipSeed, &hash_buf_);
    NullKeyMask(build_rows_, spec_.build_keys, &null_key_buf_);
    // No Reserve: distinct-key count is unknown (often << n) and the set
    // grows geometrically; reserving for n rows would allocate O(rows)
    // outside the operator budget.
    bool first = true;
    for (size_t r = 0; r < n; ++r) {
      if (null_key_buf_[r]) continue;
      spec_.sip->key_hashes.Insert(hash_buf_[r]);
      if (single_int_key) {
        int64_t v = build_rows_.columns[spec_.build_keys[0]].ints[r];
        if (first) {
          spec_.sip->min = spec_.sip->max = v;
          first = false;
        } else {
          spec_.sip->min = std::min(spec_.sip->min, v);
          spec_.sip->max = std::max(spec_.sip->max, v);
        }
      }
    }
    spec_.sip->has_range = single_int_key && !first;
    spec_.sip->ready.store(true, std::memory_order_release);
  }
  return Status::OK();
}

Status HashJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  fallback_.reset();
  probe_done_ = false;
  emitting_unmatched_ = false;
  probe_cursor_ = 0;
  unmatched_cursor_ = 0;
  if (shared_) {
    if (spec_.type == JoinType::kRight || spec_.type == JoinType::kFull) {
      return Status::InvalidArgument(
          "shared join build cannot serve ", JoinTypeName(spec_.type),
          ": unmatched build rows must be emitted exactly once");
    }
    STRATICA_RETURN_NOT_OK(shared_->Ensure(ctx));
    if (shared_->spilled()) {
      std::vector<SortKey> lkeys, rkeys;
      for (uint32_t k : spec_.probe_keys) lkeys.push_back({k, false});
      for (uint32_t k : spec_.build_keys) rkeys.push_back({k, false});
      auto spill_src = std::make_unique<SpillSourceOperator>(
          shared_->spill_path(), shared_->OutputTypes(), shared_->OutputNames());
      auto sorted_build =
          std::make_unique<SortOperator>(std::move(spill_src), rkeys);
      auto sorted_probe = std::make_unique<SortOperator>(std::move(probe_), lkeys);
      JoinSpec mj_spec = spec_;
      mj_spec.sip = nullptr;
      fallback_ = std::make_unique<MergeJoinOperator>(
          std::move(sorted_probe), std::move(sorted_build), mj_spec);
      return fallback_->Open(ctx);
    }
    return probe_->Open(ctx);
  }
  STRATICA_RETURN_NOT_OK(build_->Open(ctx));
  STRATICA_RETURN_NOT_OK(BuildTable());
  if (fallback_) return Status::OK();  // probe was consumed by the fallback
  STRATICA_RETURN_NOT_OK(build_->Close());
  return probe_->Open(ctx);
}

Status HashJoinOperator::EmitUnmatchedBuild(RowBlock* out) {
  auto probe_types = probe_->OutputTypes();
  while (unmatched_cursor_ < build_rows_.NumRows() &&
         out->NumRows() < ctx_->vector_size) {
    size_t r = unmatched_cursor_++;
    if (build_matched_[r]) continue;
    AppendNullRow(out, 0, probe_types);
    for (size_t c = 0; c < build_rows_.NumColumns(); ++c) {
      out->columns[probe_types.size() + c].AppendFrom(build_rows_.columns[c], r);
    }
  }
  return Status::OK();
}

Status HashJoinOperator::GetNext(RowBlock* out) {
  if (fallback_) return fallback_->GetNext(out);
  *out = RowBlock(OutputTypes());
  bool build_output = !ProbeOnlyOutput(spec_.type);
  size_t probe_width = probe_->OutputTypes().size();
  // Shared-build mode reads the sibling-shared row store and sharded
  // tables; the serial mode owns both. Either way `brows` rows are indexed
  // by the global ids collected into build_idx below.
  const RowBlock& brows = shared_ ? shared_->rows() : build_rows_;

  // Process one whole probe block per call: match indexes are collected
  // first, then columns materialize with typed batch gathers.
  while (out->NumRows() == 0 && !probe_done_) {
    STRATICA_RETURN_NOT_OK(probe_->GetNext(&probe_block_));
    probe_block_.DecodeAll();
    if (probe_block_.NumRows() == 0) {
      probe_done_ = true;
      break;
    }
    std::vector<uint32_t> probe_idx, build_idx;  // matched pairs
    std::vector<uint32_t> lonely_probe;          // unmatched probe rows
    size_t n = probe_block_.NumRows();
    // Hash the whole probe block once, then resolve every row's chain head
    // in one batched probe pass; the per-row loop only walks candidates.
    HashRows(probe_block_, spec_.probe_keys, kGroupKeySeed, &hash_buf_);
    NullKeyMask(probe_block_, spec_.probe_keys, &null_key_buf_);
    head_buf_.resize(n);
    if (shared_) {
      for (size_t r = 0; r < n; ++r) {
        head_buf_[r] = null_key_buf_[r]
                           ? FlatHashTable::kNone
                           : shared_->ProbeHead(shared_->ShardOf(hash_buf_[r]),
                                                hash_buf_[r]);
      }
    } else {
      index_.ProbeBatch(hash_buf_.data(), n, head_buf_.data());
    }
    // Single int-class key fast path: candidates reached via the chain have
    // non-NULL build keys (NULL-key rows are unlinked) and the probe row's
    // key is non-NULL when we get here, so raw value compare suffices.
    const int64_t* probe_ints = nullptr;
    const int64_t* build_ints = nullptr;
    if (spec_.probe_keys.size() == 1 &&
        StorageClassOf(probe_block_.columns[spec_.probe_keys[0]].type) ==
            StorageClass::kInt64 &&
        StorageClassOf(brows.columns[spec_.build_keys[0]].type) ==
            StorageClass::kInt64) {
      probe_ints = probe_block_.columns[spec_.probe_keys[0]].ints.data();
      build_ints = brows.columns[spec_.build_keys[0]].ints.data();
    }
    for (size_t r = 0; r < n; ++r) {
      size_t matches = 0;
      if (!null_key_buf_[r]) {
        uint32_t shard = shared_ ? shared_->ShardOf(hash_buf_[r]) : 0;
        for (uint32_t e = head_buf_[r]; e != FlatHashTable::kNone;
             e = shared_ ? shared_->NextInShard(shard, e) : index_.Next(e)) {
          uint32_t br = shared_ ? shared_->GlobalRow(shard, e) : e;
          bool eq;
          if (probe_ints) {
            eq = probe_ints[r] == build_ints[br];
          } else {
            eq = true;
            for (size_t k = 0; k < spec_.probe_keys.size() && eq; ++k) {
              eq = ColumnVector::CompareEntries(
                       probe_block_.columns[spec_.probe_keys[k]], r,
                       brows.columns[spec_.build_keys[k]], br) == 0;
            }
          }
          if (!eq) continue;
          ++matches;
          // Matched bits feed RIGHT/FULL emission only; shared builds never
          // serve those types, so sibling fragments need not synchronize.
          if (!shared_) build_matched_[br] = 1;
          if (spec_.type == JoinType::kSemi || spec_.type == JoinType::kAnti) break;
          if (build_output) {
            probe_idx.push_back(static_cast<uint32_t>(r));
            build_idx.push_back(br);
          }
        }
      }
      bool emit_lonely = (spec_.type == JoinType::kAnti && matches == 0) ||
                         (spec_.type == JoinType::kSemi && matches > 0) ||
                         ((spec_.type == JoinType::kLeft ||
                           spec_.type == JoinType::kFull) &&
                          matches == 0);
      if (emit_lonely) lonely_probe.push_back(static_cast<uint32_t>(r));
    }
    for (size_t c = 0; c < probe_width; ++c) {
      out->columns[c].AppendGather(probe_block_.columns[c], probe_idx);
    }
    if (build_output) {
      for (size_t c = 0; c < brows.NumColumns(); ++c) {
        out->columns[probe_width + c].AppendGather(brows.columns[c], build_idx);
      }
    }
    if (!lonely_probe.empty()) {
      for (size_t c = 0; c < probe_width; ++c) {
        out->columns[c].AppendGather(probe_block_.columns[c], lonely_probe);
      }
      if (build_output) {
        auto build_types = shared_ ? shared_->OutputTypes() : build_->OutputTypes();
        for (size_t i = 0; i < lonely_probe.size(); ++i) {
          AppendNullRow(out, probe_width, build_types);
        }
      }
    }
  }

  if (out->NumRows() == 0 && probe_done_ &&
      (spec_.type == JoinType::kRight || spec_.type == JoinType::kFull)) {
    if (!emitting_unmatched_) {
      emitting_unmatched_ = true;
      unmatched_cursor_ = 0;
    }
    STRATICA_RETURN_NOT_OK(EmitUnmatchedBuild(out));
  }
  return Status::OK();
}

Status HashJoinOperator::Close() {
  if (fallback_) {
    // A shared build that spilled still holds a fragment slot.
    if (shared_) shared_->FragmentClosed(ctx_);
    return fallback_->Close();
  }
  if (shared_) {
    shared_->FragmentClosed(ctx_);  // last fragment releases the build bytes
    return probe_->Close();
  }
  if (ctx_ && ctx_->budget) ctx_->budget->Release(build_bytes_);
  build_bytes_ = 0;
  return probe_->Close();
}

std::string HashJoinOperator::DebugString() const {
  std::string s = std::string("JoinHash(") + JoinTypeName(spec_.type);
  if (spec_.sip) s += ", SIP";
  if (shared_) s += ", shared build /" + std::to_string(shared_->fanout());
  if (fallback_) s += ", switched to sort-merge at runtime";
  return s + ")";
}

// ---------------------------------------------------------------------------
// MergeJoinOperator

Status MergeJoinOperator::Cursor::Refill() {
  if (done) return Status::OK();
  if (pos < block.NumRows()) return Status::OK();
  for (;;) {
    STRATICA_RETURN_NOT_OK(op->GetNext(&block));
    block.DecodeAll();
    pos = 0;
    if (block.NumRows() == 0) {
      done = true;
      return Status::OK();
    }
    return Status::OK();
  }
}

std::vector<TypeId> MergeJoinOperator::OutputTypes() const {
  std::vector<TypeId> t = left_->OutputTypes();
  if (!ProbeOnlyOutput(spec_.type)) {
    for (TypeId rt : right_->OutputTypes()) t.push_back(rt);
  }
  return t;
}

std::vector<std::string> MergeJoinOperator::OutputNames() const {
  std::vector<std::string> n = left_->OutputNames();
  if (!ProbeOnlyOutput(spec_.type)) {
    for (const auto& rn : right_->OutputNames()) n.push_back(rn);
  }
  return n;
}

Status MergeJoinOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  STRATICA_RETURN_NOT_OK(left_->Open(ctx));
  STRATICA_RETURN_NOT_OK(right_->Open(ctx));
  left_types_ = left_->OutputTypes();
  right_types_ = right_->OutputTypes();
  lcur_ = Cursor{left_.get()};
  rcur_ = Cursor{right_.get()};
  STRATICA_RETURN_NOT_OK(lcur_.Refill());
  STRATICA_RETURN_NOT_OK(rcur_.Refill());
  pending_ = RowBlock(OutputTypes());
  pending_cursor_ = 0;
  return Status::OK();
}

Status MergeJoinOperator::CollectGroup(Cursor* cur, const std::vector<uint32_t>& keys,
                                       RowBlock* group) {
  // First row of the group.
  group->AppendRowFrom(cur->block, cur->pos);
  size_t anchor = group->NumRows() - 1;
  ++cur->pos;
  std::vector<uint32_t> group_keys = keys;
  for (;;) {
    STRATICA_RETURN_NOT_OK(cur->Refill());
    if (cur->done) return Status::OK();
    if (CompareRows(*group, anchor, cur->block, cur->pos, group_keys, keys) != 0)
      return Status::OK();
    group->AppendRowFrom(cur->block, cur->pos);
    ++cur->pos;
  }
}

Status MergeJoinOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  size_t lwidth = left_types_.size();
  bool right_output = !ProbeOnlyOutput(spec_.type);

  // Drain any cross-product overflow first.
  while (pending_cursor_ < pending_.NumRows() && out->NumRows() < ctx_->vector_size) {
    out->AppendRowFrom(pending_, pending_cursor_++);
  }
  if (pending_cursor_ >= pending_.NumRows()) {
    pending_ = RowBlock(OutputTypes());
    pending_cursor_ = 0;
  }

  while (out->NumRows() < ctx_->vector_size) {
    STRATICA_RETURN_NOT_OK(lcur_.Refill());
    STRATICA_RETURN_NOT_OK(rcur_.Refill());
    bool lvalid = !lcur_.done, rvalid = !rcur_.done;
    if (!lvalid && !rvalid) break;

    int cmp;
    bool lnull = lvalid && AnyNullKey(lcur_.block, spec_.probe_keys, lcur_.pos);
    bool rnull = rvalid && AnyNullKey(rcur_.block, spec_.build_keys, rcur_.pos);
    if (!lvalid) {
      cmp = 1;  // only right rows remain
    } else if (!rvalid) {
      cmp = -1;
    } else if (lnull) {
      cmp = -1;  // NULL sorts first and never matches: treat as left-smaller
    } else if (rnull) {
      cmp = 1;
    } else {
      cmp = CompareRows(lcur_.block, lcur_.pos, rcur_.block, rcur_.pos,
                        spec_.probe_keys, spec_.build_keys);
    }

    if (cmp < 0) {
      // Left row has no match.
      if (spec_.type == JoinType::kLeft || spec_.type == JoinType::kFull ||
          spec_.type == JoinType::kAnti) {
        for (size_t c = 0; c < lwidth; ++c)
          out->columns[c].AppendFrom(lcur_.block.columns[c], lcur_.pos);
        if (right_output) AppendNullRow(out, lwidth, right_types_);
      }
      ++lcur_.pos;
    } else if (cmp > 0) {
      if (spec_.type == JoinType::kRight || spec_.type == JoinType::kFull) {
        AppendNullRow(out, 0, left_types_);
        for (size_t c = 0; c < right_types_.size(); ++c)
          out->columns[lwidth + c].AppendFrom(rcur_.block.columns[c], rcur_.pos);
      }
      ++rcur_.pos;
    } else {
      // Equal keys: materialize both groups and emit the cross product.
      RowBlock lgroup(left_types_), rgroup(right_types_);
      STRATICA_RETURN_NOT_OK(CollectGroup(&lcur_, spec_.probe_keys, &lgroup));
      STRATICA_RETURN_NOT_OK(CollectGroup(&rcur_, spec_.build_keys, &rgroup));
      if (spec_.type == JoinType::kSemi) {
        for (size_t lr = 0; lr < lgroup.NumRows(); ++lr) {
          for (size_t c = 0; c < lwidth; ++c)
            out->columns[c].AppendFrom(lgroup.columns[c], lr);
        }
      } else if (spec_.type == JoinType::kAnti) {
        // matched: emit nothing
      } else {
        for (size_t lr = 0; lr < lgroup.NumRows(); ++lr) {
          for (size_t rr = 0; rr < rgroup.NumRows(); ++rr) {
            RowBlock* dst = out->NumRows() < ctx_->vector_size ? out : &pending_;
            for (size_t c = 0; c < lwidth; ++c)
              dst->columns[c].AppendFrom(lgroup.columns[c], lr);
            for (size_t c = 0; c < right_types_.size(); ++c)
              dst->columns[lwidth + c].AppendFrom(rgroup.columns[c], rr);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status MergeJoinOperator::Close() {
  STRATICA_RETURN_NOT_OK(left_->Close());
  return right_->Close();
}

std::string MergeJoinOperator::DebugString() const {
  return std::string("JoinMerge(") + JoinTypeName(spec_.type) + ")";
}

}  // namespace stratica
