#include "exec/analytic.h"

#include "exec/group_by.h"

namespace stratica {

const char* WindowFuncName(WindowFunc f) {
  switch (f) {
    case WindowFunc::kRowNumber: return "ROW_NUMBER";
    case WindowFunc::kRank: return "RANK";
    case WindowFunc::kDenseRank: return "DENSE_RANK";
    case WindowFunc::kSum: return "SUM";
    case WindowFunc::kCount: return "COUNT";
    case WindowFunc::kAvg: return "AVG";
    case WindowFunc::kMin: return "MIN";
    case WindowFunc::kMax: return "MAX";
  }
  return "?";
}

TypeId WindowSpec::OutputType(const std::vector<TypeId>& child_types) const {
  switch (func) {
    case WindowFunc::kRowNumber:
    case WindowFunc::kRank:
    case WindowFunc::kDenseRank:
    case WindowFunc::kCount:
      return TypeId::kInt64;
    case WindowFunc::kAvg:
      return TypeId::kFloat64;
    case WindowFunc::kSum:
      return child_types[input_column] == TypeId::kFloat64 ? TypeId::kFloat64
                                                           : TypeId::kInt64;
    case WindowFunc::kMin:
    case WindowFunc::kMax:
      return child_types[input_column];
  }
  return TypeId::kInt64;
}

std::vector<TypeId> AnalyticOperator::OutputTypes() const {
  std::vector<TypeId> t = child_->OutputTypes();
  for (const auto& w : spec_.windows) t.push_back(w.OutputType(child_->OutputTypes()));
  return t;
}

std::vector<std::string> AnalyticOperator::OutputNames() const {
  std::vector<std::string> n = child_->OutputNames();
  for (const auto& w : spec_.windows) n.push_back(w.output_name);
  return n;
}

void AnalyticOperator::ComputePartition(const RowBlock& partition, RowBlock* out) {
  size_t n = partition.NumRows();
  size_t base_cols = partition.NumColumns();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < base_cols; ++c) {
      out->columns[c].AppendFrom(partition.columns[c], r);
    }
  }

  for (size_t w = 0; w < spec_.windows.size(); ++w) {
    const WindowSpec& win = spec_.windows[w];
    ColumnVector& out_col = out->columns[base_cols + w];
    bool has_order = !spec_.order_keys.empty();
    switch (win.func) {
      case WindowFunc::kRowNumber:
        for (size_t r = 0; r < n; ++r) out_col.Append(Value::Int64(static_cast<int64_t>(r + 1)));
        break;
      case WindowFunc::kRank:
      case WindowFunc::kDenseRank: {
        int64_t rank = 0, dense = 0;
        for (size_t r = 0; r < n; ++r) {
          bool new_peer_group =
              r == 0 || CompareRowsDirected(partition, r - 1, partition, r,
                                            spec_.order_keys) != 0;
          if (new_peer_group) {
            rank = static_cast<int64_t>(r + 1);
            ++dense;
          }
          out_col.Append(
              Value::Int64(win.func == WindowFunc::kRank ? rank : dense));
        }
        break;
      }
      default: {
        AggSpec agg;
        agg.input_column = win.input_column;
        agg.input_type =
            win.input_column >= 0 ? partition.columns[win.input_column].type
                                  : TypeId::kInt64;
        switch (win.func) {
          case WindowFunc::kSum: agg.kind = AggKind::kSum; break;
          case WindowFunc::kCount:
            agg.kind = win.input_column < 0 ? AggKind::kCountStar : AggKind::kCount;
            break;
          case WindowFunc::kAvg: agg.kind = AggKind::kAvg; break;
          case WindowFunc::kMin: agg.kind = AggKind::kMin; break;
          case WindowFunc::kMax: agg.kind = AggKind::kMax; break;
          default: break;
        }
        if (!has_order) {
          // Whole-partition frame.
          AggState st;
          for (size_t r = 0; r < n; ++r) {
            if (agg.kind == AggKind::kCountStar) {
              st.UpdateCountStar(1);
            } else {
              st.Update(agg, partition.columns[agg.input_column], r, 1);
            }
          }
          Value v = st.Final(agg);
          for (size_t r = 0; r < n; ++r) out_col.Append(v);
        } else {
          // Running frame with peers: recompute at each peer boundary.
          AggState st;
          std::vector<Value> row_values(n);
          size_t peer_start = 0;
          for (size_t r = 0; r < n; ++r) {
            if (agg.kind == AggKind::kCountStar) {
              st.UpdateCountStar(1);
            } else {
              st.Update(agg, partition.columns[agg.input_column], r, 1);
            }
            bool last_peer =
                r + 1 == n || CompareRowsDirected(partition, r, partition, r + 1,
                                                  spec_.order_keys) != 0;
            if (last_peer) {
              Value v = st.Final(agg);
              for (size_t p = peer_start; p <= r; ++p) row_values[p] = v;
              peer_start = r + 1;
            }
          }
          for (size_t r = 0; r < n; ++r) out_col.Append(row_values[r]);
        }
        break;
      }
    }
  }
}

Status AnalyticOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  STRATICA_RETURN_NOT_OK(child_->Open(ctx));
  results_ = RowBlock(OutputTypes());
  cursor_ = 0;

  // Materialize and process partition by partition.
  RowBlock partition(child_->OutputTypes());
  std::vector<uint32_t> part_cols = spec_.partition_columns;
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&block));
    if (block.NumRows() == 0) break;
    block.DecodeAll();
    for (size_t r = 0; r < block.NumRows(); ++r) {
      bool boundary =
          partition.NumRows() > 0 &&
          !GroupKeyEquals(partition, part_cols, partition.NumRows() - 1, block,
                          part_cols, r);
      if (boundary) {
        ComputePartition(partition, &results_);
        partition = RowBlock(child_->OutputTypes());
      }
      partition.AppendRowFrom(block, r);
    }
  }
  if (partition.NumRows() > 0) ComputePartition(partition, &results_);
  return Status::OK();
}

Status AnalyticOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  size_t n = results_.NumRows();
  if (cursor_ >= n) return Status::OK();
  size_t take = std::min(ctx_->vector_size, n - cursor_);
  for (size_t r = 0; r < take; ++r) out->AppendRowFrom(results_, cursor_ + r);
  cursor_ += take;
  return Status::OK();
}

std::string AnalyticOperator::DebugString() const {
  std::string s = "Analytic(";
  for (size_t i = 0; i < spec_.windows.size(); ++i) {
    if (i) s += ", ";
    s += WindowFuncName(spec_.windows[i].func);
  }
  s += " OVER (PARTITION BY " + std::to_string(spec_.partition_columns.size()) +
       " cols)";
  return s + ")";
}

}  // namespace stratica
