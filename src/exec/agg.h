// Aggregate function framework shared by the GroupBy flavors and the
// Analytic operator. Supports single-phase evaluation plus the
// partial/combine split used by prepass operators (Section 6.1) and
// two-stage distributed aggregation (Section 3.6).
#ifndef STRATICA_EXEC_AGG_H_
#define STRATICA_EXEC_AGG_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/row_block.h"
#include "common/status.h"

namespace stratica {

enum class AggKind : uint8_t {
  kCountStar,
  kCount,  // COUNT(col): non-null rows
  kSum,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,
};

const char* AggKindName(AggKind k);

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  int input_column = -1;  ///< -1 for COUNT(*)
  TypeId input_type = TypeId::kInt64;

  TypeId OutputType() const;
  /// Column layout of the partial representation (AVG needs sum + count).
  std::vector<TypeId> PartialTypes() const;
  /// True if this aggregate supports partial/combine evaluation.
  bool Partialable() const { return kind != AggKind::kCountDistinct; }
};

/// \brief Accumulator for one (group, aggregate) pair.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  bool has_value = false;  // for MIN/MAX
  Value extreme;
  std::unique_ptr<std::set<std::string>> distinct;  // serialized values

  AggState() = default;
  AggState(AggState&&) = default;
  AggState& operator=(AggState&&) = default;
  // Deep copy (container growth copies states around).
  AggState(const AggState& other) { *this = other; }
  AggState& operator=(const AggState& other) {
    if (this == &other) return *this;
    count = other.count;
    isum = other.isum;
    dsum = other.dsum;
    has_value = other.has_value;
    extreme = other.extreme;
    distinct = other.distinct ? std::make_unique<std::set<std::string>>(*other.distinct)
                              : nullptr;
    return *this;
  }

  /// Fold one input row (appearing `run` times) into the state.
  void Update(const AggSpec& spec, const ColumnVector& col, size_t phys, uint32_t run);
  void UpdateCountStar(uint32_t run) { count += run; }
  /// Fold another state (combine phase / spill merge).
  void Merge(const AggSpec& spec, const AggState& other);

  /// Fold a row of partial columns (combine phase).
  void UpdatePartial(const AggSpec& spec, const RowBlock& block, size_t first_col,
                     size_t row);

  Value Final(const AggSpec& spec) const;
  /// Append the partial representation to `cols[first..]`.
  void EmitPartial(const AggSpec& spec, std::vector<ColumnVector>* cols,
                   size_t first_col) const;

  std::string Serialize(const AggSpec& spec) const;
  static Result<AggState> Parse(const AggSpec& spec, const std::string& data);

  size_t MemoryBytes() const {
    size_t n = sizeof(AggState);
    if (distinct) {
      for (const auto& s : *distinct) n += s.size() + 32;
    }
    return n;
  }
};

/// Evaluation phase of a GroupBy operator.
enum class AggPhase : uint8_t {
  kSingle,   ///< raw input -> final values
  kPartial,  ///< raw input -> partial columns (prepass / local stage)
  kCombine,  ///< partial columns -> final values (final stage)
};

/// Output schema (types) of a group-by given its phase.
std::vector<TypeId> GroupByOutputTypes(const std::vector<TypeId>& group_types,
                                       const std::vector<AggSpec>& aggs,
                                       AggPhase phase);

}  // namespace stratica

#endif  // STRATICA_EXEC_AGG_H_
