// ExprEval (projection), Filter, Sort (externalizing), Limit, and the
// in-memory source used by tests and DML plumbing.
#ifndef STRATICA_EXEC_SIMPLE_OPS_H_
#define STRATICA_EXEC_SIMPLE_OPS_H_

#include <memory>

#include "exec/merge.h"
#include "exec/operator.h"
#include "exec/spill.h"
#include "expr/expr.h"
#include "storage/sort_util.h"

namespace stratica {

/// \brief Operator over a pre-materialized block (tests, VALUES, DML).
class MaterializedOperator : public Operator {
 public:
  MaterializedOperator(RowBlock block, std::vector<std::string> names)
      : block_(std::move(block)), names_(std::move(names)) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    cursor_ = 0;
    // Decode once at first Open — and only if any column is actually RLE,
    // so a flat materialized table isn't held in memory twice.
    if (flat_.columns.empty()) {
      bool any_rle = false;
      for (const auto& c : block_.columns) any_rle |= c.IsRle();
      if (any_rle) {
        flat_ = block_;
        flat_.DecodeAll();
      }
    }
    return Status::OK();
  }
  Status GetNext(RowBlock* out) override;
  Status Close() override { return Status::OK(); }
  std::vector<TypeId> OutputTypes() const override {
    std::vector<TypeId> t;
    for (const auto& c : block_.columns) t.push_back(c.type);
    return t;
  }
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override { return "Materialized"; }

 private:
  /// Rows to serve: flat_ when block_ needed RLE decoding, block_ itself
  /// otherwise (no duplicate copy of already-flat data).
  const RowBlock& Rows() const { return flat_.columns.empty() ? block_ : flat_; }

  RowBlock block_;
  RowBlock flat_;  ///< decoded copy, only populated when block_ has RLE columns
  std::vector<std::string> names_;
  ExecContext* ctx_ = nullptr;
  size_t cursor_ = 0;
};

/// \brief ExprEval (Section 6.1 #4): computes one output column per
/// expression over the child's rows.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names);

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  ExecContext* ctx_ = nullptr;
};

/// \brief Row filter for predicates not pushed into a scan (e.g. HAVING).
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    return child_->Open(ctx);
  }
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override { return child_->OutputTypes(); }
  std::vector<std::string> OutputNames() const override { return child_->OutputNames(); }
  std::string DebugString() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<Operator*> Children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
};

/// \brief Sort (Section 6.1 #5): externalizing sort over normalized keys
/// (DESIGN.md §8). Run generation buffers input up to the spill memory
/// limit (ExecContext::sort_memory_bytes and/or the ResourceBudget), sorts
/// each run with a memcmp-class normalized-key sort and spills it; the
/// final run stays in memory and all runs stream through a k-way
/// loser-tree merge. When a Limit sits above the Sort, the planner passes
/// `limit_hint` and the operator switches to a fused top-k heap that keeps
/// at most `limit_hint` rows buffered and never spills.
class SortOperator : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys, uint64_t limit_hint = 0)
      : child_(std::move(child)), keys_(std::move(keys)), limit_hint_(limit_hint) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override { return child_->OutputTypes(); }
  std::vector<std::string> OutputNames() const override { return child_->OutputNames(); }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override { return {child_.get()}; }
  size_t MemoryEstimateBytes() const override {
    // Top-k keeps at most limit_hint rows; a full sort buffers up to the
    // run-generation ceiling before spilling.
    return limit_hint_ > 0 ? (1 << 20) : (16 << 20);
  }

  size_t runs_spilled() const { return run_paths_.size(); }

 private:
  Status ConsumeRuns();       ///< run generation + spill (general path)
  Status ConsumeTopK();       ///< bounded heap (limit-hint path)
  Status SpillRun();          ///< sort + spill the current buffer
  RowBlock SortBuffer();      ///< normalized-key sort of buffer_
  void CompactTopKStore();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  uint64_t limit_hint_;
  ExecContext* ctx_ = nullptr;

  RowBlock buffer_;
  size_t buffer_bytes_ = 0;
  size_t reserved_ = 0;
  std::vector<std::string> run_paths_;
  std::unique_ptr<LoserTreeMerger> merger_;

  RowBlock sorted_;  ///< in-memory result when nothing spilled (or top-k)
  size_t cursor_ = 0;
  bool merge_mode_ = false;

  /// Top-k: max-heap of the best `limit_hint_` rows seen so far, ordered by
  /// (normalized key, arrival sequence) so duplicates resolve exactly like a
  /// stable full sort. Rows live append-only in topk_store_ and are
  /// compacted when the store outgrows the heap 4:1.
  struct TopKEntry {
    std::string key;
    uint64_t seq;
    uint32_t row;  ///< row in topk_store_
  };
  std::vector<TopKEntry> heap_;
  RowBlock topk_store_;
  uint64_t topk_seq_ = 0;
};

/// \brief LIMIT n (with optional OFFSET).
class LimitOperator : public Operator {
 public:
  LimitOperator(OperatorPtr child, uint64_t limit, uint64_t offset = 0)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  Status Open(ExecContext* ctx) override {
    seen_ = emitted_ = 0;
    return child_->Open(ctx);
  }
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override { return child_->OutputTypes(); }
  std::vector<std::string> OutputNames() const override { return child_->OutputNames(); }
  std::string DebugString() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }
  std::vector<Operator*> Children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  uint64_t limit_, offset_;
  uint64_t seen_ = 0, emitted_ = 0;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_SIMPLE_OPS_H_
