// Execution engine core (Section 6.1).
//
// Pull-model, vectorized operators: the downstream operator requests blocks
// of rows from upstream. GetNext returning an empty block signals EOF.
// Every operator receives a memory budget and must externalize (spill) when
// it would exceed it — "critical for a production database to ensure users
// queries are always answered".
#ifndef STRATICA_EXEC_OPERATOR_H_
#define STRATICA_EXEC_OPERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"
#include "txn/epoch.h"

namespace stratica {

class Scheduler;

/// Execution counters surfaced by EXPLAIN/benches.
struct ExecStats {
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> blocks_pruned{0};      ///< position-index min/max pruning
  std::atomic<uint64_t> containers_pruned{0};  ///< container/partition pruning
  std::atomic<uint64_t> rows_sip_filtered{0};  ///< removed by SIP at the scan
  /// Physical values materialized for payload (non-filter) columns by the
  /// late-materialization scan — one count per column per row decoded, so a
  /// selective scan reports ≈ rows_selected × payload_columns, not
  /// rows_scanned × payload_columns (DESIGN.md §7).
  std::atomic<uint64_t> rows_decoded{0};
  /// Encoded bytes of payload-column blocks never read because the block's
  /// selection came back empty (zero I/O, zero decode).
  std::atomic<uint64_t> payload_bytes_skipped{0};
  std::atomic<uint64_t> bytes_read{0};         ///< encoded bytes fetched by scans
  std::atomic<uint64_t> rows_spilled{0};
  std::atomic<uint64_t> spill_files{0};
  std::atomic<uint64_t> sort_runs{0};           ///< sorted runs spilled by Sort
  std::atomic<uint64_t> sort_spilled_bytes{0};  ///< serialized bytes of those runs
  /// Rows a top-k Sort discarded without buffering (they could not beat the
  /// current k-th key) — the savings of the fused Limit+Sort path.
  std::atomic<uint64_t> topk_rows_pruned{0};
  std::atomic<uint64_t> prepass_disabled{0};   ///< runtime prepass shutoffs
  std::atomic<uint64_t> hash_to_merge_switches{0};
  std::atomic<uint64_t> exchange_bytes{0};     ///< simulated interconnect traffic
  /// Transient I/O errors absorbed by reader-level retry (DESIGN.md §10).
  std::atomic<uint64_t> io_retries{0};
  /// Reads rerouted to a buddy copy after a persistent failure quarantined
  /// the originally-planned projection storage.
  std::atomic<uint64_t> reads_failed_over{0};
  /// Straggler mitigation (DESIGN.md §11): speculative re-issues of an
  /// exchange partition against a buddy copy after its deadline expired with
  /// zero progress.
  std::atomic<uint64_t> exchange_hedges{0};
  /// Exchange partitions where the planned primary producer failed and a
  /// buddy copy served the slot instead — whether the backup was spawned in
  /// response to the failure or was already in flight as a hedge.
  std::atomic<uint64_t> exchange_reroutes{0};
  /// Compressed execution (DESIGN.md §13): logical rows an operator consumed
  /// in encoded form — predicate eval by RLE run or dict code, aggregation
  /// by run length, group-by via the code→group map — instead of on
  /// materialized values.
  std::atomic<uint64_t> rows_processed_encoded{0};
  /// Encoded bytes of blocks that left the scan still encoded (runs or dict
  /// codes) — decode work the executor never paid.
  std::atomic<uint64_t> decode_elided_bytes{0};
  /// Queries the planner ran serial because the scan shape (sorted output /
  /// RLE passthrough) cannot ride the morsel path; keeps AllowedFanout
  /// accounting honest about the bypass (DESIGN.md §12).
  std::atomic<uint64_t> morsel_bypasses{0};

  /// Fold another query's counters into this one (Database keeps one
  /// cumulative ExecStats; each query runs against its own and merges on
  /// completion so concurrent queries never interleave counters).
  void MergeFrom(const ExecStats& other) {
    rows_scanned += other.rows_scanned.load(std::memory_order_relaxed);
    blocks_pruned += other.blocks_pruned.load(std::memory_order_relaxed);
    containers_pruned += other.containers_pruned.load(std::memory_order_relaxed);
    rows_sip_filtered += other.rows_sip_filtered.load(std::memory_order_relaxed);
    rows_decoded += other.rows_decoded.load(std::memory_order_relaxed);
    payload_bytes_skipped += other.payload_bytes_skipped.load(std::memory_order_relaxed);
    bytes_read += other.bytes_read.load(std::memory_order_relaxed);
    rows_spilled += other.rows_spilled.load(std::memory_order_relaxed);
    spill_files += other.spill_files.load(std::memory_order_relaxed);
    sort_runs += other.sort_runs.load(std::memory_order_relaxed);
    sort_spilled_bytes += other.sort_spilled_bytes.load(std::memory_order_relaxed);
    topk_rows_pruned += other.topk_rows_pruned.load(std::memory_order_relaxed);
    prepass_disabled += other.prepass_disabled.load(std::memory_order_relaxed);
    hash_to_merge_switches += other.hash_to_merge_switches.load(std::memory_order_relaxed);
    exchange_bytes += other.exchange_bytes.load(std::memory_order_relaxed);
    io_retries += other.io_retries.load(std::memory_order_relaxed);
    reads_failed_over += other.reads_failed_over.load(std::memory_order_relaxed);
    exchange_hedges += other.exchange_hedges.load(std::memory_order_relaxed);
    exchange_reroutes += other.exchange_reroutes.load(std::memory_order_relaxed);
    rows_processed_encoded += other.rows_processed_encoded.load(std::memory_order_relaxed);
    decode_elided_bytes += other.decode_elided_bytes.load(std::memory_order_relaxed);
    morsel_bypasses += other.morsel_bypasses.load(std::memory_order_relaxed);
  }
};

/// \brief Byte budget shared by the operators of one plan zone.
///
/// Plan zones separated by full barriers (Sort) cannot execute
/// simultaneously, so downstream zones reuse the budget upstream zones
/// release (Section 6.1).
class ResourceBudget {
 public:
  explicit ResourceBudget(size_t total_bytes) : available_(static_cast<int64_t>(total_bytes)) {}

  bool TryReserve(size_t bytes) {
    int64_t b = static_cast<int64_t>(bytes);
    int64_t cur = available_.load(std::memory_order_relaxed);
    while (cur >= b) {
      if (available_.compare_exchange_weak(cur, cur - b)) return true;
    }
    return false;
  }
  void Release(size_t bytes) { available_.fetch_add(static_cast<int64_t>(bytes)); }
  int64_t available() const { return available_.load(); }

 private:
  std::atomic<int64_t> available_;
};

/// Shared, per-query execution environment.
struct ExecContext {
  FileSystem* fs = nullptr;
  Epoch epoch = 0;       ///< Snapshot epoch the query targets.
  uint64_t txn_id = 0;   ///< For read-your-writes visibility.
  ResourceBudget* budget = nullptr;
  ExecStats* stats = nullptr;
  std::string spill_dir = "tmp/spill";
  std::shared_ptr<std::atomic<uint64_t>> spill_seq =
      std::make_shared<std::atomic<uint64_t>>(0);
  size_t vector_size = kDefaultVectorSize;
  /// Worker fan-out this query may use for intra-node parallelism: morsel
  /// pipelines per scan unit and TaskSet width for partitioned hash builds
  /// (DESIGN.md §12). Derived from the admission reservation — see
  /// ResourceManager::AllowedFanout — so memory authority stays with the
  /// resource manager. 1 = serial; ignored when `scheduler` is null.
  size_t intra_node_parallelism = 4;
  /// Unified worker pool (DESIGN.md §12): exchange producers, morsel
  /// fragments, and partitioned build tasks all run here. Null = spawn
  /// nothing in parallel (operators fall back to their serial paths).
  Scheduler* scheduler = nullptr;
  /// Per-Sort buffering ceiling before run generation spills (Section 6.1:
  /// operators must handle inputs of any size regardless of allocated
  /// memory). Enforced even when no ResourceBudget is installed; 0 disables
  /// the cap (tests only).
  size_t sort_memory_bytes = 64ull << 20;
  /// Straggler-hedging policy for exchanges (DESIGN.md §11). 0 disables
  /// hedging; otherwise a producer that has pushed nothing by the deadline
  /// is speculatively re-issued against its buddy copy. The deadline doubles
  /// on each attempt (exponential backoff) up to hedge_max_attempts.
  uint64_t hedge_deadline_ms = 0;
  uint32_t hedge_max_attempts = 2;
  /// Cooperative abandonment (DESIGN.md §11): the exchange sets this flag
  /// when the producer pipeline running under this context no longer matters
  /// — another source claimed its partition, the slot completed, or the
  /// exchange was cancelled. Leaf operators poll it between storage
  /// operations and exit early with a clean EOF, so a straggling producer
  /// (where every file op is slow) stops consuming I/O once hedged past and
  /// does not stall query teardown for the rest of its scan.
  const std::atomic<bool>* abandon = nullptr;

  std::string NextSpillPath() {
    return spill_dir + "/s" + std::to_string(spill_seq->fetch_add(1));
  }
};

/// \brief Base class for all execution operators.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Fill `out`; an empty block means end of stream.
  virtual Status GetNext(RowBlock* out) = 0;
  virtual Status Close() = 0;

  virtual std::vector<TypeId> OutputTypes() const = 0;
  virtual std::vector<std::string> OutputNames() const = 0;

  /// One-line description for EXPLAIN trees.
  virtual std::string DebugString() const = 0;
  virtual std::vector<Operator*> Children() const { return {}; }

  /// Working-set estimate for this operator alone (no children), used by
  /// the resource manager's admission reservation. Deliberately coarse —
  /// the paper's resource manager also plans against budgeted estimates,
  /// not measured usage — and conservative for blocking operators, whose
  /// spill thresholds bound the true footprint.
  virtual size_t MemoryEstimateBytes() const { return 256 << 10; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Sum of MemoryEstimateBytes over the whole plan tree: the admission
/// reservation the planner attaches to a PhysicalPlan.
size_t EstimatePlanMemory(const Operator& root);

/// Render an operator tree as an indented EXPLAIN listing.
std::string ExplainTree(const Operator& root);

/// Drain an operator to completion, concatenating output (tests, DML).
Result<RowBlock> DrainOperator(Operator* op, ExecContext* ctx);

}  // namespace stratica

#endif  // STRATICA_EXEC_OPERATOR_H_
