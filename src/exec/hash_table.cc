#include "exec/hash_table.h"

namespace stratica {

namespace {

inline size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlatHashTable

void FlatHashTable::Clear() {
  for (auto& s : slots_) s.head = kNone;
  entry_hash_.clear();
  next_.clear();
  used_slots_ = 0;
}

void FlatHashTable::Reserve(size_t n) {
  size_t want = NextPow2(n + n / 4 + kMinSlots);
  if (want > slots_.size()) Rehash(want);
  entry_hash_.reserve(n);
  next_.reserve(n);
}

void FlatHashTable::Link(uint32_t id, uint64_t h) {
  size_t idx = static_cast<size_t>(h) & mask_;
  for (;;) {
    Slot& s = slots_[idx];
    if (s.head == kNone) {
      s.hash = h;
      s.head = id;
      next_[id] = kNone;
      ++used_slots_;
      return;
    }
    if (s.hash == h) {  // push onto the equal-hash chain (LIFO)
      next_[id] = s.head;
      s.head = id;
      return;
    }
    idx = (idx + 1) & mask_;
  }
}

void FlatHashTable::Rehash(size_t new_slots) {
  slots_.assign(new_slots, Slot{});
  mask_ = new_slots - 1;
  used_slots_ = 0;
  for (uint32_t id = 0; id < next_.size(); ++id) {
    if (next_[id] == kUnlinked) continue;
    Link(id, entry_hash_[id]);
  }
}

uint32_t FlatHashTable::Insert(uint64_t hash) {
  GrowIfNeeded();
  uint32_t id = static_cast<uint32_t>(next_.size());
  entry_hash_.push_back(hash);
  next_.push_back(kNone);
  Link(id, hash);
  return id;
}

uint32_t FlatHashTable::InsertUnlinked() {
  uint32_t id = static_cast<uint32_t>(next_.size());
  entry_hash_.push_back(0);
  next_.push_back(kUnlinked);
  return id;
}

void FlatHashTable::InsertBatch(const uint64_t* hashes, size_t n, const uint8_t* skip) {
  Reserve(next_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    if (skip && skip[i]) {
      InsertUnlinked();
    } else {
      Insert(hashes[i]);
    }
  }
}

void FlatHashTable::ProbeBatch(const uint64_t* hashes, size_t n,
                               uint32_t* out_heads) const {
  constexpr size_t kPrefetchDistance = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      __builtin_prefetch(&slots_[static_cast<size_t>(hashes[i + kPrefetchDistance]) &
                                 mask_]);
    }
    out_heads[i] = Probe(hashes[i]);
  }
}

// ---------------------------------------------------------------------------
// FlatHashSet

void FlatHashSet::Clear() {
  for (auto& s : slots_) s = 0;
  size_ = 0;
  has_zero_ = false;
}

void FlatHashSet::Reserve(size_t n) {
  size_t want = 1;
  while (want < n + n / 4 + kMinSlots) want <<= 1;
  if (want <= slots_.size()) return;
  Rehash(want);
}

void FlatHashSet::Rehash(size_t new_slots) {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(new_slots, 0);
  mask_ = new_slots - 1;
  size_ = 0;
  for (uint64_t v : old) {
    if (v != 0) Insert(v);
  }
}

void FlatHashSet::Insert(uint64_t value) {
  if (value == 0) {
    has_zero_ = true;
    return;
  }
  if ((size_ + 1) * 8 > slots_.size() * 7) Rehash(slots_.size() * 2);
  size_t idx = static_cast<size_t>(value) & mask_;
  for (;;) {
    uint64_t s = slots_[idx];
    if (s == value) return;  // already present
    if (s == 0) {
      slots_[idx] = value;
      ++size_;
      return;
    }
    idx = (idx + 1) & mask_;
  }
}

void FlatHashSet::ContainsBatch(const uint64_t* values, size_t n, uint8_t* out) const {
  constexpr size_t kPrefetchDistance = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      __builtin_prefetch(
          &slots_[static_cast<size_t>(values[i + kPrefetchDistance]) & mask_]);
    }
    out[i] = Contains(values[i]) ? 1 : 0;
  }
}

}  // namespace stratica
