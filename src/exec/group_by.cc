#include "exec/group_by.h"

#include "common/hash.h"
#include "exec/scheduler.h"

namespace stratica {

uint64_t HashGroupKey(const RowBlock& block, const std::vector<uint32_t>& cols,
                      size_t row) {
  uint64_t h = kGroupKeySeed;
  for (uint32_t c : cols) h = HashCombine(h, block.columns[c].HashEntry(row));
  return h;
}

bool GroupKeyEquals(const RowBlock& a, const std::vector<uint32_t>& cols_a, size_t ra,
                    const RowBlock& b, const std::vector<uint32_t>& cols_b, size_t rb) {
  for (size_t i = 0; i < cols_a.size(); ++i) {
    const ColumnVector& ca = a.columns[cols_a[i]];
    const ColumnVector& cb = b.columns[cols_b[i]];
    if (ca.IsNull(ra) != cb.IsNull(rb)) return false;
    if (!ca.IsNull(ra) && ColumnVector::CompareEntries(ca, ra, cb, rb) != 0)
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// HashGroupByOperator

std::vector<TypeId> HashGroupByOperator::GroupTypes() const {
  std::vector<TypeId> t;
  auto child_types = child_->OutputTypes();
  for (uint32_t c : spec_.group_columns) t.push_back(child_types[c]);
  return t;
}

std::vector<TypeId> HashGroupByOperator::OutputTypes() const {
  return GroupByOutputTypes(GroupTypes(), spec_.aggs, spec_.phase);
}

uint32_t HashGroupByOperator::FindOrInsertGroup(Table* table, const RowBlock& block,
                                                const std::vector<uint32_t>& key_cols,
                                                size_t row, uint64_t h) {
  for (uint32_t e = table->index.Probe(h); e != FlatHashTable::kNone;
       e = table->index.Next(e)) {
    if (GroupKeyEquals(table->keys, identity_cols_, e, block, key_cols, row)) return e;
  }
  uint32_t group = table->index.Insert(h);
  for (size_t i = 0; i < key_cols.size(); ++i) {
    table->keys.columns[i].AppendFrom(block.columns[key_cols[i]], row);
  }
  table->states.emplace_back(spec_.aggs.size());
  table->bytes += 64 + 48 * spec_.aggs.size();
  return group;
}

Status HashGroupByOperator::Consume(RowBlock* blockp) {
  if (spec_.phase != AggPhase::kCombine) {
    // Encoded fast paths (DESIGN.md §13).
    if (spec_.group_columns.empty()) return ConsumeGlobal(*blockp);
    if (spec_.group_columns.size() == 1) {
      const ColumnVector& gc = blockp->columns[spec_.group_columns[0]];
      if (gc.IsDictCoded()) return ConsumeDictKey(blockp);
      if (gc.IsRle()) return ConsumeRleKey(blockp);
    }
  }
  // Universal fallback: flatten RLE columns (their physical entries are not
  // row-parallel); dict columns stay coded — HashRows, GroupKeyEquals and
  // AggState::Update all resolve codes through the dictionary.
  bool any_dict = false;
  for (auto& col : blockp->columns) {
    if (col.IsRle()) col = col.Decoded();
    any_dict |= col.IsDictCoded();
  }
  if (spec_.phase == AggPhase::kCombine) blockp->DecodeAll();
  const RowBlock& block = *blockp;
  size_t n = block.NumRows();
  if (any_dict && spec_.phase != AggPhase::kCombine && ctx_->stats) {
    ctx_->stats->rows_processed_encoded.fetch_add(n);
  }
  // Hash the whole block once (type-specialized per-column loops), then
  // probe in a batch; only rows that miss or collide fall back to the
  // serial find-or-insert walk.
  HashRows(block, spec_.group_columns, kGroupKeySeed, &hash_buf_);
  head_buf_.resize(n);
  table_.index.ProbeBatch(hash_buf_.data(), n, head_buf_.data());
  for (size_t r = 0; r < n; ++r) {
    uint32_t group = FlatHashTable::kNone;
    // Fast path: the batched probe found the chain head; walk candidates.
    // Chain heads are entry ids and stay valid across inserts, but a miss
    // must re-probe: an earlier row of this block may have added the group.
    for (uint32_t e = head_buf_[r]; e != FlatHashTable::kNone; e = table_.index.Next(e)) {
      if (GroupKeyEquals(table_.keys, identity_cols_, e, block, spec_.group_columns,
                         r)) {
        group = e;
        break;
      }
    }
    if (group == FlatHashTable::kNone) {
      group = FindOrInsertGroup(&table_, block, spec_.group_columns, r, hash_buf_[r]);
    }
    auto& states = table_.states[group];
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      const AggSpec& agg = spec_.aggs[a];
      if (spec_.phase == AggPhase::kCombine) {
        // Input columns: group columns first, then each agg's partial columns.
        size_t first = spec_.group_columns.size();
        for (size_t p = 0; p < a; ++p) first += spec_.aggs[p].PartialTypes().size();
        states[a].UpdatePartial(agg, block, first, r);
      } else if (agg.kind == AggKind::kCountStar) {
        states[a].UpdateCountStar(1);
      } else {
        size_t before = states[a].MemoryBytes();
        states[a].Update(agg, block.columns[agg.input_column], r, 1);
        table_.bytes += states[a].MemoryBytes() - before;
      }
    }
  }
  // Externalize when over budget: flush groups (key + serialized states) to
  // grace partitions by key hash.
  if (ctx_->budget && table_.bytes > 0 &&
      static_cast<int64_t>(table_.bytes) > ctx_->budget->available()) {
    STRATICA_RETURN_NOT_OK(SpillTable());
  }
  return Status::OK();
}

Status HashGroupByOperator::ConsumeGlobal(const RowBlock& block) {
  size_t n = block.NumRows();
  // One group, no key columns; create it exactly as the general path would
  // so spill/merge see an identical table shape.
  uint32_t group;
  if (table_.states.empty()) {
    group = FindOrInsertGroup(&table_, block, spec_.group_columns, 0,
                              HashGroupKey(block, spec_.group_columns, 0));
  } else {
    group = 0;
  }
  auto& states = table_.states[group];
  uint64_t enc_rows = 0;
  for (size_t a = 0; a < spec_.aggs.size(); ++a) {
    const AggSpec& agg = spec_.aggs[a];
    if (agg.kind == AggKind::kCountStar) {
      states[a].UpdateCountStar(static_cast<uint32_t>(n));
      continue;
    }
    const ColumnVector& col = block.columns[agg.input_column];
    size_t before = states[a].MemoryBytes();
    if (col.IsRle()) {
      // One state update per run: COUNT/SUM multiply by the run length,
      // MIN/MAX/COUNT DISTINCT look at each distinct entry once.
      for (size_t p = 0; p < col.PhysicalSize(); ++p) {
        states[a].Update(agg, col, p, col.runs[p]);
      }
      enc_rows += n;
    } else if (col.IsDictCoded()) {
      // Per-code occurrence counts over the non-null rows, then one update
      // per present dictionary entry with the count as the run multiplier.
      size_t dsize = col.dict->PhysicalSize();
      std::vector<uint32_t> cnt(dsize, 0);
      for (size_t r = 0; r < n; ++r) {
        if (!col.IsNull(r)) ++cnt[static_cast<size_t>(col.ints[r])];
      }
      for (size_t code = 0; code < dsize; ++code) {
        if (cnt[code] > 0) states[a].Update(agg, *col.dict, code, cnt[code]);
      }
      enc_rows += n;
    } else {
      for (size_t r = 0; r < n; ++r) states[a].Update(agg, col, r, 1);
    }
    table_.bytes += states[a].MemoryBytes() - before;
  }
  if (enc_rows > 0 && ctx_->stats) {
    ctx_->stats->rows_processed_encoded.fetch_add(enc_rows);
  }
  if (ctx_->budget && table_.bytes > 0 &&
      static_cast<int64_t>(table_.bytes) > ctx_->budget->available()) {
    STRATICA_RETURN_NOT_OK(SpillTable());
  }
  return Status::OK();
}

Status HashGroupByOperator::ConsumeDictKey(RowBlock* blockp) {
  RowBlock& block = *blockp;
  // The per-row walk below needs row-parallel agg inputs; RLE agg columns
  // flatten (dict agg columns stay coded — Update resolves the code).
  for (const auto& agg : spec_.aggs) {
    if (agg.input_column >= 0 && block.columns[agg.input_column].IsRle()) {
      block.columns[agg.input_column] = block.columns[agg.input_column].Decoded();
    }
  }
  const ColumnVector& gc = block.columns[spec_.group_columns[0]];
  size_t n = block.NumRows();
  size_t dsize = gc.dict->PhysicalSize();
  if (gc.dict != code_map_dict_) {
    code_map_dict_ = gc.dict;
    code_map_.assign(dsize + 1, FlatHashTable::kNone);  // last slot: NULL key
  }
  for (size_t r = 0; r < n; ++r) {
    size_t slot = gc.IsNull(r) ? dsize : static_cast<size_t>(gc.ints[r]);
    uint32_t group = code_map_[slot];
    if (group == FlatHashTable::kNone) {
      // First sight of this code: resolve through the hash table (the same
      // dictionary value may already have a group from another block).
      group = FindOrInsertGroup(&table_, block, spec_.group_columns, r,
                                HashGroupKey(block, spec_.group_columns, r));
      code_map_[slot] = group;
    }
    auto& states = table_.states[group];
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      const AggSpec& agg = spec_.aggs[a];
      if (agg.kind == AggKind::kCountStar) {
        states[a].UpdateCountStar(1);
      } else {
        size_t before = states[a].MemoryBytes();
        states[a].Update(agg, block.columns[agg.input_column], r, 1);
        table_.bytes += states[a].MemoryBytes() - before;
      }
    }
  }
  if (ctx_->stats) ctx_->stats->rows_processed_encoded.fetch_add(n);
  if (ctx_->budget && table_.bytes > 0 &&
      static_cast<int64_t>(table_.bytes) > ctx_->budget->available()) {
    STRATICA_RETURN_NOT_OK(SpillTable());
  }
  return Status::OK();
}

Status HashGroupByOperator::ConsumeRleKey(RowBlock* blockp) {
  RowBlock& block = *blockp;
  uint32_t gcol = spec_.group_columns[0];
  // Aggregate inputs other than the key itself are consumed row-at-a-time
  // inside each run; their run structure (if any) need not match the key's,
  // so flatten them.
  for (const auto& agg : spec_.aggs) {
    if (agg.input_column >= 0 && agg.input_column != static_cast<int>(gcol) &&
        block.columns[agg.input_column].IsRle()) {
      block.columns[agg.input_column] = block.columns[agg.input_column].Decoded();
    }
  }
  const ColumnVector& gc = block.columns[gcol];
  size_t n = block.NumRows();
  size_t row = 0;
  for (size_t p = 0; p < gc.PhysicalSize(); ++p) {
    uint32_t run = gc.runs[p];
    uint64_t h = HashCombine(kGroupKeySeed, gc.HashEntry(p));
    uint32_t group = FlatHashTable::kNone;
    for (uint32_t e = table_.index.Probe(h); e != FlatHashTable::kNone;
         e = table_.index.Next(e)) {
      if (GroupKeyEquals(table_.keys, identity_cols_, e, block, spec_.group_columns,
                         p)) {
        group = e;
        break;
      }
    }
    if (group == FlatHashTable::kNone) {
      group = FindOrInsertGroup(&table_, block, spec_.group_columns, p, h);
    }
    auto& states = table_.states[group];
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      const AggSpec& agg = spec_.aggs[a];
      if (agg.kind == AggKind::kCountStar) {
        states[a].UpdateCountStar(run);
      } else if (agg.input_column == static_cast<int>(gcol)) {
        // Aggregating the key itself: constant across the run, one update.
        size_t before = states[a].MemoryBytes();
        states[a].Update(agg, gc, p, run);
        table_.bytes += states[a].MemoryBytes() - before;
      } else {
        const ColumnVector& col = block.columns[agg.input_column];
        size_t before = states[a].MemoryBytes();
        for (size_t rr = row; rr < row + run; ++rr) states[a].Update(agg, col, rr, 1);
        table_.bytes += states[a].MemoryBytes() - before;
      }
    }
    row += run;
  }
  if (ctx_->stats) ctx_->stats->rows_processed_encoded.fetch_add(n);
  if (ctx_->budget && table_.bytes > 0 &&
      static_cast<int64_t>(table_.bytes) > ctx_->budget->available()) {
    STRATICA_RETURN_NOT_OK(SpillTable());
  }
  return Status::OK();
}

Status HashGroupByOperator::SpillTable() {
  if (partitions_.empty()) {
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      partitions_.push_back(
          std::make_unique<SpillWriter>(ctx_->fs, ctx_->NextSpillPath()));
    }
  }
  // Spill record: group key columns + one string column per agg state.
  std::vector<TypeId> rec_types = GroupTypes();
  for (size_t a = 0; a < spec_.aggs.size(); ++a) rec_types.push_back(TypeId::kString);
  std::vector<RowBlock> per_part;
  per_part.reserve(kSpillPartitions);
  for (size_t p = 0; p < kSpillPartitions; ++p) per_part.emplace_back(rec_types);
  std::vector<uint32_t> key_cols(spec_.group_columns.size());
  for (size_t i = 0; i < key_cols.size(); ++i) key_cols[i] = static_cast<uint32_t>(i);
  HashRows(table_.keys, key_cols, kGroupKeySeed, &hash_buf_);
  for (size_t g = 0; g < table_.states.size(); ++g) {
    RowBlock& dst = per_part[(hash_buf_[g] >> 32) % kSpillPartitions];
    for (size_t i = 0; i < key_cols.size(); ++i)
      dst.columns[i].AppendFrom(table_.keys.columns[i], g);
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      dst.columns[key_cols.size() + a].strings.push_back(
          table_.states[g][a].Serialize(spec_.aggs[a]));
    }
  }
  for (size_t p = 0; p < kSpillPartitions; ++p) {
    if (per_part[p].NumRows() == 0) continue;
    STRATICA_RETURN_NOT_OK(partitions_[p]->Append(per_part[p]));
    if (ctx_->stats) ctx_->stats->rows_spilled.fetch_add(per_part[p].NumRows());
  }
  table_ = Table();
  table_.keys = RowBlock(GroupTypes());
  // Group ids restarted with the table: the dict-code cache is stale.
  code_map_dict_.reset();
  code_map_.clear();
  return Status::OK();
}

Status HashGroupByOperator::EmitTable(const Table& table, std::deque<RowBlock>* dst) {
  RowBlock out(OutputTypes());
  for (size_t g = 0; g < table.states.size(); ++g) {
    for (size_t i = 0; i < spec_.group_columns.size(); ++i)
      out.columns[i].AppendFrom(table.keys.columns[i], g);
    size_t col = spec_.group_columns.size();
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      if (spec_.phase == AggPhase::kPartial) {
        table.states[g][a].EmitPartial(spec_.aggs[a], &out.columns, col);
        col += spec_.aggs[a].PartialTypes().size();
      } else {
        out.columns[col].Append(table.states[g][a].Final(spec_.aggs[a]));
        ++col;
      }
    }
    if (out.NumRows() >= ctx_->vector_size) {
      dst->push_back(std::move(out));
      out = RowBlock(OutputTypes());
    }
  }
  if (out.NumRows() > 0) dst->push_back(std::move(out));
  return Status::OK();
}

Status HashGroupByOperator::MergePartition(SpillWriter* part,
                                           const std::vector<TypeId>& rec_types,
                                           const std::vector<uint32_t>& key_cols,
                                           std::deque<RowBlock>* out) {
  SpillReader reader(ctx_->fs, part->path(), rec_types);
  STRATICA_RETURN_NOT_OK(reader.Open());
  Table merged;
  merged.keys = RowBlock(GroupTypes());
  std::vector<uint64_t> hashes;  // per-task: hash_buf_ is not shareable
  for (;;) {
    RowBlock rec;
    STRATICA_RETURN_NOT_OK(reader.Next(&rec));
    if (rec.NumRows() == 0) break;
    HashRows(rec, key_cols, kGroupKeySeed, &hashes);
    for (size_t r = 0; r < rec.NumRows(); ++r) {
      uint32_t group = FindOrInsertGroup(&merged, rec, key_cols, r, hashes[r]);
      for (size_t a = 0; a < spec_.aggs.size(); ++a) {
        STRATICA_ASSIGN_OR_RETURN(
            AggState st,
            AggState::Parse(spec_.aggs[a],
                            rec.columns[key_cols.size() + a].strings[r]));
        merged.states[group][a].Merge(spec_.aggs[a], st);
      }
    }
  }
  return EmitTable(merged, out);
}

Status HashGroupByOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  identity_cols_.resize(spec_.group_columns.size());
  for (size_t i = 0; i < identity_cols_.size(); ++i)
    identity_cols_[i] = static_cast<uint32_t>(i);
  STRATICA_RETURN_NOT_OK(child_->Open(ctx));
  table_ = Table();
  table_.keys = RowBlock(GroupTypes());
  output_.clear();
  emitted_ = false;
  partitions_.clear();

  code_map_dict_.reset();
  code_map_.clear();
  for (;;) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&block));
    if (block.NumRows() == 0) break;
    STRATICA_RETURN_NOT_OK(Consume(&block));
  }

  if (partitions_.empty()) {
    STRATICA_RETURN_NOT_OK(EmitTable(table_, &output_));
  } else {
    // Flush the tail, then merge the grace partitions. Partitions are
    // hash-disjoint — no group spans two — so they re-aggregate as
    // independent tasks on the query's worker pool (DESIGN.md §12); outputs
    // splice back in partition order, keeping emission deterministic.
    STRATICA_RETURN_NOT_OK(SpillTable());
    std::vector<TypeId> rec_types = GroupTypes();
    for (size_t a = 0; a < spec_.aggs.size(); ++a) rec_types.push_back(TypeId::kString);
    std::vector<uint32_t> key_cols(spec_.group_columns.size());
    for (size_t i = 0; i < key_cols.size(); ++i) key_cols[i] = static_cast<uint32_t>(i);
    for (auto& part : partitions_) STRATICA_RETURN_NOT_OK(part->Finish());
    std::vector<std::deque<RowBlock>> part_out(partitions_.size());
    std::vector<Status> part_status(partitions_.size());
    auto merge_one = [&](size_t p) {
      part_status[p] =
          MergePartition(partitions_[p].get(), rec_types, key_cols, &part_out[p]);
    };
    if (ctx_->scheduler != nullptr && ctx_->intra_node_parallelism > 1) {
      Scheduler::TaskSet tasks(ctx_->scheduler);
      for (size_t p = 0; p < partitions_.size(); ++p)
        tasks.Submit([&merge_one, p] { merge_one(p); });
      tasks.Wait();
    } else {
      for (size_t p = 0; p < partitions_.size(); ++p) merge_one(p);
    }
    for (size_t p = 0; p < partitions_.size(); ++p) {
      STRATICA_RETURN_NOT_OK(part_status[p]);
      for (auto& block : part_out[p]) output_.push_back(std::move(block));
      (void)ctx_->fs->Delete(partitions_[p]->path());
    }
  }
  // SQL: aggregation without GROUP BY yields exactly one row even over
  // empty input (COUNT(*) = 0, SUM = NULL, ...).
  if (spec_.group_columns.empty() && output_.empty() &&
      spec_.phase != AggPhase::kPartial) {
    Table empty_group;
    empty_group.keys = RowBlock(GroupTypes());
    empty_group.states.emplace_back(spec_.aggs.size());
    // A single group with no key columns: EmitTable iterates keys rows, so
    // emit manually.
    RowBlock out(OutputTypes());
    size_t col = 0;
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      out.columns[col].Append(empty_group.states[0][a].Final(spec_.aggs[a]));
      ++col;
    }
    output_.push_back(std::move(out));
  }
  table_ = Table();
  return Status::OK();
}

Status HashGroupByOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  if (output_.empty()) return Status::OK();
  *out = std::move(output_.front());
  output_.pop_front();
  return Status::OK();
}

std::string HashGroupByOperator::DebugString() const {
  std::string s = "GroupByHash(keys: " + std::to_string(spec_.group_columns.size());
  s += ", aggs:";
  for (const auto& a : spec_.aggs) s += std::string(" ") + AggKindName(a.kind);
  switch (spec_.phase) {
    case AggPhase::kSingle: break;
    case AggPhase::kPartial: s += ", partial"; break;
    case AggPhase::kCombine: s += ", combine"; break;
  }
  return s + ")";
}

// ---------------------------------------------------------------------------
// PipelinedGroupByOperator

std::vector<TypeId> PipelinedGroupByOperator::OutputTypes() const {
  std::vector<TypeId> group_types;
  auto child_types = child_->OutputTypes();
  for (uint32_t c : spec_.group_columns) group_types.push_back(child_types[c]);
  return GroupByOutputTypes(group_types, spec_.aggs, spec_.phase);
}

Status PipelinedGroupByOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  identity_cols_.resize(spec_.group_columns.size());
  for (size_t i = 0; i < identity_cols_.size(); ++i)
    identity_cols_[i] = static_cast<uint32_t>(i);
  has_current_ = false;
  input_done_ = false;
  runs_consumed_ = 0;
  std::vector<TypeId> group_types;
  auto child_types = child_->OutputTypes();
  for (uint32_t c : spec_.group_columns) group_types.push_back(child_types[c]);
  current_key_ = RowBlock(group_types);
  return child_->Open(ctx);
}

void PipelinedGroupByOperator::EmitCurrent(RowBlock* out) {
  for (size_t i = 0; i < spec_.group_columns.size(); ++i)
    out->columns[i].AppendFrom(current_key_.columns[i], 0);
  size_t col = spec_.group_columns.size();
  for (size_t a = 0; a < spec_.aggs.size(); ++a) {
    if (spec_.phase == AggPhase::kPartial) {
      current_states_[a].EmitPartial(spec_.aggs[a], &out->columns, col);
      col += spec_.aggs[a].PartialTypes().size();
    } else {
      out->columns[col].Append(current_states_[a].Final(spec_.aggs[a]));
      ++col;
    }
  }
}

Status PipelinedGroupByOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  while (!input_done_ && out->NumRows() < ctx_->vector_size) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&block));
    if (block.NumRows() == 0) {
      input_done_ = true;
      break;
    }
    // RLE fast path: single RLE group column whose runs define the group
    // boundaries, aggregates restricted to COUNT(*) or functions of the
    // same column (the classic sorted low-cardinality GROUP BY).
    bool rle_ok = spec_.group_columns.size() == 1 &&
                  block.columns[spec_.group_columns[0]].IsRle();
    if (rle_ok) {
      for (const auto& agg : spec_.aggs) {
        rle_ok &= agg.kind == AggKind::kCountStar ||
                  agg.input_column == static_cast<int>(spec_.group_columns[0]);
      }
    }
    if (rle_ok) {
      const ColumnVector& gc = block.columns[spec_.group_columns[0]];
      for (size_t p = 0; p < gc.PhysicalSize(); ++p) {
        uint32_t run = gc.runs[p];
        ++runs_consumed_;
        bool same = has_current_ &&
                    ColumnVector::CompareEntries(gc, p, current_key_.columns[0], 0) == 0 &&
                    gc.IsNull(p) == current_key_.columns[0].IsNull(0);
        if (!same) {
          if (has_current_) EmitCurrent(out);
          current_key_ = RowBlock({gc.type});
          current_key_.columns[0].AppendFrom(gc, p);
          current_states_.assign(spec_.aggs.size(), AggState());
          has_current_ = true;
        }
        for (size_t a = 0; a < spec_.aggs.size(); ++a) {
          if (spec_.aggs[a].kind == AggKind::kCountStar) {
            current_states_[a].UpdateCountStar(run);
          } else {
            current_states_[a].Update(spec_.aggs[a], gc, p, run);
          }
        }
      }
      continue;
    }
    block.DecodeAll();
    for (size_t r = 0; r < block.NumRows(); ++r) {
      bool same = has_current_ && GroupKeyEquals(current_key_, identity_cols_, 0,
                                                 block, spec_.group_columns, r);
      if (!same) {
        if (has_current_) EmitCurrent(out);
        current_key_.Clear();
        for (size_t i = 0; i < spec_.group_columns.size(); ++i)
          current_key_.columns[i].AppendFrom(block.columns[spec_.group_columns[i]], r);
        current_states_.assign(spec_.aggs.size(), AggState());
        has_current_ = true;
      }
      for (size_t a = 0; a < spec_.aggs.size(); ++a) {
        const AggSpec& agg = spec_.aggs[a];
        if (spec_.phase == AggPhase::kCombine) {
          size_t first = spec_.group_columns.size();
          for (size_t p = 0; p < a; ++p) first += spec_.aggs[p].PartialTypes().size();
          current_states_[a].UpdatePartial(agg, block, first, r);
        } else if (agg.kind == AggKind::kCountStar) {
          current_states_[a].UpdateCountStar(1);
        } else {
          current_states_[a].Update(agg, block.columns[agg.input_column], r, 1);
        }
      }
    }
  }
  if (input_done_ && has_current_) {
    EmitCurrent(out);
    has_current_ = false;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PrepassGroupByOperator

std::vector<TypeId> PrepassGroupByOperator::OutputTypes() const {
  std::vector<TypeId> group_types;
  auto child_types = child_->OutputTypes();
  for (uint32_t c : spec_.group_columns) group_types.push_back(child_types[c]);
  return GroupByOutputTypes(group_types, spec_.aggs, AggPhase::kPartial);
}

Status PrepassGroupByOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  identity_cols_.resize(spec_.group_columns.size());
  for (size_t i = 0; i < identity_cols_.size(); ++i)
    identity_cols_[i] = static_cast<uint32_t>(i);
  std::vector<TypeId> group_types;
  auto child_types = child_->OutputTypes();
  for (uint32_t c : spec_.group_columns) group_types.push_back(child_types[c]);
  keys_ = RowBlock(group_types);
  states_.clear();
  index_.Clear();
  index_.Reserve(capacity_);
  output_.clear();
  input_done_ = false;
  rows_in_ = rows_out_ = flushes_ = 0;
  disabled_ = false;
  return child_->Open(ctx);
}

Status PrepassGroupByOperator::Flush() {
  if (keys_.NumRows() == 0) return Status::OK();
  RowBlock out(OutputTypes());
  for (size_t g = 0; g < keys_.NumRows(); ++g) {
    for (size_t i = 0; i < spec_.group_columns.size(); ++i)
      out.columns[i].AppendFrom(keys_.columns[i], g);
    size_t col = spec_.group_columns.size();
    for (size_t a = 0; a < spec_.aggs.size(); ++a) {
      states_[g][a].EmitPartial(spec_.aggs[a], &out.columns, col);
      col += spec_.aggs[a].PartialTypes().size();
    }
  }
  rows_out_ += out.NumRows();
  output_.push_back(std::move(out));
  keys_.Clear();
  states_.clear();
  index_.Clear();
  ++flushes_;
  // Runtime shutoff check: a prepass that emits nearly as many rows as it
  // consumes is pure overhead.
  if (!disabled_ && flushes_ >= 3 && rows_out_ * 10 > rows_in_ * 9) {
    disabled_ = true;
    if (ctx_->stats) ctx_->stats->prepass_disabled.fetch_add(1);
  }
  return Status::OK();
}

Status PrepassGroupByOperator::GetNext(RowBlock* out) {
  *out = RowBlock(OutputTypes());
  while (output_.empty() && !input_done_) {
    RowBlock block;
    STRATICA_RETURN_NOT_OK(child_->GetNext(&block));
    if (block.NumRows() == 0) {
      input_done_ = true;
      STRATICA_RETURN_NOT_OK(Flush());
      break;
    }
    block.DecodeAll();
    rows_in_ += block.NumRows();
    if (disabled_) {
      // Passthrough: convert rows 1:1 into partial form.
      RowBlock pass(OutputTypes());
      for (size_t r = 0; r < block.NumRows(); ++r) {
        for (size_t i = 0; i < spec_.group_columns.size(); ++i)
          pass.columns[i].AppendFrom(block.columns[spec_.group_columns[i]], r);
        size_t col = spec_.group_columns.size();
        for (size_t a = 0; a < spec_.aggs.size(); ++a) {
          AggState st;
          if (spec_.aggs[a].kind == AggKind::kCountStar) {
            st.UpdateCountStar(1);
          } else {
            st.Update(spec_.aggs[a], block.columns[spec_.aggs[a].input_column], r, 1);
          }
          st.EmitPartial(spec_.aggs[a], &pass.columns, col);
          col += spec_.aggs[a].PartialTypes().size();
        }
      }
      rows_out_ += pass.NumRows();
      output_.push_back(std::move(pass));
      break;
    }
    // Hash the whole block once; per-row work is probe + verify only.
    HashRows(block, spec_.group_columns, kGroupKeySeed, &hash_buf_);
    for (size_t r = 0; r < block.NumRows(); ++r) {
      uint64_t h = hash_buf_[r];
      uint32_t group = FlatHashTable::kNone;
      for (uint32_t e = index_.Probe(h); e != FlatHashTable::kNone; e = index_.Next(e)) {
        if (GroupKeyEquals(keys_, identity_cols_, e, block, spec_.group_columns, r)) {
          group = e;
          break;
        }
      }
      if (group == FlatHashTable::kNone) {
        if (keys_.NumRows() >= capacity_) {
          // Table full: emit current contents and start afresh (§6.1).
          STRATICA_RETURN_NOT_OK(Flush());
        }
        group = index_.Insert(h);
        for (size_t i = 0; i < spec_.group_columns.size(); ++i)
          keys_.columns[i].AppendFrom(block.columns[spec_.group_columns[i]], r);
        states_.emplace_back(spec_.aggs.size());
      }
      for (size_t a = 0; a < spec_.aggs.size(); ++a) {
        if (spec_.aggs[a].kind == AggKind::kCountStar) {
          states_[group][a].UpdateCountStar(1);
        } else {
          states_[group][a].Update(spec_.aggs[a],
                                   block.columns[spec_.aggs[a].input_column], r, 1);
        }
      }
    }
  }
  if (!output_.empty()) {
    *out = std::move(output_.front());
    output_.pop_front();
  }
  return Status::OK();
}

std::string PrepassGroupByOperator::DebugString() const {
  return "GroupByPrepass(capacity: " + std::to_string(capacity_) +
         (disabled_ ? ", disabled at runtime)" : ")");
}

}  // namespace stratica
