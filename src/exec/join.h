// Join operators (Section 6.1 #3): hash join and merge join, both able to
// externalize; all of INNER, LEFT/RIGHT/FULL OUTER, SEMI and ANTI.
//
// The hash join builds from its inner (right) child. When the build side
// exceeds the memory budget the engine switches algorithms at runtime —
// "if Vertica determines at runtime the hash table for a hash join will not
// fit in memory, we will perform a sort-merge join instead" — by spooling
// the build side to disk and delegating to a MergeJoin over sorted inputs.
//
// After a successful in-memory build, the join publishes a SIP filter
// (Sideways Information Passing) that probe-side scans use to drop rows
// that cannot join, as early as possible in the plan.
#ifndef STRATICA_EXEC_JOIN_H_
#define STRATICA_EXEC_JOIN_H_

#include "exec/hash_table.h"
#include "exec/operator.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {

enum class JoinType : uint8_t { kInner, kLeft, kRight, kFull, kSemi, kAnti };

const char* JoinTypeName(JoinType t);

struct JoinSpec {
  JoinType type = JoinType::kInner;
  std::vector<uint32_t> probe_keys;  ///< outer (left) child key columns
  std::vector<uint32_t> build_keys;  ///< inner (right) child key columns
  /// SIP filter to publish once the hash table is built (may be null; the
  /// optimizer only installs one when the join type allows filtering).
  std::shared_ptr<SipFilter> sip;
};

class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, JoinSpec spec)
      : probe_(std::move(probe)), build_(std::move(build)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override;
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override;
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override;
  size_t MemoryEstimateBytes() const override {
    // Build-side rows + hash table up to the spill-to-merge threshold.
    return 8 << 20;
  }

  bool switched_to_merge() const { return fallback_ != nullptr; }

 private:
  Status BuildTable();
  Status EmitUnmatchedBuild(RowBlock* out);

  OperatorPtr probe_, build_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;

  RowBlock build_rows_;
  /// Entry id == build_rows_ row index; NULL-key rows are unlinked entries.
  FlatHashTable index_;
  std::vector<uint8_t> build_matched_;
  size_t build_bytes_ = 0;
  std::vector<uint64_t> hash_buf_;  // batched key hashes (build + probe)
  std::vector<uint32_t> head_buf_;  // batched probe chain heads
  std::vector<uint8_t> null_key_buf_;

  RowBlock probe_block_;
  size_t probe_cursor_ = 0;
  bool probe_done_ = false;
  size_t unmatched_cursor_ = 0;
  bool emitting_unmatched_ = false;

  OperatorPtr fallback_;  ///< merge-join pipeline after a runtime switch
};

/// \brief Merge join over inputs sorted ascending on the join keys.
class MergeJoinOperator : public Operator {
 public:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, JoinSpec spec)
      : left_(std::move(left)), right_(std::move(right)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override;
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override;
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Buffered cursor over a child's stream.
  struct Cursor {
    Operator* op = nullptr;
    RowBlock block;
    size_t pos = 0;
    bool done = false;

    Status Refill();
    bool Valid() const { return !done; }
  };

  /// Collect all consecutive rows equal to the current row's keys.
  Status CollectGroup(Cursor* cur, const std::vector<uint32_t>& keys, RowBlock* group);

  OperatorPtr left_, right_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;
  Cursor lcur_, rcur_;
  std::vector<TypeId> left_types_, right_types_;
  RowBlock pending_;  ///< cross-product overflow buffer
  size_t pending_cursor_ = 0;
};

/// \brief Operator reading back a spill file (used by the hash->merge
/// runtime switch).
class SpillSourceOperator : public Operator {
 public:
  SpillSourceOperator(std::string path, std::vector<TypeId> types,
                      std::vector<std::string> names)
      : path_(std::move(path)), types_(std::move(types)), names_(std::move(names)) {}

  Status Open(ExecContext* ctx) override {
    reader_ = std::make_unique<SpillReader>(ctx->fs, path_, types_);
    return reader_->Open();
  }
  Status GetNext(RowBlock* out) override { return reader_->Next(out); }
  Status Close() override { return Status::OK(); }
  std::vector<TypeId> OutputTypes() const override { return types_; }
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override { return "SpillSource(" + path_ + ")"; }

 private:
  std::string path_;
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  std::unique_ptr<SpillReader> reader_;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_JOIN_H_
