// Join operators (Section 6.1 #3): hash join and merge join, both able to
// externalize; all of INNER, LEFT/RIGHT/FULL OUTER, SEMI and ANTI.
//
// The hash join builds from its inner (right) child. When the build side
// exceeds the memory budget the engine switches algorithms at runtime —
// "if Vertica determines at runtime the hash table for a hash join will not
// fit in memory, we will perform a sort-merge join instead" — by spooling
// the build side to disk and delegating to a MergeJoin over sorted inputs.
//
// After a successful in-memory build, the join publishes a SIP filter
// (Sideways Information Passing) that probe-side scans use to drop rows
// that cannot join, as early as possible in the plan.
#ifndef STRATICA_EXEC_JOIN_H_
#define STRATICA_EXEC_JOIN_H_

#include <algorithm>
#include <mutex>

#include "exec/hash_table.h"
#include "exec/operator.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {

enum class JoinType : uint8_t { kInner, kLeft, kRight, kFull, kSemi, kAnti };

const char* JoinTypeName(JoinType t);

struct JoinSpec {
  JoinType type = JoinType::kInner;
  std::vector<uint32_t> probe_keys;  ///< outer (left) child key columns
  std::vector<uint32_t> build_keys;  ///< inner (right) child key columns
  /// SIP filter to publish once the hash table is built (may be null; the
  /// optimizer only installs one when the join type allows filtering).
  std::shared_ptr<SipFilter> sip;
};

/// \brief Hash-join build side shared by sibling morsel fragments
/// (DESIGN.md §12): the inner table of one scan unit is read and hashed
/// once, not once per fragment.
///
/// The first fragment to Open executes the build under the lock: it pulls
/// the owned build child to completion, then inserts the rows into
/// `fanout`-sharded FlatHashTables with one work-stealing task per shard on
/// the query's Scheduler (shard = high hash bits, so a probe derives its
/// shard from the key hash alone and only ever reads one shard). Later
/// fragments block until the build resolves and probe the shards read-only.
/// NULL-key rows are dropped at build time — shared builds never serve
/// RIGHT/FULL joins, the only types that emit unmatched build rows (they
/// would also race the matched-bit array across fragments; the planner
/// keeps such plans serial). If the accumulated build side exceeds the
/// memory budget, the rows are spooled to a single spill file and every
/// fragment independently switches to a sort-merge join over it (each
/// fragment's probe subset against the full build unions to the exact
/// per-unit result).
class SharedJoinBuild {
 public:
  /// `spec` carries the build keys and, for the pipeline that owns SIP
  /// publication, the SIP filter to fill. `fanout` = number of fragments
  /// that will share this build (also the shard-parallelism target).
  SharedJoinBuild(OperatorPtr build, JoinSpec spec, size_t fanout);

  /// Run or await the build; every fragment calls this from Open and shares
  /// the first caller's status.
  Status Ensure(ExecContext* ctx);
  /// Last fragment to close releases the build's budget reservation.
  void FragmentClosed(ExecContext* ctx);

  /// Valid after Ensure: the build exceeded its budget and lives in
  /// spill_path() instead of rows()/shards.
  bool spilled() const { return spilled_; }
  const std::string& spill_path() const { return spill_path_; }
  const RowBlock& rows() const { return rows_; }
  size_t fanout() const { return fanout_; }
  Operator* child() const { return build_.get(); }
  std::vector<TypeId> OutputTypes() const { return build_->OutputTypes(); }
  std::vector<std::string> OutputNames() const { return build_->OutputNames(); }

  uint32_t ShardOf(uint64_t hash) const {
    return static_cast<uint32_t>((hash >> 32) & shard_mask_);
  }
  /// First local entry in `shard` whose hash matches, or kNone.
  uint32_t ProbeHead(uint32_t shard, uint64_t hash) const {
    return shards_[shard].table.Probe(hash);
  }
  uint32_t NextInShard(uint32_t shard, uint32_t local) const {
    return shards_[shard].table.Next(local);
  }
  /// Map a shard-local entry id to its rows() index.
  uint32_t GlobalRow(uint32_t shard, uint32_t local) const {
    return shards_[shard].rows[local];
  }

 private:
  struct Shard {
    FlatHashTable table;         ///< local dense entry ids
    std::vector<uint32_t> rows;  ///< local entry id -> rows_ row index
  };

  Status Build(ExecContext* ctx);  ///< caller holds mu_

  OperatorPtr build_;
  JoinSpec spec_;
  const size_t fanout_;
  std::mutex mu_;
  bool done_ = false;  ///< guarded by mu_, as is everything below until set
  Status status_;
  bool spilled_ = false;
  std::string spill_path_;
  RowBlock rows_;
  std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
  size_t bytes_ = 0;           ///< budget reservation held until last close
  size_t open_fragments_;      ///< fragments that have not closed yet
};

/// \brief Hash join (Section 6.1 #3): consumes the inner child into a flat
/// hash table, then streams the probe side with batched hash/probe passes.
/// Externalizes by switching to a sort-merge join at runtime when the build
/// would not fit, and publishes a SIP filter after an in-memory build. In
/// morsel-fragment plans the build is a SharedJoinBuild owned jointly with
/// sibling fragments; only the probe side is per-fragment.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, JoinSpec spec)
      : probe_(std::move(probe)), build_(std::move(build)), spec_(std::move(spec)) {}

  /// Morsel-fragment variant (DESIGN.md §12): probe against a build shared
  /// with sibling fragments. `show_build` lets exactly one fragment expose
  /// the build subtree via Children() so EXPLAIN and plan-memory estimation
  /// count it once.
  HashJoinOperator(OperatorPtr probe, std::shared_ptr<SharedJoinBuild> shared,
                   JoinSpec spec, bool show_build = false)
      : probe_(std::move(probe)),
        spec_(std::move(spec)),
        shared_(std::move(shared)),
        show_build_(show_build) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override;
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override;
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override;
  size_t MemoryEstimateBytes() const override {
    // Build-side rows + hash table up to the spill-to-merge threshold. A
    // shared build is one table split across `fanout` sibling operators, so
    // each fragment accounts a slice and the unit totals what one serial
    // join would have reserved.
    size_t e = 8 << 20;
    return shared_ ? std::max<size_t>(e / shared_->fanout(), 64 << 10) : e;
  }

  bool switched_to_merge() const { return fallback_ != nullptr; }

 private:
  Status BuildTable();
  Status EmitUnmatchedBuild(RowBlock* out);

  OperatorPtr probe_, build_;  ///< build_ null when shared_ is set
  JoinSpec spec_;
  std::shared_ptr<SharedJoinBuild> shared_;
  bool show_build_ = false;
  ExecContext* ctx_ = nullptr;

  RowBlock build_rows_;
  /// Entry id == build_rows_ row index; NULL-key rows are unlinked entries.
  FlatHashTable index_;
  std::vector<uint8_t> build_matched_;
  size_t build_bytes_ = 0;
  std::vector<uint64_t> hash_buf_;  // batched key hashes (build + probe)
  std::vector<uint32_t> head_buf_;  // batched probe chain heads
  std::vector<uint8_t> null_key_buf_;

  RowBlock probe_block_;
  size_t probe_cursor_ = 0;
  bool probe_done_ = false;
  size_t unmatched_cursor_ = 0;
  bool emitting_unmatched_ = false;

  OperatorPtr fallback_;  ///< merge-join pipeline after a runtime switch
};

/// \brief Merge join over inputs sorted ascending on the join keys.
class MergeJoinOperator : public Operator {
 public:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, JoinSpec spec)
      : left_(std::move(left)), right_(std::move(right)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override;
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override;
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Buffered cursor over a child's stream.
  struct Cursor {
    Operator* op = nullptr;
    RowBlock block;
    size_t pos = 0;
    bool done = false;

    Status Refill();
    bool Valid() const { return !done; }
  };

  /// Collect all consecutive rows equal to the current row's keys.
  Status CollectGroup(Cursor* cur, const std::vector<uint32_t>& keys, RowBlock* group);

  OperatorPtr left_, right_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;
  Cursor lcur_, rcur_;
  std::vector<TypeId> left_types_, right_types_;
  RowBlock pending_;  ///< cross-product overflow buffer
  size_t pending_cursor_ = 0;
};

/// \brief Operator reading back a spill file (used by the hash->merge
/// runtime switch).
class SpillSourceOperator : public Operator {
 public:
  SpillSourceOperator(std::string path, std::vector<TypeId> types,
                      std::vector<std::string> names)
      : path_(std::move(path)), types_(std::move(types)), names_(std::move(names)) {}

  Status Open(ExecContext* ctx) override {
    reader_ = std::make_unique<SpillReader>(ctx->fs, path_, types_);
    return reader_->Open();
  }
  Status GetNext(RowBlock* out) override { return reader_->Next(out); }
  Status Close() override { return Status::OK(); }
  std::vector<TypeId> OutputTypes() const override { return types_; }
  std::vector<std::string> OutputNames() const override { return names_; }
  std::string DebugString() const override { return "SpillSource(" + path_ + ")"; }

 private:
  std::string path_;
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  std::unique_ptr<SpillReader> reader_;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_JOIN_H_
