#include "exec/agg.h"

#include "common/bitutil.h"
#include "storage/encoding.h"

namespace stratica {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCountStar: return "COUNT(*)";
    case AggKind::kCount: return "COUNT";
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kCountDistinct: return "COUNT(DISTINCT)";
  }
  return "?";
}

TypeId AggSpec::OutputType() const {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return TypeId::kInt64;
    case AggKind::kSum:
      return input_type == TypeId::kFloat64 ? TypeId::kFloat64 : TypeId::kInt64;
    case AggKind::kAvg:
      return TypeId::kFloat64;
    case AggKind::kMin:
    case AggKind::kMax:
      return input_type;
  }
  return TypeId::kInt64;
}

std::vector<TypeId> AggSpec::PartialTypes() const {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return {TypeId::kInt64};
    case AggKind::kSum:
      return {OutputType()};
    case AggKind::kAvg:
      return {TypeId::kFloat64, TypeId::kInt64};  // (sum, count)
    case AggKind::kMin:
    case AggKind::kMax:
      return {input_type};
    case AggKind::kCountDistinct:
      return {TypeId::kInt64};  // not partialable; single-phase only
  }
  return {};
}

void AggState::Update(const AggSpec& spec, const ColumnVector& col, size_t phys,
                      uint32_t run) {
  if (spec.kind == AggKind::kCountStar) {
    count += run;
    return;
  }
  if (col.IsNull(phys)) return;  // SQL: aggregates ignore NULL inputs
  switch (spec.kind) {
    case AggKind::kCount:
      count += run;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      // Dict-coded input: resolve the value through the dictionary; the
      // run multiplier is what makes this the RLE building block too.
      const ColumnVector& v = col.IsDictCoded() ? *col.dict : col;
      size_t p = col.IsDictCoded() ? static_cast<size_t>(col.ints[phys]) : phys;
      if (StorageClassOf(col.type) == StorageClass::kFloat64) {
        dsum += v.doubles[p] * run;
      } else {
        isum += v.ints[p] * static_cast<int64_t>(run);
        dsum += static_cast<double>(v.ints[p]) * run;
      }
      count += run;
      break;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      Value v = col.GetValue(phys);
      if (!has_value || (spec.kind == AggKind::kMin ? v.Compare(extreme) < 0
                                                    : v.Compare(extreme) > 0)) {
        extreme = v;
        has_value = true;
      }
      break;
    }
    case AggKind::kCountDistinct: {
      if (!distinct) distinct = std::make_unique<std::set<std::string>>();
      std::string key;
      EncodeValue(&key, col.GetValue(phys));
      distinct->insert(std::move(key));
      break;
    }
    case AggKind::kCountStar:
      break;
  }
}

void AggState::Merge(const AggSpec& spec, const AggState& other) {
  count += other.count;
  isum += other.isum;
  dsum += other.dsum;
  if (other.has_value) {
    if (!has_value || (spec.kind == AggKind::kMin ? other.extreme.Compare(extreme) < 0
                                                  : other.extreme.Compare(extreme) > 0)) {
      extreme = other.extreme;
      has_value = true;
    }
  }
  if (other.distinct) {
    if (!distinct) distinct = std::make_unique<std::set<std::string>>();
    distinct->insert(other.distinct->begin(), other.distinct->end());
  }
}

void AggState::UpdatePartial(const AggSpec& spec, const RowBlock& block,
                             size_t first_col, size_t row) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      count += block.columns[first_col].ints[row];
      break;
    case AggKind::kSum:
      if (StorageClassOf(block.columns[first_col].type) == StorageClass::kFloat64) {
        dsum += block.columns[first_col].doubles[row];
      } else {
        isum += block.columns[first_col].ints[row];
      }
      if (!block.columns[first_col].IsNull(row)) count += 1;
      break;
    case AggKind::kAvg:
      dsum += block.columns[first_col].doubles[row];
      count += block.columns[first_col + 1].ints[row];
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      if (block.columns[first_col].IsNull(row)) break;
      Value v = block.columns[first_col].GetValue(row);
      if (!has_value || (spec.kind == AggKind::kMin ? v.Compare(extreme) < 0
                                                    : v.Compare(extreme) > 0)) {
        extreme = v;
        has_value = true;
      }
      break;
    }
    case AggKind::kCountDistinct:
      count += block.columns[first_col].ints[row];
      break;
  }
}

Value AggState::Final(const AggSpec& spec) const {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(count);
    case AggKind::kSum:
      if (count == 0) return Value::Null(spec.OutputType());
      return spec.OutputType() == TypeId::kFloat64 ? Value::Float64(dsum)
                                                   : Value::Int64(isum);
    case AggKind::kAvg:
      if (count == 0) return Value::Null(TypeId::kFloat64);
      return Value::Float64(dsum / static_cast<double>(count));
    case AggKind::kMin:
    case AggKind::kMax:
      return has_value ? extreme : Value::Null(spec.input_type);
    case AggKind::kCountDistinct:
      return Value::Int64(distinct ? static_cast<int64_t>(distinct->size()) : 0);
  }
  return Value::Null(TypeId::kInt64);
}

void AggState::EmitPartial(const AggSpec& spec, std::vector<ColumnVector>* cols,
                           size_t first_col) const {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      (*cols)[first_col].Append(Value::Int64(count));
      break;
    case AggKind::kSum:
      if (count == 0) {
        (*cols)[first_col].Append(Value::Null(spec.OutputType()));
      } else if (spec.OutputType() == TypeId::kFloat64) {
        (*cols)[first_col].Append(Value::Float64(dsum));
      } else {
        (*cols)[first_col].Append(Value::Int64(isum));
      }
      break;
    case AggKind::kAvg:
      (*cols)[first_col].Append(Value::Float64(dsum));
      (*cols)[first_col + 1].Append(Value::Int64(count));
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      (*cols)[first_col].Append(has_value ? extreme : Value::Null(spec.input_type));
      break;
    case AggKind::kCountDistinct:
      (*cols)[first_col].Append(
          Value::Int64(distinct ? static_cast<int64_t>(distinct->size()) : 0));
      break;
  }
}

std::string AggState::Serialize(const AggSpec& spec) const {
  std::string out;
  PutVarint64(&out, static_cast<uint64_t>(count));
  PutVarint64(&out, ZigZagEncode(isum));
  PutFixed(&out, dsum);
  out.push_back(has_value ? 1 : 0);
  if (has_value) EncodeValue(&out, extreme);
  uint64_t nd = distinct ? distinct->size() : 0;
  PutVarint64(&out, nd);
  if (distinct) {
    for (const auto& s : *distinct) {
      PutVarint64(&out, s.size());
      out.append(s);
    }
  }
  (void)spec;
  return out;
}

Result<AggState> AggState::Parse(const AggSpec& spec, const std::string& data) {
  AggState st;
  size_t offset = 0;
  uint64_t v;
  if (!GetVarint64(data, &offset, &v)) return Status::Corruption("agg: count");
  st.count = static_cast<int64_t>(v);
  if (!GetVarint64(data, &offset, &v)) return Status::Corruption("agg: isum");
  st.isum = ZigZagDecode(v);
  if (!GetFixed(data, &offset, &st.dsum)) return Status::Corruption("agg: dsum");
  if (offset >= data.size()) return Status::Corruption("agg: flags");
  st.has_value = data[offset++] != 0;
  if (st.has_value) {
    STRATICA_RETURN_NOT_OK(DecodeValue(data, &offset, spec.input_type, &st.extreme));
  }
  uint64_t nd;
  if (!GetVarint64(data, &offset, &nd)) return Status::Corruption("agg: nd");
  if (nd > 0) {
    st.distinct = std::make_unique<std::set<std::string>>();
    for (uint64_t i = 0; i < nd; ++i) {
      uint64_t len;
      if (!GetVarint64(data, &offset, &len) || offset + len > data.size())
        return Status::Corruption("agg: distinct entry");
      st.distinct->insert(data.substr(offset, len));
      offset += len;
    }
  }
  return st;
}

std::vector<TypeId> GroupByOutputTypes(const std::vector<TypeId>& group_types,
                                       const std::vector<AggSpec>& aggs,
                                       AggPhase phase) {
  std::vector<TypeId> out = group_types;
  for (const auto& agg : aggs) {
    if (phase == AggPhase::kPartial) {
      for (TypeId t : agg.PartialTypes()) out.push_back(t);
    } else {
      out.push_back(agg.OutputType());
    }
  }
  return out;
}

}  // namespace stratica
