#include "exec/scan.h"

#include <algorithm>
#include <atomic>

#include "common/hash.h"
#include "storage/sort_util.h"

namespace stratica {

namespace {

std::atomic<bool> g_encoded_exec_enabled{true};

}  // namespace

void SetEncodedExecutionEnabled(bool on) {
  g_encoded_exec_enabled.store(on, std::memory_order_relaxed);
}
bool EncodedExecutionEnabled() {
  return g_encoded_exec_enabled.load(std::memory_order_relaxed);
}

namespace {

/// Can a block/container with [min, max] contain rows satisfying
/// `col <op> value`? NULL stats (all-null or empty) conservatively pass.
bool RangeMayMatch(const Value& min, const Value& max, CompareOp op, const Value& v) {
  if (min.is_null() || max.is_null()) return true;
  switch (op) {
    case CompareOp::kEq: return !(v.Compare(min) < 0 || v.Compare(max) > 0);
    case CompareOp::kNe: return true;
    case CompareOp::kLt: return min.Compare(v) < 0;
    case CompareOp::kLe: return min.Compare(v) <= 0;
    case CompareOp::kGt: return max.Compare(v) > 0;
    case CompareOp::kGe: return max.Compare(v) >= 0;
  }
  return true;
}

/// Rebind a cloned predicate's column references from scan-output space into
/// filter-view space (every referenced column is in the view by
/// construction).
void RemapColumnRefs(Expr* e, const std::vector<int>& pos) {
  if (e->kind == ExprKind::kColumnRef && e->column_index >= 0 &&
      e->column_index < static_cast<int>(pos.size())) {
    e->column_index = pos[e->column_index];
  }
  for (auto& c : e->children) RemapColumnRefs(c.get(), pos);
}

}  // namespace

/// One stream of filtered blocks: a container region or the WOS.
struct ScanOperator::Source {
  // Container source state.
  RosContainerPtr container;
  std::vector<ColumnReader> readers;           // parallel to spec.projection_columns
  std::unique_ptr<ColumnReader> epoch_reader;  // only when epoch filter needed
  std::vector<uint64_t> deleted;               // sorted deleted positions
  size_t next_block = 0;
  size_t block_hi = 0;

  // WOS source: fully materialized (and possibly sorted) rows.
  bool is_wos = false;
  RowBlock wos_rows;
  size_t wos_cursor = 0;

  // Current filtered block (merge mode keeps a cursor into it).
  RowBlock current;
  size_t cursor = 0;
  bool exhausted = false;
};

/// Feeds one Source's filtered blocks into the loser-tree merge. Blocks
/// are handed over whole; the merger owns cursor state and key building.
struct ScanOperator::SourceMergeInput : public MergeInput {
  SourceMergeInput(ScanOperator* scan, Source* src) : scan(scan), src(src) {}
  Status NextBlock(RowBlock* out) override {
    STRATICA_RETURN_NOT_OK(scan->Advance(src));
    if (src->exhausted) {
      *out = RowBlock();
      return Status::OK();
    }
    *out = std::move(src->current);
    src->current = RowBlock();
    return Status::OK();
  }
  ScanOperator* scan;
  Source* src;
};

ScanOperator::ScanOperator(ScanSpec spec) : spec_(std::move(spec)) {}
ScanOperator::~ScanOperator() = default;

std::vector<std::vector<ScanRegion>> PlanScanRegions(const StorageSnapshot& snap,
                                                     size_t k) {
  if (k == 0) k = 1;
  // Split every container into ~k block ranges, then deal ranges round-robin
  // so each worker touches a balanced share of every container — one large
  // container still spreads across all k workers (Section 3.5: runtime
  // division into logical regions, no physical sub-partitioning).
  std::vector<ScanRegion> all;
  for (const auto& c : snap.ros) {
    size_t num_blocks = c->columns.empty() ? 0 : c->columns[0].meta.blocks.size();
    if (num_blocks <= 1 || k == 1) {
      all.push_back({c, 0, SIZE_MAX});
      continue;
    }
    size_t pieces = std::min(k, num_blocks);
    size_t per = num_blocks / pieces, extra = num_blocks % pieces;
    size_t lo = 0;
    for (size_t p = 0; p < pieces; ++p) {
      size_t take = per + (p < extra ? 1 : 0);
      all.push_back({c, lo, lo + take});
      lo += take;
    }
  }
  std::vector<std::vector<ScanRegion>> out(k);
  for (size_t i = 0; i < all.size(); ++i) out[i % k].push_back(all[i]);
  return out;
}

const StorageSnapshot& MorselDispenser::EnsureSnapshot(ProjectionStorage* storage,
                                                       Epoch epoch, uint64_t txn_id) {
  std::lock_guard lock(mu_);
  if (!snapped_) {
    snap_ = storage->GetSnapshot(epoch, txn_id);
    auto lists = PlanScanRegions(snap_, fanout_ * kMorselsPerWorker);
    // Flatten the per-worker lists into one claim queue; the round-robin
    // deal already interleaved containers, so consecutive claims spread
    // across containers instead of serializing on one.
    for (auto& list : lists) {
      for (auto& r : list) morsels_.push_back(std::move(r));
    }
    snapped_ = true;
  }
  return snap_;
}

bool MorselDispenser::Next(ScanRegion* out) {
  size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= morsels_.size()) return false;
  *out = morsels_[i];
  return true;
}

Status ScanOperator::NoteRosFailure(const Source* src, Status st) {
  if (st.ok()) return st;
  // Corruption is terminal by definition; an IoError reaching the scan has
  // already exhausted the reader's retry budget, so it counts as persistent
  // too — either way this copy is unhealthy.
  bool persistent = st.code() == StatusCode::kCorruption ||
                    st.code() == StatusCode::kIoError;
  if (persistent && spec_.storage != nullptr && src != nullptr && src->container) {
    spec_.storage->Quarantine(src->container->id, st.message());
  }
  return st;
}

Status ScanOperator::OpenContainerSource(const ScanRegion& region) {
  const RosContainer& c = *region.container;
  // Container-level pruning from column min/max (includes partition
  // pruning: partition-separated containers have tight bounds).
  for (const auto& bound : spec_.prune_bounds) {
    int proj_col = spec_.projection_columns[bound.output_column];
    if (proj_col < 0 || proj_col >= static_cast<int>(c.columns.size())) continue;
    const ColumnFileMeta& meta = c.columns[proj_col].meta;
    if (meta.num_rows > 0 && !RangeMayMatch(meta.min, meta.max, bound.op, bound.value)) {
      if (ctx_->stats) ctx_->stats->containers_pruned.fetch_add(1);
      return Status::OK();  // whole container pruned
    }
  }
  auto src = std::make_unique<Source>();
  src->container = region.container;
  for (int proj_col : spec_.projection_columns) {
    // Every reader open is a (possibly slow) file op; bail between them once
    // the exchange stopped caring about this pipeline.
    if (Abandoned()) return Status::OK();
    auto reader = OpenRosColumn(ctx_->fs, c, proj_col);
    if (!reader.ok()) return NoteRosFailure(src.get(), reader.status());
    src->readers.push_back(std::move(reader).value());
  }
  if (Abandoned()) return Status::OK();
  if (!c.epoch_data_path.empty() && c.max_epoch > ctx_->epoch) {
    auto er = ColumnReader::Open(ctx_->fs, c.epoch_data_path, c.epoch_index_path);
    if (!er.ok()) return NoteRosFailure(src.get(), er.status());
    src->epoch_reader = std::make_unique<ColumnReader>(std::move(er).value());
  }
  src->deleted = snap_.deletes.DeletedPositions(c.id);
  src->next_block = region.block_lo;
  src->block_hi = std::min(region.block_hi, src->readers.empty()
                                                ? size_t{0}
                                                : src->readers[0].num_blocks());
  sources_.push_back(std::move(src));
  return Status::OK();
}

Status ScanOperator::OpenWosSource() {
  if (snap_.wos.empty()) return Status::OK();
  auto src = std::make_unique<Source>();
  src->is_wos = true;
  RowBlock rows(spec_.output_types);
  // Gather visible WOS rows (restricted to the scanned columns), applying
  // delete vectors in one merged pass over the sorted position list: copy
  // the contiguous keep-segments between deleted positions wholesale.
  auto wos_deleted = snap_.deletes.DeletedPositions(kWosTargetId);
  for (const auto& chunk : snap_.wos) {
    size_t nrows = chunk->NumRows();
    uint64_t start = chunk->start_pos;
    auto append_segment = [&](size_t from, size_t to) {
      if (to <= from) return;
      for (size_t c = 0; c < spec_.projection_columns.size(); ++c) {
        rows.columns[c].AppendRange(chunk->rows.columns[spec_.projection_columns[c]],
                                    from, to - from);
      }
    };
    size_t keep_from = 0;
    for (auto it = std::lower_bound(wos_deleted.begin(), wos_deleted.end(), start);
         it != wos_deleted.end() && *it < start + nrows; ++it) {
      size_t local = static_cast<size_t>(*it - start);
      append_segment(keep_from, local);
      keep_from = local + 1;
    }
    append_segment(keep_from, nrows);
  }
  if (spec_.sorted_output && !spec_.sort_key_outputs.empty()) {
    auto perm = ComputeSortPermutation(rows, spec_.sort_key_outputs);
    rows = ApplyPermutation(rows, perm);
  }
  src->wos_rows = std::move(rows);
  sources_.push_back(std::move(src));
  return Status::OK();
}

Status ScanOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  morsel_mode_ = spec_.morsels != nullptr;
  if (morsel_mode_) {
    if (spec_.sorted_output) {
      return Status::InvalidArgument("morsel scan cannot produce sorted output");
    }
    // All sibling fragments share the dispenser's snapshot, so every morsel
    // is scanned exactly once against one consistent epoch/container set.
    snap_ = spec_.morsels->EnsureSnapshot(spec_.storage, ctx->epoch, ctx->txn_id);
  } else {
    snap_ = spec_.storage->GetSnapshot(ctx->epoch, ctx->txn_id);
  }
  // The planner checked liveness at plan time; re-check after snapshotting.
  // MarkNodeDown clears the flag before crashing volatile state, so a true
  // read here proves the snapshot predates any crash. A false read means the
  // WOS may have been wiped under us — fail over to a buddy instead of
  // silently returning a partial snapshot.
  if (!spec_.storage->HostUp()) {
    return Status::TransientIoError("host node of ", spec_.storage->config().projection,
                                    " went down after planning; replan");
  }
  merger_.reset();
  sources_.clear();
  current_source_ = 0;
  if (morsel_mode_) {
    // ROS sources open lazily as morsels are claimed (GetNext); only the
    // WOS — one indivisible morsel — is materialized here, by the single
    // fragment that wins the claim.
    if (spec_.include_wos && !Abandoned() && spec_.morsels->ClaimWos()) {
      STRATICA_RETURN_NOT_OK(OpenWosSource());
    }
  } else if (spec_.use_regions) {
    for (const auto& region : spec_.regions) {
      if (Abandoned()) break;
      STRATICA_RETURN_NOT_OK(OpenContainerSource(region));
    }
    if (spec_.include_wos && !Abandoned()) STRATICA_RETURN_NOT_OK(OpenWosSource());
  } else {
    for (const auto& c : snap_.ros) {
      if (Abandoned()) break;
      STRATICA_RETURN_NOT_OK(OpenContainerSource({c, 0, SIZE_MAX}));
    }
    if (!Abandoned()) STRATICA_RETURN_NOT_OK(OpenWosSource());
  }
  // An abandoned pipeline's output is dropped by the exchange anyway; empty
  // sources make every later GetNext an immediate EOF.
  if (Abandoned()) sources_.clear();
  merge_mode_ = spec_.sorted_output && sources_.size() > 1;

  // Build the filter view: the output columns the selection vector depends
  // on (predicate + SIP probe columns; prune bounds only touch metadata).
  size_t ncols = spec_.output_types.size();
  std::vector<char> needed(ncols, 0);
  if (spec_.predicate) {
    std::vector<int> cols;
    CollectColumns(*spec_.predicate, &cols);
    for (int c : cols) {
      if (c >= 0 && c < static_cast<int>(ncols)) needed[c] = 1;
    }
  }
  for (const auto& sip : spec_.sips) {
    for (int c : sip->probe_columns) {
      if (c >= 0 && c < static_cast<int>(ncols)) needed[c] = 1;
    }
  }
  // A predicate with no column references (e.g. a constant) still needs one
  // real column in the view so literal operands broadcast to the block size.
  if (spec_.predicate && ncols > 0) {
    bool any = false;
    for (char c : needed) any |= c != 0;
    if (!any) needed[0] = 1;
  }
  filter_cols_.clear();
  filter_types_.clear();
  filter_pos_.assign(ncols, -1);
  for (size_t c = 0; c < ncols; ++c) {
    if (!needed[c]) continue;
    filter_pos_[c] = static_cast<int>(filter_cols_.size());
    filter_cols_.push_back(static_cast<int>(c));
    filter_types_.push_back(spec_.output_types[c]);
  }
  filter_predicate_ = nullptr;
  if (spec_.predicate) {
    filter_predicate_ = CloneExpr(spec_.predicate);
    RemapColumnRefs(filter_predicate_.get(), filter_pos_);
  }
  sip_filter_cols_.clear();
  sip_output_cols_.clear();
  for (const auto& sip : spec_.sips) {
    std::vector<uint32_t> view, outc;
    for (int c : sip->probe_columns) {
      if (c < 0 || c >= static_cast<int>(ncols)) continue;  // same guard as above
      outc.push_back(static_cast<uint32_t>(c));
      view.push_back(static_cast<uint32_t>(filter_pos_[c]));
    }
    sip_output_cols_.push_back(std::move(outc));
    sip_filter_cols_.push_back(std::move(view));
  }

  if (merge_mode_) {
    // Sorted output over multiple sources: a loser-tree merge keyed on the
    // sort-prefix outputs (ascending, matching the stored sort order).
    std::vector<std::unique_ptr<MergeInput>> inputs;
    for (auto& src : sources_) {
      inputs.push_back(std::make_unique<SourceMergeInput>(this, src.get()));
    }
    std::vector<SortKey> keys;
    for (uint32_t c : spec_.sort_key_outputs) keys.push_back({c, false});
    merger_ = std::make_unique<LoserTreeMerger>(std::move(inputs), keys);
    STRATICA_RETURN_NOT_OK(merger_->Init());
  }
  return Status::OK();
}

Status ScanOperator::ComputeSelection(Source* src, size_t block_idx, uint64_t row_start,
                                      RowBlock* fblock, size_t n,
                                      const Expr* predicate,
                                      const std::vector<std::vector<uint32_t>>& sip_cols,
                                      std::vector<uint8_t>* sel, size_t* selected) {
  sel->assign(n, 1);
  if (src != nullptr && src->epoch_reader) {
    ColumnVector epochs(TypeId::kInt64);
    STRATICA_RETURN_NOT_OK(
        NoteRosFailure(src, src->epoch_reader->ReadBlock(block_idx, false, &epochs)));
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<Epoch>(epochs.ints[i]) > ctx_->epoch) (*sel)[i] = 0;
    }
  }
  if (src != nullptr && !src->deleted.empty()) {
    auto lo = std::lower_bound(src->deleted.begin(), src->deleted.end(), row_start);
    for (auto it = lo; it != src->deleted.end() && *it < row_start + n; ++it) {
      (*sel)[*it - row_start] = 0;
    }
  }
  if (predicate != nullptr) {
    // Selection-in/selection-out: rows already dead (epoch/deletes) are
    // never evaluated, and AND chains evaluate right sides only over the
    // left sides' survivors. Swap keeps both buffers' capacity alive.
    // Compare-const predicates over RLE/dict filter columns evaluate in
    // encoded form (one compare per run / per dictionary entry).
    uint64_t enc_rows = 0;
    STRATICA_RETURN_NOT_OK(
        EvalPredicateMasked(*predicate, *fblock, *sel, &pred_scratch_, &enc_rows));
    sel->swap(pred_scratch_);
    if (enc_rows > 0 && ctx_->stats)
      ctx_->stats->rows_processed_encoded.fetch_add(enc_rows);
  }
  bool any_sip_ready = false;
  for (const auto& sip : spec_.sips) any_sip_ready |= sip->ready.load();
  size_t after = 0;
  if (any_sip_ready) {
    uint64_t before = 0;
    for (uint8_t s : *sel) before += s;
    // SIP probing is row-at-a-time over physical entries: flatten any RLE
    // probe column in place (dict columns stay coded — the batched hashers
    // resolve codes through per-entry hash tables).
    for (size_t si = 0; si < spec_.sips.size(); ++si) {
      if (!spec_.sips[si]->ready.load(std::memory_order_acquire)) continue;
      for (uint32_t c : sip_cols[si]) {
        if (fblock->columns[c].IsRle())
          fblock->columns[c] = fblock->columns[c].Decoded();
      }
    }
    // Nothing above the SIPs filtered rows yet => sel is still all-ones and
    // the dense batched-membership path applies (until a SIP dirties it).
    bool sel_dense = before == n;
    for (size_t si = 0; si < spec_.sips.size(); ++si) {
      const auto& sip = spec_.sips[si];
      if (!sip->ready.load(std::memory_order_acquire)) continue;
      const std::vector<uint32_t>& cols = sip_cols[si];
      if (cols.empty()) continue;  // no valid probe columns: nothing to test
      if (sip->has_range && cols.size() == 1) {
        const ColumnVector& col = fblock->columns[cols[0]];
        if (col.IsDictCoded() && col.dict_sorted &&
            StorageClassOf(col.type) == StorageClass::kInt64) {
          // Translate [min, max] to a code range once per dictionary, then
          // test codes — no value materialization (DESIGN.md §13).
          const auto& dv = col.dict->ints;
          int64_t lo = std::lower_bound(dv.begin(), dv.end(), sip->min) - dv.begin();
          int64_t hi = std::upper_bound(dv.begin(), dv.end(), sip->max) - dv.begin() - 1;
          for (size_t i = 0; i < n; ++i) {
            if ((*sel)[i] &&
                (col.IsNull(i) || col.ints[i] < lo || col.ints[i] > hi)) {
              (*sel)[i] = 0;
            }
          }
          if (ctx_->stats) ctx_->stats->rows_processed_encoded.fetch_add(n);
        } else {
          for (size_t i = 0; i < n; ++i) {
            if ((*sel)[i] &&
                (col.IsNull(i) || col.ints[i] < sip->min || col.ints[i] > sip->max)) {
              (*sel)[i] = 0;
            }
          }
        }
        sel_dense = false;
      }
      // Batch-hash the probe key columns for the rows still selected (the
      // range prune above often kills most of a block), then resolve
      // membership; rows with a NULL key never join.
      HashRowsMasked(*fblock, cols, kSipSeed, sel->data(), &hash_buf_);
      bool any_nulls = false;
      for (uint32_t c : cols) any_nulls |= !fblock->columns[c].nulls.empty();
      if (any_nulls) {  // 1 in null_buf_ = NULL key, which never joins
        NullKeyMask(*fblock, cols, &null_buf_);
        for (size_t i = 0; i < n; ++i) {
          if (!(*sel)[i]) continue;
          if (null_buf_[i] || !sip->key_hashes.Contains(hash_buf_[i])) (*sel)[i] = 0;
        }
      } else if (sel_dense) {
        // Every row probes: batched membership with home-slot prefetch.
        hit_buf_.resize(n);
        sip->key_hashes.ContainsBatch(hash_buf_.data(), n, hit_buf_.data());
        for (size_t i = 0; i < n; ++i) (*sel)[i] &= hit_buf_[i];
      } else {
        for (size_t i = 0; i < n; ++i) {
          if ((*sel)[i] && !sip->key_hashes.Contains(hash_buf_[i])) (*sel)[i] = 0;
        }
      }
      sel_dense = false;  // this SIP may have zeroed rows
    }
    for (uint8_t s : *sel) after += s;
    if (ctx_->stats) ctx_->stats->rows_sip_filtered.fetch_add(before - after);
  } else {
    for (uint8_t s : *sel) after += s;
  }
  *selected = after;
  return Status::OK();
}

Status ScanOperator::AdvanceWos(Source* src) {
  bool any_sip_ready = false;
  for (const auto& sip : spec_.sips) any_sip_ready |= sip->ready.load();
  // WOS deletes/epochs were applied when the source was opened; only the
  // predicate and SIP filters remain. Rows are already decoded in memory,
  // but copies still follow the predicate-first order: the selection is
  // computed on a filter-view slice and payload columns are gathered for
  // survivors only.
  bool need_row_filter = spec_.predicate != nullptr || any_sip_ready;
  while (src->wos_cursor < src->wos_rows.NumRows()) {
    size_t take = std::min(ctx_->vector_size,
                           src->wos_rows.NumRows() - src->wos_cursor);
    size_t at = src->wos_cursor;
    src->wos_cursor += take;
    if (ctx_->stats) ctx_->stats->rows_scanned.fetch_add(take);
    if (!need_row_filter) {
      RowBlock slice(spec_.output_types);
      for (size_t c = 0; c < slice.columns.size(); ++c) {
        slice.columns[c].AppendRange(src->wos_rows.columns[c], at, take);
      }
      src->current = std::move(slice);
      return Status::OK();
    }
    RowBlock fview(filter_types_);
    for (size_t i = 0; i < filter_cols_.size(); ++i) {
      fview.columns[i].AppendRange(src->wos_rows.columns[filter_cols_[i]], at, take);
    }
    size_t selected = 0;
    STRATICA_RETURN_NOT_OK(ComputeSelection(nullptr, 0, 0, &fview, take,
                                            filter_predicate_.get(), sip_filter_cols_,
                                            &sel_scratch_, &selected));
    if (selected == 0) continue;
    RowBlock slice(spec_.output_types);
    std::vector<uint32_t> idx;
    if (selected < take) {
      idx.reserve(selected);
      for (size_t i = 0; i < take; ++i) {
        if (sel_scratch_[i]) idx.push_back(static_cast<uint32_t>(at + i));
      }
    }
    for (size_t c = 0; c < slice.columns.size(); ++c) {
      int fpos = filter_pos_[c];
      if (fpos >= 0) {
        slice.columns[c] = std::move(fview.columns[fpos]);
        if (selected < take) slice.columns[c].FilterPhysical(sel_scratch_);
      } else if (selected == take) {
        slice.columns[c].AppendRange(src->wos_rows.columns[c], at, take);
      } else {
        slice.columns[c].AppendGather(src->wos_rows.columns[c], idx);
      }
    }
    src->current = std::move(slice);
    return Status::OK();
  }
  src->exhausted = true;
  return Status::OK();
}

Status ScanOperator::AdvanceRos(Source* src) {
  while (src->next_block < src->block_hi) {
    if (Abandoned()) {
      src->exhausted = true;
      return Status::OK();
    }
    size_t b = src->next_block;
    const BlockMeta& bm0 = src->readers[0].meta().blocks[b];
    // Block-level pruning from the position index.
    bool pruned = false;
    for (const auto& bound : spec_.prune_bounds) {
      const auto& meta = src->readers[bound.output_column].meta();
      const BlockMeta& bm = meta.blocks[b];
      if (bm.row_count > bm.null_count &&
          !RangeMayMatch(bm.min, bm.max, bound.op, bound.value)) {
        pruned = true;
        break;
      }
    }
    ++src->next_block;
    if (pruned) {
      if (ctx_->stats) ctx_->stats->blocks_pruned.fetch_add(1);
      continue;
    }
    size_t n = bm0.row_count;
    if (ctx_->stats) ctx_->stats->rows_scanned.fetch_add(n);

    bool any_sip_ready = false;
    for (const auto& sip : spec_.sips) any_sip_ready |= sip->ready.load();
    bool deletes_here = false;
    if (!src->deleted.empty()) {
      auto lo =
          std::lower_bound(src->deleted.begin(), src->deleted.end(), bm0.row_start);
      deletes_here = lo != src->deleted.end() && *lo < bm0.row_start + n;
    }
    bool need_row_filter = spec_.predicate != nullptr || deletes_here ||
                           src->epoch_reader != nullptr || any_sip_ready;

    // Compressed execution (DESIGN.md §13): when the planner asked for
    // encoded output (and the process-wide switch is on), blocks leave the
    // scan as encoded-or-decoded views — RLE runs and dict codes survive
    // into the output block, re-cut by the selection when rows filter.
    bool emit_encoded =
        spec_.encoded_output && EncodedExecutionEnabled() && !merge_mode_;

    if (!need_row_filter || spec_.eager_decode) {
      // Eager path: nothing filters rows (RLE passthrough may engage), or
      // late materialization is explicitly disabled for A/B comparison.
      RowBlock block(spec_.output_types);
      bool keep_runs = spec_.rle_passthrough && !merge_mode_ && !need_row_filter;
      bool views = emit_encoded && !need_row_filter && !spec_.eager_decode;
      for (size_t c = 0; c < src->readers.size(); ++c) {
        if (views) {
          EncodedBlockView view;
          STRATICA_RETURN_NOT_OK(
              NoteRosFailure(src, src->readers[c].ReadBlockView(b, &view)));
          if (view.encoded() && ctx_->stats) {
            ctx_->stats->decode_elided_bytes.fetch_add(
                src->readers[c].meta().blocks[b].encoded_bytes);
          }
          block.columns[c] = std::move(view.column);
        } else {
          STRATICA_RETURN_NOT_OK(NoteRosFailure(
              src, src->readers[c].ReadBlock(b, keep_runs, &block.columns[c])));
        }
      }
      if (need_row_filter) {
        // Columns are flat here: keep_runs is false whenever filtering runs.
        size_t selected = 0;
        STRATICA_RETURN_NOT_OK(ComputeSelection(src, b, bm0.row_start, &block, n,
                                                spec_.predicate.get(),
                                                sip_output_cols_, &sel_scratch_,
                                                &selected));
        if (selected < n) {
          for (auto& col : block.columns) col.FilterPhysical(sel_scratch_);
        }
      }
      if (block.NumRows() > 0) {
        src->current = std::move(block);
        return Status::OK();
      }
      continue;
    }

    // Late materialization (DESIGN.md §7): read and decode only the filter
    // view, compute the full selection from it, and touch payload columns
    // only for surviving rows — not at all when the block comes back empty.
    // With encoded execution on, filter columns are read as encoded views so
    // the predicate can evaluate by run / dictionary entry.
    bool filter_views = EncodedExecutionEnabled() && !spec_.eager_decode;
    RowBlock fblock(filter_types_);
    for (size_t i = 0; i < filter_cols_.size(); ++i) {
      if (filter_views) {
        EncodedBlockView view;
        STRATICA_RETURN_NOT_OK(NoteRosFailure(
            src, src->readers[filter_cols_[i]].ReadBlockView(b, &view)));
        fblock.columns[i] = std::move(view.column);
      } else {
        STRATICA_RETURN_NOT_OK(NoteRosFailure(
            src,
            src->readers[filter_cols_[i]].ReadBlock(b, false, &fblock.columns[i])));
      }
    }
    size_t selected = 0;
    STRATICA_RETURN_NOT_OK(ComputeSelection(src, b, bm0.row_start, &fblock, n,
                                            filter_predicate_.get(), sip_filter_cols_,
                                            &sel_scratch_, &selected));
    if (selected == 0) {
      if (ctx_->stats) {
        uint64_t skipped = 0;
        for (size_t c = 0; c < src->readers.size(); ++c) {
          if (filter_pos_[c] < 0) skipped += src->readers[c].meta().blocks[b].encoded_bytes;
        }
        ctx_->stats->payload_bytes_skipped.fetch_add(skipped);
      }
      continue;
    }
    RowBlock block(spec_.output_types);
    for (size_t c = 0; c < src->readers.size(); ++c) {
      int fpos = filter_pos_[c];
      if (fpos >= 0) {
        ColumnVector col = std::move(fblock.columns[fpos]);
        if (!emit_encoded && !col.IsFlat()) col = col.Decoded();
        if (selected < n) {
          if (col.IsRle()) {
            col.FilterRuns(sel_scratch_);
          } else {
            col.FilterPhysical(sel_scratch_);
          }
        }
        if (!col.IsFlat() && ctx_->stats) {
          ctx_->stats->decode_elided_bytes.fetch_add(
              src->readers[c].meta().blocks[b].encoded_bytes);
        }
        block.columns[c] = std::move(col);
      } else if (emit_encoded) {
        // Payload as encoded-or-decoded view; runs/codes are re-cut by the
        // selection instead of materializing values.
        EncodedBlockView view;
        STRATICA_RETURN_NOT_OK(
            NoteRosFailure(src, src->readers[c].ReadBlockView(b, &view)));
        ColumnVector col = std::move(view.column);
        if (selected < n) {
          if (col.IsRle()) {
            col.FilterRuns(sel_scratch_);
          } else {
            col.FilterPhysical(sel_scratch_);
          }
        }
        if (ctx_->stats) {
          if (!col.IsFlat()) {
            ctx_->stats->decode_elided_bytes.fetch_add(
                src->readers[c].meta().blocks[b].encoded_bytes);
          } else {
            ctx_->stats->rows_decoded.fetch_add(selected);
          }
        }
        block.columns[c] = std::move(col);
      } else if (selected == n) {
        // Fully-selected block: the plain decoder is the fastest gather.
        STRATICA_RETURN_NOT_OK(
            NoteRosFailure(src, src->readers[c].ReadBlock(b, false, &block.columns[c])));
        if (ctx_->stats) ctx_->stats->rows_decoded.fetch_add(n);
      } else {
        STRATICA_RETURN_NOT_OK(NoteRosFailure(
            src,
            src->readers[c].ReadBlockSelected(b, sel_scratch_, &block.columns[c])));
        if (ctx_->stats) ctx_->stats->rows_decoded.fetch_add(selected);
      }
    }
    src->current = std::move(block);
    return Status::OK();
  }
  src->exhausted = true;
  return Status::OK();
}

Status ScanOperator::Advance(Source* src) {
  src->current.Clear();
  src->current = RowBlock(spec_.output_types);
  src->cursor = 0;
  if (src->is_wos) return AdvanceWos(src);
  return AdvanceRos(src);
}

Status ScanOperator::GetNext(RowBlock* out) {
  *out = RowBlock(spec_.output_types);
  if (Abandoned()) return Status::OK();  // unwanted output: clean EOF
  if (!merge_mode_) {
    for (;;) {
      while (current_source_ < sources_.size()) {
        Source* src = sources_[current_source_].get();
        if (src->exhausted) {
          ++current_source_;
          continue;
        }
        if (src->current.NumRows() == 0 || src->cursor > 0) {
          STRATICA_RETURN_NOT_OK(Advance(src));
          if (src->exhausted) {
            ++current_source_;
            continue;
          }
        }
        *out = std::move(src->current);
        src->current = RowBlock(spec_.output_types);
        src->cursor = 1;  // force re-advance next call
        return Status::OK();
      }
      if (!morsel_mode_ || Abandoned()) return Status::OK();  // EOF
      // Claim the next morsel and open it as a fresh source. A pruned or
      // abandoned open appends nothing — loop and claim again.
      ScanRegion region;
      if (!spec_.morsels->Next(&region)) return Status::OK();  // drained
      STRATICA_RETURN_NOT_OK(OpenContainerSource(region));
    }
  }
  // Merge mode: k-way loser-tree merge by the sort key outputs.
  return merger_->Next(out, ctx_->vector_size);
}

Status ScanOperator::Close() {
  // Roll every reader's I/O tally into the shared stats once, off the hot
  // path (I/O amplification reporting for benches).
  if (ctx_ != nullptr && ctx_->stats) {
    uint64_t total = 0;
    uint64_t retries = 0;
    for (const auto& src : sources_) {
      for (const auto& r : src->readers) {
        total += r.bytes_read();
        retries += r.io_retries();
      }
      if (src->epoch_reader) {
        total += src->epoch_reader->bytes_read();
        retries += src->epoch_reader->io_retries();
      }
    }
    ctx_->stats->bytes_read.fetch_add(total);
    if (retries > 0) ctx_->stats->io_retries.fetch_add(retries);
  }
  merger_.reset();  // holds raw Source pointers; must go before sources_
  sources_.clear();
  return Status::OK();
}

std::string ScanOperator::DebugString() const {
  std::string s = "Scan(" + (spec_.storage ? spec_.storage->config().projection : "?");
  if (spec_.predicate) s += ", filter: " + spec_.predicate->ToString();
  if (!spec_.prune_bounds.empty())
    s += ", prune bounds: " + std::to_string(spec_.prune_bounds.size());
  if (!spec_.sips.empty()) s += ", SIP filters: " + std::to_string(spec_.sips.size());
  if (spec_.morsels) s += ", morsels";
  if (spec_.sorted_output) s += ", sorted";
  if (spec_.rle_passthrough) s += ", rle";
  if (spec_.encoded_output) s += ", encoded";
  if (spec_.eager_decode) s += ", eager";
  s += ")";
  return s;
}

}  // namespace stratica
