#include "exec/scan.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/sort_util.h"

namespace stratica {

namespace {

/// Can a block/container with [min, max] contain rows satisfying
/// `col <op> value`? NULL stats (all-null or empty) conservatively pass.
bool RangeMayMatch(const Value& min, const Value& max, CompareOp op, const Value& v) {
  if (min.is_null() || max.is_null()) return true;
  switch (op) {
    case CompareOp::kEq: return !(v.Compare(min) < 0 || v.Compare(max) > 0);
    case CompareOp::kNe: return true;
    case CompareOp::kLt: return min.Compare(v) < 0;
    case CompareOp::kLe: return min.Compare(v) <= 0;
    case CompareOp::kGt: return max.Compare(v) > 0;
    case CompareOp::kGe: return max.Compare(v) >= 0;
  }
  return true;
}

}  // namespace

/// One stream of filtered blocks: a container region or the WOS.
struct ScanOperator::Source {
  // Container source state.
  RosContainerPtr container;
  std::vector<ColumnReader> readers;           // parallel to spec.projection_columns
  std::unique_ptr<ColumnReader> epoch_reader;  // only when epoch filter needed
  std::vector<uint64_t> deleted;               // sorted deleted positions
  size_t next_block = 0;
  size_t block_hi = 0;

  // WOS source: fully materialized (and possibly sorted) rows.
  bool is_wos = false;
  RowBlock wos_rows;
  size_t wos_cursor = 0;

  // Current filtered block (merge mode keeps a cursor into it).
  RowBlock current;
  size_t cursor = 0;
  bool exhausted = false;
};

ScanOperator::ScanOperator(ScanSpec spec) : spec_(std::move(spec)) {}
ScanOperator::~ScanOperator() = default;

std::vector<std::vector<ScanRegion>> PlanScanRegions(const StorageSnapshot& snap,
                                                     size_t k) {
  if (k == 0) k = 1;
  // Split every container into ~k block ranges, then deal ranges round-robin
  // so each worker touches a balanced share of every container — one large
  // container still spreads across all k workers (Section 3.5: runtime
  // division into logical regions, no physical sub-partitioning).
  std::vector<ScanRegion> all;
  for (const auto& c : snap.ros) {
    size_t num_blocks = c->columns.empty() ? 0 : c->columns[0].meta.blocks.size();
    if (num_blocks <= 1 || k == 1) {
      all.push_back({c, 0, SIZE_MAX});
      continue;
    }
    size_t pieces = std::min(k, num_blocks);
    size_t per = num_blocks / pieces, extra = num_blocks % pieces;
    size_t lo = 0;
    for (size_t p = 0; p < pieces; ++p) {
      size_t take = per + (p < extra ? 1 : 0);
      all.push_back({c, lo, lo + take});
      lo += take;
    }
  }
  std::vector<std::vector<ScanRegion>> out(k);
  for (size_t i = 0; i < all.size(); ++i) out[i % k].push_back(all[i]);
  return out;
}

Status ScanOperator::OpenContainerSource(const ScanRegion& region) {
  const RosContainer& c = *region.container;
  // Container-level pruning from column min/max (includes partition
  // pruning: partition-separated containers have tight bounds).
  for (const auto& bound : spec_.prune_bounds) {
    int proj_col = spec_.projection_columns[bound.output_column];
    if (proj_col < 0 || proj_col >= static_cast<int>(c.columns.size())) continue;
    const ColumnFileMeta& meta = c.columns[proj_col].meta;
    if (meta.num_rows > 0 && !RangeMayMatch(meta.min, meta.max, bound.op, bound.value)) {
      if (ctx_->stats) ctx_->stats->containers_pruned.fetch_add(1);
      return Status::OK();  // whole container pruned
    }
  }
  auto src = std::make_unique<Source>();
  src->container = region.container;
  for (int proj_col : spec_.projection_columns) {
    STRATICA_ASSIGN_OR_RETURN(ColumnReader reader,
                              OpenRosColumn(ctx_->fs, c, proj_col));
    src->readers.push_back(std::move(reader));
  }
  if (!c.epoch_data_path.empty() && c.max_epoch > ctx_->epoch) {
    STRATICA_ASSIGN_OR_RETURN(
        ColumnReader er, ColumnReader::Open(ctx_->fs, c.epoch_data_path,
                                            c.epoch_index_path));
    src->epoch_reader = std::make_unique<ColumnReader>(std::move(er));
  }
  src->deleted = snap_.deletes.DeletedPositions(c.id);
  src->next_block = region.block_lo;
  src->block_hi = std::min(region.block_hi, src->readers.empty()
                                                ? size_t{0}
                                                : src->readers[0].num_blocks());
  sources_.push_back(std::move(src));
  return Status::OK();
}

Status ScanOperator::OpenWosSource() {
  if (snap_.wos.empty()) return Status::OK();
  auto src = std::make_unique<Source>();
  src->is_wos = true;
  RowBlock rows(spec_.output_types);
  // Gather visible WOS rows (restricted to the scanned columns), applying
  // delete vectors by global WOS position.
  auto wos_deleted = snap_.deletes.DeletedPositions(kWosTargetId);
  for (const auto& chunk : snap_.wos) {
    for (size_t r = 0; r < chunk->NumRows(); ++r) {
      uint64_t pos = chunk->start_pos + r;
      if (std::binary_search(wos_deleted.begin(), wos_deleted.end(), pos)) continue;
      for (size_t c = 0; c < spec_.projection_columns.size(); ++c) {
        rows.columns[c].AppendFrom(chunk->rows.columns[spec_.projection_columns[c]], r);
      }
    }
  }
  if (spec_.sorted_output && !spec_.sort_key_outputs.empty()) {
    auto perm = ComputeSortPermutation(rows, spec_.sort_key_outputs);
    rows = ApplyPermutation(rows, perm);
  }
  src->wos_rows = std::move(rows);
  sources_.push_back(std::move(src));
  return Status::OK();
}

Status ScanOperator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  snap_ = spec_.storage->GetSnapshot(ctx->epoch, ctx->txn_id);
  sources_.clear();
  current_source_ = 0;
  if (spec_.use_regions) {
    for (const auto& region : spec_.regions)
      STRATICA_RETURN_NOT_OK(OpenContainerSource(region));
    if (spec_.include_wos) STRATICA_RETURN_NOT_OK(OpenWosSource());
  } else {
    for (const auto& c : snap_.ros)
      STRATICA_RETURN_NOT_OK(OpenContainerSource({c, 0, SIZE_MAX}));
    STRATICA_RETURN_NOT_OK(OpenWosSource());
  }
  merge_mode_ = spec_.sorted_output && sources_.size() > 1;
  if (merge_mode_) {
    for (auto& src : sources_) STRATICA_RETURN_NOT_OK(Advance(src.get()));
  }
  return Status::OK();
}

Status ScanOperator::FilterBlock(Source* src, RowBlock* block, uint64_t row_start) {
  size_t n = block->NumRows();
  if (n == 0) return Status::OK();
  // RLE columns must be expanded before row-aligned filtering; passthrough
  // is only kept when nothing filters rows below.
  bool need_row_filter =
      spec_.predicate != nullptr || !src->deleted.empty() ||
      src->epoch_reader != nullptr;
  bool any_sip_ready = false;
  for (const auto& sip : spec_.sips) any_sip_ready |= sip->ready.load();
  need_row_filter |= any_sip_ready;
  if (need_row_filter) block->DecodeAll();

  std::vector<uint8_t> sel(need_row_filter ? block->columns[0].PhysicalSize() : 0, 1);
  if (src->epoch_reader) {
    ColumnVector epochs(TypeId::kInt64);
    STRATICA_RETURN_NOT_OK(
        src->epoch_reader->ReadBlock(src->next_block - 1, false, &epochs));
    for (size_t i = 0; i < sel.size(); ++i) {
      if (static_cast<Epoch>(epochs.ints[i]) > ctx_->epoch) sel[i] = 0;
    }
  }
  if (!src->deleted.empty()) {
    auto lo = std::lower_bound(src->deleted.begin(), src->deleted.end(), row_start);
    for (auto it = lo; it != src->deleted.end() && *it < row_start + n; ++it) {
      sel[*it - row_start] = 0;
    }
  }
  if (spec_.predicate) {
    std::vector<uint8_t> pred_sel;
    STRATICA_RETURN_NOT_OK(EvalPredicate(*spec_.predicate, *block, &pred_sel));
    for (size_t i = 0; i < sel.size(); ++i) sel[i] &= pred_sel[i];
  }
  if (any_sip_ready) {
    uint64_t before = 0, after = 0;
    for (uint8_t s : sel) before += s;
    // Nothing above the SIPs filtered rows yet => sel is still all-ones and
    // the dense batched-membership path applies (until a SIP dirties it).
    bool sel_dense = before == sel.size();
    for (const auto& sip : spec_.sips) {
      if (!sip->ready.load(std::memory_order_acquire)) continue;
      if (sip->has_range && sip->probe_columns.size() == 1) {
        const ColumnVector& col = block->columns[sip->probe_columns[0]];
        for (size_t i = 0; i < sel.size(); ++i) {
          if (sel[i] && (col.IsNull(i) || col.ints[i] < sip->min || col.ints[i] > sip->max))
            sel[i] = 0;
        }
        sel_dense = false;
      }
      // Batch-hash the probe key columns for the rows still selected (the
      // range prune above often kills most of a block), then resolve
      // membership; rows with a NULL key never join.
      size_t n = sel.size();
      sip_cols_.assign(sip->probe_columns.begin(), sip->probe_columns.end());
      HashRowsMasked(*block, sip_cols_, kSipSeed, sel.data(), &hash_buf_);
      bool any_nulls = false;
      for (uint32_t c : sip_cols_) any_nulls |= !block->columns[c].nulls.empty();
      if (any_nulls) {  // 1 in hit_buf_ = NULL key, which never joins
        NullKeyMask(*block, sip_cols_, &null_buf_);
        for (size_t i = 0; i < n; ++i) {
          if (!sel[i]) continue;
          if (null_buf_[i] || !sip->key_hashes.Contains(hash_buf_[i])) sel[i] = 0;
        }
      } else if (sel_dense) {
        // Every row probes: batched membership with home-slot prefetch.
        hit_buf_.resize(n);
        sip->key_hashes.ContainsBatch(hash_buf_.data(), n, hit_buf_.data());
        for (size_t i = 0; i < n; ++i) sel[i] &= hit_buf_[i];
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (sel[i] && !sip->key_hashes.Contains(hash_buf_[i])) sel[i] = 0;
        }
      }
      sel_dense = false;  // this SIP may have zeroed rows
    }
    for (uint8_t s : sel) after += s;
    if (ctx_->stats) ctx_->stats->rows_sip_filtered.fetch_add(before - after);
  }
  if (need_row_filter) {
    for (auto& col : block->columns) col.FilterPhysical(sel);
  }
  return Status::OK();
}

Status ScanOperator::Advance(Source* src) {
  src->current.Clear();
  src->current = RowBlock(spec_.output_types);
  src->cursor = 0;
  if (src->is_wos) {
    // Emit WOS rows in vector_size slices; predicate/SIP still apply.
    while (src->wos_cursor < src->wos_rows.NumRows()) {
      size_t take = std::min(ctx_->vector_size,
                             src->wos_rows.NumRows() - src->wos_cursor);
      RowBlock slice(spec_.output_types);
      for (size_t r = 0; r < take; ++r)
        slice.AppendRowFrom(src->wos_rows, src->wos_cursor + r);
      src->wos_cursor += take;
      if (ctx_->stats) ctx_->stats->rows_scanned.fetch_add(take);
      // WOS deletes/epochs already handled; run predicate + SIP only.
      Source pseudo;  // no deletes, no epoch reader
      STRATICA_RETURN_NOT_OK(FilterBlock(&pseudo, &slice, 0));
      if (slice.NumRows() > 0) {
        src->current = std::move(slice);
        return Status::OK();
      }
    }
    src->exhausted = true;
    return Status::OK();
  }
  while (src->next_block < src->block_hi) {
    size_t b = src->next_block;
    const BlockMeta& bm0 = src->readers[0].meta().blocks[b];
    // Block-level pruning from the position index.
    bool pruned = false;
    for (const auto& bound : spec_.prune_bounds) {
      const auto& meta = src->readers[bound.output_column].meta();
      const BlockMeta& bm = meta.blocks[b];
      if (bm.row_count > bm.null_count &&
          !RangeMayMatch(bm.min, bm.max, bound.op, bound.value)) {
        pruned = true;
        break;
      }
    }
    ++src->next_block;
    if (pruned) {
      if (ctx_->stats) ctx_->stats->blocks_pruned.fetch_add(1);
      continue;
    }
    RowBlock block(spec_.output_types);
    bool keep_runs = spec_.rle_passthrough && !merge_mode_;
    for (size_t c = 0; c < src->readers.size(); ++c) {
      STRATICA_RETURN_NOT_OK(src->readers[c].ReadBlock(b, keep_runs, &block.columns[c]));
    }
    if (ctx_->stats) ctx_->stats->rows_scanned.fetch_add(bm0.row_count);
    STRATICA_RETURN_NOT_OK(FilterBlock(src, &block, bm0.row_start));
    if (block.NumRows() > 0) {
      src->current = std::move(block);
      return Status::OK();
    }
  }
  src->exhausted = true;
  return Status::OK();
}

Status ScanOperator::GetNext(RowBlock* out) {
  *out = RowBlock(spec_.output_types);
  if (!merge_mode_) {
    while (current_source_ < sources_.size()) {
      Source* src = sources_[current_source_].get();
      if (src->exhausted) {
        ++current_source_;
        continue;
      }
      if (src->current.NumRows() == 0 || src->cursor > 0) {
        STRATICA_RETURN_NOT_OK(Advance(src));
        if (src->exhausted) {
          ++current_source_;
          continue;
        }
      }
      *out = std::move(src->current);
      src->current = RowBlock(spec_.output_types);
      src->cursor = 1;  // force re-advance next call
      return Status::OK();
    }
    return Status::OK();  // EOF
  }
  // Merge mode: k-way merge by the sort key outputs.
  while (out->NumRows() < ctx_->vector_size) {
    Source* best = nullptr;
    for (auto& sp : sources_) {
      Source* src = sp.get();
      if (src->exhausted) continue;
      if (src->cursor >= src->current.NumRows()) {
        STRATICA_RETURN_NOT_OK(Advance(src));
        if (src->exhausted) continue;
      }
      if (!best ||
          CompareRows(src->current, src->cursor, best->current, best->cursor,
                      spec_.sort_key_outputs, spec_.sort_key_outputs) < 0) {
        best = src;
      }
    }
    if (!best) break;  // all exhausted
    out->AppendRowFrom(best->current, best->cursor);
    ++best->cursor;
  }
  return Status::OK();
}

Status ScanOperator::Close() {
  sources_.clear();
  return Status::OK();
}

std::string ScanOperator::DebugString() const {
  std::string s = "Scan(" + (spec_.storage ? spec_.storage->config().projection : "?");
  if (spec_.predicate) s += ", filter: " + spec_.predicate->ToString();
  if (!spec_.prune_bounds.empty())
    s += ", prune bounds: " + std::to_string(spec_.prune_bounds.size());
  if (!spec_.sips.empty()) s += ", SIP filters: " + std::to_string(spec_.sips.size());
  if (spec_.sorted_output) s += ", sorted";
  if (spec_.rle_passthrough) s += ", rle";
  s += ")";
  return s;
}

}  // namespace stratica
