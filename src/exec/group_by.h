// GroupBy operators (Section 6.1 #2): several algorithms chosen by the
// optimizer for maximal performance —
//   HashGroupBy      general case; externalizes to grace partitions when
//                    over its memory budget.
//   PipelinedGroupBy one-pass aggregation over input sorted on the group
//                    keys, able to consume RLE runs without expansion
//                    ("keep the incoming data encoded").
//   PrepassGroupBy   L1-cache-sized hash table placed right above scans to
//                    cheaply reduce data early; emits partials when full
//                    and disables itself at runtime when it stops reducing.
#ifndef STRATICA_EXEC_GROUP_BY_H_
#define STRATICA_EXEC_GROUP_BY_H_

#include <deque>

#include "exec/agg.h"
#include "exec/hash_table.h"
#include "exec/operator.h"
#include "exec/spill.h"

namespace stratica {

struct GroupBySpec {
  std::vector<uint32_t> group_columns;  ///< child output column indexes
  std::vector<AggSpec> aggs;
  AggPhase phase = AggPhase::kSingle;
  std::vector<std::string> output_names;  ///< group names then agg names
};

/// \brief Hash aggregation with grace-partition externalization. When the
/// table exceeds its budget, groups spill to 16 hash-disjoint partitions;
/// at end of input the partitions merge back — as independent work-stealing
/// tasks on the query's Scheduler when one is installed (DESIGN.md §12),
/// since no group can span two partitions.
class HashGroupByOperator : public Operator {
 public:
  HashGroupByOperator(OperatorPtr child, GroupBySpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override { return spec_.output_names; }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override { return {child_.get()}; }
  size_t MemoryEstimateBytes() const override {
    // Hash table + group keys/states up to the grace-spill threshold.
    return 8 << 20;
  }

 private:
  struct Table {
    RowBlock keys;                         // one row per group
    std::vector<std::vector<AggState>> states;  // [group][agg]
    FlatHashTable index;                   // group id == table entry id
    size_t bytes = 0;
  };

  /// Consume one input block. Encoded-aware (DESIGN.md §13): blocks may
  /// arrive with RLE or dict-coded columns and are routed to a matching
  /// fast path; the universal fallback flattens RLE columns in place (dict
  /// columns stay coded — hashing, comparison and aggregation all resolve
  /// codes through the dictionary).
  Status Consume(RowBlock* block);
  /// No GROUP BY: one global state per agg, updated by run length over RLE
  /// columns and by per-code occurrence counts over dict columns.
  Status ConsumeGlobal(const RowBlock& block);
  /// Single dict-coded group column: a dense code→group-id map (rebuilt
  /// when the block's dictionary changes) short-circuits the hash table;
  /// only first-seen codes pay FindOrInsertGroup.
  Status ConsumeDictKey(RowBlock* block);
  /// Single RLE group column: resolve the group once per run, aggregate
  /// same-column aggs by run length.
  Status ConsumeRleKey(RowBlock* block);
  /// Find or create the group for `row` (key hash `h` precomputed by the
  /// batched hasher); returns the group id.
  uint32_t FindOrInsertGroup(Table* table, const RowBlock& block,
                             const std::vector<uint32_t>& key_cols, size_t row,
                             uint64_t h);
  Status SpillTable();
  Status EmitTable(const Table& table, std::deque<RowBlock>* out);
  /// Re-aggregate one grace partition into `out`. Touches only the
  /// partition's own reader/table/buffers, so partitions merge in parallel.
  Status MergePartition(SpillWriter* part, const std::vector<TypeId>& rec_types,
                        const std::vector<uint32_t>& key_cols,
                        std::deque<RowBlock>* out);
  std::vector<TypeId> GroupTypes() const;

  OperatorPtr child_;
  GroupBySpec spec_;
  ExecContext* ctx_ = nullptr;
  Table table_;
  std::vector<uint32_t> identity_cols_;  // 0..num_group_cols-1, hoisted
  std::vector<uint64_t> hash_buf_;       // per-block batched key hashes
  std::vector<uint32_t> head_buf_;       // per-block batched probe results
  /// Dense code→group-id cache for ConsumeDictKey, valid while the blocks'
  /// dictionary pointer stays `code_map_dict_` (the shared_ptr keeps it
  /// alive, so pointer identity is a safe key). Last slot = the NULL group.
  /// Invalidated on spill (group ids reset with the table).
  std::shared_ptr<const ColumnVector> code_map_dict_;
  std::vector<uint32_t> code_map_;
  static constexpr size_t kSpillPartitions = 16;
  std::vector<std::unique_ptr<SpillWriter>> partitions_;
  std::deque<RowBlock> output_;
  bool emitted_ = false;
};

/// \brief One-pass aggregation over key-sorted input; consumes RLE runs on
/// the group column directly when possible.
class PipelinedGroupByOperator : public Operator {
 public:
  PipelinedGroupByOperator(OperatorPtr child, GroupBySpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override { return spec_.output_names; }
  std::string DebugString() const override { return "GroupByPipelined"; }
  std::vector<Operator*> Children() const override { return {child_.get()}; }

  uint64_t runs_consumed() const { return runs_consumed_; }

 private:
  void EmitCurrent(RowBlock* out);

  OperatorPtr child_;
  GroupBySpec spec_;
  ExecContext* ctx_ = nullptr;
  bool has_current_ = false;
  RowBlock current_key_;  // single row
  std::vector<AggState> current_states_;
  bool input_done_ = false;
  uint64_t runs_consumed_ = 0;
  std::vector<uint32_t> identity_cols_;
};

/// \brief Prepass partial aggregation (always AggPhase::kPartial output).
class PrepassGroupByOperator : public Operator {
 public:
  PrepassGroupByOperator(OperatorPtr child, GroupBySpec spec,
                         size_t capacity = 4096)
      : child_(std::move(child)), spec_(std::move(spec)), capacity_(capacity) {
    spec_.phase = AggPhase::kPartial;
  }

  Status Open(ExecContext* ctx) override;
  Status GetNext(RowBlock* out) override;
  Status Close() override { return child_->Close(); }
  std::vector<TypeId> OutputTypes() const override;
  std::vector<std::string> OutputNames() const override { return spec_.output_names; }
  std::string DebugString() const override;
  std::vector<Operator*> Children() const override { return {child_.get()}; }

  bool disabled() const { return disabled_; }

 private:
  Status Flush();  // move table contents into output_

  OperatorPtr child_;
  GroupBySpec spec_;
  size_t capacity_;
  ExecContext* ctx_ = nullptr;

  RowBlock keys_;
  std::vector<std::vector<AggState>> states_;
  FlatHashTable index_;
  std::vector<uint64_t> hash_buf_;
  std::vector<uint32_t> identity_cols_;
  std::deque<RowBlock> output_;
  bool input_done_ = false;

  // Runtime shutoff: stop prepassing when not reducing (Section 6.1).
  uint64_t rows_in_ = 0, rows_out_ = 0, flushes_ = 0;
  bool disabled_ = false;
};

/// Scalar reference for the batched HashRows(block, cols, kGroupKeySeed)
/// path: hash of the group-key columns of one row. Hot loops use HashRows;
/// this stays as the executable spec (tests assert batch == scalar).
uint64_t HashGroupKey(const RowBlock& block, const std::vector<uint32_t>& cols,
                      size_t row);

/// Shared helper: do two key rows match exactly?
bool GroupKeyEquals(const RowBlock& a, const std::vector<uint32_t>& cols_a, size_t ra,
                    const RowBlock& b, const std::vector<uint32_t>& cols_b, size_t rb);

}  // namespace stratica

#endif  // STRATICA_EXEC_GROUP_BY_H_
