// Block spill files: serialization of RowBlocks through the FileSystem for
// operator externalization (sort runs, grace-hash partitions).
#ifndef STRATICA_EXEC_SPILL_H_
#define STRATICA_EXEC_SPILL_H_

#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"

namespace stratica {

/// Serialize a flat block (all columns plain-encoded) to bytes.
std::string SerializeBlock(const RowBlock& block);

/// Parse bytes produced by SerializeBlock; `types` gives the column types.
Result<RowBlock> ParseBlock(const std::string& data, const std::vector<TypeId>& types);

/// \brief Append-oriented spill writer: buffers blocks, writes one file.
class SpillWriter {
 public:
  SpillWriter(FileSystem* fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  Status Append(const RowBlock& block);
  Status Finish();
  uint64_t rows() const { return rows_; }
  const std::string& path() const { return path_; }

 private:
  FileSystem* fs_;
  std::string path_;
  std::string buffer_;
  uint64_t rows_ = 0;
};

/// \brief Streams blocks back from a spill file.
class SpillReader {
 public:
  SpillReader(const FileSystem* fs, std::string path, std::vector<TypeId> types)
      : fs_(fs), path_(std::move(path)), types_(std::move(types)) {}

  Status Open();
  /// Empty block = EOF.
  Status Next(RowBlock* out);

 private:
  const FileSystem* fs_;
  std::string path_;
  std::vector<TypeId> types_;
  std::string data_;
  size_t offset_ = 0;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_SPILL_H_
