// K-way merge kernel shared by the Sort operator (spilled runs), the tuple
// mover (mergeout, moveout) and sorted merge scans (DESIGN.md §8).
//
// A loser tree over k sorted inputs: each advance costs exactly one
// root-to-leaf replay (⌈log2 k⌉ comparisons) instead of the k-1
// comparisons of a scan-all-sources loop, and comparisons are memcmp over
// normalized keys (storage/sort_util) built once per block instead of
// per-row type switches. Output is appended in batches, with a
// run-extension fast path that bulk-copies every winner row that beats the
// current runner-up in one AppendRange.
#ifndef STRATICA_EXEC_MERGE_H_
#define STRATICA_EXEC_MERGE_H_

#include <memory>
#include <vector>

#include "common/row_block.h"
#include "common/status.h"
#include "exec/spill.h"
#include "storage/sort_util.h"

namespace stratica {

/// \brief One sorted input of a k-way merge: a stream of flat blocks whose
/// concatenation is sorted by the merge keys. An empty block signals EOF.
class MergeInput {
 public:
  virtual ~MergeInput() = default;
  virtual Status NextBlock(RowBlock* out) = 0;
};

/// A single in-memory sorted block (tuple mover sources, the Sort
/// operator's final in-memory run).
class BlockMergeInput : public MergeInput {
 public:
  explicit BlockMergeInput(RowBlock block) : block_(std::move(block)) {}
  Status NextBlock(RowBlock* out) override {
    if (done_) {
      *out = RowBlock();
      return Status::OK();
    }
    done_ = true;
    *out = std::move(block_);
    return Status::OK();
  }

 private:
  RowBlock block_;
  bool done_ = false;
};

/// A sorted run spilled through exec/spill (external sort).
class SpillMergeInput : public MergeInput {
 public:
  SpillMergeInput(const FileSystem* fs, std::string path, std::vector<TypeId> types)
      : reader_(fs, std::move(path), std::move(types)) {}
  Status NextBlock(RowBlock* out) override {
    if (!opened_) {
      STRATICA_RETURN_NOT_OK(reader_.Open());
      opened_ = true;
    }
    return reader_.Next(out);
  }

 private:
  SpillReader reader_;
  bool opened_ = false;
};

/// Provenance of one merged row: which input it came from and its global
/// row index within that input (the tuple mover maps these to per-source
/// epochs and delete positions).
struct MergeSourceRef {
  uint32_t input = 0;
  uint64_t row = 0;
};

/// \brief Streaming k-way merge of sorted inputs under directed sort keys.
///
/// Ties break toward the lower input index, so the merge is stable when
/// inputs are numbered in original order — and byte-identical to the
/// scan-all-sources comparator loops it replaces. Honors the
/// NormalizedKeySortEnabled() A/B knob: when off, comparisons fall back to
/// per-row CompareRowsDirected.
class LoserTreeMerger {
 public:
  LoserTreeMerger(std::vector<std::unique_ptr<MergeInput>> inputs,
                  std::vector<SortKey> keys);

  /// Pull the first block of every input and build the tree.
  Status Init();

  bool Done() const;

  /// Append up to `max_rows` merged rows to *out (a flat block typed like
  /// the inputs). `provenance`, when non-null, receives one entry per
  /// appended row. Appending zero rows means the merge is exhausted.
  Status Next(RowBlock* out, size_t max_rows,
              std::vector<MergeSourceRef>* provenance = nullptr);

 private:
  struct Cursor {
    std::unique_ptr<MergeInput> input;
    RowBlock block;
    NormalizedKeys keys;
    size_t pos = 0;       ///< current row within block
    uint64_t base = 0;    ///< global row index of block's first row
    bool exhausted = false;
  };

  Status Refill(size_t c);
  /// Append rows [cursor, take_end) of `leaf` to *out (+ provenance),
  /// advance the cursor, and return the row count.
  size_t EmitRows(size_t leaf, size_t take_end, RowBlock* out,
                  std::vector<MergeSourceRef>* provenance);
  /// Winner of the subtree rooted at `node`, recording losers on the way.
  size_t InitNode(size_t node);
  /// Re-seat leaf `leaf` after its cursor advanced (one root path).
  void Replay(size_t leaf);
  /// Would leaf `a` (at its cursor) win against leaf `b` (at its cursor)?
  bool LeafBeats(size_t a, size_t b) const;
  /// Would row `row` of leaf `a` win against leaf `b` at its cursor?
  bool RowBeats(size_t a, size_t row, size_t b) const;

  /// Consecutive wins by the same leaf before the run-extension fast path
  /// engages (short interleaved runs then never pay the challenger scan).
  static constexpr size_t kStreakForExtension = 4;

  std::vector<Cursor> cursors_;
  std::vector<SortKey> keys_;
  std::vector<size_t> tree_;  ///< [0] = winner; [1, k) = internal losers
  size_t k_ = 0;
  size_t streak_ = 0;             ///< current winner's consecutive wins
  size_t streak_leaf_ = SIZE_MAX; ///< leaf the streak belongs to
  bool use_normalized_keys_ = true;
  /// Direct compares (k<=2 fast path) under the normalized-key total order.
  bool total_order_compare_ = false;
};

}  // namespace stratica

#endif  // STRATICA_EXEC_MERGE_H_
