#include "sql/parser.h"

#include <algorithm>
#include <cctype>

namespace stratica {

namespace {

enum class Tok : uint8_t { kIdent, kNumber, kString, kOp, kEnd };

struct Token {
  Tok type = Tok::kEnd;
  std::string text;  // upper-cased for idents
  std::string raw;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) { Advance(); }

  const Token& Peek() const { return cur_; }

  Token Next() {
    Token t = cur_;
    Advance();
    return t;
  }

  bool Is(const std::string& upper) const {
    return (cur_.type == Tok::kIdent || cur_.type == Tok::kOp) && cur_.text == upper;
  }

  bool Accept(const std::string& upper) {
    if (!Is(upper)) return false;
    Advance();
    return true;
  }

  Status Expect(const std::string& upper) {
    if (Accept(upper)) return Status::OK();
    return Status::ParseError("expected '", upper, "' near '", cur_.raw, "'");
  }

  bool AtEnd() const { return cur_.type == Tok::kEnd; }

  struct State {
    size_t pos;
    Token cur;
  };
  State Save() const { return {pos_, cur_}; }
  void Restore(const State& s) {
    pos_ = s.pos;
    cur_ = s.cur;
  }

 private:
  void Advance() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_])))
      ++pos_;
    cur_ = Token();
    if (pos_ >= sql_.size()) return;
    char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < sql_.size() && (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                                    sql_[pos_] == '_')) {
        ++pos_;
      }
      cur_.type = Tok::kIdent;
      cur_.raw = sql_.substr(start, pos_ - start);
      cur_.text = cur_.raw;
      std::transform(cur_.text.begin(), cur_.text.end(), cur_.text.begin(),
                     [](char ch) { return static_cast<char>(std::toupper(ch)); });
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      size_t start = pos_;
      while (pos_ < sql_.size() && (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                                    sql_[pos_] == '.' || sql_[pos_] == 'e' ||
                                    sql_[pos_] == 'E' ||
                                    ((sql_[pos_] == '+' || sql_[pos_] == '-') && pos_ > start &&
                                     (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      cur_.type = Tok::kNumber;
      cur_.raw = cur_.text = sql_.substr(start, pos_ - start);
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        if (sql_[pos_] == '\\' && pos_ + 1 < sql_.size()) ++pos_;
        s.push_back(sql_[pos_++]);
      }
      ++pos_;  // closing quote
      cur_.type = Tok::kString;
      cur_.raw = cur_.text = s;
      return;
    }
    // Operators (longest first).
    static const char* kOps[] = {"<>", "<=", ">=", "!=", "||", "(", ")", ",", ".",
                                 "=",  "<",  ">",  "+",  "-",  "*", "/", "%", ";"};
    for (const char* op : kOps) {
      size_t len = std::strlen(op);
      if (sql_.compare(pos_, len, op) == 0) {
        cur_.type = Tok::kOp;
        cur_.raw = cur_.text = op;
        pos_ += len;
        return;
      }
    }
    cur_.type = Tok::kOp;
    cur_.raw = cur_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& sql_;
  size_t pos_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& sql) : lex_(sql) {}

  Result<Statement> Parse() {
    Statement stmt;
    if (lex_.Accept("EXPLAIN")) {
      stmt.type = Statement::Type::kExplain;
      STRATICA_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (lex_.Is("SELECT")) {
      stmt.type = Statement::Type::kSelect;
      STRATICA_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (lex_.Accept("INSERT")) {
      stmt.type = Statement::Type::kInsert;
      STRATICA_RETURN_NOT_OK(ParseInsert(&stmt.insert));
    } else if (lex_.Accept("COPY")) {
      stmt.type = Statement::Type::kCopy;
      STRATICA_RETURN_NOT_OK(ParseCopy(&stmt.copy));
    } else if (lex_.Accept("DELETE")) {
      stmt.type = Statement::Type::kDelete;
      STRATICA_RETURN_NOT_OK(lex_.Expect("FROM"));
      stmt.del.table = lex_.Next().raw;
      if (lex_.Accept("WHERE")) {
        STRATICA_ASSIGN_OR_RETURN(stmt.del.where, ParseExpr());
      }
    } else if (lex_.Accept("UPDATE")) {
      stmt.type = Statement::Type::kUpdate;
      STRATICA_RETURN_NOT_OK(ParseUpdate(&stmt.update));
    } else if (lex_.Accept("CREATE")) {
      if (lex_.Accept("TABLE")) {
        stmt.type = Statement::Type::kCreateTable;
        STRATICA_RETURN_NOT_OK(ParseCreateTable(&stmt.create_table));
      } else if (lex_.Accept("PROJECTION")) {
        stmt.type = Statement::Type::kCreateProjection;
        STRATICA_RETURN_NOT_OK(ParseCreateProjection(&stmt.create_projection));
      } else {
        return Status::ParseError("expected TABLE or PROJECTION after CREATE");
      }
    } else if (lex_.Accept("DROP")) {
      stmt.type = Statement::Type::kDropTable;
      STRATICA_RETURN_NOT_OK(lex_.Expect("TABLE"));
      stmt.drop_table = lex_.Next().raw;
    } else {
      return Status::ParseError("unrecognized statement start: '", lex_.Peek().raw, "'");
    }
    lex_.Accept(";");
    if (!lex_.AtEnd())
      return Status::ParseError("trailing input near '", lex_.Peek().raw, "'");
    return stmt;
  }

 private:
  // --- expressions ----------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (lex_.Accept("OR")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (lex_.Accept("AND")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (lex_.Accept("NOT")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (lex_.Is("=") || lex_.Is("<>") || lex_.Is("!=") || lex_.Is("<") ||
        lex_.Is("<=") || lex_.Is(">") || lex_.Is(">=")) {
      std::string op = lex_.Next().text;
      STRATICA_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      CompareOp cmp = CompareOp::kEq;
      if (op == "<>" || op == "!=") cmp = CompareOp::kNe;
      else if (op == "<") cmp = CompareOp::kLt;
      else if (op == "<=") cmp = CompareOp::kLe;
      else if (op == ">") cmp = CompareOp::kGt;
      else if (op == ">=") cmp = CompareOp::kGe;
      return Cmp(cmp, std::move(left), std::move(right));
    }
    if (lex_.Accept("BETWEEN")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      STRATICA_RETURN_NOT_OK(lex_.Expect("AND"));
      STRATICA_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr left_copy = CloneExpr(left);  // sequenced before the moves below
      ExprPtr ge = Cmp(CompareOp::kGe, std::move(left_copy), std::move(lo));
      ExprPtr le = Cmp(CompareOp::kLe, std::move(left), std::move(hi));
      return And(std::move(ge), std::move(le));
    }
    if (lex_.Accept("LIKE")) {
      if (lex_.Peek().type != Tok::kString)
        return Status::ParseError("LIKE requires a string literal pattern");
      return Like(std::move(left), lex_.Next().raw);
    }
    bool negated_in = false;
    if (lex_.Is("NOT")) {
      // could be NOT IN
      auto save = lex_.Save();
      lex_.Accept("NOT");
      if (lex_.Is("IN")) {
        negated_in = true;
      } else {
        lex_.Restore(save);
        return left;
      }
    }
    if (lex_.Accept("IN")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      std::vector<Value> values;
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr lit, ParsePrimary());
        if (lit->kind != ExprKind::kLiteral)
          return Status::ParseError("IN list must contain literals");
        values.push_back(lit->literal);
      } while (lex_.Accept(","));
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return InList(std::move(left), std::move(values), negated_in);
    }
    if (lex_.Accept("IS")) {
      bool negated = lex_.Accept("NOT");
      STRATICA_RETURN_NOT_OK(lex_.Expect("NULL"));
      return IsNull(std::move(left), negated);
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      if (lex_.Accept("+")) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        left = Arith(ArithOp::kAdd, std::move(left), std::move(r));
      } else if (lex_.Accept("-")) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        left = Arith(ArithOp::kSub, std::move(left), std::move(r));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      if (lex_.Accept("*")) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        left = Arith(ArithOp::kMul, std::move(left), std::move(r));
      } else if (lex_.Accept("/")) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        left = Arith(ArithOp::kDiv, std::move(left), std::move(r));
      } else if (lex_.Accept("%")) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        left = Arith(ArithOp::kMod, std::move(left), std::move(r));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (lex_.Accept("-")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      if (e->kind == ExprKind::kLiteral) {
        if (e->literal.type() == TypeId::kFloat64)
          return Lit(Value::Float64(-e->literal.f64()));
        return Lit(Value::Int64(-e->literal.i64()));
      }
      return Arith(ArithOp::kSub, Lit(Value::Int64(0)), std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    if (t.type == Tok::kNumber) {
      std::string raw = lex_.Next().raw;
      if (raw.find('.') != std::string::npos || raw.find('e') != std::string::npos ||
          raw.find('E') != std::string::npos) {
        return Lit(Value::Float64(std::strtod(raw.c_str(), nullptr)));
      }
      return Lit(Value::Int64(std::strtoll(raw.c_str(), nullptr, 10)));
    }
    if (t.type == Tok::kString) {
      return Lit(Value::String(lex_.Next().raw));
    }
    if (lex_.Accept("(")) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return e;
    }
    if (t.type != Tok::kIdent)
      return Status::ParseError("unexpected token '", t.raw, "'");

    // Keyword literals and functions.
    if (lex_.Accept("NULL")) return Lit(Value::Null(TypeId::kInt64));
    if (lex_.Accept("TRUE")) return Lit(Value::Bool(true));
    if (lex_.Accept("FALSE")) return Lit(Value::Bool(false));
    if (lex_.Is("DATE")) {
      // DATE '2012-08-21' is a literal; a bare `date` is a column name.
      auto save = lex_.Save();
      lex_.Accept("DATE");
      if (lex_.Peek().type == Tok::kString) {
        STRATICA_ASSIGN_OR_RETURN(int64_t days, ParseDate(lex_.Next().raw));
        return Lit(Value::Date(days));
      }
      lex_.Restore(save);
    }
    if (lex_.Accept("EXTRACT")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      bool year = lex_.Accept("YEAR");
      if (!year) STRATICA_RETURN_NOT_OK(lex_.Expect("MONTH"));
      STRATICA_RETURN_NOT_OK(lex_.Expect("FROM"));
      STRATICA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return Func(year ? FuncKind::kExtractYear : FuncKind::kExtractMonth,
                  {std::move(arg)});
    }
    if (lex_.Accept("YEAR_MONTH")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      STRATICA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return Func(FuncKind::kYearMonth, {std::move(arg)});
    }
    if (lex_.Accept("HASH")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      std::vector<ExprPtr> args;
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (lex_.Accept(","));
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return Func(FuncKind::kHash, std::move(args));
    }
    if (lex_.Accept("ABS")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      STRATICA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      return Func(FuncKind::kAbs, {std::move(arg)});
    }

    // Plain (possibly qualified) column reference. Clause keywords cannot
    // name columns (catches "SELECT FROM t"-style mistakes early).
    if (IsClauseKeyword(t.text))
      return Status::ParseError("unexpected keyword '", t.raw, "'");
    std::string name = lex_.Next().raw;
    if (lex_.Accept(".")) {
      name += "." + lex_.Next().raw;
    }
    return Col(name);
  }

  // --- aggregate / window parsing for select items ---------------------------
  bool PeekAggName(AggKind* kind) {
    static const std::pair<const char*, AggKind> kAggs[] = {
        {"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
        {"AVG", AggKind::kAvg},     {"MIN", AggKind::kMin},
        {"MAX", AggKind::kMax}};
    for (const auto& [name, k] : kAggs) {
      if (lex_.Is(name)) {
        *kind = k;
        return true;
      }
    }
    return false;
  }

  Result<AggCall> ParseAggCall(AggKind kind) {
    AggCall call;
    call.kind = kind;
    lex_.Next();  // the function name
    STRATICA_RETURN_NOT_OK(lex_.Expect("("));
    if (kind == AggKind::kCount && lex_.Accept("*")) {
      call.kind = AggKind::kCountStar;
    } else {
      if (lex_.Accept("DISTINCT")) {
        if (kind != AggKind::kCount)
          return Status::NotImplemented("DISTINCT only supported in COUNT");
        call.kind = AggKind::kCountDistinct;
      }
      STRATICA_ASSIGN_OR_RETURN(call.arg, ParseExpr());
    }
    STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
    return call;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (lex_.Accept("*")) {
      item.kind = SelectItem::Kind::kStar;
      return item;
    }
    AggKind agg_kind;
    bool is_window = lex_.Is("ROW_NUMBER") || lex_.Is("RANK") || lex_.Is("DENSE_RANK");
    if (is_window || PeekAggName(&agg_kind)) {
      if (is_window) {
        WindowCall w;
        if (lex_.Accept("ROW_NUMBER")) w.func = WindowFunc::kRowNumber;
        else if (lex_.Accept("RANK")) w.func = WindowFunc::kRank;
        else { lex_.Accept("DENSE_RANK"); w.func = WindowFunc::kDenseRank; }
        STRATICA_RETURN_NOT_OK(lex_.Expect("("));
        STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
        STRATICA_RETURN_NOT_OK(ParseOverClause(&w));
        item.kind = SelectItem::Kind::kWindow;
        item.window = std::move(w);
      } else {
        STRATICA_ASSIGN_OR_RETURN(AggCall call, ParseAggCall(agg_kind));
        if (lex_.Is("OVER")) {
          WindowCall w;
          switch (call.kind) {
            case AggKind::kSum: w.func = WindowFunc::kSum; break;
            case AggKind::kAvg: w.func = WindowFunc::kAvg; break;
            case AggKind::kMin: w.func = WindowFunc::kMin; break;
            case AggKind::kMax: w.func = WindowFunc::kMax; break;
            default: w.func = WindowFunc::kCount; break;
          }
          w.arg = call.arg;
          STRATICA_RETURN_NOT_OK(ParseOverClause(&w));
          item.kind = SelectItem::Kind::kWindow;
          item.window = std::move(w);
        } else {
          item.kind = SelectItem::Kind::kAgg;
          item.agg = std::move(call);
        }
      }
    } else {
      item.kind = SelectItem::Kind::kExpr;
      STRATICA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (lex_.Accept("AS")) {
      item.alias = lex_.Next().raw;
    } else if (lex_.Peek().type == Tok::kIdent && !IsClauseKeyword(lex_.Peek().text)) {
      item.alias = lex_.Next().raw;
    }
    return item;
  }

  Status ParseOverClause(WindowCall* w) {
    STRATICA_RETURN_NOT_OK(lex_.Expect("OVER"));
    STRATICA_RETURN_NOT_OK(lex_.Expect("("));
    if (lex_.Accept("PARTITION")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        w->partition_by.push_back(std::move(e));
      } while (lex_.Accept(","));
    }
    if (lex_.Accept("ORDER")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool desc = lex_.Accept("DESC");
        if (!desc) lex_.Accept("ASC");
        w->order_by.emplace_back(std::move(e), desc);
      } while (lex_.Accept(","));
    }
    return lex_.Expect(")");
  }

  static bool IsClauseKeyword(const std::string& up) {
    static const char* kWords[] = {"FROM",  "WHERE", "GROUP", "HAVING", "ORDER",
                                   "LIMIT", "JOIN",  "LEFT",  "RIGHT",  "FULL",
                                   "INNER", "ON",    "AS",    "OFFSET", "UNION"};
    for (const char* w : kWords) {
      if (up == w) return true;
    }
    return false;
  }

  // --- statements -------------------------------------------------------------
  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    STRATICA_RETURN_NOT_OK(lex_.Expect("SELECT"));
    stmt.distinct = lex_.Accept("DISTINCT");
    do {
      STRATICA_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (lex_.Accept(","));

    if (lex_.Accept("FROM")) {
      TableRef first;
      first.table = lex_.Next().raw;
      if (lex_.Peek().type == Tok::kIdent && !IsClauseKeyword(lex_.Peek().text))
        first.alias = lex_.Next().raw;
      stmt.from.push_back(std::move(first));
      for (;;) {
        JoinType jt = JoinType::kInner;
        if (lex_.Accept(",")) {
          jt = JoinType::kInner;  // comma join; predicate comes from WHERE
          TableRef ref;
          ref.table = lex_.Next().raw;
          if (lex_.Peek().type == Tok::kIdent && !IsClauseKeyword(lex_.Peek().text))
            ref.alias = lex_.Next().raw;
          ref.join_type = jt;
          stmt.from.push_back(std::move(ref));
          continue;
        }
        if (lex_.Accept("LEFT")) {
          lex_.Accept("OUTER");
          jt = JoinType::kLeft;
        } else if (lex_.Accept("RIGHT")) {
          lex_.Accept("OUTER");
          jt = JoinType::kRight;
        } else if (lex_.Accept("FULL")) {
          lex_.Accept("OUTER");
          jt = JoinType::kFull;
        } else if (lex_.Accept("INNER")) {
          jt = JoinType::kInner;
        } else if (!lex_.Is("JOIN")) {
          break;
        }
        STRATICA_RETURN_NOT_OK(lex_.Expect("JOIN"));
        TableRef ref;
        ref.join_type = jt;
        ref.table = lex_.Next().raw;
        if (lex_.Peek().type == Tok::kIdent && !IsClauseKeyword(lex_.Peek().text))
          ref.alias = lex_.Next().raw;
        STRATICA_RETURN_NOT_OK(lex_.Expect("ON"));
        STRATICA_ASSIGN_OR_RETURN(ref.on, ParseExpr());
        stmt.from.push_back(std::move(ref));
      }
    }
    if (lex_.Accept("WHERE")) {
      STRATICA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (lex_.Accept("GROUP")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (lex_.Accept(","));
    }
    if (lex_.Accept("HAVING")) {
      STRATICA_ASSIGN_OR_RETURN(stmt.having, ParseHaving(&stmt.having_aggs));
    }
    if (lex_.Accept("ORDER")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool desc = lex_.Accept("DESC");
        if (!desc) lex_.Accept("ASC");
        stmt.order_by.emplace_back(std::move(e), desc);
      } while (lex_.Accept(","));
    }
    if (lex_.Accept("LIMIT")) {
      stmt.limit = std::strtoll(lex_.Next().raw.c_str(), nullptr, 10);
    }
    if (lex_.Accept("OFFSET")) {
      stmt.offset = std::strtoll(lex_.Next().raw.c_str(), nullptr, 10);
    }
    return stmt;
  }

  /// HAVING expressions may contain aggregate calls; each becomes a hidden
  /// column reference "$having<i>" resolved by the planner.
  Result<ExprPtr> ParseHaving(std::vector<AggCall>* aggs) {
    // Reuse the expression parser but intercept aggregate names at primary
    // level via a recursive helper.
    return ParseHavingOr(aggs);
  }

  Result<ExprPtr> ParseHavingOr(std::vector<AggCall>* aggs) {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseHavingCmp(aggs));
    while (lex_.Accept("AND") || lex_.Accept("OR")) {
      // (Simplification: HAVING conjunctions only; OR folded as AND of
      // comparisons is rejected below.)
      STRATICA_ASSIGN_OR_RETURN(ExprPtr right, ParseHavingCmp(aggs));
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseHavingCmp(std::vector<AggCall>* aggs) {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr left, ParseHavingOperand(aggs));
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"<=", CompareOp::kLe},
        {">=", CompareOp::kGe}, {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& [name, op] : kOps) {
      if (lex_.Accept(name)) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr right, ParseHavingOperand(aggs));
        return Cmp(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseHavingOperand(std::vector<AggCall>* aggs) {
    AggKind kind;
    if (PeekAggName(&kind)) {
      STRATICA_ASSIGN_OR_RETURN(AggCall call, ParseAggCall(kind));
      aggs->push_back(std::move(call));
      return Col("$having" + std::to_string(aggs->size() - 1));
    }
    return ParseAdditive();
  }

  Status ParseInsert(InsertStmt* stmt) {
    STRATICA_RETURN_NOT_OK(lex_.Expect("INTO"));
    stmt->table = lex_.Next().raw;
    STRATICA_RETURN_NOT_OK(lex_.Expect("VALUES"));
    do {
      STRATICA_RETURN_NOT_OK(lex_.Expect("("));
      std::vector<ExprPtr> row;
      do {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (lex_.Accept(","));
      STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      stmt->rows.push_back(std::move(row));
    } while (lex_.Accept(","));
    return Status::OK();
  }

  Status ParseCopy(CopyStmt* stmt) {
    stmt->table = lex_.Next().raw;
    STRATICA_RETURN_NOT_OK(lex_.Expect("FROM"));
    if (lex_.Peek().type != Tok::kString)
      return Status::ParseError("COPY requires a quoted file path");
    stmt->path = lex_.Next().raw;
    if (lex_.Accept("DELIMITER")) {
      if (lex_.Peek().type != Tok::kString || lex_.Peek().raw.size() != 1)
        return Status::ParseError("DELIMITER must be a single character");
      stmt->delimiter = lex_.Next().raw[0];
    }
    stmt->direct = lex_.Accept("DIRECT");
    return Status::OK();
  }

  Status ParseUpdate(UpdateStmt* stmt) {
    stmt->table = lex_.Next().raw;
    STRATICA_RETURN_NOT_OK(lex_.Expect("SET"));
    do {
      std::string col = lex_.Next().raw;
      STRATICA_RETURN_NOT_OK(lex_.Expect("="));
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(col, std::move(e));
    } while (lex_.Accept(","));
    if (lex_.Accept("WHERE")) {
      STRATICA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return Status::OK();
  }

  Status ParseCreateTable(CreateTableStmt* stmt) {
    stmt->def.name = lex_.Next().raw;
    STRATICA_RETURN_NOT_OK(lex_.Expect("("));
    do {
      ColumnDef col;
      col.name = lex_.Next().raw;
      std::string type_name = lex_.Next().raw;
      if (lex_.Accept("(")) {  // VARCHAR(80)
        lex_.Next();
        STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
      }
      STRATICA_ASSIGN_OR_RETURN(col.type, TypeFromName(type_name));
      if (lex_.Accept("NOT")) {
        STRATICA_RETURN_NOT_OK(lex_.Expect("NULL"));
        col.nullable = false;
      }
      stmt->def.columns.push_back(std::move(col));
    } while (lex_.Accept(","));
    STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
    if (lex_.Accept("PARTITION")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      STRATICA_ASSIGN_OR_RETURN(stmt->def.partition_by, ParseExpr());
    }
    return Status::OK();
  }

  Status ParseCreateProjection(CreateProjectionStmt* stmt) {
    ProjectionDef& def = stmt->def;
    def.name = lex_.Next().raw;
    STRATICA_RETURN_NOT_OK(lex_.Expect("("));
    std::vector<std::pair<std::string, EncodingId>> cols;
    do {
      std::string name = lex_.Next().raw;
      if (lex_.Accept(".")) name += "." + lex_.Next().raw;  // prejoin dim col
      EncodingId enc = EncodingId::kAuto;
      if (lex_.Accept("ENCODING")) {
        STRATICA_ASSIGN_OR_RETURN(enc, EncodingFromName(lex_.Next().raw));
      }
      cols.emplace_back(name, enc);
    } while (lex_.Accept(","));
    STRATICA_RETURN_NOT_OK(lex_.Expect(")"));
    STRATICA_RETURN_NOT_OK(lex_.Expect("AS"));
    STRATICA_RETURN_NOT_OK(lex_.Expect("SELECT"));
    // The select list must repeat the projection columns; we skip it.
    do {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr ignored, ParseExpr());
      (void)ignored;
    } while (lex_.Accept(","));
    STRATICA_RETURN_NOT_OK(lex_.Expect("FROM"));
    def.anchor_table = lex_.Next().raw;
    for (auto& [name, enc] : cols) def.columns.push_back({name, -1, enc});
    if (lex_.Accept("ORDER")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      do {
        std::string col = lex_.Next().raw;
        bool found = false;
        for (size_t i = 0; i < def.columns.size(); ++i) {
          if (def.columns[i].name == col) {
            def.sort_columns.push_back(static_cast<uint32_t>(i));
            found = true;
          }
        }
        if (!found)
          return Status::AnalysisError("ORDER BY column not in projection: ", col);
      } while (lex_.Accept(","));
    }
    if (lex_.Accept("UNSEGMENTED")) {
      lex_.Accept("ALL");
      lex_.Accept("NODES");
      def.segmentation.replicated = true;
    } else if (lex_.Accept("SEGMENTED")) {
      STRATICA_RETURN_NOT_OK(lex_.Expect("BY"));
      STRATICA_ASSIGN_OR_RETURN(def.segmentation.expr, ParseExpr());
    } else {
      // Default: hash-segment by the first column.
      def.segmentation.expr = Func(FuncKind::kHash, {Col(cols[0].first)});
    }
    if (lex_.Accept("KSAFE")) {
      stmt->k_safe = static_cast<uint32_t>(std::strtoul(lex_.Next().raw.c_str(), nullptr, 10));
    }
    return Status::OK();
  }

  Lexer lex_;
};

}  // namespace

Result<Statement> ParseSql(const std::string& sql) { return Parser(sql).Parse(); }

}  // namespace stratica
