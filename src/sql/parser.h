// SQL front end. The paper reuses PostgreSQL's parser (Section 2.1); we
// implement a compact recursive-descent parser for the dialect Stratica
// needs: CREATE TABLE / CREATE PROJECTION / DROP TABLE, INSERT, COPY,
// SELECT (joins, WHERE, GROUP BY/HAVING, aggregates incl. DISTINCT,
// window functions, ORDER BY, LIMIT), UPDATE, DELETE, EXPLAIN.
#ifndef STRATICA_SQL_PARSER_H_
#define STRATICA_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/agg.h"
#include "exec/analytic.h"
#include "exec/join.h"
#include "expr/expr.h"

namespace stratica {

struct AggCall {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  // null for COUNT(*)
};

struct WindowCall {
  WindowFunc func = WindowFunc::kRowNumber;
  ExprPtr arg;  // null for ranking functions / COUNT(*)
  std::vector<ExprPtr> partition_by;
  std::vector<std::pair<ExprPtr, bool>> order_by;  // (expr, descending)
};

struct SelectItem {
  enum class Kind { kExpr, kAgg, kWindow, kStar } kind = Kind::kExpr;
  ExprPtr expr;
  AggCall agg;
  WindowCall window;
  std::string alias;
};

struct TableRef {
  std::string table;
  std::string alias;
  JoinType join_type = JoinType::kInner;  // join with the tables before it
  ExprPtr on;                             // null for the first table
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // empty: SELECT <exprs>
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;                        // may contain AggCall placeholders
  std::vector<AggCall> having_aggs;      // aggs referenced by `having` via
                                         // column refs named "$having<i>"
  std::vector<std::pair<ExprPtr, bool>> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  // literal expressions
};

struct CopyStmt {
  std::string table;
  std::string path;      // csv file path
  char delimiter = ',';
  bool direct = false;   // COPY ... DIRECT: load straight to the ROS (§7)
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // null = delete all
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct CreateTableStmt {
  TableDef def;  // partition_by unbound
};

struct CreateProjectionStmt {
  ProjectionDef def;  // segmentation expr unbound; columns unresolved
  uint32_t k_safe = UINT32_MAX;  // UINT32_MAX = cluster default
};

struct Statement {
  enum class Type {
    kSelect,
    kInsert,
    kCopy,
    kDelete,
    kUpdate,
    kCreateTable,
    kCreateProjection,
    kDropTable,
    kExplain,
  } type = Type::kSelect;
  SelectStmt select;  // also the payload of kExplain
  InsertStmt insert;
  CopyStmt copy;
  DeleteStmt del;
  UpdateStmt update;
  CreateTableStmt create_table;
  CreateProjectionStmt create_projection;
  std::string drop_table;
};

/// Parse one SQL statement (trailing semicolon optional).
Result<Statement> ParseSql(const std::string& sql);

}  // namespace stratica

#endif  // STRATICA_SQL_PARSER_H_
