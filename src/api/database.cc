#include "api/database.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "exec/simple_ops.h"
#include "storage/encoding.h"

namespace stratica {

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream out;
  if (!message.empty()) out << message << "\n";
  if (column_names.empty()) return out.str();
  for (size_t c = 0; c < column_names.size(); ++c) {
    if (c) out << " | ";
    out << column_names[c];
  }
  out << "\n";
  for (size_t c = 0; c < column_names.size(); ++c) {
    if (c) out << "-+-";
    out << std::string(column_names[c].size(), '-');
  }
  out << "\n";
  out << rows.ToString(max_rows);
  return out.str();
}

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  scheduler_ = std::make_unique<Scheduler>(options_.worker_threads);
  hedge_deadline_ms_.store(options_.hedge_deadline_ms, std::memory_order_relaxed);
  fs_ = options_.fs ? options_.fs : std::make_shared<MemFileSystem>();
  ClusterConfig ccfg;
  ccfg.num_nodes = options_.num_nodes;
  ccfg.k_safety = options_.k_safety;
  ccfg.local_segments_per_node = options_.local_segments_per_node;
  ccfg.tuple_mover = options_.tuple_mover;
  ccfg.direct_ros_row_threshold = options_.direct_ros_row_threshold;
  cluster_ = std::make_unique<Cluster>(ccfg, fs_.get(), &catalog_);
  planner_ = std::make_unique<Planner>(cluster_.get());
  budget_ = std::make_unique<ResourceBudget>(options_.query_memory_budget);
  ResourceManagerConfig rmcfg;
  rmcfg.memory_pool_bytes = options_.query_memory_budget;
  rmcfg.max_concurrent_queries = options_.max_concurrent_queries;
  rmcfg.admission_timeout = std::chrono::milliseconds(options_.admission_timeout_ms);
  resource_manager_ = std::make_unique<ResourceManager>(rmcfg);
  spill_seq_ = std::make_shared<std::atomic<uint64_t>>(0);
  if (options_.tuple_mover_interval_ms > 0) StartBackgroundTupleMover();
}

Database::~Database() { StopBackgroundTupleMover(); }

/// Per-query execution environment, built at admission. stats/budget are
/// heap-held so the session stays movable (ExecStats is all atomics).
struct Database::QuerySession {
  AdmissionTicket ticket;
  Epoch epoch = 0;
  std::unique_ptr<ExecStats> stats;
  std::unique_ptr<ResourceBudget> budget;
};

Result<Database::QuerySession> Database::AdmitQuery(size_t reserve_bytes) {
  QuerySession session;
  STRATICA_ASSIGN_OR_RETURN(session.ticket, resource_manager_->Admit(reserve_bytes));
  // The snapshot is pinned here, at admission: a queued query sees data
  // committed while it waited, and holds exactly this epoch for its whole
  // run no matter what commits later (lock-free snapshot reads, Section 5).
  session.epoch = cluster_->epochs()->LatestQueryableEpoch();
  session.stats = std::make_unique<ExecStats>();
  session.budget = std::make_unique<ResourceBudget>(session.ticket.bytes());
  return session;
}

ExecContext Database::SessionContext(QuerySession* session) {
  ExecContext ctx;
  ctx.fs = fs_.get();
  ctx.epoch = session->epoch;
  ctx.budget = session->budget.get();
  ctx.stats = session->stats.get();
  ctx.spill_seq = spill_seq_;
  ctx.scheduler = scheduler_.get();
  ctx.intra_node_parallelism = options_.intra_node_parallelism;
  ctx.sort_memory_bytes = options_.sort_memory_budget;
  ctx.hedge_deadline_ms = hedge_deadline_ms_.load(std::memory_order_relaxed);
  ctx.hedge_max_attempts = options_.hedge_max_attempts;
  return ctx;
}

void Database::MergeSessionStats(const QuerySession& session) {
  stats_.MergeFrom(*session.stats);
}

ExecContext Database::MakeExecContext() {
  ExecContext ctx;
  ctx.fs = fs_.get();
  ctx.epoch = cluster_->epochs()->LatestQueryableEpoch();
  ctx.budget = budget_.get();
  ctx.stats = &stats_;
  ctx.spill_seq = spill_seq_;
  ctx.scheduler = scheduler_.get();
  ctx.intra_node_parallelism = options_.intra_node_parallelism;
  ctx.sort_memory_bytes = options_.sort_memory_budget;
  ctx.hedge_deadline_ms = hedge_deadline_ms_.load(std::memory_order_relaxed);
  ctx.hedge_max_attempts = options_.hedge_max_attempts;
  return ctx;
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  STRATICA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  switch (stmt.type) {
    case Statement::Type::kSelect:
      return RunSelect(stmt.select);
    case Statement::Type::kExplain: {
      // Plans but never executes, so it bypasses admission.
      STRATICA_ASSIGN_OR_RETURN(
          std::string tree,
          planner_->Explain(stmt.select, options_.intra_node_parallelism));
      QueryResult result;
      result.message = tree;
      return result;
    }
    // DML admits at the statement level with the floor reservation (its
    // working set is the statement's own row block, not a plan tree — no
    // exec session needed, just the reservation and a concurrency slot).
    case Statement::Type::kInsert: {
      STRATICA_ASSIGN_OR_RETURN(AdmissionTicket ticket, resource_manager_->Admit(0));
      return RunInsert(stmt.insert);
    }
    case Statement::Type::kCopy: {
      STRATICA_ASSIGN_OR_RETURN(AdmissionTicket ticket, resource_manager_->Admit(0));
      return RunCopy(stmt.copy);
    }
    case Statement::Type::kDelete: {
      STRATICA_ASSIGN_OR_RETURN(AdmissionTicket ticket, resource_manager_->Admit(0));
      return RunDelete(stmt.del);
    }
    case Statement::Type::kUpdate: {
      STRATICA_ASSIGN_OR_RETURN(AdmissionTicket ticket, resource_manager_->Admit(0));
      return RunUpdate(stmt.update);
    }
    case Statement::Type::kCreateTable: {
      STRATICA_RETURN_NOT_OK(
          cluster_->CreateTableWithSuperProjection(stmt.create_table.def));
      QueryResult result;
      result.message = "CREATE TABLE";
      return result;
    }
    case Statement::Type::kCreateProjection: {
      STRATICA_RETURN_NOT_OK(
          cluster_->CreateProjectionWithBuddies(stmt.create_projection.def));
      // Populate from existing data if the anchor table already has rows.
      // A refresh failure must surface AND undo the DDL: a half-created,
      // unpopulated projection would answer queries with missing rows.
      STRATICA_ASSIGN_OR_RETURN(ProjectionDef stored,
                                catalog_.GetProjection(stmt.create_projection.def.name));
      Status refreshed = cluster_->RefreshProjection(stored.name);
      for (uint32_t k = 1; refreshed.ok() && k <= options_.k_safety; ++k) {
        refreshed = cluster_->RefreshProjection(stored.name + "_b" + std::to_string(k));
      }
      if (!refreshed.ok()) {
        (void)cluster_->DropProjectionWithBuddies(stored.name);
        return refreshed;
      }
      QueryResult result;
      result.message = "CREATE PROJECTION";
      return result;
    }
    case Statement::Type::kDropTable: {
      STRATICA_RETURN_NOT_OK(cluster_->DropTable(stmt.drop_table));
      QueryResult result;
      result.message = "DROP TABLE";
      return result;
    }
  }
  return Status::Internal("unhandled statement type");
}

Result<QueryResult> Database::RunSelect(const SelectStmt& stmt) {
  // Degraded execution (DESIGN.md §10): a persistent read failure mid-scan
  // has already quarantined the failing projection copy, so planning again
  // routes that segment to a buddy. Bounded replan-retries keep the query
  // alive through K quarantines; when no healthy copy remains the planner
  // itself returns ClusterUnavailable, which is terminal.
  constexpr int kMaxPlanAttempts = 3;
  Status last;
  for (int attempt = 0; attempt < kMaxPlanAttempts; ++attempt) {
    STRATICA_ASSIGN_OR_RETURN(
        PhysicalPlan plan,
        planner_->PlanSelect(stmt, options_.intra_node_parallelism));
    STRATICA_ASSIGN_OR_RETURN(QuerySession session,
                              AdmitQuery(plan.estimated_memory_bytes));
    // The admission reservation is the one budget covering the query's
    // worker fan-out (DESIGN.md §12): when the pool granted less than the
    // plan assumed, replan at the proportionally smaller fan-out so
    // per-fragment memory stays as estimated.
    size_t allowed = ResourceManager::AllowedFanout(
        session.ticket.bytes(), plan.estimated_memory_bytes, plan.fanout);
    if (allowed < plan.fanout) {
      STRATICA_ASSIGN_OR_RETURN(plan, planner_->PlanSelect(stmt, allowed));
    }
    if (attempt > 0) session.stats->reads_failed_over.fetch_add(1);
    // Order-carrying scan shapes planned serial on purpose (DESIGN.md §12):
    // surface the bypass so fan-out accounting is auditable.
    if (plan.morsel_bypass) session.stats->morsel_bypasses.fetch_add(1);
    ExecContext ctx = SessionContext(&session);
    ctx.intra_node_parallelism = plan.fanout;
    auto rows = DrainOperator(plan.root.get(), &ctx);
    // Tear the operator tree down before the session: on the error path
    // DrainOperator leaves exchange producer threads running, and they hold
    // pointers to the session's per-query stats until joined by the tree's
    // destructor. (plan.column_names/types survive the root's teardown.)
    plan.root.reset();
    MergeSessionStats(session);
    if (rows.ok()) {
      QueryResult result;
      result.column_names = plan.column_names;
      result.column_types = plan.column_types;
      result.rows = std::move(rows).value();
      return result;
    }
    last = rows.status();
    bool retryable = last.code() == StatusCode::kIoError ||
                     last.code() == StatusCode::kCorruption;
    if (!retryable) return last;
  }
  return last;
}

Result<LoadResult> Database::Load(const std::string& table, const RowBlock& rows,
                                  bool direct) {
  auto txn = cluster_->txns()->Begin();
  auto loaded = cluster_->Load(table, rows, txn.get(), direct);
  if (!loaded.ok()) {
    cluster_->txns()->Rollback(txn);
    return loaded.status();
  }
  STRATICA_ASSIGN_OR_RETURN(Epoch ignored, cluster_->Commit(txn));
  (void)ignored;
  return loaded;
}

Status Database::RunTupleMover() { return cluster_->RunTupleMover(); }

void Database::StartBackgroundTupleMover() {
  std::lock_guard lock(tm_mu_);
  if (tm_task_.joinable()) return;  // already running
  auto stop = std::make_shared<std::atomic<bool>>(false);
  tm_stop_ = stop;
  uint32_t interval_ms =
      options_.tuple_mover_interval_ms > 0 ? options_.tuple_mover_interval_ms : 100;
  // A pinned task on the unified pool (DESIGN.md §12): background storage
  // work shares the query scheduler's cached reservoir instead of owning a
  // raw thread.
  tm_task_ = scheduler_->StartPinned([this, stop, interval_ms] {
    std::unique_lock lock(tm_mu_);
    while (!stop->load()) {
      if (tm_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                          [&] { return stop->load(); })) {
        break;
      }
      lock.unlock();
      // Failures here are retried next tick; the mover skips busy tables
      // on its own (T-lock timeout in Cluster::RunTupleMover).
      (void)cluster_->RunTupleMover();
      lock.lock();
    }
  });
}

void Database::StopBackgroundTupleMover() {
  Scheduler::Pinned finished;
  {
    std::lock_guard lock(tm_mu_);
    if (!tm_task_.joinable()) return;
    tm_stop_->store(true);
    // Hand the task out under the mutex so a concurrent Start sees the
    // service as stopped and can launch a fresh one (with its own flag).
    finished = std::move(tm_task_);
  }
  tm_cv_.notify_all();
  finished.Join();
}

Result<QueryResult> Database::RunInsert(const InsertStmt& stmt) {
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(stmt.table));
  RowBlock rows(def.ToBindSchema().types);
  // One-row carrier block so literal expressions evaluate to one value.
  RowBlock one({TypeId::kInt64});
  one.columns[0].ints.push_back(0);
  for (const auto& row : stmt.rows) {
    if (row.size() != def.columns.size())
      return Status::AnalysisError("INSERT arity mismatch for ", stmt.table);
    for (size_t c = 0; c < row.size(); ++c) {
      ExprPtr e = CloneExpr(row[c]);
      STRATICA_RETURN_NOT_OK(BindExpr(e, BindSchema{}));
      STRATICA_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, one, 0));
      // Integral literals coerce to the column's date/timestamp types.
      if (!v.is_null() && StorageClassOf(def.columns[c].type) == StorageClass::kInt64 &&
          StorageClassOf(v.type()) == StorageClass::kInt64) {
        v = Value::OfInt(def.columns[c].type, v.i64());
      }
      if (!v.is_null() && def.columns[c].type == TypeId::kFloat64 &&
          v.type() == TypeId::kInt64) {
        v = Value::Float64(static_cast<double>(v.i64()));
      }
      if (!v.is_null() && def.columns[c].type == TypeId::kDate &&
          v.type() == TypeId::kString) {
        STRATICA_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.str()));
        v = Value::Date(days);
      }
      rows.columns[c].Append(v);
    }
  }
  STRATICA_ASSIGN_OR_RETURN(LoadResult loaded, Load(stmt.table, rows));
  QueryResult result;
  result.affected_rows = loaded.rows_loaded;
  result.message = "INSERT " + std::to_string(loaded.rows_loaded);
  return result;
}

Result<QueryResult> Database::RunCopy(const CopyStmt& stmt) {
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(stmt.table));
  std::ifstream in(stmt.path);
  if (!in) return Status::IoError("cannot open ", stmt.path);
  RowBlock rows(def.ToBindSchema().types);
  std::string line;
  uint64_t lineno = 0;
  std::vector<RejectedRecord> rejected;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == stmt.delimiter) {
        fields.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (fields.size() != def.columns.size()) {
      rejected.push_back({lineno, "field count mismatch"});
      continue;
    }
    bool ok = true;
    std::vector<Value> values;
    for (size_t c = 0; c < fields.size() && ok; ++c) {
      auto v = Value::Parse(def.columns[c].type, fields[c]);
      if (!v.ok()) {
        rejected.push_back({lineno, v.status().ToString()});
        ok = false;
      } else {
        values.push_back(std::move(v).value());
      }
    }
    if (!ok) continue;
    for (size_t c = 0; c < values.size(); ++c) rows.columns[c].Append(values[c]);
  }
  STRATICA_ASSIGN_OR_RETURN(LoadResult loaded, Load(stmt.table, rows, stmt.direct));
  QueryResult result;
  result.affected_rows = loaded.rows_loaded;
  result.message = "COPY " + std::to_string(loaded.rows_loaded) + " (rejected " +
                   std::to_string(rejected.size() + loaded.rejected.size()) + ")";
  return result;
}

Result<uint64_t> Database::ApplyDelete(const std::string& table, const ExprPtr& where,
                                       Transaction* txn, RowBlock* deleted_rows) {
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(table));
  STRATICA_RETURN_NOT_OK(
      cluster_->locks()->Acquire(txn->id(), table, LockMode::kX));
  Epoch snapshot = txn->snapshot_epoch();
  uint64_t deleted = 0;
  bool captured = false;

  // Super projections first: they can always evaluate the predicate and
  // capture the deleted rows' content, which narrow projections (missing
  // predicate columns) then delete by content matching.
  auto projections = catalog_.ProjectionsForTable(table);
  std::stable_sort(projections.begin(), projections.end(),
                   [](const ProjectionDef& a, const ProjectionDef& b) {
                     auto rank = [](const ProjectionDef& p) {
                       return (p.is_super && !p.IsPrejoin()) ? 0 : 1;
                     };
                     return rank(a) < rank(b);
                   });

  for (const auto& proj : projections) {
    // Per-projection content multiset (only built for the fallback path).
    std::map<std::string, uint32_t> content_budget;
    bool use_content_match = false;
    if (where) {
      ExprPtr probe = CloneExpr(where);
      BindSchema schema;
      for (const auto& pc : proj.columns) {
        int tc = def.FindColumn(pc.name);
        schema.Add(pc.name, tc >= 0 ? def.columns[tc].type : TypeId::kInt64);
      }
      use_content_match = !BindExpr(probe, schema).ok();
    }
    if (use_content_match) {
      if (!captured || !deleted_rows)
        return Status::NotImplemented(
            "DELETE predicate references columns missing from projection ",
            proj.name, " and no super capture is available");
      for (size_t r = 0; r < deleted_rows->NumRows(); ++r) {
        std::string key;
        for (const auto& pc : proj.columns) {
          int tc = def.FindColumn(pc.name);
          if (tc < 0) continue;  // prejoined dimension column
          EncodeValue(&key, deleted_rows->columns[tc].GetValue(r));
        }
        ++content_budget[key];
      }
    }

    for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
      Node* node = cluster_->node(n);
      if (!node->up()) continue;
      auto* ps = node->GetStorage(proj.name);
      if (!ps) continue;
      RowBlock rows;
      std::vector<Epoch> dels;
      std::vector<std::pair<uint64_t, uint64_t>> positions;
      STRATICA_RETURN_NOT_OK(
          ReadProjectionRows(fs_.get(), ps, snapshot, &rows, nullptr, &dels,
                             &positions));
      std::vector<uint8_t> sel(rows.NumRows(), 1);
      if (where && !use_content_match) {
        ExprPtr pred = CloneExpr(where);
        BindSchema schema;
        for (size_t c = 0; c < ps->config().column_names.size(); ++c)
          schema.Add(ps->config().column_names[c], ps->config().column_types[c]);
        STRATICA_RETURN_NOT_OK(BindExpr(pred, schema));
        STRATICA_RETURN_NOT_OK(EvalPredicate(*pred, rows, &sel));
      } else if (use_content_match) {
        // Resolve which table column feeds each projection column.
        std::vector<int> table_cols;
        for (const auto& pc : proj.columns) table_cols.push_back(def.FindColumn(pc.name));
        for (size_t r = 0; r < rows.NumRows(); ++r) {
          std::string key;
          for (size_t c = 0; c < proj.columns.size(); ++c) {
            if (table_cols[c] < 0) continue;
            EncodeValue(&key, rows.columns[c].GetValue(r));
          }
          auto it = content_budget.find(key);
          if (it != content_budget.end() && it->second > 0) {
            --it->second;
          } else {
            sel[r] = 0;
          }
        }
      }
      std::map<uint64_t, std::vector<uint64_t>> by_target;
      for (size_t r = 0; r < rows.NumRows(); ++r) {
        if (!sel[r] || dels[r] != 0) continue;
        by_target[positions[r].first].push_back(positions[r].second);
        if (proj.is_super && !proj.IsPrejoin() && deleted_rows && !captured) {
          // Capture table-ordered row content once (for UPDATE re-insert
          // and narrow-projection content matching).
          for (size_t tc = 0; tc < def.columns.size(); ++tc) {
            int pc = proj.FindColumn(def.columns[tc].name);
            deleted_rows->columns[tc].AppendFrom(rows.columns[pc], r);
          }
        }
      }
      for (auto& [target, pos] : by_target) {
        deleted += pos.size();
        STRATICA_RETURN_NOT_OK(ps->AddDeletes(target, pos, txn));
      }
    }
    if (proj.is_super && !proj.IsPrejoin()) captured = true;
  }
  return deleted;
}

Result<QueryResult> Database::RunDelete(const DeleteStmt& stmt) {
  auto txn = cluster_->txns()->Begin();
  RowBlock dummy;
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(stmt.table));
  RowBlock captured(def.ToBindSchema().types);
  auto deleted = ApplyDelete(stmt.table, stmt.where, txn.get(), &captured);
  if (!deleted.ok()) {
    cluster_->txns()->Rollback(txn);
    return deleted.status();
  }
  STRATICA_ASSIGN_OR_RETURN(Epoch e, cluster_->Commit(txn));
  (void)e;
  QueryResult result;
  result.affected_rows = captured.NumRows();
  result.message = "DELETE " + std::to_string(captured.NumRows());
  return result;
}

Result<QueryResult> Database::RunUpdate(const UpdateStmt& stmt) {
  // UPDATE = DELETE + INSERT (Section 3.7.1), in one transaction.
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(stmt.table));
  auto txn = cluster_->txns()->Begin();
  RowBlock old_rows(def.ToBindSchema().types);
  auto deleted = ApplyDelete(stmt.table, stmt.where, txn.get(), &old_rows);
  if (!deleted.ok()) {
    cluster_->txns()->Rollback(txn);
    return deleted.status();
  }
  // Apply assignments to the captured rows.
  RowBlock new_rows(def.ToBindSchema().types);
  BindSchema schema = def.ToBindSchema();
  std::vector<int> assigned(def.columns.size(), -1);
  std::vector<ExprPtr> exprs;
  for (const auto& [col, expr] : stmt.assignments) {
    int idx = def.FindColumn(col);
    if (idx < 0) {
      cluster_->txns()->Rollback(txn);
      return Status::AnalysisError("no such column: ", col);
    }
    ExprPtr e = CloneExpr(expr);
    Status st = BindExpr(e, schema);
    if (!st.ok()) {
      cluster_->txns()->Rollback(txn);
      return st;
    }
    assigned[idx] = static_cast<int>(exprs.size());
    exprs.push_back(e);
  }
  for (size_t c = 0; c < def.columns.size(); ++c) {
    if (assigned[c] < 0) {
      new_rows.columns[c] = old_rows.columns[c];
    } else {
      Status st = EvalExpr(*exprs[assigned[c]], old_rows, &new_rows.columns[c]);
      if (!st.ok()) {
        cluster_->txns()->Rollback(txn);
        return st;
      }
      new_rows.columns[c].type = def.columns[c].type;
    }
  }
  auto loaded = cluster_->Load(stmt.table, new_rows, txn.get());
  if (!loaded.ok()) {
    cluster_->txns()->Rollback(txn);
    return loaded.status();
  }
  STRATICA_ASSIGN_OR_RETURN(Epoch e, cluster_->Commit(txn));
  (void)e;
  QueryResult result;
  result.affected_rows = old_rows.NumRows();
  result.message = "UPDATE " + std::to_string(old_rows.NumRows());
  return result;
}

}  // namespace stratica
