// Public entry point: a Stratica database instance.
//
// Owns the catalog, the (simulated) cluster, and the SQL pipeline. Typical
// use mirrors the paper's deployment story: create tables (each gets a
// default super projection plus K buddies), bulk load, let the tuple mover
// reorganize storage in the background, and query with standard SQL.
#ifndef STRATICA_API_DATABASE_H_
#define STRATICA_API_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "opt/planner.h"
#include "sql/parser.h"

namespace stratica {

struct DatabaseOptions {
  uint32_t num_nodes = 1;
  uint32_t k_safety = 0;
  uint32_t local_segments_per_node = 3;
  size_t query_memory_budget = 256ull << 20;
  /// Per-Sort buffering ceiling before run generation spills to disk
  /// (external sort, DESIGN.md §8). 0 disables the cap.
  size_t sort_memory_budget = 64ull << 20;
  size_t intra_node_parallelism = 4;
  uint64_t direct_ros_row_threshold = 100000;
  TupleMoverConfig tuple_mover;
  /// Null = in-memory filesystem (tests, benches).
  std::shared_ptr<FileSystem> fs;
};

/// Tabular query result.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  RowBlock rows;
  uint64_t affected_rows = 0;  ///< for DML
  std::string message;         ///< DDL / EXPLAIN output

  size_t NumRows() const { return rows.NumRows(); }
  Value At(size_t row, size_t col) const { return rows.columns[col].GetValue(row); }
  std::string ToString(size_t max_rows = 50) const;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  /// Execute one SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Bulk load a block of rows (the programmatic COPY path). Set `direct`
  /// to bypass the WOS (Section 7).
  Result<LoadResult> Load(const std::string& table, const RowBlock& rows,
                          bool direct = false);

  /// One tuple-mover pass (moveout + mergeout + DV moves) on every node.
  Status RunTupleMover();

  /// Advance the Ancient History Mark per the default policy.
  Status AdvanceAhm() { return cluster_->AdvanceAhm(); }

  Cluster* cluster() { return cluster_.get(); }
  Catalog* catalog() { return &catalog_; }
  FileSystem* fs() { return fs_.get(); }
  ExecStats* stats() { return &stats_; }

  /// Execution context for hand-built operator trees (benches).
  ExecContext MakeExecContext();

 private:
  Result<QueryResult> RunSelect(const SelectStmt& stmt);
  Result<QueryResult> RunInsert(const InsertStmt& stmt);
  Result<QueryResult> RunCopy(const CopyStmt& stmt);
  Result<QueryResult> RunDelete(const DeleteStmt& stmt);
  Result<QueryResult> RunUpdate(const UpdateStmt& stmt);
  /// Shared by DELETE and UPDATE: collect (projection, node, target,
  /// positions) matching a predicate and register delete vectors.
  Result<uint64_t> ApplyDelete(const std::string& table, const ExprPtr& where,
                               Transaction* txn, RowBlock* deleted_rows);

  DatabaseOptions options_;
  std::shared_ptr<FileSystem> fs_;
  Catalog catalog_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Planner> planner_;
  ExecStats stats_;
  std::unique_ptr<ResourceBudget> budget_;
};

}  // namespace stratica

#endif  // STRATICA_API_DATABASE_H_
