// Public entry point: a Stratica database instance.
//
// Owns the catalog, the (simulated) cluster, and the SQL pipeline. Typical
// use mirrors the paper's deployment story: create tables (each gets a
// default super projection plus K buddies), bulk load, let the tuple mover
// reorganize storage in the background, and query with standard SQL.
#ifndef STRATICA_API_DATABASE_H_
#define STRATICA_API_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "exec/resource_manager.h"
#include "exec/scheduler.h"
#include "opt/planner.h"
#include "sql/parser.h"

namespace stratica {

struct DatabaseOptions {
  uint32_t num_nodes = 1;
  uint32_t k_safety = 0;
  uint32_t local_segments_per_node = 3;
  /// Total memory the resource manager may reserve across all concurrently
  /// admitted queries (DESIGN.md §9).
  size_t query_memory_budget = 256ull << 20;
  /// Concurrency slot cap: queries beyond this queue at admission even if
  /// memory is free. 0 = bounded by memory alone.
  size_t max_concurrent_queries = 0;
  /// How long a query waits in the admission queue before failing with
  /// ResourceExhausted.
  uint32_t admission_timeout_ms = 10000;
  /// Per-Sort buffering ceiling before run generation spills to disk
  /// (external sort, DESIGN.md §8). 0 disables the cap.
  size_t sort_memory_budget = 64ull << 20;
  /// Morsel fragments per scan unit in SELECT plans (DESIGN.md §12);
  /// admission may scale a query's fan-out down when the pool is tight.
  size_t intra_node_parallelism = 4;
  /// Worker threads of the database's Scheduler (the unified pool running
  /// morsel tasks and pinned pipeline drivers). 0 = hardware concurrency.
  size_t worker_threads = 0;
  /// Straggler hedging for exchanges (DESIGN.md §11): a producer pipeline
  /// with zero progress by this deadline is speculatively re-issued against
  /// a buddy copy; the deadline doubles per attempt. 0 disables hedging
  /// (reroute-on-failure against buddies stays on regardless).
  uint64_t hedge_deadline_ms = 0;
  uint32_t hedge_max_attempts = 2;
  uint64_t direct_ros_row_threshold = 100000;
  TupleMoverConfig tuple_mover;
  /// Interval of the background tuple-mover service thread; 0 keeps the
  /// tuple mover manual (RunTupleMover), as tests and benches expect.
  uint32_t tuple_mover_interval_ms = 0;
  /// Null = in-memory filesystem (tests, benches).
  std::shared_ptr<FileSystem> fs;
};

/// Tabular query result.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  RowBlock rows;
  uint64_t affected_rows = 0;  ///< for DML
  std::string message;         ///< DDL / EXPLAIN output

  size_t NumRows() const { return rows.NumRows(); }
  Value At(size_t row, size_t col) const { return rows.columns[col].GetValue(row); }
  std::string ToString(size_t max_rows = 50) const;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Execute one SQL statement. Safe to call from many threads: each query
  /// is admitted by the resource manager against `query_memory_budget`,
  /// pinned to the latest queryable epoch at admission, and runs with its
  /// own ExecStats and memory budget (DESIGN.md §9).
  Result<QueryResult> Execute(const std::string& sql);

  /// Bulk load a block of rows (the programmatic COPY path). Set `direct`
  /// to bypass the WOS (Section 7).
  Result<LoadResult> Load(const std::string& table, const RowBlock& rows,
                          bool direct = false);

  /// One tuple-mover pass (moveout + mergeout + DV moves) on every node.
  Status RunTupleMover();

  /// Start/stop the background tuple-mover service: a thread running
  /// RunTupleMover every `tuple_mover_interval_ms` concurrently with live
  /// queries (started automatically when the option is nonzero). Stop is
  /// idempotent and joins the thread.
  void StartBackgroundTupleMover();
  void StopBackgroundTupleMover();

  /// Adjust the exchange straggler-hedging deadline at runtime (0 disables
  /// hedging; reroute-on-failure stays on). Applies to queries admitted
  /// after the call. Chaos harnesses use this to isolate the reroute path
  /// from speculative hedges.
  void SetHedgeDeadlineMs(uint64_t ms) {
    hedge_deadline_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Advance the Ancient History Mark per the default policy.
  Status AdvanceAhm() { return cluster_->AdvanceAhm(); }

  Cluster* cluster() { return cluster_.get(); }
  Catalog* catalog() { return &catalog_; }
  FileSystem* fs() { return fs_.get(); }
  /// Cumulative counters across all finished queries (each query runs with
  /// its own ExecStats, merged here on completion).
  ExecStats* stats() { return &stats_; }
  ResourceManager* resource_manager() { return resource_manager_.get(); }
  /// The unified worker pool (DESIGN.md §12): morsel tasks, exchange
  /// producers and the background tuple mover all run here.
  Scheduler* scheduler() { return scheduler_.get(); }

  /// Execution context for hand-built operator trees (benches). Shares the
  /// database-wide cumulative stats and budget: single-caller use only.
  ExecContext MakeExecContext();

 private:
  /// Per-query execution environment: admission ticket, pinned snapshot
  /// epoch, private stats and memory budget.
  struct QuerySession;

  /// Admit a query (DML statements reserve the floor amount) and build its
  /// session. Fails with ResourceExhausted on admission timeout.
  Result<QuerySession> AdmitQuery(size_t reserve_bytes);
  ExecContext SessionContext(QuerySession* session);
  /// Fold a finished query's counters into the cumulative totals.
  void MergeSessionStats(const QuerySession& session);

  Result<QueryResult> RunSelect(const SelectStmt& stmt);
  Result<QueryResult> RunInsert(const InsertStmt& stmt);
  Result<QueryResult> RunCopy(const CopyStmt& stmt);
  Result<QueryResult> RunDelete(const DeleteStmt& stmt);
  Result<QueryResult> RunUpdate(const UpdateStmt& stmt);
  /// Shared by DELETE and UPDATE: collect (projection, node, target,
  /// positions) matching a predicate and register delete vectors.
  Result<uint64_t> ApplyDelete(const std::string& table, const ExprPtr& where,
                               Transaction* txn, RowBlock* deleted_rows);

  DatabaseOptions options_;
  /// Declared first so it is destroyed last: query teardown and the tuple
  /// mover join their pinned tasks while the pool must still be alive.
  std::unique_ptr<Scheduler> scheduler_;
  /// Live hedging deadline (seeded from options_, see SetHedgeDeadlineMs).
  std::atomic<uint64_t> hedge_deadline_ms_{0};
  std::shared_ptr<FileSystem> fs_;
  Catalog catalog_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Planner> planner_;
  ExecStats stats_;
  std::unique_ptr<ResourceBudget> budget_;
  std::unique_ptr<ResourceManager> resource_manager_;
  /// Spill-path sequence shared by every query context so concurrent
  /// spills never collide on a file name.
  std::shared_ptr<std::atomic<uint64_t>> spill_seq_;

  // Background tuple-mover service: a pinned task on the scheduler's
  // reservoir. Each service task owns its stop flag, so a Start racing an
  // in-progress Stop launches a fresh task instead of silently no-oping
  // (or resurrecting the stopping one).
  Scheduler::Pinned tm_task_;
  std::mutex tm_mu_;
  std::condition_variable tm_cv_;
  std::shared_ptr<std::atomic<bool>> tm_stop_;
};

}  // namespace stratica

#endif  // STRATICA_API_DATABASE_H_
