// Virtual-node cluster simulation (DESIGN.md §11).
//
// Scales the simulated cluster to hundreds of nodes without hundreds of
// processes: every node the Cluster facade manages already lives under its
// own directory prefix (node<N>/...), so a per-node identity reduces to a
// per-node fault plan on the shared FaultFs. A VirtualCluster bundles the
// in-memory filesystem, the fault layer and a Database, and exposes one
// knob per node — its health — behind which it installs or removes the
// matching latency/bandwidth/error rules and drives the real
// MarkNodeDown/RecoverNode protocol. Segmentation, exchange shuffles,
// buddy failover and recovery run unmodified; only the physics of each
// node (how slow, how flaky, whether reachable) is simulated.
#ifndef STRATICA_CLUSTER_VIRTUAL_CLUSTER_H_
#define STRATICA_CLUSTER_VIRTUAL_CLUSTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/fault_fs.h"
#include "common/rng.h"

namespace stratica {

/// Health of one virtual node. Transitions install/remove FaultFs rules
/// scoped to the node's directory; entering/leaving kDown additionally
/// drives the cluster's ejection/rejoin protocol.
enum class NodeHealth {
  kHealthy,  ///< no injected degradation
  kSlow,     ///< straggler: every file op pays the latency/bandwidth model
  kFlaky,    ///< transient I/O errors with the configured probability
  kDown,     ///< ejected: every file op fails persistently until revived
};

const char* NodeHealthName(NodeHealth h);

/// Degradation physics applied to unhealthy nodes (ZBStorage virtual_node
/// style: delay = latency + bytes / bandwidth + U[0, jitter)).
struct VirtualNodeModel {
  uint64_t slow_latency_us = 2000;           ///< kSlow: fixed per-op delay
  uint64_t slow_bytes_per_sec = 64ull << 20; ///< kSlow: simulated link speed
  uint64_t slow_jitter_us = 500;             ///< kSlow: uniform jitter
  double flaky_probability = 0.05;           ///< kFlaky: per-op error chance
};

struct VirtualClusterOptions {
  uint32_t num_nodes = 64;
  uint32_t k_safety = 1;
  uint64_t seed = 42;  ///< drives FaultFs and all per-node derived seeds
  VirtualNodeModel model;
  /// Remaining database knobs (hedging deadlines, tuple-mover interval,
  /// memory budgets). fs / num_nodes / k_safety are overwritten.
  DatabaseOptions db;
};

/// \brief A simulated N-node cluster: MemFileSystem + FaultFs + Database,
/// plus per-node health management. Thread-safe: health transitions are
/// serialized internally and may run concurrently with queries and DML.
class VirtualCluster {
 public:
  explicit VirtualCluster(VirtualClusterOptions opts);

  Database* db() { return db_.get(); }
  Cluster* cluster() { return db_->cluster(); }
  FaultFs* fault_fs() { return fault_fs_.get(); }
  uint32_t num_nodes() const { return db_->cluster()->num_nodes(); }

  /// Deterministic per-node seed stream (rng.h): chaos actors working on
  /// different nodes draw from uncorrelated sequences.
  uint64_t node_seed(uint32_t node) const { return DeriveSeed(opts_.seed, node); }

  NodeHealth health(uint32_t node) const;
  size_t CountHealth(NodeHealth h) const;

  /// Transition a node's health. Entering kDown ejects the node (volatile
  /// state lost) and makes every access to its files fail; leaving kDown
  /// runs the full rejoin protocol (RecoverNode) before any new degradation
  /// applies. On failure the previous health sticks, so the caller can
  /// retry (e.g. recovery refused while quorum is lost).
  Status SetNodeHealth(uint32_t node, NodeHealth health);

  Status KillNode(uint32_t node) { return SetNodeHealth(node, NodeHealth::kDown); }
  Status ReviveNode(uint32_t node) { return SetNodeHealth(node, NodeHealth::kHealthy); }

 private:
  /// Anchored pattern for one node's files ("node7/" does not match
  /// "node70/...").
  static std::string NodePathPattern(uint32_t node);

  VirtualClusterOptions opts_;
  std::shared_ptr<MemFileSystem> base_fs_;
  std::shared_ptr<FaultFs> fault_fs_;
  std::unique_ptr<Database> db_;

  mutable std::mutex mu_;  // guards health_ / rule_ids_ and serializes transitions
  std::vector<NodeHealth> health_;
  std::vector<std::vector<size_t>> rule_ids_;  ///< FaultFs rules per node
};

}  // namespace stratica

#endif  // STRATICA_CLUSTER_VIRTUAL_CLUSTER_H_
