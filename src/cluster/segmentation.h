// Ring segmentation (Section 3.6).
//
// Nodes are assigned contiguous ranges of the 64-bit segmentation-
// expression space:  i*CMAX/N <= expr < (i+1)*CMAX/N  =>  Node_(i+1).
// Buddy projections (Section 5.2) use the same ring rotated by an offset,
// which guarantees a row's buddy copy never lands on the row's primary
// node.
#ifndef STRATICA_CLUSTER_SEGMENTATION_H_
#define STRATICA_CLUSTER_SEGMENTATION_H_

#include <cstdint>
#include <utility>

namespace stratica {

/// \brief The classic ring: equal slices of [0, 2^64) across N nodes, with
/// rotation for buddy placement.
class SegmentationRing {
 public:
  explicit SegmentationRing(uint32_t num_nodes) : n_(num_nodes ? num_nodes : 1) {}

  uint32_t num_nodes() const { return n_; }

  /// Ring slot (before rotation) of a hash value: floor(hash * N / 2^64).
  uint32_t SlotFor(uint64_t hash) const {
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(hash) * n_) >> 64);
  }

  /// Node storing `hash` for a projection with ring rotation `offset`.
  uint32_t NodeFor(uint64_t hash, uint32_t offset) const {
    return (SlotFor(hash) + offset) % n_;
  }

  /// Inclusive hash range [lo, hi] of ring slot `slot`: ranges of adjacent
  /// slots tile [0, 2^64) exactly.
  std::pair<uint64_t, uint64_t> SlotRange(uint32_t slot) const {
    uint64_t lo = FirstHashOfSlot(slot);
    uint64_t hi = (slot + 1 == n_) ? UINT64_MAX : FirstHashOfSlot(slot + 1) - 1;
    return {lo, hi};
  }

  /// Ring slot whose data node `node` stores under rotation `offset`.
  uint32_t SlotStoredBy(uint32_t node, uint32_t offset) const {
    return (node + n_ - offset % n_) % n_;
  }

  /// Inclusive hash range stored by `node` under rotation `offset`.
  std::pair<uint64_t, uint64_t> RangeStoredBy(uint32_t node, uint32_t offset) const {
    return SlotRange(SlotStoredBy(node, offset));
  }

 private:
  /// Smallest hash value mapping to `slot` (exact integer arithmetic).
  uint64_t FirstHashOfSlot(uint32_t slot) const {
    if (slot == 0) return 0;
    uint64_t x = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(slot) << 64) / n_);
    while (SlotFor(x) < slot) ++x;
    return x;
  }

  uint32_t n_;
};

}  // namespace stratica

#endif  // STRATICA_CLUSTER_SEGMENTATION_H_
