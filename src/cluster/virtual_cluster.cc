#include "cluster/virtual_cluster.h"

namespace stratica {

const char* NodeHealthName(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kSlow:
      return "slow";
    case NodeHealth::kFlaky:
      return "flaky";
    case NodeHealth::kDown:
      return "down";
  }
  return "?";
}

VirtualCluster::VirtualCluster(VirtualClusterOptions opts) : opts_(std::move(opts)) {
  base_fs_ = std::make_shared<MemFileSystem>();
  fault_fs_ = std::make_shared<FaultFs>(base_fs_.get(), opts_.seed);
  DatabaseOptions db_opts = opts_.db;
  db_opts.fs = fault_fs_;
  db_opts.num_nodes = opts_.num_nodes;
  db_opts.k_safety = opts_.k_safety;
  db_ = std::make_unique<Database>(db_opts);
  health_.assign(opts_.num_nodes, NodeHealth::kHealthy);
  rule_ids_.resize(opts_.num_nodes);
}

std::string VirtualCluster::NodePathPattern(uint32_t node) {
  // The trailing slash keeps node7 from matching node70's files.
  return "node" + std::to_string(node) + "/.*";
}

NodeHealth VirtualCluster::health(uint32_t node) const {
  std::lock_guard lock(mu_);
  return node < health_.size() ? health_[node] : NodeHealth::kHealthy;
}

size_t VirtualCluster::CountHealth(NodeHealth h) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (NodeHealth cur : health_) n += cur == h ? 1 : 0;
  return n;
}

Status VirtualCluster::SetNodeHealth(uint32_t node, NodeHealth health) {
  std::lock_guard lock(mu_);
  // Nodes added by an elastic rebalance appear lazily.
  if (node >= health_.size()) {
    if (node >= num_nodes()) return Status::InvalidArgument("no such node ", node);
    health_.resize(node + 1, NodeHealth::kHealthy);
    rule_ids_.resize(node + 1);
  }
  NodeHealth prev = health_[node];
  if (prev == health) return Status::OK();

  // Drop the previous state's degradation rules.
  for (size_t id : rule_ids_[node]) fault_fs_->RemoveRule(id);
  rule_ids_[node].clear();

  // Leaving kDown means rejoining the cluster: truncate-to-LGE + two-phase
  // copy from buddies (Section 5.2). Runs with the node's files healthy
  // again; any new degradation is installed only after the rejoin.
  if (prev == NodeHealth::kDown) {
    Status s = db_->cluster()->RecoverNode(node);
    if (!s.ok()) {
      // Still down. Re-arm the unreachable rule so the simulation stays
      // consistent and let the caller retry.
      FaultRule dead;
      dead.path_pattern = NodePathPattern(node);
      dead.op_mask = kFaultAnyOp;
      dead.kind = FaultKind::kPersistentError;
      rule_ids_[node].push_back(fault_fs_->AddRule(dead));
      return s;
    }
  }

  switch (health) {
    case NodeHealth::kHealthy:
      break;
    case NodeHealth::kSlow: {
      FaultRule slow;
      slow.path_pattern = NodePathPattern(node);
      slow.op_mask = kFaultRead | kFaultWrite;
      slow.kind = FaultKind::kLatency;
      slow.latency_us = opts_.model.slow_latency_us;
      slow.bytes_per_sec = opts_.model.slow_bytes_per_sec;
      slow.jitter_us = opts_.model.slow_jitter_us;
      rule_ids_[node].push_back(fault_fs_->AddRule(slow));
      break;
    }
    case NodeHealth::kFlaky: {
      FaultRule flaky;
      flaky.path_pattern = NodePathPattern(node);
      flaky.op_mask = kFaultRead | kFaultWrite;
      flaky.probability = opts_.model.flaky_probability;
      flaky.kind = FaultKind::kTransientError;
      rule_ids_[node].push_back(fault_fs_->AddRule(flaky));
      break;
    }
    case NodeHealth::kDown: {
      // Unreachable first, then ejected: in-flight scans targeting this
      // node start failing (and rerouting onto buddies) immediately, and
      // the planner stops selecting it once it is marked down.
      FaultRule dead;
      dead.path_pattern = NodePathPattern(node);
      dead.op_mask = kFaultAnyOp;
      dead.kind = FaultKind::kPersistentError;
      rule_ids_[node].push_back(fault_fs_->AddRule(dead));
      Status s = db_->cluster()->MarkNodeDown(node);
      if (!s.ok()) {
        for (size_t id : rule_ids_[node]) fault_fs_->RemoveRule(id);
        rule_ids_[node].clear();
        return s;
      }
      break;
    }
  }
  health_[node] = health;
  return Status::OK();
}

}  // namespace stratica
