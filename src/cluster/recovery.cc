// Node recovery, projection refresh, and elastic rebalance (Section 5.2).
//
// Recovery replays the DML a down node missed using the buddy projection:
// the node first truncates to its Last Good Epoch (WOS contents died with
// it), then copies missed rows from the buddy in two phases — a lock-free
// historical phase covering (LGE, Eh], then a current phase under a Shared
// table lock covering (Eh, now]. Because buddies share sort order, row data
// moves wholesale; delete markers that target pre-LGE rows are re-resolved
// on the recovering node by content (the "separate plan" the paper uses to
// move delete vectors).
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/hash.h"

namespace stratica {

namespace {

/// Hash a full row (all columns), for content-based delete translation.
uint64_t RowContentHash(const RowBlock& rows, size_t r) {
  uint64_t h = 0xbdd1;
  for (const auto& col : rows.columns) h = HashCombine(h, col.HashEntry(r));
  return h;
}

/// A delete observed on a source copy that targets a row the destination
/// already holds; must be re-resolved on the destination by content.
struct MissedDelete {
  size_t src_row;   ///< row index in the source block
  Epoch del_epoch;  ///< epoch the delete committed at
};

/// Re-target `deletes` (rows of `src_rows`) onto `ps` by content match: read
/// the destination's live rows as of `read_at`, find each deleted row's twin
/// and register a delete-vector chunk carrying the original delete epoch.
/// Shared by node recovery and elastic rebalance (the paper's "separate
/// plan" for moving delete vectors).
Status TranslateDeletesByContent(const FileSystem* fs, ProjectionStorage* ps,
                                 const RowBlock& src_rows,
                                 const std::vector<MissedDelete>& deletes,
                                 Epoch read_at) {
  if (deletes.empty()) return Status::OK();
  RowBlock own;
  std::vector<std::pair<uint64_t, uint64_t>> own_pos;
  std::vector<Epoch> own_dels;
  STRATICA_RETURN_NOT_OK(
      ReadProjectionRows(fs, ps, read_at, &own, nullptr, &own_dels, &own_pos));
  std::unordered_multimap<uint64_t, size_t> index;
  index.reserve(own.NumRows());
  for (size_t r = 0; r < own.NumRows(); ++r) {
    if (own_dels[r] == 0) index.emplace(RowContentHash(own, r), r);
  }
  std::map<uint64_t, std::vector<uint64_t>> new_deletes;  // target -> positions
  std::map<uint64_t, std::vector<Epoch>> new_del_epochs;
  for (const auto& miss : deletes) {
    uint64_t h = RowContentHash(src_rows, miss.src_row);
    auto [lo, hi] = index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      // Verify full content equality, then consume the match.
      bool equal = true;
      for (size_t c = 0; c < own.columns.size() && equal; ++c) {
        equal = ColumnVector::CompareEntries(own.columns[c], it->second,
                                             src_rows.columns[c], miss.src_row) == 0;
      }
      if (!equal) continue;
      auto [target, pos] = own_pos[it->second];
      new_deletes[target].push_back(pos);
      new_del_epochs[target].push_back(miss.del_epoch);
      index.erase(it);
      break;
    }
  }
  for (auto& [target, positions] : new_deletes) {
    auto chunk = std::make_shared<DeleteVectorChunk>();
    chunk->target_id = target;
    // Sort by position, keeping epochs parallel.
    std::vector<size_t> order(positions.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return positions[a] < positions[b]; });
    for (size_t i : order) {
      chunk->positions.push_back(positions[i]);
      chunk->epochs.push_back(new_del_epochs[target][i]);
    }
    ps->AdoptContainer(nullptr, {chunk});
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Which copies may serve a recovery range (needed_from, now]?
///
/// A quarantined copy that still has its data IS usable: its reads are
/// checksum-verified end to end, so either the copy serves correct bytes or
/// the recovery fails cleanly and is retried — and recovery_mu_ guarantees
/// no repair is concurrently rebuilding it under us. Rejecting it instead
/// deadlocks the common double-fault: the quarantined copy's buddy goes
/// down, each side is the only possible source for the other.
///
/// A copy a failed repair *gutted* is the exception: its files are
/// checksum-clean but history below the gut point is gone. It kept
/// receiving every commit since the gut, so it is complete — and usable —
/// only for ranges starting at or after that point.
bool UsableAsSource(const ProjectionStorage* cand, Epoch needed_from) {
  if (cand == nullptr) return false;
  if (cand->repair_gutted()) return cand->gutted_at() <= needed_from;
  return true;
}

}  // namespace

ProjectionStorage* Cluster::FindRecoverySource(const ProjectionDef& def,
                                               uint32_t node_id,
                                               Epoch needed_from) {
  uint32_t n = num_nodes();
  // A live source holding exactly this node's rows.
  if (def.segmentation.replicated) {
    for (uint32_t i = 0; i < n; ++i) {
      Node* other = nodes_[i].get();
      if (other->id() == static_cast<int>(node_id) || !other->up()) continue;
      auto* cand = other->GetStorage(def.name);
      if (!UsableAsSource(cand, needed_from)) continue;
      return cand;
    }
    return nullptr;
  }
  // Ring slot this node stores for `def`; any projection in the same
  // family stores the same slot on a (hopefully up) different node.
  SegmentationRing ring = this->ring();
  uint32_t slot = ring.SlotStoredBy(node_id, def.segmentation.node_offset);
  std::string family = def.buddy_of.empty() ? def.name : def.buddy_of;
  for (const auto& copy : catalog_->ProjectionsForTable(def.anchor_table)) {
    std::string copy_family = copy.buddy_of.empty() ? copy.name : copy.buddy_of;
    if (copy_family != family || copy.name == def.name) continue;
    if (copy.segmentation.replicated) continue;
    uint32_t host = (slot + copy.segmentation.node_offset) % ring.num_nodes();
    if (!nodes_[host]->up()) continue;
    auto* cand = nodes_[host]->GetStorage(copy.name);
    if (!UsableAsSource(cand, needed_from)) continue;
    return cand;
  }
  return nullptr;
}

Status Cluster::RecoverProjectionOnNode(const ProjectionDef& def, uint32_t node_id,
                                        Epoch up_to, bool take_lock, uint64_t txn_id,
                                        bool full_rebuild) {
  Node* node = nodes_[node_id].get();
  auto* ps = node->GetStorage(def.name);
  if (!ps) return Status::Internal("recovering node lacks storage for ", def.name);

  if (take_lock) {
    STRATICA_RETURN_NOT_OK(locks_.Acquire(txn_id, def.anchor_table, LockMode::kS));
    // Resample the horizon now that inserts are fenced: a commit that
    // landed between the caller sampling `up_to` and the lock grant is
    // otherwise invisible to the copy and lost on this node.
    up_to = epochs_.LatestQueryableEpoch();
  }

  Epoch start = full_rebuild ? 0 : ps->lge();

  ProjectionStorage* source = FindRecoverySource(def, node_id, start);
  if (!source) {
    return Status::ClusterUnavailable("no live buddy to recover ", def.name,
                                      " on node ", node_id);
  }

  RowBlock rows;
  std::vector<Epoch> row_epochs, delete_epochs;
  STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, source, up_to, &rows, &row_epochs,
                                            &delete_epochs, nullptr));

  // Partition the buddy's view: rows committed after `start` are copied to
  // the recovering node; deletes after `start` against older rows must be
  // re-targeted at the node's existing containers by content.
  RowBlock to_copy(std::vector<TypeId>(ps->config().column_types));
  std::vector<Epoch> copy_epochs, copy_dels;
  std::vector<MissedDelete> old_row_deletes;
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    if (row_epochs[r] > start) {
      to_copy.AppendRowFrom(rows, r);
      copy_epochs.push_back(row_epochs[r]);
      copy_dels.push_back(delete_epochs[r]);
      AddNetworkBytes(64);  // coarse per-row transfer accounting
    } else if (delete_epochs[r] > start) {
      old_row_deletes.push_back({r, delete_epochs[r]});
    }
  }
  if (full_rebuild) {
    // Only now — with the source's full view safely in memory — destroy
    // the damaged copy. Ordering the read before the wipe means a source
    // that dies or errors mid-read leaves this copy untouched (still
    // quarantined, still revalidatable, still holding its history), rather
    // than gutted with no way to rebuild. The gut horizon records the last
    // epoch the wipe discards; every later commit still lands here, so even
    // if the ingest below fails, the copy remains a valid source for
    // post-horizon ranges.
    ps->MarkRepairGutted(up_to);
    ps->Clear(/*delete_files=*/true);
    STRATICA_RETURN_NOT_OK(ps->ScrubFiles().status());
  }
  STRATICA_RETURN_NOT_OK(ps->IngestRecovered(std::move(to_copy), std::move(copy_epochs),
                                             std::move(copy_dels), up_to));

  // Content-match missed deletions against the node's surviving rows.
  return TranslateDeletesByContent(fs_, ps, rows, old_row_deletes, start);
}

Status Cluster::RecoverNode(uint32_t node_id) {
  if (node_id >= num_nodes()) return Status::InvalidArgument("no such node");
  Node* node = nodes_[node_id].get();
  if (node->up()) return Status::InvalidArgument("node ", node_id, " is not down");
  // One whole-copy recovery at a time: a quarantine repair interleaving
  // with node recovery on the same storage truncates under the other's
  // ingest and double-applies the overlapping epoch range (duplicate rows).
  std::lock_guard recovery_lock(recovery_mu_);

  // Phase 0: truncate everything past the LGE so the node starts from a
  // consistent prefix of history, then scrub the disk — files orphaned by
  // transactions that died with the node, and torn writes that never got
  // their rename, are GC'd instead of failing replay (DESIGN.md §10).
  for (const auto& name : node->StorageNames()) {
    auto* ps = node->GetStorage(name);
    ps->TruncateForRecovery(ps->lge());
    auto scrubbed = ps->ScrubFiles();
    if (!scrubbed.ok()) return scrubbed.status();
  }

  auto txn = txns_.Begin();
  // Both copy phases early-return on I/O, corruption or lock errors. Route
  // every exit through a single cleanup: an error must not leak the
  // bookkeeping txn or the current phase's S locks (a leaked S lock wedges
  // all future DML on the anchor table).
  Status st = [&]() -> Status {
    // Historical phase: no locks, copy up to the epoch horizon sampled now.
    Epoch horizon = epochs_.LatestQueryableEpoch();
    for (const auto& name : node->StorageNames()) {
      STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(name));
      STRATICA_RETURN_NOT_OK(RecoverProjectionOnNode(def, node_id, horizon,
                                                     /*take_lock=*/false, txn->id()));
    }
    // Current phase: catch the tail under Shared locks, then rejoin.
    Epoch now = epochs_.LatestQueryableEpoch();
    for (const auto& name : node->StorageNames()) {
      STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(name));
      STRATICA_RETURN_NOT_OK(RecoverProjectionOnNode(def, node_id, now,
                                                     /*take_lock=*/true, txn->id()));
    }
    return Status::OK();
  }();
  // Rejoin while the S locks are still held: inserts take I locks (which S
  // blocks), so no commit can land between "caught up to now" and "marked
  // up". Flipping up() after the release would let a commit slip into that
  // window, skip the still-down node, and leave its copy short forever.
  if (st.ok()) {
    for (const auto& name : node->StorageNames()) {
      auto* ps = node->GetStorage(name);
      // A copy a failed repair gutted before this node went down still has
      // its pre-gut hole: recovery replayed (lge, now], and moveout may
      // have pushed lge past the gut point. Leave it quarantined —
      // RepairQuarantined rebuilds it from the buddy once we are back up.
      if (!ps->repair_gutted()) ps->ClearQuarantine();
    }
    node->set_up(true);
  }
  txns_.Rollback(txn);  // bookkeeping txn held no data; releases all S locks
  return st;
}

Result<uint64_t> Cluster::RepairQuarantined() {
  // Re-recover projection copies quarantined by scans after a persistent
  // read failure (DESIGN.md §10). The copy is rebuilt wholesale from a
  // buddy — same machinery as node recovery, scoped to one projection. A
  // failed repair (e.g. no live buddy right now) keeps the quarantine flag
  // set and is retried on the next tuple-mover tick, so the error state is
  // never silently dropped.
  std::lock_guard recovery_lock(recovery_mu_);  // see RecoverNode
  uint64_t repaired = 0;
  uint32_t num = num_nodes();
  for (uint32_t ni = 0; ni < num; ++ni) {
    Node* node = nodes_[ni].get();
    if (!node->up()) continue;
    for (const auto& name : node->StorageNames()) {
      auto* ps = node->GetStorage(name);
      if (!ps || !ps->quarantined()) continue;
      auto def = catalog_->GetProjection(name);
      if (!def.ok()) continue;  // dropped concurrently; flag dies with storage
      auto txn = txns_.Begin();
      Status st = [&]() -> Status {
        // Fence inserts *before* touching the copy: Clear outside the lock
        // races a concurrent load routing rows into this storage — the
        // wipe would eat the in-flight chunk after the commit succeeded.
        STRATICA_RETURN_NOT_OK(
            locks_.Acquire(txn->id(), def.value().anchor_table, LockMode::kS));
        // Cheap path first: if a full checksummed read of the copy passes,
        // the quarantine came from since-cleared read errors, not damage —
        // lift it without a rebuild. This is also what breaks the deadlock
        // when every copy of a slot is quarantined at once: no copy could
        // serve as the other's rebuild source, but each can self-verify.
        // Never for a copy a previous failed repair already gutted: its
        // files are checksum-clean but the data is gone — a vacuous pass
        // here would put an empty copy back in service.
        if (!ps->repair_gutted() && ps->Revalidate().ok()) return Status::OK();
        // Real damage: rebuild wholesale from a buddy. The rebuild reads
        // the source's complete history into memory *before* it wipes this
        // copy (see RecoverProjectionOnNode), so a source that errors or
        // dies mid-read costs nothing — the copy keeps its data and the
        // repair is simply retried on a later tick.
        Epoch now = epochs_.LatestQueryableEpoch();
        return RecoverProjectionOnNode(def.value(), static_cast<uint32_t>(node->id()),
                                       now, /*take_lock=*/true, txn->id(),
                                       /*full_rebuild=*/true);
      }();
      if (st.ok()) ps->ClearQuarantine();  // before the S lock drops
      txns_.Rollback(txn);  // releases the S lock on every path
      if (!st.ok()) continue;
      ++repaired;
    }
  }
  return repaired;
}

Status Cluster::RefreshProjection(const std::string& projection) {
  STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(projection));
  STRATICA_ASSIGN_OR_RETURN(TableDef table, catalog_->GetTable(def.anchor_table));

  // Source: a super projection of the anchor table outside the refreshed
  // projection's own buddy family, preferring one that holds data.
  std::string family = def.buddy_of.empty() ? def.name : def.buddy_of;
  std::vector<ProjectionDef> supers;
  for (const auto& p : catalog_->ProjectionsForTable(def.anchor_table)) {
    std::string p_family = p.buddy_of.empty() ? p.name : p.buddy_of;
    if (p.is_super && !p.IsPrejoin() && p_family != family) supers.push_back(p);
  }
  std::stable_sort(supers.begin(), supers.end(),
                   [&](const ProjectionDef& a, const ProjectionDef& b) {
                     auto rows = [&](const ProjectionDef& p) {
                       uint64_t total = 0;
                       uint32_t n = num_nodes();
                       for (uint32_t i = 0; i < n; ++i) {
                         auto* ps = nodes_[i]->GetStorage(p.name);
                         if (ps) total += ps->TotalRosRows() + ps->WosRowCount();
                       }
                       return total;
                     };
                     return rows(a) > rows(b);
                   });
  if (supers.empty())
    return Status::InvalidArgument("no super projection to refresh from");

  auto txn = txns_.Begin();
  // Refresh runs a historical copy then a brief locked current phase; our
  // in-process simulation folds both into one locked pass.
  STRATICA_RETURN_NOT_OK(
      locks_.Acquire(txn->id(), def.anchor_table, LockMode::kS));
  Epoch now = epochs_.LatestQueryableEpoch();
  Status st = RefreshProjectionLocked(projection, def, table, supers.front(), now);
  // Release on every path — an early error return must not leak the S
  // lock (it would wedge all future DML on the anchor table).
  txns_.Rollback(txn);  // bookkeeping txn held no data
  return st;
}

Status Cluster::RefreshProjectionLocked(const std::string& projection,
                                        const ProjectionDef& def,
                                        const TableDef& table,
                                        const ProjectionDef& src, Epoch now) {
  // Gather all rows of the table (each segmented super copy contributes its
  // nodes' rows; a replicated one contributes a single node's).
  RowBlock all(table.ToBindSchema().types);
  std::vector<Epoch> all_epochs, all_dels;
  uint32_t num = num_nodes();
  SegmentationRing ring = this->ring();
  for (uint32_t ni = 0; ni < num; ++ni) {
    Node* node = nodes_[ni].get();
    auto* ps = node->GetStorage(src.name);
    if (!ps) continue;
    if (!node->up())
      return Status::ClusterUnavailable("refresh source node down");
    RowBlock part;
    std::vector<Epoch> part_epochs, part_dels;
    STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, ps, now, &part, &part_epochs,
                                              &part_dels, nullptr));
    // Remap the projection's column order to table order.
    for (size_t r = 0; r < part.NumRows(); ++r) {
      for (size_t tc = 0; tc < table.columns.size(); ++tc) {
        int pc = src.FindColumn(table.columns[tc].name);
        all.columns[tc].AppendFrom(part.columns[pc], r);
      }
      all_epochs.push_back(part_epochs[r]);
      all_dels.push_back(part_dels[r]);
    }
    if (src.segmentation.replicated) break;
  }

  // Route rows into the refreshed projection on each node with original
  // epochs preserved.
  for (uint32_t ni = 0; ni < num; ++ni) {
    Node* node = nodes_[ni].get();
    if (!node->up()) continue;
    auto* ps = node->GetStorage(projection);
    if (!ps) return Status::Internal("missing storage for ", projection);
    ps->Clear(/*delete_files=*/true);

    RowBlock mine(std::vector<TypeId>(ps->config().column_types));
    std::vector<Epoch> mine_epochs, mine_dels;
    // Build projection-ordered rows, then keep those segmented to this node.
    RowBlock proj_rows(std::vector<TypeId>(ps->config().column_types));
    for (size_t c = 0; c < def.columns.size(); ++c) {
      int tc = table.FindColumn(def.columns[c].name);
      proj_rows.columns[c] = all.columns[tc];
    }
    if (def.segmentation.replicated) {
      mine = proj_rows;
      mine_epochs = all_epochs;
      mine_dels = all_dels;
    } else {
      ColumnVector hashes;
      STRATICA_RETURN_NOT_OK(
          EvalExpr(*ps->config().segmentation_expr, proj_rows, &hashes));
      for (size_t r = 0; r < proj_rows.NumRows(); ++r) {
        uint32_t target = ring.NodeFor(static_cast<uint64_t>(hashes.ints[r]),
                                       def.segmentation.node_offset);
        if (target != static_cast<uint32_t>(node->id())) continue;
        mine.AppendRowFrom(proj_rows, r);
        mine_epochs.push_back(all_epochs[r]);
        mine_dels.push_back(all_dels[r]);
      }
    }
    STRATICA_RETURN_NOT_OK(ps->IngestRecovered(std::move(mine), std::move(mine_epochs),
                                               std::move(mine_dels), now));
  }
  return Status::OK();
}

Status Cluster::AddNodeAndRebalance() { return RebalanceToNodeCount(num_nodes() + 1); }

Status Cluster::RemoveLastNodeAndRebalance() {
  uint32_t n = num_nodes();
  if (n <= 1) return Status::InvalidArgument("cannot remove the last node");
  return RebalanceToNodeCount(n - 1);
}

Status Cluster::ReplayRebalanceDelta(
    const ProjectionDef& def, std::vector<std::unique_ptr<ProjectionStorage>>& staged,
    Epoch from, Epoch to, const SegmentationRing& new_ring, uint32_t old_count) {
  SegmentationRing old_ring(old_count);
  // Gather the source rows visible at `to` from the active copies (each node
  // holds its segment; a replicated projection's first copy has everything).
  RowBlock all;
  std::vector<Epoch> all_epochs, all_dels;
  bool first = true;
  for (uint32_t n = 0; n < old_count; ++n) {
    auto* ps = nodes_[n]->GetStorage(def.name);
    if (!ps) continue;
    RowBlock part;
    std::vector<Epoch> pe, pd;
    STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, ps, to, &part, &pe, &pd, nullptr));
    if (first) {
      all = RowBlock(std::vector<TypeId>(ps->config().column_types));
      first = false;
    }
    for (size_t r = 0; r < part.NumRows(); ++r) {
      all.AppendRowFrom(part, r);
      all_epochs.push_back(pe[r]);
      all_dels.push_back(pd[r]);
    }
    if (def.segmentation.replicated) break;
  }
  if (first) return Status::Internal("no source storage for ", def.name);

  ColumnVector hashes;
  if (!def.segmentation.replicated) {
    STRATICA_RETURN_NOT_OK(
        EvalExpr(*staged[0]->config().segmentation_expr, all, &hashes));
  }
  for (uint32_t i = 0; i < staged.size(); ++i) {
    ProjectionStorage* ps = staged[i].get();
    RowBlock mine(std::vector<TypeId>(ps->config().column_types));
    std::vector<Epoch> mine_epochs, mine_dels;
    std::vector<MissedDelete> late_deletes;
    for (size_t r = 0; r < all.NumRows(); ++r) {
      if (!def.segmentation.replicated) {
        uint64_t h = static_cast<uint64_t>(hashes.ints[r]);
        if (new_ring.NodeFor(h, def.segmentation.node_offset) != i) continue;
        if (old_ring.NodeFor(h, def.segmentation.node_offset) != i) AddNetworkBytes(64);
      }
      if (all_epochs[r] > from) {
        // A row committed inside (from, to]: copy it with its epochs intact
        // (including a deletion that also landed inside the window).
        mine.AppendRowFrom(all, r);
        mine_epochs.push_back(all_epochs[r]);
        mine_dels.push_back(all_dels[r]);
      } else if (all_dels[r] > from) {
        // The row itself was staged in phase 1; only its deletion is new.
        late_deletes.push_back({r, all_dels[r]});
      }
    }
    STRATICA_RETURN_NOT_OK(ps->IngestRecovered(std::move(mine), std::move(mine_epochs),
                                               std::move(mine_dels), to));
    STRATICA_RETURN_NOT_OK(TranslateDeletesByContent(fs_, ps, all, late_deletes, from));
  }
  return Status::OK();
}

Status Cluster::RebalanceToNodeCount(uint32_t new_count) {
  // Serialize against whole-copy recovery and DDL, but NOT against queries
  // or DML: the bulk copy below runs lock-free against an epoch snapshot.
  std::scoped_lock guard(recovery_mu_, ddl_mu_);
  uint32_t old_count = num_nodes();
  if (new_count == old_count) return Status::OK();
  if (new_count <= cfg_.k_safety)
    return Status::InvalidArgument("node count must exceed k-safety");
  if (new_count > cfg_.num_nodes + kMaxAddedNodes)
    return Status::InvalidArgument("cluster at maximum size");
  for (uint32_t i = 0; i < old_count; ++i) {
    if (!nodes_[i]->up())
      return Status::ClusterUnavailable(
          "rebalance requires all nodes up (recover node ", nodes_[i]->id(), " first)");
  }
  // Materialize Node objects for a grow. nodes_ was reserved at construction,
  // so push_back never reallocates under concurrent node(i) readers; the new
  // slots stay invisible until active_nodes_ is advanced at the swap.
  while (nodes_.size() < new_count) {
    nodes_.push_back(std::make_unique<Node>(static_cast<int>(nodes_.size()), fs_,
                                            &epochs_, cfg_.tuple_mover));
  }
  for (uint32_t i = old_count; i < new_count; ++i) nodes_[i]->set_up(true);

  uint32_t gen = ++rebalance_gen_;
  SegmentationRing new_ring(new_count);

  struct StagedProjection {
    ProjectionDef def;
    std::vector<std::unique_ptr<ProjectionStorage>> nodes;
  };
  std::vector<StagedProjection> staged;
  auto discard_staged = [&staged] {
    for (auto& sp : staged) {
      for (auto& ps : sp.nodes) {
        if (ps) ps->Clear(/*delete_files=*/true);
      }
    }
  };

  // ---- Phase 1 (lock-free): stage every projection under the new ring at a
  // sampled horizon. Concurrent DML keeps committing; anything past the
  // horizon is picked up by the delta replay in phase 2.
  Epoch horizon = epochs_.LatestQueryableEpoch();
  for (const auto& pname : catalog_->ProjectionNames()) {
    STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(pname));
    StagedProjection sp;
    sp.def = def;
    sp.nodes.resize(new_count);
    for (uint32_t i = 0; i < new_count; ++i) {
      STRATICA_ASSIGN_OR_RETURN(ProjectionStorageConfig cfg,
                                MakeStorageConfig(def, i, new_ring));
      sp.nodes[i] = std::make_unique<ProjectionStorage>(
          fs_, nodes_[i]->BaseDir() + "/" + pname + ".g" + std::to_string(gen),
          std::move(cfg));
    }
    Status s = ReplayRebalanceDelta(def, sp.nodes, /*from=*/0, /*to=*/horizon,
                                    new_ring, old_count);
    if (!s.ok()) {
      discard_staged();
      return s;
    }
    staged.push_back(std::move(sp));
  }

  // ---- Phase 2: fence DML with S locks on every table (sorted, bounded
  // wait — a concurrent DropTable holds O and then wants ddl_mu_, which we
  // hold, so an unbounded wait here would deadlock), replay the
  // (horizon, now] delta, and swap the staged storages in.
  TransactionPtr txn = txns_.Begin();
  std::vector<std::string> tables = catalog_->TableNames();
  std::sort(tables.begin(), tables.end());
  for (const auto& t : tables) {
    Status s = locks_.Acquire(txn->id(), t, LockMode::kS,
                              std::chrono::milliseconds(2000));
    if (!s.ok()) {
      txns_.Rollback(txn);
      discard_staged();
      return s;
    }
  }
  Epoch now = epochs_.LatestQueryableEpoch();
  for (auto& sp : staged) {
    Status s = ReplayRebalanceDelta(sp.def, sp.nodes, /*from=*/horizon, /*to=*/now,
                                    new_ring, old_count);
    if (!s.ok()) {
      txns_.Rollback(txn);
      discard_staged();
      return s;
    }
  }

  {
    // The swap itself: exclusive only for the pointer exchange. Planned
    // queries keep reading the retired storages, which stay alive until
    // cluster teardown.
    std::unique_lock topo(topology_mu_);
    for (auto& sp : staged) {
      for (uint32_t i = 0; i < new_count; ++i) {
        auto old = nodes_[i]->ReplaceStorage(sp.def.name, std::move(sp.nodes[i]));
        if (old) retired_storage_.push_back(std::move(old));
      }
      for (uint32_t i = new_count; i < old_count; ++i) {
        auto old = nodes_[i]->TakeStorage(sp.def.name);
        if (old) retired_storage_.push_back(std::move(old));
      }
    }
    active_nodes_.store(new_count, std::memory_order_release);
    for (uint32_t i = new_count; i < static_cast<uint32_t>(nodes_.size()); ++i) {
      nodes_[i]->set_up(false);
    }
  }
  txns_.Rollback(txn);  // bookkeeping only: releases the S locks
  return Status::OK();
}

}  // namespace stratica
