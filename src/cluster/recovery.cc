// Node recovery, projection refresh, and elastic rebalance (Section 5.2).
//
// Recovery replays the DML a down node missed using the buddy projection:
// the node first truncates to its Last Good Epoch (WOS contents died with
// it), then copies missed rows from the buddy in two phases — a lock-free
// historical phase covering (LGE, Eh], then a current phase under a Shared
// table lock covering (Eh, now]. Because buddies share sort order, row data
// moves wholesale; delete markers that target pre-LGE rows are re-resolved
// on the recovering node by content (the "separate plan" the paper uses to
// move delete vectors).
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/hash.h"

namespace stratica {

namespace {

/// Hash a full row (all columns), for content-based delete translation.
uint64_t RowContentHash(const RowBlock& rows, size_t r) {
  uint64_t h = 0xbdd1;
  for (const auto& col : rows.columns) h = HashCombine(h, col.HashEntry(r));
  return h;
}

}  // namespace

Status Cluster::RecoverProjectionOnNode(const ProjectionDef& def, uint32_t node_id,
                                        Epoch up_to, bool take_lock, uint64_t txn_id) {
  Node* node = nodes_[node_id].get();
  auto* ps = node->GetStorage(def.name);
  if (!ps) return Status::Internal("recovering node lacks storage for ", def.name);

  if (take_lock) {
    STRATICA_RETURN_NOT_OK(locks_.Acquire(txn_id, def.anchor_table, LockMode::kS));
  }

  Epoch start = ps->lge();

  // Find a live source holding exactly this node's rows.
  ProjectionStorage* source = nullptr;
  if (def.segmentation.replicated) {
    for (auto& other : nodes_) {
      if (other->id() == static_cast<int>(node_id) || !other->up()) continue;
      source = other->GetStorage(def.name);
      if (source) break;
    }
  } else {
    // Ring slot this node stores for `def`; any projection in the same
    // family stores the same slot on a (hopefully up) different node.
    uint32_t slot = ring_.SlotStoredBy(node_id, def.segmentation.node_offset);
    std::string family = def.buddy_of.empty() ? def.name : def.buddy_of;
    for (const auto& copy : catalog_->ProjectionsForTable(def.anchor_table)) {
      std::string copy_family = copy.buddy_of.empty() ? copy.name : copy.buddy_of;
      if (copy_family != family || copy.name == def.name) continue;
      if (copy.segmentation.replicated) continue;
      uint32_t host = (slot + copy.segmentation.node_offset) % ring_.num_nodes();
      if (!nodes_[host]->up()) continue;
      source = nodes_[host]->GetStorage(copy.name);
      if (source) break;
    }
  }
  if (!source) {
    return Status::ClusterUnavailable("no live buddy to recover ", def.name,
                                      " on node ", node_id);
  }

  RowBlock rows;
  std::vector<Epoch> row_epochs, delete_epochs;
  STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, source, up_to, &rows, &row_epochs,
                                            &delete_epochs, nullptr));

  // Partition the buddy's view: rows committed after `start` are copied to
  // the recovering node; deletes after `start` against older rows must be
  // re-targeted at the node's existing containers by content.
  RowBlock to_copy(std::vector<TypeId>(ps->config().column_types));
  std::vector<Epoch> copy_epochs, copy_dels;
  struct OldRowDelete {
    size_t buddy_row;
    Epoch del_epoch;
  };
  std::vector<OldRowDelete> old_row_deletes;
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    if (row_epochs[r] > start) {
      to_copy.AppendRowFrom(rows, r);
      copy_epochs.push_back(row_epochs[r]);
      copy_dels.push_back(delete_epochs[r]);
      AddNetworkBytes(64);  // coarse per-row transfer accounting
    } else if (delete_epochs[r] > start) {
      old_row_deletes.push_back({r, delete_epochs[r]});
    }
  }
  STRATICA_RETURN_NOT_OK(ps->IngestRecovered(std::move(to_copy), std::move(copy_epochs),
                                             std::move(copy_dels), up_to));

  if (!old_row_deletes.empty()) {
    // Content-match missed deletions against the node's surviving rows.
    RowBlock own;
    std::vector<std::pair<uint64_t, uint64_t>> own_pos;
    std::vector<Epoch> own_dels;
    STRATICA_RETURN_NOT_OK(
        ReadProjectionRows(fs_, ps, start, &own, nullptr, &own_dels, &own_pos));
    std::unordered_multimap<uint64_t, size_t> index;
    index.reserve(own.NumRows());
    for (size_t r = 0; r < own.NumRows(); ++r) {
      if (own_dels[r] == 0) index.emplace(RowContentHash(own, r), r);
    }
    std::map<uint64_t, std::vector<uint64_t>> new_deletes;  // target -> positions
    std::map<uint64_t, std::vector<Epoch>> new_del_epochs;
    for (const auto& miss : old_row_deletes) {
      uint64_t h = RowContentHash(rows, miss.buddy_row);
      auto [lo, hi] = index.equal_range(h);
      for (auto it = lo; it != hi; ++it) {
        // Verify full content equality, then consume the match.
        bool equal = true;
        for (size_t c = 0; c < own.columns.size() && equal; ++c) {
          equal = ColumnVector::CompareEntries(own.columns[c], it->second,
                                               rows.columns[c], miss.buddy_row) == 0;
        }
        if (!equal) continue;
        auto [target, pos] = own_pos[it->second];
        new_deletes[target].push_back(pos);
        new_del_epochs[target].push_back(miss.del_epoch);
        index.erase(it);
        break;
      }
    }
    for (auto& [target, positions] : new_deletes) {
      auto chunk = std::make_shared<DeleteVectorChunk>();
      chunk->target_id = target;
      // Sort by position, keeping epochs parallel.
      std::vector<size_t> order(positions.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return positions[a] < positions[b]; });
      for (size_t i : order) {
        chunk->positions.push_back(positions[i]);
        chunk->epochs.push_back(new_del_epochs[target][i]);
      }
      ps->AdoptContainer(nullptr, {chunk});
    }
  }
  return Status::OK();
}

Status Cluster::RecoverNode(uint32_t node_id) {
  if (node_id >= nodes_.size()) return Status::InvalidArgument("no such node");
  Node* node = nodes_[node_id].get();
  if (node->up()) return Status::InvalidArgument("node ", node_id, " is not down");

  // Phase 0: truncate everything past the LGE so the node starts from a
  // consistent prefix of history.
  for (const auto& name : node->StorageNames()) {
    auto* ps = node->GetStorage(name);
    ps->TruncateForRecovery(ps->lge());
  }

  auto txn = txns_.Begin();

  // Historical phase: no locks, copy up to the epoch horizon sampled now.
  Epoch horizon = epochs_.LatestQueryableEpoch();
  for (const auto& name : node->StorageNames()) {
    STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(name));
    STRATICA_RETURN_NOT_OK(
        RecoverProjectionOnNode(def, node_id, horizon, /*take_lock=*/false, txn->id()));
  }

  // Current phase: catch the tail under Shared locks, then rejoin.
  Epoch now = epochs_.LatestQueryableEpoch();
  for (const auto& name : node->StorageNames()) {
    STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(name));
    STRATICA_RETURN_NOT_OK(
        RecoverProjectionOnNode(def, node_id, now, /*take_lock=*/true, txn->id()));
  }
  locks_.ReleaseAll(txn->id());
  txns_.Rollback(txn);  // bookkeeping txn held no data

  node->set_up(true);
  return Status::OK();
}

Status Cluster::RefreshProjection(const std::string& projection) {
  STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(projection));
  STRATICA_ASSIGN_OR_RETURN(TableDef table, catalog_->GetTable(def.anchor_table));

  // Source: a super projection of the anchor table outside the refreshed
  // projection's own buddy family, preferring one that holds data.
  std::string family = def.buddy_of.empty() ? def.name : def.buddy_of;
  std::vector<ProjectionDef> supers;
  for (const auto& p : catalog_->ProjectionsForTable(def.anchor_table)) {
    std::string p_family = p.buddy_of.empty() ? p.name : p.buddy_of;
    if (p.is_super && !p.IsPrejoin() && p_family != family) supers.push_back(p);
  }
  std::stable_sort(supers.begin(), supers.end(),
                   [&](const ProjectionDef& a, const ProjectionDef& b) {
                     auto rows = [&](const ProjectionDef& p) {
                       uint64_t n = 0;
                       for (auto& node : nodes_) {
                         auto* ps = node->GetStorage(p.name);
                         if (ps) n += ps->TotalRosRows() + ps->WosRowCount();
                       }
                       return n;
                     };
                     return rows(a) > rows(b);
                   });
  if (supers.empty())
    return Status::InvalidArgument("no super projection to refresh from");

  auto txn = txns_.Begin();
  // Refresh runs a historical copy then a brief locked current phase; our
  // in-process simulation folds both into one locked pass.
  STRATICA_RETURN_NOT_OK(
      locks_.Acquire(txn->id(), def.anchor_table, LockMode::kS));
  Epoch now = epochs_.LatestQueryableEpoch();
  Status st = RefreshProjectionLocked(projection, def, table, supers.front(), now);
  // Release on every path — an early error return must not leak the S
  // lock (it would wedge all future DML on the anchor table).
  txns_.Rollback(txn);  // bookkeeping txn held no data
  return st;
}

Status Cluster::RefreshProjectionLocked(const std::string& projection,
                                        const ProjectionDef& def,
                                        const TableDef& table,
                                        const ProjectionDef& src, Epoch now) {
  // Gather all rows of the table (each segmented super copy contributes its
  // nodes' rows; a replicated one contributes a single node's).
  RowBlock all(table.ToBindSchema().types);
  std::vector<Epoch> all_epochs, all_dels;
  for (auto& node : nodes_) {
    auto* ps = node->GetStorage(src.name);
    if (!ps) continue;
    if (!node->up())
      return Status::ClusterUnavailable("refresh source node down");
    RowBlock part;
    std::vector<Epoch> part_epochs, part_dels;
    STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, ps, now, &part, &part_epochs,
                                              &part_dels, nullptr));
    // Remap the projection's column order to table order.
    for (size_t r = 0; r < part.NumRows(); ++r) {
      for (size_t tc = 0; tc < table.columns.size(); ++tc) {
        int pc = src.FindColumn(table.columns[tc].name);
        all.columns[tc].AppendFrom(part.columns[pc], r);
      }
      all_epochs.push_back(part_epochs[r]);
      all_dels.push_back(part_dels[r]);
    }
    if (src.segmentation.replicated) break;
  }

  // Route rows into the refreshed projection on each node with original
  // epochs preserved.
  for (auto& node : nodes_) {
    if (!node->up()) continue;
    auto* ps = node->GetStorage(projection);
    if (!ps) return Status::Internal("missing storage for ", projection);
    ps->Clear(/*delete_files=*/true);

    RowBlock mine(std::vector<TypeId>(ps->config().column_types));
    std::vector<Epoch> mine_epochs, mine_dels;
    // Build projection-ordered rows, then keep those segmented to this node.
    RowBlock proj_rows(std::vector<TypeId>(ps->config().column_types));
    for (size_t c = 0; c < def.columns.size(); ++c) {
      int tc = table.FindColumn(def.columns[c].name);
      proj_rows.columns[c] = all.columns[tc];
    }
    if (def.segmentation.replicated) {
      mine = proj_rows;
      mine_epochs = all_epochs;
      mine_dels = all_dels;
    } else {
      ColumnVector hashes;
      STRATICA_RETURN_NOT_OK(
          EvalExpr(*ps->config().segmentation_expr, proj_rows, &hashes));
      for (size_t r = 0; r < proj_rows.NumRows(); ++r) {
        uint32_t target = ring_.NodeFor(static_cast<uint64_t>(hashes.ints[r]),
                                        def.segmentation.node_offset);
        if (target != static_cast<uint32_t>(node->id())) continue;
        mine.AppendRowFrom(proj_rows, r);
        mine_epochs.push_back(all_epochs[r]);
        mine_dels.push_back(all_dels[r]);
      }
    }
    STRATICA_RETURN_NOT_OK(ps->IngestRecovered(std::move(mine), std::move(mine_epochs),
                                               std::move(mine_dels), now));
  }
  return Status::OK();
}

Status Cluster::AddNodeAndRebalance() {
  std::lock_guard lock(ddl_mu_);
  uint32_t new_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(new_id, fs_, &epochs_, cfg_.tuple_mover));
  ring_ = SegmentationRing(new_id + 1);

  Epoch now = epochs_.LatestQueryableEpoch();
  // Re-create storage configs (ranges changed) and re-route rows. Local
  // segments let most containers move wholesale; our simulation re-splits
  // rows but preserves epochs and delete history exactly.
  for (const auto& pname : catalog_->ProjectionNames()) {
    STRATICA_ASSIGN_OR_RETURN(ProjectionDef def, catalog_->GetProjection(pname));
    // Collect all rows of this projection from the old nodes.
    RowBlock all;
    std::vector<Epoch> all_epochs, all_dels;
    bool first = true;
    for (uint32_t n = 0; n < new_id; ++n) {
      auto* ps = nodes_[n]->GetStorage(pname);
      if (!ps) continue;
      RowBlock part;
      std::vector<Epoch> pe, pd;
      STRATICA_RETURN_NOT_OK(ReadProjectionRows(fs_, ps, now, &part, &pe, &pd, nullptr));
      if (first) {
        all = RowBlock(std::vector<TypeId>(ps->config().column_types));
        first = false;
      }
      for (size_t r = 0; r < part.NumRows(); ++r) {
        all.AppendRowFrom(part, r);
        all_epochs.push_back(pe[r]);
        all_dels.push_back(pd[r]);
      }
      if (def.segmentation.replicated) break;
    }
    // Rebuild storage on every node under the new ring.
    for (auto& node : nodes_) {
      auto* old_ps = node->GetStorage(pname);
      if (old_ps) old_ps->Clear(/*delete_files=*/true);
      node->DropStorage(pname);
      STRATICA_ASSIGN_OR_RETURN(ProjectionStorageConfig cfg,
                                MakeStorageConfig(def, node->id()));
      node->AddStorage(pname, std::move(cfg));
    }
    for (auto& node : nodes_) {
      auto* ps = node->GetStorage(pname);
      RowBlock mine(std::vector<TypeId>(ps->config().column_types));
      std::vector<Epoch> mine_epochs, mine_dels;
      if (def.segmentation.replicated) {
        mine = all;
        mine_epochs = all_epochs;
        mine_dels = all_dels;
      } else {
        ColumnVector hashes;
        STRATICA_RETURN_NOT_OK(
            EvalExpr(*ps->config().segmentation_expr, all, &hashes));
        for (size_t r = 0; r < all.NumRows(); ++r) {
          uint32_t target = ring_.NodeFor(static_cast<uint64_t>(hashes.ints[r]),
                                          def.segmentation.node_offset);
          if (target != static_cast<uint32_t>(node->id())) continue;
          mine.AppendRowFrom(all, r);
          mine_epochs.push_back(all_epochs[r]);
          mine_dels.push_back(all_dels[r]);
          if (node->id() == static_cast<int>(new_id)) AddNetworkBytes(64);
        }
      }
      STRATICA_RETURN_NOT_OK(ps->IngestRecovered(
          std::move(mine), std::move(mine_epochs), std::move(mine_dels), now));
    }
  }
  return Status::OK();
}

}  // namespace stratica
