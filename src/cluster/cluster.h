// Simulated shared-nothing cluster (Sections 3.6, 5, 5.2, 5.3).
//
// Stratica models a Vertica cluster as N Node objects inside one process
// (DESIGN.md §4): identical segmentation / buddy / recovery / quorum logic,
// with in-process queues standing in for the interconnect. Nodes share the
// epoch sequence — the paper's distributed agreement protocol guarantees
// exactly this ("All nodes agree on the epoch in which each transaction
// commits"), so sharing the EpochManager models the protocol's outcome.
//
// Commit follows the paper's no-2PC rule: a commit succeeds if a quorum of
// nodes applies it; a node that fails mid-commit is ejected and later
// rejoins via recovery. The cluster also performs a safety shutdown when
// fewer than N/2+1 nodes remain (split-brain avoidance) or when a failure
// makes some segment's data unavailable despite K-safety.
#ifndef STRATICA_CLUSTER_CLUSTER_H_
#define STRATICA_CLUSTER_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/segmentation.h"
#include "common/fs.h"
#include "storage/projection_storage.h"
#include "tuplemover/tuple_mover.h"
#include "txn/transaction.h"

namespace stratica {

struct ClusterConfig {
  uint32_t num_nodes = 1;
  uint32_t k_safety = 0;  ///< Buddy copies per projection (Section 5.2).
  uint32_t local_segments_per_node = 3;
  uint64_t wos_capacity_rows = 1 << 20;
  TupleMoverConfig tuple_mover;
  bool auto_direct_ros_threshold_enabled = true;
  /// Loads at least this large bypass the WOS ("Direct Loading to the
  /// ROS", Section 7).
  uint64_t direct_ros_row_threshold = 100000;
};

/// \brief One simulated node: its projection storage and tuple mover.
class Node {
 public:
  Node(int id, FileSystem* fs, EpochManager* epochs, TupleMoverConfig tm_cfg)
      : id_(id), fs_(fs), mover_(epochs, tm_cfg) {}

  int id() const { return id_; }
  bool up() const { return up_.load(std::memory_order_acquire); }
  void set_up(bool up) { up_.store(up, std::memory_order_release); }

  /// Inject a commit failure: the next commit this node participates in
  /// "fails", causing its ejection from the cluster (Section 5).
  void FailNextCommit() { fail_next_commit_ = true; }
  bool ConsumeCommitFailure() { return fail_next_commit_.exchange(false); }

  ProjectionStorage* GetStorage(const std::string& projection);
  ProjectionStorage* AddStorage(const std::string& projection,
                                ProjectionStorageConfig cfg);
  void DropStorage(const std::string& projection);
  /// Swap in a pre-built storage (rebalance): the old storage is returned
  /// alive, not destroyed, so scans planned against it keep valid pointers.
  std::unique_ptr<ProjectionStorage> ReplaceStorage(
      const std::string& projection, std::unique_ptr<ProjectionStorage> ps);
  /// Remove and return a storage without destroying it (node removal).
  std::unique_ptr<ProjectionStorage> TakeStorage(const std::string& projection);
  std::vector<std::string> StorageNames() const;

  TupleMover* mover() { return &mover_; }
  std::string BaseDir() const { return "node" + std::to_string(id_); }

 private:
  int id_;
  FileSystem* fs_;
  std::atomic<bool> up_{true};
  std::atomic<bool> fail_next_commit_{false};
  TupleMover mover_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ProjectionStorage>> storage_;
};

/// Per-row rejection from the bulk loader (Section 7: handling records that
/// do not conform "turned out to be important and complex to implement").
struct RejectedRecord {
  uint64_t row_index;
  std::string reason;
};

struct LoadResult {
  uint64_t rows_loaded = 0;
  std::vector<RejectedRecord> rejected;
};

/// \brief The cluster facade: DDL storage fan-out, segmented loads, quorum
/// commit, failure/recovery, refresh, rebalance and backup.
class Cluster {
 public:
  Cluster(ClusterConfig cfg, FileSystem* fs, Catalog* catalog);

  // --- topology --------------------------------------------------------------
  /// Active node count. Nodes beyond it exist in nodes_ (removed or being
  /// added by a rebalance) but hold no current data and serve no queries.
  uint32_t num_nodes() const { return active_nodes_.load(std::memory_order_acquire); }
  Node* node(uint32_t i) { return nodes_[i].get(); }
  /// Snapshot of the segmentation ring (by value: the ring is replaced
  /// atomically by an elastic rebalance, so callers hold a copy).
  SegmentationRing ring() const { return SegmentationRing(num_nodes()); }
  EpochManager* epochs() { return &epochs_; }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return &txns_; }
  FileSystem* fs() { return fs_; }
  Catalog* catalog() { return catalog_; }

  /// Shared guard for topology capture: a planner selecting scan units holds
  /// this while it reads (num_nodes, per-node storages) so an elastic
  /// rebalance cannot swap the topology out from under a half-built plan.
  /// The rebalance swap takes the exclusive side for microseconds.
  std::shared_lock<std::shared_mutex> LockTopologyShared() const {
    return std::shared_lock<std::shared_mutex>(topology_mu_);
  }

  size_t NumUpNodes() const;
  bool HasQuorum() const { return NumUpNodes() * 2 > num_nodes(); }

  /// True if every ring slot of every projection of `table` is served by at
  /// least one up node (considering buddies). False means the K-safety
  /// budget is exhausted and the database must shut down for this data.
  bool IsDataAvailable(const std::string& table) const;

  // --- DDL -------------------------------------------------------------------

  /// Register the projection in the catalog, create its K buddies, and
  /// instantiate storage for all copies on every node.
  Status CreateProjectionWithBuddies(ProjectionDef def);

  /// CREATE TABLE + default super projection (+ buddies).
  Status CreateTableWithSuperProjection(TableDef table);

  Status DropTable(const std::string& table);

  /// Drop a projection and its K buddies from the catalog and every node's
  /// storage (used to undo a CREATE PROJECTION whose refresh failed: an
  /// unpopulated projection would answer queries with missing rows).
  Status DropProjectionWithBuddies(const std::string& projection);

  // --- load path ---------------------------------------------------------------

  /// Route `rows` of `table` to every projection copy on every up node.
  /// `direct_ros` forces the WOS bypass; by default large loads bypass
  /// automatically per config. Non-conforming rows (NULL in a non-nullable
  /// column, missing prejoin dimension match) are rejected, not loaded.
  Result<LoadResult> Load(const std::string& table, const RowBlock& rows,
                          Transaction* txn, bool direct_ros = false);

  /// Quorum commit (Section 5): every up node either applies the commit or
  /// is ejected; the commit succeeds if a quorum remains.
  Result<Epoch> Commit(const TransactionPtr& txn);

  // --- failure & recovery -----------------------------------------------------

  /// Node failure: volatile state (WOS, uncommitted data) is lost.
  Status MarkNodeDown(uint32_t node_id);

  /// Rejoin protocol (Section 5.2): truncate to LGE, historical phase
  /// (lock-free copy from buddies), current phase (under S locks), then the
  /// node is marked up.
  Status RecoverNode(uint32_t node_id);

  /// AHM policy: advance to the minimum LGE across up nodes; held back
  /// automatically while any node is down (Section 5.1).
  Status AdvanceAhm();

  /// Re-recover every projection copy quarantined by a scan after a
  /// persistent read failure (DESIGN.md §10): rebuild it from a buddy, then
  /// clear the flag. Copies whose repair fails stay quarantined and are
  /// retried on the next call (the tuple-mover tick drives this). Returns
  /// the number of copies repaired.
  Result<uint64_t> RepairQuarantined();

  // --- online operations -------------------------------------------------------

  /// Populate a projection created after its table was loaded, reading from
  /// a super projection (Section 5.2 "refresh").
  Status RefreshProjection(const std::string& projection);

  /// Add a node and rebalance online (Section 3.6): phase 1 builds
  /// new-generation storages at a sampled epoch while queries and DML
  /// continue; phase 2 briefly fences DML (S locks, timeout-bounded),
  /// replays the delta and swaps the topology atomically. Requires all
  /// nodes up.
  Status AddNodeAndRebalance();

  /// Shrink the cluster by one node with the same two-phase protocol; the
  /// leaving node's rows re-segment onto the survivors.
  Status RemoveLastNodeAndRebalance();

  /// Hard-link backup of every data file plus a catalog snapshot
  /// (Section 5.2). Returns the number of files captured.
  Result<uint64_t> Backup(const std::string& label);

  // --- background services -----------------------------------------------------

  /// One tuple-mover pass over every (node, projection): moveout, then
  /// mergeout to quiescence, then DVWOS->DVROS moves.
  Status RunTupleMover();

  /// Storage census used by benches/examples (Figure 2 reproduction).
  struct StorageCensus {
    size_t containers = 0;
    size_t files = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    uint64_t rows = 0;
  };
  StorageCensus Census(const std::string& projection) const;

  /// Bytes "shipped" between nodes by loads and exchanges (the simulated
  /// interconnect's traffic counter).
  uint64_t network_bytes() const { return network_bytes_.load(); }
  void AddNetworkBytes(uint64_t n) { network_bytes_.fetch_add(n); }

 private:
  Status SetupProjectionStorage(const ProjectionDef& def);
  Result<ProjectionStorageConfig> MakeStorageConfig(const ProjectionDef& def,
                                                    uint32_t node_id) const;
  Result<ProjectionStorageConfig> MakeStorageConfig(const ProjectionDef& def,
                                                    uint32_t node_id,
                                                    const SegmentationRing& ring) const;
  /// Two-phase online rebalance core shared by add and remove.
  Status RebalanceToNodeCount(uint32_t new_count);
  /// Phase-2 helper: replay commits in (from, to] from the active storages
  /// of `def` into the staged new-generation storages (routing by
  /// `new_ring`), including content-matched translation of deletes that
  /// target pre-`from` rows.
  Status ReplayRebalanceDelta(const ProjectionDef& def,
                              std::vector<std::unique_ptr<ProjectionStorage>>& staged,
                              Epoch from, Epoch to, const SegmentationRing& new_ring,
                              uint32_t old_count);
  Status RouteAndInsert(const ProjectionDef& proj, const RowBlock& rows,
                        Transaction* txn, bool direct_ros);
  /// Build prejoined rows for a prejoin projection (Section 3.3): N:1 join
  /// with dimension tables at load time; unmatched rows are rejected.
  Result<RowBlock> BuildPrejoinRows(const ProjectionDef& proj, const RowBlock& rows,
                                    std::vector<RejectedRecord>* rejected,
                                    Epoch snapshot);
  /// Copy epochs (lge, up_to] — or (0, up_to] when `full_rebuild`, which
  /// also guts the target copy, but only *after* the source read succeeded
  /// (a failed read must not destroy the last intact data of the copy).
  Status RecoverProjectionOnNode(const ProjectionDef& def, uint32_t node_id,
                                 Epoch up_to, bool take_lock, uint64_t txn_id,
                                 bool full_rebuild = false);
  /// Up copy holding exactly `node_id`'s rows of `def`, fit to serve as the
  /// source for a recovery that replays epochs after `needed_from`; null
  /// when K-safety is exhausted for that slot. Quarantined copies still
  /// holding their data qualify (reads are checksum-verified); copies a
  /// failed repair gutted qualify only when gutted at or before
  /// `needed_from` — such a copy is complete after the gut point only.
  ProjectionStorage* FindRecoverySource(const ProjectionDef& def, uint32_t node_id,
                                        Epoch needed_from);
  /// RefreshProjection body; runs with the anchor table's S lock held so
  /// every error path still releases it in the caller.
  Status RefreshProjectionLocked(const std::string& projection,
                                 const ProjectionDef& def, const TableDef& table,
                                 const ProjectionDef& src, Epoch now);

  ClusterConfig cfg_;
  FileSystem* fs_;
  Catalog* catalog_;
  EpochManager epochs_;
  LockManager locks_;
  TransactionManager txns_;
  /// Node objects never move or die once created: nodes_ only grows (within
  /// the capacity reserved by the constructor, so push_back never
  /// reallocates under concurrent node(i) readers), and removal just drops
  /// the active count. Concurrent paths iterate [0, num_nodes()), never
  /// nodes_.size().
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<uint32_t> active_nodes_{0};
  /// Extra node slots reserved beyond the configured size for elastic adds.
  static constexpr uint32_t kMaxAddedNodes = 128;
  mutable std::shared_mutex topology_mu_;  ///< see LockTopologyShared
  uint32_t rebalance_gen_ = 0;             ///< generation suffix for staged dirs
  /// Storages swapped out by a rebalance. Kept alive (files intact) until
  /// cluster teardown: scans planned before the swap still hold pointers
  /// into them, and buddy-rebuild closures may reroute onto them.
  std::vector<std::unique_ptr<ProjectionStorage>> retired_storage_;
  std::atomic<uint64_t> network_bytes_{0};
  mutable std::mutex ddl_mu_;
  /// Serializes tuple-mover passes (manual RunTupleMover vs the Database's
  /// background service thread).
  std::mutex tuple_mover_mu_;
  /// Serializes whole-copy recovery paths (RecoverNode vs RepairQuarantined):
  /// both truncate/clear a copy and re-ingest from a buddy, and two of them
  /// interleaving on one storage double-applies the overlapping epoch range.
  std::mutex recovery_mu_;
};

/// Read one node's rows of a projection at a snapshot epoch into a block
/// (recovery, refresh, rebalance and tests; queries use the exec engine).
/// Optional outputs, all parallel to the rows: commit epochs, delete epochs
/// (0 = live as of `epoch`), and (target container / WOS, position) pairs.
Status ReadProjectionRows(const FileSystem* fs, ProjectionStorage* ps, Epoch epoch,
                          RowBlock* out, std::vector<Epoch>* row_epochs,
                          std::vector<Epoch>* delete_epochs,
                          std::vector<std::pair<uint64_t, uint64_t>>* positions);

}  // namespace stratica

#endif  // STRATICA_CLUSTER_CLUSTER_H_
