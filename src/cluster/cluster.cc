#include "cluster/cluster.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace stratica {

// ---------------------------------------------------------------------------
// Node

ProjectionStorage* Node::GetStorage(const std::string& projection) {
  std::lock_guard lock(mu_);
  auto it = storage_.find(projection);
  return it == storage_.end() ? nullptr : it->second.get();
}

ProjectionStorage* Node::AddStorage(const std::string& projection,
                                    ProjectionStorageConfig cfg) {
  std::lock_guard lock(mu_);
  auto ps = std::make_unique<ProjectionStorage>(fs_, BaseDir() + "/" + projection,
                                                std::move(cfg));
  ps->SetHostUpFlag(&up_);
  auto* raw = ps.get();
  storage_[projection] = std::move(ps);
  return raw;
}

std::unique_ptr<ProjectionStorage> Node::ReplaceStorage(
    const std::string& projection, std::unique_ptr<ProjectionStorage> ps) {
  std::lock_guard lock(mu_);
  ps->SetHostUpFlag(&up_);
  auto& slot = storage_[projection];
  slot.swap(ps);
  return ps;  // the previous storage (null when the node had none)
}

std::unique_ptr<ProjectionStorage> Node::TakeStorage(const std::string& projection) {
  std::lock_guard lock(mu_);
  auto it = storage_.find(projection);
  if (it == storage_.end()) return nullptr;
  auto out = std::move(it->second);
  storage_.erase(it);
  return out;
}

void Node::DropStorage(const std::string& projection) {
  std::lock_guard lock(mu_);
  auto it = storage_.find(projection);
  if (it != storage_.end()) {
    it->second->Clear(/*delete_files=*/true);
    storage_.erase(it);
  }
}

std::vector<std::string> Node::StorageNames() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, ps] : storage_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(ClusterConfig cfg, FileSystem* fs, Catalog* catalog)
    : cfg_(cfg), fs_(fs), catalog_(catalog), txns_(&epochs_, &locks_) {
  // Reserve headroom for elastic adds up front: node(i) readers race
  // push_back during a rebalance, which is only safe while the vector never
  // reallocates.
  nodes_.reserve(cfg.num_nodes + kMaxAddedNodes);
  for (uint32_t i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, fs_, &epochs_, cfg.tuple_mover));
  }
  active_nodes_.store(cfg.num_nodes, std::memory_order_release);
}

size_t Cluster::NumUpNodes() const {
  size_t up = 0;
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) up += nodes_[i]->up() ? 1 : 0;
  return up;
}

bool Cluster::IsDataAvailable(const std::string& table) const {
  SegmentationRing ring = this->ring();
  auto projections = catalog_->ProjectionsForTable(table);
  // Group copies by family (primary name).
  std::map<std::string, std::vector<const ProjectionDef*>> families;
  for (const auto& p : projections) {
    families[p.buddy_of.empty() ? p.name : p.buddy_of].push_back(&p);
  }
  for (const auto& [family, copies] : families) {
    for (uint32_t slot = 0; slot < ring.num_nodes(); ++slot) {
      bool available = false;
      for (const auto* p : copies) {
        if (p->segmentation.replicated) {
          // Any up node serves a replicated copy.
          available = available || NumUpNodes() > 0;
        } else {
          uint32_t node_id = (slot + p->segmentation.node_offset) % ring.num_nodes();
          available = available || nodes_[node_id]->up();
        }
      }
      if (!available) return false;
    }
  }
  return true;
}

Result<ProjectionStorageConfig> Cluster::MakeStorageConfig(const ProjectionDef& def,
                                                           uint32_t node_id) const {
  return MakeStorageConfig(def, node_id, ring());
}

Result<ProjectionStorageConfig> Cluster::MakeStorageConfig(
    const ProjectionDef& def, uint32_t node_id, const SegmentationRing& ring) const {
  STRATICA_ASSIGN_OR_RETURN(TableDef table, catalog_->GetTable(def.anchor_table));
  ProjectionStorageConfig cfg;
  cfg.projection = def.name;
  BindSchema proj_schema;
  for (const auto& pc : def.columns) {
    TypeId type;
    if (pc.table_column >= 0) {
      type = table.columns[pc.table_column].type;
    } else {
      // Prejoined dimension column "dim.col".
      auto dot = pc.name.find('.');
      if (dot == std::string::npos)
        return Status::Internal("unresolved projection column: ", pc.name);
      STRATICA_ASSIGN_OR_RETURN(TableDef dim,
                                catalog_->GetTable(pc.name.substr(0, dot)));
      int dc = dim.FindColumn(pc.name.substr(dot + 1));
      if (dc < 0) return Status::AnalysisError("unknown dimension column: ", pc.name);
      type = dim.columns[dc].type;
    }
    cfg.column_names.push_back(pc.name);
    cfg.column_types.push_back(type);
    cfg.encodings.push_back(pc.encoding);
    proj_schema.Add(pc.name, type);
  }
  cfg.sort_columns = def.sort_columns;
  if (table.partition_by) {
    // Partitioning is a table property; projections lacking the partition
    // columns are stored unpartitioned (DESIGN.md).
    ExprPtr pe = CloneExpr(table.partition_by);
    if (BindExpr(pe, proj_schema).ok()) cfg.partition_expr = pe;
  }
  if (!def.segmentation.replicated) {
    ExprPtr se = CloneExpr(def.segmentation.expr);
    STRATICA_RETURN_NOT_OK(BindExpr(se, proj_schema));
    cfg.segmentation_expr = se;
    auto [lo, hi] = ring.RangeStoredBy(node_id, def.segmentation.node_offset);
    cfg.range_lo = lo;
    cfg.range_hi = hi;
    cfg.num_local_segments = cfg_.local_segments_per_node;
  } else {
    cfg.num_local_segments = 1;
  }
  cfg.wos_capacity_rows = cfg_.wos_capacity_rows;
  return cfg;
}

Status Cluster::SetupProjectionStorage(const ProjectionDef& def) {
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) {
    STRATICA_ASSIGN_OR_RETURN(ProjectionStorageConfig cfg,
                              MakeStorageConfig(def, nodes_[i]->id()));
    nodes_[i]->AddStorage(def.name, std::move(cfg));
  }
  return Status::OK();
}

Status Cluster::CreateProjectionWithBuddies(ProjectionDef def) {
  std::lock_guard lock(ddl_mu_);
  if (!def.segmentation.replicated && cfg_.k_safety >= num_nodes()) {
    return Status::InvalidArgument("k-safety ", cfg_.k_safety,
                                   " requires more than ", num_nodes(), " nodes");
  }
  STRATICA_RETURN_NOT_OK(catalog_->CreateProjection(def));
  STRATICA_ASSIGN_OR_RETURN(ProjectionDef stored, catalog_->GetProjection(def.name));
  STRATICA_RETURN_NOT_OK(SetupProjectionStorage(stored));
  // K-safety: replicated projections already live everywhere; segmented
  // projections get K buddies with rotated ring placement.
  if (!stored.segmentation.replicated) {
    for (uint32_t k = 1; k <= cfg_.k_safety; ++k) {
      ProjectionDef buddy = MakeBuddyProjection(stored, k);
      STRATICA_RETURN_NOT_OK(catalog_->CreateProjection(buddy));
      STRATICA_ASSIGN_OR_RETURN(ProjectionDef stored_buddy,
                                catalog_->GetProjection(buddy.name));
      STRATICA_RETURN_NOT_OK(SetupProjectionStorage(stored_buddy));
    }
  }
  return Status::OK();
}

Status Cluster::CreateTableWithSuperProjection(TableDef table) {
  std::string name = table.name;
  STRATICA_RETURN_NOT_OK(catalog_->CreateTable(std::move(table)));
  STRATICA_ASSIGN_OR_RETURN(TableDef stored, catalog_->GetTable(name));
  return CreateProjectionWithBuddies(MakeDefaultSuperProjection(stored));
}

Status Cluster::DropTable(const std::string& table) {
  // Owner lock (Table 1: compatible with nothing): freeing storage must
  // not race DML or a tuple-mover pass still holding pointers into it.
  // Snapshot queries take no locks — catalog versioning, not locking, is
  // how Vertica isolates those; see DESIGN.md §9 limitations.
  auto txn = txns_.Begin();
  Status locked = locks_.Acquire(txn->id(), table, LockMode::kO);
  if (!locked.ok()) {
    txns_.Rollback(txn);
    return locked;
  }
  Status st = Status::OK();
  {
    std::lock_guard lock(ddl_mu_);
    auto projections = catalog_->ProjectionsForTable(table);
    st = catalog_->DropTable(table);
    if (st.ok()) {
      for (const auto& p : projections) {
        for (auto& node : nodes_) node->DropStorage(p.name);
      }
    }
  }
  txns_.Rollback(txn);
  return st;
}

Status Cluster::DropProjectionWithBuddies(const std::string& projection) {
  // Owner lock on the anchor table: the background tuple mover caches
  // ProjectionStorage pointers for the duration of its per-table pass
  // (under T), so freeing them here without a conflicting lock would be a
  // use-after-free.
  auto def = catalog_->GetProjection(projection);
  TransactionPtr txn;
  if (def.ok()) {
    txn = txns_.Begin();
    Status locked = locks_.Acquire(txn->id(), def.value().anchor_table, LockMode::kO);
    if (!locked.ok()) {
      txns_.Rollback(txn);
      return locked;
    }
  }
  Status st = Status::OK();
  {
    std::lock_guard lock(ddl_mu_);
    std::vector<std::string> names{projection};
    for (const auto& name : catalog_->ProjectionNames()) {
      auto p = catalog_->GetProjection(name);
      if (p.ok() && p.value().buddy_of == projection) names.push_back(name);
    }
    for (const auto& name : names) {
      Status dropped = catalog_->DropProjection(name);
      if (!dropped.ok() && st.ok()) st = dropped;
      for (auto& node : nodes_) node->DropStorage(name);
    }
  }
  if (txn) txns_.Rollback(txn);
  return st;
}

Result<RowBlock> Cluster::BuildPrejoinRows(const ProjectionDef& proj,
                                           const RowBlock& rows,
                                           std::vector<RejectedRecord>* rejected,
                                           Epoch snapshot) {
  STRATICA_ASSIGN_OR_RETURN(TableDef fact, catalog_->GetTable(proj.anchor_table));
  // Load each dimension's rows (dimensions are small by definition of the
  // N:1 prejoin) and index them by join key.
  struct DimData {
    RowBlock rows;
    std::vector<int> dim_cols;       // join key columns in dim block
    std::vector<int> fact_cols;      // join key columns in fact block
    std::unordered_map<uint64_t, size_t> index;
    std::string name;
  };
  std::vector<DimData> dims;
  for (const auto& pj : proj.prejoins) {
    DimData d;
    d.name = pj.dim_table;
    STRATICA_ASSIGN_OR_RETURN(TableDef dim_table, catalog_->GetTable(pj.dim_table));
    // Read the dimension from its first available super projection copy.
    RowBlock dim_rows;
    bool found = false;
    for (const auto& dp : catalog_->ProjectionsForTable(pj.dim_table)) {
      if (!dp.is_super) continue;
      // Concatenate across nodes (dimension projections may be segmented).
      RowBlock all(dim_table.ToBindSchema().types);
      bool complete = true;
      uint32_t n = num_nodes();
      if (dp.segmentation.replicated) {
        for (uint32_t i = 0; i < n; ++i) {
          Node* node = nodes_[i].get();
          if (!node->up()) continue;
          auto* ps = node->GetStorage(dp.name);
          if (!ps) continue;
          RowBlock part;
          STRATICA_RETURN_NOT_OK(
              ReadProjectionRows(fs_, ps, snapshot, &part, nullptr, nullptr, nullptr));
          all = std::move(part);
          break;
        }
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          Node* node = nodes_[i].get();
          auto* ps = node->GetStorage(dp.name);
          if (!ps) continue;
          if (!node->up()) {
            complete = false;
            break;
          }
          RowBlock part;
          STRATICA_RETURN_NOT_OK(
              ReadProjectionRows(fs_, ps, snapshot, &part, nullptr, nullptr, nullptr));
          for (size_t r = 0; r < part.NumRows(); ++r) all.AppendRowFrom(part, r);
        }
      }
      if (complete) {
        // The dim projection stores columns in its own order; remap to
        // table order.
        RowBlock remapped(dim_table.ToBindSchema().types);
        for (size_t tc = 0; tc < dim_table.columns.size(); ++tc) {
          int pc = dp.FindColumn(dim_table.columns[tc].name);
          if (pc < 0) {
            complete = false;
            break;
          }
          remapped.columns[tc] = all.columns[pc];
        }
        if (complete) {
          dim_rows = std::move(remapped);
          found = true;
          break;
        }
      }
    }
    if (!found)
      return Status::ClusterUnavailable("dimension ", pj.dim_table,
                                        " unavailable for prejoin load");
    d.rows = std::move(dim_rows);
    for (const auto& c : pj.dim_join_columns) {
      int idx = dim_table.FindColumn(c);
      if (idx < 0) return Status::AnalysisError("bad prejoin dim column: ", c);
      d.dim_cols.push_back(idx);
    }
    for (const auto& c : pj.fact_join_columns) {
      int idx = fact.FindColumn(c);
      if (idx < 0) return Status::AnalysisError("bad prejoin fact column: ", c);
      d.fact_cols.push_back(idx);
    }
    for (size_t r = 0; r < d.rows.NumRows(); ++r) {
      uint64_t h = 0x9b97;
      for (int c : d.dim_cols) h = HashCombine(h, d.rows.columns[c].HashEntry(r));
      d.index.emplace(h, r);
    }
    dims.push_back(std::move(d));
  }

  // Build output columns in the projection's order.
  std::vector<TypeId> out_types;
  STRATICA_ASSIGN_OR_RETURN(ProjectionStorageConfig cfg, MakeStorageConfig(proj, 0));
  out_types = cfg.column_types;
  RowBlock out(out_types);

  std::vector<size_t> dim_match(dims.size());
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    bool ok = true;
    for (size_t di = 0; di < dims.size() && ok; ++di) {
      uint64_t h = 0x9b97;
      for (int c : dims[di].fact_cols) h = HashCombine(h, rows.columns[c].HashEntry(r));
      auto it = dims[di].index.find(h);
      if (it == dims[di].index.end()) {
        rejected->push_back(
            {r, "no matching row in prejoin dimension " + dims[di].name});
        ok = false;
      } else {
        dim_match[di] = it->second;
      }
    }
    if (!ok) continue;
    for (size_t oc = 0; oc < proj.columns.size(); ++oc) {
      const auto& pc = proj.columns[oc];
      if (pc.table_column >= 0) {
        out.columns[oc].AppendFrom(rows.columns[pc.table_column], r);
      } else {
        auto dot = pc.name.find('.');
        std::string dim_name = pc.name.substr(0, dot);
        std::string col_name = pc.name.substr(dot + 1);
        for (size_t di = 0; di < dims.size(); ++di) {
          if (dims[di].name != dim_name) continue;
          STRATICA_ASSIGN_OR_RETURN(TableDef dim_table, catalog_->GetTable(dim_name));
          int dc = dim_table.FindColumn(col_name);
          out.columns[oc].AppendFrom(dims[di].rows.columns[dc], dim_match[di]);
          break;
        }
      }
    }
  }
  return out;
}

Status Cluster::RouteAndInsert(const ProjectionDef& proj, const RowBlock& rows,
                               Transaction* txn, bool direct_ros) {
  if (rows.NumRows() == 0) return Status::OK();
  uint64_t block_bytes = rows.MemoryBytes();
  // Topology snapshot for the whole routing pass. DML holds the table's I
  // lock, and the rebalance swap holds S on every table, so the snapshot
  // cannot go stale mid-route.
  uint32_t num = num_nodes();
  SegmentationRing ring = this->ring();
  if (proj.segmentation.replicated) {
    for (uint32_t i = 0; i < num; ++i) {
      Node* node = nodes_[i].get();
      if (!node->up()) continue;
      auto* ps = node->GetStorage(proj.name);
      if (!ps) return Status::Internal("missing storage for ", proj.name);
      RowBlock copy = rows;
      if (node->id() != 0) AddNetworkBytes(block_bytes);
      Status st = direct_ros ? ps->InsertDirectRos(std::move(copy), txn)
                             : ps->InsertWos(std::move(copy), txn);
      // A node crashing between the up() check above and the insert is the
      // same case as failing the check: skip it, the buddy recovers the rows.
      if (st.code() == StatusCode::kClusterUnavailable) continue;
      STRATICA_RETURN_NOT_OK(st);
    }
    return Status::OK();
  }
  // Evaluate the segmentation expression over the projection-ordered rows.
  ColumnVector hashes;
  ProjectionStorage* any_ps = nodes_[0]->GetStorage(proj.name);
  if (!any_ps) return Status::Internal("missing storage for ", proj.name);
  STRATICA_RETURN_NOT_OK(
      EvalExpr(*any_ps->config().segmentation_expr, rows, &hashes));
  std::vector<std::vector<uint32_t>> per_node(num);
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    uint32_t target = ring.NodeFor(static_cast<uint64_t>(hashes.ints[r]),
                                   proj.segmentation.node_offset);
    per_node[target].push_back(static_cast<uint32_t>(r));
  }
  for (uint32_t n = 0; n < num; ++n) {
    if (per_node[n].empty()) continue;
    // Rows destined to a down node are skipped; the node recovers them from
    // this projection's buddy after it rejoins (Section 5.2).
    if (!nodes_[n]->up()) continue;
    auto* ps = nodes_[n]->GetStorage(proj.name);
    if (!ps) return Status::Internal("missing storage for ", proj.name);
    RowBlock part(std::vector<TypeId>(
        [&] {
          std::vector<TypeId> t;
          for (const auto& c : rows.columns) t.push_back(c.type);
          return t;
        }()));
    for (uint32_t r : per_node[n]) part.AppendRowFrom(rows, r);
    if (n != 0) AddNetworkBytes(part.MemoryBytes());
    Status st = direct_ros ? ps->InsertDirectRos(std::move(part), txn)
                           : ps->InsertWos(std::move(part), txn);
    // Crash raced the up() check: same as a down node, skip (see above).
    if (st.code() == StatusCode::kClusterUnavailable) continue;
    STRATICA_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Result<LoadResult> Cluster::Load(const std::string& table, const RowBlock& rows,
                                 Transaction* txn, bool direct_ros) {
  if (!HasQuorum())
    return Status::ClusterUnavailable("quorum lost: ", NumUpNodes(), " of ",
                                      num_nodes(), " nodes up");
  STRATICA_ASSIGN_OR_RETURN(TableDef def, catalog_->GetTable(table));
  if (rows.NumColumns() != def.columns.size())
    return Status::InvalidArgument("column count mismatch loading ", table);
  if (!catalog_->HasSuperProjection(table))
    return Status::InvalidArgument("table ", table, " has no super projection");
  STRATICA_RETURN_NOT_OK(locks_.Acquire(txn->id(), table, LockMode::kI));

  LoadResult result;
  // Schema conformance: reject rows with NULLs in non-nullable columns.
  RowBlock flat = rows;
  flat.DecodeAll();
  std::vector<uint8_t> keep(flat.NumRows(), 1);
  for (size_t c = 0; c < def.columns.size(); ++c) {
    if (def.columns[c].nullable) continue;
    for (size_t r = 0; r < flat.NumRows(); ++r) {
      if (keep[r] && flat.columns[c].IsNull(r)) {
        keep[r] = 0;
        result.rejected.push_back(
            {r, "NULL in non-nullable column " + def.columns[c].name});
      }
    }
  }
  RowBlock accepted(def.ToBindSchema().types);
  for (size_t r = 0; r < flat.NumRows(); ++r) {
    if (keep[r]) accepted.AppendRowFrom(flat, r);
  }
  result.rows_loaded = accepted.NumRows();

  if (!direct_ros && cfg_.auto_direct_ros_threshold_enabled &&
      accepted.NumRows() >= cfg_.direct_ros_row_threshold) {
    direct_ros = true;  // large loads waste WOS memory (Section 7)
  }

  for (const auto& proj : catalog_->ProjectionsForTable(table)) {
    RowBlock proj_rows;
    if (proj.IsPrejoin()) {
      std::vector<RejectedRecord> prejoin_rejects;
      STRATICA_ASSIGN_OR_RETURN(
          proj_rows,
          BuildPrejoinRows(proj, accepted, &prejoin_rejects, txn->snapshot_epoch()));
      // Buddy copies reject the same orphan rows; report each row once.
      for (auto& rej : prejoin_rejects) {
        bool dup = false;
        for (const auto& seen : result.rejected) {
          dup |= seen.row_index == rej.row_index && seen.reason == rej.reason;
        }
        if (!dup) result.rejected.push_back(std::move(rej));
      }
    } else {
      std::vector<TypeId> types;
      for (const auto& pc : proj.columns)
        types.push_back(def.columns[pc.table_column].type);
      proj_rows = RowBlock(types);
      for (size_t c = 0; c < proj.columns.size(); ++c) {
        proj_rows.columns[c] = accepted.columns[proj.columns[c].table_column];
      }
    }
    STRATICA_RETURN_NOT_OK(RouteAndInsert(proj, proj_rows, txn, direct_ros));
  }
  return result;
}

Result<Epoch> Cluster::Commit(const TransactionPtr& txn) {
  // Nodes injected with a commit failure are ejected from the cluster
  // (Section 5: "nodes either successfully complete the commit or are
  // ejected"); the commit itself succeeds if a quorum remains.
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) {
    if (nodes_[i]->up() && nodes_[i]->ConsumeCommitFailure()) {
      (void)MarkNodeDown(nodes_[i]->id());
    }
  }
  if (!HasQuorum()) {
    txns_.Rollback(txn);
    return Status::ClusterUnavailable("commit failed: quorum lost");
  }
  return txns_.Commit(txn);
}

Status Cluster::MarkNodeDown(uint32_t node_id) {
  if (node_id >= num_nodes()) return Status::InvalidArgument("no such node");
  Node* node = nodes_[node_id].get();
  node->set_up(false);
  for (const auto& name : node->StorageNames()) {
    node->GetStorage(name)->CrashVolatileState();
  }
  return Status::OK();
}

Status Cluster::AdvanceAhm() {
  // The AHM does not advance while nodes are down, preserving the history
  // needed to replay DML during recovery (Section 5.1).
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) {
    if (!nodes_[i]->up()) return Status::OK();
  }
  Epoch min_lge = epochs_.LatestQueryableEpoch();
  for (uint32_t i = 0; i < n; ++i) {
    for (const auto& name : nodes_[i]->StorageNames()) {
      auto* ps = nodes_[i]->GetStorage(name);
      if (ps) min_lge = std::min(min_lge, ps->lge());
    }
  }
  epochs_.AdvanceAhm(min_lge);
  return Status::OK();
}

Status Cluster::RunTupleMover() {
  // One pass at a time: TupleMover is thread-compatible, not thread-safe,
  // and the background service may run concurrently with manual calls.
  std::lock_guard tm_lock(tuple_mover_mu_);
  // Per-table T lock (Table 1): compatible with queries and inserts, but
  // incompatible with X, so no delete transaction can be registering or
  // stamping delete vectors while moveout/mergeout translate them. A busy
  // table (live X holder) is skipped and retried on the next pass rather
  // than stalling the mover.
  for (const auto& table : catalog_->TableNames()) {
    auto txn = txns_.Begin();
    Status locked = locks_.Acquire(txn->id(), table, LockMode::kT,
                                   std::chrono::milliseconds(1000));
    if (!locked.ok()) {
      txns_.Rollback(txn);
      continue;
    }
    Status st = Status::OK();
    for (const auto& proj : catalog_->ProjectionsForTable(table)) {
      uint32_t n = num_nodes();
      for (uint32_t i = 0; i < n; ++i) {
        Node* node = nodes_[i].get();
        if (!node->up()) continue;
        auto* ps = node->GetStorage(proj.name);
        if (ps == nullptr) continue;  // dropped concurrently
        st = node->mover()->Moveout(ps);
        if (st.ok()) st = node->mover()->MergeoutAll(ps);
        if (st.ok()) st = node->mover()->MoveDeleteVectors(ps);
        // Reclaim mergeout-replaced files whose snapshots have drained —
        // every tick, not only when new merge work exists.
        ps->GcRetired();
        if (!st.ok()) break;
      }
      if (!st.ok()) break;
    }
    txns_.Rollback(txn);  // bookkeeping txn held no data; releases the T lock
    STRATICA_RETURN_NOT_OK(st);
  }
  // Opportunistic re-recovery of quarantined projection copies rides the
  // mover tick; a failed repair keeps its flag set and retries next pass.
  (void)RepairQuarantined();
  return Status::OK();
}

Cluster::StorageCensus Cluster::Census(const std::string& projection) const {
  StorageCensus census;
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) {
    auto* ps = nodes_[i]->GetStorage(projection);
    if (!ps) continue;
    for (const auto& c : ps->Containers()) {
      ++census.containers;
      census.files += c->columns.size() * 2 + (c->epoch_data_path.empty() ? 0 : 2) + 1;
      census.bytes += c->total_bytes;
      census.raw_bytes += c->raw_bytes;
      census.rows += c->row_count;
    }
  }
  return census;
}

Result<uint64_t> Cluster::Backup(const std::string& label) {
  // Snapshot the catalog, then hard-link every data file (Section 5.2):
  // links pin the bytes while the backup is copied off-cluster, and storage
  // reclaims automatically when the links are dropped.
  STRATICA_RETURN_NOT_OK(catalog_->Save(fs_, "backup/" + label + "/catalog"));
  uint64_t files = 0;
  uint32_t n = num_nodes();
  for (uint32_t i = 0; i < n; ++i) {
    STRATICA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              fs_->List(nodes_[i]->BaseDir() + "/"));
    for (const auto& name : names) {
      STRATICA_RETURN_NOT_OK(fs_->HardLink(name, "backup/" + label + "/" + name));
      ++files;
    }
  }
  return files;
}

Status ReadProjectionRows(const FileSystem* fs, ProjectionStorage* ps, Epoch epoch,
                          RowBlock* out, std::vector<Epoch>* row_epochs,
                          std::vector<Epoch>* delete_epochs,
                          std::vector<std::pair<uint64_t, uint64_t>>* positions) {
  const auto& cfg = ps->config();
  *out = RowBlock(std::vector<TypeId>(cfg.column_types));
  if (row_epochs) row_epochs->clear();
  if (delete_epochs) delete_epochs->clear();
  if (positions) positions->clear();

  StorageSnapshot snap = ps->GetSnapshot(epoch);
  for (const auto& c : snap.ros) {
    RowBlock rows;
    std::vector<Epoch> epochs;
    STRATICA_RETURN_NOT_OK(ReadRosContainer(fs, *c, &rows, &epochs));
    // Per-position delete epoch for this container.
    std::unordered_map<uint64_t, Epoch> dels;
    for (const auto& d : ps->ContainerDeleteChunks(c->id)) {
      for (size_t i = 0; i < d->positions.size(); ++i) {
        if (d->epochs[i] <= epoch) dels[d->positions[i]] = d->epochs[i];
      }
    }
    for (size_t r = 0; r < rows.NumRows(); ++r) {
      if (epochs[r] > epoch) continue;  // committed after the snapshot
      out->AppendRowFrom(rows, r);
      if (row_epochs) row_epochs->push_back(epochs[r]);
      if (delete_epochs) {
        auto it = dels.find(r);
        delete_epochs->push_back(it == dels.end() ? 0 : it->second);
      }
      if (positions) positions->emplace_back(c->id, r);
    }
  }
  std::unordered_map<uint64_t, Epoch> wos_dels;
  for (const auto& d : ps->WosDeleteChunks()) {
    for (size_t i = 0; i < d->positions.size(); ++i) {
      if (d->epochs[i] <= epoch) wos_dels[d->positions[i]] = d->epochs[i];
    }
  }
  for (const auto& w : snap.wos) {
    for (size_t r = 0; r < w->NumRows(); ++r) {
      out->AppendRowFrom(w->rows, r);
      if (row_epochs) row_epochs->push_back(w->epoch);
      if (delete_epochs) {
        auto it = wos_dels.find(w->start_pos + r);
        delete_epochs->push_back(it == wos_dels.end() ? 0 : it->second);
      }
      if (positions) positions->emplace_back(kWosTargetId, w->start_pos + r);
    }
  }
  return Status::OK();
}

}  // namespace stratica
