// C-Store (VLDB 2005) baseline engine, reimplemented for the Table 3
// comparison (Section 8.1).
//
// Architectural differences from Stratica's engine, matching what the paper
// credits for Vertica's ~2x advantage:
//   - row-at-a-time pull execution through virtual accessors (no
//     vectorization),
//   - partial projections with explicit join indices: reconstructing a
//     tuple chases stored row ids across projections,
//   - storage ids are stored explicitly (the disk-space overhead Section
//     3.2 calls out), and only RLE/plain encodings are used.
#ifndef STRATICA_CSTORE_CSTORE_ENGINE_H_
#define STRATICA_CSTORE_CSTORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"

namespace stratica {

/// \brief One C-Store projection: a sorted column set persisted with
/// C-Store's encodings (RLE on the sort column, plain elsewhere) plus an
/// explicit storage-id column.
struct CStoreProjection {
  std::string name;
  std::vector<std::string> column_names;
  RowBlock columns;             // in-memory image (flat)
  std::vector<int64_t> row_ids; // explicit storage ids (join index targets)
  uint64_t disk_bytes = 0;

  int FindColumn(const std::string& n) const {
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (column_names[i] == n) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Join index: maps each row of the source projection to the row id of its
/// match in the target projection (C-Store Section on join indices).
struct CStoreJoinIndex {
  std::string from, to;
  std::vector<int64_t> target_row;  // per source row
  uint64_t disk_bytes = 0;
};

/// \brief The baseline engine: projections + join indices + row-at-a-time
/// query evaluation.
class CStoreEngine {
 public:
  explicit CStoreEngine(FileSystem* fs) : fs_(fs) {}

  /// Store a projection sorted by `sort_column` (index into the block).
  Status AddProjection(const std::string& name, std::vector<std::string> column_names,
                       RowBlock rows, int sort_column);

  /// Build a join index from projection `from` to `to`: for each `from`
  /// row, the row id in `to` with fk == pk.
  Status AddJoinIndex(const std::string& from, const std::string& to,
                      const std::string& fk_column, const std::string& pk_column);

  const CStoreProjection* projection(const std::string& name) const;
  const CStoreJoinIndex* join_index(const std::string& from) const;

  uint64_t TotalDiskBytes() const;

  /// Row-at-a-time value accessors (deliberately virtual-dispatch-shaped:
  /// one indirect call per value, as in the row-oriented inner loops of the
  /// prototype).
  class RowSource {
   public:
    virtual ~RowSource() = default;
    virtual int64_t GetInt(size_t row, int col) const = 0;
    virtual double GetDouble(size_t row, int col) const = 0;
    virtual size_t NumRows() const = 0;
  };

  std::unique_ptr<RowSource> OpenSource(const std::string& projection) const;

  /// Disk-resident access: decode the projection's persisted column files
  /// afresh (C-Store queries read from disk; handing out the in-memory
  /// build image would flatter the baseline).
  std::unique_ptr<RowSource> OpenSourceFromDisk(const std::string& projection) const;

  /// Page-granular random access with a one-page cache per column: the cost
  /// model of join-index reconstruction, which reads the target
  /// projection's pages in row-id order, not storage order (Section 3.2:
  /// "the runtime cost of reconstructing full tuples ... was very high").
  std::unique_ptr<RowSource> OpenPagedSource(const std::string& projection) const;

  /// Reconstruct the `to`-projection column value for a source row by
  /// chasing the join index (binary search over explicit row ids).
  Result<int64_t> ChaseJoin(const std::string& from, size_t row,
                            const std::string& to_column) const;

 private:
  FileSystem* fs_;
  std::map<std::string, CStoreProjection> projections_;
  std::map<std::string, CStoreJoinIndex> join_indices_;  // keyed by `from`
};

}  // namespace stratica

#endif  // STRATICA_CSTORE_CSTORE_ENGINE_H_
