#include "cstore/cstore_engine.h"

#include <algorithm>
#include <unordered_map>

#include "storage/column_file.h"
#include "storage/sort_util.h"

namespace stratica {

Status CStoreEngine::AddProjection(const std::string& name,
                                   std::vector<std::string> column_names,
                                   RowBlock rows, int sort_column) {
  CStoreProjection proj;
  proj.name = name;
  proj.column_names = std::move(column_names);
  rows.DecodeAll();
  std::vector<uint32_t> perm =
      ComputeSortPermutation(rows, {static_cast<uint32_t>(sort_column)});
  proj.columns = ApplyPermutation(rows, perm);
  proj.row_ids.resize(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) proj.row_ids[i] = perm[i];

  // Persist with C-Store's encodings: RLE on the sorted column, plain
  // elsewhere, and the explicit storage-id column (plain 8 bytes/row).
  // Blocks model 8KB disk pages (1024 values).
  constexpr size_t kPageRows = 1024;
  for (size_t c = 0; c < proj.columns.NumColumns(); ++c) {
    EncodingId enc = static_cast<int>(c) == sort_column ? EncodingId::kRle
                                                        : EncodingId::kPlain;
    ColumnWriter writer(proj.columns.columns[c].type, enc, kPageRows);
    STRATICA_RETURN_NOT_OK(writer.Append(proj.columns.columns[c]));
    STRATICA_ASSIGN_OR_RETURN(
        ColumnFileMeta meta,
        writer.Finish(fs_, "cstore/" + name + "/c" + std::to_string(c) + ".dat",
                      "cstore/" + name + "/c" + std::to_string(c) + ".idx"));
    proj.disk_bytes += meta.encoded_bytes;
  }
  {
    ColumnVector ids(TypeId::kInt64);
    ids.ints = proj.row_ids;
    ColumnWriter writer(TypeId::kInt64, EncodingId::kPlain);
    STRATICA_RETURN_NOT_OK(writer.Append(ids));
    STRATICA_ASSIGN_OR_RETURN(ColumnFileMeta meta,
                              writer.Finish(fs_, "cstore/" + name + "/rowids.dat",
                                            "cstore/" + name + "/rowids.idx"));
    proj.disk_bytes += meta.encoded_bytes;
  }
  projections_[name] = std::move(proj);
  return Status::OK();
}

Status CStoreEngine::AddJoinIndex(const std::string& from, const std::string& to,
                                  const std::string& fk_column,
                                  const std::string& pk_column) {
  auto fit = projections_.find(from);
  auto tit = projections_.find(to);
  if (fit == projections_.end() || tit == projections_.end())
    return Status::NotFound("projection missing for join index");
  int fk = fit->second.FindColumn(fk_column);
  int pk = tit->second.FindColumn(pk_column);
  if (fk < 0 || pk < 0) return Status::NotFound("join index column missing");

  std::unordered_map<int64_t, int64_t> pk_to_row;
  const auto& pk_col = tit->second.columns.columns[pk];
  for (size_t r = 0; r < pk_col.ints.size(); ++r) pk_to_row.emplace(pk_col.ints[r], r);

  CStoreJoinIndex index;
  index.from = from;
  index.to = to;
  const auto& fk_col = fit->second.columns.columns[fk];
  index.target_row.resize(fk_col.ints.size(), -1);
  for (size_t r = 0; r < fk_col.ints.size(); ++r) {
    auto it = pk_to_row.find(fk_col.ints[r]);
    if (it != pk_to_row.end()) index.target_row[r] = it->second;
  }
  // Persisted as an explicit 8-byte-per-row structure.
  ColumnVector targets(TypeId::kInt64);
  targets.ints = index.target_row;
  ColumnWriter writer(TypeId::kInt64, EncodingId::kPlain);
  STRATICA_RETURN_NOT_OK(writer.Append(targets));
  STRATICA_ASSIGN_OR_RETURN(
      ColumnFileMeta meta,
      writer.Finish(fs_, "cstore/ji_" + from + "_" + to + ".dat",
                    "cstore/ji_" + from + "_" + to + ".idx"));
  index.disk_bytes = meta.encoded_bytes;
  join_indices_[from] = std::move(index);
  return Status::OK();
}

const CStoreProjection* CStoreEngine::projection(const std::string& name) const {
  auto it = projections_.find(name);
  return it == projections_.end() ? nullptr : &it->second;
}

const CStoreJoinIndex* CStoreEngine::join_index(const std::string& from) const {
  auto it = join_indices_.find(from);
  return it == join_indices_.end() ? nullptr : &it->second;
}

uint64_t CStoreEngine::TotalDiskBytes() const {
  uint64_t n = 0;
  for (const auto& [name, p] : projections_) n += p.disk_bytes;
  for (const auto& [name, ji] : join_indices_) n += ji.disk_bytes;
  return n;
}

namespace {
class ProjectionRowSource : public CStoreEngine::RowSource {
 public:
  explicit ProjectionRowSource(const CStoreProjection* proj) : proj_(proj) {}
  int64_t GetInt(size_t row, int col) const override {
    return proj_->columns.columns[col].ints[row];
  }
  double GetDouble(size_t row, int col) const override {
    return proj_->columns.columns[col].doubles[row];
  }
  size_t NumRows() const override { return proj_->columns.NumRows(); }

 private:
  const CStoreProjection* proj_;
};
}  // namespace

std::unique_ptr<CStoreEngine::RowSource> CStoreEngine::OpenSource(
    const std::string& projection_name) const {
  const CStoreProjection* proj = projection(projection_name);
  if (!proj) return nullptr;
  return std::make_unique<ProjectionRowSource>(proj);
}

namespace {
class DecodedRowSource : public CStoreEngine::RowSource {
 public:
  explicit DecodedRowSource(RowBlock rows) : rows_(std::move(rows)) {}
  int64_t GetInt(size_t row, int col) const override {
    return rows_.columns[col].ints[row];
  }
  double GetDouble(size_t row, int col) const override {
    return rows_.columns[col].doubles[row];
  }
  size_t NumRows() const override { return rows_.NumRows(); }

 private:
  RowBlock rows_;
};
}  // namespace

std::unique_ptr<CStoreEngine::RowSource> CStoreEngine::OpenSourceFromDisk(
    const std::string& projection_name) const {
  const CStoreProjection* proj = projection(projection_name);
  if (!proj) return nullptr;
  RowBlock rows;
  for (size_t c = 0; c < proj->columns.NumColumns(); ++c) {
    std::string base = "cstore/" + projection_name + "/c" + std::to_string(c);
    auto reader = ColumnReader::Open(fs_, base + ".dat", base + ".idx");
    if (!reader.ok()) return nullptr;
    ColumnVector col(proj->columns.columns[c].type);
    if (!reader.value().ReadAll(&col).ok()) return nullptr;
    rows.columns.push_back(std::move(col));
  }
  return std::make_unique<DecodedRowSource>(std::move(rows));
}

namespace {
class PagedRowSource : public CStoreEngine::RowSource {
 public:
  PagedRowSource(std::vector<ColumnReader> readers, size_t rows)
      : readers_(std::move(readers)),
        cache_(readers_.size()),
        cached_block_(readers_.size(), SIZE_MAX),
        rows_(rows) {}

  int64_t GetInt(size_t row, int col) const override {
    return Page(row, col)->ints[row % kPage];
  }
  double GetDouble(size_t row, int col) const override {
    return Page(row, col)->doubles[row % kPage];
  }
  size_t NumRows() const override { return rows_; }

 private:
  static constexpr size_t kPage = 1024;
  const ColumnVector* Page(size_t row, int col) const {
    size_t block = row / kPage;
    if (cached_block_[col] != block) {
      cache_[col].Clear();
      cache_[col].type = readers_[col].meta().type;
      (void)readers_[col].ReadBlock(block, false, &cache_[col]);
      cached_block_[col] = block;
    }
    return &cache_[col];
  }
  std::vector<ColumnReader> readers_;
  mutable std::vector<ColumnVector> cache_;
  mutable std::vector<size_t> cached_block_;
  size_t rows_;
};
}  // namespace

std::unique_ptr<CStoreEngine::RowSource> CStoreEngine::OpenPagedSource(
    const std::string& projection_name) const {
  const CStoreProjection* proj = projection(projection_name);
  if (!proj) return nullptr;
  std::vector<ColumnReader> readers;
  for (size_t c = 0; c < proj->columns.NumColumns(); ++c) {
    std::string base = "cstore/" + projection_name + "/c" + std::to_string(c);
    auto reader = ColumnReader::Open(fs_, base + ".dat", base + ".idx");
    if (!reader.ok()) return nullptr;
    readers.push_back(std::move(reader).value());
  }
  return std::make_unique<PagedRowSource>(std::move(readers), proj->columns.NumRows());
}

Result<int64_t> CStoreEngine::ChaseJoin(const std::string& from, size_t row,
                                        const std::string& to_column) const {
  const CStoreJoinIndex* ji = join_index(from);
  if (!ji) return Status::NotFound("no join index from ", from);
  int64_t target = ji->target_row[row];
  if (target < 0) return Status::NotFound("dangling join index entry");
  const CStoreProjection* to = projection(ji->to);
  int col = to->FindColumn(to_column);
  if (col < 0) return Status::NotFound("column ", to_column);
  return to->columns.columns[col].ints[static_cast<size_t>(target)];
}

}  // namespace stratica
