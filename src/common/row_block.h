// Vectorized data plane: ColumnVector and RowBlock.
//
// Operators exchange blocks of rows rather than single tuples (Section 6.1:
// "the EE is fully vectorized and makes requests for blocks of rows at a
// time"). A ColumnVector may additionally carry run lengths so that
// operators able to work directly on RLE-encoded data (scans, pipelined
// group-by, merge join) can do so without expansion.
#ifndef STRATICA_COMMON_ROW_BLOCK_H_
#define STRATICA_COMMON_ROW_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace stratica {

/// Default number of rows exchanged between operators per GetNext call.
constexpr size_t kDefaultVectorSize = 4096;

/// \brief A typed column of values, optionally run-length or dictionary
/// encoded.
///
/// Storage layout depends on StorageClassOf(type): ints/bools/dates live in
/// `ints`, floats in `doubles`, strings in `strings`. `nulls` is either
/// empty (no NULLs) or parallel to the physical entries. When `runs` is
/// non-empty it is parallel to the physical entries and the logical row
/// count is the sum of the run lengths.
///
/// When `dict` is set the column is dictionary-coded: `ints` holds one
/// dictionary code per row (regardless of `type`'s storage class), `nulls`
/// is row-parallel to the codes, and the value of row i is
/// `(*dict)[ints[i]]`. Codes of NULL rows are unspecified but in-range.
/// `dict` is an immutable flat vector of `type`; `dict_sorted` means the
/// dictionary entries are in ascending value order, so code order == value
/// order (enables code-range predicates and code-based sort keys). A column
/// is never both RLE and dict-coded.
struct ColumnVector {
  TypeId type = TypeId::kInt64;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  std::vector<uint8_t> nulls;   // 1 = NULL; empty means all valid
  std::vector<uint32_t> runs;   // empty means every run length is 1
  std::shared_ptr<const ColumnVector> dict;  // set => ints are dict codes
  bool dict_sorted = false;     // dict entries ascend in value order

  ColumnVector() = default;
  explicit ColumnVector(TypeId t) : type(t) {}

  /// Number of physical entries (== logical rows unless RLE).
  size_t PhysicalSize() const {
    if (dict) return ints.size();
    switch (StorageClassOf(type)) {
      case StorageClass::kInt64: return ints.size();
      case StorageClass::kFloat64: return doubles.size();
      case StorageClass::kString: return strings.size();
    }
    return 0;
  }

  /// Number of logical rows.
  size_t Size() const {
    if (runs.empty()) return PhysicalSize();
    size_t n = 0;
    for (uint32_t r : runs) n += r;
    return n;
  }

  bool IsRle() const { return !runs.empty(); }
  bool IsDictCoded() const { return dict != nullptr; }
  /// Flat materialized values — neither RLE nor dict-coded.
  bool IsFlat() const { return runs.empty() && dict == nullptr; }
  bool IsNull(size_t phys) const { return !nulls.empty() && nulls[phys] != 0; }

  void Reserve(size_t n);
  void Clear();

  /// Append a scalar (slow path; loaders and tests).
  void Append(const Value& v);
  /// Append a physical entry copied from another vector of the same type.
  void AppendFrom(const ColumnVector& src, size_t phys);
  /// Append a run of n identical values copied from src[phys] (keeps RLE form
  /// if this vector already uses runs or n > 1).
  void AppendRunFrom(const ColumnVector& src, size_t phys, uint32_t n);

  /// Bulk-append physical entries [start, start+count) of a flat `src` (the
  /// vectorized counterpart of a per-row AppendFrom loop).
  void AppendRange(const ColumnVector& src, size_t start, size_t count);

  /// Scalar accessor by physical index (slow path).
  Value GetValue(size_t phys) const;

  /// Expand run-length or dictionary encoding into a flat vector (no-op
  /// when already flat).
  ColumnVector Decoded() const;

  /// Keep only physical entries where sel[i] != 0. Works on flat and
  /// dict-coded vectors (codes are filtered, dict shared); RLE vectors must
  /// use FilterRuns.
  void FilterPhysical(const std::vector<uint8_t>& sel);

  /// RLE-aware filter: `sel` is row-parallel (Size() entries); runs are
  /// shortened to their surviving row counts and empty runs dropped, so the
  /// vector stays RLE through a row filter.
  void FilterRuns(const std::vector<uint8_t>& sel);

  /// Append src[idx] for every index in `indices` (typed batch gather; both
  /// vectors must be flat). The hot path of join materialization.
  void AppendGather(const ColumnVector& src, const std::vector<uint32_t>& indices);

  /// Bytes of heap memory used (for operator memory accounting).
  size_t MemoryBytes() const;

  /// Hash one physical entry (combines NULL-ness).
  uint64_t HashEntry(size_t phys) const;

  /// Compare physical entries across (possibly different) vectors of the
  /// same type. NULL sorts first.
  static int CompareEntries(const ColumnVector& a, size_t ia, const ColumnVector& b,
                            size_t ib);
};

/// \brief A batch of rows: one ColumnVector per output column.
///
/// Invariant: all columns have the same logical Size(). Columns may disagree
/// on physical size when some are RLE.
struct RowBlock {
  std::vector<ColumnVector> columns;

  RowBlock() = default;
  explicit RowBlock(std::vector<TypeId> types) {
    columns.reserve(types.size());
    for (TypeId t : types) columns.emplace_back(t);
  }

  size_t NumColumns() const { return columns.size(); }
  size_t NumRows() const { return columns.empty() ? 0 : columns[0].Size(); }
  bool Empty() const { return NumRows() == 0; }

  void Clear() {
    for (auto& c : columns) c.Clear();
  }

  /// Expand any RLE or dict-coded columns so every column is flat.
  void DecodeAll() {
    for (auto& c : columns) {
      if (!c.IsFlat()) c = c.Decoded();
    }
  }

  /// Append row `row` (physical == logical; block must be flat) from src.
  void AppendRowFrom(const RowBlock& src, size_t row) {
    for (size_t c = 0; c < columns.size(); ++c) columns[c].AppendFrom(src.columns[c], row);
  }

  size_t MemoryBytes() const {
    size_t n = 0;
    for (const auto& c : columns) n += c.MemoryBytes();
    return n;
  }

  /// Render rows as text lines (debugging / golden tests).
  std::string ToString(size_t max_rows = 20) const;
};

// ---------------------------------------------------------------------------
// Batched hashing (the vectorized counterpart of ColumnVector::HashEntry).
//
// One type-specialized loop per storage class, null-aware, writing 64-bit
// hashes for a whole column at once — the per-row type switch happens once
// per block instead of once per row. All functions produce bit-identical
// results to per-row HashEntry/HashCombine chains, so scalar and batched
// paths may be mixed freely.

/// out[i] = hash of physical entry i (i in [0, col.PhysicalSize())).
void HashColumn(const ColumnVector& col, uint64_t* out);

/// out[i] = HashCombine(out[i], hash of physical entry i) — accumulate a
/// multi-column key hash column by column.
void HashColumnCombine(const ColumnVector& col, uint64_t* out);

/// Combined hash of `cols` for every row of a flat block, seeded with
/// `seed`: the batched equivalent of HashGroupKey. Resizes *out.
void HashRows(const RowBlock& block, const std::vector<uint32_t>& cols, uint64_t seed,
              std::vector<uint64_t>* out);

/// HashRows restricted to rows with sel[i] != 0 (out entries of unselected
/// rows are uninitialized — callers must not read them), for consumers that
/// pre-filter rows cheaply (e.g. SIP range pruning) and must not pay
/// hashing cost for dead rows.
void HashRowsMasked(const RowBlock& block, const std::vector<uint32_t>& cols,
                    uint64_t seed, const uint8_t* sel, std::vector<uint64_t>* out);

/// out[i] = 1 iff any of `cols` is NULL at row i — the batched "NULL keys
/// never join/match" mask shared by join build/probe and scan-side SIP.
void NullKeyMask(const RowBlock& block, const std::vector<uint32_t>& cols,
                 std::vector<uint8_t>* out);

}  // namespace stratica

#endif  // STRATICA_COMMON_ROW_BLOCK_H_
