// Shared worker pool used by the execution engine's StorageUnion /
// ParallelUnion operators and by the tuple mover's background service.
#ifndef STRATICA_COMMON_THREADPOOL_H_
#define STRATICA_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stratica {

/// \brief Fixed-size thread pool with a simple FIFO queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace stratica

#endif  // STRATICA_COMMON_THREADPOOL_H_
