#include "common/row_block.h"

#include <sstream>

#include "common/hash.h"

namespace stratica {

void ColumnVector::Reserve(size_t n) {
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: ints.reserve(n); break;
    case StorageClass::kFloat64: doubles.reserve(n); break;
    case StorageClass::kString: strings.reserve(n); break;
  }
}

void ColumnVector::Clear() {
  ints.clear();
  doubles.clear();
  strings.clear();
  nulls.clear();
  runs.clear();
  dict.reset();
  dict_sorted = false;
}

void ColumnVector::Append(const Value& v) {
  if (IsDictCoded()) *this = Decoded();  // appenders produce flat values
  size_t before = PhysicalSize();
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: ints.push_back(v.is_null() ? 0 : v.i64()); break;
    case StorageClass::kFloat64: doubles.push_back(v.is_null() ? 0 : v.f64()); break;
    case StorageClass::kString: strings.push_back(v.is_null() ? "" : v.str()); break;
  }
  if (v.is_null() || !nulls.empty()) {
    if (nulls.empty()) nulls.assign(before, 0);
    nulls.push_back(v.is_null() ? 1 : 0);
  }
  if (!runs.empty()) runs.push_back(1);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t phys) {
  AppendRunFrom(src, phys, 1);
}

void ColumnVector::AppendRunFrom(const ColumnVector& src, size_t phys, uint32_t n) {
  if (IsDictCoded()) *this = Decoded();
  bool src_null = src.IsNull(phys);
  size_t before = PhysicalSize();
  if (src.IsDictCoded()) {
    // Materialize the value through the dictionary (NULL rows carry an
    // unspecified in-range code; emit a zero value under the null flag).
    const ColumnVector& d = *src.dict;
    size_t code = static_cast<size_t>(src.ints[phys]);
    switch (StorageClassOf(type)) {
      case StorageClass::kInt64: ints.push_back(src_null ? 0 : d.ints[code]); break;
      case StorageClass::kFloat64:
        doubles.push_back(src_null ? 0 : d.doubles[code]);
        break;
      case StorageClass::kString:
        strings.push_back(src_null ? std::string() : d.strings[code]);
        break;
    }
  } else {
    switch (StorageClassOf(type)) {
      case StorageClass::kInt64: ints.push_back(src.ints[phys]); break;
      case StorageClass::kFloat64: doubles.push_back(src.doubles[phys]); break;
      case StorageClass::kString: strings.push_back(src.strings[phys]); break;
    }
  }
  if (src_null || !nulls.empty()) {
    if (nulls.empty()) nulls.assign(before, 0);
    nulls.push_back(src_null ? 1 : 0);
  }
  if (n != 1 && runs.empty()) runs.assign(before, 1);
  if (!runs.empty()) runs.push_back(n);
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t start, size_t count) {
  if (count == 0) return;
  if (IsDictCoded()) *this = Decoded();
  if (src.IsDictCoded()) {
    for (size_t i = 0; i < count; ++i) AppendFrom(src, start + i);
    return;
  }
  size_t before = PhysicalSize();
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64:
      ints.insert(ints.end(), src.ints.begin() + start, src.ints.begin() + start + count);
      break;
    case StorageClass::kFloat64:
      doubles.insert(doubles.end(), src.doubles.begin() + start,
                     src.doubles.begin() + start + count);
      break;
    case StorageClass::kString:
      strings.insert(strings.end(), src.strings.begin() + start,
                     src.strings.begin() + start + count);
      break;
  }
  if (!src.nulls.empty() || !nulls.empty()) {
    if (nulls.empty()) nulls.assign(before, 0);
    if (src.nulls.empty()) {
      nulls.resize(before + count, 0);
    } else {
      nulls.insert(nulls.end(), src.nulls.begin() + start,
                   src.nulls.begin() + start + count);
    }
  }
  if (!runs.empty()) runs.resize(runs.size() + count, 1);
}

Value ColumnVector::GetValue(size_t phys) const {
  if (IsNull(phys)) return Value::Null(type);
  if (IsDictCoded()) return dict->GetValue(static_cast<size_t>(ints[phys]));
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: return Value::OfInt(type, ints[phys]);
    case StorageClass::kFloat64: return Value::Float64(doubles[phys]);
    case StorageClass::kString: return Value::String(strings[phys]);
  }
  return Value::Null(type);
}

ColumnVector ColumnVector::Decoded() const {
  if (IsDictCoded()) {
    ColumnVector out(type);
    size_t n = ints.size();
    out.Reserve(n);
    const ColumnVector& d = *dict;
    switch (StorageClassOf(type)) {
      case StorageClass::kInt64:
        for (size_t i = 0; i < n; ++i)
          out.ints.push_back(IsNull(i) ? 0 : d.ints[static_cast<size_t>(ints[i])]);
        break;
      case StorageClass::kFloat64:
        for (size_t i = 0; i < n; ++i)
          out.doubles.push_back(IsNull(i) ? 0 : d.doubles[static_cast<size_t>(ints[i])]);
        break;
      case StorageClass::kString:
        for (size_t i = 0; i < n; ++i)
          out.strings.push_back(IsNull(i) ? std::string()
                                          : d.strings[static_cast<size_t>(ints[i])]);
        break;
    }
    out.nulls = nulls;
    return out;
  }
  if (!IsRle()) return *this;
  ColumnVector out(type);
  size_t total = Size();
  out.Reserve(total);
  if (!nulls.empty()) out.nulls.reserve(total);
  for (size_t i = 0; i < PhysicalSize(); ++i) {
    for (uint32_t r = 0; r < runs[i]; ++r) {
      switch (StorageClassOf(type)) {
        case StorageClass::kInt64: out.ints.push_back(ints[i]); break;
        case StorageClass::kFloat64: out.doubles.push_back(doubles[i]); break;
        case StorageClass::kString: out.strings.push_back(strings[i]); break;
      }
      if (!nulls.empty()) out.nulls.push_back(nulls[i]);
    }
  }
  return out;
}

void ColumnVector::FilterPhysical(const std::vector<uint8_t>& sel) {
  size_t out = 0;
  size_t n = PhysicalSize();
  if (IsDictCoded()) {
    // Codes live in `ints` regardless of the value type; the dictionary is
    // shared and untouched.
    for (size_t i = 0; i < n; ++i) {
      if (sel[i]) {
        ints[out] = ints[i];
        if (!nulls.empty()) nulls[out] = nulls[i];
        ++out;
      }
    }
    ints.resize(out);
    if (!nulls.empty()) nulls.resize(out);
    return;
  }
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64:
      for (size_t i = 0; i < n; ++i) {
        if (sel[i]) {
          ints[out] = ints[i];
          if (!nulls.empty()) nulls[out] = nulls[i];
          ++out;
        }
      }
      ints.resize(out);
      break;
    case StorageClass::kFloat64:
      for (size_t i = 0; i < n; ++i) {
        if (sel[i]) {
          doubles[out] = doubles[i];
          if (!nulls.empty()) nulls[out] = nulls[i];
          ++out;
        }
      }
      doubles.resize(out);
      break;
    case StorageClass::kString:
      for (size_t i = 0; i < n; ++i) {
        if (sel[i]) {
          if (out != i) strings[out] = std::move(strings[i]);
          if (!nulls.empty()) nulls[out] = nulls[i];
          ++out;
        }
      }
      strings.resize(out);
      break;
  }
  if (!nulls.empty()) nulls.resize(out);
}

void ColumnVector::FilterRuns(const std::vector<uint8_t>& sel) {
  if (!IsRle()) {
    FilterPhysical(sel);
    return;
  }
  size_t n_phys = PhysicalSize();
  size_t out = 0, row = 0;
  for (size_t i = 0; i < n_phys; ++i) {
    uint32_t kept = 0;
    for (uint32_t r = 0; r < runs[i]; ++r) kept += sel[row++] ? 1 : 0;
    if (kept == 0) continue;
    switch (StorageClassOf(type)) {
      case StorageClass::kInt64: ints[out] = ints[i]; break;
      case StorageClass::kFloat64: doubles[out] = doubles[i]; break;
      case StorageClass::kString:
        if (out != i) strings[out] = std::move(strings[i]);
        break;
    }
    if (!nulls.empty()) nulls[out] = nulls[i];
    runs[out] = kept;
    ++out;
  }
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: ints.resize(out); break;
    case StorageClass::kFloat64: doubles.resize(out); break;
    case StorageClass::kString: strings.resize(out); break;
  }
  if (!nulls.empty()) nulls.resize(out);
  runs.resize(out);
}

void ColumnVector::AppendGather(const ColumnVector& src,
                                const std::vector<uint32_t>& indices) {
  if (IsDictCoded()) *this = Decoded();
  if (src.IsDictCoded()) {
    // Adopt the dictionary when gathering into an empty vector (keeps sorts
    // and join materialization dict-coded); otherwise materialize values.
    if (PhysicalSize() == 0 && nulls.empty()) {
      dict = src.dict;
      dict_sorted = src.dict_sorted;
      ints.reserve(indices.size());
      for (uint32_t i : indices) ints.push_back(src.ints[i]);
      if (!src.nulls.empty()) {
        nulls.reserve(indices.size());
        for (uint32_t i : indices) nulls.push_back(src.nulls[i]);
      }
    } else {
      for (uint32_t i : indices) AppendFrom(src, i);
    }
    return;
  }
  size_t before = PhysicalSize();
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64:
      ints.reserve(before + indices.size());
      for (uint32_t i : indices) ints.push_back(src.ints[i]);
      break;
    case StorageClass::kFloat64:
      doubles.reserve(before + indices.size());
      for (uint32_t i : indices) doubles.push_back(src.doubles[i]);
      break;
    case StorageClass::kString:
      strings.reserve(before + indices.size());
      for (uint32_t i : indices) strings.push_back(src.strings[i]);
      break;
  }
  if (!src.nulls.empty() || !nulls.empty()) {
    if (nulls.empty()) nulls.assign(before, 0);
    nulls.reserve(before + indices.size());
    for (uint32_t i : indices) nulls.push_back(src.IsNull(i) ? 1 : 0);
  }
}

size_t ColumnVector::MemoryBytes() const {
  size_t n = ints.capacity() * sizeof(int64_t) + doubles.capacity() * sizeof(double) +
             nulls.capacity() + runs.capacity() * sizeof(uint32_t);
  for (const auto& s : strings) n += s.capacity() + sizeof(std::string);
  if (dict) n += dict->MemoryBytes();  // shared, but charge every holder
  return n;
}

uint64_t ColumnVector::HashEntry(size_t phys) const {
  if (IsNull(phys)) return kNullHash;
  if (IsDictCoded()) return dict->HashEntry(static_cast<size_t>(ints[phys]));
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: return HashInt64(ints[phys]);
    case StorageClass::kFloat64: return HashDouble(doubles[phys]);
    case StorageClass::kString: return HashString(strings[phys]);
  }
  return 0;
}

namespace {

// Core of the batched hashers: one tight loop per (storage class, nullness,
// emit-mode, masked-vs-full) combination. Emit modes: kWrite stores the
// entry hash, kCombine folds it into the running key hash, kWriteSeeded
// stores HashCombine(seed, h) — the first column of a masked multi-column
// key, avoiding a separate seed-fill pass. `sel` (when kMasked) skips rows
// already filtered out so selective consumers (SIP after range pruning)
// never pay for dead rows.
enum class HashEmit { kWrite, kCombine, kWriteSeeded };

template <HashEmit kEmit, bool kMasked, typename Data, typename HashFn>
void HashLoop(const Data* data, const uint8_t* nulls, const uint8_t* sel, size_t n,
              uint64_t seed, uint64_t* out, HashFn hash_fn) {
  auto emit = [&](size_t i, uint64_t h) {
    if (kEmit == HashEmit::kWrite) {
      out[i] = h;
    } else if (kEmit == HashEmit::kCombine) {
      out[i] = HashCombine(out[i], h);
    } else {
      out[i] = HashCombine(seed, h);
    }
  };
  if (nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (kMasked && !sel[i]) continue;
      emit(i, hash_fn(data[i]));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (kMasked && !sel[i]) continue;
      emit(i, nulls[i] ? kNullHash : hash_fn(data[i]));
    }
  }
}

template <HashEmit kEmit, bool kMasked>
void HashColumnImpl(const ColumnVector& col, const uint8_t* sel, uint64_t seed,
                    uint64_t* out) {
  size_t n = col.PhysicalSize();
  const uint8_t* nulls = col.nulls.empty() ? nullptr : col.nulls.data();
  if (col.IsDictCoded()) {
    // Hash each dictionary entry once, then resolve rows by code lookup —
    // bit-identical to hashing the materialized values (NULL rows still map
    // to kNullHash via the null branch of HashLoop).
    std::vector<uint64_t> entry_hash(col.dict->PhysicalSize());
    for (size_t i = 0; i < entry_hash.size(); ++i)
      entry_hash[i] = col.dict->HashEntry(i);
    HashLoop<kEmit, kMasked>(col.ints.data(), nulls, sel, n, seed, out,
                             [&](int64_t code) {
                               return entry_hash[static_cast<size_t>(code)];
                             });
    return;
  }
  switch (StorageClassOf(col.type)) {
    case StorageClass::kInt64:
      HashLoop<kEmit, kMasked>(col.ints.data(), nulls, sel, n, seed, out,
                               [](int64_t v) { return HashInt64(v); });
      break;
    case StorageClass::kFloat64:
      HashLoop<kEmit, kMasked>(col.doubles.data(), nulls, sel, n, seed, out,
                               [](double v) { return HashDouble(v); });
      break;
    case StorageClass::kString:
      HashLoop<kEmit, kMasked>(col.strings.data(), nulls, sel, n, seed, out,
                               [](const std::string& v) { return HashString(v); });
      break;
  }
}

}  // namespace

void HashColumn(const ColumnVector& col, uint64_t* out) {
  HashColumnImpl<HashEmit::kWrite, false>(col, nullptr, 0, out);
}

void HashColumnCombine(const ColumnVector& col, uint64_t* out) {
  HashColumnImpl<HashEmit::kCombine, false>(col, nullptr, 0, out);
}

void HashRows(const RowBlock& block, const std::vector<uint32_t>& cols, uint64_t seed,
              std::vector<uint64_t>* out) {
  size_t n = block.NumRows();
  if (cols.empty()) {
    out->assign(n, seed);
    return;
  }
  out->resize(n);
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    const ColumnVector& col = block.columns[cols[ci]];
    if (ci == 0) {
      HashColumnImpl<HashEmit::kWriteSeeded, false>(col, nullptr, seed, out->data());
    } else {
      HashColumnImpl<HashEmit::kCombine, false>(col, nullptr, 0, out->data());
    }
  }
}

void NullKeyMask(const RowBlock& block, const std::vector<uint32_t>& cols,
                 std::vector<uint8_t>* out) {
  size_t n = block.NumRows();
  out->assign(n, 0);
  for (uint32_t c : cols) {
    const auto& nulls = block.columns[c].nulls;
    if (nulls.empty()) continue;
    for (size_t i = 0; i < n; ++i) (*out)[i] |= nulls[i];
  }
}

void HashRowsMasked(const RowBlock& block, const std::vector<uint32_t>& cols,
                    uint64_t seed, const uint8_t* sel, std::vector<uint64_t>* out) {
  size_t n = block.NumRows();
  out->resize(n);  // unselected rows are left unwritten; callers must not read them
  if (cols.empty()) return;
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    const ColumnVector& col = block.columns[cols[ci]];
    if (ci == 0) {
      HashColumnImpl<HashEmit::kWriteSeeded, true>(col, sel, seed, out->data());
    } else {
      HashColumnImpl<HashEmit::kCombine, true>(col, sel, 0, out->data());
    }
  }
}

int ColumnVector::CompareEntries(const ColumnVector& a, size_t ia, const ColumnVector& b,
                                 size_t ib) {
  bool an = a.IsNull(ia), bn = b.IsNull(ib);
  if (an || bn) return an && bn ? 0 : (an ? -1 : 1);
  if (a.IsDictCoded() || b.IsDictCoded()) {
    if (a.dict != nullptr && a.dict == b.dict && a.dict_sorted) {
      int64_t x = a.ints[ia], y = b.ints[ib];  // shared sorted dict: compare codes
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const ColumnVector& av = a.IsDictCoded() ? *a.dict : a;
    size_t ap = a.IsDictCoded() ? static_cast<size_t>(a.ints[ia]) : ia;
    const ColumnVector& bv = b.IsDictCoded() ? *b.dict : b;
    size_t bp = b.IsDictCoded() ? static_cast<size_t>(b.ints[ib]) : ib;
    return CompareEntries(av, ap, bv, bp);
  }
  switch (StorageClassOf(a.type)) {
    case StorageClass::kInt64: {
      int64_t x = a.ints[ia], y = b.ints[ib];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case StorageClass::kFloat64: {
      double x = a.doubles[ia], y = b.doubles[ib];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case StorageClass::kString: {
      int c = a.strings[ia].compare(b.strings[ib]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string RowBlock::ToString(size_t max_rows) const {
  std::ostringstream ss;
  RowBlock flat = *this;
  flat.DecodeAll();
  size_t rows = flat.NumRows();
  for (size_t r = 0; r < rows && r < max_rows; ++r) {
    for (size_t c = 0; c < flat.columns.size(); ++c) {
      if (c) ss << " | ";
      ss << flat.columns[c].GetValue(r).ToString();
    }
    ss << "\n";
  }
  if (rows > max_rows) ss << "... (" << rows << " rows)\n";
  return ss.str();
}

}  // namespace stratica
