// Bit packing / varint primitives shared by the column encoders.
#ifndef STRATICA_COMMON_BITUTIL_H_
#define STRATICA_COMMON_BITUTIL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace stratica {

/// Number of bits required to represent v (0 needs 0 bits).
inline int BitsRequired(uint64_t v) {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// ZigZag mapping of signed to unsigned so small-magnitude deltas are small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Append a LEB128 varint to out.
inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Parse a LEB128 varint from data at *offset. Returns false on overrun.
inline bool GetVarint64(const std::string& data, size_t* offset, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*offset < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[*offset]);
    ++*offset;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Fixed-width little-endian scalar I/O.
template <typename T>
void PutFixed(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
bool GetFixed(const std::string& data, size_t* offset, T* v) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// \brief Writes values using a fixed bit width, LSB-first within bytes.
class BitPacker {
 public:
  explicit BitPacker(int bit_width) : bit_width_(bit_width) {}

  void Append(uint64_t v) {
    // Split wide values so the 64-bit accumulation buffer never overflows.
    if (bit_width_ > 32) {
      AppendBits(v & 0xffffffffULL, 32);
      AppendBits(v >> 32, bit_width_ - 32);
    } else {
      AppendBits(v, bit_width_);
    }
  }

  /// Flush pending bits and return the packed bytes.
  std::string Finish() {
    if (bits_in_buffer_ > 0) {
      bytes_.push_back(static_cast<char>(buffer_ & 0xff));
      buffer_ = 0;
      bits_in_buffer_ = 0;
    }
    return std::move(bytes_);
  }

 private:
  void AppendBits(uint64_t v, int width) {
    uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    buffer_ |= (v & mask) << bits_in_buffer_;
    bits_in_buffer_ += width;
    while (bits_in_buffer_ >= 8) {
      bytes_.push_back(static_cast<char>(buffer_ & 0xff));
      buffer_ >>= 8;
      bits_in_buffer_ -= 8;
    }
  }
  int bit_width_;
  uint64_t buffer_ = 0;
  int bits_in_buffer_ = 0;
  std::string bytes_;
};

/// Bytes a BitPacker emits for `count` values of `width` bits.
inline size_t PackedBytes(size_t count, int width) {
  return (count * static_cast<size_t>(width) + 7) / 8;
}

/// Random-access read of the value at bit offset `bit_off` in a BitPacker
/// stream (LSB-first within bytes). `base` points at the first packed byte;
/// the caller guarantees the stream holds at least bit_off + width bits.
/// Values wider than 32 bits are stored by BitPacker as (low 32, high rest)
/// which is bit-identical to one contiguous LSB-first field, so a single
/// read suffices for any width up to 64.
inline uint64_t ReadPackedBits(const char* base, size_t bit_off, int width) {
  uint64_t result = 0;
  int got = 0;
  size_t byte = bit_off >> 3;
  int skip = static_cast<int>(bit_off & 7);
  while (got < width) {
    uint64_t b = static_cast<uint8_t>(base[byte]) >> skip;
    result |= b << got;
    got += 8 - skip;
    ++byte;
    skip = 0;
  }
  if (width < 64) result &= (1ULL << width) - 1;
  return result;
}

/// \brief Reads values written by BitPacker.
class BitUnpacker {
 public:
  BitUnpacker(const std::string& data, size_t offset, int bit_width)
      : data_(data), pos_(offset), bit_width_(bit_width) {}

  uint64_t Next() {
    if (bit_width_ > 32) {
      uint64_t lo = NextBits(32);
      uint64_t hi = NextBits(bit_width_ - 32);
      return lo | (hi << 32);
    }
    return NextBits(bit_width_);
  }

  /// Byte position one past the last consumed byte.
  size_t position() const { return pos_; }

 private:
  uint64_t NextBits(int width) {
    while (bits_in_buffer_ < width && pos_ < data_.size()) {
      buffer_ |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
                 << bits_in_buffer_;
      bits_in_buffer_ += 8;
    }
    uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    uint64_t v = buffer_ & mask;
    buffer_ >>= width;
    bits_in_buffer_ -= width;
    return v;
  }

  const std::string& data_;
  size_t pos_;
  int bit_width_;
  uint64_t buffer_ = 0;
  int bits_in_buffer_ = 0;
};

}  // namespace stratica

#endif  // STRATICA_COMMON_BITUTIL_H_
