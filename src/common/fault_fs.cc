#include "common/fault_fs.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace stratica {

namespace {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kPersistentError: return "persistent-error";
    case FaultKind::kCorruptBits: return "corrupt-bits";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kLatency: return "latency";
  }
  return "?";
}

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case kFaultRead: return "read";
    case kFaultWrite: return "write";
    case kFaultDelete: return "delete";
    case kFaultLink: return "link";
    case kFaultMeta: return "meta";
    default: return "?";
  }
}

}  // namespace

FaultFs::FaultFs(FileSystem* base, uint64_t seed)
    : base_(base), rng_state_(DeriveSeed(seed, 0xfa017f5u)) {
  op_log_.reserve(256);
}

size_t FaultFs::AddRule(FaultRule rule) {
  std::lock_guard lock(mu_);
  Rule r;
  r.match_all = rule.path_pattern.empty();
  if (!r.match_all) {
    r.re = std::regex(rule.path_pattern);
    // Longest literal prefix of the pattern, used as a pre-regex filter.
    static constexpr char kMeta[] = ".^$|()[]{}*+?\\";
    size_t n = rule.path_pattern.find_first_of(kMeta);
    r.literal = rule.path_pattern.substr(0, n);
  }
  if (rule.kind == FaultKind::kLatency && rule.bytes_per_sec > 0) {
    bandwidth_rules_.store(true, std::memory_order_release);
  }
  r.spec = std::move(rule);
  rules_.push_back(std::move(r));
  return rules_.size() - 1;
}

void FaultFs::RemoveRule(size_t id) {
  std::lock_guard lock(mu_);
  if (id < rules_.size()) rules_[id].removed = true;
}

void FaultFs::ClearRules() {
  std::lock_guard lock(mu_);
  rules_.clear();
  bandwidth_rules_.store(false, std::memory_order_release);
}

bool FaultFs::PlanFault(FaultOp op, const std::string& path, uint64_t bytes,
                        FaultKind* kind, uint64_t* latency_us, uint64_t* fault_seq) const {
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  if (!enabled_.load(std::memory_order_acquire)) {
    LogOp(op, path, false, FaultKind::kTransientError);
    return false;
  }
  std::lock_guard lock(mu_);
  bool fire = false;
  for (auto& r : rules_) {
    if (r.removed || r.fires >= r.spec.max_fires) continue;
    if ((r.spec.op_mask & op) == 0) continue;
    if (!r.match_all) {
      if (!r.literal.empty() && path.find(r.literal) == std::string::npos) continue;
      if (!std::regex_search(path, r.re)) continue;
    }
    ++r.matches;
    if (r.spec.probability > 0.0) {
      rng_state_ = SplitMix64(rng_state_);
      double u = static_cast<double>(rng_state_ >> 11) * (1.0 / 9007199254740992.0);
      fire = u < r.spec.probability;
    } else {
      uint64_t nth = r.spec.every_nth == 0 ? 1 : r.spec.every_nth;
      fire = r.matches % nth == 0;
    }
    if (!fire) continue;
    ++r.fires;
    *kind = r.spec.kind;
    *latency_us = r.spec.latency_us;
    if (r.spec.kind == FaultKind::kLatency) {
      // Bandwidth + jitter terms of the virtual-node latency model:
      //   delay = base + bytes/bps + U[0, jitter).
      if (r.spec.bytes_per_sec > 0) {
        *latency_us += bytes * 1000000ULL / r.spec.bytes_per_sec;
      }
      if (r.spec.jitter_us > 0) {
        rng_state_ = SplitMix64(rng_state_);
        *latency_us += rng_state_ % r.spec.jitter_us;
      }
    }
    rng_state_ = SplitMix64(rng_state_ ^ 0x6a09e667f3bcc909ULL);
    *fault_seq = rng_state_;
    break;
  }
  // Log and count under the same lock so records stay ordered.
  FaultOpRecord rec{op, path, fire, fire ? *kind : FaultKind::kTransientError};
  if (op_log_.size() < kMaxOpLog) {
    op_log_.push_back(std::move(rec));
  } else {
    op_log_[op_log_head_] = std::move(rec);
    op_log_head_ = (op_log_head_ + 1) % kMaxOpLog;
  }
  if (fire) {
    stats_.faults.fetch_add(1, std::memory_order_relaxed);
    switch (*kind) {
      case FaultKind::kTransientError:
        stats_.transient_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kPersistentError:
        stats_.persistent_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kCorruptBits:
        stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kTruncate:
        stats_.truncations.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultKind::kLatency:
        stats_.latency_injections.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return fire;
}

void FaultFs::LogOp(FaultOp op, const std::string& path, bool faulted,
                    FaultKind kind) const {
  std::lock_guard lock(mu_);
  FaultOpRecord rec{op, path, faulted, kind};
  if (op_log_.size() < kMaxOpLog) {
    op_log_.push_back(std::move(rec));
  } else {
    op_log_[op_log_head_] = std::move(rec);
    op_log_head_ = (op_log_head_ + 1) % kMaxOpLog;
  }
}

void FaultFs::Corrupt(std::string* data, uint64_t fault_seq) const {
  if (data->empty()) return;
  size_t byte = static_cast<size_t>(fault_seq % data->size());
  (*data)[byte] = static_cast<char>((*data)[byte] ^ (1u << (fault_seq >> 8) % 8));
}

std::vector<FaultOpRecord> FaultFs::OpLog() const {
  std::lock_guard lock(mu_);
  std::vector<FaultOpRecord> out;
  if (op_log_.empty()) return out;
  out.reserve(op_log_.size());
  for (size_t i = 0; i < op_log_.size(); ++i) {
    out.push_back(op_log_[(op_log_head_ + i) % op_log_.size()]);
  }
  return out;
}

std::string FaultFs::DumpOpLog() const {
  std::ostringstream out;
  out << "fault_fs stats: ops=" << stats_.ops.load()
      << " faults=" << stats_.faults.load()
      << " transient=" << stats_.transient_errors.load()
      << " persistent=" << stats_.persistent_errors.load()
      << " corruptions=" << stats_.corruptions.load()
      << " truncations=" << stats_.truncations.load()
      << " latency=" << stats_.latency_injections.load() << "\n";
  for (const auto& rec : OpLog()) {
    out << FaultOpName(rec.op) << "\t" << rec.path;
    if (rec.faulted) out << "\tFAULT:" << FaultKindName(rec.kind);
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// FileSystem interface

Status FaultFs::WriteFile(const std::string& path, const std::string& data) {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultWrite, path, data.size(), &kind, &latency_us, &seq)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIoError("injected transient write error: ", path);
      case FaultKind::kPersistentError:
        return Status::IoError("injected write error: ", path);
      case FaultKind::kLatency:
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
        break;
      case FaultKind::kCorruptBits:
      case FaultKind::kTruncate: {
        // Write-side damage: persist a corrupted/torn copy (the write
        // itself "succeeds", checksums catch it at read time).
        std::string bad = data;
        if (kind == FaultKind::kTruncate) {
          bad.resize(bad.size() - std::min<size_t>(bad.size(), 1 + seq % 16));
        } else {
          Corrupt(&bad, seq);
        }
        return base_->WriteFile(path, bad);
      }
    }
  }
  return base_->WriteFile(path, data);
}

Result<std::string> FaultFs::ReadFile(const std::string& path) const {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  uint64_t bytes = 0;
  if (bandwidth_rules_.load(std::memory_order_acquire)) {
    auto sz = base_->FileSize(path);
    if (sz.ok()) bytes = sz.value();
  }
  if (PlanFault(kFaultRead, path, bytes, &kind, &latency_us, &seq)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIoError("injected transient read error: ", path);
      case FaultKind::kPersistentError:
        return Status::IoError("injected read error: ", path);
      case FaultKind::kLatency:
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
        break;
      case FaultKind::kCorruptBits: {
        STRATICA_ASSIGN_OR_RETURN(std::string data, base_->ReadFile(path));
        Corrupt(&data, seq);
        return data;
      }
      case FaultKind::kTruncate: {
        STRATICA_ASSIGN_OR_RETURN(std::string data, base_->ReadFile(path));
        data.resize(data.size() - std::min<size_t>(data.size(), 1 + seq % 16));
        return data;
      }
    }
  }
  return base_->ReadFile(path);
}

Result<std::string> FaultFs::ReadRange(const std::string& path, uint64_t offset,
                                       uint64_t length) const {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultRead, path, length, &kind, &latency_us, &seq)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIoError("injected transient read error: ", path);
      case FaultKind::kPersistentError:
        return Status::IoError("injected read error: ", path);
      case FaultKind::kLatency:
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
        break;
      case FaultKind::kCorruptBits: {
        STRATICA_ASSIGN_OR_RETURN(std::string data, base_->ReadRange(path, offset, length));
        Corrupt(&data, seq);
        return data;
      }
      case FaultKind::kTruncate: {
        STRATICA_ASSIGN_OR_RETURN(std::string data, base_->ReadRange(path, offset, length));
        data.resize(data.size() - std::min<size_t>(data.size(), 1 + seq % 16));
        return data;
      }
    }
  }
  return base_->ReadRange(path, offset, length);
}

Status FaultFs::ReadRangeInto(const std::string& path, uint64_t offset,
                              uint64_t length, std::string* out) const {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultRead, path, length, &kind, &latency_us, &seq)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIoError("injected transient read error: ", path);
      case FaultKind::kPersistentError:
        return Status::IoError("injected read error: ", path);
      case FaultKind::kLatency:
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
        break;
      case FaultKind::kCorruptBits: {
        STRATICA_RETURN_NOT_OK(base_->ReadRangeInto(path, offset, length, out));
        Corrupt(out, seq);
        return Status::OK();
      }
      case FaultKind::kTruncate: {
        STRATICA_RETURN_NOT_OK(base_->ReadRangeInto(path, offset, length, out));
        out->resize(out->size() - std::min<size_t>(out->size(), 1 + seq % 16));
        return Status::OK();
      }
    }
  }
  return base_->ReadRangeInto(path, offset, length, out);
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) const {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultMeta, path, 0, &kind, &latency_us, &seq)) {
    if (kind == FaultKind::kTransientError)
      return Status::TransientIoError("injected transient stat error: ", path);
    if (kind == FaultKind::kPersistentError)
      return Status::IoError("injected stat error: ", path);
    if (kind == FaultKind::kLatency)
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return base_->FileSize(path);
}

bool FaultFs::Exists(const std::string& path) const { return base_->Exists(path); }

Status FaultFs::Delete(const std::string& path) {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultDelete, path, 0, &kind, &latency_us, &seq)) {
    if (kind == FaultKind::kTransientError)
      return Status::TransientIoError("injected transient delete error: ", path);
    if (kind == FaultKind::kPersistentError)
      return Status::IoError("injected delete error: ", path);
    if (kind == FaultKind::kLatency)
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return base_->Delete(path);
}

Result<std::vector<std::string>> FaultFs::List(const std::string& prefix) const {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultMeta, prefix, 0, &kind, &latency_us, &seq)) {
    if (kind == FaultKind::kTransientError)
      return Status::TransientIoError("injected transient list error: ", prefix);
    if (kind == FaultKind::kPersistentError)
      return Status::IoError("injected list error: ", prefix);
    if (kind == FaultKind::kLatency)
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return base_->List(prefix);
}

Status FaultFs::HardLink(const std::string& source, const std::string& target) {
  FaultKind kind;
  uint64_t latency_us = 0, seq = 0;
  if (PlanFault(kFaultLink, source, 0, &kind, &latency_us, &seq)) {
    if (kind == FaultKind::kTransientError)
      return Status::TransientIoError("injected transient link error: ", source);
    if (kind == FaultKind::kPersistentError)
      return Status::IoError("injected link error: ", source);
    if (kind == FaultKind::kLatency)
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return base_->HardLink(source, target);
}

}  // namespace stratica
