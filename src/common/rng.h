// Deterministic RNG for workload generators and property tests. All data in
// Stratica's benches is generated with fixed seeds so runs are reproducible.
#ifndef STRATICA_COMMON_RNG_H_
#define STRATICA_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace stratica {

/// One splitmix64 step: the canonical 64-bit finalizer used to seed and to
/// derive independent streams. Every piece of chaos machinery (FaultFs
/// triggers, chaos_test workload threads, VirtualCluster per-node plans)
/// derives its state through this function so a single master seed
/// reproduces the whole run.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive the seed of an independent stream `stream` from a master seed.
/// Distinct streams (node ids, thread ids, subsystem tags) give
/// uncorrelated sequences; same (seed, stream) always gives the same one.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(seed ^ SplitMix64(stream * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL));
}

/// xoshiro256**-style deterministic generator (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // splitmix64 seeding.
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Zipf-ish skewed pick in [0, n): rank r with probability ~ 1/(r+1).
  uint64_t Skewed(uint64_t n) {
    // Cheap approximation: min of two uniforms biases toward small ranks.
    uint64_t a = Uniform(n), b = Uniform(n);
    return a < b ? a : b;
  }

  std::string RandomString(size_t len) {
    static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(kAlpha[Uniform(sizeof(kAlpha) - 1)]);
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace stratica

#endif  // STRATICA_COMMON_RNG_H_
