// Filesystem abstraction (RocksDB Env-style).
//
// ROS containers, DVROS files, spill files and catalog snapshots all go
// through this interface, so tests and benchmarks can run against the fast
// in-memory implementation while examples persist to a real directory.
// HardLink exists specifically to support the paper's backup mechanism
// (Section 5.2: "creates hard-links for each Vertica data file").
#ifndef STRATICA_COMMON_FS_H_
#define STRATICA_COMMON_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace stratica {

/// \brief Minimal filesystem interface: whole-file and ranged reads,
/// atomic whole-file writes, listing, deletion and hard links.
///
/// Stratica's on-disk structures are immutable once written (Section 3.7),
/// so an append/overwrite-free API suffices.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Atomically create `path` with `data` (replacing any existing file).
  virtual Status WriteFile(const std::string& path, const std::string& data) = 0;

  /// Read the entire file.
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;

  /// Read `length` bytes starting at `offset`.
  virtual Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                        uint64_t length) const = 0;

  /// Like ReadRange, but fills a caller-owned buffer so hot read loops
  /// (block scans) can reuse one allocation. Implementations overwrite
  /// `*out` (capacity is reused). The default adapter copies via ReadRange.
  virtual Status ReadRangeInto(const std::string& path, uint64_t offset,
                               uint64_t length, std::string* out) const;

  virtual Result<uint64_t> FileSize(const std::string& path) const = 0;
  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Delete(const std::string& path) = 0;

  /// List files whose path starts with `prefix`.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) const = 0;

  /// Create `target` as a hard link to `source` (backup support). The data
  /// remains reachable through `target` even after `source` is deleted.
  virtual Status HardLink(const std::string& source, const std::string& target) = 0;

  /// Total bytes stored under `prefix` (reporting "disk space required").
  Result<uint64_t> TotalSize(const std::string& prefix) const;
};

/// \brief In-memory filesystem: a map from path to refcounted contents.
/// Thread-safe. Used by tests and benchmarks.
class MemFileSystem : public FileSystem {
 public:
  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t length) const override;
  Status ReadRangeInto(const std::string& path, uint64_t offset, uint64_t length,
                       std::string* out) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) const override;
  Status HardLink(const std::string& source, const std::string& target) override;

 private:
  /// Grab a refcounted view of `path` (null if absent); byte copies happen
  /// outside the lock so Delete/HardLink never race an in-flight read.
  std::shared_ptr<const std::string> Snapshot(const std::string& path) const;

  mutable std::shared_mutex mu_;
  // shared_ptr contents model hard links: two paths may share one buffer.
  std::map<std::string, std::shared_ptr<const std::string>> files_;
};

/// \brief Local filesystem rooted at a directory. Paths are interpreted
/// relative to the root; parent directories are created on demand.
class LocalFileSystem : public FileSystem {
 public:
  explicit LocalFileSystem(std::string root);

  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t length) const override;
  Status ReadRangeInto(const std::string& path, uint64_t offset, uint64_t length,
                       std::string* out) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) const override;
  Status HardLink(const std::string& source, const std::string& target) override;

 private:
  std::string Absolute(const std::string& path) const;
  std::string root_;
};

}  // namespace stratica

#endif  // STRATICA_COMMON_FS_H_
