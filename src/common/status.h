// Status and Result<T>: error handling without exceptions across module
// boundaries, in the style of Apache Arrow / RocksDB.
#ifndef STRATICA_COMMON_STATUS_H_
#define STRATICA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace stratica {

/// Error categories used across the engine. Kept deliberately coarse; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kNotImplemented,
  kResourceExhausted,  // memory budget exceeded and spill impossible
  kLockTimeout,        // could not acquire a table lock
  kDeadlock,           // lock-conversion cycle; caller must abort the txn
  kTxnAborted,
  kClusterUnavailable,  // quorum lost or data unavailable (K-safety violated)
  kParseError,
  kAnalysisError,  // semantic (binder/type) error
  kInternal,
};

/// \brief Success-or-error return value for operations that yield no data.
///
/// Status is cheap to copy in the success case (single enum). All fallible
/// functions in Stratica return Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// True for I/O errors expected to succeed on retry (e.g. an injected or
  /// real EINTR/EAGAIN-class failure). Retry policies back off on these;
  /// everything else — including Corruption — is terminal for the attempt.
  bool IsTransient() const { return transient_; }

  /// A retryable I/O error: same code as IoError (existing kIoError checks
  /// still apply) plus the transient classification.
  template <typename... Args>
  static Status TransientIoError(Args&&... args) {
    std::ostringstream ss;
    (ss << ... << args);
    Status st(StatusCode::kIoError, ss.str());
    st.transient_ = true;
    return st;
  }

  /// Human-readable one-line rendering, e.g. "IoError: open failed".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kLockTimeout: return "LockTimeout";
      case StatusCode::kDeadlock: return "Deadlock";
      case StatusCode::kTxnAborted: return "TxnAborted";
      case StatusCode::kClusterUnavailable: return "ClusterUnavailable";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kAnalysisError: return "AnalysisError";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

#define STRATICA_STATUS_FACTORY(Name, Code)                 \
  template <typename... Args>                               \
  static Status Name(Args&&... args) {                      \
    std::ostringstream ss;                                  \
    (ss << ... << args);                                    \
    return Status(StatusCode::Code, ss.str());              \
  }
  STRATICA_STATUS_FACTORY(InvalidArgument, kInvalidArgument)
  STRATICA_STATUS_FACTORY(NotFound, kNotFound)
  STRATICA_STATUS_FACTORY(AlreadyExists, kAlreadyExists)
  STRATICA_STATUS_FACTORY(IoError, kIoError)
  STRATICA_STATUS_FACTORY(Corruption, kCorruption)
  STRATICA_STATUS_FACTORY(NotImplemented, kNotImplemented)
  STRATICA_STATUS_FACTORY(ResourceExhausted, kResourceExhausted)
  STRATICA_STATUS_FACTORY(LockTimeout, kLockTimeout)
  STRATICA_STATUS_FACTORY(Deadlock, kDeadlock)
  STRATICA_STATUS_FACTORY(TxnAborted, kTxnAborted)
  STRATICA_STATUS_FACTORY(ClusterUnavailable, kClusterUnavailable)
  STRATICA_STATUS_FACTORY(ParseError, kParseError)
  STRATICA_STATUS_FACTORY(AnalysisError, kAnalysisError)
  STRATICA_STATUS_FACTORY(Internal, kInternal)
#undef STRATICA_STATUS_FACTORY

 private:
  StatusCode code_;
  bool transient_ = false;
  std::string msg_;
};

/// \brief Value-or-error: holds a T on success, a Status otherwise.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status to the caller.
#define STRATICA_RETURN_NOT_OK(expr)                \
  do {                                              \
    ::stratica::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define STRATICA_CONCAT_IMPL(a, b) a##b
#define STRATICA_CONCAT(a, b) STRATICA_CONCAT_IMPL(a, b)

/// Evaluate a Result<T> expression; on success bind the value to `lhs`,
/// otherwise return the error Status.
#define STRATICA_ASSIGN_OR_RETURN(lhs, expr)                          \
  STRATICA_ASSIGN_OR_RETURN_IMPL(STRATICA_CONCAT(_res_, __LINE__), lhs, expr)

#define STRATICA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

}  // namespace stratica

#endif  // STRATICA_COMMON_STATUS_H_
