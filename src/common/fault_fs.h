// Fault-injecting FileSystem wrapper (DESIGN.md §10).
//
// Wraps any FileSystem and executes a seeded, deterministic fault plan:
// rules match operations by path regex and operation kind, trigger on every
// nth matching op or with a seeded probability, and inject transient or
// persistent I/O errors, read corruption (bit flips / truncation) or
// latency. The latency kind subsumes the old bench-only SimLatencyFs, so
// benches and chaos tests share one implementation. Every operation is
// recorded in a bounded op log and per-kind fault stats so tests can prove
// degraded paths actually fired.
#ifndef STRATICA_COMMON_FAULT_FS_H_
#define STRATICA_COMMON_FAULT_FS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <regex>
#include <string>
#include <vector>

#include "common/fs.h"

namespace stratica {

/// Operation classes a fault rule can match (bitmask).
enum FaultOp : uint32_t {
  kFaultRead = 1u << 0,    // ReadFile / ReadRange / ReadRangeInto
  kFaultWrite = 1u << 1,   // WriteFile
  kFaultDelete = 1u << 2,  // Delete
  kFaultLink = 1u << 3,    // HardLink
  kFaultMeta = 1u << 4,    // FileSize / Exists / List
  kFaultAnyOp = 0xffffffffu,
};

enum class FaultKind {
  kTransientError,   ///< Status::TransientIoError — retry should succeed
  kPersistentError,  ///< Status::IoError — retries keep failing
  kCorruptBits,      ///< flip one bit of returned read data
  kTruncate,         ///< drop the tail of returned read data
  kLatency,          ///< sleep latency_us, then succeed normally
};

struct FaultRule {
  std::string path_pattern;  ///< ECMAScript regex; empty matches all paths
  uint32_t op_mask = kFaultRead;
  /// Trigger: fire when probability > 0 with that per-op chance, else on
  /// every `every_nth` matching operation (1 = every op).
  double probability = 0.0;
  uint64_t every_nth = 1;
  uint64_t max_fires = UINT64_MAX;  ///< rule disarms after this many fires
  FaultKind kind = FaultKind::kTransientError;
  uint64_t latency_us = 0;  ///< kLatency: fixed base delay
  /// kLatency bandwidth model (ZBStorage virtual_node, SNIPPETS.md §1):
  ///   delay = latency_us + bytes * 1e6 / bytes_per_sec + U[0, jitter_us).
  /// 0 disables the respective term, so plain latency rules behave as before.
  uint64_t bytes_per_sec = 0;
  uint64_t jitter_us = 0;
};

/// One entry of the bounded operation log (newest kept).
struct FaultOpRecord {
  FaultOp op;
  std::string path;
  bool faulted = false;
  FaultKind kind = FaultKind::kTransientError;  // valid when faulted
};

class FaultFs : public FileSystem {
 public:
  /// Does not own `base`; `seed` drives probabilistic triggers and the
  /// corruption positions deterministically.
  FaultFs(FileSystem* base, uint64_t seed);

  /// Install a rule; returns its id (for RemoveRule).
  size_t AddRule(FaultRule rule);
  void RemoveRule(size_t id);
  void ClearRules();
  /// Master switch: when disabled, all rules are bypassed (ops still pass
  /// through and are logged). Lets chaos tests quiesce for final verify.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_release); }

  struct Stats {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> faults{0};
    std::atomic<uint64_t> transient_errors{0};
    std::atomic<uint64_t> persistent_errors{0};
    std::atomic<uint64_t> corruptions{0};
    std::atomic<uint64_t> truncations{0};
    std::atomic<uint64_t> latency_injections{0};
  };
  const Stats& stats() const { return stats_; }

  /// Copy of the op log (bounded to the newest kMaxOpLog entries).
  std::vector<FaultOpRecord> OpLog() const;
  /// Render the op log + stats as text (CI artifact).
  std::string DumpOpLog() const;

  // FileSystem interface -----------------------------------------------------
  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t length) const override;
  Status ReadRangeInto(const std::string& path, uint64_t offset, uint64_t length,
                       std::string* out) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) const override;
  Status HardLink(const std::string& source, const std::string& target) override;

  static constexpr size_t kMaxOpLog = 4096;

 private:
  struct Rule {
    FaultRule spec;
    std::regex re;
    /// Leading literal run of the pattern (up to the first regex
    /// metacharacter). Any unanchored match must contain it, so a cheap
    /// substring test rejects most paths without touching std::regex —
    /// this is what keeps an armed-but-missing rule set inside the <3%
    /// overhead budget on the hot read path (DESIGN.md §10).
    std::string literal;
    bool match_all = false;
    uint64_t matches = 0;  // matching ops seen (for every_nth)
    uint64_t fires = 0;
    bool removed = false;
  };

  /// Decide the fault (if any) for one operation, log it, and bump stats.
  /// Returns true with *kind set when a fault should be injected. `bytes` is
  /// the payload size of the operation (0 for metadata ops) and feeds the
  /// kLatency bandwidth term; *latency_us comes back as the total delay.
  bool PlanFault(FaultOp op, const std::string& path, uint64_t bytes, FaultKind* kind,
                 uint64_t* latency_us, uint64_t* fault_seq) const;
  void Corrupt(std::string* data, uint64_t fault_seq) const;
  void LogOp(FaultOp op, const std::string& path, bool faulted, FaultKind kind) const;

  FileSystem* base_;
  std::atomic<bool> enabled_{true};
  /// True once any kLatency rule with a bandwidth term was installed; lets
  /// ReadFile skip the extra FileSize lookup when no one models bandwidth.
  std::atomic<bool> bandwidth_rules_{false};
  mutable std::mutex mu_;  // guards rules_, rng state, op log
  mutable std::vector<Rule> rules_;
  mutable uint64_t rng_state_;
  mutable std::vector<FaultOpRecord> op_log_;
  mutable size_t op_log_head_ = 0;  // ring-buffer cursor once full
  mutable Stats stats_;
};

}  // namespace stratica

#endif  // STRATICA_COMMON_FAULT_FS_H_
