#include "common/types.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace stratica {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool: return "BOOLEAN";
    case TypeId::kInt64: return "INTEGER";
    case TypeId::kFloat64: return "FLOAT";
    case TypeId::kString: return "VARCHAR";
    case TypeId::kDate: return "DATE";
    case TypeId::kTimestamp: return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<TypeId> TypeFromName(const std::string& name) {
  std::string up;
  up.reserve(name.size());
  for (char c : name) up.push_back(static_cast<char>(std::toupper(c)));
  // Strip a parenthesized length, e.g. VARCHAR(80).
  auto paren = up.find('(');
  if (paren != std::string::npos) up = up.substr(0, paren);
  if (up == "BOOLEAN" || up == "BOOL") return TypeId::kBool;
  if (up == "INTEGER" || up == "INT" || up == "BIGINT" || up == "SMALLINT")
    return TypeId::kInt64;
  if (up == "FLOAT" || up == "DOUBLE" || up == "REAL" || up == "NUMERIC")
    return TypeId::kFloat64;
  if (up == "VARCHAR" || up == "CHAR" || up == "TEXT") return TypeId::kString;
  if (up == "DATE") return TypeId::kDate;
  if (up == "TIMESTAMP") return TypeId::kTimestamp;
  return Status::AnalysisError("unknown type name: ", name);
}

uint64_t Value::Hash() const {
  if (null_) return 0x5ca1ab1e;
  switch (StorageClassOf(type_)) {
    case StorageClass::kInt64: return HashInt64(i_);
    case StorageClass::kFloat64: return HashDouble(d_);
    case StorageClass::kString: return HashString(s_);
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;  // NULL sorts first
  }
  StorageClass a = StorageClassOf(type_), b = StorageClassOf(other.type_);
  if (a == StorageClass::kString || b == StorageClass::kString) {
    // String compares only against string; engine type-checks earlier.
    if (a != b) return a == StorageClass::kString ? 1 : -1;
    return s_.compare(other.s_) < 0 ? -1 : (s_ == other.s_ ? 0 : 1);
  }
  if (a == StorageClass::kFloat64 || b == StorageClass::kFloat64) {
    double x = AsDouble(), y = other.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kBool: return i_ ? "true" : "false";
    case TypeId::kInt64: return std::to_string(i_);
    case TypeId::kDate: return FormatDate(i_);
    case TypeId::kTimestamp: {
      // micros since 2000-01-01; render date + seconds for readability.
      int64_t secs = i_ / 1000000;
      int64_t days = secs / 86400;
      int64_t rem = secs % 86400;
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %02d:%02d:%02d", static_cast<int>(rem / 3600),
                    static_cast<int>((rem / 60) % 60), static_cast<int>(rem % 60));
      return FormatDate(days) + buf;
    }
    case TypeId::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", d_);
      return buf;
    }
    case TypeId::kString: return s_;
  }
  return "?";
}

Result<Value> Value::Parse(TypeId type, const std::string& text) {
  if (text.empty() || text == "NULL" || text == "\\N") return Value::Null(type);
  switch (type) {
    case TypeId::kBool:
      if (text == "true" || text == "t" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "f" || text == "0") return Value::Bool(false);
      return Status::ParseError("bad boolean literal: ", text);
    case TypeId::kInt64: {
      errno = 0;
      char* end = nullptr;
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0')
        return Status::ParseError("bad integer literal: ", text);
      return Value::Int64(v);
    }
    case TypeId::kFloat64: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0')
        return Status::ParseError("bad float literal: ", text);
      return Value::Float64(v);
    }
    case TypeId::kString: return Value::String(text);
    case TypeId::kDate: {
      STRATICA_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
      return Value::Date(days);
    }
    case TypeId::kTimestamp: {
      // Accept "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
      std::string date_part = text.substr(0, 10);
      STRATICA_ASSIGN_OR_RETURN(int64_t days, ParseDate(date_part));
      int64_t micros = days * 86400LL * 1000000LL;
      if (text.size() >= 19 && (text[10] == ' ' || text[10] == 'T')) {
        int h = std::atoi(text.substr(11, 2).c_str());
        int m = std::atoi(text.substr(14, 2).c_str());
        int s = std::atoi(text.substr(17, 2).c_str());
        micros += (static_cast<int64_t>(h) * 3600 + m * 60 + s) * 1000000LL;
      }
      return Value::Timestamp(micros);
    }
  }
  return Status::ParseError("unsupported type for parse");
}

namespace {
// Civil-date conversion (Howard Hinnant's algorithm), offset to the
// 2000-01-01 epoch (which is day 10957 from 1970-01-01).
constexpr int64_t kEpochOffsetDays = 10957;

int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;  // days since 1970-01-01
}

void CivilFromDays(int64_t z, int32_t* y, int32_t* m, int32_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = static_cast<int32_t>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int32_t>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int32_t>(yr + (*m <= 2));
}
}  // namespace

int64_t MakeDate(int32_t year, int32_t month, int32_t day) {
  return DaysFromCivil(year, month, day) - kEpochOffsetDays;
}

std::string FormatDate(int64_t days) {
  int32_t y, m, d;
  CivilFromDays(days + kEpochOffsetDays, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

Result<int64_t> ParseDate(const std::string& text) {
  int y, m, d;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3)
    return Status::ParseError("bad date literal: ", text);
  if (m < 1 || m > 12 || d < 1 || d > 31)
    return Status::ParseError("date out of range: ", text);
  return MakeDate(y, m, d);
}

int32_t DateYear(int64_t days) {
  int32_t y, m, d;
  CivilFromDays(days + kEpochOffsetDays, &y, &m, &d);
  return y;
}

int32_t DateMonth(int64_t days) {
  int32_t y, m, d;
  CivilFromDays(days + kEpochOffsetDays, &y, &m, &d);
  return m;
}

}  // namespace stratica
