// Logical types and the Value runtime scalar.
//
// Stratica supports the types the paper calls out as the commercially
// necessary extensions over C-Store's INTEGER-only prototype (Section 8.1):
// 64-bit integers, floats, varchars, booleans, dates and timestamps. Dates
// are stored as days since 2000-01-01 and timestamps as microseconds since
// the same epoch; both share the int64 storage class.
#ifndef STRATICA_COMMON_TYPES_H_
#define STRATICA_COMMON_TYPES_H_

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/status.h"

namespace stratica {

enum class TypeId : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,       // int64 days
  kTimestamp = 5,  // int64 microseconds
};

const char* TypeName(TypeId t);

/// Parse a SQL type name ("INT", "BIGINT", "FLOAT", "VARCHAR", ...).
Result<TypeId> TypeFromName(const std::string& name);

/// Physical storage class of a logical type.
enum class StorageClass : uint8_t { kInt64, kFloat64, kString };

inline StorageClass StorageClassOf(TypeId t) {
  switch (t) {
    case TypeId::kFloat64: return StorageClass::kFloat64;
    case TypeId::kString: return StorageClass::kString;
    default: return StorageClass::kInt64;
  }
}

inline bool IsIntegerLike(TypeId t) { return StorageClassOf(t) == StorageClass::kInt64; }

/// \brief Runtime scalar: a single (possibly NULL) typed value.
///
/// Used at the "slow" edges of the system: query results, literals,
/// histograms, container min/max stats. The execution engine's inner loops
/// use ColumnVector's typed arrays instead.
class Value {
 public:
  Value() : type_(TypeId::kInt64), null_(true) {}

  static Value Null(TypeId type) {
    Value v;
    v.type_ = type;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, b ? 1 : 0); }
  static Value Int64(int64_t i) { return Value(TypeId::kInt64, i); }
  static Value Date(int64_t days) { return Value(TypeId::kDate, days); }
  static Value Timestamp(int64_t micros) { return Value(TypeId::kTimestamp, micros); }
  static Value Float64(double d) {
    Value v;
    v.type_ = TypeId::kFloat64;
    v.null_ = false;
    v.d_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.null_ = false;
    v.s_ = std::move(s);
    return v;
  }
  /// An int-classed value with explicit logical type (bool/date/timestamp).
  static Value OfInt(TypeId t, int64_t i) { return Value(t, i); }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }
  int64_t i64() const { return i_; }
  double f64() const { return d_; }
  const std::string& str() const { return s_; }

  /// Numeric view: ints widen to double.
  double AsDouble() const {
    return StorageClassOf(type_) == StorageClass::kFloat64 ? d_
                                                           : static_cast<double>(i_);
  }

  uint64_t Hash() const;

  /// Total order; NULL sorts first; cross-storage-class comparison compares
  /// numerically where possible.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

  /// Parse a literal of the given type from text (used by the CSV loader).
  static Result<Value> Parse(TypeId type, const std::string& text);

 private:
  Value(TypeId t, int64_t i) : type_(t), null_(false), i_(i) {}

  TypeId type_;
  bool null_;
  int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
};

/// Render `days` since 2000-01-01 as YYYY-MM-DD.
std::string FormatDate(int64_t days);
/// Parse YYYY-MM-DD into days since 2000-01-01.
Result<int64_t> ParseDate(const std::string& text);
/// Extract calendar year / month (1-12) from a date in days.
int32_t DateYear(int64_t days);
int32_t DateMonth(int64_t days);
/// Build a date from calendar components.
int64_t MakeDate(int32_t year, int32_t month, int32_t day);

}  // namespace stratica

#endif  // STRATICA_COMMON_TYPES_H_
