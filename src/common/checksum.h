// CRC32C checksums and the footer format guarding every on-disk structure
// (DESIGN.md §10). ROS column blocks carry a per-block CRC in the position
// index; whole files (index, ros meta, DVROS, catalog snapshots) carry an
// 8-byte trailing footer so a torn or bit-flipped file is detected at read
// time instead of silently decoding garbage.
#ifndef STRATICA_COMMON_CHECKSUM_H_
#define STRATICA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace stratica {

/// CRC32C (Castagnoli polynomial, as used by iSCSI/ext4/RocksDB), software
/// slicing-by-4 implementation. `seed` allows incremental computation:
/// Crc32c(Crc32c(0, a), b) == Crc32c(0, a||b).
uint32_t Crc32c(uint32_t seed, const void* data, size_t n);
inline uint32_t Crc32c(const void* data, size_t n) { return Crc32c(0, data, n); }
inline uint32_t Crc32c(const std::string& s) { return Crc32c(0, s.data(), s.size()); }

/// Footer layout: payload || crc32c(payload) LE32 || "Sck1" magic.
constexpr size_t kCrcFooterSize = 8;

/// Append the 8-byte integrity footer over the current contents of `buf`.
void AppendCrcFooter(std::string* buf);

/// Verify `buf`'s trailing footer and strip it, leaving the payload.
/// Returns Corruption carrying `path` and the byte offset of the damage
/// region (0 for the footer itself) when the file is torn or mismatched.
Status VerifyAndStripCrcFooter(std::string* buf, const std::string& path);

/// Verify a block's stored CRC against `buf[buf_offset, buf_offset+len)`;
/// on mismatch returns Corruption carrying `path` and `file_offset` (the
/// block's position in the file, which may differ from its position in the
/// fetched buffer).
Status VerifyBlockCrc(const std::string& buf, size_t buf_offset, size_t len,
                      uint32_t expected, const std::string& path,
                      uint64_t file_offset);

class FileSystem;

/// WriteFile with the integrity footer appended.
Status WriteFileChecksummed(FileSystem* fs, const std::string& path,
                            std::string data);

/// ReadFile + footer verification; returns the payload.
Result<std::string> ReadFileChecksummed(const FileSystem* fs, const std::string& path);

}  // namespace stratica

#endif  // STRATICA_COMMON_CHECKSUM_H_
