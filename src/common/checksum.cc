#include "common/checksum.h"

#include <array>
#include <cstring>

#include "common/fs.h"

namespace stratica {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli
constexpr char kFooterMagic[4] = {'S', 'c', 'k', '1'};

struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(uint32_t seed, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 4) {
    uint32_t w;
    std::memcpy(&w, p, 4);
    crc ^= w;
    crc = t[3][crc & 0xff] ^ t[2][(crc >> 8) & 0xff] ^ t[1][(crc >> 16) & 0xff] ^
          t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  return ~crc;
}

void AppendCrcFooter(std::string* buf) {
  uint32_t crc = Crc32c(buf->data(), buf->size());
  char trailer[kCrcFooterSize];
  trailer[0] = static_cast<char>(crc & 0xff);
  trailer[1] = static_cast<char>((crc >> 8) & 0xff);
  trailer[2] = static_cast<char>((crc >> 16) & 0xff);
  trailer[3] = static_cast<char>((crc >> 24) & 0xff);
  std::memcpy(trailer + 4, kFooterMagic, 4);
  buf->append(trailer, kCrcFooterSize);
}

Status VerifyAndStripCrcFooter(std::string* buf, const std::string& path) {
  if (buf->size() < kCrcFooterSize) {
    return Status::Corruption("truncated file (no integrity footer): ", path,
                              " at offset 0, size ", buf->size());
  }
  const char* trailer = buf->data() + buf->size() - kCrcFooterSize;
  if (std::memcmp(trailer + 4, kFooterMagic, 4) != 0) {
    return Status::Corruption("missing integrity footer magic: ", path,
                              " at offset ", buf->size() - 4);
  }
  uint32_t stored = static_cast<uint8_t>(trailer[0]) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(trailer[1])) << 8) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(trailer[2])) << 16) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(trailer[3])) << 24);
  size_t payload = buf->size() - kCrcFooterSize;
  uint32_t actual = Crc32c(buf->data(), payload);
  if (stored != actual) {
    return Status::Corruption("checksum mismatch: ", path, " at offset 0..", payload,
                              " (stored ", stored, ", computed ", actual, ")");
  }
  buf->resize(payload);
  return Status::OK();
}

Status VerifyBlockCrc(const std::string& buf, size_t buf_offset, size_t len,
                      uint32_t expected, const std::string& path,
                      uint64_t file_offset) {
  if (buf_offset + len > buf.size()) {
    return Status::Corruption("truncated block: ", path, " at offset ", file_offset,
                              " need ", len, " bytes, have ",
                              buf.size() > buf_offset ? buf.size() - buf_offset : 0);
  }
  uint32_t actual = Crc32c(buf.data() + buf_offset, len);
  if (actual != expected) {
    return Status::Corruption("block checksum mismatch: ", path, " at offset ",
                              file_offset, " len ", len, " (stored ", expected,
                              ", computed ", actual, ")");
  }
  return Status::OK();
}

Status WriteFileChecksummed(FileSystem* fs, const std::string& path,
                            std::string data) {
  AppendCrcFooter(&data);
  return fs->WriteFile(path, data);
}

Result<std::string> ReadFileChecksummed(const FileSystem* fs, const std::string& path) {
  STRATICA_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  STRATICA_RETURN_NOT_OK(VerifyAndStripCrcFooter(&data, path));
  return data;
}

}  // namespace stratica
