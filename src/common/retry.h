// Bounded exponential backoff with deterministic jitter for transient I/O
// errors (DESIGN.md §10). Only Status::IsTransient() failures are retried;
// persistent IoError and Corruption surface immediately so failover (not
// retry) handles them.
#ifndef STRATICA_COMMON_RETRY_H_
#define STRATICA_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/hash.h"
#include "common/status.h"

namespace stratica {

struct RetryPolicy {
  int max_attempts = 4;           ///< total tries, including the first
  uint64_t base_backoff_us = 20;  ///< doubled per retry
  uint64_t max_backoff_us = 2000;
  /// Mixed with the attempt number to derive the jitter fraction; callers
  /// seed it per-site (e.g. from a path hash) so concurrent retriers do not
  /// thunder in lockstep while runs stay reproducible.
  uint64_t jitter_seed = 0;
};

/// Backoff for retry number `attempt` (1-based): min(base << (attempt-1),
/// max), then scaled by a deterministic jitter factor in [0.5, 1.0].
inline uint64_t RetryBackoffUs(const RetryPolicy& p, int attempt) {
  uint64_t shift = attempt > 0 ? static_cast<uint64_t>(attempt - 1) : 0;
  uint64_t backoff = shift >= 63 ? p.max_backoff_us : p.base_backoff_us << shift;
  if (backoff > p.max_backoff_us) backoff = p.max_backoff_us;
  uint64_t j = Mix64(p.jitter_seed + 0x9e3779b97f4a7c15ULL * (attempt + 1));
  return backoff / 2 + (backoff / 2) * (j % 1024) / 1024;
}

/// Run `fn` (returning Status), retrying while the result is transient, up
/// to max_attempts. `retries` (may be null) accumulates the retry count —
/// including those of an ultimately failed call, so stats still show the
/// degraded path fired.
template <typename Fn>
Status RetryTransient(const RetryPolicy& p, uint64_t* retries, Fn&& fn) {
  Status st;
  for (int attempt = 1;; ++attempt) {
    st = fn();
    if (st.ok() || !st.IsTransient() || attempt >= p.max_attempts) return st;
    std::this_thread::sleep_for(std::chrono::microseconds(RetryBackoffUs(p, attempt)));
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace stratica

#endif  // STRATICA_COMMON_RETRY_H_
