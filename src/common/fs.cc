#include "common/fs.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace stratica {

namespace stdfs = std::filesystem;

Status FileSystem::ReadRangeInto(const std::string& path, uint64_t offset,
                                 uint64_t length, std::string* out) const {
  STRATICA_ASSIGN_OR_RETURN(std::string data, ReadRange(path, offset, length));
  *out = std::move(data);
  return Status::OK();
}

Result<uint64_t> FileSystem::TotalSize(const std::string& prefix) const {
  STRATICA_ASSIGN_OR_RETURN(std::vector<std::string> names, List(prefix));
  uint64_t total = 0;
  for (const auto& name : names) {
    STRATICA_ASSIGN_OR_RETURN(uint64_t sz, FileSize(name));
    total += sz;
  }
  return total;
}

// ---------------------------------------------------------------------------
// MemFileSystem

Status MemFileSystem::WriteFile(const std::string& path, const std::string& data) {
  std::unique_lock lock(mu_);
  files_[path] = std::make_shared<const std::string>(data);
  return Status::OK();
}

// Reads snapshot the refcounted buffer under the lock and copy bytes after
// releasing it: a concurrent Delete or WriteFile (mergeout GC racing a
// scan) only drops the map entry — the shared_ptr keeps this reader's view
// alive, exactly as an open file descriptor survives an unlink.
std::shared_ptr<const std::string> MemFileSystem::Snapshot(
    const std::string& path) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

Result<std::string> MemFileSystem::ReadFile(const std::string& path) const {
  auto data = Snapshot(path);
  if (!data) return Status::NotFound("no such file: ", path);
  return *data;
}

Result<std::string> MemFileSystem::ReadRange(const std::string& path, uint64_t offset,
                                             uint64_t length) const {
  auto data = Snapshot(path);
  if (!data) return Status::NotFound("no such file: ", path);
  if (offset > data->size()) return Status::IoError("read past EOF: ", path);
  return data->substr(offset, length);
}

Status MemFileSystem::ReadRangeInto(const std::string& path, uint64_t offset,
                                    uint64_t length, std::string* out) const {
  auto data = Snapshot(path);
  if (!data) return Status::NotFound("no such file: ", path);
  if (offset > data->size()) return Status::IoError("read past EOF: ", path);
  size_t n = std::min<uint64_t>(length, data->size() - offset);
  out->assign(data->data() + offset, n);  // reuses the buffer's capacity
  return Status::OK();
}

Result<uint64_t> MemFileSystem::FileSize(const std::string& path) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: ", path);
  return static_cast<uint64_t>(it->second->size());
}

bool MemFileSystem::Exists(const std::string& path) const {
  std::shared_lock lock(mu_);
  return files_.count(path) > 0;
}

Status MemFileSystem::Delete(const std::string& path) {
  std::unique_lock lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound("no such file: ", path);
  return Status::OK();
}

Result<std::vector<std::string>> MemFileSystem::List(const std::string& prefix) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.push_back(it->first);
  }
  return out;
}

Status MemFileSystem::HardLink(const std::string& source, const std::string& target) {
  std::unique_lock lock(mu_);
  auto it = files_.find(source);
  if (it == files_.end()) return Status::NotFound("no such file: ", source);
  files_[target] = it->second;  // share the buffer, as a hard link shares the inode
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LocalFileSystem

LocalFileSystem::LocalFileSystem(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  stdfs::create_directories(root_, ec);
}

std::string LocalFileSystem::Absolute(const std::string& path) const {
  return root_ + "/" + path;
}

Status LocalFileSystem::WriteFile(const std::string& path, const std::string& data) {
  std::string abs = Absolute(path);
  std::error_code ec;
  stdfs::create_directories(stdfs::path(abs).parent_path(), ec);
  // Write to a temp name then rename for atomicity.
  std::string tmp = abs + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: ", abs);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IoError("short write: ", abs);
  }
  stdfs::rename(tmp, abs, ec);
  if (ec) return Status::IoError("rename failed: ", abs, ": ", ec.message());
  return Status::OK();
}

Result<std::string> LocalFileSystem::ReadFile(const std::string& path) const {
  std::ifstream in(Absolute(path), std::ios::binary);
  if (!in) return Status::NotFound("no such file: ", path);
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

Result<std::string> LocalFileSystem::ReadRange(const std::string& path, uint64_t offset,
                                               uint64_t length) const {
  std::ifstream in(Absolute(path), std::ios::binary);
  if (!in) return Status::NotFound("no such file: ", path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::string data(length, '\0');
  in.read(data.data(), static_cast<std::streamsize>(length));
  data.resize(static_cast<size_t>(in.gcount()));
  return data;
}

Status LocalFileSystem::ReadRangeInto(const std::string& path, uint64_t offset,
                                      uint64_t length, std::string* out) const {
  std::ifstream in(Absolute(path), std::ios::binary);
  if (!in) return Status::NotFound("no such file: ", path);
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(static_cast<size_t>(length));  // keeps existing capacity
  in.read(out->data(), static_cast<std::streamsize>(length));
  out->resize(static_cast<size_t>(in.gcount()));
  return Status::OK();
}

Result<uint64_t> LocalFileSystem::FileSize(const std::string& path) const {
  std::error_code ec;
  auto sz = stdfs::file_size(Absolute(path), ec);
  if (ec) return Status::NotFound("no such file: ", path);
  return static_cast<uint64_t>(sz);
}

bool LocalFileSystem::Exists(const std::string& path) const {
  return stdfs::exists(Absolute(path));
}

Status LocalFileSystem::Delete(const std::string& path) {
  std::error_code ec;
  if (!stdfs::remove(Absolute(path), ec) || ec)
    return Status::NotFound("no such file: ", path);
  return Status::OK();
}

Result<std::vector<std::string>> LocalFileSystem::List(const std::string& prefix) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = stdfs::recursive_directory_iterator(root_, ec);
       !ec && it != stdfs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    std::string rel = stdfs::relative(it->path(), root_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status LocalFileSystem::HardLink(const std::string& source, const std::string& target) {
  std::string abs_target = Absolute(target);
  std::error_code ec;
  stdfs::create_directories(stdfs::path(abs_target).parent_path(), ec);
  stdfs::create_hard_link(Absolute(source), abs_target, ec);
  if (ec) return Status::IoError("hard link failed: ", source, " -> ", target);
  return Status::OK();
}

}  // namespace stratica
