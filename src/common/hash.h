// 64-bit hashing used for projection segmentation (the ring over 2^64 of
// Section 3.6), hash joins, and hash aggregation.
#ifndef STRATICA_COMMON_HASH_H_
#define STRATICA_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace stratica {

/// Finalizer from MurmurHash3 / splitmix64: full-avalanche mix of a 64-bit
/// value. Adequate for ring segmentation where only the high bits matter.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash a byte string (FNV-1a 64 followed by a finalizer mix).
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

inline uint64_t HashInt64(int64_t v) { return Mix64(static_cast<uint64_t>(v)); }

inline uint64_t HashDouble(double d) {
  // Normalize -0.0 to +0.0 so equal values hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

/// Combine two hashes (boost::hash_combine style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hash value of a NULL entry (shared by scalar HashEntry and the batched
/// HashColumn/HashRows loops so every hashing path agrees on NULLs).
inline constexpr uint64_t kNullHash = 0x5ca1ab1e;

/// Seed for group-key hashing (group-by tables, exchange repartitioning).
inline constexpr uint64_t kGroupKeySeed = 0x6b7d;
/// Seed for SIP key hashing (join build side and scan-side filtering must
/// agree bit-for-bit).
inline constexpr uint64_t kSipSeed = 0x9b97;

}  // namespace stratica

#endif  // STRATICA_COMMON_HASH_H_
