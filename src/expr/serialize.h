// Compact s-expression serialization of Expr trees, used by the catalog's
// persistence mechanism (Section 5.3: the catalog is "transactionally
// persisted to disk via its own mechanism", not via database tables).
#ifndef STRATICA_EXPR_SERIALIZE_H_
#define STRATICA_EXPR_SERIALIZE_H_

#include <string>

#include "expr/expr.h"

namespace stratica {

/// Render a (possibly unbound) expression as a parseable s-expression.
std::string SerializeExpr(const Expr& e);

/// Parse the output of SerializeExpr. The result is unbound (column
/// references carry names only) and must be re-bound against a schema.
Result<ExprPtr> ParseSerializedExpr(const std::string& text);

}  // namespace stratica

#endif  // STRATICA_EXPR_SERIALIZE_H_
