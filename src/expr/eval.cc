// Vectorized expression evaluation.
//
// Block-at-a-time interpreter with type/operator-specialized inner loops.
// Dispatch happens once per block, so per-row work contains no type
// branching — the behaviour the paper obtains with runtime JIT compilation
// (Section 6.1); see DESIGN.md §4 for the substitution rationale.
#include <cmath>
#include <unordered_set>

#include "common/hash.h"
#include "expr/expr.h"

namespace stratica {

namespace {

// Physical index stride for broadcasting: a size-1 vector (e.g. a scalar
// subexpression) is read at index 0 for every logical row, larger vectors
// advance row by row. Prevents the out-of-bounds reads the old
// `max(l, r)`-sized loops performed on mixed-size operands.
inline size_t BroadcastStride(const ColumnVector& v, size_t n) {
  return (n > 1 && v.PhysicalSize() == 1) ? 0 : 1;
}

// Merge two null maps: result is null where either input is (size-1 inputs
// broadcast).
std::vector<uint8_t> UnionNulls(const ColumnVector& a, const ColumnVector& b,
                                size_t n) {
  if (a.nulls.empty() && b.nulls.empty()) return {};
  size_t sa = BroadcastStride(a, n), sb = BroadcastStride(b, n);
  std::vector<uint8_t> out(n, 0);
  for (size_t i = 0; i < n; ++i) {
    bool an = !a.nulls.empty() && a.nulls[i * sa];
    bool bn = !b.nulls.empty() && b.nulls[i * sb];
    out[i] = (an || bn) ? 1 : 0;
  }
  return out;
}

template <typename T, typename Op>
void CompareLoop(const std::vector<T>& a, const std::vector<T>& b,
                 std::vector<int64_t>* out, Op op) {
  size_t n = a.size();
  out->resize(n);
  for (size_t i = 0; i < n; ++i) (*out)[i] = op(a[i], b[i]) ? 1 : 0;
}

template <typename T, typename Op>
void CompareConstLoop(const std::vector<T>& a, T c, std::vector<int64_t>* out, Op op) {
  size_t n = a.size();
  out->resize(n);
  for (size_t i = 0; i < n; ++i) (*out)[i] = op(a[i], c) ? 1 : 0;
}

// Specialized predicate kernels: column <op> constant directly into the
// selection byte vector, fused with null suppression. `active` (nullable)
// masks rows already filtered out upstream.
template <typename T, typename Op>
void SelConstLoop(const std::vector<T>& a, const std::vector<uint8_t>& nulls,
                  const uint8_t* active, T c, std::vector<uint8_t>* sel, Op op) {
  size_t n = a.size();
  sel->resize(n);
  if (active == nullptr) {
    if (nulls.empty()) {
      for (size_t i = 0; i < n; ++i) (*sel)[i] = op(a[i], c) ? 1 : 0;
    } else {
      for (size_t i = 0; i < n; ++i) (*sel)[i] = (!nulls[i] && op(a[i], c)) ? 1 : 0;
    }
  } else {
    if (nulls.empty()) {
      for (size_t i = 0; i < n; ++i) (*sel)[i] = (active[i] && op(a[i], c)) ? 1 : 0;
    } else {
      for (size_t i = 0; i < n; ++i)
        (*sel)[i] = (active[i] && !nulls[i] && op(a[i], c)) ? 1 : 0;
    }
  }
}

template <typename T>
Status DispatchSelConst(const std::vector<T>& data, const std::vector<uint8_t>& nulls,
                        const uint8_t* active, CompareOp cmp, T c,
                        std::vector<uint8_t>* sel) {
  switch (cmp) {
    case CompareOp::kEq:
      SelConstLoop(data, nulls, active, c, sel, std::equal_to<T>());
      break;
    case CompareOp::kNe:
      SelConstLoop(data, nulls, active, c, sel, std::not_equal_to<T>());
      break;
    case CompareOp::kLt: SelConstLoop(data, nulls, active, c, sel, std::less<T>()); break;
    case CompareOp::kLe:
      SelConstLoop(data, nulls, active, c, sel, std::less_equal<T>());
      break;
    case CompareOp::kGt:
      SelConstLoop(data, nulls, active, c, sel, std::greater<T>());
      break;
    case CompareOp::kGe:
      SelConstLoop(data, nulls, active, c, sel, std::greater_equal<T>());
      break;
  }
  return Status::OK();
}

Status EvalCompare(const Expr& e, const RowBlock& input, ColumnVector* out) {
  ColumnVector l, r;
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &l));
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[1], input, &r));
  out->Clear();
  out->type = TypeId::kBool;
  bool as_double = StorageClassOf(l.type) == StorageClass::kFloat64 ||
                   StorageClassOf(r.type) == StorageClass::kFloat64;
  size_t n = std::max(l.PhysicalSize(), r.PhysicalSize());
  out->nulls = UnionNulls(l, r, n);
  size_t ls = BroadcastStride(l, n), rs = BroadcastStride(r, n);
  out->ints.resize(n);
  auto emit = [&](auto op) {
    if (StorageClassOf(l.type) == StorageClass::kString) {
      for (size_t i = 0; i < n; ++i)
        out->ints[i] = op(l.strings[i * ls], r.strings[i * rs]) ? 1 : 0;
    } else if (as_double) {
      for (size_t i = 0; i < n; ++i) {
        double x = StorageClassOf(l.type) == StorageClass::kFloat64
                       ? l.doubles[i * ls]
                       : static_cast<double>(l.ints[i * ls]);
        double y = StorageClassOf(r.type) == StorageClass::kFloat64
                       ? r.doubles[i * rs]
                       : static_cast<double>(r.ints[i * rs]);
        out->ints[i] = op(x, y) ? 1 : 0;
      }
    } else {
      for (size_t i = 0; i < n; ++i)
        out->ints[i] = op(l.ints[i * ls], r.ints[i * rs]) ? 1 : 0;
    }
  };
  switch (e.cmp) {
    case CompareOp::kEq: emit([](const auto& a, const auto& b) { return a == b; }); break;
    case CompareOp::kNe: emit([](const auto& a, const auto& b) { return a != b; }); break;
    case CompareOp::kLt: emit([](const auto& a, const auto& b) { return a < b; }); break;
    case CompareOp::kLe: emit([](const auto& a, const auto& b) { return a <= b; }); break;
    case CompareOp::kGt: emit([](const auto& a, const auto& b) { return a > b; }); break;
    case CompareOp::kGe: emit([](const auto& a, const auto& b) { return a >= b; }); break;
  }
  return Status::OK();
}

Status EvalArith(const Expr& e, const RowBlock& input, ColumnVector* out) {
  ColumnVector l, r;
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &l));
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[1], input, &r));
  out->Clear();
  out->type = e.type;
  size_t n = std::max(l.PhysicalSize(), r.PhysicalSize());
  out->nulls = UnionNulls(l, r, n);
  size_t ls = BroadcastStride(l, n), rs = BroadcastStride(r, n);
  if (e.type == TypeId::kFloat64) {
    out->doubles.resize(n);
    auto get = [](const ColumnVector& v, size_t i) {
      return StorageClassOf(v.type) == StorageClass::kFloat64
                 ? v.doubles[i]
                 : static_cast<double>(v.ints[i]);
    };
    for (size_t i = 0; i < n; ++i) {
      double x = get(l, i * ls), y = get(r, i * rs);
      double res = 0;
      switch (e.arith) {
        case ArithOp::kAdd: res = x + y; break;
        case ArithOp::kSub: res = x - y; break;
        case ArithOp::kMul: res = x * y; break;
        case ArithOp::kDiv:
          if (y == 0) {
            if (out->nulls.empty()) out->nulls.assign(n, 0);
            out->nulls[i] = 1;
          } else {
            res = x / y;
          }
          break;
        case ArithOp::kMod: res = std::fmod(x, y); break;
      }
      out->doubles[i] = res;
    }
  } else {
    out->ints.resize(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t x = l.ints[i * ls], y = r.ints[i * rs];
      int64_t res = 0;
      switch (e.arith) {
        case ArithOp::kAdd: res = x + y; break;
        case ArithOp::kSub: res = x - y; break;
        case ArithOp::kMul: res = x * y; break;
        case ArithOp::kDiv:
        case ArithOp::kMod:
          if (y == 0) {
            if (out->nulls.empty()) out->nulls.assign(n, 0);
            out->nulls[i] = 1;
          } else {
            res = e.arith == ArithOp::kDiv ? x / y : x % y;
          }
          break;
      }
      out->ints[i] = res;
    }
  }
  return Status::OK();
}

Status EvalLogical(const Expr& e, const RowBlock& input, ColumnVector* out) {
  ColumnVector l;
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &l));
  out->Clear();
  out->type = TypeId::kBool;
  size_t n = l.PhysicalSize();
  if (e.logic == LogicalOp::kNot) {
    out->ints.resize(n);
    out->nulls = l.nulls;
    for (size_t i = 0; i < n; ++i) out->ints[i] = l.ints[i] ? 0 : 1;
    return Status::OK();
  }
  ColumnVector r;
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[1], input, &r));
  n = std::max(l.PhysicalSize(), r.PhysicalSize());
  size_t ls = BroadcastStride(l, n), rs = BroadcastStride(r, n);
  out->ints.resize(n);
  // Kleene three-valued logic: UNKNOWN handled via null maps.
  out->nulls.assign(n, 0);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    int lv = l.IsNull(i * ls) ? -1 : (l.ints[i * ls] ? 1 : 0);
    int rv = r.IsNull(i * rs) ? -1 : (r.ints[i * rs] ? 1 : 0);
    int res;
    if (e.logic == LogicalOp::kAnd) {
      res = (lv == 0 || rv == 0) ? 0 : ((lv == 1 && rv == 1) ? 1 : -1);
    } else {
      res = (lv == 1 || rv == 1) ? 1 : ((lv == 0 && rv == 0) ? 0 : -1);
    }
    if (res < 0) {
      out->nulls[i] = 1;
      any_null = true;
      out->ints[i] = 0;
    } else {
      out->ints[i] = res;
    }
  }
  if (!any_null) out->nulls.clear();
  return Status::OK();
}

Status EvalFunc(const Expr& e, const RowBlock& input, ColumnVector* out) {
  switch (e.func) {
    case FuncKind::kExtractYear:
    case FuncKind::kExtractMonth:
    case FuncKind::kYearMonth: {
      ColumnVector arg;
      STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
      out->Clear();
      out->type = TypeId::kInt64;
      out->nulls = arg.nulls;
      size_t n = arg.PhysicalSize();
      out->ints.resize(n);
      bool is_ts = arg.type == TypeId::kTimestamp;
      for (size_t i = 0; i < n; ++i) {
        int64_t days = is_ts ? arg.ints[i] / (86400LL * 1000000LL) : arg.ints[i];
        switch (e.func) {
          case FuncKind::kExtractYear: out->ints[i] = DateYear(days); break;
          case FuncKind::kExtractMonth: out->ints[i] = DateMonth(days); break;
          default: out->ints[i] = DateYear(days) * 100 + DateMonth(days); break;
        }
      }
      return Status::OK();
    }
    case FuncKind::kHash: {
      std::vector<ColumnVector> args(e.children.size());
      for (size_t c = 0; c < e.children.size(); ++c)
        STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[c], input, &args[c]));
      out->Clear();
      out->type = TypeId::kInt64;
      size_t n = args.empty() ? 0 : args[0].PhysicalSize();
      out->ints.resize(n);
      for (size_t i = 0; i < n; ++i) {
        uint64_t h = 0x9b97ULL;
        for (const auto& a : args) h = HashCombine(h, a.HashEntry(i));
        out->ints[i] = static_cast<int64_t>(h);
      }
      return Status::OK();
    }
    case FuncKind::kLike: {
      ColumnVector arg;
      STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
      out->Clear();
      out->type = TypeId::kBool;
      out->nulls = arg.nulls;
      size_t n = arg.PhysicalSize();
      out->ints.resize(n);
      for (size_t i = 0; i < n; ++i)
        out->ints[i] = LikeMatch(arg.strings[i], e.like_pattern) ? 1 : 0;
      return Status::OK();
    }
    case FuncKind::kAbs: {
      ColumnVector arg;
      STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
      *out = arg;
      if (StorageClassOf(out->type) == StorageClass::kFloat64) {
        for (auto& d : out->doubles) d = std::fabs(d);
      } else {
        for (auto& v : out->ints) v = v < 0 ? -v : v;
      }
      return Status::OK();
    }
    case FuncKind::kDateTrunc: {
      ColumnVector arg;
      STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
      *out = arg;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled function");
}

Status EvalIn(const Expr& e, const RowBlock& input, ColumnVector* out) {
  ColumnVector arg;
  STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
  out->Clear();
  out->type = TypeId::kBool;
  out->nulls = arg.nulls;
  size_t n = arg.PhysicalSize();
  out->ints.resize(n);
  if (StorageClassOf(arg.type) == StorageClass::kString) {
    std::unordered_set<std::string> set;
    for (const auto& v : e.in_list)
      if (!v.is_null()) set.insert(v.str());
    for (size_t i = 0; i < n; ++i) {
      bool hit = set.count(arg.strings[i]) > 0;
      out->ints[i] = (hit != e.negated) ? 1 : 0;
    }
  } else if (StorageClassOf(arg.type) == StorageClass::kFloat64) {
    std::unordered_set<double> set;
    for (const auto& v : e.in_list)
      if (!v.is_null()) set.insert(v.AsDouble());
    for (size_t i = 0; i < n; ++i) {
      bool hit = set.count(arg.doubles[i]) > 0;
      out->ints[i] = (hit != e.negated) ? 1 : 0;
    }
  } else {
    std::unordered_set<int64_t> set;
    for (const auto& v : e.in_list)
      if (!v.is_null()) set.insert(v.i64());
    for (size_t i = 0; i < n; ++i) {
      bool hit = set.count(arg.ints[i]) > 0;
      out->ints[i] = (hit != e.negated) ? 1 : 0;
    }
  }
  return Status::OK();
}

}  // namespace

Status EvalExpr(const Expr& e, const RowBlock& input, ColumnVector* out) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      if (e.column_index < 0 || e.column_index >= static_cast<int>(input.NumColumns()))
        return Status::Internal("unbound column reference: ", e.column_name);
      const ColumnVector& col = input.columns[e.column_index];
      *out = col.IsFlat() ? col : col.Decoded();
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      out->Clear();
      out->type = e.type;
      size_t n = input.NumRows();
      if (e.literal.is_null()) out->nulls.assign(n, 1);
      switch (StorageClassOf(e.type)) {
        case StorageClass::kInt64:
          out->ints.assign(n, e.literal.is_null() ? 0 : e.literal.i64());
          break;
        case StorageClass::kFloat64:
          out->doubles.assign(n, e.literal.is_null() ? 0 : e.literal.f64());
          break;
        case StorageClass::kString:
          out->strings.assign(n, e.literal.is_null() ? "" : e.literal.str());
          break;
      }
      return Status::OK();
    }
    case ExprKind::kCompare: return EvalCompare(e, input, out);
    case ExprKind::kArith: return EvalArith(e, input, out);
    case ExprKind::kLogical: return EvalLogical(e, input, out);
    case ExprKind::kFunc: return EvalFunc(e, input, out);
    case ExprKind::kIn: return EvalIn(e, input, out);
    case ExprKind::kIsNull: {
      ColumnVector arg;
      STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[0], input, &arg));
      out->Clear();
      out->type = TypeId::kBool;
      size_t n = arg.PhysicalSize();
      out->ints.resize(n);
      for (size_t i = 0; i < n; ++i) {
        bool isnull = arg.IsNull(i);
        out->ints[i] = (isnull != e.negated) ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprKind::kCase: {
      size_t n = input.NumRows();
      out->Clear();
      out->type = e.type;
      std::vector<uint8_t> decided(n, 0);
      // Start all-NULL; WHEN branches overwrite.
      out->nulls.assign(n, 1);
      switch (StorageClassOf(e.type)) {
        case StorageClass::kInt64: out->ints.assign(n, 0); break;
        case StorageClass::kFloat64: out->doubles.assign(n, 0); break;
        case StorageClass::kString: out->strings.assign(n, ""); break;
      }
      size_t pairs = e.children.size() / 2;
      for (size_t b = 0; b < pairs; ++b) {
        ColumnVector cond, val;
        STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[2 * b], input, &cond));
        STRATICA_RETURN_NOT_OK(EvalExpr(*e.children[2 * b + 1], input, &val));
        for (size_t i = 0; i < n; ++i) {
          if (decided[i] || cond.IsNull(i) || !cond.ints[i]) continue;
          decided[i] = 1;
          out->nulls[i] = val.IsNull(i) ? 1 : 0;
          switch (StorageClassOf(e.type)) {
            case StorageClass::kInt64: out->ints[i] = val.ints[i]; break;
            case StorageClass::kFloat64: out->doubles[i] = val.doubles[i]; break;
            case StorageClass::kString: out->strings[i] = val.strings[i]; break;
          }
        }
      }
      if (e.children.size() % 2 == 1) {
        ColumnVector val;
        STRATICA_RETURN_NOT_OK(EvalExpr(*e.children.back(), input, &val));
        for (size_t i = 0; i < n; ++i) {
          if (decided[i]) continue;
          out->nulls[i] = val.IsNull(i) ? 1 : 0;
          switch (StorageClassOf(e.type)) {
            case StorageClass::kInt64: out->ints[i] = val.ints[i]; break;
            case StorageClass::kFloat64: out->doubles[i] = val.doubles[i]; break;
            case StorageClass::kString: out->strings[i] = val.strings[i]; break;
          }
        }
      }
      bool any_null = false;
      for (uint8_t v : out->nulls) any_null |= (v != 0);
      if (!any_null) out->nulls.clear();
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expr kind in EvalExpr");
}

namespace {

// Per-physical-entry verdicts for `<values> <op> <lit>` — the shared kernel
// of the flat, RLE, and dict compare-const fast paths. Returns false on
// unsupported (type, literal) pairings.
bool EntryVerdicts(const ColumnVector& values, CompareOp cmp, const Value& lit,
                   const uint8_t* active, std::vector<uint8_t>* sel) {
  if (StorageClassOf(values.type) == StorageClass::kInt64 &&
      StorageClassOf(lit.type()) == StorageClass::kInt64) {
    DispatchSelConst<int64_t>(values.ints, values.nulls, active, cmp, lit.i64(), sel);
    return true;
  }
  if (StorageClassOf(values.type) == StorageClass::kFloat64 &&
      lit.type() != TypeId::kString) {
    DispatchSelConst<double>(values.doubles, values.nulls, active, cmp, lit.AsDouble(),
                             sel);
    return true;
  }
  if (StorageClassOf(values.type) == StorageClass::kString &&
      lit.type() == TypeId::kString) {
    DispatchSelConst<std::string>(values.strings, values.nulls, active, cmp, lit.str(),
                                  sel);
    return true;
  }
  return false;
}

// Shared compare-const fast-path matcher. Returns true (and fills `sel`)
// when `e` is `<column> <op> <non-null literal>` of a supported type.
// Compressed execution (DESIGN.md §13): RLE columns evaluate one compare per
// run and dict-coded columns one compare per dictionary entry (the verdict
// bitmap *is* the predicate translated to a code set); `rows_encoded`
// (nullable) accumulates the logical rows covered that way.
bool TrySelConstFastPath(const Expr& e, const RowBlock& input, const uint8_t* active,
                         size_t n_active, std::vector<uint8_t>* sel,
                         uint64_t* rows_encoded) {
  if (e.kind != ExprKind::kCompare || e.children[0]->kind != ExprKind::kColumnRef ||
      e.children[1]->kind != ExprKind::kLiteral || e.children[1]->literal.is_null()) {
    return false;
  }
  int idx = e.children[0]->column_index;
  if (idx < 0 || idx >= static_cast<int>(input.NumColumns())) return false;
  const ColumnVector& col = input.columns[idx];
  const Value& lit = e.children[1]->literal;
  if (col.IsRle()) {
    // One compare per run; the verdict then paints whole run spans of the
    // row-parallel selection.
    size_t n = col.Size();
    if (active != nullptr && n != n_active) return false;
    std::vector<uint8_t> verdict;
    if (!EntryVerdicts(col, e.cmp, lit, nullptr, &verdict)) return false;
    sel->resize(n);
    size_t row = 0;
    for (size_t p = 0; p < col.runs.size(); ++p) {
      uint32_t r = col.runs[p];
      uint8_t v = verdict[p];
      if (active == nullptr) {
        std::fill(sel->begin() + row, sel->begin() + row + r, v);
      } else {
        for (uint32_t k = 0; k < r; ++k) (*sel)[row + k] = v & active[row + k];
      }
      row += r;
    }
    if (rows_encoded != nullptr) *rows_encoded += n;
    return true;
  }
  if (col.IsDictCoded()) {
    // One compare per dictionary entry, then a code lookup per row.
    size_t n = col.ints.size();
    if (active != nullptr && n != n_active) return false;
    std::vector<uint8_t> verdict;
    if (!EntryVerdicts(*col.dict, e.cmp, lit, nullptr, &verdict)) return false;
    sel->resize(n);
    const int64_t* codes = col.ints.data();
    const uint8_t* nulls = col.nulls.empty() ? nullptr : col.nulls.data();
    for (size_t i = 0; i < n; ++i) {
      uint8_t v = verdict[static_cast<size_t>(codes[i])];
      if (nulls != nullptr && nulls[i]) v = 0;
      if (active != nullptr) v &= active[i];
      (*sel)[i] = v;
    }
    if (rows_encoded != nullptr) *rows_encoded += n;
    return true;
  }
  if (active != nullptr && col.PhysicalSize() != n_active) return false;
  return EntryVerdicts(col, e.cmp, lit, active, sel);
}

}  // namespace

Status EvalPredicate(const Expr& e, const RowBlock& input, std::vector<uint8_t>* sel,
                     uint64_t* rows_encoded) {
  // Fast path: <column> <op> <literal> over a flat, RLE, or dict column.
  if (TrySelConstFastPath(e, input, /*active=*/nullptr, 0, sel, rows_encoded))
    return Status::OK();
  // Fast path: conjunction — AND the children's selections (a size-1 side,
  // from an all-scalar subpredicate, broadcasts).
  if (e.kind == ExprKind::kLogical && e.logic == LogicalOp::kAnd) {
    std::vector<uint8_t> left, right;
    STRATICA_RETURN_NOT_OK(EvalPredicate(*e.children[0], input, &left, rows_encoded));
    STRATICA_RETURN_NOT_OK(EvalPredicate(*e.children[1], input, &right, rows_encoded));
    size_t n = std::max(left.size(), right.size());
    size_t ls = (n > 1 && left.size() == 1) ? 0 : 1;
    size_t rs = (n > 1 && right.size() == 1) ? 0 : 1;
    sel->resize(n);
    for (size_t i = 0; i < n; ++i) (*sel)[i] = left[i * ls] & right[i * rs];
    return Status::OK();
  }
  // General path.
  ColumnVector result;
  STRATICA_RETURN_NOT_OK(EvalExpr(e, input, &result));
  size_t n = result.PhysicalSize();
  sel->resize(n);
  for (size_t i = 0; i < n; ++i)
    (*sel)[i] = (!result.IsNull(i) && result.ints[i] != 0) ? 1 : 0;
  return Status::OK();
}

Status EvalPredicateMasked(const Expr& e, const RowBlock& input,
                           const std::vector<uint8_t>& active,
                           std::vector<uint8_t>* sel, uint64_t* rows_encoded) {
  size_t n = active.size();
  size_t live = 0;
  for (uint8_t a : active) live += a != 0;
  if (live == 0) {
    sel->assign(n, 0);
    return Status::OK();
  }
  // Compare-const: one fused loop, op applied only under the mask.
  if (TrySelConstFastPath(e, input, active.data(), n, sel, rows_encoded))
    return Status::OK();
  // Conjunction: the left side's survivors become the right side's mask, so
  // the right side only evaluates over rows the left side kept.
  if (e.kind == ExprKind::kLogical && e.logic == LogicalOp::kAnd) {
    std::vector<uint8_t> left;
    STRATICA_RETURN_NOT_OK(
        EvalPredicateMasked(*e.children[0], input, active, &left, rows_encoded));
    return EvalPredicateMasked(*e.children[1], input, left, sel, rows_encoded);
  }
  // General shapes: when most rows are already dead, gather the live rows
  // into a compact block, evaluate there, and scatter the verdicts back.
  // Only columns the predicate references are gathered — unreferenced ones
  // (e.g. SIP probe columns sharing the scan's filter view) stay empty.
  std::vector<char> want(input.NumColumns(), 0);
  {
    std::vector<int> refs;
    CollectColumns(e, &refs);
    for (int c : refs) {
      if (c >= 0 && c < static_cast<int>(want.size())) want[c] = 1;
    }
  }
  bool gatherable = live * 2 <= n;
  for (size_t ci = 0; ci < input.NumColumns(); ++ci) {
    if (!want[ci]) continue;
    gatherable = gatherable && !input.columns[ci].IsRle() &&
                 input.columns[ci].PhysicalSize() == n;
  }
  if (gatherable && !input.columns.empty()) {
    std::vector<uint32_t> idx;
    idx.reserve(live);
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) idx.push_back(static_cast<uint32_t>(i));
    }
    RowBlock compact;
    compact.columns.reserve(input.NumColumns());
    for (size_t ci = 0; ci < input.NumColumns(); ++ci) {
      ColumnVector c(input.columns[ci].type);
      if (want[ci]) c.AppendGather(input.columns[ci], idx);
      compact.columns.push_back(std::move(c));
    }
    if (!want[0]) {
      // Literal operands broadcast to NumRows() == columns[0].Size(): give
      // the unreferenced anchor column the right size without copying data.
      ColumnVector& c0 = compact.columns[0];
      switch (StorageClassOf(c0.type)) {
        case StorageClass::kInt64: c0.ints.resize(idx.size()); break;
        case StorageClass::kFloat64: c0.doubles.resize(idx.size()); break;
        case StorageClass::kString: c0.strings.resize(idx.size()); break;
      }
    }
    std::vector<uint8_t> csel;
    STRATICA_RETURN_NOT_OK(EvalPredicate(e, compact, &csel));
    size_t cs = (csel.size() == 1 && idx.size() > 1) ? 0 : 1;
    sel->assign(n, 0);
    for (size_t k = 0; k < idx.size(); ++k) (*sel)[idx[k]] = csel[k * cs] ? 1 : 0;
    return Status::OK();
  }
  // Mostly-live block (or ungatherable input): evaluate in full, then mask.
  std::vector<uint8_t> full;
  STRATICA_RETURN_NOT_OK(EvalPredicate(e, input, &full));
  size_t fs = (full.size() == 1 && n > 1) ? 0 : 1;
  if (full.size() != n && fs == 1) return Status::Internal("predicate size mismatch");
  sel->resize(n);
  for (size_t i = 0; i < n; ++i) (*sel)[i] = (active[i] & full[i * fs]) ? 1 : 0;
  return Status::OK();
}

Result<Value> EvalScalar(const Expr& e, const RowBlock& input, size_t row) {
  // Build a single-row block and evaluate vectorized (slow path by design).
  RowBlock one;
  one.columns.reserve(input.NumColumns());
  for (const auto& col : input.columns) {
    ColumnVector c(col.type);
    ColumnVector flat = col.IsFlat() ? col : col.Decoded();
    c.AppendFrom(flat, row);
    one.columns.push_back(std::move(c));
  }
  ColumnVector out;
  STRATICA_RETURN_NOT_OK(EvalExpr(e, one, &out));
  if (out.PhysicalSize() == 0) return Status::Internal("scalar eval produced no value");
  return out.GetValue(0);
}

}  // namespace stratica
