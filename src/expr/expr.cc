#include "expr/expr.h"

#include <algorithm>
#include <sstream>

namespace stratica {

int BindSchema::Find(const std::string& name) const {
  // Exact match first (handles qualified "t.c" names stored verbatim).
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  // Fall back to suffix match: "c" matches "t.c" if unambiguous.
  int found = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& full = names[i];
    auto dot = full.rfind('.');
    if (dot != std::string::npos && full.compare(dot + 1, std::string::npos, name) == 0) {
      if (found >= 0) return -2;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  // Also allow a qualified lookup name to match an unqualified schema name.
  if (found < 0) {
    auto dot = name.rfind('.');
    if (dot != std::string::npos) {
      std::string bare = name.substr(dot + 1);
      for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == bare) return static_cast<int>(i);
      }
    }
  }
  return found;
}

ExprPtr Col(const std::string& name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = name;
  return e;
}

ExprPtr ColIdx(int index, TypeId type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_index = index;
  e->type = type;
  e->column_name = "#" + std::to_string(index);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCompare;
  e->cmp = op;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArith;
  e->arith = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr And(ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLogical;
  e->logic = LogicalOp::kAnd;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Or(ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLogical;
  e->logic = LogicalOp::kOr;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Not(ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLogical;
  e->logic = LogicalOp::kNot;
  e->type = TypeId::kBool;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Func(FuncKind f, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunc;
  e->func = f;
  e->children = std::move(args);
  return e;
}

ExprPtr InList(ExprPtr child, std::vector<Value> values, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIn;
  e->type = TypeId::kBool;
  e->negated = negated;
  e->in_list = std::move(values);
  e->children = {std::move(child)};
  return e;
}

ExprPtr IsNull(ExprPtr child, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->type = TypeId::kBool;
  e->negated = negated;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Like(ExprPtr child, std::string pattern) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunc;
  e->func = FuncKind::kLike;
  e->type = TypeId::kBool;
  e->like_pattern = std::move(pattern);
  e->children = {std::move(child)};
  return e;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const auto& c : e->children) copy->children.push_back(CloneExpr(c));
  return copy;
}

std::string Expr::ToString() const {
  std::ostringstream ss;
  switch (kind) {
    case ExprKind::kColumnRef:
      ss << column_name;
      break;
    case ExprKind::kLiteral:
      if (literal.type() == TypeId::kString || literal.type() == TypeId::kDate ||
          literal.type() == TypeId::kTimestamp) {
        ss << "'" << literal.ToString() << "'";
      } else {
        ss << literal.ToString();
      }
      break;
    case ExprKind::kCompare: {
      static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      ss << "(" << children[0]->ToString() << " " << ops[static_cast<int>(cmp)] << " "
         << children[1]->ToString() << ")";
      break;
    }
    case ExprKind::kArith: {
      static const char* ops[] = {"+", "-", "*", "/", "%"};
      ss << "(" << children[0]->ToString() << " " << ops[static_cast<int>(arith)] << " "
         << children[1]->ToString() << ")";
      break;
    }
    case ExprKind::kLogical:
      if (logic == LogicalOp::kNot) {
        ss << "(NOT " << children[0]->ToString() << ")";
      } else {
        ss << "(" << children[0]->ToString()
           << (logic == LogicalOp::kAnd ? " AND " : " OR ") << children[1]->ToString()
           << ")";
      }
      break;
    case ExprKind::kFunc: {
      switch (func) {
        case FuncKind::kExtractYear:
          ss << "EXTRACT(YEAR FROM " << children[0]->ToString() << ")";
          break;
        case FuncKind::kExtractMonth:
          ss << "EXTRACT(MONTH FROM " << children[0]->ToString() << ")";
          break;
        case FuncKind::kYearMonth:
          ss << "YEAR_MONTH(" << children[0]->ToString() << ")";
          break;
        case FuncKind::kHash: {
          ss << "HASH(";
          for (size_t i = 0; i < children.size(); ++i) {
            if (i) ss << ", ";
            ss << children[i]->ToString();
          }
          ss << ")";
          break;
        }
        case FuncKind::kLike:
          ss << "(" << children[0]->ToString() << " LIKE '" << like_pattern << "')";
          break;
        case FuncKind::kAbs:
          ss << "ABS(" << children[0]->ToString() << ")";
          break;
        case FuncKind::kDateTrunc:
          ss << "DATE_TRUNC(" << children[0]->ToString() << ")";
          break;
      }
      break;
    }
    case ExprKind::kIn: {
      ss << "(" << children[0]->ToString() << (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i) ss << ", ";
        ss << in_list[i].ToString();
      }
      ss << "))";
      break;
    }
    case ExprKind::kIsNull:
      ss << "(" << children[0]->ToString() << (negated ? " IS NOT NULL)" : " IS NULL)");
      break;
    case ExprKind::kCase: {
      ss << "CASE";
      for (size_t i = 0; i + 1 < children.size(); i += 2) {
        ss << " WHEN " << children[i]->ToString() << " THEN " << children[i + 1]->ToString();
      }
      if (children.size() % 2 == 1) ss << " ELSE " << children.back()->ToString();
      ss << " END";
      break;
    }
  }
  return ss.str();
}

namespace {
bool IsNumeric(TypeId t) { return t == TypeId::kInt64 || t == TypeId::kFloat64; }
}  // namespace

Status BindExpr(Expr* e, const BindSchema& schema) {
  for (auto& c : e->children) STRATICA_RETURN_NOT_OK(BindExpr(c.get(), schema));
  switch (e->kind) {
    case ExprKind::kColumnRef: {
      int idx = schema.Find(e->column_name);
      if (idx == -2) return Status::AnalysisError("ambiguous column: ", e->column_name);
      if (idx < 0) {
        // Pre-bound references (ColIdx) survive rebinding against a schema
        // that positions them directly.
        if (e->column_index >= 0 && e->column_index < static_cast<int>(schema.size())) {
          e->type = schema.types[e->column_index];
          return Status::OK();
        }
        return Status::AnalysisError("unknown column: ", e->column_name);
      }
      e->column_index = idx;
      e->type = schema.types[idx];
      return Status::OK();
    }
    case ExprKind::kLiteral:
      e->type = e->literal.type();
      return Status::OK();
    case ExprKind::kCompare: {
      StorageClass a = StorageClassOf(e->children[0]->type);
      StorageClass b = StorageClassOf(e->children[1]->type);
      bool ok = (a == b) || (a != StorageClass::kString && b != StorageClass::kString);
      if (!ok)
        return Status::AnalysisError("cannot compare ", TypeName(e->children[0]->type),
                                     " with ", TypeName(e->children[1]->type));
      e->type = TypeId::kBool;
      return Status::OK();
    }
    case ExprKind::kArith: {
      TypeId l = e->children[0]->type, r = e->children[1]->type;
      if (!IsNumeric(l) && l != TypeId::kDate && l != TypeId::kTimestamp)
        return Status::AnalysisError("arithmetic on non-numeric type ", TypeName(l));
      if (!IsNumeric(r) && r != TypeId::kDate && r != TypeId::kTimestamp)
        return Status::AnalysisError("arithmetic on non-numeric type ", TypeName(r));
      e->type = (l == TypeId::kFloat64 || r == TypeId::kFloat64) ? TypeId::kFloat64
                                                                 : TypeId::kInt64;
      if (e->arith == ArithOp::kMod) e->type = TypeId::kInt64;
      return Status::OK();
    }
    case ExprKind::kLogical:
      for (const auto& c : e->children) {
        if (c->type != TypeId::kBool)
          return Status::AnalysisError("logical operator over non-boolean");
      }
      e->type = TypeId::kBool;
      return Status::OK();
    case ExprKind::kFunc:
      switch (e->func) {
        case FuncKind::kExtractYear:
        case FuncKind::kExtractMonth:
        case FuncKind::kYearMonth: {
          TypeId t = e->children[0]->type;
          if (t != TypeId::kDate && t != TypeId::kTimestamp)
            return Status::AnalysisError("EXTRACT requires a date or timestamp");
          e->type = TypeId::kInt64;
          return Status::OK();
        }
        case FuncKind::kHash:
          e->type = TypeId::kInt64;
          return Status::OK();
        case FuncKind::kLike:
          if (e->children[0]->type != TypeId::kString)
            return Status::AnalysisError("LIKE requires a string");
          e->type = TypeId::kBool;
          return Status::OK();
        case FuncKind::kAbs:
          e->type = e->children[0]->type;
          return Status::OK();
        case FuncKind::kDateTrunc:
          e->type = e->children[0]->type;
          return Status::OK();
      }
      return Status::Internal("unhandled func");
    case ExprKind::kIn:
    case ExprKind::kIsNull:
      e->type = TypeId::kBool;
      return Status::OK();
    case ExprKind::kCase: {
      if (e->children.size() < 2) return Status::AnalysisError("malformed CASE");
      e->type = e->children[1]->type;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expr kind");
}

void CollectColumns(const Expr& e, std::vector<int>* out) {
  if (e.kind == ExprKind::kColumnRef && e.column_index >= 0) {
    if (std::find(out->begin(), out->end(), e.column_index) == out->end())
      out->push_back(e.column_index);
  }
  for (const auto& c : e.children) CollectColumns(*c, out);
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative glob match with backtracking over the last '%'.
  size_t t = 0, p = 0, star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace stratica
