#include "expr/serialize.h"

#include <sstream>

namespace stratica {

namespace {

void Escape(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\' || c == '"') out->push_back('\\');
    out->push_back(c);
  }
}

void SerializeValue(const Value& v, std::string* out) {
  out->append("(v ");
  out->append(std::to_string(static_cast<int>(v.type())));
  out->push_back(' ');
  if (v.is_null()) {
    out->append("null");
  } else {
    switch (StorageClassOf(v.type())) {
      case StorageClass::kInt64: out->append(std::to_string(v.i64())); break;
      case StorageClass::kFloat64: {
        std::ostringstream ss;
        ss.precision(17);
        ss << v.f64();
        out->append(ss.str());
        break;
      }
      case StorageClass::kString:
        out->push_back('"');
        Escape(v.str(), out);
        out->push_back('"');
        break;
    }
  }
  out->push_back(')');
}

void SerializeImpl(const Expr& e, std::string* out) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      out->append("(col \"");
      Escape(e.column_name, out);
      out->append("\")");
      return;
    case ExprKind::kLiteral:
      out->append("(lit ");
      SerializeValue(e.literal, out);
      out->push_back(')');
      return;
    case ExprKind::kCompare:
      out->append("(cmp ");
      out->append(std::to_string(static_cast<int>(e.cmp)));
      break;
    case ExprKind::kArith:
      out->append("(arith ");
      out->append(std::to_string(static_cast<int>(e.arith)));
      break;
    case ExprKind::kLogical:
      out->append("(logic ");
      out->append(std::to_string(static_cast<int>(e.logic)));
      break;
    case ExprKind::kFunc:
      out->append("(func ");
      out->append(std::to_string(static_cast<int>(e.func)));
      out->append(" \"");
      Escape(e.like_pattern, out);
      out->push_back('"');
      break;
    case ExprKind::kIn: {
      out->append("(in ");
      out->append(e.negated ? "1" : "0");
      out->append(" [");
      for (const auto& v : e.in_list) SerializeValue(v, out);
      out->push_back(']');
      break;
    }
    case ExprKind::kIsNull:
      out->append("(isnull ");
      out->append(e.negated ? "1" : "0");
      break;
    case ExprKind::kCase:
      out->append("(case 0");
      break;
  }
  for (const auto& c : e.children) {
    out->push_back(' ');
    SerializeImpl(*c, out);
  }
  out->push_back(')');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<ExprPtr> Parse() {
    STRATICA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) return Status::ParseError("trailing bytes in expr");
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseToken() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != ')' &&
           text_[pos_] != '(' && text_[pos_] != ']') {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected token at ", start);
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> ParseQuoted() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return Status::ParseError("expected string at ", pos_);
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Status::ParseError("unterminated string");
    ++pos_;
    return out;
  }

  Result<int> ParseInt() {
    STRATICA_ASSIGN_OR_RETURN(std::string tok, ParseToken());
    return std::atoi(tok.c_str());
  }

  Result<Value> ParseValue() {
    if (!Consume('(')) return Status::ParseError("expected (v");
    STRATICA_ASSIGN_OR_RETURN(std::string tag, ParseToken());
    if (tag != "v") return Status::ParseError("expected value tag");
    STRATICA_ASSIGN_OR_RETURN(int type_int, ParseInt());
    auto type = static_cast<TypeId>(type_int);
    SkipSpace();
    Value v;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      v = Value::Null(type);
    } else if (StorageClassOf(type) == StorageClass::kString) {
      STRATICA_ASSIGN_OR_RETURN(std::string s, ParseQuoted());
      v = Value::String(std::move(s));
    } else if (StorageClassOf(type) == StorageClass::kFloat64) {
      STRATICA_ASSIGN_OR_RETURN(std::string tok, ParseToken());
      v = Value::Float64(std::strtod(tok.c_str(), nullptr));
    } else {
      STRATICA_ASSIGN_OR_RETURN(std::string tok, ParseToken());
      v = Value::OfInt(type, std::strtoll(tok.c_str(), nullptr, 10));
    }
    if (!Consume(')')) return Status::ParseError("expected ) after value");
    return v;
  }

  Result<ExprPtr> ParseExpr() {
    if (!Consume('(')) return Status::ParseError("expected (");
    STRATICA_ASSIGN_OR_RETURN(std::string tag, ParseToken());
    auto e = std::make_shared<Expr>();
    if (tag == "col") {
      e->kind = ExprKind::kColumnRef;
      STRATICA_ASSIGN_OR_RETURN(e->column_name, ParseQuoted());
    } else if (tag == "lit") {
      e->kind = ExprKind::kLiteral;
      STRATICA_ASSIGN_OR_RETURN(e->literal, ParseValue());
      e->type = e->literal.type();
    } else if (tag == "cmp") {
      e->kind = ExprKind::kCompare;
      STRATICA_ASSIGN_OR_RETURN(int op, ParseInt());
      e->cmp = static_cast<CompareOp>(op);
    } else if (tag == "arith") {
      e->kind = ExprKind::kArith;
      STRATICA_ASSIGN_OR_RETURN(int op, ParseInt());
      e->arith = static_cast<ArithOp>(op);
    } else if (tag == "logic") {
      e->kind = ExprKind::kLogical;
      STRATICA_ASSIGN_OR_RETURN(int op, ParseInt());
      e->logic = static_cast<LogicalOp>(op);
    } else if (tag == "func") {
      e->kind = ExprKind::kFunc;
      STRATICA_ASSIGN_OR_RETURN(int f, ParseInt());
      e->func = static_cast<FuncKind>(f);
      STRATICA_ASSIGN_OR_RETURN(e->like_pattern, ParseQuoted());
    } else if (tag == "in") {
      e->kind = ExprKind::kIn;
      STRATICA_ASSIGN_OR_RETURN(int neg, ParseInt());
      e->negated = neg != 0;
      if (!Consume('[')) return Status::ParseError("expected [ in IN list");
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] != ']') {
        STRATICA_ASSIGN_OR_RETURN(Value v, ParseValue());
        e->in_list.push_back(std::move(v));
        SkipSpace();
      }
      if (!Consume(']')) return Status::ParseError("expected ]");
    } else if (tag == "isnull") {
      e->kind = ExprKind::kIsNull;
      STRATICA_ASSIGN_OR_RETURN(int neg, ParseInt());
      e->negated = neg != 0;
    } else if (tag == "case") {
      e->kind = ExprKind::kCase;
      STRATICA_ASSIGN_OR_RETURN(int ignored, ParseInt());
      (void)ignored;
    } else {
      return Status::ParseError("unknown expr tag: ", tag);
    }
    // Children until closing paren.
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '(') {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
      e->children.push_back(std::move(child));
      SkipSpace();
    }
    if (!Consume(')')) return Status::ParseError("expected )");
    return e;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeExpr(const Expr& e) {
  std::string out;
  SerializeImpl(e, &out);
  return out;
}

Result<ExprPtr> ParseSerializedExpr(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace stratica
