// Scalar expression AST shared by the catalog (partition / segmentation
// expressions), the SQL front end, the optimizer and the execution engine.
//
// The paper's engine JIT-compiles certain expression evaluations to avoid
// per-row type branching (Section 6.1). Stratica substitutes plan-time
// kernel specialization: EvalPredicate/EvalExpr dispatch once per *block* to
// a type- and operator-specialized loop, so the inner loops are branch-free
// on type exactly as the JIT'd code would be (see DESIGN.md §4).
#ifndef STRATICA_EXPR_EXPR_H_
#define STRATICA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row_block.h"
#include "common/status.h"
#include "common/types.h"

namespace stratica {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kCompare,
  kArith,
  kLogical,
  kFunc,
  kIn,      // <child> IN (v1, v2, ...)
  kIsNull,  // <child> IS [NOT] NULL
  kCase,    // CASE WHEN c1 THEN v1 ... [ELSE vn] END
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class FuncKind : uint8_t {
  kExtractYear,   // EXTRACT(YEAR FROM d)
  kExtractMonth,  // EXTRACT(MONTH FROM d)
  kYearMonth,     // year*100+month; canonical date partition expression (§3.5)
  kHash,          // HASH(e1, ..., en): segmentation expression (§3.6)
  kLike,          // e LIKE 'pat%'
  kAbs,
  kDateTrunc,     // not exposed in SQL yet; used internally by tests
};

/// \brief A node in a scalar expression tree.
///
/// Nodes are built unbound (column refs carry only names) and bound against
/// a schema with Bind(), which resolves indexes and infers `type`.
struct Expr {
  ExprKind kind;
  TypeId type = TypeId::kInt64;  // valid after Bind

  // kColumnRef
  std::string column_name;   // possibly "table.column"
  int column_index = -1;     // resolved by Bind

  // kLiteral
  Value literal;

  CompareOp cmp = CompareOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  LogicalOp logic = LogicalOp::kAnd;
  FuncKind func = FuncKind::kHash;
  bool negated = false;            // for kIn / kIsNull
  std::vector<Value> in_list;      // for kIn
  std::string like_pattern;        // for kLike

  std::vector<ExprPtr> children;

  std::string ToString() const;
};

/// Schema an expression binds against: ordered (name, type) pairs.
struct BindSchema {
  std::vector<std::string> names;
  std::vector<TypeId> types;

  int Find(const std::string& name) const;
  void Add(const std::string& name, TypeId type) {
    names.push_back(name);
    types.push_back(type);
  }
  size_t size() const { return names.size(); }
};

// --- constructors ----------------------------------------------------------
ExprPtr Col(const std::string& name);
ExprPtr ColIdx(int index, TypeId type);  // pre-bound reference
ExprPtr Lit(Value v);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Func(FuncKind f, std::vector<ExprPtr> args);
ExprPtr InList(ExprPtr e, std::vector<Value> values, bool negated = false);
ExprPtr IsNull(ExprPtr e, bool negated = false);
ExprPtr Like(ExprPtr e, std::string pattern);

/// Deep copy (Bind mutates nodes, so plans copy before rebinding).
ExprPtr CloneExpr(const ExprPtr& e);

/// Resolve column references and infer result types. Idempotent.
Status BindExpr(Expr* e, const BindSchema& schema);
inline Status BindExpr(const ExprPtr& e, const BindSchema& schema) {
  return BindExpr(e.get(), schema);
}

/// Collect the column indexes referenced by a bound expression.
void CollectColumns(const Expr& e, std::vector<int>* out);

/// Evaluate a bound expression over a block, producing a flat column.
Status EvalExpr(const Expr& e, const RowBlock& input, ColumnVector* out);

/// Evaluate a bound predicate over a block into a selection byte vector
/// (1 = row passes). NULL results count as not passing (SQL semantics).
/// Compare-const predicates over RLE or dict-coded columns evaluate without
/// expansion (one compare per run / per dictionary entry); `rows_encoded`
/// (nullable) accumulates the logical rows those encoded paths covered.
Status EvalPredicate(const Expr& e, const RowBlock& input, std::vector<uint8_t>* sel,
                     uint64_t* rows_encoded = nullptr);

/// Selection-in/selection-out predicate evaluation (late materialization):
/// sel[i] = active[i] AND e(row i), with sel sized like `active` (which must
/// have one entry per input row). Rows already dead in `active` are skipped
/// where the expression shape allows — in particular the right side of an
/// AND only evaluates over rows the left side kept, and general expressions
/// evaluate on a compacted block when most rows are dead.
Status EvalPredicateMasked(const Expr& e, const RowBlock& input,
                           const std::vector<uint8_t>& active,
                           std::vector<uint8_t>* sel,
                           uint64_t* rows_encoded = nullptr);

/// Evaluate a bound expression against a single row (slow path).
Result<Value> EvalScalar(const Expr& e, const RowBlock& input, size_t row);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace stratica

#endif  // STRATICA_EXPR_EXPR_H_
