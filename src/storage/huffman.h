// Canonical Huffman coding over small symbol alphabets.
//
// Used by the Compressed Common Delta encoding (Section 3.4.1 #6), which
// "builds a dictionary of all the deltas in the block and then stores
// indexes into the dictionary using entropy coding".
#ifndef STRATICA_STORAGE_HUFFMAN_H_
#define STRATICA_STORAGE_HUFFMAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stratica {

/// \brief Encode `symbols` (values < alphabet_size) with canonical Huffman
/// codes derived from their frequencies. Output layout:
///   [alphabet_size varint][code length u8 x alphabet][symbol count varint]
///   [bitstream]
Status HuffmanEncode(const std::vector<uint32_t>& symbols, uint32_t alphabet_size,
                     std::string* out);

/// Decode a stream produced by HuffmanEncode starting at *offset; advances
/// *offset past the consumed bytes.
Status HuffmanDecode(const std::string& data, size_t* offset,
                     std::vector<uint32_t>* symbols);

}  // namespace stratica

#endif  // STRATICA_STORAGE_HUFFMAN_H_
