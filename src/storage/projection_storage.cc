#include "storage/projection_storage.h"

#include <algorithm>
#include <set>

#include "common/checksum.h"
#include "common/hash.h"
#include "common/retry.h"
#include "storage/sort_util.h"

namespace stratica {

uint64_t StorageSnapshot::TotalRows() const {
  uint64_t n = 0;
  for (const auto& c : ros) n += c->row_count;
  for (const auto& w : wos) n += w->NumRows();
  return n;
}

ProjectionStorage::ProjectionStorage(FileSystem* fs, std::string base_dir,
                                     ProjectionStorageConfig cfg)
    : fs_(fs), base_dir_(std::move(base_dir)), cfg_(std::move(cfg)) {}

std::pair<uint64_t, std::string> ProjectionStorage::AllocateContainer() {
  uint64_t id = next_container_id_.fetch_add(1);
  return {id, base_dir_ + "/c" + std::to_string(id)};
}

uint32_t ProjectionStorage::LocalSegmentOf(uint64_t hash) const {
  if (cfg_.num_local_segments <= 1) return 0;
  uint64_t lo = cfg_.range_lo;
  uint64_t hi = cfg_.range_hi;
  if (hash < lo) hash = lo;
  if (hash > hi) hash = hi;
  unsigned __int128 span = static_cast<unsigned __int128>(hi) - lo + 1;
  unsigned __int128 off = static_cast<unsigned __int128>(hash - lo);
  return static_cast<uint32_t>((off * cfg_.num_local_segments) / span);
}

Status ProjectionStorage::SplitForStorage(
    const RowBlock& rows,
    std::map<std::pair<int64_t, uint32_t>, std::vector<uint32_t>>* groups) const {
  size_t n = rows.NumRows();
  std::vector<int64_t> part_keys(n, kNoPartitionKey);
  if (cfg_.partition_expr) {
    ColumnVector keys;
    STRATICA_RETURN_NOT_OK(EvalExpr(*cfg_.partition_expr, rows, &keys));
    for (size_t i = 0; i < n; ++i) part_keys[i] = keys.IsNull(i) ? kNoPartitionKey
                                                                 : keys.ints[i];
  }
  std::vector<uint32_t> segs(n, 0);
  if (cfg_.segmentation_expr && cfg_.num_local_segments > 1) {
    ColumnVector hashes;
    STRATICA_RETURN_NOT_OK(EvalExpr(*cfg_.segmentation_expr, rows, &hashes));
    for (size_t i = 0; i < n; ++i)
      segs[i] = LocalSegmentOf(static_cast<uint64_t>(hashes.ints[i]));
  }
  for (size_t i = 0; i < n; ++i) {
    (*groups)[{part_keys[i], segs[i]}].push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

Status ProjectionStorage::InsertWos(RowBlock rows, Transaction* txn) {
  rows.DecodeAll();
  auto chunk = std::make_shared<WosChunk>();
  chunk->txn_id = txn->id();
  chunk->rows = std::move(rows);
  {
    std::lock_guard lock(mu_);
    // Checked under mu_ so the insert is atomic with CrashVolatileState's
    // WOS wipe: MarkNodeDown clears the host-up flag before crashing, so a
    // chunk admitted here is either wiped by the crash or the host was
    // still up. Without this, an insert racing the crash lands *after* the
    // wipe — a committed "zombie" chunk recovery knows nothing about, whose
    // rows are then re-copied from the buddy (duplicates).
    if (!HostUp()) return Status::ClusterUnavailable("host node is down");
    chunk->start_pos = wos_next_pos_;
    wos_next_pos_ += chunk->NumRows();
    wos_.push_back(chunk);
  }
  txn->MarkDml();
  // Stamp under the storage mutex: GetSnapshot and the tuple mover read
  // chunk epochs under mu_, so an unlocked write here is a data race with
  // any concurrent snapshot read.
  txn->OnCommit([this, chunk](Epoch e) {
    std::lock_guard lock(mu_);
    chunk->epoch = e;
  });
  txn->OnRollback([this, chunk]() {
    std::lock_guard lock(mu_);
    wos_.erase(std::remove(wos_.begin(), wos_.end(), chunk), wos_.end());
  });
  return Status::OK();
}

Status ProjectionStorage::WriteContainers(RowBlock sorted, Transaction* txn) {
  std::map<std::pair<int64_t, uint32_t>, std::vector<uint32_t>> groups;
  STRATICA_RETURN_NOT_OK(SplitForStorage(sorted, &groups));
  std::vector<std::shared_ptr<RosContainer>> created;
  for (const auto& [key, row_indexes] : groups) {
    auto [id, dir] = AllocateContainer();
    RosWriter writer(fs_, dir, id, cfg_.projection, cfg_.column_names,
                     cfg_.column_types, cfg_.encodings);
    RowBlock group;
    group.columns.reserve(sorted.NumColumns());
    for (const auto& col : sorted.columns) {
      ColumnVector gc(col.type);
      gc.Reserve(row_indexes.size());
      for (uint32_t r : row_indexes) gc.AppendFrom(col, r);
      group.columns.push_back(std::move(gc));
    }
    STRATICA_RETURN_NOT_OK(writer.Append(group, {}));
    STRATICA_ASSIGN_OR_RETURN(RosContainerPtr ros,
                              writer.Finish(key.first, key.second, kUncommittedEpoch));
    auto mutable_ros = std::const_pointer_cast<RosContainer>(ros);
    mutable_ros->creating_txn = txn->id();
    created.push_back(mutable_ros);
  }
  bool host_down = false;
  {
    std::lock_guard lock(mu_);
    // Atomic with CrashVolatileState, same reasoning as InsertWos.
    if (!HostUp()) {
      host_down = true;
    } else {
      for (const auto& c : created) ros_.push_back(c);
    }
  }
  if (host_down) {
    // Registration raced a node crash. The files were written before the
    // check; drop them rather than leaving orphans for the scrub to chase.
    for (const auto& c : created) {
      for (const auto& col : c->columns) {
        (void)fs_->Delete(col.data_path);
        (void)fs_->Delete(col.index_path);
      }
      (void)fs_->Delete(c->dir + "/meta");
    }
    return Status::ClusterUnavailable("host node is down");
  }
  txn->MarkDml();
  txn->OnCommit([this, created](Epoch e) {
    {
      // The in-memory stamp runs under mu_: container min/max epochs gate
      // snapshot visibility, so they may only change under the same mutex
      // GetSnapshot reads them with.
      std::lock_guard lock(mu_);
      for (const auto& c : created) {
        c->min_epoch = e;
        c->max_epoch = e;
        c->creating_txn = 0;
      }
      // Direct loads leave nothing pending in the WOS, so if the WOS is
      // empty the projection's Last Good Epoch advances with the commit.
      if (wos_.empty()) lge_ = std::max(lge_, e);
    }
    // Meta-file rewrites stay off the mutex (concurrent scans would stall
    // behind the I/O): commits are serialized by the transaction manager,
    // and the stamped fields above are final. Transient write errors are
    // retried with backoff; a terminal failure is recorded rather than
    // swallowed — the in-memory commit is authoritative and the meta file
    // is restored by the startup scrub or buddy recovery.
    for (const auto& c : created) {
      std::string meta_path = c->dir + "/meta";
      RetryPolicy policy;
      policy.jitter_seed = HashBytes(meta_path.data(), meta_path.size());
      uint64_t retries = 0;
      Status st = RetryTransient(policy, &retries,
                                 [&] { return WriteRosMeta(fs_, *c, meta_path); });
      commit_meta_retries_.fetch_add(retries, std::memory_order_relaxed);
      if (!st.ok()) commit_meta_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  txn->OnRollback([this, created]() {
    std::lock_guard lock(mu_);
    for (const auto& c : created) {
      ros_.erase(std::remove(ros_.begin(), ros_.end(), c), ros_.end());
      for (const auto& col : c->columns) {
        (void)fs_->Delete(col.data_path);
        (void)fs_->Delete(col.index_path);
      }
      (void)fs_->Delete(c->dir + "/meta");
    }
  });
  return Status::OK();
}

Status ProjectionStorage::InsertDirectRos(RowBlock rows, Transaction* txn) {
  rows.DecodeAll();
  auto perm = ComputeSortPermutation(rows, cfg_.sort_columns);
  RowBlock sorted = ApplyPermutation(rows, perm);
  return WriteContainers(std::move(sorted), txn);
}

Status ProjectionStorage::AddDeletes(uint64_t target_id, std::vector<uint64_t> positions,
                                     Transaction* txn) {
  if (positions.empty()) return Status::OK();
  std::sort(positions.begin(), positions.end());
  auto chunk = std::make_shared<DeleteVectorChunk>();
  chunk->target_id = target_id;
  chunk->txn_id = txn->id();
  chunk->positions = std::move(positions);
  chunk->epochs.assign(chunk->positions.size(), kUncommittedEpoch);
  {
    std::lock_guard lock(mu_);
    // Atomic with CrashVolatileState, same reasoning as InsertWos.
    if (!HostUp()) return Status::ClusterUnavailable("host node is down");
    deletes_.push_back(chunk);
  }
  txn->MarkDml();
  txn->OnCommit([this, chunk](Epoch e) {
    std::lock_guard lock(mu_);
    std::fill(chunk->epochs.begin(), chunk->epochs.end(), e);
  });
  txn->OnRollback([this, chunk]() {
    std::lock_guard lock(mu_);
    deletes_.erase(std::remove(deletes_.begin(), deletes_.end(), chunk),
                   deletes_.end());
  });
  return Status::OK();
}

StorageSnapshot ProjectionStorage::GetSnapshot(Epoch epoch, uint64_t txn_id) const {
  std::lock_guard lock(mu_);
  StorageSnapshot snap;
  snap.epoch = epoch;
  for (const auto& c : ros_) {
    bool committed_visible = c->min_epoch != kUncommittedEpoch && c->min_epoch <= epoch;
    bool own = txn_id != 0 && c->creating_txn == txn_id;
    if (committed_visible || own) snap.ros.push_back(c);
  }
  for (const auto& w : wos_) {
    bool committed_visible = w->epoch != kUncommittedEpoch && w->epoch <= epoch;
    bool own = txn_id != 0 && w->txn_id == txn_id && w->epoch == kUncommittedEpoch;
    if (committed_visible || own) snap.wos.push_back(w);
  }
  for (const auto& d : deletes_) {
    bool own = txn_id != 0 && d->txn_id == txn_id;
    snap.deletes.Add(*d, own ? kUncommittedEpoch : epoch);
  }
  return snap;
}

std::vector<WosChunkPtr> ProjectionStorage::CommittedWosChunks(Epoch up_to) const {
  std::lock_guard lock(mu_);
  std::vector<WosChunkPtr> out;
  for (const auto& w : wos_) {
    if (w->epoch != kUncommittedEpoch && w->epoch <= up_to) out.push_back(w);
  }
  return out;
}

std::vector<DeleteVectorChunkPtr> ProjectionStorage::WosDeleteChunks() const {
  std::lock_guard lock(mu_);
  std::vector<DeleteVectorChunkPtr> out;
  for (const auto& d : deletes_) {
    if (d->target_id == kWosTargetId) out.push_back(d);
  }
  return out;
}

std::vector<RosContainerPtr> ProjectionStorage::Containers() const {
  std::lock_guard lock(mu_);
  std::vector<RosContainerPtr> out;
  out.reserve(ros_.size());
  for (const auto& c : ros_) out.push_back(c);
  return out;
}

std::vector<DeleteVectorChunkPtr> ProjectionStorage::ContainerDeleteChunks(
    uint64_t container_id) const {
  std::lock_guard lock(mu_);
  std::vector<DeleteVectorChunkPtr> out;
  for (const auto& d : deletes_) {
    if (d->target_id == container_id) out.push_back(d);
  }
  return out;
}

Status ProjectionStorage::ApplyMoveout(const MoveoutApply& apply) {
  std::lock_guard lock(mu_);
  if (apply.base_generation != generation_.load(std::memory_order_relaxed)) {
    // A crash/truncate/scrub ran after the moveout sampled its inputs: the
    // consumed WOS chunks may be gone and the new files may have been
    // scrubbed. Registering the result would resurrect crashed rows or
    // point the manifest at deleted files.
    return Status::TxnAborted("storage generation changed during moveout");
  }
  // Ranges of WOS positions consumed by the moveout.
  std::vector<std::pair<uint64_t, uint64_t>> consumed;
  for (const auto& chunk : apply.consumed_chunks) {
    consumed.emplace_back(chunk->start_pos, chunk->start_pos + chunk->NumRows());
    wos_.erase(std::remove(wos_.begin(), wos_.end(), chunk), wos_.end());
  }
  auto in_consumed = [&](uint64_t pos) {
    for (const auto& [lo, hi] : consumed) {
      if (pos >= lo && pos < hi) return true;
    }
    return false;
  };
  // Drop WOS-target delete entries that were translated to container
  // targets by the moveout (they arrive in apply.new_dvs). Copy-on-write:
  // concurrent readers (ReadProjectionRows, a racing moveout scan) may
  // still iterate the old chunk outside mu_, so trimmed chunks are
  // replaced, never mutated in place.
  for (auto& d : deletes_) {
    if (d->target_id != kWosTargetId) continue;
    bool any_consumed = false;
    for (uint64_t pos : d->positions) any_consumed |= in_consumed(pos);
    if (!any_consumed) continue;
    auto trimmed = std::make_shared<DeleteVectorChunk>();
    trimmed->target_id = d->target_id;
    trimmed->txn_id = d->txn_id;
    for (size_t i = 0; i < d->positions.size(); ++i) {
      if (!in_consumed(d->positions[i])) {
        trimmed->positions.push_back(d->positions[i]);
        trimmed->epochs.push_back(d->epochs[i]);
      }
    }
    d = std::move(trimmed);
  }
  deletes_.erase(std::remove_if(deletes_.begin(), deletes_.end(),
                                [](const DeleteVectorChunkPtr& d) {
                                  return d->target_id == kWosTargetId && d->size() == 0;
                                }),
                 deletes_.end());
  for (const auto& c : apply.new_containers) ros_.push_back(c);
  for (const auto& d : apply.new_dvs) deletes_.push_back(d);
  lge_ = std::max(lge_, apply.new_lge);
  return Status::OK();
}

Status ProjectionStorage::ApplyMergeout(const MergeoutApply& apply) {
  std::vector<std::shared_ptr<RosContainer>> gc;
  {
    std::lock_guard lock(mu_);
    if (apply.base_generation != generation_.load(std::memory_order_relaxed)) {
      return Status::TxnAborted("storage generation changed during mergeout");
    }
    for (uint64_t id : apply.removed_container_ids) {
      for (auto it = ros_.begin(); it != ros_.end(); ++it) {
        if ((*it)->id == id) {
          retired_.push_back(*it);
          ros_.erase(it);
          break;
        }
      }
      deletes_.erase(std::remove_if(deletes_.begin(), deletes_.end(),
                                    [id](const DeleteVectorChunkPtr& d) {
                                      return d->target_id == id;
                                    }),
                     deletes_.end());
    }
    if (apply.new_container) ros_.push_back(apply.new_container);
    for (const auto& d : apply.new_dvs) deletes_.push_back(d);
    CollectRetiredLocked(&gc);
  }
  // Replaced files are deleted only once the last query snapshot holding
  // them drains (with no concurrent readers this deletes immediately, as
  // before), and the deletion itself runs off the mutex so scans never
  // stall behind it. Hard-linked backups keep the bytes alive (§5.2).
  for (const auto& c : gc) DeleteContainerFiles(*c);
  return Status::OK();
}

void ProjectionStorage::DeleteContainerFiles(const RosContainer& c) {
  for (const auto& col : c.columns) {
    (void)fs_->Delete(col.data_path);
    (void)fs_->Delete(col.index_path);
  }
  if (!c.epoch_data_path.empty()) {
    (void)fs_->Delete(c.epoch_data_path);
    (void)fs_->Delete(c.epoch_index_path);
  }
  (void)fs_->Delete(c.dir + "/meta");
}

void ProjectionStorage::CollectRetiredLocked(
    std::vector<std::shared_ptr<RosContainer>>* out) {
  for (auto it = retired_.begin(); it != retired_.end();) {
    // use_count()==1 means `retired_` holds the last reference: no snapshot
    // can still be scanning the container, and none can re-acquire it since
    // it left ros_ under this same mutex.
    if (it->use_count() == 1) {
      out->push_back(std::move(*it));
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProjectionStorage::GcRetired() {
  std::vector<std::shared_ptr<RosContainer>> gc;
  {
    std::lock_guard lock(mu_);
    CollectRetiredLocked(&gc);
  }
  for (const auto& c : gc) DeleteContainerFiles(*c);
}

void ProjectionStorage::AdoptContainer(std::shared_ptr<RosContainer> container,
                                       std::vector<DeleteVectorChunkPtr> dvs) {
  std::lock_guard lock(mu_);
  if (container) ros_.push_back(std::move(container));
  for (auto& d : dvs) deletes_.push_back(std::move(d));
}

Epoch ProjectionStorage::TruncateForRecovery(Epoch lge) {
  std::vector<std::shared_ptr<RosContainer>> dropped;
  Epoch trunc = lge;
  {
    std::lock_guard lock(mu_);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    wos_.clear();  // WOS content is gone after a failure anyway
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = ros_.begin(); it != ros_.end();) {
        if ((*it)->max_epoch == kUncommittedEpoch || (*it)->max_epoch > trunc) {
          // Mergeout may have mixed pre-LGE rows into this container; back
          // the truncation point off so the copy-back has no gaps.
          if ((*it)->min_epoch != kUncommittedEpoch && (*it)->min_epoch <= trunc) {
            trunc = (*it)->min_epoch - 1;
            changed = true;
          }
          dropped.push_back(*it);
          it = ros_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Drop delete entries newer than the truncation point and all entries
    // targeting dropped containers.
    for (auto& d : deletes_) {
      if (d->target_id == kWosTargetId) {
        d->positions.clear();
        d->epochs.clear();
        continue;
      }
      bool target_dropped = false;
      for (const auto& c : dropped) target_dropped |= (c->id == d->target_id);
      std::vector<uint64_t> keep_pos;
      std::vector<Epoch> keep_ep;
      if (!target_dropped) {
        for (size_t i = 0; i < d->positions.size(); ++i) {
          if (d->epochs[i] <= trunc) {
            keep_pos.push_back(d->positions[i]);
            keep_ep.push_back(d->epochs[i]);
          }
        }
      }
      d->positions = std::move(keep_pos);
      d->epochs = std::move(keep_ep);
    }
    deletes_.erase(std::remove_if(deletes_.begin(), deletes_.end(),
                                  [](const DeleteVectorChunkPtr& d) {
                                    return d->size() == 0;
                                  }),
                   deletes_.end());
    lge_ = std::min(lge_, trunc);
  }
  for (const auto& c : dropped) {
    for (const auto& col : c->columns) {
      (void)fs_->Delete(col.data_path);
      (void)fs_->Delete(col.index_path);
    }
    if (!c->epoch_data_path.empty()) {
      (void)fs_->Delete(c->epoch_data_path);
      (void)fs_->Delete(c->epoch_index_path);
    }
    (void)fs_->Delete(c->dir + "/meta");
  }
  return trunc;
}

Status ProjectionStorage::IngestRecovered(RowBlock rows, std::vector<Epoch> row_epochs,
                                          std::vector<Epoch> delete_epochs,
                                          Epoch new_lge) {
  rows.DecodeAll();
  size_t n = rows.NumRows();
  if (row_epochs.size() != n || delete_epochs.size() != n)
    return Status::Internal("IngestRecovered: vector size mismatch");
  if (n > 0) {
    std::vector<uint32_t> perm = ComputeSortPermutation(rows, cfg_.sort_columns);
    RowBlock sorted = ApplyPermutation(rows, perm);
    std::vector<Epoch> sorted_epochs(n), sorted_dels(n);
    for (size_t i = 0; i < n; ++i) {
      sorted_epochs[i] = row_epochs[perm[i]];
      sorted_dels[i] = delete_epochs[perm[i]];
    }
    std::map<std::pair<int64_t, uint32_t>, std::vector<uint32_t>> groups;
    STRATICA_RETURN_NOT_OK(SplitForStorage(sorted, &groups));
    for (const auto& [key, idxs] : groups) {
      auto [id, dir] = AllocateContainer();
      RosWriter writer(fs_, dir, id, cfg_.projection, cfg_.column_names,
                       cfg_.column_types, cfg_.encodings);
      RowBlock group(std::vector<TypeId>(cfg_.column_types));
      std::vector<Epoch> group_epochs;
      auto dv = std::make_shared<DeleteVectorChunk>();
      dv->target_id = id;
      for (uint32_t r : idxs) {
        group.AppendRowFrom(sorted, r);
        group_epochs.push_back(sorted_epochs[r]);
        if (sorted_dels[r] != 0) {
          dv->positions.push_back(group_epochs.size() - 1);
          dv->epochs.push_back(sorted_dels[r]);
        }
      }
      STRATICA_RETURN_NOT_OK(writer.Append(group, group_epochs));
      STRATICA_ASSIGN_OR_RETURN(RosContainerPtr ros, writer.Finish(key.first, key.second, 0));
      std::vector<DeleteVectorChunkPtr> dvs;
      if (!dv->positions.empty()) dvs.push_back(dv);
      AdoptContainer(std::const_pointer_cast<RosContainer>(ros), std::move(dvs));
    }
  }
  std::lock_guard lock(mu_);
  lge_ = std::max(lge_, new_lge);
  return Status::OK();
}

Result<uint64_t> ProjectionStorage::DropPartition(int64_t partition_key) {
  std::vector<std::shared_ptr<RosContainer>> dropped;
  {
    std::lock_guard lock(mu_);
    for (auto it = ros_.begin(); it != ros_.end();) {
      if ((*it)->partition_key == partition_key) {
        dropped.push_back(*it);
        it = ros_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& c : dropped) {
      uint64_t id = c->id;
      deletes_.erase(std::remove_if(deletes_.begin(), deletes_.end(),
                                    [id](const DeleteVectorChunkPtr& d) {
                                      return d->target_id == id;
                                    }),
                     deletes_.end());
    }
  }
  uint64_t rows = 0;
  for (const auto& c : dropped) {
    rows += c->row_count;
    for (const auto& col : c->columns) {
      (void)fs_->Delete(col.data_path);
      (void)fs_->Delete(col.index_path);
    }
    if (!c->epoch_data_path.empty()) {
      (void)fs_->Delete(c->epoch_data_path);
      (void)fs_->Delete(c->epoch_index_path);
    }
    (void)fs_->Delete(c->dir + "/meta");
  }
  return rows;
}

void ProjectionStorage::Clear(bool delete_files) {
  std::lock_guard lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  if (delete_files) {
    for (const auto& c : ros_) DeleteContainerFiles(*c);
    for (const auto& c : retired_) DeleteContainerFiles(*c);
  }
  wos_.clear();
  ros_.clear();
  retired_.clear();
  deletes_.clear();
  wos_next_pos_ = 0;
  lge_ = 0;
}

void ProjectionStorage::CrashVolatileState() {
  std::lock_guard lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  wos_.clear();
  // Uncommitted containers and all in-memory (non-persisted) delete chunks
  // are lost with the node.
  ros_.erase(std::remove_if(ros_.begin(), ros_.end(),
                            [](const std::shared_ptr<RosContainer>& c) {
                              return c->min_epoch == kUncommittedEpoch;
                            }),
             ros_.end());
  deletes_.erase(std::remove_if(deletes_.begin(), deletes_.end(),
                                [](const DeleteVectorChunkPtr& d) {
                                  return !d->persisted;
                                }),
                 deletes_.end());
}

void ProjectionStorage::Quarantine(uint64_t container_id, const std::string& reason) {
  std::lock_guard lock(mu_);
  if (quarantined_.load(std::memory_order_relaxed)) return;
  quarantined_container_ = container_id;
  quarantine_reason_ = reason;
  quarantined_.store(true, std::memory_order_release);
}

std::string ProjectionStorage::quarantine_reason() const {
  std::lock_guard lock(mu_);
  return quarantine_reason_;
}

void ProjectionStorage::ClearQuarantine() {
  std::lock_guard lock(mu_);
  quarantined_container_ = 0;
  quarantine_reason_.clear();
  repair_gutted_.store(false, std::memory_order_release);
  gutted_at_.store(0, std::memory_order_release);
  quarantined_.store(false, std::memory_order_release);
}

Result<uint64_t> ProjectionStorage::ScrubFiles() {
  std::set<std::string> referenced;
  std::vector<std::shared_ptr<RosContainer>> live;
  {
    std::lock_guard lock(mu_);
    // The scrub may delete files a concurrent tuple-mover operation is in
    // the middle of writing (they look like orphans until the apply step
    // registers them); bumping the generation first guarantees that apply
    // is rejected instead of publishing a container with scrubbed files.
    generation_.fetch_add(1, std::memory_order_acq_rel);
    auto add = [&](const RosContainer& c) {
      for (const auto& col : c.columns) {
        referenced.insert(col.data_path);
        referenced.insert(col.index_path);
      }
      if (!c.epoch_data_path.empty()) {
        referenced.insert(c.epoch_data_path);
        referenced.insert(c.epoch_index_path);
      }
      referenced.insert(c.dir + "/meta");
    };
    for (const auto& c : ros_) {
      add(*c);
      live.push_back(c);
    }
    for (const auto& c : retired_) add(*c);
    for (const auto& d : deletes_) {
      if (d->persisted && !d->dv_path.empty()) referenced.insert(d->dv_path);
    }
  }
  // Heal referenced meta files that are missing or fail their checksum:
  // after replay the in-memory manifest is the source of truth, so a torn
  // meta is rewritten rather than trusted.
  for (const auto& c : live) {
    std::string meta_path = c->dir + "/meta";
    if (ReadRosMeta(fs_, meta_path).ok()) continue;
    STRATICA_RETURN_NOT_OK(WriteRosMeta(fs_, *c, meta_path));
  }
  // Everything else under the projection directory is an orphan — residue
  // of a transaction that died before commit, or a torn write that never
  // got its rename. Replay tolerates them by deletion, not by failure.
  STRATICA_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            fs_->List(base_dir_ + "/"));
  uint64_t removed = 0;
  for (const auto& f : files) {
    if (referenced.count(f)) continue;
    if (fs_->Delete(f).ok()) ++removed;
  }
  return removed;
}

Status ProjectionStorage::Revalidate() const {
  std::vector<std::shared_ptr<RosContainer>> live;
  std::vector<std::string> dv_paths;
  {
    std::lock_guard lock(mu_);
    live = ros_;
    for (const auto& d : deletes_) {
      if (d->persisted && !d->dv_path.empty()) dv_paths.push_back(d->dv_path);
    }
  }
  // Off-mutex: full checksummed read of every file the manifest references.
  // ColumnReader verifies the index footer at Open and per-block CRCs in
  // ReadAll; meta and DVROS files carry whole-file footers.
  for (const auto& c : live) {
    STRATICA_RETURN_NOT_OK(ReadRosMeta(fs_, c->dir + "/meta").status());
    for (size_t col = 0; col < c->columns.size(); ++col) {
      STRATICA_ASSIGN_OR_RETURN(ColumnReader reader, OpenRosColumn(fs_, *c, col));
      ColumnVector scratch;
      STRATICA_RETURN_NOT_OK(reader.ReadAll(&scratch));
    }
    if (!c->epoch_data_path.empty()) {
      STRATICA_ASSIGN_OR_RETURN(
          ColumnReader reader,
          ColumnReader::Open(fs_, c->epoch_data_path, c->epoch_index_path));
      ColumnVector scratch;
      STRATICA_RETURN_NOT_OK(reader.ReadAll(&scratch));
    }
  }
  for (const auto& path : dv_paths) {
    STRATICA_RETURN_NOT_OK(ReadFileChecksummed(fs_, path).status());
  }
  return Status::OK();
}

uint64_t ProjectionStorage::WosRowCount() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& w : wos_) n += w->NumRows();
  return n;
}

bool ProjectionStorage::WosSaturated() const {
  return WosRowCount() >= cfg_.wos_capacity_rows;
}

Epoch ProjectionStorage::lge() const {
  std::lock_guard lock(mu_);
  return lge_;
}

size_t ProjectionStorage::NumContainers() const {
  std::lock_guard lock(mu_);
  return ros_.size();
}

uint64_t ProjectionStorage::TotalRosBytes() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& c : ros_) n += c->total_bytes;
  return n;
}

uint64_t ProjectionStorage::TotalRosRawBytes() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& c : ros_) n += c->raw_bytes;
  return n;
}

uint64_t ProjectionStorage::TotalRosRows() const {
  std::lock_guard lock(mu_);
  uint64_t n = 0;
  for (const auto& c : ros_) n += c->row_count;
  return n;
}

}  // namespace stratica
