// Column files: the pair of files per column inside a ROS container
// (Section 3.7) — one holding encoded data blocks, one holding the position
// index. Positions are implicit (never stored): a value's position is its
// ordinal within the file. The position index stores per-block metadata
// (start position, min, max, null count) used for fast tuple reconstruction
// and for the min/max pruning of Section 3.5 / [22].
#ifndef STRATICA_STORAGE_COLUMN_FILE_H_
#define STRATICA_STORAGE_COLUMN_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"
#include "storage/encoding.h"

namespace stratica {

/// Default rows per encoded block. The index carries one entry (~40 bytes)
/// per block, keeping it around 1/1000 of typical raw column data, matching
/// the paper's sizing observation.
constexpr size_t kDefaultRowsPerBlock = 16384;

/// Per-block entry in the position index.
struct BlockMeta {
  uint64_t offset = 0;         ///< Byte offset of the block in the data file.
  uint32_t encoded_bytes = 0;  ///< Encoded size of the block.
  uint64_t row_start = 0;      ///< Position of the block's first row.
  uint32_t row_count = 0;
  Value min, max;              ///< Over non-null values (null when all-NULL).
  uint32_t null_count = 0;
  uint32_t crc = 0;            ///< CRC32C of the encoded block bytes.
};

/// Parsed position index plus summary stats for one column file.
struct ColumnFileMeta {
  TypeId type = TypeId::kInt64;
  uint64_t num_rows = 0;
  uint64_t raw_bytes = 0;      ///< Unencoded footprint (8B/value or string bytes).
  uint64_t encoded_bytes = 0;  ///< Data file size.
  std::vector<BlockMeta> blocks;

  Value min, max;  ///< Column-level bounds across blocks.
};

/// \brief Streams a column into block-encoded form and builds its index.
///
/// Usage: Append() any number of flat vectors, then Finish() to write the
/// (data, index) file pair through the FileSystem.
class ColumnWriter {
 public:
  ColumnWriter(TypeId type, EncodingId encoding,
               size_t rows_per_block = kDefaultRowsPerBlock);

  /// Buffer a flat (non-RLE) vector of values.
  Status Append(const ColumnVector& col);
  Status AppendValue(const Value& v);

  uint64_t rows_buffered_total() const { return total_rows_; }

  /// Encode remaining rows, then write both files. Returns the index
  /// metadata (also persisted in the index file).
  Result<ColumnFileMeta> Finish(FileSystem* fs, const std::string& data_path,
                                const std::string& index_path);

 private:
  Status FlushBlock(size_t start, size_t count);

  TypeId type_;
  EncodingId encoding_;
  size_t rows_per_block_;
  ColumnVector buffer_;
  std::string data_;
  ColumnFileMeta meta_;
  uint64_t total_rows_ = 0;
};

/// \brief Random and sequential access to one column file pair.
///
/// Not thread-safe: each reader owns a scratch buffer reused across block
/// reads so the per-block heap allocation of the old path is gone. Parallel
/// scans give every worker pipeline its own readers.
class ColumnReader {
 public:
  /// Open by reading and parsing the index file; block data is fetched
  /// lazily with ranged reads.
  static Result<ColumnReader> Open(const FileSystem* fs, const std::string& data_path,
                                   const std::string& index_path);

  const ColumnFileMeta& meta() const { return meta_; }
  size_t num_blocks() const { return meta_.blocks.size(); }

  /// Decode block `idx`, appending to `out`. With `keep_runs`, RLE blocks
  /// surface run-length form for encoded-data-aware operators.
  Status ReadBlock(size_t idx, bool keep_runs, ColumnVector* out) const;

  /// Late-materialization read (DESIGN.md §7): decode only the entries of
  /// block `idx` with sel[i] != 0. `sel` must have one entry per block row.
  /// Output is bit-identical to ReadBlock + FilterPhysical(sel).
  Status ReadBlockSelected(size_t idx, const std::vector<uint8_t>& sel,
                           ColumnVector* out) const;

  /// Compressed-execution read (DESIGN.md §13): decode block `idx` to its
  /// cheapest loss-free view — RLE keeps runs, BlockDict keeps codes plus a
  /// shared sorted dictionary, everything else decodes flat. The view owns
  /// its data and may outlive this reader.
  Status ReadBlockView(size_t idx, EncodedBlockView* out) const;

  /// Decode the whole column with a single ranged read of the data file.
  Status ReadAll(ColumnVector* out) const;

  /// Encoded bytes fetched through this reader (I/O amplification metric).
  uint64_t bytes_read() const { return bytes_read_; }

  /// Transient-error retries performed by this reader's fetches (rolled
  /// into ExecStats::io_retries by the scan, like bytes_read).
  uint64_t io_retries() const { return io_retries_; }

 private:
  ColumnReader(const FileSystem* fs, std::string data_path, ColumnFileMeta meta)
      : fs_(fs), data_path_(std::move(data_path)), meta_(std::move(meta)) {}

  Status FetchBlock(size_t idx) const;

  const FileSystem* fs_;
  std::string data_path_;
  ColumnFileMeta meta_;
  mutable std::string scratch_;       // reused block buffer
  mutable uint64_t bytes_read_ = 0;
  mutable uint64_t io_retries_ = 0;
};

/// Serialize / parse the index file representation (exposed for tests).
std::string SerializeColumnFileMeta(const ColumnFileMeta& meta);
Result<ColumnFileMeta> ParseColumnFileMeta(const std::string& data);

}  // namespace stratica

#endif  // STRATICA_STORAGE_COLUMN_FILE_H_
