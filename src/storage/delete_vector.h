// Delete vectors (Section 3.7.1).
//
// Data is never modified in place: deleting a row appends (position,
// delete-epoch) to a delete vector targeting the row's container (or the
// WOS). Delete vectors are stored in the same format as user data — an
// in-memory DVWOS first, moved to DVROS files on disk by the tuple mover
// using the regular column encodings (positions delta-encode superbly).
// SQL UPDATE is a delete plus an insert.
#ifndef STRATICA_STORAGE_DELETE_VECTOR_H_
#define STRATICA_STORAGE_DELETE_VECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/status.h"
#include "txn/epoch.h"

namespace stratica {

/// Target id used for delete vectors that point at WOS positions.
constexpr uint64_t kWosTargetId = UINT64_MAX;

/// \brief One chunk of deletions against one target (container or WOS).
///
/// Starts life in memory (DVWOS); MoveToDvRos persists it via the column
/// encodings. Epochs are kUncommittedEpoch until the owning transaction
/// commits.
struct DeleteVectorChunk {
  uint64_t target_id = kWosTargetId;
  uint64_t txn_id = 0;
  std::vector<uint64_t> positions;  // sorted ascending
  std::vector<Epoch> epochs;        // parallel to positions

  bool persisted = false;  // true once written to a DVROS file pair
  std::string dv_path;     // DVROS file (positions + epochs, encoded)

  size_t size() const { return positions.size(); }
};

using DeleteVectorChunkPtr = std::shared_ptr<DeleteVectorChunk>;

/// Persist a chunk to `path` using delta/RLE encodings (tuple mover's
/// DVWOS -> DVROS move). The chunk must be committed (real epochs).
Status WriteDvRos(FileSystem* fs, const DeleteVectorChunk& chunk,
                  const std::string& path);

/// Load a DVROS file back (recovery, tests).
Result<DeleteVectorChunkPtr> ReadDvRos(const FileSystem* fs, const std::string& path,
                                       uint64_t target_id);

/// \brief Merged view of all deletions visible at a snapshot epoch,
/// organized per target for O(log n) lookup during scans.
class DeleteIndex {
 public:
  void Add(const DeleteVectorChunk& chunk, Epoch snapshot);

  /// True if `position` of `target` is deleted as of the snapshot.
  bool IsDeleted(uint64_t target_id, uint64_t position) const;

  /// All deleted positions for one target (sorted, deduplicated).
  std::vector<uint64_t> DeletedPositions(uint64_t target_id) const;

  size_t TotalDeleted() const;

 private:
  std::map<uint64_t, std::vector<uint64_t>> by_target_;  // sorted post-finalize
  mutable bool finalized_ = false;
  void Finalize() const;
};

}  // namespace stratica

#endif  // STRATICA_STORAGE_DELETE_VECTOR_H_
