#include "storage/huffman.h"

#include <algorithm>
#include <queue>

#include "common/bitutil.h"

namespace stratica {

namespace {

/// Compute Huffman code lengths from frequencies (0 freq -> 0 length).
std::vector<uint8_t> CodeLengths(const std::vector<uint64_t>& freq) {
  struct Node {
    uint64_t weight;
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using QE = std::pair<uint64_t, int>;  // (weight, node index)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  for (size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<int>(s)});
    pq.push({freq[s], static_cast<int>(nodes.size() - 1)});
  }
  std::vector<uint8_t> lengths(freq.size(), 0);
  if (nodes.empty()) return lengths;
  if (pq.size() == 1) {
    lengths[nodes[0].symbol] = 1;  // degenerate single-symbol alphabet
    return lengths;
  }
  while (pq.size() > 1) {
    auto [wa, a] = pq.top();
    pq.pop();
    auto [wb, b] = pq.top();
    pq.pop();
    nodes.push_back({wa + wb, a, b, -1});
    pq.push({wa + wb, static_cast<int>(nodes.size() - 1)});
  }
  // Depth-first walk assigning depths as code lengths.
  std::vector<std::pair<int, uint8_t>> stack = {{pq.top().second, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.symbol >= 0) {
      lengths[n.symbol] = depth == 0 ? 1 : depth;
    } else {
      stack.push_back({n.left, static_cast<uint8_t>(depth + 1)});
      stack.push_back({n.right, static_cast<uint8_t>(depth + 1)});
    }
  }
  return lengths;
}

/// Canonical code assignment: symbols sorted by (length, symbol).
std::vector<uint64_t> CanonicalCodes(const std::vector<uint8_t>& lengths) {
  std::vector<int> order;
  for (size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) order.push_back(static_cast<int>(s));
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return lengths[a] != lengths[b] ? lengths[a] < lengths[b] : a < b;
  });
  std::vector<uint64_t> codes(lengths.size(), 0);
  uint64_t code = 0;
  uint8_t prev_len = 0;
  for (int s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

}  // namespace

Status HuffmanEncode(const std::vector<uint32_t>& symbols, uint32_t alphabet_size,
                     std::string* out) {
  std::vector<uint64_t> freq(alphabet_size, 0);
  for (uint32_t s : symbols) {
    if (s >= alphabet_size) return Status::Internal("huffman symbol out of range");
    ++freq[s];
  }
  std::vector<uint8_t> lengths = CodeLengths(freq);
  for (uint8_t len : lengths) {
    if (len > 57) return Status::Internal("huffman code too long");  // fits u64 buffer
  }
  std::vector<uint64_t> codes = CanonicalCodes(lengths);

  PutVarint64(out, alphabet_size);
  out->append(reinterpret_cast<const char*>(lengths.data()), lengths.size());
  PutVarint64(out, symbols.size());

  // MSB-first bit stream.
  uint64_t buffer = 0;
  int bits = 0;
  for (uint32_t s : symbols) {
    buffer = (buffer << lengths[s]) | codes[s];
    bits += lengths[s];
    while (bits >= 8) {
      out->push_back(static_cast<char>((buffer >> (bits - 8)) & 0xff));
      bits -= 8;
    }
  }
  if (bits > 0) out->push_back(static_cast<char>((buffer << (8 - bits)) & 0xff));
  return Status::OK();
}

Status HuffmanDecode(const std::string& data, size_t* offset,
                     std::vector<uint32_t>* symbols) {
  uint64_t alphabet_size = 0;
  if (!GetVarint64(data, offset, &alphabet_size))
    return Status::Corruption("huffman: bad alphabet size");
  if (*offset + alphabet_size > data.size())
    return Status::Corruption("huffman: truncated lengths");
  std::vector<uint8_t> lengths(alphabet_size);
  std::memcpy(lengths.data(), data.data() + *offset, alphabet_size);
  *offset += alphabet_size;
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count))
    return Status::Corruption("huffman: bad symbol count");

  std::vector<uint64_t> codes = CanonicalCodes(lengths);
  // Build (length -> list of (code, symbol)) lookup sorted by code; decode
  // by extending the candidate code one bit at a time.
  uint8_t max_len = 0;
  for (uint8_t len : lengths) max_len = std::max(max_len, len);
  // first_code[len], first_index[len] per canonical decoding.
  std::vector<int> order;
  for (size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) order.push_back(static_cast<int>(s));
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return lengths[a] != lengths[b] ? lengths[a] < lengths[b] : a < b;
  });
  std::vector<uint64_t> first_code(max_len + 2, 0);
  std::vector<size_t> first_index(max_len + 2, 0);
  {
    size_t i = 0;
    for (uint8_t len = 1; len <= max_len; ++len) {
      first_index[len] = i;
      if (i < order.size() && lengths[order[i]] == len) {
        first_code[len] = codes[order[i]];
        while (i < order.size() && lengths[order[i]] == len) ++i;
      } else {
        // No codes at this length: derive the canonical boundary anyway.
        first_code[len] = (len == 1) ? 0 : (first_code[len - 1] << 1);
        continue;
      }
    }
  }

  symbols->clear();
  symbols->reserve(count);
  uint64_t acc = 0;
  uint8_t acc_len = 0;
  size_t byte_pos = *offset;
  int bit_pos = 7;
  for (uint64_t k = 0; k < count; ++k) {
    acc = 0;
    acc_len = 0;
    for (;;) {
      if (byte_pos >= data.size()) return Status::Corruption("huffman: truncated stream");
      uint64_t bit = (static_cast<uint8_t>(data[byte_pos]) >> bit_pos) & 1;
      if (--bit_pos < 0) {
        bit_pos = 7;
        ++byte_pos;
      }
      acc = (acc << 1) | bit;
      ++acc_len;
      // Candidate: is acc a valid code of this length?
      size_t begin = first_index[acc_len];
      size_t end = acc_len + 1 <= max_len ? first_index[acc_len + 1] : order.size();
      if (begin < end) {
        uint64_t fc = codes[order[begin]];
        if (acc >= fc && acc < fc + (end - begin)) {
          symbols->push_back(static_cast<uint32_t>(order[begin + (acc - fc)]));
          break;
        }
      }
      if (acc_len > max_len) return Status::Corruption("huffman: invalid code");
    }
  }
  *offset = byte_pos + (bit_pos == 7 ? 0 : 1);
  return Status::OK();
}

}  // namespace stratica
