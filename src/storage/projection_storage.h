// Per-(node, projection) storage runtime: the WOS, the set of ROS
// containers, and the delete vectors (Sections 3.5-3.7).
//
// Concurrency model follows the paper's never-modify-in-place policy:
// ROS containers and committed WOS chunks are immutable; all mutations are
// list swaps under a mutex, and scans operate on snapshots.
#ifndef STRATICA_STORAGE_PROJECTION_STORAGE_H_
#define STRATICA_STORAGE_PROJECTION_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"
#include "expr/expr.h"
#include "storage/delete_vector.h"
#include "storage/ros.h"
#include "txn/transaction.h"

namespace stratica {

/// \brief One uncommitted-or-committed batch of WOS rows.
///
/// The WOS is in memory and unencoded (Section 3.7); rows are segmented for
/// this node but unsorted. `start_pos` gives the chunk's rows global WOS
/// positions for delete-vector targeting.
struct WosChunk {
  uint64_t start_pos = 0;
  Epoch epoch = kUncommittedEpoch;
  uint64_t txn_id = 0;
  RowBlock rows;  // flat, projection column order

  size_t NumRows() const { return rows.NumRows(); }
};

using WosChunkPtr = std::shared_ptr<WosChunk>;

/// Static configuration for a projection's storage on one node.
struct ProjectionStorageConfig {
  std::string projection;
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  std::vector<EncodingId> encodings;
  std::vector<uint32_t> sort_columns;

  /// Bound against the projection schema; null = unpartitioned. (Partition
  /// expressions referencing columns a narrow projection lacks leave that
  /// projection unpartitioned; bulk drop then falls back to delete vectors.)
  ExprPtr partition_expr;
  /// Bound against the projection schema; null = replicated projection.
  ExprPtr segmentation_expr;

  /// Local segments (Section 3.6): tuples are kept physically segregated
  /// within the node to make rebalance a wholesale file transfer.
  uint32_t num_local_segments = 3;
  /// This node's slice of the segmentation ring, set by the cluster layer.
  uint64_t range_lo = 0;
  uint64_t range_hi = UINT64_MAX;

  /// WOS capacity in rows; beyond this the WOS is "saturated" and loads
  /// spill directly to new ROS containers (Section 4).
  uint64_t wos_capacity_rows = 1 << 20;
};

/// Consistent view of a projection's storage for one scan.
struct StorageSnapshot {
  Epoch epoch = 0;
  std::vector<RosContainerPtr> ros;
  std::vector<std::shared_ptr<const WosChunk>> wos;
  DeleteIndex deletes;
  uint64_t TotalRows() const;
};

/// Result of a moveout or WOS-spill computation, applied atomically.
struct MoveoutApply {
  std::vector<WosChunkPtr> consumed_chunks;
  std::vector<std::shared_ptr<RosContainer>> new_containers;
  std::vector<DeleteVectorChunkPtr> new_dvs;  // re-targeted at new containers
  Epoch new_lge = 0;
  /// Storage generation sampled before the moveout read its inputs; the
  /// apply is rejected (TxnAborted) if recovery mutated the storage since.
  uint64_t base_generation = 0;
};

/// Result of one mergeout operation, applied atomically.
struct MergeoutApply {
  std::vector<uint64_t> removed_container_ids;
  std::shared_ptr<RosContainer> new_container;
  std::vector<DeleteVectorChunkPtr> new_dvs;
  uint64_t base_generation = 0;  ///< See MoveoutApply::base_generation.
};

/// \brief Storage state and operations for one projection on one node.
class ProjectionStorage {
 public:
  ProjectionStorage(FileSystem* fs, std::string base_dir, ProjectionStorageConfig cfg);

  const ProjectionStorageConfig& config() const { return cfg_; }
  FileSystem* fs() const { return fs_; }
  const std::string& base_dir() const { return base_dir_; }

  // --- write path ----------------------------------------------------------

  /// Buffer rows in the WOS as an uncommitted chunk owned by `txn`
  /// (stamped/discarded via the transaction's callbacks).
  Status InsertWos(RowBlock rows, Transaction* txn);

  /// Bulk-load path that bypasses the WOS: sort, split by (partition, local
  /// segment) and write ROS containers directly (Section 7, "Direct
  /// Loading to the ROS").
  Status InsertDirectRos(RowBlock rows, Transaction* txn);

  /// Record deletions of `positions` on `target_id` (container id or
  /// kWosTargetId), attached to `txn`.
  Status AddDeletes(uint64_t target_id, std::vector<uint64_t> positions,
                    Transaction* txn);

  // --- read path -----------------------------------------------------------

  /// Snapshot for reads at `epoch`; `txn_id` additionally exposes that
  /// transaction's own uncommitted data (read-your-writes).
  StorageSnapshot GetSnapshot(Epoch epoch, uint64_t txn_id = 0) const;

  // --- tuple mover interface ------------------------------------------------

  /// Committed WOS chunks with epoch <= up_to (moveout input).
  std::vector<WosChunkPtr> CommittedWosChunks(Epoch up_to) const;

  /// Delete-vector chunks targeting the WOS (moveout must translate these).
  std::vector<DeleteVectorChunkPtr> WosDeleteChunks() const;

  /// Committed containers (mergeout input), plus their delete chunks.
  std::vector<RosContainerPtr> Containers() const;
  std::vector<DeleteVectorChunkPtr> ContainerDeleteChunks(uint64_t container_id) const;

  Status ApplyMoveout(const MoveoutApply& apply);
  Status ApplyMergeout(const MergeoutApply& apply);

  /// Register a container built externally (recovery, refresh, rebalance).
  void AdoptContainer(std::shared_ptr<RosContainer> container,
                      std::vector<DeleteVectorChunkPtr> dvs);

  /// Recovery truncation (Section 5.2: "the node truncates all tuples that
  /// were inserted after its LGE"). Drops every container holding any row
  /// newer than the LGE; if a merged container mixed older rows in, the
  /// truncation point backs off so no surviving epoch range has gaps.
  /// Returns the final truncation epoch (all remaining data is <= it).
  Epoch TruncateForRecovery(Epoch lge);

  /// Ingest rows copied from a buddy during recovery/refresh/rebalance:
  /// sorts, splits by (partition, segment), writes committed containers
  /// carrying the original per-row epochs, and rebuilds delete vectors from
  /// `delete_epochs` (0 = row is live). Advances the LGE to `new_lge`.
  Status IngestRecovered(RowBlock rows, std::vector<Epoch> row_epochs,
                         std::vector<Epoch> delete_epochs, Epoch new_lge);

  /// Drop every container whose partition key matches (fast bulk deletion,
  /// Section 3.5: "as simple as deleting files from a filesystem").
  /// Returns the number of rows dropped.
  Result<uint64_t> DropPartition(int64_t partition_key);

  /// Remove all state (node crash simulation / DROP PROJECTION). WOS and
  /// uncommitted data are lost; ROS files are deleted when `delete_files`.
  void Clear(bool delete_files);

  /// Wipe volatile state only (what a node loses on failure: WOS content,
  /// uncommitted artifacts, in-memory DVWOS entries).
  void CrashVolatileState();

  /// Delete the files of retired (mergeout-replaced) containers no query
  /// snapshot references anymore. The tuple-mover pass calls this every
  /// tick so retention stays bounded even when no new merges happen.
  void GcRetired();

  // --- fault handling (DESIGN.md §10) ---------------------------------------

  /// Mark this projection copy damaged after a persistent read failure on
  /// `container_id`. A quarantined copy is skipped by the planner (treated
  /// like a down node, buddies serve its ring slot) until re-recovery
  /// clears it. Idempotent; keeps the first reason.
  void Quarantine(uint64_t container_id, const std::string& reason);
  bool quarantined() const { return quarantined_.load(std::memory_order_acquire); }
  std::string quarantine_reason() const;
  void ClearQuarantine();

  /// Set by repair right before it guts the copy (Clear + rebuild). While
  /// set, the copy is incomplete by construction, so a checksum-clean
  /// Revalidate must NOT lift the quarantine — only a successful rebuild
  /// (which calls ClearQuarantine) may. `horizon` is the queryable epoch at
  /// gut time: commits keep landing in the copy afterwards, so it remains a
  /// valid recovery *source* for epoch ranges starting at or after it.
  void MarkRepairGutted(Epoch horizon) {
    gutted_at_.store(horizon, std::memory_order_release);
    repair_gutted_.store(true, std::memory_order_release);
  }
  bool repair_gutted() const { return repair_gutted_.load(std::memory_order_acquire); }
  Epoch gutted_at() const { return gutted_at_.load(std::memory_order_acquire); }

  /// Startup / recovery scrub: reconcile on-disk files against the
  /// in-memory manifest. Orphaned files (from a crashed transaction or a
  /// torn write) are deleted instead of failing replay; a referenced meta
  /// file that is missing or fails its checksum is rewritten from the
  /// manifest. Returns the number of orphans removed.
  Result<uint64_t> ScrubFiles();

  /// End-to-end integrity pass: read every live container column (index
  /// footer + per-block CRCs) and persisted delete vector. OK means the
  /// on-disk copy is provably intact — a quarantine caused by injected or
  /// environmental read errors can be lifted without a buddy rebuild;
  /// a Corruption/IoError result means the copy really needs one.
  Status Revalidate() const;

  /// Commit-path telemetry: transient meta-write retries and terminal
  /// failures (the in-memory commit is authoritative; a lost meta file is
  /// restored by scrub or buddy recovery).
  uint64_t commit_meta_retries() const { return commit_meta_retries_.load(); }
  uint64_t commit_meta_failures() const { return commit_meta_failures_.load(); }

  /// Liveness flag of the node hosting this copy (null = standalone, always
  /// up). Scans re-check it *after* snapshotting: MarkNodeDown clears the
  /// flag before crashing volatile state, so a snapshot taken while the
  /// flag still reads true is guaranteed pre-crash and complete.
  void SetHostUpFlag(const std::atomic<bool>* up) { host_up_ = up; }
  bool HostUp() const {
    return host_up_ == nullptr || host_up_->load(std::memory_order_acquire);
  }

  /// Bumped by every destructive recovery mutation (crash, truncate, clear,
  /// scrub). A tuple-mover operation samples it before reading its inputs;
  /// ApplyMoveout/ApplyMergeout reject the result if it changed, because
  /// the inputs may be gone and the freshly written output files may
  /// already have been scrubbed as orphans.
  uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  // --- stats ----------------------------------------------------------------
  uint64_t WosRowCount() const;
  bool WosSaturated() const;
  Epoch lge() const;
  size_t NumContainers() const;
  uint64_t TotalRosBytes() const;
  uint64_t TotalRosRawBytes() const;
  uint64_t TotalRosRows() const;

  /// Allocate a container id + directory (also used by the tuple mover).
  std::pair<uint64_t, std::string> AllocateContainer();

  /// Split rows into (partition_key, local_segment) groups; exposed for the
  /// tuple mover, which must preserve both boundaries.
  Status SplitForStorage(
      const RowBlock& rows,
      std::map<std::pair<int64_t, uint32_t>, std::vector<uint32_t>>* groups) const;

  /// Local segment of a segmentation-hash value within this node's range.
  uint32_t LocalSegmentOf(uint64_t hash) const;

 private:
  Status WriteContainers(RowBlock sorted, Transaction* txn);
  /// Move unreferenced retired containers into `out` (mergeout replaces
  /// containers while scans may still be reading the old ones; deleting
  /// eagerly would fail those scans). File deletion happens off-mutex.
  void CollectRetiredLocked(std::vector<std::shared_ptr<RosContainer>>* out);
  void DeleteContainerFiles(const RosContainer& c);

  FileSystem* fs_;
  std::string base_dir_;
  ProjectionStorageConfig cfg_;

  mutable std::mutex mu_;
  std::vector<WosChunkPtr> wos_;
  std::vector<std::shared_ptr<RosContainer>> ros_;
  /// Replaced by mergeout but possibly still referenced by live snapshots.
  std::vector<std::shared_ptr<RosContainer>> retired_;
  std::vector<DeleteVectorChunkPtr> deletes_;
  uint64_t wos_next_pos_ = 0;
  Epoch lge_ = 0;
  std::atomic<uint64_t> next_container_id_{1};

  std::atomic<uint64_t> generation_{0};
  std::atomic<bool> quarantined_{false};
  std::atomic<bool> repair_gutted_{false};
  std::atomic<Epoch> gutted_at_{0};
  std::string quarantine_reason_;        // under mu_
  uint64_t quarantined_container_ = 0;   // under mu_
  std::atomic<uint64_t> commit_meta_retries_{0};
  std::atomic<uint64_t> commit_meta_failures_{0};
  const std::atomic<bool>* host_up_ = nullptr;  // owned by the hosting Node
};

}  // namespace stratica

#endif  // STRATICA_STORAGE_PROJECTION_STORAGE_H_
