#include "storage/ros.h"

#include <sstream>

#include "common/bitutil.h"
#include "common/checksum.h"
#include "common/hash.h"
#include "common/retry.h"

namespace stratica {

RosWriter::RosWriter(FileSystem* fs, std::string dir, uint64_t container_id,
                     std::string projection, std::vector<std::string> column_names,
                     std::vector<TypeId> column_types, std::vector<EncodingId> encodings,
                     size_t rows_per_block)
    : fs_(fs),
      dir_(std::move(dir)),
      id_(container_id),
      projection_(std::move(projection)),
      names_(std::move(column_names)),
      types_(std::move(column_types)),
      encodings_(std::move(encodings)),
      rows_per_block_(rows_per_block) {
  writers_.reserve(names_.size());
  for (size_t c = 0; c < names_.size(); ++c) {
    writers_.push_back(
        std::make_unique<ColumnWriter>(types_[c], encodings_[c], rows_per_block_));
  }
}

Status RosWriter::Append(const RowBlock& rows, const std::vector<Epoch>& epochs) {
  if (rows.NumColumns() != writers_.size())
    return Status::Internal("RosWriter column count mismatch");
  size_t n = rows.NumRows();
  for (size_t c = 0; c < writers_.size(); ++c) {
    const ColumnVector& col = rows.columns[c];
    if (col.IsRle()) {
      STRATICA_RETURN_NOT_OK(writers_[c]->Append(col.Decoded()));
    } else {
      STRATICA_RETURN_NOT_OK(writers_[c]->Append(col));
    }
  }
  if (!epochs.empty()) {
    if (epochs.size() != n) return Status::Internal("epoch vector size mismatch");
    if (!epoch_writer_) {
      // Epochs are long runs of equal values in commit order; RLE them.
      epoch_writer_ = std::make_unique<ColumnWriter>(TypeId::kInt64, EncodingId::kRle,
                                                     rows_per_block_);
      has_per_row_epochs_ = true;
      // Backfill for rows appended before the first epoch batch (not
      // expected in practice; guarded for robustness).
      for (uint64_t i = 0; i < rows_written_; ++i)
        STRATICA_RETURN_NOT_OK(
            epoch_writer_->AppendValue(Value::Int64(static_cast<int64_t>(0))));
    }
    ColumnVector ev(TypeId::kInt64);
    ev.ints.reserve(n);
    for (Epoch e : epochs) {
      ev.ints.push_back(static_cast<int64_t>(e));
      min_epoch_ = std::min(min_epoch_, e);
      max_epoch_ = std::max(max_epoch_, e);
    }
    STRATICA_RETURN_NOT_OK(epoch_writer_->Append(ev));
  }
  rows_written_ += n;
  return Status::OK();
}

Result<RosContainerPtr> RosWriter::Finish(int64_t partition_key, uint32_t local_segment,
                                          Epoch uniform_epoch) {
  auto ros = std::make_shared<RosContainer>();
  ros->id = id_;
  ros->projection = projection_;
  ros->dir = dir_;
  ros->row_count = rows_written_;
  ros->partition_key = partition_key;
  ros->local_segment = local_segment;
  for (size_t c = 0; c < writers_.size(); ++c) {
    RosColumnInfo info;
    info.name = names_[c];
    info.type = types_[c];
    info.encoding = encodings_[c];
    info.data_path = dir_ + "/" + names_[c] + ".dat";
    info.index_path = dir_ + "/" + names_[c] + ".idx";
    STRATICA_ASSIGN_OR_RETURN(info.meta,
                              writers_[c]->Finish(fs_, info.data_path, info.index_path));
    ros->total_bytes += info.meta.encoded_bytes;
    // Index file participates in the on-disk footprint.
    STRATICA_ASSIGN_OR_RETURN(uint64_t idx_size, fs_->FileSize(info.index_path));
    ros->total_bytes += idx_size;
    ros->raw_bytes += info.meta.raw_bytes;
    ros->columns.push_back(std::move(info));
  }
  if (has_per_row_epochs_) {
    ros->epoch_data_path = dir_ + "/__epoch.dat";
    ros->epoch_index_path = dir_ + "/__epoch.idx";
    STRATICA_ASSIGN_OR_RETURN(
        ColumnFileMeta em,
        epoch_writer_->Finish(fs_, ros->epoch_data_path, ros->epoch_index_path));
    ros->total_bytes += em.encoded_bytes;
    ros->min_epoch = rows_written_ ? min_epoch_ : uniform_epoch;
    ros->max_epoch = rows_written_ ? max_epoch_ : uniform_epoch;
  } else {
    ros->min_epoch = uniform_epoch;
    ros->max_epoch = uniform_epoch;
  }
  STRATICA_RETURN_NOT_OK(WriteRosMeta(fs_, *ros, dir_ + "/meta"));
  return RosContainerPtr(ros);
}

Result<ColumnReader> OpenRosColumn(const FileSystem* fs, const RosContainer& ros,
                                   size_t column_idx) {
  if (column_idx >= ros.columns.size())
    return Status::InvalidArgument("column index out of range");
  const RosColumnInfo& info = ros.columns[column_idx];
  return ColumnReader::Open(fs, info.data_path, info.index_path);
}

Status ReadRosContainer(const FileSystem* fs, const RosContainer& ros, RowBlock* out,
                        std::vector<Epoch>* epochs) {
  out->columns.clear();
  for (size_t c = 0; c < ros.columns.size(); ++c) {
    STRATICA_ASSIGN_OR_RETURN(ColumnReader reader, OpenRosColumn(fs, ros, c));
    ColumnVector col(ros.columns[c].type);
    STRATICA_RETURN_NOT_OK(reader.ReadAll(&col));
    out->columns.push_back(std::move(col));
  }
  if (epochs) {
    epochs->clear();
    if (!ros.epoch_data_path.empty()) {
      STRATICA_ASSIGN_OR_RETURN(
          ColumnReader reader,
          ColumnReader::Open(fs, ros.epoch_data_path, ros.epoch_index_path));
      ColumnVector col(TypeId::kInt64);
      STRATICA_RETURN_NOT_OK(reader.ReadAll(&col));
      epochs->reserve(col.ints.size());
      for (int64_t v : col.ints) epochs->push_back(static_cast<Epoch>(v));
    } else {
      epochs->assign(ros.row_count, ros.min_epoch);
    }
  }
  return Status::OK();
}

std::string SerializeRosMeta(const RosContainer& ros) {
  std::ostringstream out;
  out << "ros_v1\n";
  out << ros.id << "\t" << ros.projection << "\t" << ros.row_count << "\t"
      << ros.partition_key << "\t" << ros.local_segment << "\t" << ros.min_epoch << "\t"
      << ros.max_epoch << "\t" << ros.total_bytes << "\t" << ros.raw_bytes << "\t"
      << ros.epoch_data_path << "\t" << ros.epoch_index_path << "\t" << ros.dir << "\n";
  for (const auto& c : ros.columns) {
    out << c.name << "\t" << static_cast<int>(c.type) << "\t"
        << static_cast<int>(c.encoding) << "\t" << c.data_path << "\t" << c.index_path
        << "\n";
  }
  return out.str();
}

Result<RosContainer> ParseRosMeta(const std::string& data) {
  std::istringstream in(data);
  std::string line;
  if (!std::getline(in, line) || line != "ros_v1")
    return Status::Corruption("bad ros meta header");
  RosContainer ros;
  if (!std::getline(in, line)) return Status::Corruption("short ros meta");
  {
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> f;
    while (std::getline(ls, field, '\t')) f.push_back(field);
    if (f.size() < 9) return Status::Corruption("bad ros meta line");
    ros.id = std::strtoull(f[0].c_str(), nullptr, 10);
    ros.projection = f[1];
    ros.row_count = std::strtoull(f[2].c_str(), nullptr, 10);
    ros.partition_key = std::strtoll(f[3].c_str(), nullptr, 10);
    ros.local_segment = static_cast<uint32_t>(std::strtoul(f[4].c_str(), nullptr, 10));
    ros.min_epoch = std::strtoull(f[5].c_str(), nullptr, 10);
    ros.max_epoch = std::strtoull(f[6].c_str(), nullptr, 10);
    ros.total_bytes = std::strtoull(f[7].c_str(), nullptr, 10);
    ros.raw_bytes = std::strtoull(f[8].c_str(), nullptr, 10);
    if (f.size() > 9) ros.epoch_data_path = f[9];
    if (f.size() > 10) ros.epoch_index_path = f[10];
    if (f.size() > 11) ros.dir = f[11];
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> f;
    while (std::getline(ls, field, '\t')) f.push_back(field);
    if (f.size() != 5) return Status::Corruption("bad ros column line");
    RosColumnInfo c;
    c.name = f[0];
    c.type = static_cast<TypeId>(std::atoi(f[1].c_str()));
    c.encoding = static_cast<EncodingId>(std::atoi(f[2].c_str()));
    c.data_path = f[3];
    c.index_path = f[4];
    ros.columns.push_back(std::move(c));
  }
  return ros;
}

Status WriteRosMeta(FileSystem* fs, const RosContainer& ros,
                    const std::string& meta_path) {
  return WriteFileChecksummed(fs, meta_path, SerializeRosMeta(ros));
}

Result<RosContainer> ReadRosMeta(const FileSystem* fs, const std::string& meta_path) {
  STRATICA_ASSIGN_OR_RETURN(std::string data, ReadFileChecksummed(fs, meta_path));
  return ParseRosMeta(data);
}

Status StampRosEpoch(FileSystem* fs, RosContainer* ros, const std::string& meta_path,
                     Epoch epoch, uint64_t* retries) {
  ros->min_epoch = epoch;
  ros->max_epoch = epoch;
  RetryPolicy policy;
  policy.jitter_seed = HashBytes(meta_path.data(), meta_path.size());
  return RetryTransient(policy, retries,
                        [&] { return WriteRosMeta(fs, *ros, meta_path); });
}

}  // namespace stratica
