// ROS containers (Section 3.7): immutable on-disk units of a projection.
//
// Each container holds complete tuples sorted by the projection's sort
// order, stored as a pair of files (data + position index) per column.
// Positions are implicit. Containers never change after being written; the
// tuple mover replaces sets of containers wholesale. Each container belongs
// to exactly one (partition key, local segment) pair (Sections 3.5, 3.6).
//
// Epochs: all rows of a load/moveout container share one commit epoch
// (stamped at commit); mergeout outputs carry a per-row implicit epoch
// column (Section 5: "implemented as implicit 64-bit integral columns"),
// which RLE collapses to almost nothing.
#ifndef STRATICA_STORAGE_ROS_H_
#define STRATICA_STORAGE_ROS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/row_block.h"
#include "common/status.h"
#include "storage/column_file.h"
#include "txn/epoch.h"

namespace stratica {

/// Partition key used when a table (or projection) is unpartitioned.
constexpr int64_t kNoPartitionKey = std::numeric_limits<int64_t>::min();

struct RosColumnInfo {
  std::string name;
  TypeId type = TypeId::kInt64;
  EncodingId encoding = EncodingId::kAuto;
  std::string data_path;
  std::string index_path;
  ColumnFileMeta meta;
};

/// \brief Immutable container metadata. Shared (const) across threads.
struct RosContainer {
  uint64_t id = 0;
  std::string projection;
  std::string dir;  ///< Container directory; meta file lives at dir + "/meta".
  uint64_t row_count = 0;
  int64_t partition_key = kNoPartitionKey;
  uint32_t local_segment = 0;
  uint64_t creating_txn = 0;  ///< Non-persistent; read-your-writes visibility.

  std::vector<RosColumnInfo> columns;  // projection column order

  /// Epoch range of contained rows. min==max for load/moveout output;
  /// mergeout output spans and additionally has an epoch column file.
  Epoch min_epoch = kUncommittedEpoch;
  Epoch max_epoch = kUncommittedEpoch;
  std::string epoch_data_path;   // empty when min_epoch == max_epoch
  std::string epoch_index_path;

  uint64_t total_bytes = 0;  ///< Encoded bytes across all files (strata input).
  uint64_t raw_bytes = 0;    ///< Pre-encoding footprint (compression reporting).

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

using RosContainerPtr = std::shared_ptr<const RosContainer>;

/// \brief Streams sorted rows (plus their epochs) into a new ROS container.
///
/// The caller guarantees sort order; the writer builds per-column files and
/// the container metadata. Rows are appended in vectorized batches, so
/// mergeout can stream arbitrarily large merges with bounded memory.
class RosWriter {
 public:
  /// `dir` is the container directory (e.g. "node0/proj_sales/c42").
  RosWriter(FileSystem* fs, std::string dir, uint64_t container_id,
            std::string projection, std::vector<std::string> column_names,
            std::vector<TypeId> column_types, std::vector<EncodingId> encodings,
            size_t rows_per_block = kDefaultRowsPerBlock);

  /// Append a batch. `epochs` must be empty (all rows get the epoch passed
  /// to Finish) or have one entry per row.
  Status Append(const RowBlock& rows, const std::vector<Epoch>& epochs);

  uint64_t rows_written() const { return rows_written_; }

  /// Close files and produce the container. `uniform_epoch` applies when no
  /// per-row epochs were appended (kUncommittedEpoch for loads that will be
  /// stamped at commit time).
  Result<RosContainerPtr> Finish(int64_t partition_key, uint32_t local_segment,
                                 Epoch uniform_epoch);

 private:
  FileSystem* fs_;
  std::string dir_;
  uint64_t id_;
  std::string projection_;
  std::vector<std::string> names_;
  std::vector<TypeId> types_;
  std::vector<EncodingId> encodings_;
  std::vector<std::unique_ptr<ColumnWriter>> writers_;
  std::unique_ptr<ColumnWriter> epoch_writer_;
  bool has_per_row_epochs_ = false;
  Epoch min_epoch_ = kUncommittedEpoch, max_epoch_ = 0;
  uint64_t rows_written_ = 0;
  size_t rows_per_block_;
};

/// Open a reader for one column of a container.
Result<ColumnReader> OpenRosColumn(const FileSystem* fs, const RosContainer& ros,
                                   size_t column_idx);

/// Read every row of a container into a block (tests, recovery, C-Store
/// comparisons). Per-row epochs are returned when present.
Status ReadRosContainer(const FileSystem* fs, const RosContainer& ros,
                        RowBlock* out, std::vector<Epoch>* epochs);

/// Serialize container metadata to its meta file / parse it back (used by
/// backup and by catalog-less container discovery in tests).
std::string SerializeRosMeta(const RosContainer& ros);
Result<RosContainer> ParseRosMeta(const std::string& data);

/// Write / read a container's meta file with the integrity footer. Reading
/// a torn or bit-flipped meta returns Corruption (startup scrub relies on
/// this to distinguish orphans from live containers).
Status WriteRosMeta(FileSystem* fs, const RosContainer& ros,
                    const std::string& meta_path);
Result<RosContainer> ReadRosMeta(const FileSystem* fs, const std::string& meta_path);

/// Stamp an uncommitted container with its commit epoch (commit callback).
/// Containers are immutable *after commit*; stamping rewrites the meta file.
/// Transient write failures are retried with backoff (the commit-meta write
/// path must not eject a node over a blip); `retries` (optional)
/// accumulates the retry count.
Status StampRosEpoch(FileSystem* fs, RosContainer* ros, const std::string& meta_path,
                     Epoch epoch, uint64_t* retries = nullptr);

}  // namespace stratica

#endif  // STRATICA_STORAGE_ROS_H_
