// Sorting utilities shared by the load path, the tuple mover and the
// execution engine's Sort operator.
//
// The hot paths run on *normalized keys* (DESIGN.md §8): each row's
// composite sort key is encoded into a byte string whose memcmp order
// equals the row comparison order — order-preserving transforms for
// int64/double/string, a NULL marker byte per key column (NULL first),
// and DESC handled by complementing the column's bytes. Sorting and
// merging then reduce to memcmp (or plain integer compares when the
// composite key packs into 8 bytes) instead of a per-row type switch.
#ifndef STRATICA_STORAGE_SORT_UTIL_H_
#define STRATICA_STORAGE_SORT_UTIL_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/row_block.h"

namespace stratica {

/// Sort key with direction (shared by the Sort operator, the merge kernel
/// and the tuple mover; plain column lists mean ascending).
struct SortKey {
  uint32_t column;
  bool descending = false;
};

/// Compare rows under directed sort keys (NULL first under ASC; the
/// comparator fallback of the normalized-key paths).
int CompareRowsDirected(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                        const std::vector<SortKey>& keys);

/// CompareRowsDirected with the normalized-key total order on doubles
/// (-0.0 == +0.0, every NaN equal and after +inf). Merge paths that
/// compare rows directly against key-sorted runs must use this so both
/// orders agree; CompareRowsDirected has no NaN order at all.
int CompareRowsDirectedTotal(const RowBlock& a, size_t ia, const RowBlock& b,
                             size_t ib, const std::vector<SortKey>& keys);

/// A/B knob (DESIGN.md §8): when disabled, ComputeSortPermutation* and the
/// loser-tree merge fall back to per-row comparator sort. On by default;
/// benches and differential tests toggle it.
void SetNormalizedKeySortEnabled(bool enabled);
bool NormalizedKeySortEnabled();

/// \brief Packed, byte-comparable composite keys for one block.
///
/// Row i's key occupies bytes [offsets[i], offsets[i+1]). When every key
/// column is fixed-width (no strings), `fixed_width` is set and `offsets`
/// stays empty — row i's key is bytes[i * fixed_width, (i+1) * fixed_width).
struct NormalizedKeys {
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> offsets;  ///< rows + 1 entries; empty when fixed-width
  size_t fixed_width = 0;         ///< bytes per key when no string columns
  size_t rows = 0;

  const uint8_t* Data(size_t i) const {
    return bytes.data() + (offsets.empty() ? i * fixed_width : offsets[i]);
  }
  size_t Length(size_t i) const {
    return offsets.empty() ? fixed_width : offsets[i + 1] - offsets[i];
  }
  /// memcmp semantics: <0, 0, >0.
  int Compare(size_t a, size_t b) const {
    return CompareSlices(Data(a), Length(a), Data(b), Length(b));
  }
  /// Compare row a of *this against row b of `other`.
  int CompareWith(size_t a, const NormalizedKeys& other, size_t b) const {
    return CompareSlices(Data(a), Length(a), other.Data(b), other.Length(b));
  }

  static int CompareSlices(const uint8_t* a, size_t alen, const uint8_t* b,
                           size_t blen) {
    size_t n = alen < blen ? alen : blen;
    int c = n == 0 ? 0 : std::memcmp(a, b, n);
    if (c != 0) return c;
    return alen < blen ? -1 : (alen > blen ? 1 : 0);
  }
};

/// Encode the composite sort key of every row of a flat block. The encoding
/// is order-preserving: memcmp of two keys == CompareRowsDirected of the
/// rows (with -0.0 canonicalized to +0.0 and NaN to one quiet-NaN pattern
/// so floats keep a total order).
///
/// Dict-coded key columns are handled either way: with `allow_dict_codes`
/// set, a sorted-dictionary column contributes its codes as a fixed 9-byte
/// int key — skipping value materialization entirely, and turning string
/// keys fixed-width (DESIGN.md §13). Codes from different dictionaries never
/// compare, so only block-local sorts (ComputeSortPermutationDirected) may
/// pass true; cross-block users (merges) must leave it false, which
/// materializes dictionary values instead.
void BuildNormalizedKeys(const RowBlock& block, const std::vector<SortKey>& keys,
                         NormalizedKeys* out, bool allow_dict_codes = false);

/// Append row `row`'s encoded key to *out — the single-row variant of
/// BuildNormalizedKeys (property tests lock the two to the same bytes).
void AppendNormalizedKey(const RowBlock& block, size_t row,
                         const std::vector<SortKey>& keys,
                         std::vector<uint8_t>* out);

/// Stable sort permutation of `block`'s rows under directed keys, via
/// normalized keys (or the comparator fallback when the knob is off).
std::vector<uint32_t> ComputeSortPermutationDirected(const RowBlock& block,
                                                     const std::vector<SortKey>& keys);

/// Stable sort permutation of `block`'s rows by the given key columns
/// (ascending, NULL first). The block must be flat (no RLE columns).
std::vector<uint32_t> ComputeSortPermutation(const RowBlock& block,
                                             const std::vector<uint32_t>& key_columns);

/// Materialize `perm` over a flat block.
RowBlock ApplyPermutation(const RowBlock& block, const std::vector<uint32_t>& perm);

/// Lexicographic comparison of row `ia` of `a` vs row `ib` of `b` over
/// parallel key column lists.
int CompareRows(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                const std::vector<uint32_t>& keys_a, const std::vector<uint32_t>& keys_b);

/// True if the flat block is sorted by the key columns.
bool IsSorted(const RowBlock& block, const std::vector<uint32_t>& key_columns);

}  // namespace stratica

#endif  // STRATICA_STORAGE_SORT_UTIL_H_
