// Sorting utilities shared by the load path, the tuple mover and the
// execution engine's Sort operator.
#ifndef STRATICA_STORAGE_SORT_UTIL_H_
#define STRATICA_STORAGE_SORT_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/row_block.h"

namespace stratica {

/// Stable sort permutation of `block`'s rows by the given key columns
/// (ascending, NULL first). The block must be flat (no RLE columns).
std::vector<uint32_t> ComputeSortPermutation(const RowBlock& block,
                                             const std::vector<uint32_t>& key_columns);

/// Materialize `perm` over a flat block.
RowBlock ApplyPermutation(const RowBlock& block, const std::vector<uint32_t>& perm);

/// Lexicographic comparison of row `ia` of `a` vs row `ib` of `b` over
/// parallel key column lists.
int CompareRows(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                const std::vector<uint32_t>& keys_a, const std::vector<uint32_t>& keys_b);

/// True if the flat block is sorted by the key columns.
bool IsSorted(const RowBlock& block, const std::vector<uint32_t>& key_columns);

}  // namespace stratica

#endif  // STRATICA_STORAGE_SORT_UTIL_H_
