// Column encodings (paper Section 3.4.1).
//
// Every column in every projection carries an encoding; the same column may
// be encoded differently in different projections. Encodings operate on
// fixed-row-count blocks; each encoded block is self-describing (its first
// byte names the encoding actually used, so kAuto resolves per block).
//
// Implemented encoding types, mirroring the paper's list:
//   1. Auto                    — picks the smallest candidate per block.
//   2. RLE                     — (value, count) pairs; best for sorted,
//                                low-cardinality columns.
//   3. Delta Value             — frame-of-reference: offsets from the block
//                                minimum, bit-packed; unsorted many-valued ints.
//   4. Block Dictionary        — per-block dictionary + packed indexes;
//                                few-valued unsorted columns.
//   5. Compressed Delta Range  — delta from the previous value, zigzag
//                                varint; sorted/range-confined numerics
//                                (doubles delta their monotone bit patterns).
//   6. Compressed Common Delta — dictionary of the block's distinct deltas,
//                                Huffman-coded indexes; periodic sequences
//                                (timestamps, primary keys).
// Plus kPlain, the uncompressed fallback every type supports.
#ifndef STRATICA_STORAGE_ENCODING_H_
#define STRATICA_STORAGE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row_block.h"
#include "common/status.h"

namespace stratica {

enum class EncodingId : uint8_t {
  kAuto = 0,
  kPlain = 1,
  kRle = 2,
  kDeltaValue = 3,
  kBlockDict = 4,
  kCompressedDeltaRange = 5,
  kCompressedCommonDelta = 6,
};

const char* EncodingName(EncodingId id);
Result<EncodingId> EncodingFromName(const std::string& name);

/// True if `enc` can encode columns of storage class `sc`.
bool EncodingSupports(EncodingId enc, StorageClass sc);

/// Encode `count` physical entries of `col` starting at `start` into `out`.
/// `enc == kAuto` tries all supported encodings and keeps the smallest.
/// Layout: [actual EncodingId u8][count varint][null section][payload].
Status EncodeBlock(EncodingId enc, const ColumnVector& col, size_t start, size_t count,
                   std::string* out);

/// Decode one block (produced by EncodeBlock) into a flat column; `*offset`
/// advances past the block.
Status DecodeBlock(const std::string& data, size_t* offset, TypeId type,
                   ColumnVector* out);

/// Like DecodeBlock but preserves run-length form when the block is RLE
/// encoded, enabling operators to work directly on encoded data (§6.1).
Status DecodeBlockRuns(const std::string& data, size_t* offset, TypeId type,
                       ColumnVector* out);

/// Selection-aware decode for late materialization (§6.1, DESIGN.md §7):
/// appends only the entries with sel[i] != 0, producing output bit-identical
/// to DecodeBlock followed by FilterPhysical(sel). `sel` must have exactly
/// one entry per row of the block. Each encoding materializes only selected
/// values: RLE skips dead runs wholesale, DeltaValue and BlockDict bit-unpack
/// only selected slots, the varint delta encodings stop decoding after the
/// last selected position, and string payloads never copy unselected bytes.
/// `*offset` still advances past the whole block.
Status DecodeBlockSelected(const std::string& data, size_t* offset, TypeId type,
                           const std::vector<uint8_t>& sel, ColumnVector* out);

/// Read the encoding id actually used by an encoded block.
Result<EncodingId> PeekBlockEncoding(const std::string& data, size_t offset);

/// \brief One block decoded to its cheapest loss-free in-memory form — the
/// unit of compressed execution (paper Section 6.1: "never decode what you
/// can process encoded").
///
/// `column` preserves the block's encoded structure when operators can
/// exploit it: RLE blocks keep run lengths, BlockDict blocks keep per-row
/// codes plus a shared immutable dictionary (re-sorted at view construction
/// so code order == value order, enabling code-range predicates and
/// code-based sort keys); every other encoding decodes flat. The view owns
/// its data — values and codes are copied out of the block buffer and the
/// dictionary is an immutable shared_ptr — so it may outlive the block
/// snapshot and travel through the operator tree. Any consumer that cannot
/// handle an encoded column falls back via ColumnVector::Decoded().
struct EncodedBlockView {
  EncodingId encoding = EncodingId::kPlain;  ///< physical encoding of the block
  ColumnVector column;
  /// True when the column still carries encoded structure (runs or codes).
  bool encoded() const { return !column.IsFlat(); }
};

/// Decode one block (produced by EncodeBlock) into an EncodedBlockView.
/// `out->column` is freshly assigned (unlike the appending decoders above);
/// `*offset` advances past the block.
Status DecodeBlockView(const std::string& data, size_t* offset, TypeId type,
                       EncodedBlockView* out);

/// Serialize / parse a Value (used by position indexes and container stats).
void EncodeValue(std::string* out, const Value& v);
Status DecodeValue(const std::string& data, size_t* offset, TypeId type, Value* out);

}  // namespace stratica

#endif  // STRATICA_STORAGE_ENCODING_H_
