#include "storage/delete_vector.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/row_block.h"
#include "storage/encoding.h"

namespace stratica {

Status WriteDvRos(FileSystem* fs, const DeleteVectorChunk& chunk,
                  const std::string& path) {
  // Two encoded blocks in one file: positions (monotone -> common-delta or
  // delta-range) and epochs (long runs -> RLE). "Delete vectors are stored
  // in the same format as user data."
  ColumnVector pos(TypeId::kInt64), ep(TypeId::kInt64);
  pos.ints.reserve(chunk.positions.size());
  for (uint64_t p : chunk.positions) pos.ints.push_back(static_cast<int64_t>(p));
  ep.ints.reserve(chunk.epochs.size());
  for (Epoch e : chunk.epochs) ep.ints.push_back(static_cast<int64_t>(e));
  std::string data;
  STRATICA_RETURN_NOT_OK(
      EncodeBlock(EncodingId::kAuto, pos, 0, pos.ints.size(), &data));
  STRATICA_RETURN_NOT_OK(EncodeBlock(EncodingId::kRle, ep, 0, ep.ints.size(), &data));
  return WriteFileChecksummed(fs, path, std::move(data));
}

Result<DeleteVectorChunkPtr> ReadDvRos(const FileSystem* fs, const std::string& path,
                                       uint64_t target_id) {
  STRATICA_ASSIGN_OR_RETURN(std::string data, ReadFileChecksummed(fs, path));
  auto chunk = std::make_shared<DeleteVectorChunk>();
  chunk->target_id = target_id;
  chunk->persisted = true;
  chunk->dv_path = path;
  ColumnVector pos(TypeId::kInt64), ep(TypeId::kInt64);
  size_t offset = 0;
  STRATICA_RETURN_NOT_OK(DecodeBlock(data, &offset, TypeId::kInt64, &pos));
  STRATICA_RETURN_NOT_OK(DecodeBlock(data, &offset, TypeId::kInt64, &ep));
  if (pos.ints.size() != ep.ints.size())
    return Status::Corruption("dvros: position/epoch count mismatch");
  chunk->positions.reserve(pos.ints.size());
  for (int64_t v : pos.ints) chunk->positions.push_back(static_cast<uint64_t>(v));
  chunk->epochs.reserve(ep.ints.size());
  for (int64_t v : ep.ints) chunk->epochs.push_back(static_cast<Epoch>(v));
  return chunk;
}

void DeleteIndex::Add(const DeleteVectorChunk& chunk, Epoch snapshot) {
  auto& vec = by_target_[chunk.target_id];
  for (size_t i = 0; i < chunk.positions.size(); ++i) {
    if (chunk.epochs[i] <= snapshot) vec.push_back(chunk.positions[i]);
  }
  finalized_ = false;
}

void DeleteIndex::Finalize() const {
  if (finalized_) return;
  for (auto& [target, vec] : const_cast<DeleteIndex*>(this)->by_target_) {
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
  }
  finalized_ = true;
}

bool DeleteIndex::IsDeleted(uint64_t target_id, uint64_t position) const {
  Finalize();
  auto it = by_target_.find(target_id);
  if (it == by_target_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), position);
}

std::vector<uint64_t> DeleteIndex::DeletedPositions(uint64_t target_id) const {
  Finalize();
  auto it = by_target_.find(target_id);
  if (it == by_target_.end()) return {};
  return it->second;
}

size_t DeleteIndex::TotalDeleted() const {
  Finalize();
  size_t n = 0;
  for (const auto& [target, vec] : by_target_) n += vec.size();
  return n;
}

}  // namespace stratica
