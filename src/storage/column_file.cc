#include "storage/column_file.h"

#include "common/bitutil.h"
#include "common/checksum.h"
#include "common/hash.h"
#include "common/retry.h"

namespace stratica {

ColumnWriter::ColumnWriter(TypeId type, EncodingId encoding, size_t rows_per_block)
    : type_(type), encoding_(encoding), rows_per_block_(rows_per_block), buffer_(type) {
  meta_.type = type;
}

Status ColumnWriter::Append(const ColumnVector& col) {
  if (col.IsRle()) return Status::Internal("ColumnWriter requires flat input");
  size_t n = col.PhysicalSize();
  for (size_t i = 0; i < n; ++i) buffer_.AppendFrom(col, i);
  total_rows_ += n;
  while (buffer_.PhysicalSize() >= rows_per_block_) {
    STRATICA_RETURN_NOT_OK(FlushBlock(0, rows_per_block_));
    // Compact the buffer: drop the flushed prefix.
    ColumnVector rest(type_);
    for (size_t i = rows_per_block_; i < buffer_.PhysicalSize(); ++i)
      rest.AppendFrom(buffer_, i);
    buffer_ = std::move(rest);
  }
  return Status::OK();
}

Status ColumnWriter::AppendValue(const Value& v) {
  buffer_.Append(v);
  ++total_rows_;
  if (buffer_.PhysicalSize() >= rows_per_block_) {
    STRATICA_RETURN_NOT_OK(FlushBlock(0, rows_per_block_));
    ColumnVector rest(type_);
    for (size_t i = rows_per_block_; i < buffer_.PhysicalSize(); ++i)
      rest.AppendFrom(buffer_, i);
    buffer_ = std::move(rest);
  }
  return Status::OK();
}

Status ColumnWriter::FlushBlock(size_t start, size_t count) {
  BlockMeta bm;
  bm.offset = data_.size();
  bm.row_start = meta_.num_rows;
  bm.row_count = static_cast<uint32_t>(count);
  bm.min = Value::Null(type_);
  bm.max = Value::Null(type_);
  for (size_t i = 0; i < count; ++i) {
    if (buffer_.IsNull(start + i)) {
      ++bm.null_count;
      continue;
    }
    Value v = buffer_.GetValue(start + i);
    if (bm.min.is_null() || v.Compare(bm.min) < 0) bm.min = v;
    if (bm.max.is_null() || v.Compare(bm.max) > 0) bm.max = v;
    // Raw footprint: fixed 8 bytes for scalars, bytes+separator for strings.
    meta_.raw_bytes += StorageClassOf(type_) == StorageClass::kString
                           ? buffer_.strings[start + i].size() + 1
                           : 8;
  }
  meta_.raw_bytes += bm.null_count * (StorageClassOf(type_) == StorageClass::kString
                                          ? 1
                                          : 8);
  STRATICA_RETURN_NOT_OK(EncodeBlock(encoding_, buffer_, start, count, &data_));
  bm.encoded_bytes = static_cast<uint32_t>(data_.size() - bm.offset);
  bm.crc = Crc32c(data_.data() + bm.offset, bm.encoded_bytes);
  meta_.num_rows += count;
  if (!bm.min.is_null() && (meta_.min.is_null() || bm.min.Compare(meta_.min) < 0))
    meta_.min = bm.min;
  if (!bm.max.is_null() && (meta_.max.is_null() || bm.max.Compare(meta_.max) > 0))
    meta_.max = bm.max;
  meta_.blocks.push_back(std::move(bm));
  return Status::OK();
}

Result<ColumnFileMeta> ColumnWriter::Finish(FileSystem* fs, const std::string& data_path,
                                            const std::string& index_path) {
  if (buffer_.PhysicalSize() > 0) {
    STRATICA_RETURN_NOT_OK(FlushBlock(0, buffer_.PhysicalSize()));
    buffer_.Clear();
  }
  meta_.min = meta_.min.is_null() ? Value::Null(type_) : meta_.min;
  meta_.max = meta_.max.is_null() ? Value::Null(type_) : meta_.max;
  meta_.encoded_bytes = data_.size();
  STRATICA_RETURN_NOT_OK(fs->WriteFile(data_path, data_));
  // The data file's blocks are individually CRC-guarded via the index; the
  // index itself gets a whole-file footer so a torn index never parses.
  STRATICA_RETURN_NOT_OK(
      WriteFileChecksummed(fs, index_path, SerializeColumnFileMeta(meta_)));
  return meta_;
}

std::string SerializeColumnFileMeta(const ColumnFileMeta& meta) {
  std::string out;
  out.push_back(static_cast<char>(meta.type));
  PutVarint64(&out, meta.num_rows);
  PutVarint64(&out, meta.raw_bytes);
  PutVarint64(&out, meta.encoded_bytes);
  EncodeValue(&out, meta.min);
  EncodeValue(&out, meta.max);
  PutVarint64(&out, meta.blocks.size());
  for (const auto& b : meta.blocks) {
    PutVarint64(&out, b.offset);
    PutVarint64(&out, b.encoded_bytes);
    PutVarint64(&out, b.row_start);
    PutVarint64(&out, b.row_count);
    EncodeValue(&out, b.min);
    EncodeValue(&out, b.max);
    PutVarint64(&out, b.null_count);
    PutVarint64(&out, b.crc);
  }
  return out;
}

Result<ColumnFileMeta> ParseColumnFileMeta(const std::string& data) {
  ColumnFileMeta meta;
  size_t offset = 0;
  if (data.empty()) return Status::Corruption("index: empty");
  meta.type = static_cast<TypeId>(data[offset++]);
  uint64_t v;
  if (!GetVarint64(data, &offset, &v)) return Status::Corruption("index: rows");
  meta.num_rows = v;
  if (!GetVarint64(data, &offset, &v)) return Status::Corruption("index: raw");
  meta.raw_bytes = v;
  if (!GetVarint64(data, &offset, &v)) return Status::Corruption("index: enc");
  meta.encoded_bytes = v;
  STRATICA_RETURN_NOT_OK(DecodeValue(data, &offset, meta.type, &meta.min));
  STRATICA_RETURN_NOT_OK(DecodeValue(data, &offset, meta.type, &meta.max));
  uint64_t nblocks;
  if (!GetVarint64(data, &offset, &nblocks)) return Status::Corruption("index: nblocks");
  meta.blocks.resize(nblocks);
  for (auto& b : meta.blocks) {
    uint64_t x;
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: offset");
    b.offset = x;
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: bytes");
    b.encoded_bytes = static_cast<uint32_t>(x);
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: row_start");
    b.row_start = x;
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: row_count");
    b.row_count = static_cast<uint32_t>(x);
    STRATICA_RETURN_NOT_OK(DecodeValue(data, &offset, meta.type, &b.min));
    STRATICA_RETURN_NOT_OK(DecodeValue(data, &offset, meta.type, &b.max));
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: nulls");
    b.null_count = static_cast<uint32_t>(x);
    if (!GetVarint64(data, &offset, &x)) return Status::Corruption("index: crc");
    b.crc = static_cast<uint32_t>(x);
  }
  return meta;
}

namespace {

/// Reader-side retry policy: transient I/O errors back off and retry before
/// anything surfaces to the scan; the jitter seed is derived from the path
/// so concurrent readers of different files desynchronize.
RetryPolicy ReaderRetryPolicy(const std::string& path) {
  RetryPolicy p;
  p.jitter_seed = HashBytes(path.data(), path.size());
  return p;
}

}  // namespace

Result<ColumnReader> ColumnReader::Open(const FileSystem* fs, const std::string& data_path,
                                        const std::string& index_path) {
  std::string index_bytes;
  STRATICA_RETURN_NOT_OK(
      RetryTransient(ReaderRetryPolicy(index_path), nullptr, [&]() -> Status {
        STRATICA_ASSIGN_OR_RETURN(index_bytes, fs->ReadFile(index_path));
        return Status::OK();
      }));
  STRATICA_RETURN_NOT_OK(VerifyAndStripCrcFooter(&index_bytes, index_path));
  STRATICA_ASSIGN_OR_RETURN(ColumnFileMeta meta, ParseColumnFileMeta(index_bytes));
  return ColumnReader(fs, data_path, std::move(meta));
}

Status ColumnReader::FetchBlock(size_t idx) const {
  const BlockMeta& b = meta_.blocks[idx];
  STRATICA_RETURN_NOT_OK(
      RetryTransient(ReaderRetryPolicy(data_path_), &io_retries_, [&] {
        return fs_->ReadRangeInto(data_path_, b.offset, b.encoded_bytes, &scratch_);
      }));
  STRATICA_RETURN_NOT_OK(
      VerifyBlockCrc(scratch_, 0, b.encoded_bytes, b.crc, data_path_, b.offset));
  bytes_read_ += b.encoded_bytes;
  return Status::OK();
}

Status ColumnReader::ReadBlock(size_t idx, bool keep_runs, ColumnVector* out) const {
  if (idx >= meta_.blocks.size()) return Status::InvalidArgument("block out of range");
  STRATICA_RETURN_NOT_OK(FetchBlock(idx));
  size_t offset = 0;
  if (keep_runs) return DecodeBlockRuns(scratch_, &offset, meta_.type, out);
  return DecodeBlock(scratch_, &offset, meta_.type, out);
}

Status ColumnReader::ReadBlockView(size_t idx, EncodedBlockView* out) const {
  if (idx >= meta_.blocks.size()) return Status::InvalidArgument("block out of range");
  STRATICA_RETURN_NOT_OK(FetchBlock(idx));
  size_t offset = 0;
  return DecodeBlockView(scratch_, &offset, meta_.type, out);
}

Status ColumnReader::ReadBlockSelected(size_t idx, const std::vector<uint8_t>& sel,
                                       ColumnVector* out) const {
  if (idx >= meta_.blocks.size()) return Status::InvalidArgument("block out of range");
  STRATICA_RETURN_NOT_OK(FetchBlock(idx));
  size_t offset = 0;
  return DecodeBlockSelected(scratch_, &offset, meta_.type, sel, out);
}

Status ColumnReader::ReadAll(ColumnVector* out) const {
  out->type = meta_.type;
  if (meta_.blocks.empty()) return Status::OK();
  // Blocks are written back to back, so the whole column is one contiguous
  // span: fetch it with a single ranged read into the reusable buffer
  // instead of one allocation per block.
  const BlockMeta& last = meta_.blocks.back();
  uint64_t span = last.offset + last.encoded_bytes;
  STRATICA_RETURN_NOT_OK(
      RetryTransient(ReaderRetryPolicy(data_path_), &io_retries_, [&] {
        return fs_->ReadRangeInto(data_path_, 0, span, &scratch_);
      }));
  bytes_read_ += span;
  out->Reserve(out->PhysicalSize() + meta_.num_rows);
  for (const BlockMeta& b : meta_.blocks) {
    STRATICA_RETURN_NOT_OK(VerifyBlockCrc(scratch_, b.offset, b.encoded_bytes, b.crc,
                                          data_path_, b.offset));
    size_t offset = b.offset;
    STRATICA_RETURN_NOT_OK(DecodeBlock(scratch_, &offset, meta_.type, out));
  }
  return Status::OK();
}

}  // namespace stratica
