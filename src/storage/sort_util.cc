#include "storage/sort_util.h"

#include <algorithm>
#include <numeric>

namespace stratica {

std::vector<uint32_t> ComputeSortPermutation(const RowBlock& block,
                                             const std::vector<uint32_t>& key_columns) {
  std::vector<uint32_t> perm(block.NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (uint32_t k : key_columns) {
      int c = ColumnVector::CompareEntries(block.columns[k], a, block.columns[k], b);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return perm;
}

RowBlock ApplyPermutation(const RowBlock& block, const std::vector<uint32_t>& perm) {
  RowBlock out;
  out.columns.reserve(block.NumColumns());
  for (const auto& col : block.columns) {
    ColumnVector oc(col.type);
    oc.Reserve(perm.size());
    for (uint32_t idx : perm) oc.AppendFrom(col, idx);
    out.columns.push_back(std::move(oc));
  }
  return out;
}

int CompareRows(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                const std::vector<uint32_t>& keys_a,
                const std::vector<uint32_t>& keys_b) {
  for (size_t k = 0; k < keys_a.size(); ++k) {
    int c = ColumnVector::CompareEntries(a.columns[keys_a[k]], ia, b.columns[keys_b[k]],
                                         ib);
    if (c != 0) return c;
  }
  return 0;
}

bool IsSorted(const RowBlock& block, const std::vector<uint32_t>& key_columns) {
  size_t n = block.NumRows();
  for (size_t i = 1; i < n; ++i) {
    if (CompareRows(block, i - 1, block, i, key_columns, key_columns) > 0) return false;
  }
  return true;
}

}  // namespace stratica
