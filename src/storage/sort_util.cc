#include "storage/sort_util.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

namespace stratica {

namespace {

std::atomic<bool> g_normalized_keys_enabled{true};

/// Order-preserving transform of an int64: flip the sign bit so the
/// unsigned/byte order equals the signed order.
inline uint64_t NormalizeInt64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

/// Order-preserving transform of a double. -0.0 canonicalizes to +0.0 and
/// every NaN to one quiet-NaN pattern so the byte order is total and rows
/// the comparator calls equal stay equal.
inline uint64_t NormalizeDouble(double d) {
  if (d == 0) d = 0;  // -0.0 == 0.0 folds both to +0.0
  if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  // Negative: complement everything (reverses magnitude order). Positive:
  // set the sign bit so positives sort above negatives.
  return (u >> 63) ? ~u : (u | (uint64_t{1} << 63));
}

inline void PutBigEndian64(uint64_t u, bool invert, std::vector<uint8_t>* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    uint8_t b = static_cast<uint8_t>(u >> shift);
    out->push_back(invert ? static_cast<uint8_t>(~b) : b);
  }
}

inline void StoreBigEndian64(uint64_t u, bool invert, uint8_t* dst) {
  if (invert) u = ~u;
#if defined(__GNUC__) || defined(__clang__)
  u = __builtin_bswap64(u);
#else
  u = ((u & 0x00000000000000ffULL) << 56) | ((u & 0x000000000000ff00ULL) << 40) |
      ((u & 0x0000000000ff0000ULL) << 24) | ((u & 0x00000000ff000000ULL) << 8) |
      ((u & 0x000000ff00000000ULL) >> 8) | ((u & 0x0000ff0000000000ULL) >> 24) |
      ((u & 0x00ff000000000000ULL) >> 40) | ((u & 0xff00000000000000ULL) >> 56);
#endif
  std::memcpy(dst, &u, 8);
}

/// Append one column's key bytes for one row. `emit_marker` controls the
/// NULL marker byte (elidable only when the whole sort knows no NULLs can
/// appear in the column). DESC complements every emitted byte.
inline void AppendColumnKey(const ColumnVector& col, size_t row, bool descending,
                            bool emit_marker, std::vector<uint8_t>* out) {
  bool is_null = col.IsNull(row);
  if (emit_marker) {
    uint8_t marker = is_null ? 0x00 : 0x01;
    out->push_back(descending ? static_cast<uint8_t>(~marker) : marker);
  }
  // Dict-coded columns materialize the value through the dictionary — this
  // path feeds cross-block comparisons where codes are meaningless.
  const ColumnVector& v = col.IsDictCoded() ? *col.dict : col;
  const size_t p =
      col.IsDictCoded() ? (is_null ? 0 : static_cast<size_t>(col.ints[row])) : row;
  switch (StorageClassOf(col.type)) {
    case StorageClass::kInt64: {
      uint64_t u = is_null ? 0 : NormalizeInt64(v.ints[p]);
      PutBigEndian64(u, descending, out);
      break;
    }
    case StorageClass::kFloat64: {
      uint64_t u = is_null ? 0 : NormalizeDouble(v.doubles[p]);
      PutBigEndian64(u, descending, out);
      break;
    }
    case StorageClass::kString: {
      // Variable width: escape embedded 0x00 as {0x00, 0xFF} and terminate
      // with {0x00, 0x00} so shorter strings sort before their extensions
      // and later key columns never bleed into the comparison.
      if (!is_null) {
        const std::string& s = v.strings[p];
        for (char ch : s) {
          uint8_t b = static_cast<uint8_t>(ch);
          if (b == 0) {
            out->push_back(descending ? 0xFF : 0x00);
            out->push_back(descending ? 0x00 : 0xFF);
          } else {
            out->push_back(descending ? static_cast<uint8_t>(~b) : b);
          }
        }
        out->push_back(descending ? 0xFF : 0x00);
        out->push_back(descending ? 0xFF : 0x00);
      }
      break;
    }
  }
}

}  // namespace

void SetNormalizedKeySortEnabled(bool enabled) {
  g_normalized_keys_enabled.store(enabled, std::memory_order_relaxed);
}

bool NormalizedKeySortEnabled() {
  return g_normalized_keys_enabled.load(std::memory_order_relaxed);
}

int CompareRowsDirected(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                        const std::vector<SortKey>& keys) {
  for (const auto& key : keys) {
    int c = ColumnVector::CompareEntries(a.columns[key.column], ia,
                                         b.columns[key.column], ib);
    if (c != 0) return key.descending ? -c : c;
  }
  return 0;
}

int CompareRowsDirectedTotal(const RowBlock& a, size_t ia, const RowBlock& b,
                             size_t ib, const std::vector<SortKey>& keys) {
  for (const auto& key : keys) {
    const ColumnVector& ca = a.columns[key.column];
    const ColumnVector& cb = b.columns[key.column];
    int c;
    if (StorageClassOf(ca.type) == StorageClass::kFloat64 && !ca.IsNull(ia) &&
        !cb.IsNull(ib)) {
      uint64_t ua = NormalizeDouble(ca.doubles[ia]);
      uint64_t ub = NormalizeDouble(cb.doubles[ib]);
      c = ua < ub ? -1 : (ua > ub ? 1 : 0);
    } else {
      c = ColumnVector::CompareEntries(ca, ia, cb, ib);
    }
    if (c != 0) return key.descending ? -c : c;
  }
  return 0;
}

void BuildNormalizedKeys(const RowBlock& block, const std::vector<SortKey>& keys,
                         NormalizedKeys* out, bool allow_dict_codes) {
  size_t n = block.NumRows();
  out->bytes.clear();
  out->offsets.clear();
  out->rows = n;
  out->fixed_width = 0;
  // Resolve each key column once: a sorted-dict column may contribute its
  // codes directly (block-local callers only — code order == value order by
  // the dict_sorted contract); other dict columns materialize values into
  // scratch. `as_codes` columns encode as 9-byte ints whatever their value
  // type, so a sorted-dict string key keeps the whole key fixed-width.
  std::vector<ColumnVector> scratch;
  scratch.reserve(keys.size());
  std::vector<const ColumnVector*> cols(keys.size());
  std::vector<char> as_codes(keys.size(), 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    const ColumnVector& col = block.columns[keys[i].column];
    if (col.IsDictCoded()) {
      if (allow_dict_codes && col.dict_sorted) {
        cols[i] = &col;
        as_codes[i] = 1;
      } else {
        scratch.push_back(col.Decoded());
        cols[i] = &scratch.back();
      }
    } else {
      cols[i] = &col;
    }
  }
  bool fixed = true;
  size_t width = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!as_codes[i] && StorageClassOf(cols[i]->type) == StorageClass::kString) {
      fixed = false;
      break;
    }
    width += 9;  // marker + 8 payload bytes
  }
  if (fixed) {
    // Keys must compare across blocks (the merge kernel interleaves them),
    // so the NULL marker is always emitted even for all-valid columns.
    // Column-major fill: one type dispatch per (key, block) instead of per
    // (key, row), writing payloads with a single byteswapped store.
    out->fixed_width = width;
    out->bytes.resize(n * width);
    uint8_t* base = out->bytes.data();
    size_t key_off = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      const SortKey& key = keys[i];
      const ColumnVector& col = *cols[i];
      const bool desc = key.descending;
      const uint8_t valid_marker = desc ? static_cast<uint8_t>(~0x01) : 0x01;
      const uint8_t null_marker = desc ? static_cast<uint8_t>(~0x00) : 0x00;
      // A code column reads like an int column: the codes live in `ints`.
      const bool is_float =
          !as_codes[i] && StorageClassOf(col.type) == StorageClass::kFloat64;
      uint8_t* dst = base + key_off;
      if (col.nulls.empty()) {
        if (is_float) {
          for (size_t r = 0; r < n; ++r, dst += width) {
            dst[0] = valid_marker;
            StoreBigEndian64(NormalizeDouble(col.doubles[r]), desc, dst + 1);
          }
        } else {
          for (size_t r = 0; r < n; ++r, dst += width) {
            dst[0] = valid_marker;
            StoreBigEndian64(NormalizeInt64(col.ints[r]), desc, dst + 1);
          }
        }
      } else {
        for (size_t r = 0; r < n; ++r, dst += width) {
          if (col.nulls[r] != 0) {
            dst[0] = null_marker;
            StoreBigEndian64(0, desc, dst + 1);
          } else {
            dst[0] = valid_marker;
            uint64_t u = is_float ? NormalizeDouble(col.doubles[r])
                                  : NormalizeInt64(col.ints[r]);
            StoreBigEndian64(u, desc, dst + 1);
          }
        }
      }
      key_off += 9;
    }
    return;
  }
  out->offsets.reserve(n + 1);
  out->offsets.push_back(0);
  out->bytes.reserve(n * (keys.size() * 9 + 8));
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (as_codes[i]) {
        // Sorted-dict key in a variable-width composite: 9-byte code key.
        const ColumnVector& col = *cols[i];
        bool is_null = col.IsNull(r);
        uint8_t marker = is_null ? 0x00 : 0x01;
        out->bytes.push_back(keys[i].descending ? static_cast<uint8_t>(~marker)
                                                : marker);
        uint64_t u = is_null ? 0 : NormalizeInt64(col.ints[r]);
        PutBigEndian64(u, keys[i].descending, &out->bytes);
        continue;
      }
      AppendColumnKey(*cols[i], r, keys[i].descending,
                      /*emit_marker=*/true, &out->bytes);
    }
    out->offsets.push_back(out->bytes.size());
  }
}

void AppendNormalizedKey(const RowBlock& block, size_t row,
                         const std::vector<SortKey>& keys,
                         std::vector<uint8_t>* out) {
  for (const auto& key : keys) {
    AppendColumnKey(block.columns[key.column], row, key.descending,
                    /*emit_marker=*/true, out);
  }
}

namespace {

/// Stable LSD radix sort of fixed-width keys: one counting pass per key
/// byte, least-significant first, skipping bytes that are uniform across
/// the block (NULL markers of all-valid columns, high-order bytes of
/// small-domain ints — most of a composite key in practice). Equal keys
/// keep their input order, so the result matches a stable comparator sort.
std::vector<uint32_t> RadixSortPermutation(const NormalizedKeys& nk, size_t n) {
  const size_t w = nk.fixed_width;
  std::vector<uint32_t> perm(n), tmp(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (w == 0 || n < 2) return perm;
  // 16-bit digits taken from the key tail (a leftover leading byte becomes
  // an 8-bit digit): half the scatter passes of byte-wise LSD, and uniform
  // digits — NULL markers of all-valid columns, high-order bytes of
  // small-domain ints — skip their pass entirely after the counting sweep.
  std::vector<uint32_t> counts(size_t{1} << 16);
  const uint8_t* bytes = nk.bytes.data();
  size_t pos = w;
  while (pos > 0) {
    const size_t dsize = pos >= 2 ? 2 : 1;
    const size_t dpos = pos - dsize;
    const size_t nbuckets = dsize == 2 ? (size_t{1} << 16) : 256;
    const uint8_t* col = bytes + dpos;
    std::fill(counts.begin(), counts.begin() + nbuckets, 0);
    if (dsize == 2) {
      for (size_t r = 0; r < n; ++r) {
        const uint8_t* p = col + r * w;
        ++counts[(static_cast<size_t>(p[0]) << 8) | p[1]];
      }
    } else {
      for (size_t r = 0; r < n; ++r) ++counts[col[r * w]];
    }
    size_t first =
        dsize == 2 ? (static_cast<size_t>(col[0]) << 8) | col[1] : col[0];
    pos = dpos;
    if (counts[first] == n) continue;  // uniform digit: nothing to reorder
    uint32_t sum = 0;
    for (size_t b = 0; b < nbuckets; ++b) {
      uint32_t c = counts[b];
      counts[b] = sum;
      sum += c;
    }
    if (dsize == 2) {
      for (size_t r = 0; r < n; ++r) {
        uint32_t row = perm[r];
        const uint8_t* p = col + static_cast<size_t>(row) * w;
        tmp[counts[(static_cast<size_t>(p[0]) << 8) | p[1]]++] = row;
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        uint32_t row = perm[r];
        tmp[counts[col[static_cast<size_t>(row) * w]]++] = row;
      }
    }
    perm.swap(tmp);
  }
  return perm;
}

}  // namespace

std::vector<uint32_t> ComputeSortPermutationDirected(const RowBlock& block,
                                                     const std::vector<SortKey>& keys) {
  std::vector<uint32_t> perm(block.NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  if (!NormalizedKeySortEnabled()) {
    std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      return CompareRowsDirected(block, a, block, b, keys) < 0;
    });
    return perm;
  }
  NormalizedKeys nk;
  // Block-local sort: sorted-dict key columns may sort by code directly.
  BuildNormalizedKeys(block, keys, &nk, /*allow_dict_codes=*/true);
  // Threshold balances the per-pass 65536-entry histogram against the
  // comparison sort's n·log n memcmps — below it the fills dominate.
  if (nk.offsets.empty() && perm.size() >= 4096) {
    return RadixSortPermutation(nk, perm.size());
  }
  if (!nk.offsets.empty()) {
    // Variable-width keys: sort fat items carrying an inline 8-byte key
    // prefix. Most comparisons resolve on the prefix with one contiguous
    // load; only prefix ties touch the key arena.
    struct Item {
      uint64_t prefix;
      uint32_t offset;
      uint32_t len;
      uint32_t idx;
    };
    std::vector<Item> items(perm.size());
    for (size_t r = 0; r < items.size(); ++r) {
      const uint8_t* p = nk.Data(r);
      size_t len = nk.Length(r);
      uint8_t buf[8] = {0};
      std::memcpy(buf, p, len < 8 ? len : 8);
      uint64_t prefix = 0;
      for (int i = 0; i < 8; ++i) prefix = (prefix << 8) | buf[i];
      items[r] = {prefix, static_cast<uint32_t>(nk.offsets[r]),
                  static_cast<uint32_t>(len), static_cast<uint32_t>(r)};
    }
    const uint8_t* bytes = nk.bytes.data();
    std::sort(items.begin(), items.end(), [bytes](const Item& a, const Item& b) {
      if (a.prefix != b.prefix) return a.prefix < b.prefix;
      if (a.len > 8 || b.len > 8) {
        int c = NormalizedKeys::CompareSlices(bytes + a.offset, a.len,
                                              bytes + b.offset, b.len);
        if (c != 0) return c < 0;
      }
      return a.idx < b.idx;  // index tie-break keeps the sort stable
    });
    for (size_t r = 0; r < items.size(); ++r) perm[r] = items[r].idx;
    return perm;
  }
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    int c = nk.Compare(a, b);
    if (c != 0) return c < 0;
    return a < b;  // index tie-break keeps the sort stable
  });
  return perm;
}

std::vector<uint32_t> ComputeSortPermutation(const RowBlock& block,
                                             const std::vector<uint32_t>& key_columns) {
  std::vector<SortKey> keys;
  keys.reserve(key_columns.size());
  for (uint32_t k : key_columns) keys.push_back({k, false});
  return ComputeSortPermutationDirected(block, keys);
}

RowBlock ApplyPermutation(const RowBlock& block, const std::vector<uint32_t>& perm) {
  RowBlock out;
  out.columns.reserve(block.NumColumns());
  for (const auto& col : block.columns) {
    ColumnVector oc(col.type);
    oc.AppendGather(col, perm);
    out.columns.push_back(std::move(oc));
  }
  return out;
}

int CompareRows(const RowBlock& a, size_t ia, const RowBlock& b, size_t ib,
                const std::vector<uint32_t>& keys_a,
                const std::vector<uint32_t>& keys_b) {
  for (size_t k = 0; k < keys_a.size(); ++k) {
    int c = ColumnVector::CompareEntries(a.columns[keys_a[k]], ia, b.columns[keys_b[k]],
                                         ib);
    if (c != 0) return c;
  }
  return 0;
}

bool IsSorted(const RowBlock& block, const std::vector<uint32_t>& key_columns) {
  size_t n = block.NumRows();
  for (size_t i = 1; i < n; ++i) {
    if (CompareRows(block, i - 1, block, i, key_columns, key_columns) > 0) return false;
  }
  return true;
}

}  // namespace stratica
