#include "storage/encoding.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/bitutil.h"
#include "storage/huffman.h"

namespace stratica {

const char* EncodingName(EncodingId id) {
  switch (id) {
    case EncodingId::kAuto: return "AUTO";
    case EncodingId::kPlain: return "PLAIN";
    case EncodingId::kRle: return "RLE";
    case EncodingId::kDeltaValue: return "DELTAVAL";
    case EncodingId::kBlockDict: return "BLOCK_DICT";
    case EncodingId::kCompressedDeltaRange: return "DELTARANGE_COMP";
    case EncodingId::kCompressedCommonDelta: return "COMMONDELTA_COMP";
  }
  return "UNKNOWN";
}

Result<EncodingId> EncodingFromName(const std::string& name) {
  std::string up;
  for (char c : name) up.push_back(static_cast<char>(std::toupper(c)));
  if (up == "AUTO") return EncodingId::kAuto;
  if (up == "PLAIN" || up == "NONE") return EncodingId::kPlain;
  if (up == "RLE") return EncodingId::kRle;
  if (up == "DELTAVAL") return EncodingId::kDeltaValue;
  if (up == "BLOCK_DICT" || up == "BLOCKDICT") return EncodingId::kBlockDict;
  if (up == "DELTARANGE_COMP" || up == "DELTARANGE")
    return EncodingId::kCompressedDeltaRange;
  if (up == "COMMONDELTA_COMP" || up == "COMMONDELTA")
    return EncodingId::kCompressedCommonDelta;
  return Status::AnalysisError("unknown encoding: ", name);
}

bool EncodingSupports(EncodingId enc, StorageClass sc) {
  switch (enc) {
    case EncodingId::kAuto:
    case EncodingId::kPlain:
    case EncodingId::kRle:
    case EncodingId::kBlockDict:
      return true;
    case EncodingId::kDeltaValue:
    case EncodingId::kCompressedCommonDelta:
      return sc == StorageClass::kInt64;
    case EncodingId::kCompressedDeltaRange:
      return sc != StorageClass::kString;
  }
  return false;
}

namespace {

// Order-preserving bijection between doubles and uint64 (sign-flip
// transform); lets delta encodings treat sorted doubles as sorted ints.
uint64_t DoubleToOrderedKey(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return (bits & 0x8000000000000000ULL) ? ~bits : bits | 0x8000000000000000ULL;
}
double OrderedKeyToDouble(uint64_t key) {
  uint64_t bits = (key & 0x8000000000000000ULL) ? key & 0x7fffffffffffffffULL : ~key;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void AppendNullSection(std::string* out, const ColumnVector& col, size_t start,
                       size_t count) {
  bool any = false;
  for (size_t i = 0; i < count && !any; ++i) any = col.IsNull(start + i);
  out->push_back(any ? 1 : 0);
  if (!any) return;
  size_t bytes = (count + 7) / 8;
  size_t base = out->size();
  out->append(bytes, '\0');
  for (size_t i = 0; i < count; ++i) {
    if (col.IsNull(start + i)) (*out)[base + i / 8] |= static_cast<char>(1 << (i % 8));
  }
}

Status ReadNullSection(const std::string& data, size_t* offset, size_t count,
                       std::vector<uint8_t>* nulls) {
  if (*offset >= data.size()) return Status::Corruption("block: missing null flag");
  uint8_t any = static_cast<uint8_t>(data[(*offset)++]);
  nulls->clear();
  if (!any) return Status::OK();
  size_t bytes = (count + 7) / 8;
  if (*offset + bytes > data.size()) return Status::Corruption("block: truncated nulls");
  nulls->resize(count);
  for (size_t i = 0; i < count; ++i)
    (*nulls)[i] = (data[*offset + i / 8] >> (i % 8)) & 1;
  *offset += bytes;
  return Status::OK();
}

// --- per-storage-class scalar serializers ---------------------------------
void PutScalar(std::string* out, const ColumnVector& col, size_t i) {
  switch (StorageClassOf(col.type)) {
    case StorageClass::kInt64: PutVarint64(out, ZigZagEncode(col.ints[i])); break;
    case StorageClass::kFloat64: PutFixed(out, col.doubles[i]); break;
    case StorageClass::kString:
      PutVarint64(out, col.strings[i].size());
      out->append(col.strings[i]);
      break;
  }
}

Status GetScalar(const std::string& data, size_t* offset, ColumnVector* out) {
  switch (StorageClassOf(out->type)) {
    case StorageClass::kInt64: {
      uint64_t zz;
      if (!GetVarint64(data, offset, &zz)) return Status::Corruption("bad int scalar");
      out->ints.push_back(ZigZagDecode(zz));
      return Status::OK();
    }
    case StorageClass::kFloat64: {
      double d;
      if (!GetFixed(data, offset, &d)) return Status::Corruption("bad float scalar");
      out->doubles.push_back(d);
      return Status::OK();
    }
    case StorageClass::kString: {
      uint64_t len;
      if (!GetVarint64(data, offset, &len) || *offset + len > data.size())
        return Status::Corruption("bad string scalar");
      out->strings.emplace_back(data, *offset, len);
      *offset += len;
      return Status::OK();
    }
  }
  return Status::Internal("bad storage class");
}

// --- encoders ---------------------------------------------------------------

Status EncodePlain(const ColumnVector& col, size_t start, size_t count,
                   std::string* out) {
  switch (StorageClassOf(col.type)) {
    case StorageClass::kInt64:
      out->append(reinterpret_cast<const char*>(col.ints.data() + start),
                  count * sizeof(int64_t));
      break;
    case StorageClass::kFloat64:
      out->append(reinterpret_cast<const char*>(col.doubles.data() + start),
                  count * sizeof(double));
      break;
    case StorageClass::kString:
      for (size_t i = 0; i < count; ++i) {
        PutVarint64(out, col.strings[start + i].size());
        out->append(col.strings[start + i]);
      }
      break;
  }
  return Status::OK();
}

Status EncodeRle(const ColumnVector& col, size_t start, size_t count, std::string* out) {
  // Count runs of equal adjacent values (nulls already normalized to 0/"").
  std::string body;
  uint64_t num_runs = 0;
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count &&
           ColumnVector::CompareEntries(col, start + i, col, start + j) == 0 &&
           col.IsNull(start + i) == col.IsNull(start + j)) {
      ++j;
    }
    PutScalar(&body, col, start + i);
    PutVarint64(&body, j - i);
    ++num_runs;
    i = j;
  }
  PutVarint64(out, num_runs);
  out->append(body);
  return Status::OK();
}

Status EncodeDeltaValue(const ColumnVector& col, size_t start, size_t count,
                        std::string* out) {
  int64_t min = col.ints[start];
  uint64_t max_delta = 0;
  for (size_t i = 0; i < count; ++i) min = std::min(min, col.ints[start + i]);
  // Deltas computed in uint64 (mod 2^64) to avoid signed overflow on
  // full-range data.
  for (size_t i = 0; i < count; ++i) {
    uint64_t d = static_cast<uint64_t>(col.ints[start + i]) - static_cast<uint64_t>(min);
    max_delta = std::max(max_delta, d);
  }
  int width = BitsRequired(max_delta);
  PutVarint64(out, ZigZagEncode(min));
  out->push_back(static_cast<char>(width));
  if (width > 0) {
    BitPacker packer(width);
    for (size_t i = 0; i < count; ++i)
      packer.Append(static_cast<uint64_t>(col.ints[start + i]) -
                    static_cast<uint64_t>(min));
    out->append(packer.Finish());
  }
  return Status::OK();
}

// Dictionary build shared by BlockDict encode and the Auto chooser's
// cardinality guard. Returns false if distinct count exceeds `limit`.
template <typename T>
bool BuildDict(const std::vector<T>& values, size_t start, size_t count, size_t limit,
               std::vector<T>* dict, std::vector<uint32_t>* indexes) {
  std::unordered_map<T, uint32_t> map;
  map.reserve(std::min(count, limit * 2));
  indexes->resize(count);
  for (size_t i = 0; i < count; ++i) {
    auto [it, inserted] = map.emplace(values[start + i], static_cast<uint32_t>(dict->size()));
    if (inserted) {
      dict->push_back(values[start + i]);
      if (dict->size() > limit) return false;
    }
    (*indexes)[i] = it->second;
  }
  return true;
}

constexpr size_t kDictLimit = 16384;

// Sort a freshly built dictionary and remap the per-row indexes so stored
// code order == value order. Paying the d·log d once at encode time lets
// every EncodedBlockView reader skip its own sort + full code remap
// (DESIGN.md §13); the on-disk format is unchanged (readers that expand
// never cared about dictionary order).
template <typename T>
bool DictLess(const T& a, const T& b) {
  return a < b;
}
// Doubles need a total order (std::sort on raw NaNs is undefined): NaNs
// sort after every number and tie with each other.
inline bool DictLess(double a, double b) {
  if (std::isnan(b)) return !std::isnan(a);
  if (std::isnan(a)) return false;
  return a < b;
}

template <typename T>
void SortDictAndRemap(std::vector<T>* dict, std::vector<uint32_t>* indexes) {
  size_t d = dict->size();
  std::vector<uint32_t> perm(d);
  for (size_t i = 0; i < d; ++i) perm[i] = static_cast<uint32_t>(i);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return DictLess((*dict)[a], (*dict)[b]);
  });
  std::vector<T> sorted;
  sorted.reserve(d);
  std::vector<uint32_t> rank(d);
  for (size_t i = 0; i < d; ++i) {
    rank[perm[i]] = static_cast<uint32_t>(i);
    sorted.push_back(std::move((*dict)[perm[i]]));
  }
  *dict = std::move(sorted);
  for (auto& idx : *indexes) idx = rank[idx];
}

Status EncodeBlockDict(const ColumnVector& col, size_t start, size_t count,
                       std::string* out, bool* feasible) {
  std::vector<uint32_t> indexes;
  std::string dict_body;
  uint64_t dict_size = 0;
  *feasible = true;
  switch (StorageClassOf(col.type)) {
    case StorageClass::kInt64: {
      std::vector<int64_t> dict;
      if (!BuildDict(col.ints, start, count, kDictLimit, &dict, &indexes)) {
        *feasible = false;
        return Status::OK();
      }
      SortDictAndRemap(&dict, &indexes);
      dict_size = dict.size();
      for (int64_t v : dict) PutVarint64(&dict_body, ZigZagEncode(v));
      break;
    }
    case StorageClass::kFloat64: {
      std::vector<double> dict;
      if (!BuildDict(col.doubles, start, count, kDictLimit, &dict, &indexes)) {
        *feasible = false;
        return Status::OK();
      }
      SortDictAndRemap(&dict, &indexes);
      dict_size = dict.size();
      for (double v : dict) PutFixed(&dict_body, v);
      break;
    }
    case StorageClass::kString: {
      std::vector<std::string> dict;
      if (!BuildDict(col.strings, start, count, kDictLimit, &dict, &indexes)) {
        *feasible = false;
        return Status::OK();
      }
      SortDictAndRemap(&dict, &indexes);
      dict_size = dict.size();
      for (const auto& v : dict) {
        PutVarint64(&dict_body, v.size());
        dict_body.append(v);
      }
      break;
    }
  }
  PutVarint64(out, dict_size);
  out->append(dict_body);
  int width = BitsRequired(dict_size > 0 ? dict_size - 1 : 0);
  out->push_back(static_cast<char>(width));
  if (width > 0) {
    BitPacker packer(width);
    for (uint32_t idx : indexes) packer.Append(idx);
    out->append(packer.Finish());
  }
  return Status::OK();
}

Status EncodeDeltaRange(const ColumnVector& col, size_t start, size_t count,
                        std::string* out) {
  if (StorageClassOf(col.type) == StorageClass::kInt64) {
    PutVarint64(out, ZigZagEncode(col.ints[start]));
    for (size_t i = 1; i < count; ++i) {
      // Mod-2^64 delta avoids signed overflow on full-range data.
      uint64_t d = static_cast<uint64_t>(col.ints[start + i]) -
                   static_cast<uint64_t>(col.ints[start + i - 1]);
      PutVarint64(out, ZigZagEncode(static_cast<int64_t>(d)));
    }
  } else {
    uint64_t prev = DoubleToOrderedKey(col.doubles[start]);
    PutFixed(out, prev);
    for (size_t i = 1; i < count; ++i) {
      uint64_t key = DoubleToOrderedKey(col.doubles[start + i]);
      PutVarint64(out, ZigZagEncode(static_cast<int64_t>(key - prev)));
      prev = key;
    }
  }
  return Status::OK();
}

Status EncodeCommonDelta(const ColumnVector& col, size_t start, size_t count,
                         std::string* out, bool* feasible) {
  *feasible = true;
  PutVarint64(out, ZigZagEncode(col.ints[start]));
  if (count <= 1) {
    PutVarint64(out, 0);  // empty delta dictionary
    return Status::OK();
  }
  // Dictionary of distinct deltas.
  std::unordered_map<int64_t, uint32_t> map;
  std::vector<int64_t> dict;
  std::vector<uint32_t> symbols(count - 1);
  for (size_t i = 1; i < count; ++i) {
    int64_t d = static_cast<int64_t>(static_cast<uint64_t>(col.ints[start + i]) -
                                     static_cast<uint64_t>(col.ints[start + i - 1]));
    auto [it, inserted] = map.emplace(d, static_cast<uint32_t>(dict.size()));
    if (inserted) {
      dict.push_back(d);
      if (dict.size() > kDictLimit) {
        *feasible = false;
        return Status::OK();
      }
    }
    symbols[i - 1] = it->second;
  }
  PutVarint64(out, dict.size());
  for (int64_t d : dict) PutVarint64(out, ZigZagEncode(d));
  return HuffmanEncode(symbols, static_cast<uint32_t>(dict.size()), out);
}

// --- decoders ---------------------------------------------------------------

Status DecodePlain(const std::string& data, size_t* offset, size_t count,
                   ColumnVector* out) {
  if (count == 0) return Status::OK();  // memcpy from an empty vector is UB
  switch (StorageClassOf(out->type)) {
    case StorageClass::kInt64: {
      size_t bytes = count * sizeof(int64_t);
      if (*offset + bytes > data.size()) return Status::Corruption("plain: truncated");
      size_t old = out->ints.size();
      out->ints.resize(old + count);
      std::memcpy(out->ints.data() + old, data.data() + *offset, bytes);
      *offset += bytes;
      return Status::OK();
    }
    case StorageClass::kFloat64: {
      size_t bytes = count * sizeof(double);
      if (*offset + bytes > data.size()) return Status::Corruption("plain: truncated");
      size_t old = out->doubles.size();
      out->doubles.resize(old + count);
      std::memcpy(out->doubles.data() + old, data.data() + *offset, bytes);
      *offset += bytes;
      return Status::OK();
    }
    case StorageClass::kString:
      for (size_t i = 0; i < count; ++i) {
        uint64_t len;
        if (!GetVarint64(data, offset, &len) || *offset + len > data.size())
          return Status::Corruption("plain: bad string");
        out->strings.emplace_back(data, *offset, len);
        *offset += len;
      }
      return Status::OK();
  }
  return Status::Internal("bad storage class");
}

Status DecodeRle(const std::string& data, size_t* offset, ColumnVector* out,
                 bool keep_runs) {
  uint64_t num_runs;
  if (!GetVarint64(data, offset, &num_runs)) return Status::Corruption("rle: bad header");
  for (uint64_t r = 0; r < num_runs; ++r) {
    STRATICA_RETURN_NOT_OK(GetScalar(data, offset, out));
    uint64_t run_len;
    if (!GetVarint64(data, offset, &run_len)) return Status::Corruption("rle: bad run");
    if (keep_runs) {
      if (out->runs.size() + 1 < out->PhysicalSize())
        out->runs.resize(out->PhysicalSize() - 1, 1);
      out->runs.push_back(static_cast<uint32_t>(run_len));
    } else {
      // Expand: the scalar was appended once; append run_len-1 more copies.
      for (uint64_t k = 1; k < run_len; ++k) {
        switch (StorageClassOf(out->type)) {
          case StorageClass::kInt64: out->ints.push_back(out->ints.back()); break;
          case StorageClass::kFloat64: out->doubles.push_back(out->doubles.back()); break;
          case StorageClass::kString: out->strings.push_back(out->strings.back()); break;
        }
      }
    }
  }
  return Status::OK();
}

Status DecodeDeltaValue(const std::string& data, size_t* offset, size_t count,
                        ColumnVector* out) {
  uint64_t zz;
  if (!GetVarint64(data, offset, &zz)) return Status::Corruption("deltaval: bad min");
  int64_t min = ZigZagDecode(zz);
  if (*offset >= data.size()) return Status::Corruption("deltaval: bad width");
  int width = static_cast<uint8_t>(data[(*offset)++]);
  if (width == 0) {
    out->ints.insert(out->ints.end(), count, min);
    return Status::OK();
  }
  BitUnpacker unpacker(data, *offset, width);
  for (size_t i = 0; i < count; ++i)
    out->ints.push_back(
        static_cast<int64_t>(static_cast<uint64_t>(min) + unpacker.Next()));
  *offset = unpacker.position();
  return Status::OK();
}

// Shared BlockDict header parse (dictionary + index bit width) and entry
// emission, used by the full and the selective decoder so the layout and
// the bounds-checked dispatch each live in one place.
Status ParseDictHeader(const std::string& data, size_t* offset, ColumnVector* dict,
                       uint64_t* dict_size, int* width) {
  if (!GetVarint64(data, offset, dict_size)) return Status::Corruption("dict: bad size");
  for (uint64_t i = 0; i < *dict_size; ++i)
    STRATICA_RETURN_NOT_OK(GetScalar(data, offset, dict));
  if (*offset >= data.size()) return Status::Corruption("dict: bad width");
  *width = static_cast<uint8_t>(data[(*offset)++]);
  return Status::OK();
}

Status EmitDictEntry(const ColumnVector& dict, uint64_t idx, ColumnVector* out) {
  if (idx >= dict.PhysicalSize()) return Status::Corruption("dict: index out of range");
  switch (StorageClassOf(out->type)) {
    case StorageClass::kInt64: out->ints.push_back(dict.ints[idx]); break;
    case StorageClass::kFloat64: out->doubles.push_back(dict.doubles[idx]); break;
    case StorageClass::kString: out->strings.push_back(dict.strings[idx]); break;
  }
  return Status::OK();
}

Status DecodeBlockDict(const std::string& data, size_t* offset, size_t count,
                       ColumnVector* out) {
  uint64_t dict_size;
  ColumnVector dict(out->type);
  int width;
  STRATICA_RETURN_NOT_OK(ParseDictHeader(data, offset, &dict, &dict_size, &width));
  if (width == 0) {
    for (size_t i = 0; i < count; ++i) STRATICA_RETURN_NOT_OK(EmitDictEntry(dict, 0, out));
    return Status::OK();
  }
  BitUnpacker unpacker(data, *offset, width);
  for (size_t i = 0; i < count; ++i)
    STRATICA_RETURN_NOT_OK(EmitDictEntry(dict, unpacker.Next(), out));
  *offset = unpacker.position();
  return Status::OK();
}

Status DecodeDeltaRange(const std::string& data, size_t* offset, size_t count,
                        ColumnVector* out) {
  if (StorageClassOf(out->type) == StorageClass::kInt64) {
    uint64_t zz;
    if (!GetVarint64(data, offset, &zz)) return Status::Corruption("deltarange: bad first");
    int64_t prev = ZigZagDecode(zz);
    out->ints.push_back(prev);
    for (size_t i = 1; i < count; ++i) {
      if (!GetVarint64(data, offset, &zz))
        return Status::Corruption("deltarange: bad delta");
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(ZigZagDecode(zz)));
      out->ints.push_back(prev);
    }
  } else {
    uint64_t prev;
    if (!GetFixed(data, offset, &prev)) return Status::Corruption("deltarange: bad first");
    out->doubles.push_back(OrderedKeyToDouble(prev));
    for (size_t i = 1; i < count; ++i) {
      uint64_t zz;
      if (!GetVarint64(data, offset, &zz))
        return Status::Corruption("deltarange: bad delta");
      prev += static_cast<uint64_t>(ZigZagDecode(zz));
      out->doubles.push_back(OrderedKeyToDouble(prev));
    }
  }
  return Status::OK();
}

Status DecodeCommonDelta(const std::string& data, size_t* offset, size_t count,
                         ColumnVector* out) {
  uint64_t zz;
  if (!GetVarint64(data, offset, &zz)) return Status::Corruption("commondelta: bad first");
  int64_t value = ZigZagDecode(zz);
  out->ints.push_back(value);
  uint64_t dict_size;
  if (!GetVarint64(data, offset, &dict_size))
    return Status::Corruption("commondelta: bad dict");
  if (count <= 1) return Status::OK();
  std::vector<int64_t> dict(dict_size);
  for (auto& d : dict) {
    if (!GetVarint64(data, offset, &zz))
      return Status::Corruption("commondelta: bad dict entry");
    d = ZigZagDecode(zz);
  }
  std::vector<uint32_t> symbols;
  STRATICA_RETURN_NOT_OK(HuffmanDecode(data, offset, &symbols));
  if (symbols.size() != count - 1) return Status::Corruption("commondelta: count mismatch");
  for (uint32_t s : symbols) {
    if (s >= dict.size()) return Status::Corruption("commondelta: bad symbol");
    value = static_cast<int64_t>(static_cast<uint64_t>(value) +
                                 static_cast<uint64_t>(dict[s]));
    out->ints.push_back(value);
  }
  return Status::OK();
}

// --- selective decoders (late materialization, DESIGN.md §7) ----------------
//
// Each mirrors its full decoder but materializes only entries with
// sel[i] != 0. Sequentially-dependent encodings (delta chains) still walk
// the stream, but stop doing arithmetic after the last selected position and
// never append dead values; positionally-addressable encodings (plain
// scalars, bit-packed slots) touch only the selected slots.

/// Advance past one LEB128 varint without decoding it.
bool SkipVarint(const std::string& data, size_t* offset) {
  while (*offset < data.size()) {
    bool more = (static_cast<uint8_t>(data[*offset]) & 0x80) != 0;
    ++*offset;
    if (!more) return true;
  }
  return false;
}

/// Index of the last set entry, or SIZE_MAX when none are.
size_t LastSelected(const std::vector<uint8_t>& sel) {
  for (size_t i = sel.size(); i > 0; --i) {
    if (sel[i - 1]) return i - 1;
  }
  return SIZE_MAX;
}

Status DecodePlainSelected(const std::string& data, size_t* offset, size_t count,
                           const std::vector<uint8_t>& sel, ColumnVector* out) {
  switch (StorageClassOf(out->type)) {
    case StorageClass::kInt64: {
      size_t bytes = count * sizeof(int64_t);
      if (*offset + bytes > data.size()) return Status::Corruption("plain: truncated");
      const char* base = data.data() + *offset;
      for (size_t i = 0; i < count; ++i) {
        if (!sel[i]) continue;
        int64_t v;
        std::memcpy(&v, base + i * sizeof(int64_t), sizeof(v));
        out->ints.push_back(v);
      }
      *offset += bytes;
      return Status::OK();
    }
    case StorageClass::kFloat64: {
      size_t bytes = count * sizeof(double);
      if (*offset + bytes > data.size()) return Status::Corruption("plain: truncated");
      const char* base = data.data() + *offset;
      for (size_t i = 0; i < count; ++i) {
        if (!sel[i]) continue;
        double v;
        std::memcpy(&v, base + i * sizeof(double), sizeof(v));
        out->doubles.push_back(v);
      }
      *offset += bytes;
      return Status::OK();
    }
    case StorageClass::kString:
      // Unselected strings are skipped by length — their bytes are never
      // copied out of the block buffer.
      for (size_t i = 0; i < count; ++i) {
        uint64_t len;
        if (!GetVarint64(data, offset, &len) || *offset + len > data.size())
          return Status::Corruption("plain: bad string");
        if (sel[i]) out->strings.emplace_back(data, *offset, len);
        *offset += len;
      }
      return Status::OK();
  }
  return Status::Internal("bad storage class");
}

Status DecodeRleSelected(const std::string& data, size_t* offset, size_t count,
                         const std::vector<uint8_t>& sel, ColumnVector* out) {
  uint64_t num_runs;
  if (!GetVarint64(data, offset, &num_runs)) return Status::Corruption("rle: bad header");
  StorageClass sc = StorageClassOf(out->type);
  size_t pos = 0;
  for (uint64_t r = 0; r < num_runs; ++r) {
    // Read the run value lazily: strings are only constructed when at least
    // one row of the run survives.
    int64_t iv = 0;
    double dv = 0;
    size_t str_at = 0;
    uint64_t str_len = 0;
    switch (sc) {
      case StorageClass::kInt64: {
        uint64_t zz;
        if (!GetVarint64(data, offset, &zz)) return Status::Corruption("rle: bad value");
        iv = ZigZagDecode(zz);
        break;
      }
      case StorageClass::kFloat64:
        if (!GetFixed(data, offset, &dv)) return Status::Corruption("rle: bad value");
        break;
      case StorageClass::kString:
        if (!GetVarint64(data, offset, &str_len) || *offset + str_len > data.size())
          return Status::Corruption("rle: bad value");
        str_at = *offset;
        *offset += str_len;
        break;
    }
    uint64_t run_len;
    if (!GetVarint64(data, offset, &run_len)) return Status::Corruption("rle: bad run");
    if (pos + run_len > count) return Status::Corruption("rle: run overflows block");
    size_t take = 0;
    for (size_t i = 0; i < run_len; ++i) take += sel[pos + i] != 0;
    if (take > 0) {  // dead runs are skipped wholesale
      switch (sc) {
        case StorageClass::kInt64: out->ints.insert(out->ints.end(), take, iv); break;
        case StorageClass::kFloat64:
          out->doubles.insert(out->doubles.end(), take, dv);
          break;
        case StorageClass::kString:
          out->strings.insert(out->strings.end(), take,
                              std::string(data, str_at, str_len));
          break;
      }
    }
    pos += run_len;
  }
  if (pos != count) return Status::Corruption("rle: row count mismatch");
  return Status::OK();
}

Status DecodeDeltaValueSelected(const std::string& data, size_t* offset, size_t count,
                                const std::vector<uint8_t>& sel, ColumnVector* out) {
  uint64_t zz;
  if (!GetVarint64(data, offset, &zz)) return Status::Corruption("deltaval: bad min");
  int64_t min = ZigZagDecode(zz);
  if (*offset >= data.size()) return Status::Corruption("deltaval: bad width");
  int width = static_cast<uint8_t>(data[(*offset)++]);
  if (width == 0) {
    size_t take = 0;
    for (uint8_t s : sel) take += s != 0;
    out->ints.insert(out->ints.end(), take, min);
    return Status::OK();
  }
  size_t payload = PackedBytes(count, width);
  if (*offset + payload > data.size()) return Status::Corruption("deltaval: truncated");
  const char* base = data.data() + *offset;
  for (size_t i = 0; i < count; ++i) {  // bit-unpacks only the selected slots
    if (!sel[i]) continue;
    out->ints.push_back(static_cast<int64_t>(
        static_cast<uint64_t>(min) +
        ReadPackedBits(base, i * static_cast<size_t>(width), width)));
  }
  *offset += payload;
  return Status::OK();
}

Status DecodeBlockDictSelected(const std::string& data, size_t* offset, size_t count,
                               const std::vector<uint8_t>& sel, ColumnVector* out) {
  uint64_t dict_size;
  ColumnVector dict(out->type);
  int width;
  STRATICA_RETURN_NOT_OK(ParseDictHeader(data, offset, &dict, &dict_size, &width));
  if (width == 0) {
    for (size_t i = 0; i < count; ++i) {
      if (sel[i]) STRATICA_RETURN_NOT_OK(EmitDictEntry(dict, 0, out));
    }
    return Status::OK();
  }
  size_t payload = PackedBytes(count, width);
  if (*offset + payload > data.size()) return Status::Corruption("dict: truncated");
  const char* base = data.data() + *offset;
  for (size_t i = 0; i < count; ++i) {  // materializes only selected codes
    if (!sel[i]) continue;
    STRATICA_RETURN_NOT_OK(EmitDictEntry(
        dict, ReadPackedBits(base, i * static_cast<size_t>(width), width), out));
  }
  *offset += payload;
  return Status::OK();
}

Status DecodeDeltaRangeSelected(const std::string& data, size_t* offset, size_t count,
                                const std::vector<uint8_t>& sel, ColumnVector* out) {
  size_t last = LastSelected(sel);
  size_t i = 1;
  if (StorageClassOf(out->type) == StorageClass::kInt64) {
    uint64_t zz;
    if (!GetVarint64(data, offset, &zz)) return Status::Corruption("deltarange: bad first");
    int64_t prev = ZigZagDecode(zz);
    if (count > 0 && sel[0]) out->ints.push_back(prev);
    for (; last != SIZE_MAX && i <= last; ++i) {
      if (!GetVarint64(data, offset, &zz))
        return Status::Corruption("deltarange: bad delta");
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(ZigZagDecode(zz)));
      if (sel[i]) out->ints.push_back(prev);
    }
  } else {
    uint64_t prev;
    if (!GetFixed(data, offset, &prev)) return Status::Corruption("deltarange: bad first");
    if (count > 0 && sel[0]) out->doubles.push_back(OrderedKeyToDouble(prev));
    for (; last != SIZE_MAX && i <= last; ++i) {
      uint64_t zz;
      if (!GetVarint64(data, offset, &zz))
        return Status::Corruption("deltarange: bad delta");
      prev += static_cast<uint64_t>(ZigZagDecode(zz));
      if (sel[i]) out->doubles.push_back(OrderedKeyToDouble(prev));
    }
  }
  // Past the last selected position the deltas are dead weight: skip their
  // varint bytes without zigzag/accumulate work.
  for (; i < count; ++i) {
    if (!SkipVarint(data, offset)) return Status::Corruption("deltarange: bad delta");
  }
  return Status::OK();
}

Status DecodeCommonDeltaSelected(const std::string& data, size_t* offset, size_t count,
                                 const std::vector<uint8_t>& sel, ColumnVector* out) {
  uint64_t zz;
  if (!GetVarint64(data, offset, &zz)) return Status::Corruption("commondelta: bad first");
  int64_t value = ZigZagDecode(zz);
  if (count > 0 && sel[0]) out->ints.push_back(value);
  uint64_t dict_size;
  if (!GetVarint64(data, offset, &dict_size))
    return Status::Corruption("commondelta: bad dict");
  if (count <= 1) return Status::OK();
  std::vector<int64_t> dict(dict_size);
  for (auto& d : dict) {
    if (!GetVarint64(data, offset, &zz))
      return Status::Corruption("commondelta: bad dict entry");
    d = ZigZagDecode(zz);
  }
  // The entropy stream must be decoded in full (prefix codes have no random
  // access), but accumulation stops after the last selected row.
  std::vector<uint32_t> symbols;
  STRATICA_RETURN_NOT_OK(HuffmanDecode(data, offset, &symbols));
  if (symbols.size() != count - 1) return Status::Corruption("commondelta: count mismatch");
  size_t last = LastSelected(sel);
  for (size_t r = 1; last != SIZE_MAX && r <= last; ++r) {
    uint32_t s = symbols[r - 1];
    if (s >= dict.size()) return Status::Corruption("commondelta: bad symbol");
    value = static_cast<int64_t>(static_cast<uint64_t>(value) +
                                 static_cast<uint64_t>(dict[s]));
    if (sel[r]) out->ints.push_back(value);
  }
  return Status::OK();
}

Status EncodeWith(EncodingId enc, const ColumnVector& col, size_t start, size_t count,
                  std::string* out, bool* feasible) {
  *feasible = true;
  switch (enc) {
    case EncodingId::kPlain: return EncodePlain(col, start, count, out);
    case EncodingId::kRle: return EncodeRle(col, start, count, out);
    case EncodingId::kDeltaValue: return EncodeDeltaValue(col, start, count, out);
    case EncodingId::kBlockDict: return EncodeBlockDict(col, start, count, out, feasible);
    case EncodingId::kCompressedDeltaRange:
      return EncodeDeltaRange(col, start, count, out);
    case EncodingId::kCompressedCommonDelta:
      return EncodeCommonDelta(col, start, count, out, feasible);
    case EncodingId::kAuto: return Status::Internal("kAuto must be resolved by caller");
  }
  return Status::Internal("unknown encoding");
}

}  // namespace

Status EncodeBlock(EncodingId enc, const ColumnVector& col, size_t start, size_t count,
                   std::string* out) {
  if (col.IsRle()) return Status::Internal("EncodeBlock requires a flat column");
  std::string header;
  PutVarint64(&header, count);
  AppendNullSection(&header, col, start, count);

  if (count == 0) {
    out->push_back(static_cast<char>(EncodingId::kPlain));
    out->append(header);
    return Status::OK();
  }

  if (enc != EncodingId::kAuto) {
    bool feasible = true;
    std::string payload;
    STRATICA_RETURN_NOT_OK(EncodeWith(enc, col, start, count, &payload, &feasible));
    if (!feasible) {
      // Cardinality guard tripped: fall back to plain rather than exploding.
      payload.clear();
      enc = EncodingId::kPlain;
      STRATICA_RETURN_NOT_OK(EncodeWith(enc, col, start, count, &payload, &feasible));
    }
    out->push_back(static_cast<char>(enc));
    out->append(header);
    out->append(payload);
    return Status::OK();
  }

  // Auto: try every supported encoding, keep the smallest (the paper's DBD
  // performs the same empirical selection during storage optimization).
  static const EncodingId kCandidates[] = {
      EncodingId::kRle,
      EncodingId::kDeltaValue,
      EncodingId::kBlockDict,
      EncodingId::kCompressedDeltaRange,
      EncodingId::kCompressedCommonDelta,
      EncodingId::kPlain,
  };
  std::string best;
  EncodingId best_enc = EncodingId::kPlain;
  for (EncodingId cand : kCandidates) {
    if (!EncodingSupports(cand, StorageClassOf(col.type))) continue;
    std::string payload;
    bool feasible = true;
    STRATICA_RETURN_NOT_OK(EncodeWith(cand, col, start, count, &payload, &feasible));
    if (!feasible) continue;
    if (best.empty() || payload.size() < best.size()) {
      best = std::move(payload);
      best_enc = cand;
    }
  }
  out->push_back(static_cast<char>(best_enc));
  out->append(header);
  out->append(best);
  return Status::OK();
}

namespace {
// Shared block framing for full, runs-preserving, and selective decode:
// `sel` (nullable) engages the selective decoders; an all-ones selection
// falls through to the full decoders (callers never keep runs AND select).
Status DecodeBlockImpl(const std::string& data, size_t* offset, TypeId type,
                       ColumnVector* out, bool keep_runs,
                       const std::vector<uint8_t>* sel) {
  if (*offset >= data.size()) return Status::Corruption("block: empty");
  auto enc = static_cast<EncodingId>(data[(*offset)++]);
  uint64_t count;
  if (!GetVarint64(data, offset, &count)) return Status::Corruption("block: bad count");
  if (sel != nullptr && sel->size() != count)
    return Status::InvalidArgument("selection size != block row count");
  std::vector<uint8_t> nulls;
  STRATICA_RETURN_NOT_OK(ReadNullSection(data, offset, count, &nulls));
  out->type = type;

  bool dense = true;
  if (sel != nullptr) {
    for (uint8_t s : *sel) dense = dense && s != 0;
  }
  size_t phys_before = out->PhysicalSize();
  // Runs only survive when the block is RLE and carries no NULLs (the common
  // case for sort-key columns, which is where the RLE fast paths matter).
  keep_runs = keep_runs && enc == EncodingId::kRle && nulls.empty();
  switch (enc) {
    case EncodingId::kPlain:
      STRATICA_RETURN_NOT_OK(dense
                                 ? DecodePlain(data, offset, count, out)
                                 : DecodePlainSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kRle:
      STRATICA_RETURN_NOT_OK(dense ? DecodeRle(data, offset, out, keep_runs)
                                   : DecodeRleSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kDeltaValue:
      STRATICA_RETURN_NOT_OK(
          dense ? DecodeDeltaValue(data, offset, count, out)
                : DecodeDeltaValueSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kBlockDict:
      STRATICA_RETURN_NOT_OK(
          dense ? DecodeBlockDict(data, offset, count, out)
                : DecodeBlockDictSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kCompressedDeltaRange:
      STRATICA_RETURN_NOT_OK(
          dense ? DecodeDeltaRange(data, offset, count, out)
                : DecodeDeltaRangeSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kCompressedCommonDelta:
      STRATICA_RETURN_NOT_OK(
          dense ? DecodeCommonDelta(data, offset, count, out)
                : DecodeCommonDeltaSelected(data, offset, count, *sel, out));
      break;
    case EncodingId::kAuto:
      return Status::Corruption("block encoded as kAuto");
  }

  if (!nulls.empty()) {
    if (out->nulls.empty()) out->nulls.assign(phys_before, 0);
    if (dense) {
      out->nulls.insert(out->nulls.end(), nulls.begin(), nulls.end());
    } else {
      for (size_t i = 0; i < count; ++i) {
        if ((*sel)[i]) out->nulls.push_back(nulls[i]);
      }
    }
  } else if (!out->nulls.empty()) {
    out->nulls.resize(out->PhysicalSize(), 0);
  }
  // Keep `runs` parallel to the physical entries when a mixed-encoding file
  // interleaves RLE blocks (which keep runs) with flat ones.
  if (!out->runs.empty() && out->runs.size() < out->PhysicalSize()) {
    out->runs.resize(out->PhysicalSize(), 1);
  }
  return Status::OK();
}
}  // namespace

Status DecodeBlock(const std::string& data, size_t* offset, TypeId type,
                   ColumnVector* out) {
  return DecodeBlockImpl(data, offset, type, out, /*keep_runs=*/false, nullptr);
}

Status DecodeBlockRuns(const std::string& data, size_t* offset, TypeId type,
                       ColumnVector* out) {
  return DecodeBlockImpl(data, offset, type, out, /*keep_runs=*/true, nullptr);
}

Status DecodeBlockSelected(const std::string& data, size_t* offset, TypeId type,
                           const std::vector<uint8_t>& sel, ColumnVector* out) {
  return DecodeBlockImpl(data, offset, type, out, /*keep_runs=*/false, &sel);
}

Status DecodeBlockView(const std::string& data, size_t* offset, TypeId type,
                       EncodedBlockView* out) {
  out->column = ColumnVector(type);
  auto enc = PeekBlockEncoding(data, *offset);
  if (!enc.ok()) return enc.status();
  out->encoding = enc.value();
  if (enc.value() == EncodingId::kRle) {
    return DecodeBlockRuns(data, offset, type, &out->column);
  }
  if (enc.value() != EncodingId::kBlockDict) {
    return DecodeBlock(data, offset, type, &out->column);
  }

  // BlockDict: materialize per-row codes plus the dictionary instead of
  // expanding values. Framing mirrors DecodeBlockImpl.
  ++*offset;  // encoding byte
  uint64_t count;
  if (!GetVarint64(data, offset, &count)) return Status::Corruption("block: bad count");
  std::vector<uint8_t> nulls;
  STRATICA_RETURN_NOT_OK(ReadNullSection(data, offset, count, &nulls));
  ColumnVector raw_dict(type);
  uint64_t dict_size;
  int width;
  STRATICA_RETURN_NOT_OK(ParseDictHeader(data, offset, &raw_dict, &dict_size, &width));
  ColumnVector& col = out->column;
  col.ints.reserve(count);
  if (width == 0) {
    if (count > 0 && dict_size == 0) return Status::Corruption("dict: empty");
    col.ints.assign(count, 0);
  } else {
    size_t payload = PackedBytes(count, width);
    if (*offset + payload > data.size()) return Status::Corruption("dict: truncated");
    const char* base = data.data() + *offset;
    for (size_t i = 0; i < count; ++i) {
      uint64_t code = ReadPackedBits(base, i * static_cast<size_t>(width), width);
      if (code >= dict_size) return Status::Corruption("dict: index out of range");
      col.ints.push_back(static_cast<int64_t>(code));
    }
    *offset += payload;
  }
  col.nulls = std::move(nulls);

  // Code order must equal value order. Blocks written since the encoder
  // started sorting dictionaries (and remapping codes) at encode time pass
  // the O(d) check below and skip the work entirely; older blocks (or other
  // writers) pay one sort + remap per view.
  size_t d = raw_dict.PhysicalSize();
  bool presorted = true;
  for (size_t i = 1; presorted && i < d; ++i) {
    presorted = ColumnVector::CompareEntries(raw_dict, i - 1, raw_dict, i) < 0;
  }
  if (presorted) {
    col.dict = std::make_shared<const ColumnVector>(std::move(raw_dict));
    col.dict_sorted = true;
    return Status::OK();
  }
  std::vector<uint32_t> perm(d);
  for (size_t i = 0; i < d; ++i) perm[i] = static_cast<uint32_t>(i);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return ColumnVector::CompareEntries(raw_dict, a, raw_dict, b) < 0;
  });
  std::vector<int64_t> rank(d);
  ColumnVector sorted(type);
  sorted.Reserve(d);
  for (size_t i = 0; i < d; ++i) {
    rank[perm[i]] = static_cast<int64_t>(i);
    sorted.AppendFrom(raw_dict, perm[i]);
  }
  for (auto& c : col.ints) c = rank[static_cast<size_t>(c)];
  col.dict = std::make_shared<const ColumnVector>(std::move(sorted));
  col.dict_sorted = true;
  return Status::OK();
}

Result<EncodingId> PeekBlockEncoding(const std::string& data, size_t offset) {
  if (offset >= data.size()) return Status::Corruption("block: empty");
  return static_cast<EncodingId>(data[offset]);
}

void EncodeValue(std::string* out, const Value& v) {
  out->push_back(v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (StorageClassOf(v.type())) {
    case StorageClass::kInt64: PutVarint64(out, ZigZagEncode(v.i64())); break;
    case StorageClass::kFloat64: PutFixed(out, v.f64()); break;
    case StorageClass::kString:
      PutVarint64(out, v.str().size());
      out->append(v.str());
      break;
  }
}

Status DecodeValue(const std::string& data, size_t* offset, TypeId type, Value* out) {
  if (*offset >= data.size()) return Status::Corruption("value: truncated");
  bool null = data[(*offset)++] != 0;
  if (null) {
    *out = Value::Null(type);
    return Status::OK();
  }
  switch (StorageClassOf(type)) {
    case StorageClass::kInt64: {
      uint64_t zz;
      if (!GetVarint64(data, offset, &zz)) return Status::Corruption("value: bad int");
      *out = Value::OfInt(type, ZigZagDecode(zz));
      return Status::OK();
    }
    case StorageClass::kFloat64: {
      double d;
      if (!GetFixed(data, offset, &d)) return Status::Corruption("value: bad float");
      *out = Value::Float64(d);
      return Status::OK();
    }
    case StorageClass::kString: {
      uint64_t len;
      if (!GetVarint64(data, offset, &len) || *offset + len > data.size())
        return Status::Corruption("value: bad string");
      *out = Value::String(std::string(data, *offset, len));
      *offset += len;
      return Status::OK();
    }
  }
  return Status::Internal("bad storage class");
}

}  // namespace stratica
