// Distributed query planner (Section 6.2).
//
// Stratica's planner descends from the paper's optimizer lineage: like
// StarOpt it prefers joining the fact stream against its most selective
// dimensions first with highly compressed, sorted projections chosen per
// table; like V2Opt it plans by physical properties (column selectivity,
// projection sort order, data segmentation) and plans distribution:
// co-located joins and aggregations run fully local per node, otherwise the
// smaller side is broadcast; aggregation is two-stage (local partial +
// final combine) with prepass operators under intra-node parallel scan
// pipelines (Figure 3). When nodes are down, plans transparently replace a
// projection's storage with its buddy's on a surviving node and re-cost.
//
// Techniques implemented from the paper's list: projection selection with
// compression-aware I/O costing, predicate pushdown with min/max prune
// bounds, transitive predicates across join keys, outer-to-inner join
// conversion under null-rejecting WHERE clauses, SIP filter placement,
// pipelined (sort-exploiting) aggregation, sort elimination, late
// materialization at the scan, and runtime-adaptive prepass aggregation.
#ifndef STRATICA_OPT_PLANNER_H_
#define STRATICA_OPT_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exec/operator.h"
#include "sql/parser.h"

namespace stratica {

struct PhysicalPlan {
  OperatorPtr root;  ///< runs at the initiator node
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  /// Admission reservation: summed MemoryEstimateBytes over the tree. The
  /// resource manager clamps it into [min reserve, pool size] at Admit.
  size_t estimated_memory_bytes = 0;
  /// Morsel fragments per scan unit actually planned (DESIGN.md §12): the
  /// requested intra-node parallelism, or 1 when the plan gated it off
  /// (small fact, order-carrying scan, RIGHT/FULL join). The executor maps
  /// this to worker fan-out; admission may replan at a smaller value.
  size_t fanout = 1;
  /// True when the plan runs serial *specifically* because the scan shape
  /// (sorted output / RLE passthrough) cannot ride the morsel path. Surfaced
  /// as ExecStats::morsel_bypasses so AllowedFanout accounting is honest
  /// about the bypass instead of silently planning serial (DESIGN.md §12).
  bool morsel_bypass = false;
};

class Planner {
 public:
  explicit Planner(Cluster* cluster) : cluster_(cluster) {}

  /// Plan a SELECT into an executable operator tree. When
  /// `intra_node_parallelism` > 1, each scan-unit pipeline is split into
  /// that many morsel-driven fragments sharing one dispenser and one build
  /// per join (DESIGN.md §12), subject to the gates noted on
  /// PhysicalPlan::fanout.
  Result<PhysicalPlan> PlanSelect(const SelectStmt& stmt,
                                  size_t intra_node_parallelism = 1);

  /// Plan and render the EXPLAIN tree without executing.
  Result<std::string> Explain(const SelectStmt& stmt,
                              size_t intra_node_parallelism = 1);

 private:
  struct TableSlot;  // resolved FROM entry
  struct Scope;      // full planning scope

  Cluster* cluster_;
};

}  // namespace stratica

#endif  // STRATICA_OPT_PLANNER_H_
