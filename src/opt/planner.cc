#include "opt/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "exec/exchange.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {

namespace {

/// A materialize-once broadcast: every consumer replays the same blocks
/// (used for the inner side of non-co-located joins).
class BroadcastState {
 public:
  explicit BroadcastState(OperatorPtr child) : child_(std::move(child)) {}

  Status Materialize(ExecContext* ctx) {
    std::lock_guard lock(mu_);
    if (done_) return status_;
    done_ = true;
    status_ = child_->Open(ctx);
    rows_ = RowBlock(child_->OutputTypes());
    while (status_.ok()) {
      RowBlock block;
      status_ = child_->GetNext(&block);
      if (!status_.ok() || block.NumRows() == 0) break;
      block.DecodeAll();
      if (ctx->stats) ctx->stats->exchange_bytes.fetch_add(block.MemoryBytes());
      for (size_t r = 0; r < block.NumRows(); ++r) rows_.AppendRowFrom(block, r);
    }
    if (status_.ok()) status_ = child_->Close();
    return status_;
  }

  const RowBlock& rows() const { return rows_; }
  Operator* child() const { return child_.get(); }

 private:
  OperatorPtr child_;
  std::mutex mu_;
  bool done_ = false;
  Status status_;
  RowBlock rows_;
};

class BroadcastConsumerOperator : public Operator {
 public:
  BroadcastConsumerOperator(std::shared_ptr<BroadcastState> state, bool primary)
      : state_(std::move(state)), primary_(primary) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    cursor_ = 0;
    return state_->Materialize(ctx);
  }
  Status GetNext(RowBlock* out) override {
    const RowBlock& rows = state_->rows();
    *out = RowBlock(OutputTypes());
    if (cursor_ >= rows.NumRows()) return Status::OK();
    size_t take = std::min(ctx_->vector_size, rows.NumRows() - cursor_);
    for (size_t r = 0; r < take; ++r) out->AppendRowFrom(rows, cursor_ + r);
    cursor_ += take;
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  std::vector<TypeId> OutputTypes() const override {
    return state_->child()->OutputTypes();
  }
  std::vector<std::string> OutputNames() const override {
    return state_->child()->OutputNames();
  }
  std::string DebugString() const override { return "Recv(broadcast)"; }
  std::vector<Operator*> Children() const override {
    if (primary_) return {state_->child()};
    return {};
  }

 private:
  std::shared_ptr<BroadcastState> state_;
  bool primary_;
  ExecContext* ctx_ = nullptr;
  size_t cursor_ = 0;
};

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kLogical && e->logic == LogicalOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr result;
  for (const auto& c : conjuncts) {
    result = result ? And(result, c) : c;
  }
  return result;
}

/// Does a bound predicate reject NULLs of the given column range? A plain
/// comparison or IS NOT NULL on those columns does.
bool NullRejecting(const Expr& e, int col_lo, int col_hi) {
  std::vector<int> cols;
  CollectColumns(e, &cols);
  bool touches = false;
  for (int c : cols) touches |= (c >= col_lo && c < col_hi);
  if (!touches) return false;
  if (e.kind == ExprKind::kCompare) return true;
  if (e.kind == ExprKind::kIsNull && e.negated) return true;
  return false;
}

}  // namespace

/// One resolved FROM entry.
struct Planner::TableSlot {
  std::string alias;
  TableDef def;
  ProjectionDef projection;             // chosen physical source
  int schema_offset = 0;                // column offset in the combined schema
  JoinType join_type = JoinType::kInner;
  uint64_t est_rows = 0;

  std::vector<ExprPtr> local_predicates;  // bound to the combined schema
  // Scan units: (storage, covering node) pairs; one per up node normally,
  // with buddies substituted for down nodes.
  std::vector<ProjectionStorage*> units;
  std::vector<uint32_t> unit_hosts;  // node id serving each unit (error context)
  // Remaining family copies per unit, health-checked again at hedge time so
  // a straggling or dead unit can be re-issued against a buddy mid-query.
  std::vector<std::vector<ProjectionStorage*>> unit_alts;
  uint32_t unit_offset = 0;  // ring offset of the projection serving units
};

struct Planner::Scope {
  std::vector<TableSlot> tables;
  BindSchema schema;  // combined: "alias.col" names
};

Result<PhysicalPlan> Planner::PlanSelect(const SelectStmt& stmt,
                                         size_t intra_node_parallelism) {
  Catalog* catalog = cluster_->catalog();
  Scope scope;

  // ---- resolve FROM ---------------------------------------------------------
  for (const auto& ref : stmt.from) {
    TableSlot slot;
    slot.alias = ref.alias.empty() ? ref.table : ref.alias;
    STRATICA_ASSIGN_OR_RETURN(slot.def, catalog->GetTable(ref.table));
    slot.join_type = ref.join_type;
    slot.schema_offset = static_cast<int>(scope.schema.size());
    for (const auto& c : slot.def.columns) {
      scope.schema.Add(slot.alias + "." + c.name, c.type);
    }
    scope.tables.push_back(std::move(slot));
  }

  // ---- bind -----------------------------------------------------------------
  SelectStmt bound = stmt;  // shallow: ExprPtr shared; clone what we mutate
  std::vector<ExprPtr> conjuncts;
  if (bound.where) {
    ExprPtr where = CloneExpr(bound.where);
    STRATICA_RETURN_NOT_OK(BindExpr(where, scope.schema));
    SplitConjuncts(where, &conjuncts);
  }
  // ON clauses: equality keys + residuals.
  struct JoinEdge {
    size_t left_table, right_table;  // indexes into scope.tables
    std::vector<int> left_cols, right_cols;  // combined-schema indexes
  };
  std::vector<JoinEdge> edges;
  std::vector<ExprPtr> residuals;
  auto table_of_column = [&](int col) -> size_t {
    for (size_t t = scope.tables.size(); t-- > 0;) {
      if (col >= scope.tables[t].schema_offset) return t;
    }
    return 0;
  };
  auto classify = [&](const ExprPtr& conjunct) {
    std::vector<int> cols;
    CollectColumns(*conjunct, &cols);
    std::set<size_t> tables;
    for (int c : cols) tables.insert(table_of_column(c));
    if (tables.size() <= 1) {
      size_t t = tables.empty() ? 0 : *tables.begin();
      scope.tables[t].local_predicates.push_back(conjunct);
      return;
    }
    if (tables.size() == 2 && conjunct->kind == ExprKind::kCompare &&
        conjunct->cmp == CompareOp::kEq &&
        conjunct->children[0]->kind == ExprKind::kColumnRef &&
        conjunct->children[1]->kind == ExprKind::kColumnRef) {
      int a = conjunct->children[0]->column_index;
      int b = conjunct->children[1]->column_index;
      size_t ta = table_of_column(a), tb = table_of_column(b);
      if (ta > tb) {
        std::swap(a, b);
        std::swap(ta, tb);
      }
      // Attach to an existing edge between the pair if present.
      for (auto& edge : edges) {
        if (edge.left_table == ta && edge.right_table == tb) {
          edge.left_cols.push_back(a);
          edge.right_cols.push_back(b);
          return;
        }
      }
      edges.push_back({ta, tb, {a}, {b}});
      return;
    }
    residuals.push_back(conjunct);
  };
  for (auto& c : conjuncts) classify(c);
  for (size_t t = 1; t < scope.tables.size(); ++t) {
    if (!stmt.from[t].on) continue;
    ExprPtr on = CloneExpr(stmt.from[t].on);
    STRATICA_RETURN_NOT_OK(BindExpr(on, scope.schema));
    std::vector<ExprPtr> on_conjuncts;
    SplitConjuncts(on, &on_conjuncts);
    for (auto& c : on_conjuncts) classify(c);
  }

  // Outer-to-inner conversion: a null-rejecting WHERE predicate on the
  // nullable side of an outer join converts it to inner (Section 6.2).
  for (size_t t = 1; t < scope.tables.size(); ++t) {
    TableSlot& slot = scope.tables[t];
    if (slot.join_type != JoinType::kLeft) continue;
    int lo = slot.schema_offset;
    int hi = lo + static_cast<int>(slot.def.columns.size());
    for (const auto& pred : slot.local_predicates) {
      if (NullRejecting(*pred, lo, hi)) {
        slot.join_type = JoinType::kInner;
        break;
      }
    }
  }

  // Transitive predicates across join keys (Section 6.2): an equality/range
  // literal predicate on one side of a join equality applies to the other.
  for (const auto& edge : edges) {
    for (size_t k = 0; k < edge.left_cols.size(); ++k) {
      for (size_t t : {edge.left_table, edge.right_table}) {
        int from_col = t == edge.left_table ? edge.left_cols[k] : edge.right_cols[k];
        int to_col = t == edge.left_table ? edge.right_cols[k] : edge.left_cols[k];
        size_t to_table = t == edge.left_table ? edge.right_table : edge.left_table;
        if (scope.tables[to_table].join_type != JoinType::kInner) continue;
        for (const auto& pred : scope.tables[t].local_predicates) {
          if (pred->kind != ExprKind::kCompare) continue;
          if (pred->children[0]->kind != ExprKind::kColumnRef ||
              pred->children[0]->column_index != from_col ||
              pred->children[1]->kind != ExprKind::kLiteral) {
            continue;
          }
          ExprPtr derived = Cmp(pred->cmp,
                                ColIdx(to_col, scope.schema.types[to_col]),
                                Lit(pred->children[1]->literal));
          derived->children[0]->column_name = scope.schema.names[to_col];
          bool dup = false;
          for (const auto& existing : scope.tables[to_table].local_predicates) {
            dup |= existing->ToString() == derived->ToString();
          }
          if (!dup) scope.tables[to_table].local_predicates.push_back(derived);
        }
      }
    }
  }

  // ---- choose projections + scan units (buddy substitution on failure) -----
  // Capture the topology under a shared lock so an elastic rebalance can't
  // swap storages mid-selection: every unit, host id and ring slot below
  // must come from one consistent node count. A plan captured just before a
  // swap keeps working — retired storages stay alive and readable.
  auto topology = cluster_->LockTopologyShared();
  for (auto& slot : scope.tables) {
    auto candidates = catalog->ProjectionsForTable(slot.def.name);
    // Needed columns of this table.
    std::set<std::string> needed;
    for (const auto& c : slot.def.columns) needed.insert(c.name);  // supers cover all
    const ProjectionDef* best = nullptr;
    int64_t best_score = INT64_MIN;
    for (const auto& p : candidates) {
      if (p.segmentation.node_offset != 0) continue;  // buddies join via units
      if (p.IsPrejoin()) continue;
      if (!p.is_super) continue;  // narrow projections need column analysis; a
                                  // super always works — prefer it unless a
                                  // narrow one scores higher below.
      int64_t score = 0;
      // Compression-aware I/O proxy: smaller stored footprint wins.
      uint64_t bytes = 0;
      for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
        auto* ps = cluster_->node(n)->GetStorage(p.name);
        if (ps) bytes += ps->TotalRosBytes();
      }
      score -= static_cast<int64_t>(bytes / 1024);
      // Sorted-prefix predicate bonus: fast pruning and merge scans.
      if (!p.sort_columns.empty()) {
        const std::string& first_sort = p.columns[p.sort_columns[0]].name;
        for (const auto& pred : slot.local_predicates) {
          if (pred->kind == ExprKind::kCompare &&
              pred->children[0]->kind == ExprKind::kColumnRef) {
            std::string bare = pred->children[0]->column_name;
            auto dot = bare.rfind('.');
            if (dot != std::string::npos) bare = bare.substr(dot + 1);
            if (bare == first_sort) score += 1000000;
          }
        }
      }
      if (!best || score > best_score) {
        best = &p;
        best_score = score;
      }
    }
    if (!best) return Status::Internal("no projection for table ", slot.def.name);
    slot.projection = *best;

    // Scan units with buddy substitution: for every ring slot pick an up
    // node among the projection family (replan-with-buddy, Section 6.2).
    // A quarantined copy (persistent read failure / corruption, DESIGN.md
    // §10) is as unusable as a down node: skip it and let a buddy serve
    // the slot until re-recovery clears the flag.
    if (slot.projection.segmentation.replicated) {
      std::vector<ProjectionStorage*> alts;
      for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
        auto* ps = cluster_->node(n)->GetStorage(slot.projection.name);
        if (!ps) continue;
        if (slot.units.empty() && cluster_->node(n)->up() && !ps->quarantined()) {
          slot.units = {ps};
          slot.unit_hosts = {n};
        } else {
          alts.push_back(ps);
        }
      }
      if (slot.units.empty())
        return Status::ClusterUnavailable("no healthy copy of ",
                                          slot.projection.name);
      slot.unit_alts = {std::move(alts)};
    } else {
      std::vector<ProjectionDef> family = {slot.projection};
      for (const auto& p : candidates) {
        if (p.buddy_of == slot.projection.name) family.push_back(p);
      }
      for (uint32_t ring_slot = 0; ring_slot < cluster_->num_nodes(); ++ring_slot) {
        ProjectionStorage* unit = nullptr;
        uint32_t unit_host = 0;
        std::vector<ProjectionStorage*> alts;
        for (const auto& copy : family) {
          uint32_t host =
              (ring_slot + copy.segmentation.node_offset) % cluster_->num_nodes();
          auto* ps = cluster_->node(host)->GetStorage(copy.name);
          if (!ps) continue;
          if (!unit && cluster_->node(host)->up() && !ps->quarantined()) {
            unit = ps;
            unit_host = host;
          } else {
            alts.push_back(ps);
          }
        }
        if (!unit) {
          return Status::ClusterUnavailable(
              "data unavailable: no live copy of ", slot.projection.name,
              " for ring slot ", ring_slot, " (K-safety exhausted)");
        }
        slot.units.push_back(unit);
        slot.unit_hosts.push_back(unit_host);
        slot.unit_alts.push_back(std::move(alts));
      }
    }
    slot.est_rows = 0;
    for (auto* ps : slot.units) slot.est_rows += ps->TotalRosRows() + ps->WosRowCount();
  }

  // ---- join order (StarOpt heuristic) ---------------------------------------
  // Probe stream = largest table (the fact); inner/build sides joined in
  // ascending size order, most selective dimensions first. Only pure-INNER
  // plans are reordered.
  std::vector<size_t> order(scope.tables.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  bool all_inner = true;
  for (size_t t = 1; t < scope.tables.size(); ++t) {
    all_inner &= scope.tables[t].join_type == JoinType::kInner;
  }
  if (all_inner && scope.tables.size() > 1) {
    size_t fact = 0;
    for (size_t t = 1; t < scope.tables.size(); ++t) {
      if (scope.tables[t].est_rows > scope.tables[fact].est_rows) fact = t;
    }
    std::vector<size_t> rest;
    for (size_t t = 0; t < scope.tables.size(); ++t) {
      if (t != fact) rest.push_back(t);
    }
    // Selectivity-first: tables with local predicates join earlier; size
    // breaks ties.
    std::stable_sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
      size_t pa = scope.tables[a].local_predicates.size();
      size_t pb = scope.tables[b].local_predicates.size();
      if (pa != pb) return pa > pb;
      return scope.tables[a].est_rows < scope.tables[b].est_rows;
    });
    order.clear();
    order.push_back(fact);
    // Greedy: append tables connected to the joined set first.
    std::set<size_t> joined = {fact};
    while (!rest.empty()) {
      size_t pick = SIZE_MAX;
      for (size_t i = 0; i < rest.size(); ++i) {
        for (const auto& edge : edges) {
          bool connects = (joined.count(edge.left_table) && edge.right_table == rest[i]) ||
                          (joined.count(edge.right_table) && edge.left_table == rest[i]);
          if (connects) {
            pick = i;
            break;
          }
        }
        if (pick != SIZE_MAX) break;
      }
      if (pick == SIZE_MAX) pick = 0;  // cross join fallback
      joined.insert(rest[pick]);
      order.push_back(rest[pick]);
      rest.erase(rest.begin() + pick);
    }
  }

  // ---- build scan specs ------------------------------------------------------
  // The combined stream schema after all joins, in join order.
  BindSchema stream_schema;
  std::vector<std::pair<size_t, int>> stream_origin;  // (table, table-col)
  for (size_t oi : order) {
    const TableSlot& slot = scope.tables[oi];
    for (size_t c = 0; c < slot.def.columns.size(); ++c) {
      stream_schema.Add(slot.alias + "." + slot.def.columns[c].name,
                        slot.def.columns[c].type);
      stream_origin.emplace_back(oi, static_cast<int>(c));
    }
  }
  auto combined_to_stream = [&](int combined_col) -> int {
    size_t t = table_of_column(combined_col);
    int within = combined_col - scope.tables[t].schema_offset;
    int pos = 0;
    for (size_t oi : order) {
      if (oi == t) return pos + within;
      pos += static_cast<int>(scope.tables[oi].def.columns.size());
    }
    return -1;
  };
  auto rebind_to_stream = [&](const ExprPtr& e) -> Result<ExprPtr> {
    ExprPtr copy = CloneExpr(e);
    // Reset bound indexes, rebind by name against the stream schema.
    std::vector<Expr*> stack = {copy.get()};
    while (!stack.empty()) {
      Expr* cur = stack.back();
      stack.pop_back();
      if (cur->kind == ExprKind::kColumnRef) cur->column_index = -1;
      for (auto& ch : cur->children) stack.push_back(ch.get());
    }
    STRATICA_RETURN_NOT_OK(BindExpr(copy, stream_schema));
    return copy;
  };

  struct TablePlan {
    ScanSpec spec;                      // per-unit template
    std::vector<std::shared_ptr<SipFilter>> sips;  // attached later
  };
  std::vector<TablePlan> table_plans(scope.tables.size());
  for (size_t t = 0; t < scope.tables.size(); ++t) {
    TableSlot& slot = scope.tables[t];
    TablePlan& tp = table_plans[t];
    // Scan outputs every table column (projection order mapped to table
    // order) so stream offsets are predictable.
    BindSchema scan_schema;
    for (size_t c = 0; c < slot.def.columns.size(); ++c) {
      int proj_col = slot.projection.FindColumn(slot.def.columns[c].name);
      if (proj_col < 0)
        return Status::Internal("projection misses column ", slot.def.columns[c].name);
      tp.spec.projection_columns.push_back(proj_col);
      tp.spec.output_names.push_back(slot.alias + "." + slot.def.columns[c].name);
      tp.spec.output_types.push_back(slot.def.columns[c].type);
      scan_schema.Add(slot.alias + "." + slot.def.columns[c].name,
                      slot.def.columns[c].type);
    }
    // Push local predicates into the scan, extracting prune bounds.
    std::vector<ExprPtr> scan_preds;
    for (const auto& pred : slot.local_predicates) {
      ExprPtr local = CloneExpr(pred);
      std::vector<Expr*> stack = {local.get()};
      while (!stack.empty()) {
        Expr* cur = stack.back();
        stack.pop_back();
        if (cur->kind == ExprKind::kColumnRef) cur->column_index = -1;
        for (auto& ch : cur->children) stack.push_back(ch.get());
      }
      STRATICA_RETURN_NOT_OK(BindExpr(local, scan_schema));
      scan_preds.push_back(local);
      if (local->kind == ExprKind::kCompare &&
          local->children[0]->kind == ExprKind::kColumnRef &&
          local->children[1]->kind == ExprKind::kLiteral) {
        tp.spec.prune_bounds.push_back({local->children[0]->column_index, local->cmp,
                                        local->children[1]->literal});
      }
    }
    tp.spec.predicate = CombineConjuncts(scan_preds);
  }

  // ---- SIP filters -----------------------------------------------------------
  // The fact (first in join order) scans everything; joins against later
  // tables install SIP filters on it when the join type filters probe rows.
  size_t fact = order[0];
  for (size_t j = 1; j < order.size(); ++j) {
    size_t t = order[j];
    JoinType jt = scope.tables[t].join_type;
    if (jt != JoinType::kInner && jt != JoinType::kSemi) continue;
    for (const auto& edge : edges) {
      size_t other = SIZE_MAX;
      const std::vector<int>* fact_cols = nullptr;
      if (edge.left_table == fact && edge.right_table == t) {
        other = t;
        fact_cols = &edge.left_cols;
      } else if (edge.right_table == fact && edge.left_table == t) {
        other = t;
        fact_cols = &edge.right_cols;
      }
      if (other == SIZE_MAX) continue;
      auto sip = std::make_shared<SipFilter>();
      for (int c : *fact_cols) {
        sip->probe_columns.push_back(c - scope.tables[fact].schema_offset);
      }
      table_plans[fact].spec.sips.push_back(sip);
      table_plans[t].sips.push_back(sip);  // the join for table t fills it
    }
  }

  // ---- per-unit pipelines -----------------------------------------------------
  // Co-location: a join is fully local when both sides have the same number
  // of units and the build side is replicated, or both are segmented by
  // HASH of exactly their join keys with equal ring offsets.
  size_t num_units = scope.tables[fact].units.size();
  auto seg_matches_keys = [&](const TableSlot& slot,
                              const std::vector<int>& key_cols) {
    if (slot.projection.segmentation.replicated) return false;
    const ExprPtr& seg = slot.projection.segmentation.expr;
    if (!seg || seg->kind != ExprKind::kFunc || seg->func != FuncKind::kHash)
      return false;
    if (seg->children.size() != key_cols.size()) return false;
    std::set<std::string> seg_cols, join_cols;
    for (const auto& ch : seg->children) {
      if (ch->kind != ExprKind::kColumnRef) return false;
      std::string bare = ch->column_name;
      auto dot = bare.rfind('.');
      if (dot != std::string::npos) bare = bare.substr(dot + 1);
      seg_cols.insert(bare);
    }
    for (int c : key_cols) {
      std::string bare = scope.schema.names[c];
      auto dot = bare.rfind('.');
      if (dot != std::string::npos) bare = bare.substr(dot + 1);
      join_cols.insert(bare);
    }
    return seg_cols == join_cols;
  };

  // Pre-create broadcast states for non-co-located build sides.
  std::vector<std::shared_ptr<BroadcastState>> broadcasts(scope.tables.size());
  std::vector<bool> colocated(scope.tables.size(), false);
  for (size_t j = 1; j < order.size(); ++j) {
    size_t t = order[j];
    const JoinEdge* edge = nullptr;
    for (const auto& e : edges) {
      if ((e.left_table == t && order[0] == e.right_table) ||
          (e.right_table == t && order[0] == e.left_table) ||
          e.left_table == t || e.right_table == t) {
        edge = &e;
        break;
      }
    }
    bool replicated = scope.tables[t].projection.segmentation.replicated;
    bool both_segmented_alike = false;
    if (edge && !replicated &&
        scope.tables[t].units.size() == num_units) {
      const auto& t_cols = edge->left_table == t ? edge->left_cols : edge->right_cols;
      size_t o = edge->left_table == t ? edge->right_table : edge->left_table;
      const auto& o_cols = edge->left_table == t ? edge->right_cols : edge->left_cols;
      both_segmented_alike = seg_matches_keys(scope.tables[t], t_cols) &&
                             seg_matches_keys(scope.tables[o], o_cols) &&
                             scope.tables[t].unit_offset == scope.tables[o].unit_offset;
    }
    colocated[t] = replicated || both_segmented_alike;
    if (!colocated[t]) {
      // Gather the build side once; every unit replays it (broadcast). Each
      // gather leg carries its host for error context plus a rebuild recipe
      // so a straggling or dead leg re-issues against a buddy copy.
      std::vector<ExchangeProducerSpec> scans;
      const TableSlot& tslot = scope.tables[t];
      for (size_t i = 0; i < tslot.units.size(); ++i) {
        ScanSpec s = table_plans[t].spec;
        s.storage = tslot.units[i];
        ExchangeProducerSpec spec;
        spec.op = std::make_unique<ScanOperator>(s);
        spec.origin = "node" + std::to_string(tslot.unit_hosts[i]);
        spec.rebuild = [tmpl = table_plans[t].spec,
                        alts = tslot.unit_alts[i], i]() -> Result<OperatorPtr> {
          for (auto* ps : alts) {
            if (!ps->HostUp() || ps->quarantined()) continue;
            ScanSpec rs = tmpl;
            rs.storage = ps;
            return OperatorPtr(std::make_unique<ScanOperator>(rs));
          }
          return Status::ClusterUnavailable(
              "no healthy buddy for broadcast leg ", i, " (K-safety exhausted)");
        };
        scans.push_back(std::move(spec));
      }
      OperatorPtr gathered = scans.size() == 1
                                 ? std::move(scans[0].op)
                                 : MakeUnionExchange(std::move(scans), "Recv", true);
      broadcasts[t] = std::make_shared<BroadcastState>(std::move(gathered));
    }
  }

  // ---- per-unit pipeline builder ---------------------------------------------
  // Join keys depend only on the join order, not the unit, so the join steps
  // are computed once; only the SIP attachment, the colocated build unit and
  // the fact storage vary per pipeline. Everything the builder needs is
  // captured by value so exchange hedging can re-invoke it mid-query to
  // construct a replacement pipeline against a buddy copy of the fact unit.
  struct JoinStep {
    JoinSpec jspec;                               // without sip
    std::shared_ptr<SipFilter> sip;               // primary of unit 0 populates
    bool colocated = false;
    ScanSpec build_spec;                          // colocated: per-unit scan
    std::vector<ProjectionStorage*> build_units;  //   "
    std::shared_ptr<BroadcastState> broadcast;    // else: shared materialization
  };
  auto steps = std::make_shared<std::vector<JoinStep>>();
  {
    std::vector<size_t> joined_order = {fact};
    for (size_t j = 1; j < order.size(); ++j) {
      size_t t = order[j];
      // Join keys between the current stream and table t.
      JoinStep step;
      step.jspec.type = scope.tables[t].join_type;
      auto stream_pos_of = [&](int combined_col) -> int {
        size_t owner = table_of_column(combined_col);
        int within = combined_col - scope.tables[owner].schema_offset;
        int pos = 0;
        for (size_t oi : joined_order) {
          if (oi == owner) return pos + within;
          pos += static_cast<int>(scope.tables[oi].def.columns.size());
        }
        return -1;
      };
      for (const auto& edge : edges) {
        const std::vector<int>* probe_side = nullptr;
        const std::vector<int>* build_side = nullptr;
        if (edge.right_table == t &&
            std::find(joined_order.begin(), joined_order.end(), edge.left_table) !=
                joined_order.end()) {
          probe_side = &edge.left_cols;
          build_side = &edge.right_cols;
        } else if (edge.left_table == t &&
                   std::find(joined_order.begin(), joined_order.end(),
                             edge.right_table) != joined_order.end()) {
          probe_side = &edge.right_cols;
          build_side = &edge.left_cols;
        }
        if (!probe_side) continue;
        for (size_t k = 0; k < probe_side->size(); ++k) {
          step.jspec.probe_keys.push_back(
              static_cast<uint32_t>(stream_pos_of((*probe_side)[k])));
          step.jspec.build_keys.push_back(static_cast<uint32_t>(
              (*build_side)[k] - scope.tables[t].schema_offset));
        }
      }
      if (step.jspec.probe_keys.empty() && order.size() > 1)
        return Status::NotImplemented("cross joins without predicates");
      // SIP: one filter slot per (fact,t) edge was pre-created.
      if (!table_plans[t].sips.empty()) step.sip = table_plans[t].sips[0];
      step.colocated = colocated[t];
      if (step.colocated) {
        step.build_spec = table_plans[t].spec;
        step.build_units = scope.tables[t].units;
      } else {
        step.broadcast = broadcasts[t];
      }
      steps->push_back(std::move(step));
      joined_order.push_back(t);
    }
  }
  // Residual predicates (multi-table non-equi) are unit-independent: bind
  // them once and share the expression, as per-unit scans already do for
  // predicates and SIPs.
  ExprPtr residual_expr;
  if (!residuals.empty()) {
    std::vector<ExprPtr> rebound;
    for (const auto& r : residuals) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(r));
      rebound.push_back(e);
    }
    residual_expr = CombineConjuncts(rebound);
  }
  // ---- sort elimination (Section 6.2) ----------------------------------------
  // A single-table, single-unit SELECT whose ORDER BY is an ascending prefix
  // of the chosen projection's sort order reads pre-sorted storage: the scan
  // is planned order-carrying (sorted_output + merge across containers) and
  // the SortOperator is dropped. Restricted to one scan unit because a
  // union or exchange over several pipelines loses the order; the fan-out
  // gate below then records the morsel bypass this shape causes.
  bool sort_eliminated = false;
  if (!stmt.order_by.empty() && steps->empty() && scope.tables.size() == 1 &&
      num_units == 1 && !stmt.distinct && stmt.group_by.empty() &&
      stmt.having_aggs.empty()) {
    bool plain_select = true;
    for (const auto& item : stmt.items) {
      plain_select &= item.kind == SelectItem::Kind::kStar ||
                      item.kind == SelectItem::Kind::kExpr;
    }
    const TableSlot& fslot = scope.tables[fact];
    ScanSpec& ft = table_plans[fact].spec;
    bool ok = plain_select && stmt.order_by.size() <= fslot.projection.sort_columns.size();
    std::vector<uint32_t> key_outputs;
    for (size_t j = 0; ok && j < stmt.order_by.size(); ++j) {
      const auto& [oe, desc] = stmt.order_by[j];
      if (desc || oe->kind != ExprKind::kColumnRef) {
        ok = false;
        break;
      }
      // The key must also be a select output, so the query shapes that the
      // Sort path would reject stay rejected.
      bool in_output = false;
      for (const auto& item : stmt.items) {
        in_output |= item.kind == SelectItem::Kind::kStar ||
                     (item.kind == SelectItem::Kind::kExpr &&
                      (item.alias == oe->column_name ||
                       item.expr->ToString() == oe->ToString()));
      }
      auto bound = rebind_to_stream(oe);
      if (!in_output || !bound.ok() ||
          bound.value()->kind != ExprKind::kColumnRef) {
        ok = false;
        break;
      }
      int scan_col = bound.value()->column_index;
      ok &= ft.projection_columns[scan_col] ==
            static_cast<int>(fslot.projection.sort_columns[j]);
      key_outputs.push_back(static_cast<uint32_t>(scan_col));
    }
    if (ok) {
      ft.sorted_output = true;
      ft.sort_key_outputs = std::move(key_outputs);
      sort_eliminated = true;
    }
  }

  // ---- intra-node fan-out gate (DESIGN.md §12) -------------------------------
  // A unit pipeline splits into `fanout` morsel-driven fragments when the
  // fact is big enough to amortize the extra pipelines and nothing in the
  // plan needs what fragments cannot give: order-carrying scans
  // (sorted_output / rle_passthrough) would interleave arbitrarily under the
  // ParallelUnion, and RIGHT/FULL joins must emit unmatched build rows
  // exactly once, which a build shared across fragments cannot.
  size_t fanout = intra_node_parallelism == 0 ? 1 : intra_node_parallelism;
  bool morsel_bypass = false;
  if (fanout > 1) {
    constexpr uint64_t kMinParallelRowsPerUnit = 32768;
    bool ok = scope.tables[fact].est_rows >=
              kMinParallelRowsPerUnit * std::max<size_t>(num_units, 1);
    const ScanSpec& ft = table_plans[fact].spec;
    // Order-carrying scan shapes are planned serial *explicitly* and
    // recorded (PhysicalPlan::morsel_bypass → ExecStats::morsel_bypasses),
    // not silently dropped, so fan-out accounting stays honest.
    bool order_carrying = ft.sorted_output || ft.rle_passthrough;
    if (ok && order_carrying) morsel_bypass = true;
    ok &= !order_carrying;
    for (const auto& step : *steps) {
      ok &= step.jspec.type != JoinType::kRight &&
            step.jspec.type != JoinType::kFull;
    }
    if (!ok) fanout = 1;
  }

  // ---- compressed execution (DESIGN.md §13) ----------------------------------
  // Emit encoded-or-decoded views from the fact scan when every consumer in
  // the chain is encoded-aware: single-table aggregation stacks (ExprEval
  // passthrough → Filter → GroupBy all consume runs/codes directly). Joins,
  // window functions and plain row-returning SELECTs keep decoded scans —
  // their consumers want flat vectors. The scan re-checks the process-wide
  // switch at run time, so the A/B baseline needs no replan.
  {
    bool agg_query = !stmt.group_by.empty() || !stmt.having_aggs.empty();
    bool window_query = false;
    for (const auto& item : stmt.items) {
      agg_query |= item.kind == SelectItem::Kind::kAgg;
      window_query |= item.kind == SelectItem::Kind::kWindow;
    }
    ScanSpec& ft = table_plans[fact].spec;
    if (agg_query && !window_query && steps->empty() && !ft.sorted_output &&
        !ft.rle_passthrough && EncodedExecutionEnabled()) {
      ft.encoded_output = true;
    }
  }

  // Applied to every fragment of a unit (serial plans: the one pipeline), so
  // per-fragment work — expression eval, partial aggregation — runs inside
  // the fragment, below the ParallelUnion, and fans out with the scan.
  using FragmentFinisher = std::function<Result<OperatorPtr>(OperatorPtr)>;

  auto build_unit_pipeline =
      [steps, fact_template = table_plans[fact].spec, residual_expr, fanout](
          ProjectionStorage* fact_storage, bool primary, size_t u,
          const FragmentFinisher& finish) -> Result<OperatorPtr> {
    // Fan-out state is created fresh per invocation: a hedge rebuild gets
    // its own dispenser and builds because the loser pipeline's entire
    // output (all its fragments) is dropped at the outer exchange slot.
    std::shared_ptr<MorselDispenser> dispenser;
    std::vector<std::shared_ptr<SharedJoinBuild>> shared_builds;
    if (fanout > 1) {
      dispenser = std::make_shared<MorselDispenser>(fanout);
      for (const auto& step : *steps) {
        OperatorPtr build_op;
        if (step.colocated) {
          ScanSpec s = step.build_spec;
          s.storage = step.build_units[u % step.build_units.size()];
          build_op = std::make_unique<ScanOperator>(s);
        } else {
          build_op = std::make_unique<BroadcastConsumerOperator>(
              step.broadcast, /*primary=*/primary && u == 0);
        }
        JoinSpec jspec = step.jspec;
        // The SIP is published exactly once, inside the shared build, before
        // any fragment's probe opens (same writer rule as the serial path).
        if (primary && u == 0) jspec.sip = step.sip;
        shared_builds.push_back(std::make_shared<SharedJoinBuild>(
            std::move(build_op), std::move(jspec), fanout));
      }
    }
    auto build_fragment = [&](size_t f) -> Result<OperatorPtr> {
      ScanSpec fact_spec = fact_template;
      fact_spec.storage = fact_storage;
      fact_spec.morsels = dispenser;  // null = plain full-unit scan
      OperatorPtr stream = std::make_unique<ScanOperator>(fact_spec);
      for (size_t si = 0; si < steps->size(); ++si) {
        const JoinStep& step = (*steps)[si];
        if (dispenser) {
          // Probe against the build shared with sibling fragments; fragment
          // 0 exposes the build subtree for EXPLAIN / memory estimation.
          stream = std::make_unique<HashJoinOperator>(
              std::move(stream), shared_builds[si], step.jspec,
              /*show_build=*/f == 0);
          continue;
        }
        JoinSpec jspec = step.jspec;
        // Only the primary pipeline of unit 0 populates shared SIP filters;
        // hedge pipelines read them through their scans (a not-yet-ready SIP
        // passes rows through) but never write them, so a replacement racing
        // its orphaned primary cannot corrupt the filter.
        if (primary && u == 0) jspec.sip = step.sip;
        OperatorPtr build_side_op;
        if (step.colocated) {
          ScanSpec s = step.build_spec;
          s.storage = step.build_units[u % step.build_units.size()];
          build_side_op = std::make_unique<ScanOperator>(s);
        } else {
          build_side_op = std::make_unique<BroadcastConsumerOperator>(
              step.broadcast, /*primary=*/primary && u == 0);
        }
        stream = std::make_unique<HashJoinOperator>(std::move(stream),
                                                    std::move(build_side_op), jspec);
      }
      if (residual_expr) {
        stream = std::make_unique<FilterOperator>(std::move(stream), residual_expr);
      }
      return finish(std::move(stream));
    };
    if (fanout <= 1) return build_fragment(0);
    std::vector<OperatorPtr> fragments;
    for (size_t f = 0; f < fanout; ++f) {
      STRATICA_ASSIGN_OR_RETURN(OperatorPtr frag, build_fragment(f));
      fragments.push_back(std::move(frag));
    }
    return OperatorPtr(MakeUnionExchange(std::move(fragments), "ParallelUnion",
                                         /*count_network=*/false));
  };
  // One exchange producer per fact unit: origin for error context, rebuild
  // recipe (first healthy buddy copy at hedge time) for stragglers and
  // mid-query node death.
  auto make_unit_specs =
      [&](const std::function<Result<OperatorPtr>(ProjectionStorage*, bool, size_t)>&
              build) -> Result<std::vector<ExchangeProducerSpec>> {
    std::vector<ExchangeProducerSpec> specs;
    const TableSlot& fslot = scope.tables[fact];
    for (size_t u = 0; u < num_units; ++u) {
      ExchangeProducerSpec spec;
      STRATICA_ASSIGN_OR_RETURN(spec.op, build(fslot.units[u], true, u));
      spec.origin = "node" + std::to_string(fslot.unit_hosts[u]);
      spec.rebuild = [build, alts = fslot.unit_alts[u], u]() -> Result<OperatorPtr> {
        for (auto* ps : alts) {
          if (!ps->HostUp() || ps->quarantined()) continue;
          return build(ps, false, u);
        }
        return Status::ClusterUnavailable("no healthy buddy for exchange partition ",
                                          u, " (K-safety exhausted)");
      };
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  // ---- aggregation / projection ----------------------------------------------
  bool has_aggs = !stmt.group_by.empty() || !stmt.having_aggs.empty();
  for (const auto& item : stmt.items) has_aggs |= item.kind == SelectItem::Kind::kAgg;
  bool has_windows = false;
  for (const auto& item : stmt.items)
    has_windows |= item.kind == SelectItem::Kind::kWindow;
  if (has_aggs && has_windows)
    return Status::NotImplemented("window functions with GROUP BY");

  PhysicalPlan plan;
  OperatorPtr root;

  if (has_aggs) {
    // Bind group keys + agg args against the stream schema.
    GroupBySpec gspec;
    std::vector<ExprPtr> group_exprs;
    std::vector<ExprPtr> agg_args;
    std::vector<AggSpec> aggs;
    for (const auto& g : stmt.group_by) {
      STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(g));
      group_exprs.push_back(e);
    }
    auto add_agg = [&](const AggCall& call) -> Status {
      AggSpec a;
      a.kind = call.kind;
      if (call.arg) {
        STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(call.arg));
        a.input_type = e->type;
        agg_args.push_back(e);
        a.input_column = static_cast<int>(group_exprs.size() + agg_args.size() - 1);
      }
      aggs.push_back(a);
      return Status::OK();
    };
    for (const auto& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kAgg) STRATICA_RETURN_NOT_OK(add_agg(item.agg));
    }
    for (const auto& call : stmt.having_aggs) STRATICA_RETURN_NOT_OK(add_agg(call));

    // Pipeline per unit: ExprEval computing (group keys..., agg args...),
    // then partial aggregation; prepass under intra-node parallel regions is
    // exercised by the bench harness via this same operator stack.
    bool partialable = true;
    for (const auto& a : aggs) partialable &= a.Partialable();

    std::vector<ExprPtr> eval_exprs = group_exprs;
    for (const auto& e : agg_args) eval_exprs.push_back(e);
    std::vector<std::string> eval_names;
    for (size_t i = 0; i < group_exprs.size(); ++i)
      eval_names.push_back("g" + std::to_string(i));
    for (size_t i = 0; i < agg_args.size(); ++i)
      eval_names.push_back("a" + std::to_string(i));
    if (eval_exprs.empty()) {
      // COUNT(*) with no grouping: keep one carrier column so row counts
      // survive the ExprEval.
      eval_exprs.push_back(Lit(Value::Int64(1)));
      eval_names.push_back("one");
    }

    GroupBySpec local;
    for (size_t i = 0; i < group_exprs.size(); ++i)
      local.group_columns.push_back(static_cast<uint32_t>(i));
    local.aggs = aggs;
    local.phase = partialable ? AggPhase::kPartial : AggPhase::kSingle;
    for (auto& name : eval_names) local.output_names.push_back(name);

    // Each local = unit pipeline + eval + partial aggregation; the whole
    // stack is rebuildable against a buddy copy, so hedged units redo their
    // partial aggregation from the replacement scan. The finisher runs per
    // fragment, so under fan-out each morsel fragment carries its own eval
    // + partial table and the aggregation parallelizes with the scan
    // (Figure 3's parallel GroupBys above a StorageUnion).
    auto build_local = [build_unit_pipeline, eval_exprs, eval_names, local,
                        partialable](ProjectionStorage* ps, bool primary,
                                     size_t u) -> Result<OperatorPtr> {
      FragmentFinisher finish = [eval_exprs, eval_names, local, partialable](
                                    OperatorPtr pipeline) -> Result<OperatorPtr> {
        auto eval = std::make_unique<ProjectOperator>(
            std::move(pipeline), std::vector<ExprPtr>(eval_exprs), eval_names);
        if (partialable) {
          return OperatorPtr(
              std::make_unique<HashGroupByOperator>(std::move(eval), local));
        }
        return OperatorPtr(std::move(eval));  // raw rows; single-stage at initiator
      };
      return build_unit_pipeline(ps, primary, u, finish);
    };
    STRATICA_ASSIGN_OR_RETURN(std::vector<ExchangeProducerSpec> locals,
                              make_unit_specs(build_local));
    OperatorPtr gathered =
        locals.size() == 1 ? std::move(locals[0].op)
                           : MakeUnionExchange(std::move(locals), "Recv", true);
    GroupBySpec final_spec = local;
    final_spec.phase = partialable ? AggPhase::kCombine : AggPhase::kSingle;
    final_spec.output_names.clear();
    for (size_t i = 0; i < group_exprs.size(); ++i)
      final_spec.output_names.push_back("g" + std::to_string(i));
    for (size_t i = 0; i < aggs.size(); ++i)
      final_spec.output_names.push_back("agg" + std::to_string(i));
    root = std::make_unique<HashGroupByOperator>(std::move(gathered), final_spec);

    // HAVING over (group cols..., agg outputs...).
    if (stmt.having) {
      BindSchema having_schema;
      for (size_t i = 0; i < group_exprs.size(); ++i)
        having_schema.Add("g" + std::to_string(i), group_exprs[i]->type);
      size_t select_aggs = aggs.size() - stmt.having_aggs.size();
      for (size_t i = 0; i < aggs.size(); ++i) {
        std::string name = "agg" + std::to_string(i);
        if (i >= select_aggs)
          name = "$having" + std::to_string(i - select_aggs);
        having_schema.Add(name, aggs[i].OutputType());
      }
      ExprPtr having = CloneExpr(stmt.having);
      STRATICA_RETURN_NOT_OK(BindExpr(having, having_schema));
      root = std::make_unique<FilterOperator>(std::move(root), having);
    }

    // Final projection mapping select items onto group/agg outputs.
    std::vector<ExprPtr> out_exprs;
    size_t agg_cursor = 0;
    for (const auto& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kAgg) {
        size_t col = group_exprs.size() + agg_cursor++;
        out_exprs.push_back(ColIdx(static_cast<int>(col), aggs[agg_cursor - 1].OutputType()));
        plan.column_names.push_back(item.alias.empty()
                                        ? std::string(AggKindName(item.agg.kind))
                                        : item.alias);
      } else if (item.kind == SelectItem::Kind::kExpr) {
        // Must match a group-by expression.
        ExprPtr bound_item;
        STRATICA_ASSIGN_OR_RETURN(bound_item, rebind_to_stream(item.expr));
        int found = -1;
        for (size_t g = 0; g < group_exprs.size(); ++g) {
          if (group_exprs[g]->ToString() == bound_item->ToString())
            found = static_cast<int>(g);
        }
        if (found < 0)
          return Status::AnalysisError("select expression not in GROUP BY: ",
                                       item.expr->ToString());
        out_exprs.push_back(ColIdx(found, group_exprs[found]->type));
        plan.column_names.push_back(item.alias.empty() ? item.expr->ToString()
                                                       : item.alias);
      } else {
        return Status::AnalysisError("SELECT * not valid with GROUP BY");
      }
    }
    std::vector<std::string> out_names = plan.column_names;
    root = std::make_unique<ProjectOperator>(std::move(root), out_exprs, out_names);
  } else {
    // No aggregation: gather rows, then project.
    auto build_plain = [build_unit_pipeline](ProjectionStorage* ps, bool primary,
                                             size_t u) -> Result<OperatorPtr> {
      FragmentFinisher identity = [](OperatorPtr op) -> Result<OperatorPtr> {
        return OperatorPtr(std::move(op));
      };
      return build_unit_pipeline(ps, primary, u, identity);
    };
    STRATICA_ASSIGN_OR_RETURN(std::vector<ExchangeProducerSpec> unit_pipelines,
                              make_unit_specs(build_plain));
    OperatorPtr gathered = unit_pipelines.size() == 1
                               ? std::move(unit_pipelines[0].op)
                               : MakeUnionExchange(std::move(unit_pipelines), "Recv",
                                                   true);
    // Window functions: sort by (partition, order) then Analytic.
    std::vector<TypeId> window_types;
    if (has_windows) {
      AnalyticSpec aspec;
      bool first_window = true;
      size_t stream_width = stream_schema.size();
      std::vector<ExprPtr> pre_exprs;   // pass-through stream + computed keys
      for (size_t c = 0; c < stream_width; ++c)
        pre_exprs.push_back(ColIdx(static_cast<int>(c), stream_schema.types[c]));
      std::vector<std::string> pre_names = stream_schema.names;
      std::vector<SortKey> sort_keys;
      for (const auto& item : stmt.items) {
        if (item.kind != SelectItem::Kind::kWindow) continue;
        const WindowCall& w = item.window;
        if (first_window) {
          for (const auto& pe : w.partition_by) {
            STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(pe));
            if (e->kind != ExprKind::kColumnRef)
              return Status::NotImplemented("non-column PARTITION BY");
            aspec.partition_columns.push_back(
                static_cast<uint32_t>(e->column_index));
            sort_keys.push_back({static_cast<uint32_t>(e->column_index), false});
          }
          for (const auto& [oe, desc] : w.order_by) {
            STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(oe));
            if (e->kind != ExprKind::kColumnRef)
              return Status::NotImplemented("non-column window ORDER BY");
            aspec.order_keys.push_back({static_cast<uint32_t>(e->column_index), desc});
            sort_keys.push_back({static_cast<uint32_t>(e->column_index), desc});
          }
          first_window = false;
        }
        WindowSpec ws;
        ws.func = w.func;
        if (w.arg) {
          STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(w.arg));
          if (e->kind != ExprKind::kColumnRef)
            return Status::NotImplemented("non-column window argument");
          ws.input_column = e->column_index;
        }
        ws.output_name = item.alias.empty() ? WindowFuncName(w.func) : item.alias;
        window_types.push_back(ws.OutputType(stream_schema.types));
        aspec.windows.push_back(ws);
      }
      gathered = std::make_unique<SortOperator>(std::move(gathered), sort_keys);
      gathered = std::make_unique<AnalyticOperator>(std::move(gathered), aspec);
    }

    std::vector<ExprPtr> out_exprs;
    size_t window_cursor = 0;
    size_t stream_width = stream_schema.size();
    for (const auto& item : stmt.items) {
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          for (size_t c = 0; c < stream_width; ++c) {
            out_exprs.push_back(ColIdx(static_cast<int>(c), stream_schema.types[c]));
            plan.column_names.push_back(stream_schema.names[c]);
          }
          break;
        case SelectItem::Kind::kExpr: {
          STRATICA_ASSIGN_OR_RETURN(ExprPtr e, rebind_to_stream(item.expr));
          out_exprs.push_back(e);
          plan.column_names.push_back(item.alias.empty() ? item.expr->ToString()
                                                         : item.alias);
          break;
        }
        case SelectItem::Kind::kWindow: {
          int col = static_cast<int>(stream_width + window_cursor);
          out_exprs.push_back(ColIdx(col, window_types[window_cursor]));
          ++window_cursor;
          plan.column_names.push_back(item.alias.empty()
                                          ? WindowFuncName(item.window.func)
                                          : item.alias);
          break;
        }
        case SelectItem::Kind::kAgg:
          return Status::Internal("agg item in non-agg path");
      }
    }
    // Window output types need correction after Analytic wiring.
    root = std::make_unique<ProjectOperator>(std::move(gathered), out_exprs,
                                             plan.column_names);
  }

  // DISTINCT: group-by over every output column.
  if (stmt.distinct) {
    GroupBySpec dspec;
    auto types = root->OutputTypes();
    for (size_t c = 0; c < types.size(); ++c)
      dspec.group_columns.push_back(static_cast<uint32_t>(c));
    dspec.output_names = plan.column_names;
    root = std::make_unique<HashGroupByOperator>(std::move(root), dspec);
  }

  // ORDER BY over the output schema (unless the scan already carries it).
  if (!stmt.order_by.empty() && !sort_eliminated) {
    BindSchema out_schema;
    auto types = root->OutputTypes();
    for (size_t c = 0; c < plan.column_names.size(); ++c)
      out_schema.Add(plan.column_names[c], types[c]);
    std::vector<SortKey> keys;
    for (const auto& [oe, desc] : stmt.order_by) {
      ExprPtr e = CloneExpr(oe);
      int idx = -1;
      // Match by alias/name first, then by rendered expression.
      if (e->kind == ExprKind::kColumnRef) {
        idx = out_schema.Find(e->column_name);
      }
      if (idx < 0) {
        std::string rendered = e->ToString();
        for (size_t c = 0; c < plan.column_names.size(); ++c) {
          if (plan.column_names[c] == rendered) idx = static_cast<int>(c);
        }
      }
      if (idx < 0)
        return Status::AnalysisError("ORDER BY must reference an output column: ",
                                     e->ToString());
      keys.push_back({static_cast<uint32_t>(idx), desc});
    }
    // A LIMIT above the Sort fuses into a top-k heap: the sort keeps only
    // limit+offset rows buffered and never externalizes (DESIGN.md §8).
    // The heap itself never spills, so huge limits (where top-k barely
    // beats a full sort anyway) stay on the externalizing path; LIMIT 0
    // still sorts as top-1 rather than sorting everything for no rows.
    constexpr uint64_t kMaxTopKHint = 128 * 1024;
    uint64_t limit_hint = 0;
    if (stmt.limit >= 0) {
      uint64_t k = static_cast<uint64_t>(stmt.limit) + static_cast<uint64_t>(stmt.offset);
      if (k <= kMaxTopKHint) limit_hint = k > 0 ? k : 1;
    }
    root = std::make_unique<SortOperator>(std::move(root), keys, limit_hint);
  }

  if (stmt.limit >= 0) {
    root = std::make_unique<LimitOperator>(std::move(root),
                                           static_cast<uint64_t>(stmt.limit),
                                           static_cast<uint64_t>(stmt.offset));
  }

  plan.column_types = root->OutputTypes();
  plan.estimated_memory_bytes = EstimatePlanMemory(*root);
  plan.fanout = fanout;
  plan.morsel_bypass = morsel_bypass;
  plan.root = std::move(root);
  return plan;
}

Result<std::string> Planner::Explain(const SelectStmt& stmt,
                                     size_t intra_node_parallelism) {
  STRATICA_ASSIGN_OR_RETURN(PhysicalPlan plan,
                            PlanSelect(stmt, intra_node_parallelism));
  return ExplainTree(*plan.root);
}

}  // namespace stratica
