#include "tuplemover/tuple_mover.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "exec/merge.h"
#include "storage/sort_util.h"

namespace stratica {

namespace {

// Remove a discarded mover output's files (the apply was rejected because
// recovery mutated the storage mid-operation; some files may already have
// been scrubbed, so failures are ignored).
void DeleteDiscardedContainerFiles(FileSystem* fs, const RosContainer& c) {
  for (const auto& col : c.columns) {
    (void)fs->Delete(col.data_path);
    (void)fs->Delete(col.index_path);
  }
  if (!c.epoch_data_path.empty()) {
    (void)fs->Delete(c.epoch_data_path);
    (void)fs->Delete(c.epoch_index_path);
  }
  (void)fs->Delete(c.dir + "/meta");
}

}  // namespace

int TupleMover::Stratum(uint64_t bytes) const {
  // Stratum s covers (base * factor^(s-1), base * factor^s].
  if (bytes <= cfg_.strata_base_bytes) return 0;
  double ratio = static_cast<double>(bytes) / static_cast<double>(cfg_.strata_base_bytes);
  return static_cast<int>(
      std::ceil(std::log(ratio) / std::log(cfg_.strata_factor) - 1e-9));
}

Status TupleMover::Moveout(ProjectionStorage* ps) {
  // Sampled before any input is read: if recovery bumps it while we work,
  // the apply below is rejected and the output discarded.
  const uint64_t gen = ps->generation();
  Epoch up_to = epochs_->LatestQueryableEpoch();
  std::vector<WosChunkPtr> chunks = ps->CommittedWosChunks(up_to);
  if (chunks.empty()) return Status::OK();

  // An uncommitted delete transaction may still be pointing at WOS
  // positions; moving them out from under it would corrupt its targets.
  // The paper serializes these cases with the T lock; we detect and defer.
  for (const auto& d : ps->WosDeleteChunks()) {
    for (Epoch e : d->epochs) {
      if (e == kUncommittedEpoch) return Status::OK();  // retry later
    }
  }

  const auto& cfg = ps->config();
  std::vector<SortKey> sort_keys;
  for (uint32_t c : cfg.sort_columns) sort_keys.push_back({c, false});

  RowBlock sorted(std::vector<TypeId>(cfg.column_types));
  std::vector<uint64_t> sorted_pos;
  std::vector<Epoch> sorted_epochs;
  if (cfg_.use_loser_tree) {
    // Sort each chunk independently (normalized-key sort), then merge the
    // sorted chunks through the shared loser-tree kernel — the same
    // n·log(chunk) + k-way-merge shape the Sort operator uses for runs.
    // Chunk order = WOS arrival order, so the merger's low-index tie-break
    // reproduces the stable concatenate-then-sort result exactly.
    std::vector<std::unique_ptr<MergeInput>> inputs;
    std::vector<std::vector<uint64_t>> chunk_pos(chunks.size());
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      const auto& chunk = chunks[ci];
      std::vector<uint32_t> perm =
          ComputeSortPermutationDirected(chunk->rows, sort_keys);
      chunk_pos[ci].reserve(perm.size());
      for (uint32_t r : perm) chunk_pos[ci].push_back(chunk->start_pos + r);
      inputs.push_back(
          std::make_unique<BlockMergeInput>(ApplyPermutation(chunk->rows, perm)));
    }
    LoserTreeMerger merger(std::move(inputs), sort_keys);
    STRATICA_RETURN_NOT_OK(merger.Init());
    std::vector<MergeSourceRef> prov;
    while (!merger.Done()) {
      prov.clear();
      STRATICA_RETURN_NOT_OK(merger.Next(&sorted, 1 << 16, &prov));
      for (const auto& ref : prov) {
        sorted_pos.push_back(chunk_pos[ref.input][ref.row]);
        sorted_epochs.push_back(chunks[ref.input]->epoch);
      }
    }
  } else {
    // Legacy path: concatenate the chunks, tracking each row's global WOS
    // position and commit epoch, then sort the whole batch.
    RowBlock all(std::vector<TypeId>(cfg.column_types));
    std::vector<uint64_t> wos_pos;
    std::vector<Epoch> row_epochs;
    for (const auto& chunk : chunks) {
      size_t n = chunk->NumRows();
      for (size_t r = 0; r < n; ++r) {
        all.AppendRowFrom(chunk->rows, r);
        wos_pos.push_back(chunk->start_pos + r);
        row_epochs.push_back(chunk->epoch);
      }
    }
    std::vector<uint32_t> perm = ComputeSortPermutation(all, cfg.sort_columns);
    sorted = ApplyPermutation(all, perm);
    sorted_pos.resize(perm.size());
    sorted_epochs.resize(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      sorted_pos[i] = wos_pos[perm[i]];
      sorted_epochs[i] = row_epochs[perm[i]];
    }
  }

  // Split by (partition key, local segment) — moveout never mixes them.
  std::map<std::pair<int64_t, uint32_t>, std::vector<uint32_t>> groups;
  STRATICA_RETURN_NOT_OK(ps->SplitForStorage(sorted, &groups));

  MoveoutApply apply;
  apply.consumed_chunks = chunks;
  apply.new_lge = up_to;
  // Map from global WOS position to (container, new position) so delete
  // vectors can chase their rows.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> pos_map;

  for (const auto& [key, rows] : groups) {
    auto [id, dir] = ps->AllocateContainer();
    RosWriter writer(ps->fs(), dir, id, cfg.projection, cfg.column_names,
                     cfg.column_types, cfg.encodings);
    RowBlock group(std::vector<TypeId>(cfg.column_types));
    std::vector<Epoch> group_epochs;
    for (uint32_t r : rows) {
      group.AppendRowFrom(sorted, r);
      group_epochs.push_back(sorted_epochs[r]);
      pos_map[sorted_pos[r]] = {id, group_epochs.size() - 1};
    }
    STRATICA_RETURN_NOT_OK(writer.Append(group, group_epochs));
    STRATICA_ASSIGN_OR_RETURN(RosContainerPtr ros,
                              writer.Finish(key.first, key.second, up_to));
    apply.new_containers.push_back(std::const_pointer_cast<RosContainer>(ros));
    stats_.rows_moved_out += rows.size();
  }

  // Translate committed WOS delete entries that point at moved rows.
  std::map<uint64_t, DeleteVectorChunkPtr> new_dvs;
  for (const auto& d : ps->WosDeleteChunks()) {
    for (size_t i = 0; i < d->positions.size(); ++i) {
      auto it = pos_map.find(d->positions[i]);
      if (it == pos_map.end()) continue;  // row still in WOS
      auto [cid, newpos] = it->second;
      auto& chunk = new_dvs[cid];
      if (!chunk) {
        chunk = std::make_shared<DeleteVectorChunk>();
        chunk->target_id = cid;
      }
      chunk->positions.push_back(newpos);
      chunk->epochs.push_back(d->epochs[i]);
    }
  }
  for (auto& [cid, chunk] : new_dvs) {
    // Keep positions sorted within the chunk.
    std::vector<size_t> order(chunk->positions.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return chunk->positions[a] < chunk->positions[b];
    });
    DeleteVectorChunk sorted_chunk;
    sorted_chunk.target_id = cid;
    for (size_t i : order) {
      sorted_chunk.positions.push_back(chunk->positions[i]);
      sorted_chunk.epochs.push_back(chunk->epochs[i]);
    }
    *chunk = std::move(sorted_chunk);
    apply.new_dvs.push_back(chunk);
  }

  apply.base_generation = gen;
  Status st = ps->ApplyMoveout(apply);
  if (st.code() == StatusCode::kTxnAborted) {
    // The node crashed / was recovered while this moveout ran; the consumed
    // WOS chunks no longer exist and the output must not be published.
    for (const auto& c : apply.new_containers) {
      DeleteDiscardedContainerFiles(ps->fs(), *c);
    }
    ++stats_.stale_applies;
    return Status::OK();
  }
  if (st.ok()) ++stats_.moveouts;
  return st;
}

Result<bool> TupleMover::MergeoutOnce(ProjectionStorage* ps) {
  const uint64_t gen = ps->generation();
  std::vector<RosContainerPtr> containers = ps->Containers();
  // Candidate groups: committed containers keyed by (partition, segment,
  // stratum). Partition and local-segment boundaries are always preserved.
  std::map<std::tuple<int64_t, uint32_t, int>, std::vector<RosContainerPtr>> buckets;
  for (const auto& c : containers) {
    if (c->min_epoch == kUncommittedEpoch) continue;
    buckets[{c->partition_key, c->local_segment, Stratum(c->total_bytes)}].push_back(c);
  }
  // Lowest stratum first: small files hurt the most (seeks, handles, merge
  // fan-in), and merging upward keeps rewrite counts logarithmic.
  const std::vector<RosContainerPtr>* best = nullptr;
  std::tuple<int64_t, uint32_t, int> best_key;
  for (const auto& [key, group] : buckets) {
    if (group.size() < cfg_.merge_fanin_min) continue;
    if (!best || std::get<2>(key) < std::get<2>(best_key)) {
      best = &group;
      best_key = key;
    }
  }
  if (!best) return false;

  std::vector<RosContainerPtr> inputs = *best;
  std::sort(inputs.begin(), inputs.end(),
            [](const RosContainerPtr& a, const RosContainerPtr& b) {
              return a->total_bytes < b->total_bytes;
            });
  if (inputs.size() > cfg_.merge_fanin_max) inputs.resize(cfg_.merge_fanin_max);
  // Respect the maximum container size.
  uint64_t total = 0;
  size_t take = 0;
  for (; take < inputs.size(); ++take) {
    if (total + inputs[take]->total_bytes > cfg_.max_ros_bytes) break;
    total += inputs[take]->total_bytes;
  }
  if (take < cfg_.merge_fanin_min) return false;
  inputs.resize(take);

  const auto& cfg = ps->config();
  Epoch ahm = epochs_->ahm();

  // Load sources (each already sorted by the projection sort order) along
  // with epochs and delete entries.
  struct Source {
    RowBlock rows;
    std::vector<Epoch> epochs;
    std::vector<std::pair<uint64_t, Epoch>> deletes;  // sorted by position
    size_t cursor = 0;
  };
  std::vector<Source> sources(inputs.size());
  for (size_t s = 0; s < inputs.size(); ++s) {
    STRATICA_RETURN_NOT_OK(
        ReadRosContainer(ps->fs(), *inputs[s], &sources[s].rows, &sources[s].epochs));
    for (const auto& d : ps->ContainerDeleteChunks(inputs[s]->id)) {
      for (size_t i = 0; i < d->positions.size(); ++i) {
        sources[s].deletes.emplace_back(d->positions[i], d->epochs[i]);
      }
    }
    std::sort(sources[s].deletes.begin(), sources[s].deletes.end());
  }

  auto [new_id, dir] = ps->AllocateContainer();
  RosWriter writer(ps->fs(), dir, new_id, cfg.projection, cfg.column_names,
                   cfg.column_types, cfg.encodings);

  auto new_dv = std::make_shared<DeleteVectorChunk>();
  new_dv->target_id = new_id;

  // K-way merge; batched appends to the writer. Deleted state of a merged
  // row is looked up in its source's sorted (position, epoch) delete list;
  // rows deleted at or before the AHM are purged (no one can query history
  // there), surviving deletes are re-targeted at output positions.
  RowBlock out_batch(std::vector<TypeId>(cfg.column_types));
  std::vector<Epoch> out_epochs;
  uint64_t out_pos = 0;
  constexpr size_t kBatch = 8192;
  auto delete_state = [&](size_t s, uint64_t pos, Epoch* del_epoch) {
    const auto& dels = sources[s].deletes;
    auto it = std::lower_bound(dels.begin(), dels.end(), std::make_pair(pos, Epoch{0}));
    if (it == dels.end() || it->first != pos) return false;
    *del_epoch = it->second;
    return true;
  };
  if (cfg_.use_loser_tree) {
    // Shared merge kernel (DESIGN.md §8): sources stream through the loser
    // tree, provenance maps each merged row back to (source, position) for
    // epoch and delete-vector lookups, and purged rows are masked out of
    // the batch in one FilterPhysical pass.
    std::vector<SortKey> sort_keys;
    for (uint32_t c : cfg.sort_columns) sort_keys.push_back({c, false});
    std::vector<std::unique_ptr<MergeInput>> merge_inputs;
    for (auto& src : sources) {
      merge_inputs.push_back(std::make_unique<BlockMergeInput>(std::move(src.rows)));
    }
    LoserTreeMerger merger(std::move(merge_inputs), sort_keys);
    STRATICA_RETURN_NOT_OK(merger.Init());
    std::vector<MergeSourceRef> prov;
    std::vector<uint8_t> keep;
    while (!merger.Done()) {
      out_batch = RowBlock(std::vector<TypeId>(cfg.column_types));
      out_epochs.clear();
      prov.clear();
      STRATICA_RETURN_NOT_OK(merger.Next(&out_batch, kBatch, &prov));
      size_t n = out_batch.NumRows();
      if (n == 0) break;
      keep.assign(n, 1);
      bool purged_any = false;
      for (size_t i = 0; i < n; ++i) {
        size_t s = prov[i].input;
        uint64_t pos = prov[i].row;
        Epoch del_epoch = 0;
        bool deleted = delete_state(s, pos, &del_epoch);
        if (deleted && del_epoch <= ahm) {
          keep[i] = 0;
          purged_any = true;
          ++stats_.rows_purged;
        } else {
          out_epochs.push_back(sources[s].epochs[pos]);
          if (deleted) {
            new_dv->positions.push_back(out_pos);
            new_dv->epochs.push_back(del_epoch);
          }
          ++out_pos;
        }
        ++stats_.rows_merged;
      }
      if (purged_any) {
        for (auto& col : out_batch.columns) col.FilterPhysical(keep);
      }
      if (out_batch.NumRows() > 0) {
        STRATICA_RETURN_NOT_OK(writer.Append(out_batch, out_epochs));
      }
    }
  } else {
    // Legacy comparator loop (A/B baseline; byte-identical output).
    for (;;) {
      int min_src = -1;
      for (size_t s = 0; s < sources.size(); ++s) {
        if (sources[s].cursor >= sources[s].rows.NumRows()) continue;
        if (min_src < 0 ||
            CompareRows(sources[s].rows, sources[s].cursor, sources[min_src].rows,
                        sources[min_src].cursor, cfg.sort_columns,
                        cfg.sort_columns) < 0) {
          min_src = static_cast<int>(s);
        }
      }
      if (min_src < 0) break;
      Source& src = sources[min_src];
      uint64_t pos = src.cursor;
      Epoch del_epoch = 0;
      bool deleted = delete_state(static_cast<size_t>(min_src), pos, &del_epoch);
      if (deleted && del_epoch <= ahm) {
        ++stats_.rows_purged;
      } else {
        out_batch.AppendRowFrom(src.rows, pos);
        out_epochs.push_back(src.epochs[pos]);
        if (deleted) {
          new_dv->positions.push_back(out_pos);
          new_dv->epochs.push_back(del_epoch);
        }
        ++out_pos;
        if (out_batch.NumRows() >= kBatch) {
          STRATICA_RETURN_NOT_OK(writer.Append(out_batch, out_epochs));
          out_batch.Clear();
          out_epochs.clear();
        }
      }
      ++src.cursor;
      ++stats_.rows_merged;
    }
    if (out_batch.NumRows() > 0) {
      STRATICA_RETURN_NOT_OK(writer.Append(out_batch, out_epochs));
    }
  }

  auto [pk, seg] = std::make_pair(inputs[0]->partition_key, inputs[0]->local_segment);
  STRATICA_ASSIGN_OR_RETURN(RosContainerPtr merged, writer.Finish(pk, seg, 0));

  MergeoutApply apply;
  for (const auto& c : inputs) apply.removed_container_ids.push_back(c->id);
  apply.new_container = std::const_pointer_cast<RosContainer>(merged);
  if (!new_dv->positions.empty()) apply.new_dvs.push_back(new_dv);
  apply.base_generation = gen;
  Status st = ps->ApplyMergeout(apply);
  if (st.code() == StatusCode::kTxnAborted) {
    // Recovery rewrote the storage under this mergeout; discard the output
    // (its inputs may be truncated and its files already scrubbed).
    DeleteDiscardedContainerFiles(ps->fs(), *apply.new_container);
    ++stats_.stale_applies;
    return false;
  }
  STRATICA_RETURN_NOT_OK(st);
  ++stats_.mergeouts;
  return true;
}

Status TupleMover::MergeoutAll(ProjectionStorage* ps) {
  for (;;) {
    STRATICA_ASSIGN_OR_RETURN(bool merged, MergeoutOnce(ps));
    if (!merged) return Status::OK();
  }
}

Status TupleMover::MoveDeleteVectors(ProjectionStorage* ps) {
  const uint64_t gen = ps->generation();
  // DVWOS -> DVROS: persist committed, unpersisted chunks using the same
  // storage format as user data.
  for (const auto& d : ps->ContainerDeleteChunks(kWosTargetId)) {
    (void)d;  // WOS-target chunks stay in memory until their rows move out.
  }
  std::vector<RosContainerPtr> containers = ps->Containers();
  for (const auto& c : containers) {
    for (const auto& d : ps->ContainerDeleteChunks(c->id)) {
      if (d->persisted || d->size() == 0) continue;
      bool committed = true;
      for (Epoch e : d->epochs) committed &= (e != kUncommittedEpoch);
      if (!committed) continue;
      // Recovery rewrote the storage: the chunk may no longer be in the
      // manifest and the target directory may be gone. Stop; the next pass
      // re-reads a consistent state.
      if (ps->generation() != gen) return Status::OK();
      std::string path = c->dir + "/dv" + std::to_string(reinterpret_cast<uintptr_t>(d.get()));
      STRATICA_RETURN_NOT_OK(WriteDvRos(ps->fs(), *d, path));
      d->persisted = true;
      d->dv_path = path;
      ++stats_.dv_chunks_persisted;
    }
  }
  return Status::OK();
}

}  // namespace stratica
