// The Tuple Mover (Section 4): the automatic background system that
// rearranges physical data files.
//
//   Moveout  — asynchronously moves committed WOS data into sorted,
//              encoded ROS containers (advancing the Last Good Epoch).
//   Mergeout — merges small ROS containers into exponentially-sized strata,
//              purging history older than the Ancient History Mark. Output
//              always lands in at least one stratum above its inputs and
//              never exceeds the max container size, strongly bounding how
//              many times any tuple is rewritten. WOS and ROS data are
//              never intermixed in one operation: each mergeout reads each
//              tuple from disk once and writes it once.
//
// Both operations preserve partition and local-segment boundaries and are
// planned per node with no cross-cluster coordination (container layouts
// are private to every node).
#ifndef STRATICA_TUPLEMOVER_TUPLE_MOVER_H_
#define STRATICA_TUPLEMOVER_TUPLE_MOVER_H_

#include <cstdint>

#include "storage/projection_storage.h"
#include "txn/epoch.h"

namespace stratica {

struct TupleMoverConfig {
  /// Upper bound of stratum 0 in encoded bytes.
  uint64_t strata_base_bytes = 1 << 20;
  /// Exponential growth factor between strata.
  double strata_factor = 8.0;
  /// Trigger mergeout when a (partition, segment, stratum) group holds at
  /// least this many containers.
  size_t merge_fanin_min = 2;
  size_t merge_fanin_max = 16;
  /// Never produce a container larger than this (the paper uses 2TB).
  uint64_t max_ros_bytes = 2ull << 40;
  /// A/B knob (DESIGN.md §8): order moveout/mergeout rows through the
  /// shared normalized-key loser-tree merge kernel (exec/merge). False
  /// falls back to the legacy per-row comparator loops — kept for
  /// differential tests and the bench baseline; both produce byte-identical
  /// containers.
  bool use_loser_tree = true;
};

struct TupleMoverStats {
  uint64_t moveouts = 0;
  uint64_t mergeouts = 0;
  uint64_t rows_moved_out = 0;
  uint64_t rows_merged = 0;        ///< Rows read+written by mergeout (rewrites).
  uint64_t rows_purged = 0;        ///< Deleted-before-AHM rows elided.
  uint64_t dv_chunks_persisted = 0;
  /// Moveout/mergeout results discarded because recovery (crash, truncate,
  /// clear, scrub) mutated the storage while the operation ran.
  uint64_t stale_applies = 0;
};

/// \brief Per-node tuple mover. Thread-compatible: callers serialize
/// operations per ProjectionStorage (the background service does).
class TupleMover {
 public:
  explicit TupleMover(EpochManager* epochs, TupleMoverConfig cfg = {})
      : epochs_(epochs), cfg_(cfg) {}

  /// Move all committed WOS data (epoch <= latest queryable) to new ROS
  /// containers; translates WOS delete vectors to container targets and
  /// advances the projection's LGE. Skipped (OK) when an in-flight delete
  /// transaction still targets the WOS.
  Status Moveout(ProjectionStorage* ps);

  /// One mergeout operation: pick the lowest-stratum candidate group and
  /// merge it. Returns true if a merge happened.
  Result<bool> MergeoutOnce(ProjectionStorage* ps);

  /// Run mergeout to quiescence.
  Status MergeoutAll(ProjectionStorage* ps);

  /// Persist committed in-memory delete-vector chunks to DVROS files.
  Status MoveDeleteVectors(ProjectionStorage* ps);

  /// Stratum of a container of `bytes` encoded bytes.
  int Stratum(uint64_t bytes) const;

  const TupleMoverStats& stats() const { return stats_; }
  const TupleMoverConfig& config() const { return cfg_; }

 private:
  EpochManager* epochs_;
  TupleMoverConfig cfg_;
  TupleMoverStats stats_;
};

}  // namespace stratica

#endif  // STRATICA_TUPLEMOVER_TUPLE_MOVER_H_
