// The metadata catalog: tables and projections (Sections 3.1-3.6, 5.3).
//
// Tables are purely logical. Projections are the only physical data
// structure: sorted subsets of a table's columns with per-column encodings,
// a sort order, and a segmentation (or replication) clause. Every table
// must keep at least one *super* projection containing all of its columns —
// Vertica dropped C-Store's join indices entirely (Section 3.2).
//
// As in the paper, the catalog is a memory-resident structure persisted via
// its own mechanism (a versioned snapshot file), not stored in database
// tables.
#ifndef STRATICA_CATALOG_CATALOG_H_
#define STRATICA_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/status.h"
#include "common/types.h"
#include "expr/expr.h"
#include "storage/encoding.h"

namespace stratica {

struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool nullable = true;
};

/// \brief Logical table: columns plus an optional intra-node partition
/// expression (Section 3.5). Partitioning is a *table* property (not a
/// projection property) so bulk drop works across all projections.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  ExprPtr partition_by;  // bound against the table schema; null = none

  int FindColumn(const std::string& col_name) const;
  BindSchema ToBindSchema() const;
};

/// \brief Inter-node data placement for one projection (Section 3.6).
///
/// Replicated projections store every tuple on every node. Segmented
/// projections map each tuple to exactly one node via the ring position of
/// `expr` (most commonly HASH(high-cardinality-columns)). `node_offset`
/// rotates the ring assignment and is how buddy projections guarantee that
/// no row lands on the same node as its primary copy (Section 5.2).
struct SegmentationSpec {
  bool replicated = false;
  ExprPtr expr;              // bound against the projection's columns
  uint32_t node_offset = 0;  // ring rotation; buddies use 1..K

  std::string ToString() const;
};

struct ProjectionColumnDef {
  std::string name;       // anchor-table column name ("dim.col" for prejoins)
  int table_column = -1;  // index into the anchor table's columns; -1 for
                          // prejoined dimension columns
  EncodingId encoding = EncodingId::kAuto;
};

/// N:1 prejoin specification (Section 3.3): rows of the anchor (fact) table
/// are joined with dimension rows at load time and stored denormalized.
struct PrejoinDimension {
  std::string dim_table;
  std::vector<std::string> fact_join_columns;
  std::vector<std::string> dim_join_columns;
};

struct ProjectionDef {
  std::string name;
  std::string anchor_table;
  std::vector<ProjectionColumnDef> columns;
  std::vector<uint32_t> sort_columns;  // indexes into `columns`, major first
  SegmentationSpec segmentation;
  std::vector<PrejoinDimension> prejoins;
  bool is_super = false;
  std::string buddy_of;  // primary projection name when this is a buddy copy

  int FindColumn(const std::string& col_name) const;
  /// Schema of the projection's stored rows.
  BindSchema ToBindSchema(const TableDef& table) const;
  std::vector<TypeId> ColumnTypes(const TableDef& table) const;
  bool IsPrejoin() const { return !prejoins.empty(); }
};

/// \brief Thread-safe catalog with DDL operations and snapshot persistence.
class Catalog {
 public:
  Catalog() = default;

  Status CreateTable(TableDef table);
  Status DropTable(const std::string& name);
  Result<TableDef> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Validates and registers a projection: anchor exists, all columns
  /// resolve, sort columns valid, segmentation expression binds, and super
  /// flag set automatically when the projection covers all anchor columns.
  Status CreateProjection(ProjectionDef proj);
  Status DropProjection(const std::string& name);
  Result<ProjectionDef> GetProjection(const std::string& name) const;
  std::vector<ProjectionDef> ProjectionsForTable(const std::string& table) const;
  std::vector<std::string> ProjectionNames() const;

  /// True if the table has at least one super projection (required before
  /// data can be loaded).
  bool HasSuperProjection(const std::string& table) const;

  /// Monotone DDL version, bumped on every change.
  uint64_t version() const;

  /// Snapshot persistence ("its own mechanism", Section 5.3).
  Status Save(FileSystem* fs, const std::string& path) const;
  Status Load(FileSystem* fs, const std::string& path);

 private:
  Status ValidateProjection(ProjectionDef* proj) const;

  mutable std::mutex mu_;
  std::map<std::string, TableDef> tables_;
  std::map<std::string, ProjectionDef> projections_;
  uint64_t version_ = 0;
};

/// Build the default super projection for a table: all columns, sorted by
/// the first few columns, segmented by hash of the first column (or
/// replicated if `replicated`). Mirrors what the Database Designer proposes
/// as a baseline (Section 6.3).
ProjectionDef MakeDefaultSuperProjection(const TableDef& table, bool replicated = false);

/// Derive the buddy projection (same columns, ring offset k) used for
/// K-safety (Section 5.2).
ProjectionDef MakeBuddyProjection(const ProjectionDef& primary, uint32_t offset);

}  // namespace stratica

#endif  // STRATICA_CATALOG_CATALOG_H_
