#include "catalog/catalog.h"

#include <algorithm>
#include <sstream>

#include "common/checksum.h"
#include "expr/serialize.h"

namespace stratica {

int TableDef::FindColumn(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col_name) return static_cast<int>(i);
  }
  return -1;
}

BindSchema TableDef::ToBindSchema() const {
  BindSchema s;
  for (const auto& c : columns) s.Add(c.name, c.type);
  return s;
}

std::string SegmentationSpec::ToString() const {
  if (replicated) return "UNSEGMENTED ALL NODES";
  std::string s = "SEGMENTED BY " + (expr ? expr->ToString() : "<none>");
  if (node_offset != 0) s += " OFFSET " + std::to_string(node_offset);
  return s;
}

int ProjectionDef::FindColumn(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col_name) return static_cast<int>(i);
  }
  return -1;
}

BindSchema ProjectionDef::ToBindSchema(const TableDef& table) const {
  BindSchema s;
  for (const auto& pc : columns) {
    TypeId t = TypeId::kInt64;
    if (pc.table_column >= 0 && pc.table_column < static_cast<int>(table.columns.size()))
      t = table.columns[pc.table_column].type;
    s.Add(pc.name, t);
  }
  return s;
}

std::vector<TypeId> ProjectionDef::ColumnTypes(const TableDef& table) const {
  std::vector<TypeId> types;
  for (const auto& pc : columns) {
    types.push_back(pc.table_column >= 0 ? table.columns[pc.table_column].type
                                         : TypeId::kInt64);
  }
  return types;
}

Status Catalog::CreateTable(TableDef table) {
  std::lock_guard lock(mu_);
  if (tables_.count(table.name))
    return Status::AlreadyExists("table exists: ", table.name);
  if (table.columns.empty())
    return Status::InvalidArgument("table needs at least one column: ", table.name);
  for (size_t i = 0; i < table.columns.size(); ++i) {
    for (size_t j = i + 1; j < table.columns.size(); ++j) {
      if (table.columns[i].name == table.columns[j].name)
        return Status::InvalidArgument("duplicate column: ", table.columns[i].name);
    }
  }
  if (table.partition_by) {
    STRATICA_RETURN_NOT_OK(BindExpr(table.partition_by, table.ToBindSchema()));
    if (!IsIntegerLike(table.partition_by->type))
      return Status::InvalidArgument("partition expression must be integral");
  }
  tables_.emplace(table.name, std::move(table));
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard lock(mu_);
  if (tables_.erase(name) == 0) return Status::NotFound("no such table: ", name);
  for (auto it = projections_.begin(); it != projections_.end();) {
    if (it->second.anchor_table == name) {
      it = projections_.erase(it);
    } else {
      ++it;
    }
  }
  ++version_;
  return Status::OK();
}

Result<TableDef> Catalog::GetTable(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: ", name);
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

Status Catalog::ValidateProjection(ProjectionDef* proj) const {
  auto it = tables_.find(proj->anchor_table);
  if (it == tables_.end())
    return Status::NotFound("anchor table not found: ", proj->anchor_table);
  const TableDef& table = it->second;

  if (proj->columns.empty())
    return Status::InvalidArgument("projection needs columns: ", proj->name);

  // Resolve anchor-table columns (prejoined dimension columns keep -1 and
  // are typed by the load path).
  for (auto& pc : proj->columns) {
    if (pc.name.find('.') != std::string::npos && proj->IsPrejoin()) continue;
    int idx = table.FindColumn(pc.name);
    if (idx < 0)
      return Status::AnalysisError("projection column not in table: ", pc.name);
    pc.table_column = idx;
    if (!EncodingSupports(pc.encoding, StorageClassOf(table.columns[idx].type)))
      return Status::InvalidArgument("encoding ", EncodingName(pc.encoding),
                                     " unsupported for column ", pc.name);
  }
  for (uint32_t s : proj->sort_columns) {
    if (s >= proj->columns.size())
      return Status::InvalidArgument("sort column index out of range in ", proj->name);
  }
  // Super: covers every anchor column.
  size_t covered = 0;
  for (const auto& c : table.columns) {
    if (proj->FindColumn(c.name) >= 0) ++covered;
  }
  proj->is_super = covered == table.columns.size();

  if (!proj->segmentation.replicated) {
    if (!proj->segmentation.expr)
      return Status::InvalidArgument("segmented projection needs an expression");
    STRATICA_RETURN_NOT_OK(
        BindExpr(proj->segmentation.expr, proj->ToBindSchema(table)));
    if (!IsIntegerLike(proj->segmentation.expr->type))
      return Status::InvalidArgument("segmentation expression must be integral");
  }
  return Status::OK();
}

Status Catalog::CreateProjection(ProjectionDef proj) {
  std::lock_guard lock(mu_);
  if (projections_.count(proj.name))
    return Status::AlreadyExists("projection exists: ", proj.name);
  STRATICA_RETURN_NOT_OK(ValidateProjection(&proj));
  projections_.emplace(proj.name, std::move(proj));
  ++version_;
  return Status::OK();
}

Status Catalog::DropProjection(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = projections_.find(name);
  if (it == projections_.end()) return Status::NotFound("no such projection: ", name);
  // Enforce the super-projection invariant: the last super projection of a
  // table (and its buddies) cannot be dropped while the table exists.
  if (it->second.is_super && it->second.buddy_of.empty()) {
    int supers = 0;
    for (const auto& [n, p] : projections_) {
      if (p.anchor_table == it->second.anchor_table && p.is_super && p.buddy_of.empty())
        ++supers;
    }
    if (supers <= 1 && tables_.count(it->second.anchor_table))
      return Status::InvalidArgument("cannot drop the last super projection of ",
                                     it->second.anchor_table);
  }
  projections_.erase(it);
  ++version_;
  return Status::OK();
}

Result<ProjectionDef> Catalog::GetProjection(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = projections_.find(name);
  if (it == projections_.end()) return Status::NotFound("no such projection: ", name);
  return it->second;
}

std::vector<ProjectionDef> Catalog::ProjectionsForTable(const std::string& table) const {
  std::lock_guard lock(mu_);
  std::vector<ProjectionDef> out;
  for (const auto& [name, p] : projections_) {
    if (p.anchor_table == table) out.push_back(p);
  }
  return out;
}

std::vector<std::string> Catalog::ProjectionNames() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, p] : projections_) names.push_back(name);
  return names;
}

bool Catalog::HasSuperProjection(const std::string& table) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, p] : projections_) {
    if (p.anchor_table == table && p.is_super) return true;
  }
  return false;
}

uint64_t Catalog::version() const {
  std::lock_guard lock(mu_);
  return version_;
}

// ---------------------------------------------------------------------------
// Persistence: line-oriented text snapshot. Each record is one line;
// embedded expressions use the s-expression serializer.

namespace {
std::string JoinInts(const std::vector<uint32_t>& v) {
  std::string s;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s;
}
}  // namespace

Status Catalog::Save(FileSystem* fs, const std::string& path) const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "stratica_catalog_v1\n";
  out << "version\t" << version_ << "\n";
  for (const auto& [name, t] : tables_) {
    out << "table\t" << name << "\t" << t.columns.size() << "\t"
        << (t.partition_by ? SerializeExpr(*t.partition_by) : "-") << "\n";
    for (const auto& c : t.columns) {
      out << "column\t" << c.name << "\t" << static_cast<int>(c.type) << "\t"
          << (c.nullable ? 1 : 0) << "\n";
    }
  }
  for (const auto& [name, p] : projections_) {
    out << "projection\t" << name << "\t" << p.anchor_table << "\t"
        << p.columns.size() << "\t" << JoinInts(p.sort_columns) << "\t"
        << (p.segmentation.replicated ? "-" : SerializeExpr(*p.segmentation.expr))
        << "\t" << p.segmentation.node_offset << "\t" << (p.is_super ? 1 : 0) << "\t"
        << (p.buddy_of.empty() ? "-" : p.buddy_of) << "\n";
    for (const auto& pc : p.columns) {
      out << "pcolumn\t" << pc.name << "\t" << pc.table_column << "\t"
          << static_cast<int>(pc.encoding) << "\n";
    }
    for (const auto& pj : p.prejoins) {
      out << "prejoin\t" << pj.dim_table << "\t";
      for (size_t i = 0; i < pj.fact_join_columns.size(); ++i) {
        if (i) out << ",";
        out << pj.fact_join_columns[i];
      }
      out << "\t";
      for (size_t i = 0; i < pj.dim_join_columns.size(); ++i) {
        if (i) out << ",";
        out << pj.dim_join_columns[i];
      }
      out << "\n";
    }
  }
  // Catalog snapshots carry the integrity footer: a torn backup must fail
  // restore loudly, not parse a prefix (DESIGN.md §10).
  return WriteFileChecksummed(fs, path, out.str());
}

namespace {
std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}
}  // namespace

Status Catalog::Load(FileSystem* fs, const std::string& path) {
  STRATICA_ASSIGN_OR_RETURN(std::string data, ReadFileChecksummed(fs, path));
  std::lock_guard lock(mu_);
  tables_.clear();
  projections_.clear();
  std::istringstream in(data);
  std::string line;
  if (!std::getline(in, line) || line != "stratica_catalog_v1")
    return Status::Corruption("bad catalog header");
  TableDef* cur_table = nullptr;
  ProjectionDef* cur_proj = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto f = SplitTabs(line);
    if (f[0] == "version") {
      version_ = std::strtoull(f[1].c_str(), nullptr, 10);
    } else if (f[0] == "table") {
      TableDef t;
      t.name = f[1];
      if (f[3] != "-") {
        STRATICA_ASSIGN_OR_RETURN(t.partition_by, ParseSerializedExpr(f[3]));
      }
      cur_table = &tables_.emplace(t.name, std::move(t)).first->second;
      cur_proj = nullptr;
    } else if (f[0] == "column") {
      if (!cur_table) return Status::Corruption("column before table");
      cur_table->columns.push_back(
          {f[1], static_cast<TypeId>(std::atoi(f[2].c_str())), f[3] == "1"});
    } else if (f[0] == "projection") {
      ProjectionDef p;
      p.name = f[1];
      p.anchor_table = f[2];
      for (const auto& s : SplitCommas(f[4]))
        p.sort_columns.push_back(static_cast<uint32_t>(std::atoi(s.c_str())));
      if (f[5] == "-") {
        p.segmentation.replicated = true;
      } else {
        STRATICA_ASSIGN_OR_RETURN(p.segmentation.expr, ParseSerializedExpr(f[5]));
      }
      p.segmentation.node_offset = static_cast<uint32_t>(std::atoi(f[6].c_str()));
      p.is_super = f[7] == "1";
      if (f[8] != "-") p.buddy_of = f[8];
      cur_proj = &projections_.emplace(p.name, std::move(p)).first->second;
      cur_table = nullptr;
    } else if (f[0] == "pcolumn") {
      if (!cur_proj) return Status::Corruption("pcolumn before projection");
      cur_proj->columns.push_back(
          {f[1], std::atoi(f[2].c_str()),
           static_cast<EncodingId>(std::atoi(f[3].c_str()))});
    } else if (f[0] == "prejoin") {
      if (!cur_proj) return Status::Corruption("prejoin before projection");
      PrejoinDimension pj;
      pj.dim_table = f[1];
      pj.fact_join_columns = SplitCommas(f[2]);
      pj.dim_join_columns = SplitCommas(f[3]);
      cur_proj->prejoins.push_back(std::move(pj));
    } else {
      return Status::Corruption("unknown catalog record: ", f[0]);
    }
  }
  // Rebind expressions against the loaded schemas.
  for (auto& [name, t] : tables_) {
    if (t.partition_by) STRATICA_RETURN_NOT_OK(BindExpr(t.partition_by, t.ToBindSchema()));
  }
  for (auto& [name, p] : projections_) {
    if (!p.segmentation.replicated) {
      auto it = tables_.find(p.anchor_table);
      if (it == tables_.end()) return Status::Corruption("projection without table");
      STRATICA_RETURN_NOT_OK(
          BindExpr(p.segmentation.expr, p.ToBindSchema(it->second)));
    }
  }
  return Status::OK();
}

ProjectionDef MakeDefaultSuperProjection(const TableDef& table, bool replicated) {
  ProjectionDef p;
  p.name = table.name + "_super";
  p.anchor_table = table.name;
  for (const auto& c : table.columns) {
    p.columns.push_back({c.name, table.FindColumn(c.name), EncodingId::kAuto});
  }
  // Sort by the leading columns (up to 3), a reasonable DBD-like default.
  for (uint32_t i = 0; i < table.columns.size() && i < 3; ++i)
    p.sort_columns.push_back(i);
  if (replicated) {
    p.segmentation.replicated = true;
  } else {
    p.segmentation.expr = Func(FuncKind::kHash, {Col(table.columns[0].name)});
  }
  p.is_super = true;
  return p;
}

ProjectionDef MakeBuddyProjection(const ProjectionDef& primary, uint32_t offset) {
  ProjectionDef buddy = primary;
  buddy.name = primary.name + "_b" + std::to_string(offset);
  buddy.buddy_of = primary.name;
  buddy.segmentation.node_offset = offset;
  if (buddy.segmentation.expr) buddy.segmentation.expr = CloneExpr(buddy.segmentation.expr);
  return buddy;
}

}  // namespace stratica
