// Transactions (Section 5).
//
// Vertica never modifies storage in place: a transaction accumulates new
// WOS chunks, ROS containers and delete-vector chunks, all stamped
// kUncommittedEpoch. Commit assigns the commit epoch (advancing the global
// epoch when the transaction contains DML) and stamps everything; rollback
// "simply entails discarding any ROS container or WOS data created by the
// transaction".
#ifndef STRATICA_TXN_TRANSACTION_H_
#define STRATICA_TXN_TRANSACTION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "txn/epoch.h"
#include "txn/lock_manager.h"

namespace stratica {

/// \brief One transaction's state: snapshot epoch, DML flag, and the
/// stamp/discard callbacks registered by the storage layer.
class Transaction {
 public:
  Transaction(uint64_t id, Epoch snapshot) : id_(id), snapshot_epoch_(snapshot) {}

  uint64_t id() const { return id_; }
  /// Epoch this transaction's reads target (READ COMMITTED: the latest
  /// complete epoch at Begin).
  Epoch snapshot_epoch() const { return snapshot_epoch_; }

  bool is_dml() const { return is_dml_; }
  void MarkDml() { is_dml_ = true; }

  /// Storage registers how to stamp its uncommitted artifacts with the
  /// commit epoch, and how to discard them on rollback.
  void OnCommit(std::function<void(Epoch)> fn) { commit_fns_.push_back(std::move(fn)); }
  void OnRollback(std::function<void()> fn) { rollback_fns_.push_back(std::move(fn)); }

 private:
  friend class TransactionManager;
  uint64_t id_;
  Epoch snapshot_epoch_;
  bool is_dml_ = false;
  bool finished_ = false;
  std::vector<std::function<void(Epoch)>> commit_fns_;
  std::vector<std::function<void()>> rollback_fns_;
};

using TransactionPtr = std::shared_ptr<Transaction>;

/// \brief Begin/commit/rollback plus the commit-serialization point that
/// makes "one epoch per DML commit" well defined on a node.
///
/// Cluster-wide quorum commit (Section 5: no two-phase commit; nodes that
/// miss a commit are ejected and later recover) is layered on top by
/// cluster::Cluster, which drives one TransactionManager per node with the
/// same commit epoch.
class TransactionManager {
 public:
  TransactionManager(EpochManager* epochs, LockManager* locks)
      : epochs_(epochs), locks_(locks) {}

  TransactionPtr Begin();

  /// Commit: DML transactions receive a fresh epoch (auto epoch
  /// advancement, Section 5.1); read-only transactions just release locks.
  /// Returns the commit epoch (0 for read-only).
  Result<Epoch> Commit(const TransactionPtr& txn);

  /// Commit with an externally agreed epoch (cluster quorum commit path).
  Status CommitAt(const TransactionPtr& txn, Epoch epoch);

  void Rollback(const TransactionPtr& txn);

  LockManager* locks() { return locks_; }
  EpochManager* epochs() { return epochs_; }

 private:
  EpochManager* epochs_;
  LockManager* locks_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::mutex commit_mu_;
};

}  // namespace stratica

#endif  // STRATICA_TXN_TRANSACTION_H_
