#include "txn/transaction.h"

namespace stratica {

TransactionPtr TransactionManager::Begin() {
  return std::make_shared<Transaction>(next_txn_id_.fetch_add(1),
                                       epochs_->LatestQueryableEpoch());
}

Result<Epoch> TransactionManager::Commit(const TransactionPtr& txn) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return Status::TxnAborted("transaction already finished");
  Epoch commit_epoch = 0;
  if (txn->is_dml()) {
    // Stamp every copy at the upcoming epoch *before* advancing the
    // counter: the instant the counter moves, that epoch is queryable, so
    // a scan between advance and stamp would see a torn commit (some
    // copies stamped, others still uncommitted). Commits serialize under
    // commit_mu_, so the counter cannot move between the read and the
    // advance.
    commit_epoch = epochs_->LatestQueryableEpoch() + 1;
    for (auto& fn : txn->commit_fns_) fn(commit_epoch);
    (void)epochs_->CommitAndAdvance();  // returns commit_epoch
  } else {
    for (auto& fn : txn->commit_fns_) fn(commit_epoch);
  }
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
  return commit_epoch;
}

Status TransactionManager::CommitAt(const TransactionPtr& txn, Epoch epoch) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return Status::TxnAborted("transaction already finished");
  for (auto& fn : txn->commit_fns_) fn(epoch);
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
  return Status::OK();
}

void TransactionManager::Rollback(const TransactionPtr& txn) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return;
  for (auto& fn : txn->rollback_fns_) fn();
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
}

}  // namespace stratica
