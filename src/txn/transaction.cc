#include "txn/transaction.h"

namespace stratica {

TransactionPtr TransactionManager::Begin() {
  return std::make_shared<Transaction>(next_txn_id_.fetch_add(1),
                                       epochs_->LatestQueryableEpoch());
}

Result<Epoch> TransactionManager::Commit(const TransactionPtr& txn) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return Status::TxnAborted("transaction already finished");
  Epoch commit_epoch = 0;
  if (txn->is_dml()) commit_epoch = epochs_->CommitAndAdvance();
  for (auto& fn : txn->commit_fns_) fn(commit_epoch);
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
  return commit_epoch;
}

Status TransactionManager::CommitAt(const TransactionPtr& txn, Epoch epoch) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return Status::TxnAborted("transaction already finished");
  for (auto& fn : txn->commit_fns_) fn(epoch);
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
  return Status::OK();
}

void TransactionManager::Rollback(const TransactionPtr& txn) {
  std::lock_guard lock(commit_mu_);
  if (txn->finished_) return;
  for (auto& fn : txn->rollback_fns_) fn();
  txn->finished_ = true;
  locks_->ReleaseAll(txn->id());
}

}  // namespace stratica
