// Table locking (Section 5, Tables 1 and 2).
//
// Vertica's analytic-appropriate lock model: most queries read a snapshot
// epoch and take no locks at all; the seven table-lock modes coordinate
// writers, the tuple mover and DDL. The compatibility and conversion
// matrices below are transcribed cell-for-cell from the paper.
#ifndef STRATICA_TXN_LOCK_MANAGER_H_
#define STRATICA_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace stratica {

/// The seven lock modes of Table 1.
enum class LockMode : uint8_t {
  kS = 0,   ///< Shared: blocks concurrent modification (SERIALIZABLE reads).
  kI = 1,   ///< Insert: compatible with itself so parallel loads proceed.
  kSI = 2,  ///< SharedInsert: read + insert, but not update/delete.
  kX = 3,   ///< eXclusive: deletes and updates.
  kT = 4,   ///< Tuple mover: short delete-vector operations.
  kU = 5,   ///< Usage: parts of moveout/mergeout.
  kO = 6,   ///< Owner: significant DDL (drop partition, add column).
};

constexpr int kNumLockModes = 7;

const char* LockModeName(LockMode m);

/// Table 1: may `requested` be granted while `granted` is held by another
/// transaction?
bool LockCompatible(LockMode requested, LockMode granted);

/// Table 2: mode resulting from a holder of `granted` requesting
/// `requested` on the same table.
LockMode LockConvert(LockMode requested, LockMode granted);

/// \brief Per-table lock manager with conversion and timeout.
///
/// Locks are held by transaction id and released all at once at commit or
/// rollback, as in the paper's model.
class LockManager {
 public:
  /// Block until the lock is granted or `timeout` elapses
  /// (StatusCode::kLockTimeout). Re-entrant: a transaction already holding
  /// a mode upgrades via the conversion matrix.
  ///
  /// Mutual conversion stalls are detected eagerly: when two holders each
  /// wait for a conversion the other's held mode blocks (the classic S+S
  /// both-upgrade-to-X cycle), the later requester fails immediately with
  /// StatusCode::kDeadlock instead of burning the full timeout. The victim
  /// keeps its current locks; the caller must abort its transaction to
  /// release them (which unblocks the survivor).
  Status Acquire(uint64_t txn_id, const std::string& table, LockMode mode,
                 std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Release every lock held by the transaction.
  void ReleaseAll(uint64_t txn_id);

  /// Mode currently held by txn on table (for tests/introspection).
  Result<LockMode> Held(uint64_t txn_id, const std::string& table) const;

 private:
  struct TableLocks {
    std::map<uint64_t, LockMode> holders;
    /// Transactions blocked in Acquire on this table -> conversion target.
    std::map<uint64_t, LockMode> waiting;
  };

  bool CanGrant(const TableLocks& tl, uint64_t txn_id, LockMode target) const;
  /// True if granting `target` to `txn_id` is blocked by a holder that is
  /// itself waiting for a mode incompatible with what `txn_id` holds.
  bool InConversionDeadlock(const TableLocks& tl, uint64_t txn_id,
                            LockMode target) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, TableLocks> tables_;
};

}  // namespace stratica

#endif  // STRATICA_TXN_LOCK_MANAGER_H_
