#include "txn/lock_manager.h"

namespace stratica {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kS: return "S";
    case LockMode::kI: return "I";
    case LockMode::kSI: return "SI";
    case LockMode::kX: return "X";
    case LockMode::kT: return "T";
    case LockMode::kU: return "U";
    case LockMode::kO: return "O";
  }
  return "?";
}

namespace {
// Table 1: rows = requested mode, columns = granted mode, order S I SI X T U O.
constexpr bool kCompat[kNumLockModes][kNumLockModes] = {
    /* S  */ {true, false, false, false, true, true, false},
    /* I  */ {false, true, false, false, true, true, false},
    /* SI */ {false, false, false, false, true, true, false},
    /* X  */ {false, false, false, false, false, true, false},
    /* T  */ {true, true, true, false, true, true, false},
    /* U  */ {true, true, true, true, true, true, false},
    /* O  */ {false, false, false, false, false, false, false},
};

// Table 2: rows = requested mode, columns = granted (currently held) mode.
constexpr LockMode kConvert[kNumLockModes][kNumLockModes] = {
    /* S  */ {LockMode::kS, LockMode::kSI, LockMode::kSI, LockMode::kX, LockMode::kS,
              LockMode::kS, LockMode::kO},
    /* I  */ {LockMode::kSI, LockMode::kI, LockMode::kSI, LockMode::kX, LockMode::kI,
              LockMode::kI, LockMode::kO},
    /* SI */ {LockMode::kSI, LockMode::kSI, LockMode::kSI, LockMode::kX, LockMode::kSI,
              LockMode::kSI, LockMode::kO},
    /* X  */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
              LockMode::kX, LockMode::kO},
    /* T  */ {LockMode::kS, LockMode::kI, LockMode::kSI, LockMode::kX, LockMode::kT,
              LockMode::kT, LockMode::kO},
    /* U  */ {LockMode::kS, LockMode::kI, LockMode::kSI, LockMode::kX, LockMode::kT,
              LockMode::kU, LockMode::kO},
    /* O  */ {LockMode::kO, LockMode::kO, LockMode::kO, LockMode::kO, LockMode::kO,
              LockMode::kO, LockMode::kO},
};
}  // namespace

bool LockCompatible(LockMode requested, LockMode granted) {
  return kCompat[static_cast<int>(requested)][static_cast<int>(granted)];
}

LockMode LockConvert(LockMode requested, LockMode granted) {
  return kConvert[static_cast<int>(requested)][static_cast<int>(granted)];
}

bool LockManager::CanGrant(const TableLocks& tl, uint64_t txn_id,
                           LockMode target) const {
  for (const auto& [other_txn, other_mode] : tl.holders) {
    if (other_txn == txn_id) continue;
    if (!LockCompatible(target, other_mode)) return false;
  }
  return true;
}

bool LockManager::InConversionDeadlock(const TableLocks& tl, uint64_t txn_id,
                                       LockMode target) const {
  auto held = tl.holders.find(txn_id);
  if (held == tl.holders.end()) return false;  // holding nothing blocks no one
  for (const auto& [other_txn, other_mode] : tl.holders) {
    if (other_txn == txn_id) continue;
    if (LockCompatible(target, other_mode)) continue;  // not blocking us
    auto waiting = tl.waiting.find(other_txn);
    if (waiting == tl.waiting.end()) continue;  // blocker can still finish
    // The blocker waits for a conversion our held mode blocks: neither of
    // us can proceed until the other releases — a cycle.
    if (!LockCompatible(waiting->second, held->second)) return true;
  }
  return false;
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& table, LockMode mode,
                            std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout;
  TableLocks& tl = tables_[table];
  bool timed_out = false;
  for (;;) {
    LockMode target = mode;
    auto held = tl.holders.find(txn_id);
    if (held != tl.holders.end()) target = LockConvert(mode, held->second);
    if (CanGrant(tl, txn_id, target)) {
      tl.holders[txn_id] = target;
      tl.waiting.erase(txn_id);
      return Status::OK();
    }
    // Fail on timeout only after the grant re-check above: a lock released
    // right at the deadline must still be won, not spuriously timed out.
    if (timed_out) {
      tl.waiting.erase(txn_id);
      return Status::LockTimeout("txn ", txn_id, " timed out waiting for ",
                                 LockModeName(mode), " on ", table);
    }
    if (InConversionDeadlock(tl, txn_id, target)) {
      tl.waiting.erase(txn_id);
      return Status::Deadlock("txn ", txn_id, " requesting ", LockModeName(mode),
                              " on ", table,
                              " would deadlock with a holder awaiting conversion; "
                              "abort the transaction to release its locks");
    }
    // Registering after the cycle check makes the victim deterministic:
    // the first converter is already parked in `waiting`, so the second
    // fails before it ever registers — exactly one waiter dies.
    tl.waiting[txn_id] = target;
    timed_out = cv_.wait_until(lock, deadline) == std::cv_status::timeout;
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard lock(mu_);
  bool released = false;
  for (auto& [table, tl] : tables_) released |= tl.holders.erase(txn_id) > 0;
  if (released) cv_.notify_all();
}

Result<LockMode> LockManager::Held(uint64_t txn_id, const std::string& table) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no locks on table ", table);
  auto h = it->second.holders.find(txn_id);
  if (h == it->second.holders.end())
    return Status::NotFound("txn holds no lock on ", table);
  return h->second;
}

}  // namespace stratica
