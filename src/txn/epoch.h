// Epoch management (Section 5, 5.1).
//
// Every tuple is stamped with the epoch of the transaction that committed
// it; delete markers carry the epoch of the deletion. An epoch boundary is
// a globally consistent snapshot, so snapshot reads need no locks. Vertica
// advances the epoch automatically as part of any DML commit (a change from
// C-Store's time-window epochs that confused READ COMMITTED users).
#ifndef STRATICA_TXN_EPOCH_H_
#define STRATICA_TXN_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace stratica {

using Epoch = uint64_t;

/// Sentinel for data written by an uncommitted transaction.
constexpr Epoch kUncommittedEpoch = UINT64_MAX;

/// \brief Tracks the current epoch, the Last Good Epoch bookkeeping hook and
/// the Ancient History Mark.
class EpochManager {
 public:
  EpochManager() : current_(1), ahm_(0) {}

  /// The epoch new DML commits will receive.
  Epoch current() const { return current_.load(std::memory_order_acquire); }

  /// READ COMMITTED queries target the latest complete epoch:
  /// current epoch - 1.
  Epoch LatestQueryableEpoch() const { return current() - 1; }

  /// Called under the commit lock for a DML commit: returns the commit
  /// epoch and advances the current epoch past it.
  Epoch CommitAndAdvance() { return current_.fetch_add(1, std::memory_order_acq_rel); }

  /// Ancient History Mark: history at or before this epoch may be purged by
  /// the tuple mover (deleted rows elided, delete vectors dropped).
  Epoch ahm() const { return ahm_.load(std::memory_order_acquire); }

  /// Advance the AHM (never backwards). Policy decisions — e.g. holding the
  /// AHM while nodes are down so recovery can replay history — live in the
  /// cluster layer.
  void AdvanceAhm(Epoch e) {
    Epoch cur = ahm_.load(std::memory_order_relaxed);
    while (e > cur && !ahm_.compare_exchange_weak(cur, e)) {
    }
  }

 private:
  std::atomic<Epoch> current_;
  std::atomic<Epoch> ahm_;
};

}  // namespace stratica

#endif  // STRATICA_TXN_EPOCH_H_
