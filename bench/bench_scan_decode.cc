// Late-materialization scan ablation (Section 6.1, DESIGN.md §7).
//
// Sweeps predicate selectivity from 0.01% to 100% over a projection with
// one filter column and three payload columns (int, float, string), and
// runs each point both ways: late materialization (payload columns decoded
// only for surviving rows) versus eager decode (every column of every block
// decoded before filtering — the legacy behavior, kept behind
// ScanSpec::eager_decode). The string payload is where eager decode bleeds:
// every unselected row still heap-allocates a std::string.
#include <benchmark/benchmark.h>

#include "api/database.h"
#include "common/rng.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {
namespace {

constexpr int64_t kRows = 4000000;
constexpr int64_t kKeySpace = 1000000;  // k uniform in [0, kKeySpace)

struct Fixture {
  Fixture() {
    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    db = std::make_unique<Database>(opts);
    (void)db->Execute(
        "CREATE TABLE fact (k INT, a INT, f FLOAT, s VARCHAR)");
    RowBlock rows(
        {TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64, TypeId::kString});
    Rng rng(17);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.columns[0].ints.push_back(rng.Range(0, kKeySpace - 1));
      rows.columns[1].ints.push_back(rng.Range(0, 1 << 20));
      rows.columns[2].doubles.push_back(rng.NextDouble());
      rows.columns[3].strings.push_back("payload-" + std::to_string(rng.Uniform(100000)));
    }
    (void)db->Load("fact", rows, true);
    (void)db->RunTupleMover();
    ps = db->cluster()->node(0)->GetStorage("fact_super");
  }
  std::unique_ptr<Database> db;
  ProjectionStorage* ps;
};

Fixture& GetFixture() {
  static Fixture f;
  return f;
}

void BM_ScanDecode(benchmark::State& state) {
  auto& f = GetFixture();
  int64_t sel_ppm = state.range(0);  // selectivity in parts per million
  bool eager = state.range(1) != 0;
  int64_t threshold = kKeySpace * sel_ppm / 1000000;

  uint64_t rows_out = 0;
  for (auto _ : state) {
    ExecContext ctx = f.db->MakeExecContext();
    ScanSpec spec;
    spec.storage = f.ps;
    spec.projection_columns = {0, 1, 2, 3};
    spec.output_names = {"k", "a", "f", "s"};
    spec.output_types = {TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64,
                         TypeId::kString};
    spec.eager_decode = eager;
    auto pred = Cmp(CompareOp::kLt, Col("k"), Lit(Value::Int64(threshold)));
    BindSchema schema;
    schema.Add("k", TypeId::kInt64);
    schema.Add("a", TypeId::kInt64);
    schema.Add("f", TypeId::kFloat64);
    schema.Add("s", TypeId::kString);
    if (!BindExpr(pred, schema).ok()) {
      state.SkipWithError("bind failed");
      return;
    }
    spec.predicate = pred;
    ScanOperator scan(spec);
    auto rows = DrainOperator(&scan, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    rows_out = rows.value().NumRows();
    benchmark::DoNotOptimize(rows_out);
  }
  state.SetItemsProcessed(state.iterations() * kRows);  // scanned rows/sec
  state.SetLabel("sel=" + std::to_string(sel_ppm / 10000.0) + "%/" +
                 (eager ? "eager" : "late") + "/rows_out=" +
                 std::to_string(rows_out));
}

BENCHMARK(BM_ScanDecode)
    ->ArgNames({"ppm", "eager"})
    ->Args({100, 0})       // 0.01%
    ->Args({100, 1})
    ->Args({10000, 0})     // 1%
    ->Args({10000, 1})
    ->Args({100000, 0})    // 10%
    ->Args({100000, 1})
    ->Args({1000000, 0})   // 100%
    ->Args({1000000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
