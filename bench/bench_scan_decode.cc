// Late-materialization scan ablation (Section 6.1, DESIGN.md §7) and the
// compressed-execution sweep (DESIGN.md §13).
//
// Part 1 (BM_ScanDecode) sweeps predicate selectivity from 0.01% to 100%
// over a projection with one filter column and three payload columns (int,
// float, string), and runs each point both ways: late materialization
// (payload columns decoded only for surviving rows) versus eager decode
// (every column of every block decoded before filtering — the legacy
// behavior, kept behind ScanSpec::eager_decode). The string payload is
// where eager decode bleeds: every unselected row still heap-allocates a
// std::string.
//
// Part 2 (BM_Compressed*) is the encoded-eval versus decode-then-eval
// sweep: predicate + COUNT(*) over each encoding (RLE / BlockDict / Delta /
// plain) across the same selectivity range, plus group-by on a dictionary
// key, each point run once on encoded views and once decode-first. CI
// emits this part as BENCH_compressed_exec.json.
#include <benchmark/benchmark.h>

#include "api/database.h"
#include "common/rng.h"
#include "exec/group_by.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {
namespace {

constexpr int64_t kRows = 4000000;
constexpr int64_t kKeySpace = 1000000;  // k uniform in [0, kKeySpace)

struct Fixture {
  Fixture() {
    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    db = std::make_unique<Database>(opts);
    (void)db->Execute(
        "CREATE TABLE fact (k INT, a INT, f FLOAT, s VARCHAR)");
    RowBlock rows(
        {TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64, TypeId::kString});
    Rng rng(17);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.columns[0].ints.push_back(rng.Range(0, kKeySpace - 1));
      rows.columns[1].ints.push_back(rng.Range(0, 1 << 20));
      rows.columns[2].doubles.push_back(rng.NextDouble());
      rows.columns[3].strings.push_back("payload-" + std::to_string(rng.Uniform(100000)));
    }
    (void)db->Load("fact", rows, true);
    (void)db->RunTupleMover();
    ps = db->cluster()->node(0)->GetStorage("fact_super");
  }
  std::unique_ptr<Database> db;
  ProjectionStorage* ps;
};

Fixture& GetFixture() {
  static Fixture f;
  return f;
}

void BM_ScanDecode(benchmark::State& state) {
  auto& f = GetFixture();
  int64_t sel_ppm = state.range(0);  // selectivity in parts per million
  bool eager = state.range(1) != 0;
  int64_t threshold = kKeySpace * sel_ppm / 1000000;

  uint64_t rows_out = 0;
  for (auto _ : state) {
    ExecContext ctx = f.db->MakeExecContext();
    ScanSpec spec;
    spec.storage = f.ps;
    spec.projection_columns = {0, 1, 2, 3};
    spec.output_names = {"k", "a", "f", "s"};
    spec.output_types = {TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64,
                         TypeId::kString};
    spec.eager_decode = eager;
    auto pred = Cmp(CompareOp::kLt, Col("k"), Lit(Value::Int64(threshold)));
    BindSchema schema;
    schema.Add("k", TypeId::kInt64);
    schema.Add("a", TypeId::kInt64);
    schema.Add("f", TypeId::kFloat64);
    schema.Add("s", TypeId::kString);
    if (!BindExpr(pred, schema).ok()) {
      state.SkipWithError("bind failed");
      return;
    }
    spec.predicate = pred;
    ScanOperator scan(spec);
    auto rows = DrainOperator(&scan, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    rows_out = rows.value().NumRows();
    benchmark::DoNotOptimize(rows_out);
  }
  state.SetItemsProcessed(state.iterations() * kRows);  // scanned rows/sec
  state.SetLabel("sel=" + std::to_string(sel_ppm / 10000.0) + "%/" +
                 (eager ? "eager" : "late") + "/rows_out=" +
                 std::to_string(rows_out));
}

BENCHMARK(BM_ScanDecode)
    ->ArgNames({"ppm", "eager"})
    ->Args({100, 0})       // 0.01%
    ->Args({100, 1})
    ->Args({10000, 0})     // 1%
    ->Args({10000, 1})
    ->Args({100000, 0})    // 10%
    ->Args({100000, 1})
    ->Args({1000000, 0})   // 100%
    ->Args({1000000, 1})
    ->Unit(benchmark::kMillisecond);

// ---- compressed execution sweep (DESIGN.md §13) ----------------------------

constexpr int64_t kCRows = 4000000;
constexpr int64_t kCDistinct = 1000;  // low-distinct domain of every column

// One projection pinning each sweep encoding to a column over the same
// 1000-value domain: `r` leads the sort order (runs of ~4000 → RLE), `s` is
// a 1000-string dictionary, `dv` ascends (delta), `p` is the plain control.
struct CompressedFixture {
  CompressedFixture() {
    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.k_safety = 0;
    opts.local_segments_per_node = 1;
    db = std::make_unique<Database>(opts);
    TableDef t;
    t.name = "cfact";
    t.columns = {{"r", TypeId::kInt64, false},
                 {"s", TypeId::kString, false},
                 {"dv", TypeId::kInt64, false},
                 {"p", TypeId::kInt64, false}};
    ProjectionDef proj;
    proj.name = "cfact_super";
    proj.anchor_table = "cfact";
    proj.columns = {{"r", -1, EncodingId::kRle},
                    {"s", -1, EncodingId::kBlockDict},
                    {"dv", -1, EncodingId::kDeltaValue},
                    {"p", -1, EncodingId::kPlain}};
    proj.sort_columns = {0};
    proj.is_super = true;
    proj.segmentation.expr = Func(FuncKind::kHash, {Col("dv")});
    (void)db->catalog()->CreateTable(std::move(t));
    (void)db->cluster()->CreateProjectionWithBuddies(proj);
    RowBlock rows({TypeId::kInt64, TypeId::kString, TypeId::kInt64, TypeId::kInt64});
    Rng rng(23);
    for (int64_t i = 0; i < kCRows; ++i) {
      rows.columns[0].ints.push_back(i * kCDistinct / kCRows);
      rows.columns[1].strings.push_back("d" + std::to_string(rng.Range(0, kCDistinct - 1)));
      rows.columns[2].ints.push_back(i);
      rows.columns[3].ints.push_back(rng.Range(0, kCDistinct - 1));
    }
    (void)db->Load("cfact", rows, true);
    (void)db->RunTupleMover();
    ps = db->cluster()->node(0)->GetStorage("cfact_super");
  }
  std::unique_ptr<Database> db;
  ProjectionStorage* ps;
};

CompressedFixture& GetCompressedFixture() {
  static CompressedFixture f;
  return f;
}

const char* kEncNames[] = {"rle", "dict", "delta", "plain"};
const char* kEncCols[] = {"r", "s", "dv", "p"};
const TypeId kEncTypes[] = {TypeId::kInt64, TypeId::kString, TypeId::kInt64,
                            TypeId::kInt64};

ScanSpec OneColumnScan(CompressedFixture& f, int enc_col, bool encoded) {
  ScanSpec spec;
  spec.storage = f.ps;
  spec.projection_columns = {enc_col};
  spec.output_names = {kEncCols[enc_col]};
  spec.output_types = {kEncTypes[enc_col]};
  spec.encoded_output = encoded;
  spec.eager_decode = !encoded;
  return spec;
}

// Predicate + COUNT(*) on one column per encoding. `enc`=1 keeps blocks
// encoded through predicate and aggregation (one compare per RLE run / per
// dictionary entry, COUNT by run length); `enc`=0 is the decode-then-eval
// baseline (global toggle off + eager decode).
void BM_CompressedPredCount(benchmark::State& state) {
  auto& f = GetCompressedFixture();
  int enc_col = static_cast<int>(state.range(0));
  int64_t sel_ppm = state.range(1);
  bool encoded = state.range(2) != 0;
  SetEncodedExecutionEnabled(encoded);
  // Thresholds picked so every encoding sweeps the same selectivity: the
  // int columns (`r` delta `dv` plain `p`) and the dictionary strings all
  // span a 1000-value domain.
  int64_t cut = kCDistinct * sel_ppm / 1000000;
  ExprPtr pred;
  if (enc_col == 1) {
    // Dictionary strings "d0".."d999" — compare against a zero-padded bound
    // would change the domain; use an exact-match probe at low selectivity
    // and a range probe otherwise.
    pred = Cmp(sel_ppm <= 10000 ? CompareOp::kEq : CompareOp::kNe, Col("s"),
               Lit(Value::String("d7")));
  } else if (enc_col == 2) {
    pred = Cmp(CompareOp::kLt, Col("dv"), Lit(Value::Int64(kCRows * sel_ppm / 1000000)));
  } else {
    pred = Cmp(CompareOp::kLt, Col(kEncCols[enc_col]), Lit(Value::Int64(cut)));
  }
  BindSchema schema;
  schema.Add(kEncCols[enc_col], kEncTypes[enc_col]);
  if (!BindExpr(pred, schema).ok()) {
    state.SkipWithError("bind failed");
    return;
  }

  uint64_t groups = 0;
  for (auto _ : state) {
    ExecContext ctx = f.db->MakeExecContext();
    ScanSpec spec = OneColumnScan(f, enc_col, encoded);
    spec.predicate = CloneExpr(pred);
    GroupBySpec gspec;
    gspec.aggs.push_back({AggKind::kCountStar, -1, TypeId::kInt64});
    gspec.output_names = {"n"};
    HashGroupByOperator agg(std::make_unique<ScanOperator>(spec), gspec);
    auto rows = DrainOperator(&agg, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    groups = rows.value().NumRows();
    benchmark::DoNotOptimize(groups);
  }
  SetEncodedExecutionEnabled(true);
  state.SetItemsProcessed(state.iterations() * kCRows);
  state.SetLabel(std::string(kEncNames[enc_col]) + "/sel=" +
                 std::to_string(sel_ppm / 10000.0) + "%/" +
                 (encoded ? "encoded" : "decode-first"));
}

// Group-by on the dictionary key: encoded mode aggregates through the dense
// code → group-id map; the baseline decodes every string first.
void BM_CompressedGroupByDict(benchmark::State& state) {
  auto& f = GetCompressedFixture();
  bool encoded = state.range(0) != 0;
  SetEncodedExecutionEnabled(encoded);

  uint64_t groups = 0;
  for (auto _ : state) {
    ExecContext ctx = f.db->MakeExecContext();
    ScanSpec spec;
    spec.storage = f.ps;
    spec.projection_columns = {1, 3};
    spec.output_names = {"s", "p"};
    spec.output_types = {TypeId::kString, TypeId::kInt64};
    spec.encoded_output = encoded;
    spec.eager_decode = !encoded;
    GroupBySpec gspec;
    gspec.group_columns = {0};
    gspec.aggs.push_back({AggKind::kCountStar, -1, TypeId::kInt64});
    gspec.aggs.push_back({AggKind::kSum, 1, TypeId::kInt64});
    gspec.output_names = {"s", "n", "sum_p"};
    HashGroupByOperator agg(std::make_unique<ScanOperator>(spec), gspec);
    auto rows = DrainOperator(&agg, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    groups = rows.value().NumRows();
    benchmark::DoNotOptimize(groups);
  }
  SetEncodedExecutionEnabled(true);
  state.SetItemsProcessed(state.iterations() * kCRows);
  state.SetLabel(std::string("dict-group-by/") +
                 (encoded ? "encoded" : "decode-first") + "/groups=" +
                 std::to_string(groups));
}

void CompressedArgs(benchmark::internal::Benchmark* b) {
  for (int enc = 0; enc < 4; ++enc) {
    for (int64_t ppm : {100, 10000, 500000, 1000000}) {  // 0.01% 1% 50% 100%
      b->Args({enc, ppm, 0});
      b->Args({enc, ppm, 1});
    }
  }
}

BENCHMARK(BM_CompressedPredCount)
    ->ArgNames({"enc", "ppm", "encoded"})
    ->Apply(CompressedArgs)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CompressedGroupByDict)
    ->ArgNames({"encoded"})
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
