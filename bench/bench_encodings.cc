// Ablation (Section 3.4): every encoding type against every data shape —
// size and decode speed. Shows why per-column encoding choice matters and
// what Auto picks.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "storage/encoding.h"

namespace stratica {
namespace {

constexpr size_t kN = 65536;

ColumnVector MakeShape(int shape) {
  Rng rng(shape + 1);
  ColumnVector col(TypeId::kInt64);
  col.ints.reserve(kN);
  switch (shape) {
    case 0:  // sorted low-cardinality (RLE territory)
      for (size_t i = 0; i < kN; ++i) col.ints.push_back(static_cast<int64_t>(i / 4096));
      break;
    case 1:  // unsorted small-range (DeltaValue territory)
      for (size_t i = 0; i < kN; ++i) col.ints.push_back(rng.Range(100000, 100255));
      break;
    case 2:  // few-valued unsorted (BlockDict territory)
      for (size_t i = 0; i < kN; ++i) col.ints.push_back(rng.Range(0, 15) * 997);
      break;
    case 3:  // sorted many-valued (DeltaRange territory)
    {
      int64_t v = 0;
      for (size_t i = 0; i < kN; ++i) col.ints.push_back(v += rng.Range(0, 9));
      break;
    }
    case 4:  // periodic with breaks (CommonDelta territory)
    {
      int64_t t = 0;
      for (size_t i = 0; i < kN; ++i)
        col.ints.push_back(t += rng.Uniform(64) == 0 ? 86400 : 300);
      break;
    }
    default:  // adversarial random (Plain territory)
      for (size_t i = 0; i < kN; ++i) col.ints.push_back(static_cast<int64_t>(rng.Next()));
  }
  return col;
}

const char* ShapeName(int shape) {
  static const char* kNames[] = {"sorted_lowcard", "small_range", "few_valued",
                                 "sorted_dense",   "periodic",    "random"};
  return kNames[shape];
}

void BM_Encode(benchmark::State& state) {
  auto enc = static_cast<EncodingId>(state.range(0));
  int shape = static_cast<int>(state.range(1));
  ColumnVector col = MakeShape(shape);
  if (!EncodingSupports(enc, StorageClass::kInt64) && enc != EncodingId::kAuto) {
    state.SkipWithError("unsupported");
    return;
  }
  size_t encoded = 0;
  for (auto _ : state) {
    std::string buf;
    if (!EncodeBlock(enc, col, 0, kN, &buf).ok()) {
      state.SkipWithError("encode failed");
      return;
    }
    encoded = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetLabel(std::string(ShapeName(shape)) + "/" + EncodingName(enc));
  state.counters["bytes_per_value"] =
      static_cast<double>(encoded) / static_cast<double>(kN);
  state.counters["ratio_vs_raw"] = 8.0 * kN / static_cast<double>(encoded);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kN);
}

void BM_Decode(benchmark::State& state) {
  auto enc = static_cast<EncodingId>(state.range(0));
  int shape = static_cast<int>(state.range(1));
  ColumnVector col = MakeShape(shape);
  std::string buf;
  if (!EncodeBlock(enc, col, 0, kN, &buf).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  for (auto _ : state) {
    ColumnVector out(TypeId::kInt64);
    size_t offset = 0;
    if (!DecodeBlock(buf, &offset, TypeId::kInt64, &out).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    benchmark::DoNotOptimize(out.ints.data());
  }
  state.SetLabel(std::string(ShapeName(shape)) + "/" + EncodingName(enc));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kN);
}

void AllCombos(benchmark::internal::Benchmark* b) {
  for (int enc : {0, 1, 2, 3, 4, 5, 6}) {
    for (int shape = 0; shape < 6; ++shape) b->Args({enc, shape});
  }
}

BENCHMARK(BM_Encode)->Apply(AllCombos)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decode)->Apply(AllCombos)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
