// Client-thread scaling sweep for concurrent Database::Execute
// (DESIGN.md §9). Run with
//   bench_concurrency --benchmark_format=json --benchmark_out=BENCH_concurrency.json
//
// Three sweeps, each over 1..8 client threads (benchmark's ->Threads runs N
// copies of the loop body concurrently; queries_per_sec aggregates across
// them):
//
//   BM_ReadOnlyIoBound  — the headline scaling figure. Storage reads go
//       through a FaultFs latency rule that adds a fixed per-read delay,
//       modeling the paper's disk-resident deployments. Independent queries
//       overlap their I/O stalls, so aggregate throughput must scale with
//       client threads (≥3x at 8 clients) — this held even on a 1-core
//       host, because the win comes from overlapping waits, not extra CPU.
//   BM_ReadOnlyCpuBound — same queries against the raw in-memory
//       filesystem. Scaling here is bounded by physical cores; on a 1-core
//       host it stays flat, which is the honest ceiling.
//   BM_MixedWorkload    — thread 0 runs INSERT+DELETE batches while the
//       rest read; exercises admission + lock + snapshot paths under load.
//
// BM_AdmissionOverhead measures the per-statement cost of the resource
// manager on a trivial query (single client, no contention).
#include <benchmark/benchmark.h>

#include <memory>

#include "api/database.h"
#include "common/fault_fs.h"

namespace stratica {
namespace {

constexpr int64_t kRows = 50000;
/// Per-read latency of the simulated device, injected via a FaultFs kLatency
/// rule (the same harness the chaos tests use). Sized so the read query is
/// clearly I/O-bound (~80% stall at one client), as on the paper's
/// disk-resident deployments.
constexpr uint64_t kSimReadLatencyUs = 800;

std::unique_ptr<Database> MakeDb(std::shared_ptr<FileSystem> fs) {
  DatabaseOptions opts;
  // Client threads are the parallelism under test; intra-query pipelines
  // stay single-threaded so the sweep isolates cross-query concurrency.
  opts.intra_node_parallelism = 1;
  opts.fs = std::move(fs);
  auto db = std::make_unique<Database>(std::move(opts));
  auto created = db->Execute(
      "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, pay INT)");
  if (!created.ok()) std::exit(1);
  RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64, TypeId::kInt64});
  for (int64_t i = 0; i < kRows; ++i) {
    rows.columns[0].ints.push_back(i);
    rows.columns[1].ints.push_back(i % 64);
    rows.columns[2].ints.push_back((i * 2654435761LL) % 1000);
    rows.columns[3].ints.push_back(i % 7);
  }
  if (!db->Load("t", rows, /*direct=*/true).ok()) std::exit(1);
  if (!db->RunTupleMover().ok()) std::exit(1);
  return db;
}

constexpr const char* kReadQuery =
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t WHERE val < 500 GROUP BY grp";

Database* IoBoundDb() {
  static Database* db = [] {
    // Leaked intentionally (static singleton): FaultFs borrows the base FS.
    auto* base = new MemFileSystem();
    auto fault_fs = std::make_shared<FaultFs>(base, /*seed=*/7);
    FaultRule slow_reads;  // every read pays the device latency
    slow_reads.op_mask = kFaultRead;
    slow_reads.kind = FaultKind::kLatency;
    slow_reads.latency_us = kSimReadLatencyUs;
    fault_fs->AddRule(slow_reads);
    return MakeDb(std::move(fault_fs)).release();
  }();
  return db;
}

Database* CpuBoundDb() {
  static Database* db = MakeDb(std::make_shared<MemFileSystem>()).release();
  return db;
}

void RunReadSweep(benchmark::State& state, Database* db) {
  for (auto _ : state) {
    auto r = db->Execute(kReadQuery);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel("clients=" + std::to_string(state.threads()));
}

void BM_ReadOnlyIoBound(benchmark::State& state) { RunReadSweep(state, IoBoundDb()); }
void BM_ReadOnlyCpuBound(benchmark::State& state) { RunReadSweep(state, CpuBoundDb()); }

BENCHMARK(BM_ReadOnlyIoBound)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadOnlyCpuBound)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Thread 0 writes (one 50-row INSERT batch, then a DELETE of the same
/// rows, keeping table size stable); all other threads read.
void BM_MixedWorkload(benchmark::State& state) {
  Database* db = CpuBoundDb();
  if (state.thread_index() == 0 && state.threads() > 1) {
    int64_t next_id = 10000000 + 100000 * state.threads();  // disjoint per shape
    for (auto _ : state) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int r = 0; r < 50; ++r) {
        if (r) sql += ", ";
        sql += "(" + std::to_string(next_id + r) + ", 0, 0, 0)";
      }
      auto ins = db->Execute(sql);
      if (!ins.ok()) {
        state.SkipWithError(ins.status().ToString().c_str());
        return;
      }
      auto del = db->Execute("DELETE FROM t WHERE id >= " + std::to_string(next_id) +
                             " AND id < " + std::to_string(next_id + 50));
      if (!del.ok()) {
        state.SkipWithError(del.status().ToString().c_str());
        return;
      }
      next_id += 50;
    }
  } else {
    for (auto _ : state) {
      auto r = db->Execute(kReadQuery);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r.value().NumRows());
    }
  }
  state.counters["statements_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel("clients=" + std::to_string(state.threads()));
}

BENCHMARK(BM_MixedWorkload)
    ->ThreadRange(2, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Admission + per-query session cost on a trivial statement.
void BM_AdmissionOverhead(benchmark::State& state) {
  Database* db = CpuBoundDb();
  for (auto _ : state) {
    auto r = db->Execute("SELECT id FROM t WHERE id = 17");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_AdmissionOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
