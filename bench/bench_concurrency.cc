// Client-thread scaling sweep for concurrent Database::Execute
// (DESIGN.md §9). Run with
//   bench_concurrency --benchmark_format=json --benchmark_out=BENCH_concurrency.json
//
// Three sweeps, each over 1..8 client threads (benchmark's ->Threads runs N
// copies of the loop body concurrently; queries_per_sec aggregates across
// them):
//
//   BM_ReadOnlyIoBound  — the headline scaling figure. Storage reads go
//       through a filesystem wrapper that adds a fixed per-read latency,
//       modeling the paper's disk-resident deployments. Independent queries
//       overlap their I/O stalls, so aggregate throughput must scale with
//       client threads (≥3x at 8 clients) — this held even on a 1-core
//       host, because the win comes from overlapping waits, not extra CPU.
//   BM_ReadOnlyCpuBound — same queries against the raw in-memory
//       filesystem. Scaling here is bounded by physical cores; on a 1-core
//       host it stays flat, which is the honest ceiling.
//   BM_MixedWorkload    — thread 0 runs INSERT+DELETE batches while the
//       rest read; exercises admission + lock + snapshot paths under load.
//
// BM_AdmissionOverhead measures the per-statement cost of the resource
// manager on a trivial query (single client, no contention).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>

#include "api/database.h"

namespace stratica {
namespace {

/// MemFileSystem wrapper that sleeps on every ranged read, simulating a
/// storage device with fixed access latency. Writes stay fast (loads and
/// spills are not what this bench measures).
class SimLatencyFs : public FileSystem {
 public:
  SimLatencyFs(std::shared_ptr<FileSystem> base, std::chrono::microseconds latency)
      : base_(std::move(base)), latency_(latency) {}

  Status WriteFile(const std::string& path, const std::string& data) override {
    return base_->WriteFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) const override {
    std::this_thread::sleep_for(latency_);
    return base_->ReadFile(path);
  }
  Result<std::string> ReadRange(const std::string& path, uint64_t offset,
                                uint64_t length) const override {
    std::this_thread::sleep_for(latency_);
    return base_->ReadRange(path, offset, length);
  }
  Status ReadRangeInto(const std::string& path, uint64_t offset, uint64_t length,
                       std::string* out) const override {
    std::this_thread::sleep_for(latency_);
    return base_->ReadRangeInto(path, offset, length, out);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }
  bool Exists(const std::string& path) const override { return base_->Exists(path); }
  Status Delete(const std::string& path) override { return base_->Delete(path); }
  Result<std::vector<std::string>> List(const std::string& prefix) const override {
    return base_->List(prefix);
  }
  Status HardLink(const std::string& source, const std::string& target) override {
    return base_->HardLink(source, target);
  }

 private:
  std::shared_ptr<FileSystem> base_;
  std::chrono::microseconds latency_;
};

constexpr int64_t kRows = 50000;
/// Per-ranged-read latency of the simulated device. Sized so the read query
/// is clearly I/O-bound (~80% stall at one client), as on the paper's
/// disk-resident deployments.
constexpr auto kSimReadLatency = std::chrono::microseconds(800);

std::unique_ptr<Database> MakeDb(std::shared_ptr<FileSystem> fs) {
  DatabaseOptions opts;
  // Client threads are the parallelism under test; intra-query pipelines
  // stay single-threaded so the sweep isolates cross-query concurrency.
  opts.intra_node_parallelism = 1;
  opts.fs = std::move(fs);
  auto db = std::make_unique<Database>(std::move(opts));
  auto created = db->Execute(
      "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, pay INT)");
  if (!created.ok()) std::exit(1);
  RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64, TypeId::kInt64});
  for (int64_t i = 0; i < kRows; ++i) {
    rows.columns[0].ints.push_back(i);
    rows.columns[1].ints.push_back(i % 64);
    rows.columns[2].ints.push_back((i * 2654435761LL) % 1000);
    rows.columns[3].ints.push_back(i % 7);
  }
  if (!db->Load("t", rows, /*direct=*/true).ok()) std::exit(1);
  if (!db->RunTupleMover().ok()) std::exit(1);
  return db;
}

constexpr const char* kReadQuery =
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t WHERE val < 500 GROUP BY grp";

Database* IoBoundDb() {
  static Database* db =
      MakeDb(std::make_shared<SimLatencyFs>(std::make_shared<MemFileSystem>(),
                                            kSimReadLatency))
          .release();
  return db;
}

Database* CpuBoundDb() {
  static Database* db = MakeDb(std::make_shared<MemFileSystem>()).release();
  return db;
}

void RunReadSweep(benchmark::State& state, Database* db) {
  for (auto _ : state) {
    auto r = db->Execute(kReadQuery);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel("clients=" + std::to_string(state.threads()));
}

void BM_ReadOnlyIoBound(benchmark::State& state) { RunReadSweep(state, IoBoundDb()); }
void BM_ReadOnlyCpuBound(benchmark::State& state) { RunReadSweep(state, CpuBoundDb()); }

BENCHMARK(BM_ReadOnlyIoBound)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadOnlyCpuBound)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Thread 0 writes (one 50-row INSERT batch, then a DELETE of the same
/// rows, keeping table size stable); all other threads read.
void BM_MixedWorkload(benchmark::State& state) {
  Database* db = CpuBoundDb();
  if (state.thread_index() == 0 && state.threads() > 1) {
    int64_t next_id = 10000000 + 100000 * state.threads();  // disjoint per shape
    for (auto _ : state) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int r = 0; r < 50; ++r) {
        if (r) sql += ", ";
        sql += "(" + std::to_string(next_id + r) + ", 0, 0, 0)";
      }
      auto ins = db->Execute(sql);
      if (!ins.ok()) {
        state.SkipWithError(ins.status().ToString().c_str());
        return;
      }
      auto del = db->Execute("DELETE FROM t WHERE id >= " + std::to_string(next_id) +
                             " AND id < " + std::to_string(next_id + 50));
      if (!del.ok()) {
        state.SkipWithError(del.status().ToString().c_str());
        return;
      }
      next_id += 50;
    }
  } else {
    for (auto _ : state) {
      auto r = db->Execute(kReadQuery);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r.value().NumRows());
    }
  }
  state.counters["statements_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel("clients=" + std::to_string(state.threads()));
}

BENCHMARK(BM_MixedWorkload)
    ->ThreadRange(2, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Admission + per-query session cost on a trivial statement.
void BM_AdmissionOverhead(benchmark::State& state) {
  Database* db = CpuBoundDb();
  for (auto _ : state) {
    auto r = db->Execute("SELECT id FROM t WHERE id = 17");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_AdmissionOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
