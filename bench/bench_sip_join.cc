// Ablation (Section 6.1): Sideways Information Passing. A hash join whose
// build side is selective installs a SIP filter in the probe scan; rows
// that cannot join never leave the scan. Sweeps build-side selectivity.
#include <benchmark/benchmark.h>

#include "api/database.h"
#include "common/rng.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

namespace stratica {
namespace {

struct Fixture {
  Fixture() {
    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    db = std::make_unique<Database>(opts);
    (void)db->Execute("CREATE TABLE fact (k INT, payload FLOAT)");
    RowBlock rows({TypeId::kInt64, TypeId::kFloat64});
    Rng rng(3);
    for (int i = 0; i < 2000000; ++i) {
      rows.columns[0].ints.push_back(rng.Range(0, 99999));
      rows.columns[1].doubles.push_back(rng.NextDouble());
    }
    (void)db->Load("fact", rows, true);
    (void)db->RunTupleMover();
    ps = db->cluster()->node(0)->GetStorage("fact_super");
  }
  std::unique_ptr<Database> db;
  ProjectionStorage* ps;
};

Fixture& GetFixture() {
  static Fixture f;
  return f;
}

void BM_JoinSip(benchmark::State& state) {
  auto& f = GetFixture();
  int64_t build_keys = state.range(0);  // distinct keys on the build side
  bool sip = state.range(1) != 0;

  for (auto _ : state) {
    ExecContext ctx = f.db->MakeExecContext();
    ScanSpec probe_spec;
    probe_spec.storage = f.ps;
    probe_spec.projection_columns = {0, 1};
    probe_spec.output_names = {"k", "payload"};
    probe_spec.output_types = {TypeId::kInt64, TypeId::kFloat64};
    auto sip_filter = std::make_shared<SipFilter>();
    sip_filter->probe_columns = {0};
    if (sip) probe_spec.sips = {sip_filter};

    RowBlock build({TypeId::kInt64});
    for (int64_t i = 0; i < build_keys; ++i) build.columns[0].ints.push_back(i * 7);
    JoinSpec jspec;
    jspec.type = JoinType::kInner;
    jspec.probe_keys = {0};
    jspec.build_keys = {0};
    if (sip) jspec.sip = sip_filter;
    HashJoinOperator join(
        std::make_unique<ScanOperator>(probe_spec),
        std::make_unique<MaterializedOperator>(build,
                                               std::vector<std::string>{"bk"}),
        jspec);
    auto rows = DrainOperator(&join, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows.value().NumRows());
  }
  state.SetLabel(std::string("build_keys=") + std::to_string(build_keys) +
                 (sip ? "/SIP" : "/noSIP"));
}

BENCHMARK(BM_JoinSip)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
