// Fault-free overhead of the end-to-end integrity machinery (DESIGN.md §10):
// CRC32C footers + per-block checksums verified on every read, the
// transient-retry wrapper, and the FaultFs pass-through itself. The repo
// target is <3% end-to-end overhead on scans when no fault fires. Run with
//   bench_fault_overhead --benchmark_format=json --benchmark_out=BENCH_fault_overhead.json
//
//   BM_ScanRawFs           — scan baseline: raw MemFileSystem, checksums
//                            verified (they are part of the format).
//   BM_ScanFaultFsIdle     — same DB behind an enabled FaultFs with no
//                            rules: the pure pass-through + op-log cost.
//   BM_ScanFaultFsRuleMiss — FaultFs with armed rules whose path regex
//                            never matches: per-op rule evaluation cost.
//   BM_ScanOverheadPair    — both paths interleaved in one run; reports
//                            fault_overhead_pct, the headline number CI
//                            tracks against the <3% budget.
//   BM_Crc32c              — raw checksum throughput (bytes/sec), the
//                            floor under every verified read.
//   BM_ChecksummedRead / BM_RawRead — file-level read cost with and
//                            without footer verification.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "api/database.h"
#include "common/checksum.h"
#include "common/fault_fs.h"

namespace stratica {
namespace {

constexpr int64_t kRows = 20000;

std::unique_ptr<Database> MakeDb(std::shared_ptr<FileSystem> fs) {
  DatabaseOptions opts;
  opts.intra_node_parallelism = 1;
  opts.fs = std::move(fs);
  auto db = std::make_unique<Database>(std::move(opts));
  auto created = db->Execute(
      "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, pay INT)");
  if (!created.ok()) std::exit(1);
  RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64, TypeId::kInt64});
  for (int64_t i = 0; i < kRows; ++i) {
    rows.columns[0].ints.push_back(i);
    rows.columns[1].ints.push_back(i % 64);
    rows.columns[2].ints.push_back((i * 2654435761LL) % 1000);
    rows.columns[3].ints.push_back(i % 7);
  }
  if (!db->Load("t", rows, /*direct=*/true).ok()) std::exit(1);
  if (!db->RunTupleMover().ok()) std::exit(1);
  return db;
}

constexpr const char* kScanQuery =
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t WHERE val < 500 GROUP BY grp";

Database* RawDb() {
  static Database* db = MakeDb(std::make_shared<MemFileSystem>()).release();
  return db;
}

struct FaultWrapped {
  std::shared_ptr<MemFileSystem> base;
  std::shared_ptr<FaultFs> fault_fs;
  Database* db;
};

FaultWrapped* IdleFaultDb() {
  static FaultWrapped* w = [] {
    auto* out = new FaultWrapped;
    out->base = std::make_shared<MemFileSystem>();
    out->fault_fs = std::make_shared<FaultFs>(out->base.get(), /*seed=*/42);
    out->db = MakeDb(out->fault_fs).release();
    return out;
  }();
  return w;
}

FaultWrapped* RuleMissFaultDb() {
  static FaultWrapped* w = [] {
    auto* out = new FaultWrapped;
    out->base = std::make_shared<MemFileSystem>();
    out->fault_fs = std::make_shared<FaultFs>(out->base.get(), /*seed=*/43);
    // Armed rules that never match a data path: measures the per-op rule
    // evaluation a production-style "always on" harness would pay.
    for (int i = 0; i < 4; ++i) {
      FaultRule rule;
      rule.path_pattern = "never-matches-" + std::to_string(i) + "/.*";
      rule.op_mask = kFaultAnyOp;
      rule.kind = FaultKind::kPersistentError;
      out->fault_fs->AddRule(rule);
    }
    out->db = MakeDb(out->fault_fs).release();
    return out;
  }();
  return w;
}

void RunScan(benchmark::State& state, Database* db) {
  for (auto _ : state) {
    auto r = db->Execute(kScanQuery);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_ScanRawFs(benchmark::State& state) { RunScan(state, RawDb()); }
void BM_ScanFaultFsIdle(benchmark::State& state) { RunScan(state, IdleFaultDb()->db); }
void BM_ScanFaultFsRuleMiss(benchmark::State& state) {
  RunScan(state, RuleMissFaultDb()->db);
}

BENCHMARK(BM_ScanRawFs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanFaultFsIdle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanFaultFsRuleMiss)->Unit(benchmark::kMillisecond);

/// Interleaves the raw and wrapped scans in one benchmark so both see the
/// same machine state, and reports the relative overhead directly.
void BM_ScanOverheadPair(benchmark::State& state) {
  Database* raw = RawDb();
  Database* wrapped = RuleMissFaultDb()->db;
  double raw_ns = 0, wrapped_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto a = raw->Execute(kScanQuery);
    auto t1 = std::chrono::steady_clock::now();
    auto b = wrapped->Execute(kScanQuery);
    auto t2 = std::chrono::steady_clock::now();
    if (!a.ok() || !b.ok()) {
      state.SkipWithError("scan failed");
      return;
    }
    raw_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    wrapped_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    benchmark::DoNotOptimize(a.value().NumRows() + b.value().NumRows());
  }
  if (raw_ns > 0) {
    state.counters["fault_overhead_pct"] = 100.0 * (wrapped_ns / raw_ns - 1.0);
  }
}

BENCHMARK(BM_ScanOverheadPair)->Unit(benchmark::kMillisecond)->MinTime(2.0);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i * 131);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

BENCHMARK(BM_Crc32c)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_RawRead(benchmark::State& state) {
  MemFileSystem fs;
  std::string data(256 << 10, 'q');
  if (!fs.WriteFile("f", data).ok()) std::exit(1);
  for (auto _ : state) {
    auto r = fs.ReadFile("f");
    if (!r.ok()) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_ChecksummedRead(benchmark::State& state) {
  MemFileSystem fs;
  std::string data(256 << 10, 'q');
  if (!WriteFileChecksummed(&fs, "f", data).ok()) std::exit(1);
  for (auto _ : state) {
    auto r = ReadFileChecksummed(&fs, "f");
    if (!r.ok()) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

BENCHMARK(BM_RawRead);
BENCHMARK(BM_ChecksummedRead);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
