// Reproduces Figure 3: the multi-threaded query plan for a grouping query —
// Scans feeding a StorageUnion that locally resegments into parallel
// prepass GroupBys merged by a ParallelUnion under the final GroupBy and
// Filter. Prints the EXPLAIN tree of the SQL plan, then hand-builds the
// exact Figure-3 pipeline to measure intra-node parallel speedup and the
// prepass reduction.
#include <chrono>
#include <cstdio>

#include "api/database.h"
#include "common/rng.h"
#include "exec/exchange.h"
#include "exec/group_by.h"
#include "exec/scan.h"
#include "exec/simple_ops.h"

using namespace stratica;

namespace {

double RunFigure3Pipeline(Database* db, int parallelism, bool prepass,
                          uint64_t* out_rows) {
  auto* ps = db->cluster()->node(0)->GetStorage("sales_super");
  ExecContext ctx = db->MakeExecContext();
  auto snap = ps->GetSnapshot(ctx.epoch);
  auto region_lists = PlanScanRegions(snap, parallelism);

  // Scan -> StorageUnion(reseg by cust) -> parallel [prepass] GroupBys ->
  // ParallelUnion -> final GroupBy -> Filter(HAVING).
  std::vector<OperatorPtr> producers;
  for (size_t p = 0; p < region_lists.size(); ++p) {
    ScanSpec spec;
    spec.storage = ps;
    spec.projection_columns = {0, 1};  // cust, price
    spec.output_names = {"cust", "price"};
    spec.output_types = {TypeId::kInt64, TypeId::kFloat64};
    spec.use_regions = true;
    spec.regions = region_lists[p];
    spec.include_wos = p == 0;
    producers.push_back(std::make_unique<ScanOperator>(spec));
  }
  auto consumers = MakeRepartitionExchange(std::move(producers), parallelism, {0},
                                           "StorageUnion", false);
  GroupBySpec partial;
  partial.group_columns = {0};
  partial.aggs = {{AggKind::kSum, 1, TypeId::kFloat64}};
  partial.output_names = {"cust", "sum_price"};
  std::vector<OperatorPtr> pipelines;
  for (auto& consumer : consumers) {
    OperatorPtr stage = std::move(consumer);
    if (prepass) {
      stage = std::make_unique<PrepassGroupByOperator>(std::move(stage), partial);
    } else {
      GroupBySpec p2 = partial;
      p2.phase = AggPhase::kPartial;
      stage = std::make_unique<HashGroupByOperator>(std::move(stage), p2);
    }
    pipelines.push_back(std::move(stage));
  }
  OperatorPtr merged = MakeUnionExchange(std::move(pipelines), "ParallelUnion", false);
  GroupBySpec final_spec = partial;
  final_spec.phase = AggPhase::kCombine;
  OperatorPtr root = std::make_unique<HashGroupByOperator>(std::move(merged),
                                                           final_spec);
  // HAVING SUM(price) > 0 equivalent filter.
  auto pred = Cmp(CompareOp::kGt, ColIdx(1, TypeId::kFloat64),
                  Lit(Value::Float64(0.0)));
  root = std::make_unique<FilterOperator>(std::move(root), pred);

  auto start = std::chrono::steady_clock::now();
  auto rows = DrainOperator(root.get(), &ctx);
  auto end = std::chrono::steady_clock::now();
  *out_rows = rows.ok() ? rows.value().NumRows() : 0;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  DatabaseOptions opts;
  opts.num_nodes = 1;
  opts.local_segments_per_node = 3;
  Database db(opts);
  (void)db.Execute("CREATE TABLE sales (cust INT, price FLOAT)");
  RowBlock rows({TypeId::kInt64, TypeId::kFloat64});
  Rng rng(9);
  constexpr int kRows = 4000000;
  for (int i = 0; i < kRows; ++i) {
    rows.columns[0].ints.push_back(rng.Range(0, 4999));
    rows.columns[1].doubles.push_back(rng.NextDouble() * 100);
  }
  if (!db.Load("sales", rows, /*direct=*/true).ok()) return 1;
  if (!db.RunTupleMover().ok()) return 1;

  std::printf("=== Figure 3: multi-threaded grouping plan ===\n\n");
  auto explain = db.Execute(
      "EXPLAIN SELECT cust, SUM(price) FROM sales GROUP BY cust "
      "HAVING SUM(price) > 0");
  if (explain.ok()) std::printf("%s\n", explain.value().message.c_str());

  std::printf("hand-built Figure-3 pipeline over %d rows, 5000 groups:\n\n", kRows);
  std::printf("%-28s %10s %8s\n", "configuration", "time", "groups");
  for (int par : {1, 2, 4, 8}) {
    for (bool prepass : {false, true}) {
      uint64_t got = 0;
      double ms = RunFigure3Pipeline(&db, par, prepass, &got);
      std::printf("%d pipeline(s), prepass %-3s %8.1f ms %8lu\n", par,
                  prepass ? "on" : "off", ms, static_cast<unsigned long>(got));
    }
  }
  std::printf("\nStorageUnion resegments rows by the group key so each parallel "
              "GroupBy computes complete\ngroups; the prepass reduces rows "
              "before the exchange exactly as in the figure.\n");
  return 0;
}
