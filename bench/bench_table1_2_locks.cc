// Reproduces Tables 1 and 2: the lock compatibility and conversion
// matrices, printed directly from the LockManager implementation (the
// same tables the unit tests verify cell-by-cell against the paper).
#include <cstdio>

#include "txn/lock_manager.h"

int main() {
  using namespace stratica;
  constexpr LockMode kModes[] = {LockMode::kS, LockMode::kI,  LockMode::kSI,
                                 LockMode::kX, LockMode::kT, LockMode::kU,
                                 LockMode::kO};

  std::printf("=== Table 1: Lock Compatibility Matrix ===\n");
  std::printf("%-10s", "Req\\Granted");
  for (LockMode g : kModes) std::printf("%5s", LockModeName(g));
  std::printf("\n");
  for (LockMode r : kModes) {
    std::printf("%-11s", LockModeName(r));
    for (LockMode g : kModes) {
      std::printf("%5s", LockCompatible(r, g) ? "Yes" : "No");
    }
    std::printf("\n");
  }

  std::printf("\n=== Table 2: Lock Conversion Matrix ===\n");
  std::printf("%-10s", "Req\\Granted");
  for (LockMode g : kModes) std::printf("%5s", LockModeName(g));
  std::printf("\n");
  for (LockMode r : kModes) {
    std::printf("%-11s", LockModeName(r));
    for (LockMode g : kModes) {
      std::printf("%5s", LockModeName(LockConvert(r, g)));
    }
    std::printf("\n");
  }
  std::printf("\nBoth matrices are transcribed from the implementation used by "
              "the transaction manager;\ntests/txn/lock_manager_test.cc asserts "
              "every cell against the paper's tables.\n");
  return 0;
}
