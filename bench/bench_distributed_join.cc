// Ablation (Section 3.6): co-located vs broadcast distributed joins.
// When both sides are segmented by their join keys the join runs fully
// node-local; otherwise the build side is broadcast through the (simulated)
// interconnect. Reports runtimes and exchanged bytes on a 4-node cluster.
#include <chrono>
#include <cstdio>

#include "api/database.h"
#include "common/rng.h"

using namespace stratica;

int main() {
  DatabaseOptions opts;
  opts.num_nodes = 4;
  opts.local_segments_per_node = 1;
  Database db(opts);
  auto run = [&](const std::string& sql) {
    auto result = db.Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n  in: %s\n", result.status().ToString().c_str(),
                   sql.c_str());
      std::exit(1);
    }
    return std::move(result).value();
  };
  // fact/dim_k are both hash-segmented on the join key (co-located);
  // dim_other is segmented on an unrelated column (broadcast required).
  run("CREATE TABLE fact (k INT, v FLOAT)");
  run("CREATE TABLE dim_k (k INT, attr INT)");
  run("CREATE TABLE dim_other (other INT, k INT, attr INT)");

  Rng rng(17);
  RowBlock fact({TypeId::kInt64, TypeId::kFloat64});
  for (int i = 0; i < 2000000; ++i) {
    fact.columns[0].ints.push_back(rng.Range(0, 49999));
    fact.columns[1].doubles.push_back(rng.NextDouble());
  }
  RowBlock dim({TypeId::kInt64, TypeId::kInt64});
  for (int i = 0; i < 50000; ++i) {
    dim.columns[0].ints.push_back(i);
    dim.columns[1].ints.push_back(i % 100);
  }
  RowBlock dim2({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64});
  for (int i = 0; i < 50000; ++i) {
    dim2.columns[0].ints.push_back(i * 31);
    dim2.columns[1].ints.push_back(i);
    dim2.columns[2].ints.push_back(i % 100);
  }
  if (!db.Load("fact", fact, true).ok() || !db.Load("dim_k", dim, true).ok() ||
      !db.Load("dim_other", dim2, true).ok())
    return 1;
  if (!db.RunTupleMover().ok()) return 1;

  auto time_query = [&](const std::string& sql, const char* label) {
    // Warm once, then measure; report interconnect traffic per run.
    run(sql);
    uint64_t bytes_before = db.stats()->exchange_bytes.load();
    auto start = std::chrono::steady_clock::now();
    auto result = run(sql);
    auto end = std::chrono::steady_clock::now();
    uint64_t bytes = db.stats()->exchange_bytes.load() - bytes_before;
    std::printf("%-34s %8.1f ms   exchange %8.2f MB   (%zu groups)\n", label,
                std::chrono::duration<double, std::milli>(end - start).count(),
                bytes / 1048576.0, result.NumRows());
  };

  std::printf("=== Distributed join: co-located vs broadcast (4 nodes) ===\n\n");
  time_query(
      "SELECT attr, COUNT(*) FROM fact JOIN dim_k ON fact.k = dim_k.k "
      "GROUP BY attr",
      "co-located (segmented on key)");
  time_query(
      "SELECT attr, COUNT(*) FROM fact JOIN dim_other ON fact.k = dim_other.k "
      "GROUP BY attr",
      "broadcast (mis-segmented dim)");
  std::printf("\nthe co-located plan joins each node's segment pair locally "
              "(Section 3.6: segmentation\nenables 'fully local distributed "
              "joins'); the mis-segmented dimension must be broadcast\nto every "
              "node first, paying interconnect bytes.\n");
  return 0;
}
