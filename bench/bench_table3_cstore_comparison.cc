// Reproduces Table 3: "Performance of Vertica compared with C-Store on
// single node hardware using the queries and test harness of the C-Store
// paper" — the seven C-Store (VLDB 2005) queries over a TPC-H-derived
// schema, run on Stratica's full engine and on the reimplemented C-Store
// baseline (row-at-a-time, join indices, RLE/plain-only storage).
//
// Expectation (shape, not absolutes): the full engine wins every query and
// roughly 2x on total; join-index-free storage is ~2x smaller (Section 8.1).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>

#include "api/database.h"
#include "common/rng.h"
#include "cstore/cstore_engine.h"

namespace stratica {
namespace {

constexpr int kLineitem = 600000;
constexpr int kOrders = kLineitem / 4;
constexpr int kCustomers = kOrders / 10;
constexpr int kSuppliers = 500;
constexpr int kNations = 25;

struct Dataset {
  RowBlock lineitem{std::vector<TypeId>{TypeId::kDate, TypeId::kInt64, TypeId::kInt64,
                                        TypeId::kFloat64}};
  RowBlock orders{
      std::vector<TypeId>{TypeId::kDate, TypeId::kInt64, TypeId::kInt64}};
  RowBlock customers{std::vector<TypeId>{TypeId::kInt64, TypeId::kInt64}};
  int64_t d1, d2;
};

Dataset Generate() {
  Dataset data;
  Rng rng(20120821);
  int64_t base = MakeDate(1992, 1, 1);
  int64_t span = MakeDate(1998, 12, 31) - base;
  for (int o = 0; o < kOrders; ++o) {
    data.orders.columns[0].ints.push_back(base + rng.Range(0, span));
    data.orders.columns[1].ints.push_back(o);
    data.orders.columns[2].ints.push_back(rng.Range(0, kCustomers - 1));
  }
  for (int l = 0; l < kLineitem; ++l) {
    int64_t order = rng.Range(0, kOrders - 1);
    int64_t odate = data.orders.columns[0].ints[order];
    data.lineitem.columns[0].ints.push_back(odate + rng.Range(1, 90));  // shipdate
    data.lineitem.columns[1].ints.push_back(rng.Range(0, kSuppliers - 1));
    data.lineitem.columns[2].ints.push_back(order);
    data.lineitem.columns[3].doubles.push_back(900.0 + rng.NextDouble() * 104000.0);
  }
  for (int c = 0; c < kCustomers; ++c) {
    data.customers.columns[0].ints.push_back(c);
    data.customers.columns[1].ints.push_back(rng.Range(0, kNations - 1));
  }
  data.d1 = base + span / 2;  // shipdate midpoint: Q1/Q3 select ~half
  data.d2 = base + span / 2;
  return data;
}

double MedianMs(const std::function<Status()>& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    Status st = fn();
    auto end = std::chrono::steady_clock::now();
    if (!st.ok()) {
      std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
      return -1;
    }
    times.push_back(std::chrono::duration<double, std::milli>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace
}  // namespace stratica

int main() {
  using namespace stratica;
  std::printf("=== Table 3: C-Store baseline vs Stratica (full engine) ===\n");
  std::printf("workload: C-Store paper query suite, TPC-H-derived data "
              "(lineitem=%d orders=%d customers=%d)\n\n",
              kLineitem, kOrders, kCustomers);
  Dataset data = Generate();

  // --- Stratica ------------------------------------------------------------
  DatabaseOptions opts;
  opts.num_nodes = 1;
  opts.k_safety = 0;
  opts.local_segments_per_node = 1;
  Database db(opts);
  auto check = [](auto&& result, const char* what) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what, result.status().ToString().c_str());
      std::exit(1);
    }
  };
  auto check_st = [](const Status& st, const char* what) {
    if (!st.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
      std::exit(1);
    }
  };
  check(db.Execute("CREATE TABLE lineitem (l_shipdate DATE, l_suppkey INT, "
                   "l_orderkey INT, l_extendedprice FLOAT)"),
        "create lineitem");
  check(db.Execute("CREATE TABLE orders (o_orderdate DATE, o_orderkey INT, "
                   "o_custkey INT)"),
        "create orders");
  check(db.Execute("CREATE TABLE customer (c_custkey INT, c_nationkey INT)"),
        "create customer");
  check(db.Load("lineitem", data.lineitem, /*direct=*/true), "load lineitem");
  check(db.Load("orders", data.orders, /*direct=*/true), "load orders");
  check(db.Load("customer", data.customers, /*direct=*/true), "load customer");
  check_st(db.RunTupleMover(), "tuple mover");

  std::string d1 = "DATE '" + FormatDate(data.d1) + "'";
  std::string d2 = "DATE '" + FormatDate(data.d2) + "'";
  const std::string queries[7] = {
      "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > " + d1 +
          " GROUP BY l_shipdate",
      "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = " + d1 +
          " GROUP BY l_suppkey",
      "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > " + d1 +
          " GROUP BY l_suppkey",
      "SELECT l_shipdate, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = "
      "o_orderkey WHERE o_orderdate > " + d2 + " GROUP BY l_shipdate",
      "SELECT l_suppkey, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = "
      "o_orderkey WHERE o_orderdate = " + d2 + " GROUP BY l_suppkey",
      "SELECT l_suppkey, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = "
      "o_orderkey WHERE o_orderdate > " + d2 + " GROUP BY l_suppkey",
      "SELECT c_nationkey, SUM(l_extendedprice) FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "JOIN customer ON o_custkey = c_custkey "
      "WHERE o_orderdate > " + d2 + " GROUP BY c_nationkey",
  };
  double vertica_ms[7];
  for (int q = 0; q < 7; ++q) {
    vertica_ms[q] = MedianMs([&] { return db.Execute(queries[q]).status(); });
  }
  uint64_t vertica_bytes = 0;
  for (const std::string table : {"lineitem", "orders", "customer"}) {
    vertica_bytes += db.cluster()->Census(table + "_super").bytes;
  }

  // --- C-Store baseline ------------------------------------------------------
  MemFileSystem cfs;
  CStoreEngine cstore(&cfs);
  check_st((cstore.AddProjection(
            "lineitem", {"l_shipdate", "l_suppkey", "l_orderkey", "l_extendedprice"},
            data.lineitem, 0)),
        "cstore lineitem");
  check_st((cstore.AddProjection(
            "orders", {"o_orderdate", "o_orderkey", "o_custkey"}, data.orders, 0)),
        "cstore orders");
  check_st((cstore.AddProjection("customer", {"c_custkey", "c_nationkey"},
                                         data.customers, 0)),
        "cstore customer");
  check_st((cstore.AddJoinIndex("lineitem", "orders", "l_orderkey",
                                        "o_orderkey")),
        "ji lineitem->orders");
  check_st(cstore.AddJoinIndex("orders", "customer", "o_custkey", "c_custkey"),
           "ji orders->customer");

  // Disk-resident baseline: every query decodes its input columns from
  // storage first (the prototype was disk-based; in-memory arrays would
  // flatter it enormously), then evaluates row at a time through virtual
  // accessors.
  auto decode_lineitem = [&]() -> std::unique_ptr<CStoreEngine::RowSource> {
    return cstore.OpenSourceFromDisk("lineitem");
  };
  const auto* ji_lo = cstore.join_index("lineitem");
  const auto* ji_oc = cstore.join_index("orders");
  int o_date_col = cstore.projection("orders")->FindColumn("o_orderdate");
  int c_nat_col = cstore.projection("customer")->FindColumn("c_nationkey");

  // Row-at-a-time query kernels (one virtual call per value, join-index
  // chases for reconstruction).
  auto q_scan = [&](bool equality, int group_col) {
    return [&, equality, group_col]() -> Status {
      auto li = decode_lineitem();
      std::unordered_map<int64_t, int64_t> groups;
      size_t n = li->NumRows();
      for (size_t r = 0; r < n; ++r) {
        int64_t shipdate = li->GetInt(r, 0);
        bool pass = equality ? shipdate == data.d1 : shipdate > data.d1;
        if (pass) ++groups[li->GetInt(r, group_col)];
      }
      volatile size_t sink = groups.size();
      (void)sink;
      return Status::OK();
    };
  };
    // Join-index reconstruction reads the target projection in row-id order:
  // page-granular random access, the cost Section 3.2 calls "very high".
  auto orders_src = [&]() { return cstore.OpenPagedSource("orders"); };
  auto q_join = [&](bool equality, int group_col) {
    return [&, equality, group_col]() -> Status {
      auto li = decode_lineitem();
      auto od = orders_src();
      std::unordered_map<int64_t, int64_t> groups;
      size_t n = li->NumRows();
      for (size_t r = 0; r < n; ++r) {
        int64_t orow = ji_lo->target_row[r];
        if (orow < 0) continue;
        int64_t odate = od->GetInt(static_cast<size_t>(orow), o_date_col);
        bool pass = equality ? odate == data.d2 : odate > data.d2;
        if (pass) ++groups[li->GetInt(r, group_col)];
      }
      volatile size_t sink = groups.size();
      (void)sink;
      return Status::OK();
    };
  };
  auto q7 = [&]() -> Status {
    auto li = decode_lineitem();
    auto od = orders_src();
    auto cu = cstore.OpenPagedSource("customer");
    std::unordered_map<int64_t, double> groups;
    size_t n = li->NumRows();
    for (size_t r = 0; r < n; ++r) {
      int64_t orow = ji_lo->target_row[r];
      if (orow < 0) continue;
      if (od->GetInt(static_cast<size_t>(orow), o_date_col) <= data.d2) continue;
      int64_t crow = ji_oc->target_row[static_cast<size_t>(orow)];
      if (crow < 0) continue;
      int64_t nation = cu->GetInt(static_cast<size_t>(crow), c_nat_col);
      groups[nation] += li->GetDouble(r, 3);
    }
    volatile size_t sink = groups.size();
    (void)sink;
    return Status::OK();
  };

  double cstore_ms[7];
  cstore_ms[0] = MedianMs(q_scan(false, 0));
  cstore_ms[1] = MedianMs(q_scan(true, 1));
  cstore_ms[2] = MedianMs(q_scan(false, 1));
  cstore_ms[3] = MedianMs(q_join(false, 0));
  cstore_ms[4] = MedianMs(q_join(true, 1));
  cstore_ms[5] = MedianMs(q_join(false, 1));
  cstore_ms[6] = MedianMs(q7);
  uint64_t cstore_bytes = cstore.TotalDiskBytes();

  // --- report -----------------------------------------------------------------
  std::printf("%-22s %14s %14s %8s\n", "Metric", "C-Store", "Stratica", "ratio");
  double ct = 0, vt = 0;
  for (int q = 0; q < 7; ++q) {
    ct += cstore_ms[q];
    vt += vertica_ms[q];
    std::printf("Q%-21d %12.1f ms %12.1f ms %7.2fx\n", q + 1, cstore_ms[q],
                vertica_ms[q], cstore_ms[q] / vertica_ms[q]);
  }
  std::printf("%-22s %12.1f ms %12.1f ms %7.2fx\n", "Total Query Time", ct, vt,
              ct / vt);
  std::printf("%-22s %11.1f MB %11.1f MB %7.2fx\n", "Disk Space Required",
              cstore_bytes / 1048576.0, vertica_bytes / 1048576.0,
              static_cast<double>(cstore_bytes) / vertica_bytes);
  std::printf("\npaper: Vertica ~2x faster in total (18.7s vs 9.6s) and ~2.1x "
              "smaller (1987MB vs 949MB)\n");
  return 0;
}
