// Single-query intra-node parallelism sweep (DESIGN.md §12). Run with
//   bench_parallel --benchmark_format=json --benchmark_out=BENCH_parallel.json
//
// Each benchmark runs ONE query at a time against a Database configured
// with intra_node_parallelism = worker_threads = Arg (1, 2, 4, 8), so the
// sweep isolates morsel fan-out from cross-query concurrency (which
// bench_concurrency covers). Speedup at fan-out P = real_time(1) /
// real_time(P) for the same benchmark family.
//
//   BM_ScanGroupByIoBound — the headline scaling figure. Storage reads go
//       through a FaultFs latency rule adding a fixed per-read delay,
//       modeling the paper's disk-resident deployments. The morsel
//       fragments of a single query overlap their read stalls on the
//       worker pool, so the query must speed up ≥3x at fan-out 4+ — this
//       holds even on a 1-core host, because the win comes from
//       overlapping waits, not extra CPU.
//   BM_ScanGroupByCpuBound — the same scan/group-by sweep against the raw
//       in-memory filesystem. Scaling here is bounded by physical cores:
//       near-linear on a multicore runner (the bench-smoke CI job
//       regenerates the artifact there), flat on a 1-core host, which is
//       the honest ceiling. The fan-out=1 point doubles as the
//       single-worker regression guard: a parallel-capable Database at
//       fan-out 1 plans and executes the identical serial operator tree.
//   BM_JoinGroupByIoBound / BM_JoinGroupByCpuBound — fact-dim hash join
//       feeding a group-by, exercising the shared build path (one
//       SharedJoinBuild per join, built once, probed by every fragment).
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>

#include "api/database.h"
#include "common/fault_fs.h"

namespace stratica {
namespace {

constexpr int64_t kFactRows = 200000;
constexpr int64_t kDimRows = 500;
/// Per-read latency of the simulated device, injected via a FaultFs
/// kLatency rule. Sized so the scan is deeply I/O-bound at fan-out 1
/// (~90% stall), as on the paper's disk-resident deployments.
constexpr uint64_t kSimReadLatencyUs = 2500;

std::unique_ptr<Database> MakeDb(std::shared_ptr<FileSystem> fs, int fanout) {
  DatabaseOptions opts;
  opts.num_nodes = 1;
  opts.k_safety = 0;
  // Fan-out under test: morsel fragments per scan, and just as many pool
  // workers, so the sweep measures the scheduler rather than oversubscription.
  opts.intra_node_parallelism = static_cast<size_t>(fanout);
  opts.worker_threads = static_cast<size_t>(fanout);
  opts.fs = std::move(fs);
  auto db = std::make_unique<Database>(std::move(opts));
  auto fact_ddl = db->Execute(
      "CREATE TABLE fact (id INT NOT NULL, k INT, grp INT, v FLOAT)");
  auto dim_ddl = db->Execute("CREATE TABLE dim (k INT NOT NULL, bucket INT)");
  if (!fact_ddl.ok() || !dim_ddl.ok()) std::exit(1);
  RowBlock fact({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64});
  for (int64_t i = 0; i < kFactRows; ++i) {
    fact.columns[0].ints.push_back(i);
    fact.columns[1].ints.push_back(i % kDimRows);
    fact.columns[2].ints.push_back(i % 7);
    fact.columns[3].doubles.push_back((i % 97) * 0.25);
  }
  if (!db->Load("fact", fact, /*direct=*/true).ok()) std::exit(1);
  RowBlock dim({TypeId::kInt64, TypeId::kInt64});
  for (int64_t i = 0; i < kDimRows; ++i) {
    dim.columns[0].ints.push_back(i);
    dim.columns[1].ints.push_back(i % 3);
  }
  if (!db->Load("dim", dim, /*direct=*/true).ok()) std::exit(1);
  if (!db->RunTupleMover().ok()) std::exit(1);
  return db;
}

/// Databases are keyed by (io_bound, fan-out) and built lazily, once,
/// so every benchmark repetition reuses the same loaded storage.
Database* Db(bool io_bound, int fanout) {
  static std::mutex mu;
  // Index 0..3 = fan-out 1/2/4/8; [0] = CPU-bound, [1] = I/O-bound.
  static std::unique_ptr<Database> dbs[2][4];
  int slot = fanout == 1 ? 0 : fanout == 2 ? 1 : fanout == 4 ? 2 : 3;
  std::lock_guard lock(mu);
  auto& db = dbs[io_bound ? 1 : 0][slot];
  if (!db) {
    std::shared_ptr<FileSystem> fs;
    if (io_bound) {
      // Leaked intentionally (lives for the process): FaultFs borrows the
      // base FS.
      auto* base = new MemFileSystem();
      auto fault_fs = std::make_shared<FaultFs>(base, /*seed=*/7);
      FaultRule slow_reads;  // every read pays the device latency
      slow_reads.op_mask = kFaultRead;
      slow_reads.kind = FaultKind::kLatency;
      slow_reads.latency_us = kSimReadLatencyUs;
      fault_fs->AddRule(slow_reads);
      fs = std::move(fault_fs);
    } else {
      fs = std::make_shared<MemFileSystem>();
    }
    db = MakeDb(std::move(fs), fanout);
  }
  return db.get();
}

/// The CPU-bound scan/group-by sweep from the acceptance bar: a selective
/// predicate plus multi-aggregate group-by over the full fact table.
constexpr const char* kSweepQuery =
    "SELECT grp, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
    "FROM fact WHERE k < 400 GROUP BY grp";

constexpr const char* kJoinQuery =
    "SELECT d.bucket, COUNT(*) AS n, SUM(f.v) AS s "
    "FROM fact f JOIN dim d ON f.k = d.k GROUP BY d.bucket";

void RunQuerySweep(benchmark::State& state, bool io_bound, const char* query) {
  Database* db = Db(io_bound, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = db->Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel("fanout=" + std::to_string(state.range(0)));
}

void BM_ScanGroupByIoBound(benchmark::State& state) {
  RunQuerySweep(state, /*io_bound=*/true, kSweepQuery);
}
void BM_ScanGroupByCpuBound(benchmark::State& state) {
  RunQuerySweep(state, /*io_bound=*/false, kSweepQuery);
}
void BM_JoinGroupByIoBound(benchmark::State& state) {
  RunQuerySweep(state, /*io_bound=*/true, kJoinQuery);
}
void BM_JoinGroupByCpuBound(benchmark::State& state) {
  RunQuerySweep(state, /*io_bound=*/false, kJoinQuery);
}

BENCHMARK(BM_ScanGroupByIoBound)
    ->RangeMultiplier(2)->Range(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanGroupByCpuBound)
    ->RangeMultiplier(2)->Range(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinGroupByIoBound)
    ->RangeMultiplier(2)->Range(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinGroupByCpuBound)
    ->RangeMultiplier(2)->Range(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
