// Reproduces Figure 1: the relationship between a table and its
// projections. The sales table gets (1) a super projection sorted by date
// and segmented by HASH(sale_id) and (2) a narrow (cust, price) projection
// sorted by cust and segmented by HASH(cust); the bench prints each node's
// physical contents of both.
#include <cstdio>

#include "api/database.h"
#include "cluster/cluster.h"

int main() {
  using namespace stratica;
  DatabaseOptions opts;
  opts.num_nodes = 3;
  opts.k_safety = 0;
  opts.local_segments_per_node = 1;
  Database db(opts);
  auto run = [&](const std::string& sql) {
    auto result = db.Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s -> %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(result).value();
  };
  run("CREATE TABLE sales (sale_id INT, date DATE, cust VARCHAR, price FLOAT)");
  run("CREATE PROJECTION sales_by_cust (cust ENCODING RLE, price) AS "
      "SELECT cust, price FROM sales ORDER BY cust SEGMENTED BY HASH(cust)");
  // The 8 rows of Figure 1 (values representative).
  run("INSERT INTO sales VALUES "
      "(1, '2012-01-03', 'alice', 300.00), (2, '2012-01-05', 'bob', 190.00),"
      "(3, '2012-01-10', 'carol', 750.00), (4, '2012-02-02', 'alice', 99.00),"
      "(5, '2012-02-14', 'dave', 410.00), (6, '2012-03-01', 'bob', 680.00),"
      "(7, '2012-03-17', 'carol', 150.00), (8, '2012-03-21', 'alice', 220.00)");
  if (!db.RunTupleMover().ok()) return 1;

  std::printf("=== Figure 1: table -> projections ===\n\n");
  for (const auto& pname : db.catalog()->ProjectionNames()) {
    auto proj = db.catalog()->GetProjection(pname);
    if (!proj.ok()) continue;
    const auto& p = proj.value();
    std::printf("projection %s (%s%s): sort by", p.name.c_str(),
                p.is_super ? "super" : "non-super",
                p.buddy_of.empty() ? "" : ", buddy");
    auto table = db.catalog()->GetTable(p.anchor_table);
    for (uint32_t s : p.sort_columns) std::printf(" %s", p.columns[s].name.c_str());
    std::printf(", %s\n", p.segmentation.ToString().c_str());
    for (uint32_t n = 0; n < db.cluster()->num_nodes(); ++n) {
      auto* ps = db.cluster()->node(n)->GetStorage(p.name);
      if (!ps) continue;
      RowBlock rows;
      if (!ReadProjectionRows(db.fs(), ps, db.cluster()->epochs()->LatestQueryableEpoch(),
                              &rows, nullptr, nullptr, nullptr)
               .ok())
        continue;
      std::printf("  node %u (%zu rows):\n", n, rows.NumRows());
      std::string text = rows.ToString(10);
      // Indent.
      size_t pos = 0;
      while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) break;
        std::printf("    %s\n", text.substr(pos, eol - pos).c_str());
        pos = eol + 1;
      }
    }
    std::printf("\n");
  }
  std::printf("every row lives in the super projection on exactly one node "
              "(HASH(sale_id) ring);\nthe narrow projection re-segments the "
              "same logical rows by HASH(cust), sorted by cust.\n");
  return 0;
}
