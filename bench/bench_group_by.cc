// Hash aggregation microbenchmark: distinct-cardinality sweep from 10 to
// 10M groups over an in-memory input (no storage layer), isolating the
// group-by hash path. Counters are machine-readable: run with
//   bench_group_by --benchmark_format=json --benchmark_out=BENCH_group_by.json
// to track the perf trajectory; rows_per_sec is the headline figure.
#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.h"
#include "exec/group_by.h"
#include "exec/simple_ops.h"

namespace stratica {
namespace {

constexpr int64_t kRows = 8000000;

/// Input shared across benchmark runs: kRows rows of (int64 key, float64
/// payload). Keys for a given cardinality are `rng % cardinality` scaled by
/// a large odd stride so consecutive keys don't land in adjacent hash slots
/// by accident.
const RowBlock& InputFor(int64_t cardinality) {
  static std::map<int64_t, RowBlock> cache;
  auto it = cache.find(cardinality);
  if (it != cache.end()) return it->second;
  RowBlock rows({TypeId::kInt64, TypeId::kFloat64});
  rows.columns[0].ints.reserve(kRows);
  rows.columns[1].doubles.reserve(kRows);
  Rng rng(42);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.columns[0].ints.push_back(
        static_cast<int64_t>(rng.Range(0, cardinality - 1)) * 2654435761LL);
    rows.columns[1].doubles.push_back(rng.NextDouble());
  }
  return cache.emplace(cardinality, std::move(rows)).first->second;
}

void BM_HashGroupBy(benchmark::State& state) {
  int64_t cardinality = state.range(0);
  const RowBlock& input = InputFor(cardinality);
  int64_t out_rows = 0;
  GroupBySpec spec;
  spec.group_columns = {0};
  spec.aggs = {{AggKind::kSum, 1, TypeId::kFloat64},
               {AggKind::kCountStar, -1, TypeId::kInt64}};
  spec.output_names = {"k", "total", "n"};
  HashGroupByOperator gb(
      std::make_unique<MaterializedOperator>(input,
                                             std::vector<std::string>{"k", "payload"}),
      spec);
  for (auto _ : state) {
    ExecContext ctx;
    auto rows = DrainOperator(&gb, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    out_rows = static_cast<int64_t>(rows.value().NumRows());
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["groups"] = static_cast<double>(out_rows);
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(kRows) * state.iterations(), benchmark::Counter::kIsRate);
  state.SetLabel("distinct=" + std::to_string(cardinality));
}

BENCHMARK(BM_HashGroupBy)
    ->Arg(10)
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

/// Prepass flavor: the L1-sized table right above scans; low cardinality is
/// its design point, high cardinality exercises the flush + runtime-disable
/// path.
void BM_PrepassGroupBy(benchmark::State& state) {
  int64_t cardinality = state.range(0);
  const RowBlock& input = InputFor(cardinality);
  GroupBySpec spec;
  spec.group_columns = {0};
  spec.aggs = {{AggKind::kSum, 1, TypeId::kFloat64}};
  spec.output_names = {"k", "total"};
  PrepassGroupByOperator gb(
      std::make_unique<MaterializedOperator>(input,
                                             std::vector<std::string>{"k", "payload"}),
      spec);
  for (auto _ : state) {
    ExecContext ctx;
    auto rows = DrainOperator(&gb, &ctx);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows.value().NumRows());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(kRows) * state.iterations(), benchmark::Counter::kIsRate);
  state.SetLabel("distinct=" + std::to_string(cardinality));
}

BENCHMARK(BM_PrepassGroupBy)->Arg(10)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
