// Ablation (Sections 4 and 7): load paths. Trickle inserts through the WOS
// amortize sorting/encoding via moveout; bulk loads that would swamp the
// WOS go directly to the ROS ("users are more than happy to explicitly tag
// such loads"). Also shows WOS-overflow spill behavior.
#include <chrono>
#include <cstdio>

#include "api/database.h"
#include "common/rng.h"

using namespace stratica;

namespace {

double LoadAndMoveout(Database* db, const char* table, int batches, int batch_rows,
                      bool direct) {
  Rng rng(11);
  auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64});
    for (int i = 0; i < batch_rows; ++i) {
      rows.columns[0].ints.push_back(rng.Range(0, 999999));
      rows.columns[1].ints.push_back(rng.Range(0, 99));
      rows.columns[2].doubles.push_back(rng.NextDouble());
    }
    if (!db->Load(table, rows, direct).ok()) std::exit(1);
  }
  if (!db->RunTupleMover().ok()) std::exit(1);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  std::printf("=== Load paths: WOS+moveout vs direct-to-ROS (Section 7) ===\n\n");
  std::printf("%-34s %10s %12s %12s\n", "path", "time", "containers", "MB stored");

  struct Config {
    const char* label;
    int batches;
    int batch_rows;
    bool direct;
  };
  for (Config c : {Config{"trickle 100x5k via WOS", 100, 5000, false},
                   Config{"trickle 100x5k direct-to-ROS", 100, 5000, true},
                   Config{"bulk 1x500k via WOS", 1, 500000, false},
                   Config{"bulk 1x500k direct-to-ROS", 1, 500000, true}}) {
    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    opts.direct_ros_row_threshold = UINT64_MAX;  // explicit control only
    Database db(opts);
    (void)db.Execute("CREATE TABLE t (k INT, g INT, v FLOAT)");
    double ms = LoadAndMoveout(&db, "t", c.batches, c.batch_rows, c.direct);
    auto census = db.cluster()->Census("t_super");
    std::printf("%-34s %8.1f ms %12zu %11.2f\n", c.label, ms, census.containers,
                census.bytes / 1048576.0);
  }
  std::printf("\ntrickle loads benefit from WOS buffering (fewer, larger sorted "
              "containers after moveout);\nbulk loads skip the memory double-buffer "
              "and write sorted ROS containers immediately.\n");

  // WOS saturation: loads beyond capacity spill directly to ROS (Section 4).
  DatabaseOptions opts;
  opts.num_nodes = 1;
  opts.local_segments_per_node = 1;
  opts.direct_ros_row_threshold = UINT64_MAX;
  Database db(opts);
  (void)db.Execute("CREATE TABLE t (k INT, g INT, v FLOAT)");
  auto* ps = db.cluster()->node(0)->GetStorage("t_super");
  std::printf("\nWOS saturation check: capacity %lu rows; ",
              static_cast<unsigned long>(ps->config().wos_capacity_rows));
  Rng rng(3);
  RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kFloat64});
  for (uint64_t i = 0; i < ps->config().wos_capacity_rows + 1000; ++i) {
    rows.columns[0].ints.push_back(rng.Range(0, 100));
    rows.columns[1].ints.push_back(0);
    rows.columns[2].doubles.push_back(0);
  }
  (void)db.Load("t", rows, false);
  std::printf("after oversized WOS load: saturated=%s (tuple mover will drain it)\n",
              ps->WosSaturated() ? "yes" : "no");
  return 0;
}
