// Reproduces Figure 2: physical storage layout within a node — a table
// partitioned by month/year and segmented by HASH(cid), with three local
// segments, yielding one ROS container per (partition key, local segment)
// and two files per column per container.
#include <cstdio>
#include <map>

#include "api/database.h"
#include "common/rng.h"

int main() {
  using namespace stratica;
  DatabaseOptions opts;
  opts.num_nodes = 1;
  opts.local_segments_per_node = 3;  // as in the figure
  Database db(opts);
  auto create = db.Execute(
      "CREATE TABLE txns (cid INT, t TIMESTAMP, amount FLOAT) "
      "PARTITION BY YEAR_MONTH(t)");
  if (!create.ok()) {
    std::fprintf(stderr, "%s\n", create.status().ToString().c_str());
    return 1;
  }
  // Four months of data: 3/2012 .. 6/2012, exactly as in the figure.
  RowBlock rows({TypeId::kInt64, TypeId::kTimestamp, TypeId::kFloat64});
  Rng rng(42);
  for (int month = 3; month <= 6; ++month) {
    for (int i = 0; i < 5000; ++i) {
      rows.columns[0].ints.push_back(rng.Range(0, 99999));
      rows.columns[1].ints.push_back(MakeDate(2012, month, 1 + (i % 28)) * 86400LL *
                                     1000000LL);
      rows.columns[2].doubles.push_back(rng.NextDouble() * 500);
    }
  }
  if (!db.Load("txns", rows, /*direct=*/true).ok()) return 1;
  if (!db.RunTupleMover().ok()) return 1;

  std::printf("=== Figure 2: physical storage layout within one node ===\n");
  std::printf("table partitioned by YEAR_MONTH(t), segmented by HASH(cid), "
              "3 local segments\n\n");
  auto* ps = db.cluster()->node(0)->GetStorage("txns_super");
  std::map<int64_t, std::map<uint32_t, const RosContainer*>> layout;
  size_t files = 0;
  for (const auto& c : ps->Containers()) {
    layout[c->partition_key][c->local_segment] = c.get();
    files += c->columns.size() * 2;  // data + position index per column
  }
  for (const auto& [partition, segments] : layout) {
    std::printf("partition %ld (%ld/%ld):\n", static_cast<long>(partition),
                static_cast<long>(partition % 100),
                static_cast<long>(partition / 100));
    for (const auto& [segment, container] : segments) {
      std::printf("  local segment %u: container c%lu, %lu rows, %lu bytes, "
                  "%zu column file pairs\n",
                  segment, static_cast<unsigned long>(container->id),
                  static_cast<unsigned long>(container->row_count),
                  static_cast<unsigned long>(container->total_bytes),
                  container->columns.size());
    }
  }
  auto census = db.cluster()->Census("txns_super");
  std::printf("\ntotal: %zu ROS containers, %zu user-data files "
              "(figure: 14 containers would appear with uneven moveout timing; "
              "4 partitions x 3 local segments = 12 at quiescence)\n",
              census.containers, files);

  // Fast bulk drop (Section 3.5): dropping March = deleting files.
  uint64_t before = census.containers;
  auto dropped = ps->DropPartition(201203);
  std::printf("\nDROP PARTITION 2012-03: %s, %lu rows reclaimed immediately, "
              "containers %lu -> %zu\n",
              dropped.ok() ? "ok" : dropped.status().ToString().c_str(),
              dropped.ok() ? static_cast<unsigned long>(dropped.value()) : 0ul,
              static_cast<unsigned long>(before),
              db.cluster()->Census("txns_super").containers);
  return 0;
}
