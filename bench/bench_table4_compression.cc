// Reproduces Table 4 (Section 8.2): compression achieved for 1M random
// integers and for meter-collection customer data, against raw text and
// gzip (zlib DEFLATE, the same algorithm) baselines.
//
// Expected shape: Vertica-style sorted+encoded storage beats gzip by 3-6x
// and raw by >10x; the RLE'd metric column collapses to ~KBs.
#include <zlib.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "api/database.h"
#include "common/rng.h"
#include "exec/scan.h"

namespace stratica {
namespace {

uint64_t GzipBytes(const std::string& text) {
  uLongf bound = compressBound(static_cast<uLong>(text.size()));
  std::string out(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                     reinterpret_cast<const Bytef*>(text.data()),
                     static_cast<uLong>(text.size()), 6);
  return rc == Z_OK ? bound : 0;
}

void PrintRow(const char* name, uint64_t bytes, uint64_t raw, uint64_t rows) {
  std::printf("  %-12s %9.1f MB   ratio %5.1fx   %6.2f bytes/row\n", name,
              bytes / 1048576.0, static_cast<double>(raw) / bytes,
              static_cast<double>(bytes) / rows);
}

}  // namespace
}  // namespace stratica

int main() {
  using namespace stratica;
  std::printf("=== Table 4: compression (random integers + meter data) ===\n\n");

  // --- 1M random integers in [1, 10M] (Section 8.2.1) -----------------------
  {
    constexpr int kN = 1000000;
    Rng rng(7);
    std::vector<int64_t> values;
    values.reserve(kN);
    std::string text;
    for (int i = 0; i < kN; ++i) {
      int64_t v = rng.Range(1, 10000000);
      values.push_back(v);
      text += std::to_string(v);
      text.push_back('\n');
    }
    uint64_t raw = text.size();
    uint64_t gz = GzipBytes(text);
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::string sorted_text;
    for (int64_t v : sorted) {
      sorted_text += std::to_string(v);
      sorted_text.push_back('\n');
    }
    uint64_t gz_sorted = GzipBytes(sorted_text);

    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    Database db(opts);
    (void)db.Execute("CREATE TABLE ints (v INT)");
    RowBlock rows({TypeId::kInt64});
    rows.columns[0].ints = values;
    if (!db.Load("ints", rows, /*direct=*/true).ok()) return 1;
    if (!db.RunTupleMover().ok()) return 1;
    uint64_t vertica = db.cluster()->Census("ints_super").bytes;

    std::printf("1M random integers (paper: raw 7.5MB, gzip 3.6, gzip+sort 2.3, "
                "Vertica 0.6)\n");
    PrintRow("raw", raw, raw, kN);
    PrintRow("gzip", gz, raw, kN);
    PrintRow("gzip+sort", gz_sorted, raw, kN);
    PrintRow("stratica", vertica, raw, kN);
    std::printf("\n");
  }

  // --- meter data (Section 8.2.2), scaled from 200M to 4M rows --------------
  {
    constexpr int kRows = 4000000;
    constexpr int kMetrics = 300;
    constexpr int kMeters = 2000;
    Rng rng(8);

    // Sorted by (metric, meter, time): every meter reports every metric at a
    // regular interval, exactly the paper's collection pattern.
    RowBlock rows({TypeId::kInt64, TypeId::kInt64, TypeId::kTimestamp,
                   TypeId::kFloat64});
    std::string csv;
    csv.reserve(static_cast<size_t>(kRows) * 32);
    int readings_per_pair = kRows / (kMetrics * 20);  // spread across meters
    int64_t t0 = 1325376000;  // 2012-01-01 in epoch seconds
    int generated = 0;
    for (int metric = 0; metric < kMetrics && generated < kRows; ++metric) {
      // Each metric is reported by a subset of meters.
      int interval = (metric % 3 == 0) ? 300 : (metric % 3 == 1 ? 600 : 3600);
      for (int meter = metric % 7; meter < kMeters && generated < kRows;
           meter += 7) {
        double value = rng.NextDouble() * 100.0;
        for (int k = 0; k < readings_per_pair && generated < kRows; ++k) {
          int64_t ts = t0 + static_cast<int64_t>(k) * interval;
          // Values trend: mostly small deltas, occasional jumps, many zeros.
          if (metric % 5 == 0) {
            value = 0.0;
          } else if (rng.Uniform(20) == 0) {
            value = rng.NextDouble() * 100.0;
          } else {
            // "Others change gradually with time" (Section 8.2.2).
            value += rng.NextDouble() * 0.1 - 0.05;
          }
          // Meters report fixed-precision readings (the CSV carries two
          // decimals); store the same quantized value.
          value = std::round(value * 100.0) / 100.0;
          rows.columns[0].ints.push_back(metric);
          rows.columns[1].ints.push_back(meter);
          rows.columns[2].ints.push_back(ts * 1000000);
          rows.columns[3].doubles.push_back(value);
          char buf[64];
          int len = std::snprintf(buf, sizeof(buf), "%d,%d,%lld,%.2f\n", metric,
                                  meter, static_cast<long long>(ts), value);
          csv.append(buf, len);
          ++generated;
        }
      }
    }
    uint64_t raw = csv.size();
    uint64_t gz = GzipBytes(csv);

    DatabaseOptions opts;
    opts.num_nodes = 1;
    opts.local_segments_per_node = 1;
    Database db(opts);
    (void)db.Execute(
        "CREATE TABLE meter_data (metric INT, meter INT, collected TIMESTAMP, "
        "value FLOAT)");
    if (!db.Load("meter_data", rows, /*direct=*/true).ok()) return 1;
    if (!db.RunTupleMover().ok()) return 1;
    uint64_t vertica = db.cluster()->Census("meter_data_super").bytes;

    std::printf("meter data, %d rows (paper at 200M rows: raw 6200MB, gzip 1050, "
                "Vertica 418 = 2.2 bytes/row)\n",
                generated);
    PrintRow("raw csv", raw, raw, generated);
    PrintRow("gzip", gz, raw, generated);
    PrintRow("stratica", vertica, raw, generated);

    // Per-column breakdown (Section 8.2.2 discusses each column).
    std::printf("\n  per-column stored sizes:\n");
    auto* ps = db.cluster()->node(0)->GetStorage("meter_data_super");
    uint64_t col_bytes[4] = {0, 0, 0, 0};
    for (const auto& c : ps->Containers()) {
      for (size_t i = 0; i < c->columns.size() && i < 4; ++i) {
        col_bytes[i] += c->columns[i].meta.encoded_bytes;
      }
    }
    const char* names[4] = {"metric", "meter", "collected", "value"};
    for (int i = 0; i < 4; ++i) {
      std::printf("    %-10s %12.3f MB\n", names[i], col_bytes[i] / 1048576.0);
    }
    std::printf("  (paper: metric 5KB via RLE, meter 35MB, timestamps 20MB, "
                "values 363MB of 418MB total)\n");

    // Query time over the compressed store (DESIGN.md §13): the same
    // queries run on encoded views versus the decode-first pipeline. The
    // RLE'd metric column is the paper's operating argument for Table 4:
    // a predicate plus COUNT over 4M rows touches only ~6000 runs, so
    // compression is a CPU win, not just a storage win. The value
    // aggregate is the honest counterpoint — plain float payloads decode
    // either way, so encoded execution must not slow them down.
    struct TimedQuery {
      const char* label;
      const char* sql;
    };
    const TimedQuery queries[] = {
        {"RLE predicate + agg",
         "SELECT COUNT(*), SUM(meter), MIN(meter), MAX(meter) FROM meter_data "
         "WHERE metric = 7"},
        {"value aggregate",
         "SELECT metric, COUNT(*), MIN(value), MAX(value) FROM meter_data "
         "GROUP BY metric"},
    };
    std::printf("\n  query time over the compressed store (%d rows):\n",
                generated);
    for (const auto& tq : queries) {
      double best_ms[2] = {1e30, 1e30};
      for (int encoded = 0; encoded < 2; ++encoded) {
        SetEncodedExecutionEnabled(encoded != 0);
        for (int rep = 0; rep < 3; ++rep) {
          auto start = std::chrono::steady_clock::now();
          auto r = db.Execute(tq.sql);
          auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
          if (!r.ok()) return 1;
          best_ms[encoded] = std::min(best_ms[encoded], ms);
        }
      }
      SetEncodedExecutionEnabled(true);
      std::printf("    %-22s decode-first %8.1f ms   encoded %8.1f ms   "
                  "(%.2fx)\n",
                  tq.label, best_ms[0], best_ms[1], best_ms[0] / best_ms[1]);
    }
  }
  return 0;
}
