// Ablation (Section 4): tuple mover strata policies. Exponential strata
// bound how often a tuple is rewritten; merging eagerly (factor ~1) or
// never merging both hurt. Reports rewrite amplification and final
// container counts per policy after a many-batch load.
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "storage/projection_storage.h"
#include "tuplemover/tuple_mover.h"
#include "txn/transaction.h"

using namespace stratica;

int main() {
  std::printf("=== Tuple mover strata ablation (Section 4) ===\n");
  std::printf("100 committed batches of 20k rows, then mergeout to quiescence\n\n");
  std::printf("%-26s %10s %12s %12s %10s\n", "policy", "mergeouts",
              "rows rewritten", "amplification", "containers");

  struct Policy {
    const char* name;
    double factor;
    size_t fanin_min;
  };
  for (Policy policy : {Policy{"eager (factor 2, min 2)", 2.0, 2},
                        Policy{"strata (factor 8, min 4)", 8.0, 4},
                        Policy{"lazy (factor 64, min 16)", 64.0, 16}}) {
    MemFileSystem fs;
    EpochManager epochs;
    LockManager locks;
    TransactionManager tm(&epochs, &locks);
    TupleMoverConfig cfg;
    cfg.strata_base_bytes = 64 << 10;
    cfg.strata_factor = policy.factor;
    cfg.merge_fanin_min = policy.fanin_min;
    TupleMover mover(&epochs, cfg);

    ProjectionStorageConfig pcfg;
    pcfg.projection = "p";
    pcfg.column_names = {"k", "v"};
    pcfg.column_types = {TypeId::kInt64, TypeId::kInt64};
    pcfg.encodings = {EncodingId::kAuto, EncodingId::kAuto};
    pcfg.sort_columns = {0};
    pcfg.num_local_segments = 1;
    ProjectionStorage ps(&fs, "node0/p", pcfg);

    Rng rng(1);
    uint64_t loaded = 0;
    for (int batch = 0; batch < 100; ++batch) {
      RowBlock rows({TypeId::kInt64, TypeId::kInt64});
      for (int i = 0; i < 20000; ++i) {
        rows.columns[0].ints.push_back(rng.Range(0, 1 << 20));
        rows.columns[1].ints.push_back(static_cast<int64_t>(rng.Next()));
      }
      loaded += rows.NumRows();
      auto txn = tm.Begin();
      if (!ps.InsertWos(std::move(rows), txn.get()).ok()) return 1;
      if (!tm.Commit(txn).ok()) return 1;
      if (!mover.Moveout(&ps).ok()) return 1;
      // Continuous background merging, as in production.
      auto merged = mover.MergeoutOnce(&ps);
      if (!merged.ok()) return 1;
    }
    if (!mover.MergeoutAll(&ps).ok()) return 1;
    const auto& stats = mover.stats();
    std::printf("%-26s %10lu %14lu %11.2fx %10zu\n", policy.name,
                static_cast<unsigned long>(stats.mergeouts),
                static_cast<unsigned long>(stats.rows_merged),
                static_cast<double>(stats.rows_merged) / loaded,
                ps.NumContainers());
  }
  std::printf("\nexponential strata keep rewrite amplification logarithmic while "
              "still converging to few containers;\neager merging rewrites far "
              "more, lazy merging leaves many containers (more file handles, "
              "seeks, merges at scan).\n");
  return 0;
}
