// Tuple mover benchmarks: mergeout through the shared loser-tree merge
// kernel vs the legacy comparator loop (DESIGN.md §8), and the Section 4
// strata-policy ablation (exponential strata bound how often a tuple is
// rewritten; eager and lazy merging both hurt).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "common/rng.h"
#include "storage/projection_storage.h"
#include "tuplemover/tuple_mover.h"
#include "txn/transaction.h"

namespace stratica {
namespace {

struct MoverHarness {
  MemFileSystem fs;
  EpochManager epochs;
  LockManager locks;
  TransactionManager tm{&epochs, &locks};
  std::unique_ptr<TupleMover> mover;
  std::unique_ptr<ProjectionStorage> ps;

  MoverHarness(const TupleMoverConfig& cfg, uint32_t sort_cols) {
    mover = std::make_unique<TupleMover>(&epochs, cfg);
    ProjectionStorageConfig pcfg;
    pcfg.projection = "p";
    pcfg.column_names = {"k", "k2", "v"};
    pcfg.column_types = {TypeId::kInt64, TypeId::kInt64, TypeId::kInt64};
    pcfg.encodings = {EncodingId::kAuto, EncodingId::kAuto, EncodingId::kAuto};
    for (uint32_t c = 0; c < sort_cols; ++c) pcfg.sort_columns.push_back(c);
    pcfg.num_local_segments = 1;
    ps = std::make_unique<ProjectionStorage>(&fs, "node0/p", pcfg);
  }

  bool LoadBatch(Rng* rng, size_t rows) {
    RowBlock block({TypeId::kInt64, TypeId::kInt64, TypeId::kInt64});
    for (size_t i = 0; i < rows; ++i) {
      block.columns[0].ints.push_back(rng->Range(0, 1 << 20));
      block.columns[1].ints.push_back(rng->Range(0, 64));
      block.columns[2].ints.push_back(static_cast<int64_t>(rng->Next()));
    }
    auto txn = tm.Begin();
    if (!ps->InsertWos(std::move(block), txn.get()).ok()) return false;
    if (!tm.Commit(txn).ok()) return false;
    return mover->Moveout(ps.get()).ok();
  }
};

/// Mergeout of `fanin` containers (20k rows each), loser tree vs the
/// comparator baseline. Setup (load + moveout) is excluded from timing.
void BM_Mergeout(benchmark::State& state) {
  size_t fanin = static_cast<size_t>(state.range(0));
  bool loser_tree = state.range(1) != 0;
  TupleMoverConfig cfg;
  cfg.strata_base_bytes = 1 << 30;  // everything in stratum 0: one big merge
  cfg.merge_fanin_min = 2;
  cfg.merge_fanin_max = fanin;
  cfg.use_loser_tree = loser_tree;
  uint64_t rows_merged = 0;
  // Manual timing: only MergeoutOnce is measured; the load + moveout setup
  // per iteration stays outside the clock.
  for (auto _ : state) {
    MoverHarness h(cfg, /*sort_cols=*/2);
    Rng rng(7);
    bool ok = true;
    for (size_t b = 0; b < fanin; ++b) ok &= h.LoadBatch(&rng, 20000);
    if (!ok) state.SkipWithError("setup failed");
    auto start = std::chrono::steady_clock::now();
    auto merged = h.mover->MergeoutOnce(h.ps.get());
    auto stop = std::chrono::steady_clock::now();
    if (!merged.ok() || !merged.value()) state.SkipWithError("mergeout failed");
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    rows_merged = h.mover->stats().rows_merged;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows_merged) * state.iterations());
  state.SetLabel(loser_tree ? "loser_tree" : "comparator");
}
BENCHMARK(BM_Mergeout)
    ->ArgsProduct({{2, 8, 32}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Section 4 ablation: rewrite amplification and final container counts per
/// strata policy after a many-batch load with continuous merging.
void BM_StrataPolicy(benchmark::State& state) {
  double factor = static_cast<double>(state.range(0));
  size_t fanin_min = static_cast<size_t>(state.range(1));
  TupleMoverConfig cfg;
  cfg.strata_base_bytes = 64 << 10;
  cfg.strata_factor = factor;
  cfg.merge_fanin_min = fanin_min;
  uint64_t loaded = 0, rewritten = 0, mergeouts = 0, containers = 0;
  for (auto _ : state) {
    MoverHarness h(cfg, /*sort_cols=*/1);
    Rng rng(1);
    loaded = 0;
    for (int batch = 0; batch < 40; ++batch) {
      if (!h.LoadBatch(&rng, 20000)) state.SkipWithError("load failed");
      loaded += 20000;
      auto merged = h.mover->MergeoutOnce(h.ps.get());
      if (!merged.ok()) state.SkipWithError("mergeout failed");
    }
    if (!h.mover->MergeoutAll(h.ps.get()).ok()) state.SkipWithError("quiesce failed");
    rewritten = h.mover->stats().rows_merged;
    mergeouts = h.mover->stats().mergeouts;
    containers = h.ps->NumContainers();
  }
  state.counters["mergeouts"] = static_cast<double>(mergeouts);
  state.counters["amplification"] =
      loaded == 0 ? 0.0 : static_cast<double>(rewritten) / static_cast<double>(loaded);
  state.counters["containers"] = static_cast<double>(containers);
  state.SetItemsProcessed(static_cast<int64_t>(loaded) * state.iterations());
}
BENCHMARK(BM_StrataPolicy)
    ->Args({2, 2})    // eager
    ->Args({8, 4})    // strata (production-ish)
    ->Args({64, 16})  // lazy
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
