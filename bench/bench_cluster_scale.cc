// Query latency at simulated cluster scale (DESIGN.md §11): a VirtualCluster
// at 64/128/256 nodes serving a fan-out aggregate, healthy and with 5% of
// the nodes degraded to stragglers. Straggler hedging re-issues zero-progress
// exchange partitions against buddy copies after a 5ms deadline, so the
// degraded tail should stay bounded: the repo target is hedged p99 < 2x the
// all-healthy p99 at the same node count. Run with
//   bench_cluster_scale --benchmark_format=json --benchmark_out=BENCH_cluster_scale.json
//
//   BM_ClusterScaleQuery/<nodes>/<slow_pct> — one aggregate per iteration;
//       reports p50_ms / p99_ms over the iterations plus the hedge and
//       failover counters the run accumulated.
//   BM_HedgedTailPair/<nodes> — healthy and 5%-slow clusters interleaved in
//       one run; reports hedged_p99_over_baseline, the headline number CI
//       tracks against the <2x budget.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <vector>

#include "cluster/virtual_cluster.h"

namespace stratica {
namespace {

constexpr const char* kQuery = "SELECT SUM(val) FROM s";

/// One straggler per 20 nodes (5%), spread across the ring so no single
/// buddy pair absorbs every hedge.
uint32_t SlowCount(uint32_t nodes, int slow_pct) {
  if (slow_pct == 0) return 0;
  return std::max(1u, nodes * static_cast<uint32_t>(slow_pct) / 100);
}

VirtualCluster* ScaleCluster(uint32_t nodes, int slow_pct) {
  // Keyed static leak (bench_concurrency.cc idiom): cluster construction
  // preloads nodes*50 rows and is far too heavy to repeat per benchmark.
  static std::map<std::pair<uint32_t, int>, VirtualCluster*>* cache =
      new std::map<std::pair<uint32_t, int>, VirtualCluster*>();
  auto it = cache->find({nodes, slow_pct});
  if (it != cache->end()) return it->second;

  VirtualClusterOptions opts;
  opts.num_nodes = nodes;
  opts.k_safety = 1;
  opts.seed = 4242;
  // A straggler pays 8ms per file op — ~1000x a healthy op and past the 5ms
  // zero-progress deadline, so its scan partitions always hedge onto
  // buddies. One op is also the exit bound for an abandoned straggler
  // pipeline, which the hedged query's teardown awaits; it must stay small
  // against the all-healthy p99 at the smallest node count.
  opts.model.slow_latency_us = 8000;
  opts.model.slow_jitter_us = 500;
  opts.db.hedge_deadline_ms = 5;
  opts.db.intra_node_parallelism = 1;
  auto* vc = new VirtualCluster(opts);

  Database* db = vc->db();
  if (!db->Execute("CREATE TABLE s (id INT NOT NULL, val INT)").ok()) std::exit(1);
  RowBlock rows({TypeId::kInt64, TypeId::kInt64});
  for (int64_t i = 0; i < static_cast<int64_t>(nodes) * 50; ++i) {
    rows.columns[0].ints.push_back(i);
    rows.columns[1].ints.push_back(1);
  }
  if (!db->Load("s", rows).ok()) std::exit(1);
  if (!db->RunTupleMover().ok()) std::exit(1);
  // Quiesce: latency measurements must not race background mergeout.
  db->StopBackgroundTupleMover();

  for (uint32_t i = 0; i < SlowCount(nodes, slow_pct); ++i) {
    if (!vc->SetNodeHealth((i * 20 + 1) % nodes, NodeHealth::kSlow).ok()) {
      std::exit(1);
    }
  }
  (*cache)[{nodes, slow_pct}] = vc;
  return vc;
}

/// Run `query` once and return its wall time in milliseconds.
double TimedQuery(benchmark::State& state, Database* db) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = db->Execute(kQuery);
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return -1;
  }
  benchmark::DoNotOptimize(r.value().NumRows());
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Percentile(std::vector<double>* times, double p) {
  std::sort(times->begin(), times->end());
  size_t idx = std::min(times->size() - 1,
                        static_cast<size_t>(p * static_cast<double>(times->size())));
  return (*times)[idx];
}

void BM_ClusterScaleQuery(benchmark::State& state) {
  const uint32_t nodes = static_cast<uint32_t>(state.range(0));
  const int slow_pct = static_cast<int>(state.range(1));
  VirtualCluster* vc = ScaleCluster(nodes, slow_pct);
  Database* db = vc->db();
  uint64_t hedges_before = db->stats()->exchange_hedges.load();
  uint64_t reroutes_before = db->stats()->exchange_reroutes.load();
  std::vector<double> times;
  for (auto _ : state) {
    double ms = TimedQuery(state, db);
    if (ms < 0) return;
    times.push_back(ms);
  }
  if (times.empty()) return;
  state.counters["p50_ms"] = Percentile(&times, 0.50);
  state.counters["p99_ms"] = Percentile(&times, 0.99);
  state.counters["hedges"] =
      static_cast<double>(db->stats()->exchange_hedges.load() - hedges_before);
  state.counters["reroutes"] =
      static_cast<double>(db->stats()->exchange_reroutes.load() - reroutes_before);
}

BENCHMARK(BM_ClusterScaleQuery)
    ->Args({64, 0})
    ->Args({64, 5})
    ->Args({128, 0})
    ->Args({128, 5})
    ->Args({256, 0})
    ->Args({256, 5})
    ->Unit(benchmark::kMillisecond);

/// Interleaves the healthy and 5%-slow clusters in one run so both see the
/// same machine state, and reports the degraded-tail ratio directly.
void BM_HedgedTailPair(benchmark::State& state) {
  const uint32_t nodes = static_cast<uint32_t>(state.range(0));
  Database* healthy = ScaleCluster(nodes, 0)->db();
  Database* degraded = ScaleCluster(nodes, 5)->db();
  std::vector<double> healthy_ms, degraded_ms;
  for (auto _ : state) {
    double h = TimedQuery(state, healthy);
    if (h < 0) return;
    double d = TimedQuery(state, degraded);
    if (d < 0) return;
    healthy_ms.push_back(h);
    degraded_ms.push_back(d);
  }
  if (healthy_ms.empty()) return;
  double base_p99 = Percentile(&healthy_ms, 0.99);
  state.counters["baseline_p99_ms"] = base_p99;
  state.counters["hedged_p99_ms"] = Percentile(&degraded_ms, 0.99);
  if (base_p99 > 0) {
    state.counters["hedged_p99_over_baseline"] =
        Percentile(&degraded_ms, 0.99) / base_p99;
  }
}

BENCHMARK(BM_HedgedTailPair)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

}  // namespace
}  // namespace stratica

BENCHMARK_MAIN();
